(* Fanout-based traffic-shift detection from link loads only.

   Section 5.2.2 shows fanouts are far more stable than demands: total
   traffic breathes with the diurnal cycle, but *where* each PoP sends
   its traffic barely moves.  That makes fanouts a natural baseline for
   anomaly detection: estimate fanouts on a reference window, predict
   each later interval's link loads from the constant-fanout model and
   the observed per-PoP totals, and alarm when the prediction residual
   jumps.  No per-flow state needed — only SNMP link counters.

   The example injects a sudden shift (one PoP redirects a third of its
   traffic to a new destination) and shows the detector firing.

   Run with:  dune exec examples/anomaly_detection.exe *)

module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Dataset = Tmest_traffic.Dataset
module Routing = Tmest_net.Routing
module Odpairs = Tmest_net.Odpairs
module Fanout = Tmest_core.Fanout
module Gravity = Tmest_core.Gravity

let () =
  let dataset = Dataset.europe () in
  let routing = dataset.Dataset.routing in
  let n = Dataset.num_nodes dataset in
  let name i =
    dataset.Dataset.topo.Tmest_net.Topology.nodes.(i)
      .Tmest_net.Topology.name
  in

  (* Reference window: samples 180..199 (15:00-16:35 GMT). *)
  let window = 20 in
  let ref_start = 180 in
  let reference_loads =
    Mat.init window (Dataset.num_links dataset) (fun i j ->
        (Dataset.link_loads_at dataset (ref_start + i)).(j))
  in
  let ws = Tmest_core.Workspace.create routing in
  let model = Fanout.estimate ws ~load_samples:reference_loads in
  Printf.printf "fanout model fitted on samples %d..%d\n" ref_start
    (ref_start + window - 1);

  (* Traffic shift to inject: the largest source PoP redirects 1/3 of
     its traffic to its smallest current destination from sample 230. *)
  let shift_at = 230 in
  let te0 = Dataset.node_ingress_totals dataset shift_at in
  let big_src = Vec.argmax te0 in
  let truth0 = Dataset.demand_at dataset shift_at in
  let small_dst = ref (-1) in
  Odpairs.iter ~nodes:n (fun p src dst ->
      if src = big_src then
        match !small_dst with
        | -1 -> small_dst := dst
        | d when truth0.(p) < truth0.(Odpairs.index ~nodes:n ~src ~dst:d) ->
            small_dst := dst
        | _ -> ());
  let small_dst = !small_dst in
  Printf.printf "injected anomaly at sample %d: %s redirects 1/3 of its \
                 traffic to %s\n\n"
    shift_at (name big_src) (name small_dst);

  let shifted_demand k =
    let s = Vec.copy (Dataset.demand_at dataset k) in
    if k >= shift_at then begin
      let target = Odpairs.index ~nodes:n ~src:big_src ~dst:small_dst in
      let moved = ref 0. in
      Odpairs.iter ~nodes:n (fun p src _ ->
          if src = big_src && p <> target then begin
            let delta = s.(p) /. 3. in
            s.(p) <- s.(p) -. delta;
            moved := !moved +. delta
          end);
      s.(target) <- s.(target) +. !moved
    end;
    s
  in

  (* Detector: residual between observed loads and the loads predicted
     by constant fanouts + observed per-PoP totals. *)
  let residual k =
    let loads = Routing.link_loads routing (shifted_demand k) in
    let predicted_demands =
      Fanout.demands_of_fanouts ws ~fanouts:model.Fanout.fanouts ~loads
    in
    let predicted = Routing.link_loads routing predicted_demands in
    Vec.dist2 predicted loads /. Vec.norm2 loads
  in

  (* Score a stretch of samples around the injection point. *)
  Printf.printf "%8s %12s\n" "sample" "residual";
  let scores =
    List.map
      (fun k -> (k, residual k))
      (List.init 30 (fun i -> shift_at - 15 + i))
  in
  let before =
    List.filter_map
      (fun (k, r) -> if k < shift_at then Some r else None)
      scores
  in
  let mean_before =
    List.fold_left ( +. ) 0. before /. float_of_int (List.length before)
  in
  List.iter
    (fun (k, r) ->
      Printf.printf "%8d %12.5f %s%s\n" k r
        (if r > 3. *. mean_before then "ALARM" else "")
        (if k = shift_at then "   <- shift injected" else ""))
    scores;
  Printf.printf
    "\nbaseline residual %.5f; every post-shift sample exceeds 3x baseline: \
     %b\n"
    mean_before
    (List.for_all
       (fun (k, r) -> k < shift_at || r > 3. *. mean_before)
       scores)
