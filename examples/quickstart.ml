(* Quickstart: estimate a traffic matrix from link loads.

   Builds a small backbone, generates a day of synthetic traffic,
   derives the link loads a network operator would actually see, and
   recovers the traffic matrix with the entropy ("tomogravity")
   estimator seeded by a gravity prior.

   Run with:  dune exec examples/quickstart.exe *)

module Dataset = Tmest_traffic.Dataset
module Spec = Tmest_traffic.Spec
module Gravity = Tmest_core.Gravity
module Entropy = Tmest_core.Entropy
module Metrics = Tmest_core.Metrics
module Odpairs = Tmest_net.Odpairs
module Topology = Tmest_net.Topology

let () =
  (* 1. A synthetic 12-PoP European backbone with a day of 5-minute
     traffic samples.  [Dataset.generate] accepts a custom [Spec.t] if
     you want different sizes or traffic statistics. *)
  let dataset = Dataset.europe () in
  Printf.printf "network : %d PoPs, %d links, %d OD pairs\n"
    (Dataset.num_nodes dataset)
    (Dataset.num_links dataset)
    (Dataset.num_pairs dataset);

  (* 2. Pick a busy-hour snapshot.  The operator observes only the link
     loads t = R s (SNMP per-link byte counts), not the demands s. *)
  let k = 229 (* ~19:05 GMT *) in
  let truth = Dataset.demand_at dataset k in
  let loads = Dataset.link_loads_at dataset k in
  let routing = dataset.Dataset.routing in

  (* 3. A gravity prior from the per-PoP ingress/egress totals... *)
  let ws = Tmest_core.Workspace.create routing in
  let prior = Gravity.simple routing ~loads in
  Printf.printf "gravity prior        : MRE %.3f\n"
    (Metrics.mre ~truth ~estimate:prior ());

  (* 4. ...refined against the full link-load system by the entropy
     estimator.  sigma2 trades prior against measurements; large values
     (the paper's best regime) trust the measurements. *)
  let result = Entropy.estimate ws ~loads ~prior ~sigma2:1000. in
  let estimate = result.Entropy.estimate in
  Printf.printf "entropy estimate     : MRE %.3f (converged in %d iters)\n"
    (Metrics.mre ~truth ~estimate ())
    result.Entropy.iterations;

  (* 5. The estimate is accurate where it matters: the large demands. *)
  let n = Dataset.num_nodes dataset in
  let name i = dataset.Dataset.topo.Topology.nodes.(i).Topology.name in
  let order = Array.init (Array.length truth) (fun i -> i) in
  Array.sort (fun a b -> compare truth.(b) truth.(a)) order;
  Printf.printf "\n%-26s %10s %10s\n" "top demands" "true Mbps" "est Mbps";
  Array.iter
    (fun p ->
      let src, dst = Odpairs.pair ~nodes:n p in
      Printf.printf "%-26s %10.0f %10.0f\n"
        (name src ^ " -> " ^ name dst)
        (truth.(p) /. 1e6) (estimate.(p) /. 1e6))
    (Array.sub order 0 8)
