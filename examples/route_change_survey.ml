(* A route-change measurement campaign (Nucci et al., INFOCOM 2004).

   When per-LSP counters are not available and one link-load snapshot
   cannot identify the demands, an operator can *change the routing* —
   tweak an IGP weight, watch the loads shift — and stack the snapshots:
   every configuration constrains the same traffic matrix through a
   different routing matrix.  This example walks the campaign on the
   European network: take a baseline snapshot, take two more after
   simulated weight changes, and watch the pure least-squares estimate
   (no prior at all) sharpen with each added configuration.

   Run with:  dune exec examples/route_change_survey.exe *)

module Vec = Tmest_linalg.Vec
module Dataset = Tmest_traffic.Dataset
module Topology = Tmest_net.Topology
module Routing = Tmest_net.Routing
module Dijkstra = Tmest_net.Dijkstra
module Odpairs = Tmest_net.Odpairs
module Routechange = Tmest_core.Routechange
module Metrics = Tmest_core.Metrics
module Wcb = Tmest_core.Wcb

(* Shortest-path routing with one link administratively removed (the
   cleanest stand-in for "raise its weight sky-high"). *)
let routing_without topo link_id =
  let n = Topology.num_nodes topo in
  let usable l = l.Topology.link_id <> link_id in
  let paths = Array.make (Odpairs.count n) [] in
  for src = 0 to n - 1 do
    let _, parent = Dijkstra.tree ~usable topo ~src in
    for dst = 0 to n - 1 do
      if dst <> src then begin
        match Dijkstra.path_of_tree topo parent ~src ~dst with
        | Some p -> paths.(Odpairs.index ~nodes:n ~src ~dst) <- p
        | None -> failwith "network partitioned by the weight change"
      end
    done
  done;
  Routing.of_paths topo paths

let () =
  let dataset = Dataset.europe () in
  let topo = dataset.Dataset.topo in
  (* The demands the campaign tries to recover: the busy-period mean
     (demands must stay roughly constant across the snapshots). *)
  let truth = Dataset.busy_mean_demand dataset in

  let base = Routing.shortest_path topo in
  let base_loads = Routing.link_loads base truth in

  (* Pick the two busiest core links as weight-change victims. *)
  let busiest =
    Topology.interior_links topo
    |> List.sort (fun a b ->
           compare
             base_loads.(b.Topology.link_id)
             base_loads.(a.Topology.link_id))
    |> List.filteri (fun i _ -> i < 2)
  in
  let name l =
    topo.Topology.nodes.(l.Topology.src).Topology.name
    ^ " -> "
    ^ topo.Topology.nodes.(l.Topology.dst).Topology.name
  in
  (* One workspace per configuration: each stacks its own cached
     Gram/eigen artifacts across the incremental estimates below. *)
  let configs =
    (Tmest_core.Workspace.create base, base_loads)
    :: List.map
         (fun l ->
           let r = routing_without topo l.Topology.link_id in
           (Tmest_core.Workspace.create r, Routing.link_loads r truth))
         busiest
  in
  List.iteri
    (fun i (label, _) -> Printf.printf "configuration %d: %s\n" i label)
    (("baseline IGP weights", ())
    :: List.map (fun l -> ("weight change on " ^ name l, ())) busiest);
  print_newline ();

  Printf.printf "%-16s %8s %12s\n" "snapshots used" "MRE" "rank gained";
  List.iteri
    (fun i _ ->
      let used = List.filteri (fun j _ -> j <= i) configs in
      let r = Routechange.estimate used in
      Printf.printf "%-16d %8.4f %12d\n" (i + 1)
        (Metrics.mre ~truth ~estimate:r.Routechange.estimate ())
        r.Routechange.stacked_rank_gain)
    configs;

  (* The same effect seen through the worst-case bounds: uncertainty
     shrinks as configurations pin the demands. *)
  let width ws loads =
    let b = Wcb.bounds ws ~loads in
    let w = Wcb.width b in
    Vec.sum w /. Vec.sum truth
  in
  let r0, t0 = List.hd configs in
  Printf.printf
    "\nrelative worst-case uncertainty under the baseline alone: %.2f\n"
    (width r0 t0);
  Printf.printf
    "(the stacked system has no equally simple bound; the MRE column \
     above is the point-estimate view of the same information gain)\n"
