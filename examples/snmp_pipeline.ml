(* The full measurement pipeline: from router counters to a traffic
   matrix (Section 5.1).

   Global Crossing's key observation is that an MPLS mesh makes the
   traffic matrix *measurable*: every OD pair is an LSP, every LSP has a
   byte counter, and polling those counters every 5 minutes yields the
   complete TM directly — no estimation needed.  This example replays
   that pipeline (jittered pollers, UDP loss, interval-corrected rates)
   and contrasts the directly measured TM with what pure link-load
   estimation achieves on the same interval.

   Run with:  dune exec examples/snmp_pipeline.exe *)

module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Dataset = Tmest_traffic.Dataset
module Collect = Tmest_snmp.Collect
module Gravity = Tmest_core.Gravity
module Entropy = Tmest_core.Entropy
module Metrics = Tmest_core.Metrics

let () =
  let dataset = Dataset.europe () in
  let pairs = Dataset.num_pairs dataset in
  let samples = Dataset.num_samples dataset in

  (* 1. Replay the distributed polling of per-LSP counters. *)
  let config =
    {
      Collect.default_config with
      Collect.jitter_s = 15.;
      loss_prob = 0.02;
      pollers = 3;
      seed = 20041025;
    }
  in
  let truth k = Dataset.demand_at dataset k in
  let collected = Collect.run config ~true_rates:truth ~samples ~pairs in
  Printf.printf
    "polled %d LSPs over %d intervals (%d pollers, 15 s jitter, 2%% loss)\n"
    pairs samples config.Collect.pollers;
  Printf.printf "polls sent %d, lost %d\n" collected.Collect.polls_sent
    collected.Collect.polls_lost;
  Printf.printf "measured TM error vs ground truth: %.3f%% per sample\n\n"
    (100. *. Collect.mean_absolute_rate_error collected ~true_rates:truth);

  (* 2. The measured TM at one busy interval... *)
  let k = 229 in
  let measured = Mat.row collected.Collect.rates k in
  let actual = truth k in
  Printf.printf "busy interval %d: measured TM MRE %.4f\n" k
    (Metrics.mre ~truth:actual ~estimate:measured ());

  (* 3. ...versus estimating the same interval from link loads only
     (what an operator without the LSP mesh would have to do). *)
  let routing = dataset.Dataset.routing in
  let ws = Tmest_core.Workspace.create routing in
  let loads = Dataset.link_loads_at dataset k in
  let prior = Gravity.simple routing ~loads in
  let estimated =
    (Entropy.estimate ws ~loads ~prior ~sigma2:1000.).Entropy.estimate
  in
  Printf.printf "estimation from link loads only: MRE %.4f\n"
    (Metrics.mre ~truth:actual ~estimate:estimated ());
  Printf.printf
    "\ndirect measurement is ~%.0fx more accurate — the paper's case for \
     measuring TMs in MPLS networks,\nwhile estimation remains the fallback \
     where only link counters exist.\n"
    (Metrics.mre ~truth:actual ~estimate:estimated ()
    /. Stdlib.max 1e-6 (Metrics.mre ~truth:actual ~estimate:measured ()))
