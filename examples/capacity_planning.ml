(* What-if failure analysis with an estimated traffic matrix.

   The paper motivates TM estimation with traffic-engineering tasks
   like failure analysis: "if this link dies, which links overload?"
   Answering needs the demands, not just today's link loads.  This
   example estimates the TM from link loads, fails the most-loaded core
   link, re-routes every affected LSP with CSPF, and compares the
   post-failure utilizations predicted from the *estimated* TM against
   the ones computed from the *true* TM.

   Run with:  dune exec examples/capacity_planning.exe *)

module Vec = Tmest_linalg.Vec
module Dataset = Tmest_traffic.Dataset
module Topology = Tmest_net.Topology
module Routing = Tmest_net.Routing
module Cspf = Tmest_net.Cspf
module Dijkstra = Tmest_net.Dijkstra
module Odpairs = Tmest_net.Odpairs
module Gravity = Tmest_core.Gravity
module Entropy = Tmest_core.Entropy
module Metrics = Tmest_core.Metrics

(* Link loads after failing [failed] and re-routing every demand on its
   IGP shortest path that avoids the failed link. *)
let post_failure_loads topo ~failed ~demands =
  let n = Topology.num_nodes topo in
  let usable l = l.Topology.link_id <> failed in
  let loads = Array.make (Topology.num_links topo) 0. in
  for src = 0 to n - 1 do
    let _, parent = Dijkstra.tree ~usable topo ~src in
    for dst = 0 to n - 1 do
      if dst <> src then begin
        let p = Odpairs.index ~nodes:n ~src ~dst in
        match Dijkstra.path_of_tree topo parent ~src ~dst with
        | None -> () (* partitioned: demand is lost *)
        | Some path ->
            List.iter
              (fun l -> loads.(l) <- loads.(l) +. demands.(p))
              path
      end
    done
  done;
  loads

let () =
  let dataset = Dataset.europe () in
  let topo = dataset.Dataset.topo in
  let routing = dataset.Dataset.routing in
  let k = 229 in
  let truth = Dataset.demand_at dataset k in
  let loads = Dataset.link_loads_at dataset k in

  (* Estimate the TM from the observable link loads. *)
  let ws = Tmest_core.Workspace.create routing in
  let prior = Gravity.simple routing ~loads in
  let estimate =
    (Entropy.estimate ws ~loads ~prior ~sigma2:1000.).Entropy.estimate
  in
  Printf.printf "estimated TM: MRE %.3f\n\n"
    (Metrics.mre ~truth ~estimate ());

  (* Fail the busiest interior link. *)
  let busiest =
    List.fold_left
      (fun best l ->
        let id = l.Topology.link_id in
        match best with
        | Some b when loads.(b) >= loads.(id) -> best
        | _ -> Some id)
      None
      (Topology.interior_links topo)
  in
  let failed = Option.get busiest in
  let fl = topo.Topology.links.(failed) in
  Printf.printf "failing busiest core link: %s -> %s (%.1f Gbps load, %.1f \
                 Gbps capacity)\n\n"
    topo.Topology.nodes.(fl.Topology.src).Topology.name
    topo.Topology.nodes.(fl.Topology.dst).Topology.name
    (loads.(failed) /. 1e9)
    (fl.Topology.capacity /. 1e9);

  let predicted = post_failure_loads topo ~failed ~demands:estimate in
  let actual = post_failure_loads topo ~failed ~demands:truth in

  (* Compare predicted vs actual post-failure utilization on the links
     that matter (top 10 by actual load). *)
  let ids =
    List.map (fun l -> l.Topology.link_id) (Topology.interior_links topo)
  in
  let ids = List.filter (fun id -> id <> failed) ids in
  let ids = List.sort (fun a b -> compare actual.(b) actual.(a)) ids in
  Printf.printf "%-26s %12s %12s %8s\n" "post-failure link" "actual util"
    "predicted" "error";
  List.iteri
    (fun rank id ->
      if rank < 10 then begin
        let l = topo.Topology.links.(id) in
        let util x = 100. *. x /. l.Topology.capacity in
        Printf.printf "%-26s %11.1f%% %11.1f%% %7.1f%%\n"
          (topo.Topology.nodes.(l.Topology.src).Topology.name
          ^ " -> "
          ^ topo.Topology.nodes.(l.Topology.dst).Topology.name)
          (util actual.(id))
          (util predicted.(id))
          (util predicted.(id) -. util actual.(id))
      end)
    ids;

  (* The planning question: does the estimate flag the same overloads? *)
  let overloaded demands_loads =
    List.filter
      (fun id ->
        let l = topo.Topology.links.(id) in
        demands_loads.(id) > 0.8 *. l.Topology.capacity)
      ids
  in
  let pred_over = overloaded predicted and act_over = overloaded actual in
  let agree =
    List.length (List.filter (fun id -> List.mem id act_over) pred_over)
  in
  Printf.printf
    "\nlinks above 80%% after failure: actual %d, predicted %d (%d in \
     agreement)\n"
    (List.length act_over) (List.length pred_over) agree
