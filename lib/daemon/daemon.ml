(* The streaming estimation loop: batch building blocks (workspace,
   warm starts, degraded-mode repair, preconditioning) composed into a
   long-lived per-interval service.

   One tick = one nominal SNMP interval: poll the link counters through
   the lossy/jittered stream, slide the measurement window by one row,
   re-estimate with a warm start, repair online when the collector
   flagged drops or resets, and emit an estimate record plus a health
   record through the obs sink.  Routing changes switch the loop to a
   memoized per-failed-set workspace (fresh cached factors under the
   new R) and invalidate the measurement window, whose rows no longer
   obey the new routing. *)

module Vec = Tmest_linalg.Vec
module Pool = Tmest_parallel.Pool
module Obs = Tmest_obs.Obs
module Workspace = Tmest_core.Workspace
module Estimator = Tmest_core.Estimator
module Degrade = Tmest_core.Degrade
module Collect = Tmest_snmp.Collect
module Routing = Tmest_net.Routing
module Dataset = Tmest_traffic.Dataset
module Scan = Tmest_experiments.Ctx.Scan

type scenario = {
  flaps : (int * int * int) list;
  poller_drops : (int * int * int) list;
  resets : (int * int) list;
}

let no_scenario = { flaps = []; poller_drops = []; resets = [] }

type config = {
  est : Estimator.t;
  window : int;
  ticks : int;
  warm : bool;
  precond : Workspace.precond_kind;
  degrade : Degrade.policy;
  stream : Collect.config;
  scenario : scenario;
  pace : (unit -> unit) option;
}

let config ?(window = 8) ?(ticks = 288) ?(warm = true)
    ?(precond = Workspace.Precond_auto) ?(degrade = Degrade.default)
    ?(stream = Collect.default_config) ?(scenario = no_scenario) ?pace ~est ()
    =
  { est; window; ticks; warm; precond; degrade; stream; scenario; pace }

type tick_record = {
  tick : int;
  snapshot : int;
  epoch : int;
  loads : Vec.t;
  estimate : Vec.t;
  total_bps : float;
  health : Degrade.health option;
  missing : int;
  resets : int;
  polls_lost : int;
  latency_ns : int64;
}

type result = {
  records : tick_record list;
  ticks : int;
  aborted : int;
  epochs : int;
  ticks_per_sec : float;
  p50_ms : float;
  p99_ms : float;
  polls_lost : int;
  counter_resets : int;
}

(* The loop's per-routing-context state.  Workspaces are memoized by
   failed-link set, so a flap that restores re-enters the original
   workspace with all its cached factors (Gram, Cholesky, priors,
   preconditioners) intact; the measurement window and the warm chain
   are NOT carried across a switch — the window's rows were measured
   under a different R, and the warm tag is per epoch period, so a
   restored context starts a fresh chain instead of continuing one that
   ended under different traffic. *)
type epoch_state = {
  failed : int list;
  routing : Routing.t;
  ws : Workspace.t;
  series : Scan.Series.t;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) rank))

let run ?pool ?(sink = Obs.null) (cfg : config) dataset =
  if cfg.ticks <= 0 then invalid_arg "Daemon.run: ticks must be > 0";
  if cfg.window <= 0 then invalid_arg "Daemon.run: window must be > 0";
  let base_routing = dataset.Dataset.routing in
  let topo = base_routing.Routing.topo in
  let links = Dataset.num_links dataset in
  let ns = Dataset.num_samples dataset in
  if ns = 0 then invalid_arg "Daemon.run: dataset has no samples";
  (* A real collector knows its interface speeds; here the dataset plays
     that role.  Raise the classify believability ceiling to the day's
     peak link rate with 4x headroom for rerouted traffic, so a busy hub
     link is never misread as a counter reset. *)
  let stream_cfg =
    let peak = ref 0. in
    for k = 0 to ns - 1 do
      let truth = Routing.link_loads base_routing (Dataset.demand_at dataset k) in
      Array.iter (fun v -> if v > !peak then peak := v) truth
    done;
    {
      cfg.stream with
      Collect.max_rate_bps =
        Float.max cfg.stream.Collect.max_rate_bps (4. *. !peak);
    }
  in
  let stream = Collect.Stream.create stream_cfg ~links in
  let failed_at k =
    List.filter_map
      (fun (l, k0, k1) -> if k0 <= k && k <= k1 then Some l else None)
      cfg.scenario.flaps
    |> List.sort_uniq compare
  in
  let drops_at k =
    List.filter_map
      (fun (p, k0, k1) -> if k0 <= k && k <= k1 then Some p else None)
      cfg.scenario.poller_drops
  in
  let resets_at k =
    List.filter_map
      (fun (l, at) -> if at = k then Some l else None)
      cfg.scenario.resets
  in
  let contexts = Hashtbl.create 4 in
  let context_for failed =
    match Hashtbl.find_opt contexts failed with
    | Some rw -> rw
    | None ->
        let routing =
          match failed with
          | [] -> base_routing
          | _ -> (
              match Routing.without_links topo ~failed with
              | Some r -> r
              | None ->
                  invalid_arg "Daemon.run: flap disconnects the network")
        in
        let ws = Workspace.create ?pool ~sink routing in
        (* The shared capability predicate, checked before the first
           solve: a dense-only method would refuse mid-stream anyway,
           but refusing at context creation names the daemon rather
           than some inner solver. *)
        if Workspace.is_sparse ws && not (Estimator.supports_sparse cfg.est)
        then
          invalid_arg
            (Printf.sprintf
               "Daemon.run: method %s is dense-only and the workspace runs \
                in sparse mode"
               (Estimator.name cfg.est));
        Hashtbl.add contexts failed (routing, ws);
        (routing, ws)
  in
  let state_for failed =
    let routing, ws = context_for failed in
    {
      failed;
      routing;
      ws;
      series = Scan.Series.create ~name:"daemon" ws ~window:cfg.window ~links;
    }
  in
  let epoch = ref 0 in
  let cur = ref (state_for (failed_at 0)) in
  let records = ref [] in
  let aborted = ref 0 in
  let latencies = Array.make cfg.ticks 0L in
  for k = 0 to cfg.ticks - 1 do
    let failed = failed_at k in
    if failed <> !cur.failed then begin
      incr epoch;
      cur := state_for failed;
      if sink.Obs.enabled then
        Obs.counter sink "daemon.epoch" (float_of_int !epoch)
    end;
    let snapshot = k mod ns in
    let t_start = Obs.Clock.now_ns () in
    let work () =
      (* Ground truth for this interval under the *current* routing:
         the same demands flow, the failed links carry nothing. *)
      let truth =
        Routing.link_loads !cur.routing (Dataset.demand_at dataset snapshot)
      in
      let st =
        Collect.Stream.tick ~drop_pollers:(drops_at k)
          ~reset_links:(resets_at k) stream ~true_loads:truth
      in
      Scan.Series.push !cur.series st.Collect.Stream.loads;
      let stash = ref None in
      let policy = Degrade.with_on_health (fun h -> stash := Some h) cfg.degrade in
      let opts =
        Estimator.Options.make ~warm:cfg.warm
          ~warm_tag:(Printf.sprintf "daemon/e%d" !epoch)
          ~sink ~degrade:policy ~precond:cfg.precond ()
      in
      let estimate = Scan.Series.estimate ~opts !cur.series cfg.est in
      let total_bps = Vec.sum estimate in
      if sink.Obs.enabled then begin
        Obs.counter sink "daemon.estimate.total_bps" total_bps;
        Obs.counter sink "daemon.window.fill"
          (float_of_int (Scan.Series.fill !cur.series));
        Obs.counter sink "daemon.health.missing"
          (float_of_int st.Collect.Stream.missing);
        Obs.counter sink "daemon.health.resets"
          (float_of_int st.Collect.Stream.resets);
        Obs.counter sink "daemon.health.lost"
          (float_of_int st.Collect.Stream.polls_lost);
        match !stash with
        | Some h ->
            Obs.counter sink "daemon.health.clean"
              (if h.Degrade.clean then 1. else 0.);
            Obs.counter sink "daemon.health.imputed"
              (float_of_int h.Degrade.imputed)
        | None -> ()
      end;
      (st, estimate, total_bps, !stash)
    in
    (match
       if sink.Obs.enabled then
         Obs.span sink "daemon.tick"
           ~args:
             [
               ("tick", Obs.Int k);
               ("snapshot", Obs.Int snapshot);
               ("epoch", Obs.Int !epoch);
             ]
           work
       else work ()
     with
    | st, estimate, total_bps, health ->
        let latency_ns = Int64.sub (Obs.Clock.now_ns ()) t_start in
        latencies.(k) <- latency_ns;
        records :=
          {
            tick = k;
            snapshot;
            epoch = !epoch;
            loads = st.Collect.Stream.loads;
            estimate;
            total_bps;
            health;
            missing = st.Collect.Stream.missing;
            resets = st.Collect.Stream.resets;
            polls_lost = st.Collect.Stream.polls_lost;
            latency_ns;
          }
          :: !records
    | exception e ->
        (* A tick must never take the loop down: account it and keep
           polling — the next interval's data is independent. *)
        latencies.(k) <- Int64.sub (Obs.Clock.now_ns ()) t_start;
        incr aborted;
        if sink.Obs.enabled then begin
          Obs.counter sink "daemon.tick.aborted" (float_of_int k);
          ignore (Printexc.to_string e)
        end);
    match cfg.pace with Some f -> f () | None -> ()
  done;
  let ms = Array.map (fun ns -> Int64.to_float ns /. 1e6) latencies in
  Array.sort compare ms;
  let total_s =
    Array.fold_left (fun acc ns -> acc +. Int64.to_float ns) 0. latencies
    /. 1e9
  in
  {
    records = List.rev !records;
    ticks = cfg.ticks;
    aborted = !aborted;
    epochs = !epoch + 1;
    ticks_per_sec =
      (if total_s > 0. then float_of_int cfg.ticks /. total_s else 0.);
    p50_ms = percentile ms 0.50;
    p99_ms = percentile ms 0.99;
    polls_lost = Collect.Stream.total_lost stream;
    counter_resets = Collect.Stream.total_resets stream;
  }
