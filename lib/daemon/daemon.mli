(** The streaming estimation daemon: the ROADMAP's "from batch runs to
    a long-lived service".

    One {e tick} is one nominal SNMP interval (the paper's 5 minutes).
    Each tick the loop

    + polls every link counter through a jittered, lossy
      {!Tmest_snmp.Collect.Stream} round ({!Tmest_snmp.Counter.classify}
      turns the raw readings into believable deltas, duplicates, or
      resets),
    + pushes the recovered load row — [nan] where the collector has no
      believable measurement — into a sliding
      {!Tmest_experiments.Ctx.Scan.Series} window,
    + re-estimates with {!Tmest_core.Estimator.solve} under a warm
      start chained per epoch, with {!Tmest_core.Degrade} repairing the
      window online whenever the stream flagged drops or resets, and
    + emits an estimate record and a health record through the obs sink
      (a live JSONL feed via {!Tmest_obs.Recorder.Live}), the whole
      tick wrapped in a [daemon.tick] latency span.

    Routing changes (link flaps) switch the loop to a workspace
    memoized per failed-link set — fresh cached factors under the new
    [R] — invalidate the measurement window (its rows obey the old
    routing), and start a fresh warm chain tagged with the new epoch.

    Determinism: the loop is tick-sequential; the pool only fans out
    the pooled kernels underneath, which are bit-identical at every
    size — so a daemon run is bit-identical at jobs=1 and jobs=2, and a
    clean cold run is bit-identical to a batch
    {!Tmest_experiments.Ctx.Scan} over the same recovered series. *)

(** Mid-stream fault script, all tick indices inclusive. *)
type scenario = {
  flaps : (int * int * int) list;
      (** [(link, from, until)]: interior link [link] is down for ticks
          [from..until]; routing converges around it instantly *)
  poller_drops : (int * int * int) list;
      (** [(poller, from, until)]: every link assigned to [poller]
          misses its polls for ticks [from..until] *)
  resets : (int * int) list;
      (** [(link, tick)]: the link's counter restarts at that tick's
          start *)
}

val no_scenario : scenario

type config = {
  est : Tmest_core.Estimator.t;
  window : int;  (** sliding measurement window (rows) *)
  ticks : int;  (** intervals to run (288 = one day) *)
  warm : bool;  (** chain warm starts within an epoch *)
  precond : Tmest_core.Workspace.precond_kind;
  degrade : Tmest_core.Degrade.policy;
      (** online repair policy; on clean ticks the repair is a no-op
          returning the original arrays, so clean estimates are
          bit-identical to the undegraded path *)
  stream : Tmest_snmp.Collect.config;
  scenario : scenario;
  pace : (unit -> unit) option;
      (** called after every tick — a real deployment sleeps out the
          rest of the interval here; [None] free-runs (tests, bench) *)
}

(** [config ~est ()] with defaults: window 8, 288 ticks, warm,
    automatic preconditioning, {!Tmest_core.Degrade.default} repair,
    {!Tmest_snmp.Collect.default_config} stream, no scenario, no
    pacing. *)
val config :
  ?window:int ->
  ?ticks:int ->
  ?warm:bool ->
  ?precond:Tmest_core.Workspace.precond_kind ->
  ?degrade:Tmest_core.Degrade.policy ->
  ?stream:Tmest_snmp.Collect.config ->
  ?scenario:scenario ->
  ?pace:(unit -> unit) ->
  est:Tmest_core.Estimator.t ->
  unit ->
  config

type tick_record = {
  tick : int;
  snapshot : int;  (** dataset sample index the truth cycled to *)
  epoch : int;  (** routing epoch (0 until the first flap event) *)
  loads : Tmest_linalg.Vec.t;
      (** recovered link loads fed to the estimator, [nan] where the
          poll round had no believable measurement *)
  estimate : Tmest_linalg.Vec.t;  (** demand estimate, bits/s *)
  total_bps : float;
  health : Tmest_core.Degrade.health option;
      (** the online repair's health record ([clean = true] on clean
          ticks) *)
  missing : int;  (** [nan] entries in [loads] *)
  resets : int;  (** polls classified as counter resets this tick *)
  polls_lost : int;
  latency_ns : int64;  (** whole-tick latency (poll + window + solve) *)
}

type result = {
  records : tick_record list;  (** in tick order, aborted ticks absent *)
  ticks : int;
  aborted : int;  (** ticks that raised (always 0 in a healthy run) *)
  epochs : int;  (** epoch periods entered (1 = no routing change) *)
  ticks_per_sec : float;
      (** over the summed tick latencies — pacing excluded *)
  p50_ms : float;  (** median tick latency *)
  p99_ms : float;
  polls_lost : int;  (** stream total *)
  counter_resets : int;  (** stream total *)
}

(** [run ?pool ?sink cfg dataset] drives [cfg.ticks] intervals, cycling
    over the dataset's measurement day for ground truth.  [pool] fans
    out the solver kernels (the loop itself is tick-sequential);
    [sink] receives the live feed.  A tick that raises is counted in
    [aborted] and the loop keeps going. *)
val run :
  ?pool:Tmest_parallel.Pool.t ->
  ?sink:Tmest_obs.Obs.sink ->
  config ->
  Tmest_traffic.Dataset.t ->
  result
