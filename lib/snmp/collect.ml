module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Rng = Tmest_stats.Rng

type config = {
  interval_s : float;
  jitter_s : float;
  loss_prob : float;
  width : Counter.width;
  pollers : int;
  seed : int;
  max_rate_bps : float;
}

let default_config =
  {
    interval_s = 300.;
    jitter_s = 10.;
    loss_prob = 0.01;
    width = Counter.Bits64;
    pollers = 4;
    seed = 1;
    max_rate_bps = 100e9;
  }

type result = {
  rates : Mat.t;
  present : bool array array;
  polls_sent : int;
  polls_lost : int;
}

let run config ~true_rates ~samples ~pairs =
  if config.interval_s <= 0. then invalid_arg "Collect.run: interval <= 0";
  if config.jitter_s < 0. || config.jitter_s >= config.interval_s then
    invalid_arg "Collect.run: jitter must be in [0, interval)";
  if config.loss_prob < 0. || config.loss_prob >= 1. then
    invalid_arg "Collect.run: loss probability out of range";
  if config.pollers <= 0 then invalid_arg "Collect.run: need >= 1 poller";
  let rng = Rng.create config.seed in
  let interval = config.interval_s in
  (* Cumulative true byte counts per pair at nominal boundaries. *)
  let rate_rows = Array.init samples (fun k -> true_rates k) in
  let cum = Array.make_matrix (samples + 1) pairs 0. in
  for k = 0 to samples - 1 do
    for p = 0 to pairs - 1 do
      cum.(k + 1).(p) <- cum.(k).(p) +. (rate_rows.(k).(p) *. interval /. 8.)
    done
  done;
  let bytes_at ~pair t =
    let k = int_of_float (floor (t /. interval)) in
    let k = Stdlib.max 0 (Stdlib.min k (samples - 1)) in
    let dt = t -. (float_of_int k *. interval) in
    cum.(k).(pair) +. (rate_rows.(k).(pair) *. dt /. 8.)
  in
  (* Shared per-(poller, poll) jitter: a poller sweeps its routers in one
     burst; individual LSP reads land a few seconds apart. *)
  let poller_jitter =
    Array.init config.pollers (fun _ ->
        Array.init (samples + 1) (fun _ ->
            Rng.uniform rng ~lo:0. ~hi:config.jitter_s))
  in
  let rates = Mat.zeros samples pairs in
  let present = Array.init samples (fun _ -> Array.make pairs false) in
  let polls_sent = ref 0 and polls_lost = ref 0 in
  let wrap_mod =
    match config.width with
    | Counter.Bits32 -> 4294967296.
    | Counter.Bits64 -> 1.8446744073709552e19
  in
  for pair = 0 to pairs - 1 do
    let poller = pair mod config.pollers in
    let extra = Rng.uniform rng ~lo:0. ~hi:5. in
    (* Replay the successful polls, then difference them. *)
    let last_ok = ref None in
    for k = 0 to samples do
      incr polls_sent;
      let lost = Rng.float rng < config.loss_prob in
      (* Anchor the series: first and final polls always succeed, as a
         collector would retry until the series is bracketed. *)
      let lost = lost && k > 0 && k < samples in
      if lost then incr polls_lost
      else begin
        let jit =
          if config.jitter_s = 0. then 0.
          else Stdlib.min (config.jitter_s -. 1e-9)
                 (poller_jitter.(poller).(k) +. (extra /. 10.))
        in
        let t = (float_of_int k *. interval) +. jit in
        let reading = Float.rem (bytes_at ~pair t) wrap_mod in
        (match !last_ok with
        | None -> ()
        | Some (k0, t0, c0) ->
            let bytes =
              Counter.delta ~width:config.width ~previous:c0 ~current:reading
            in
            let rate = bytes *. 8. /. (t -. t0) in
            for j = k0 to k - 1 do
              Mat.set rates j pair rate;
              present.(j).(pair) <- k = k0 + 1
            done);
        last_ok := Some (k, t, reading)
      end
    done
  done;
  { rates; present; polls_sent = !polls_sent; polls_lost = !polls_lost }

module Stream = struct
  type tick = {
    tick : int;
    loads : Vec.t;
    missing : int;
    resets : int;
    polls_lost : int;
  }

  type t = {
    config : config;
    links : int;
    counters : Counter.t array;
    mutable advanced_to : float array;
    last_ok : Counter.poll option array;
    mutable ticks_done : int;
    mutable total_lost : int;
    mutable total_resets : int;
  }

  let create config ~links =
    if config.interval_s <= 0. then invalid_arg "Stream.create: interval <= 0";
    if config.jitter_s < 0. || config.jitter_s >= config.interval_s then
      invalid_arg "Stream.create: jitter must be in [0, interval)";
    if config.loss_prob < 0. || config.loss_prob >= 1. then
      invalid_arg "Stream.create: loss probability out of range";
    if config.pollers <= 0 then invalid_arg "Stream.create: need >= 1 poller";
    if config.max_rate_bps <= 0. then
      invalid_arg "Stream.create: max_rate_bps must be > 0";
    if links <= 0 then invalid_arg "Stream.create: need >= 1 link";
    {
      config;
      links;
      counters = Array.init links (fun _ -> Counter.create config.width);
      advanced_to = Array.make links 0.;
      (* Anchored baseline: a collector reads every counter once at
         start-up before the first interval, so interval 0 is already
         bracketed. *)
      last_ok = Array.init links (fun _ -> Some { Counter.t_s = 0.; value = 0. });
      ticks_done = 0;
      total_lost = 0;
      total_resets = 0;
    }

  let ticks_done t = t.ticks_done

  let advance_counter t l ~to_time ~rate_bps =
    let dt = to_time -. t.advanced_to.(l) in
    if dt > 0. then begin
      Counter.advance t.counters.(l) ~bytes:(rate_bps *. dt /. 8.);
      t.advanced_to.(l) <- to_time
    end

  let tick ?(drop_pollers = []) ?(reset_links = []) t ~true_loads =
    if Array.length true_loads <> t.links then
      invalid_arg "Stream.tick: load vector has the wrong length";
    let k = t.ticks_done in
    let interval = t.config.interval_s in
    let t_end = float_of_int (k + 1) *. interval in
    let loads = Array.make t.links nan in
    let missing = ref 0 and resets = ref 0 and lost_polls = ref 0 in
    (* Mid-stream counter restart: the router rebooted at this tick's
       boundary.  The poller only learns of it from the next reading. *)
    List.iter
      (fun l ->
        if l >= 0 && l < t.links then begin
          t.counters.(l) <- Counter.create t.config.width;
          t.advanced_to.(l) <- float_of_int k *. interval
        end)
      reset_links;
    for l = 0 to t.links - 1 do
      let poller = l mod t.config.pollers in
      (* One indexed RNG per (link, tick) cell, so loss and jitter draws
         are a pure function of (seed, link, tick) — independent of the
         processing order and of every other link's fate. *)
      let rng = Rng.of_pair t.config.seed ((k * t.links) + l) in
      let jit =
        if t.config.jitter_s = 0. then 0.
        else Rng.uniform rng ~lo:0. ~hi:t.config.jitter_s
      in
      let dropped = List.mem poller drop_pollers in
      let lost = dropped || Rng.float rng < t.config.loss_prob in
      if lost then begin
        incr lost_polls;
        incr missing
      end
      else begin
        (* The poll for boundary k+1 lands [jit] early, inside interval
           k — it never needs the next interval's rate. *)
        let t_poll = t_end -. jit in
        advance_counter t l ~to_time:t_poll ~rate_bps:true_loads.(l);
        let cur =
          { Counter.t_s = t_poll; value = Counter.read t.counters.(l) }
        in
        (match t.last_ok.(l) with
        | None -> incr missing
        | Some prev -> (
            match
              Counter.classify ~width:t.config.width
                ~max_rate_bps:t.config.max_rate_bps ~prev ~cur ()
            with
            | Counter.Delta bytes ->
                loads.(l) <- bytes *. 8. /. (cur.Counter.t_s -. prev.Counter.t_s)
            | Counter.Duplicate -> incr missing
            | Counter.Reset _ ->
                (* The reading is only a new baseline; no believable
                   rate exists for this interval. *)
                incr resets;
                incr missing));
        t.last_ok.(l) <- Some cur
      end;
      (* Whatever happened, traffic keeps flowing: bring the counter to
         the interval boundary so the next tick integrates its own rate
         only. *)
      advance_counter t l ~to_time:t_end ~rate_bps:true_loads.(l)
    done;
    t.ticks_done <- k + 1;
    t.total_lost <- t.total_lost + !lost_polls;
    t.total_resets <- t.total_resets + !resets;
    { tick = k; loads; missing = !missing; resets = !resets;
      polls_lost = !lost_polls }

  let total_lost t = t.total_lost
  let total_resets t = t.total_resets
end

let mean_absolute_rate_error result ~true_rates =
  let samples = Mat.rows result.rates and pairs = Mat.cols result.rates in
  let total = ref 0. and count = ref 0 in
  for k = 0 to samples - 1 do
    let truth = true_rates k in
    for p = 0 to pairs - 1 do
      if result.present.(k).(p) then begin
        let err =
          abs_float (Mat.get result.rates k p -. truth.(p))
          /. Stdlib.max truth.(p) 1.
        in
        total := !total +. err;
        incr count
      end
    done
  done;
  if !count = 0 then 0. else !total /. float_of_int !count
