(** SNMP-style octet counters.

    A monotonically increasing byte counter as exposed by a router MIB,
    either 64-bit ([ifHCOutOctets]-like, practically never wraps) or
    32-bit ([ifOutOctets]-like, wraps modulo 2^32 — within seconds on
    multi-gigabit links, which is why collection systems poll the HC
    counters).  [delta] implements the collector-side wrap correction. *)

type width = Bits32 | Bits64

type t

(** [create width] is a fresh zero counter. *)
val create : width -> t

(** [advance t ~bytes] accumulates traffic.  Fractional bytes are
    carried exactly (the simulation integrates rates over real-valued
    intervals). *)
val advance : t -> bytes:float -> unit

(** [read t] is the current counter value as exposed over SNMP
    (wrapped for 32-bit counters). *)
val read : t -> float

(** [delta ~width ~previous ~current] is the number of bytes sent
    between two readings, correcting a single wrap for 32-bit counters.
    A 32-bit counter that wraps more than once between polls is
    undetectable — exactly the real-world failure mode. *)
val delta : width:width -> previous:float -> current:float -> float

(** One timestamped counter reading. *)
type poll = { t_s : float; value : float }

type verdict =
  | Delta of float  (** believable byte count for the interval *)
  | Duplicate
      (** same (or earlier) timestamp — a retransmitted or reordered
          poll; contributes no traffic *)
  | Reset of float
      (** the counter restarted; the payload is the new raw reading,
          the baseline for the next interval *)

(** [classify ~width ?max_rate_bps ~prev ~cur ()] is the collector-side
    judgement of two consecutive readings.  Non-positive inter-poll
    time is a {!Duplicate}; a 64-bit counter going backwards is a
    {!Reset} (it cannot plausibly wrap); and a wrap-corrected
    difference implying a rate above [max_rate_bps] (default 100 Gbps)
    is a {!Reset} disguised as a wrap.  Everything else is a believable
    {!Delta}. *)
val classify :
  width:width ->
  ?max_rate_bps:float ->
  prev:poll ->
  cur:poll ->
  unit ->
  verdict
