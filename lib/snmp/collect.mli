(** The distributed SNMP collection pipeline of Section 5.1.2.

    Per-LSP byte counters sit on head-end routers; a set of pollers
    queries them every 5 minutes at fixed timestamps, with per-poll
    response-time jitter and UDP loss.  The collector corrects each rate
    for the length of the *real* measurement interval (recorded response
    times), which is what makes the recovered rates a uniform time
    series despite the jitter.

    The simulation integrates the ground-truth piecewise-constant rates
    into counters and replays the polling, returning the recovered
    traffic-matrix time series and a missing-sample mask. *)

type config = {
  interval_s : float;  (** nominal polling period (300 s) *)
  jitter_s : float;  (** max absolute response-time jitter per poll *)
  loss_prob : float;  (** probability a poll is lost (SNMP over UDP) *)
  width : Counter.width;  (** counter width on the routers *)
  pollers : int;  (** LSPs are spread round-robin over this many pollers *)
  seed : int;
  max_rate_bps : float;
      (** believability ceiling for {!Counter.classify}: a delta implying
          a rate above this is treated as a counter reset, not a
          measurement.  Set it from the provisioned interface speeds —
          too low and legitimate peaks are discarded as resets. *)
}

val default_config : config

type result = {
  rates : Tmest_linalg.Mat.t;
      (** [samples x pairs] recovered rates (bits/s); entry [k] covers
          nominal interval [k] *)
  present : bool array array;
      (** [present.(k).(p)] is false when the poll ending interval [k]
          was lost — the rate there is the average over the longer gap,
          assigned to every missed interval *)
  polls_sent : int;
  polls_lost : int;
}

(** [run config ~true_rates ~samples ~pairs] replays the collection.
    [true_rates k] must give the ground-truth rate vector (bits/s)
    holding during nominal interval [k] (0 <= k < samples). *)
val run :
  config ->
  true_rates:(int -> Tmest_linalg.Vec.t) ->
  samples:int ->
  pairs:int ->
  result

(** Incremental, per-interval variant of {!run} for long-lived
    consumers: one poll round per call, over {e link} counters (the
    estimation input is the link-load vector, not per-LSP rates).

    Each link keeps a cumulative byte counter that the stream integrates
    from the caller-supplied true rates; the poll for boundary [k+1]
    lands up to [jitter_s] {e early} (inside interval [k]), is lost with
    [loss_prob], and the surviving readings go through
    {!Counter.classify} — so drops, 32-bit wraps and mid-stream resets
    surface exactly as a collector would see them.  Loss and jitter
    draws are indexed per [(link, tick)] cell
    ({!Tmest_stats.Rng.of_pair}), so a stream's output is a pure
    function of [(config, links, true loads, scenario)] — replaying the
    same inputs reproduces the same series bit for bit. *)
module Stream : sig
  type t

  (** One completed poll round. *)
  type tick = {
    tick : int;  (** nominal interval index, counting from 0 *)
    loads : Tmest_linalg.Vec.t;
        (** recovered link loads (bits/s); [nan] where this interval has
            no believable fresh measurement (lost poll, reset baseline) *)
    missing : int;  (** number of [nan] entries in [loads] *)
    resets : int;  (** polls this round classified as {!Counter.Reset} *)
    polls_lost : int;  (** polls lost this round (UDP loss or dropped
                           poller) *)
  }

  (** [create config ~links] starts a stream with every counter zeroed
      and an anchored baseline reading at t = 0. *)
  val create : config -> links:int -> t

  (** [tick ?drop_pollers ?reset_links t ~true_loads] runs one poll
      round against the true link rates holding during this nominal
      interval.  [drop_pollers] silences whole pollers for the round (a
      crashed collector: every link assigned to it misses);
      [reset_links] restarts those links' counters at the interval
      start (the wrap/reset path of {!Counter.classify} fires on the
      next reading). *)
  val tick :
    ?drop_pollers:int list ->
    ?reset_links:int list ->
    t ->
    true_loads:Tmest_linalg.Vec.t ->
    tick

  (** [ticks_done t] is the number of completed rounds. *)
  val ticks_done : t -> int

  val total_lost : t -> int
  val total_resets : t -> int
end

(** [mean_absolute_rate_error result ~true_rates] is the mean over all
    present samples of |recovered - true| / max(true, 1) — a pipeline
    health metric used by tests and the quickstart example. *)
val mean_absolute_rate_error :
  result -> true_rates:(int -> Tmest_linalg.Vec.t) -> float
