type width = Bits32 | Bits64

type t = { width : width; mutable value : float }

let modulus = function Bits32 -> 4294967296. | Bits64 -> 1.8446744073709552e19

let create width = { width; value = 0. }

let advance t ~bytes =
  if bytes < 0. then invalid_arg "Counter.advance: negative byte count";
  let m = modulus t.width in
  t.value <- Float.rem (t.value +. bytes) m

let read t = t.value

let delta ~width ~previous ~current =
  if current >= previous then current -. previous
  else current -. previous +. modulus width

type poll = { t_s : float; value : float }

type verdict =
  | Delta of float
  | Duplicate
  | Reset of float

let classify ~width ?(max_rate_bps = 100e9) ~prev ~cur () =
  let dt = cur.t_s -. prev.t_s in
  if dt <= 0. then Duplicate
  else
    match width with
    | Bits64 when cur.value < prev.value ->
        (* A 64-bit counter cannot wrap between realistic polls; going
           backwards means the counter restarted. *)
        Reset cur.value
    | _ ->
        let d = delta ~width ~previous:prev.value ~current:cur.value in
        (* The wrap correction turns a restart into a huge positive
           difference; anything beyond the line rate is physically
           impossible and must be a reset. *)
        if d *. 8. > max_rate_bps *. dt then Reset cur.value else Delta d
