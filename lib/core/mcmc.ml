module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Csr = Tmest_linalg.Csr
module Eigen = Tmest_linalg.Eigen
module Rng = Tmest_stats.Rng
module Dist = Tmest_stats.Dist
module Desc = Tmest_stats.Desc
module Simplex = Tmest_opt.Simplex
module Routing = Tmest_net.Routing
module Pool = Tmest_parallel.Pool

type result = {
  mean : Vec.t;
  lower : Vec.t;
  upper : Vec.t;
  samples : int;
  null_dim : int;
}

(* Draw from the density ∝ exp(-c x) on [0, len].  Reduction to c >= 0
   by reflection keeps the inverse CDF numerically safe. *)
let rec truncated_exp rng ~c ~len =
  if len <= 0. then 0.
  else if c < 0. then len -. truncated_exp rng ~c:(-.c) ~len
  else if c *. len < 1e-12 then Rng.float rng *. len
  else begin
    let u = Rng.float rng in
    let tail = exp (-.(c *. len)) in
    let x = -.log (1. -. (u *. (1. -. tail))) /. c in
    Stdlib.min x len
  end

type prior_model = [ `Exponential | `Uniform ]

let sample ?(burn_in = 500) ?(samples = 1000) ?(thin = 5) ?(seed = 1)
    ?(chains = 1) ?(prior_model = `Exponential) ws ~loads ~prior =
  (* Documented dense-only exclusion: the chain moves along null-space
     directions of a dense simplex tableau. *)
  if Workspace.is_sparse ws then
    invalid_arg
      "Mcmc.sample: simplex-based posterior sampling is a dense-only \
       method; not available on a sparse-mode workspace";
  let routing = Workspace.routing ws in
  Problem.check_dims routing ~loads;
  let p = Routing.num_pairs routing in
  if Array.length prior <> p then
    invalid_arg "Mcmc.sample: prior dimension mismatch";
  if burn_in < 0 || samples <= 0 || thin <= 0 || chains <= 0 then
    invalid_arg "Mcmc.sample: bad chain parameters";
  let scale = Workspace.total_traffic ws ~loads in
  let scale = if scale > 0. then scale else 1. in
  let t_n = Vec.scale (1. /. scale) loads in
  let floor_p = 1e-9 in
  let inv_prior =
    match prior_model with
    | `Uniform -> Vec.zeros p
    | `Exponential ->
        Vec.map (fun x -> 1. /. Stdlib.max (x /. scale) floor_p) prior
  in
  (* Starting point: a vertex blocks every null-space direction (some
     zero coordinate resists any dense move), so average the optimal
     vertices of a handful of random linear objectives — each is exactly
     feasible, and their mean is a relative-interior point the chain can
     move from. *)
  let state = Simplex.make (Workspace.dense ws) t_n in
  let start_rng = Rng.create (seed + 77) in
  let vertex_count = 16 in
  let start = Vec.zeros p in
  let found = ref 0 in
  for _ = 1 to vertex_count do
    let objective = Vec.init p (fun _ -> Dist.standard_gaussian start_rng) in
    match Simplex.maximize state objective with
    | Simplex.Optimal { x; _ } ->
        Vec.axpy_into 1. x start ~dst:start;
        incr found
    | Simplex.Unbounded -> ()
  done;
  let start0 =
    if !found = 0 then Simplex.feasible_point state
    else Vec.scale (1. /. float_of_int !found) start
  in
  (* Null-space basis of R from the spectrum of its Gram matrix. *)
  let d = Workspace.gram_eigen ws in
  let top = Stdlib.max d.Eigen.values.(0) 1e-30 in
  let null_cols = ref [] in
  Array.iteri
    (fun j v -> if v < 1e-9 *. top then null_cols := j :: !null_cols)
    d.Eigen.values;
  let basis =
    List.map (fun j -> Mat.col d.Eigen.vectors j) !null_cols
  in
  let null_dim = List.length basis in
  let collected = Mat.zeros samples p in
  (* Each chain owns a contiguous block of [collected] rows and an
     [Rng] derived from its index, so the pooled run writes exactly the
     bits the sequential run would — chain streams depend on
     (seed, chain), never on scheduling or creation order. *)
  let run_chain chain =
    let lo = chain * samples / chains and hi = (chain + 1) * samples / chains in
    if hi > lo then begin
      let rng = Rng.of_pair seed chain in
      let s = ref (Vec.copy start0) in
      let step () =
        match basis with
        | [] -> () (* fully determined system: the posterior is a point *)
        | _ ->
            (* Random direction in the null space. *)
            let dir = Vec.zeros p in
            List.iter
              (fun v ->
                Vec.axpy_into (Dist.standard_gaussian rng) v dir ~dst:dir)
              basis;
            let norm = Vec.norm2 dir in
            if norm > 1e-12 then begin
              let dir = Vec.scale (1. /. norm) dir in
              (* Feasible segment s + theta * dir >= 0. *)
              let theta_min = ref neg_infinity and theta_max = ref infinity in
              Array.iteri
                (fun i di ->
                  if di > 1e-14 then
                    theta_min := Stdlib.max !theta_min (-.(!s.(i)) /. di)
                  else if di < -1e-14 then
                    theta_max := Stdlib.min !theta_max (!s.(i) /. -.di))
                dir;
              if Float.is_finite !theta_min && Float.is_finite !theta_max
                 && !theta_max > !theta_min
              then begin
                let c = Vec.dot dir inv_prior in
                let len = !theta_max -. !theta_min in
                let x = truncated_exp rng ~c ~len in
                let theta = !theta_min +. x in
                s := Vec.clamp_nonneg (Vec.axpy theta dir !s)
              end
            end
      in
      for _ = 1 to burn_in do
        step ()
      done;
      for k = lo to hi - 1 do
        for _ = 1 to thin do
          step ()
        done;
        Mat.set_row collected k (Vec.scale scale !s)
      done
    end
  in
  (match Workspace.pool ws with
  | Some pool when chains > 1 -> Pool.parallel_for pool ~n:chains run_chain
  | _ ->
      for chain = 0 to chains - 1 do
        run_chain chain
      done);
  let mean = Vec.zeros p and lower = Vec.zeros p and upper = Vec.zeros p in
  for j = 0 to p - 1 do
    let col = Mat.col collected j in
    mean.(j) <- Desc.mean col;
    lower.(j) <- Desc.quantile 0.05 col;
    upper.(j) <- Desc.quantile 0.95 col
  done;
  { mean; lower; upper; samples; null_dim }
