(** Traffic-matrix inference from deliberate routing changes
    (Nucci, Cruz, Taft, Diot, INFOCOM 2004 — the paper's reference
    [14]).

    Changing IGP link weights moves demands onto different paths; link
    loads observed under several routing configurations constrain the
    same demand vector through several routing matrices at once:

    {v  min Σ_i ‖R_i s − t_i‖²   subject to  s >= 0  v}

    Each extra configuration adds up to [L] fresh equations, so a demand
    unidentifiable under one routing can become pinned after a weight
    change.  Assumes the demands stay constant across the snapshots
    (take them minutes apart). *)

type result = {
  estimate : Tmest_linalg.Vec.t;
  iterations : int;
  converged : bool;
  stacked_rank_gain : int;
      (** rank of the stacked Gram minus rank of the first
          configuration's Gram (numerical, informative only) *)
}

(** [estimate ?stop configs] solves the stacked problem.
    [configs] pairs each routing context's workspace with the loads
    observed under it; all must share the OD-pair dimension.
    @raise Invalid_argument on an empty list or dimension mismatch. *)
val estimate :
  ?stop:Tmest_opt.Stop.t ->
  (Workspace.t * Tmest_linalg.Vec.t) list ->
  result
