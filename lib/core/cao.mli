(** Cao et al.'s generalized-linear-model estimator — the method the
    paper lists as future work ("we have not implemented and evaluated
    the approach by Cao et al.; clearly, a more complete evaluation
    should include also this method").  Implemented here as an
    extension.

    The model generalizes Vardi's Poisson assumption to
    [s_p ~ N(λ_p, φ λ_p^c)] with independent OD flows, giving

    {v E t = R λ,   Cov t = R diag(φ λ^c) Rᵀ v}

    Moment matching minimizes

    {v min ‖R λ − t̂‖² + σ⁻² ‖R diag(φ λ^c) Rᵀ − Σ̂‖_F²,  λ >= 0 v}

    which is non-convex for [c ≠ 1]; we solve it by projected gradient
    with backtracking line search from the first-moment NNLS solution
    (a pseudo-likelihood analogue of Cao et al.'s pseudo-EM). *)

type result = {
  estimate : Tmest_linalg.Vec.t;  (** estimated mean rates, bits/s *)
  objective : float;  (** final (normalized-unit) objective value *)
  iterations : int;
}

(** [estimate ?x0 ?stop ?unit_bps ws ~load_samples ~phi ~c
    ~sigma_inv2] runs the estimator.  [phi] and [c] are the scaling-law
    parameters in the chosen counting unit ([unit_bps], default 1 Mbps);
    [c = 1, phi = 1] recovers Vardi's objective.  [x0] is an optional
    warm-start estimate in bits/s; when given, the first-moment
    bootstrap solve is skipped and the line search starts from [x0].
    [precond] (default {!Workspace.Precond_none}) preconditions the
    first-moment bootstrap solve in the [diag(2·diag(RᵀR))] metric; the
    nonconvex outer loop is left unpreconditioned (it backtracks its own
    step). *)
val estimate :
  ?x0:Tmest_linalg.Vec.t ->
  ?stop:Tmest_opt.Stop.t ->
  ?unit_bps:float ->
  ?precond:Workspace.precond_kind ->
  Workspace.t ->
  load_samples:Tmest_linalg.Mat.t ->
  phi:float ->
  c:float ->
  sigma_inv2:float ->
  result
