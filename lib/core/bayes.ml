module Vec = Tmest_linalg.Vec
module Csr = Tmest_linalg.Csr
module Fista = Tmest_opt.Fista
module Stop = Tmest_opt.Stop
module Routing = Tmest_net.Routing

type result = {
  estimate : Vec.t;
  iterations : int;
  converged : bool;
}

let estimate ?x0 ?(stop = Stop.default) ?(precond = Workspace.Precond_none) ws
    ~loads ~prior ~sigma2 =
  let stop =
    Workspace.solver_stop ws stop ~label:"bayes/fista" ~max_iter:4000
      ~tol:1e-10
  in
  let routing = Workspace.routing ws in
  Problem.check_dims routing ~loads;
  if sigma2 <= 0. then invalid_arg "Bayes.estimate: sigma2 must be positive";
  let p = Routing.num_pairs routing in
  if Array.length prior <> p then
    invalid_arg "Bayes.estimate: prior dimension mismatch";
  let r = routing.Routing.matrix in
  let scale = Workspace.total_traffic ws ~loads in
  let scale = if scale > 0. then scale else 1. in
  let t_n = Vec.scale (1. /. scale) loads in
  let prior_n = Vec.scale (1. /. scale) prior in
  let w = 1. /. sigma2 in
  (* grad = 2 Rᵀ(R s − t) + 2 w (s − prior), staged through one
     links-dimension buffer so solver iterations allocate nothing. *)
  let l = Routing.num_links routing in
  let pool = Workspace.pool ws in
  let tmp_l = (Workspace.scratch ws ~name:"bayes.links" ~dim:l ~count:1).(0) in
  let gradient_into s ~dst =
    Csr.matvec_into ?pool r s ~dst:tmp_l;
    Vec.sub_into tmp_l t_n ~dst:tmp_l;
    Csr.tmatvec_into r tmp_l ~dst;
    for i = 0 to p - 1 do
      dst.(i) <- 2. *. (dst.(i) +. (w *. (s.(i) -. prior_n.(i))))
    done
  in
  (* Curvature is H = 2G + 2wI, so the exact diagonal metric is
     d_i = 2g_i + 2w — strictly positive for any w > 0, no zero guard
     needed.  Block degrades to Jacobi: the projection (clamp) is
     separable only under a diagonal metric. *)
  let dinv =
    match Workspace.resolve_precond ws precond with
    | Workspace.Precond_none -> None
    | Workspace.Precond_jacobi | Workspace.Precond_block
    | Workspace.Precond_auto ->
        Some
          (Workspace.precond_vec ws
             ~key:(Printf.sprintf "bayes.jacobi.dinv:%h" w)
             ~compute:(fun () ->
               Vec.map
                 (fun g -> 1. /. ((2. *. g) +. (2. *. w)))
                 (Workspace.gram_diag ws)))
  in
  let lipschitz =
    match dinv with
    | None -> (2. *. Workspace.op_norm ws) +. (2. *. w)
    | Some dinv ->
        Workspace.cached_lipschitz ws
          ~key:(Printf.sprintf "bayes.jacobi.norm:%h" w)
          ~compute:(fun () ->
            let ds = Vec.map sqrt dinv in
            Tmest_opt.Fista.lipschitz_of_op ~dim:p (fun v ->
                let u = Vec.mul ds v in
                let h = Csr.tmatvec r (Csr.matvec r u) in
                Vec.mapi
                  (fun i hi -> ((2. *. hi) +. (2. *. w *. u.(i))) *. ds.(i))
                  h))
  in
  let start =
    match x0 with
    | None -> prior_n
    | Some v ->
        (* Warm start, rescaled to the solver's normalized units. *)
        Vec.map (fun x -> Stdlib.max 0. (x /. scale)) v
  in
  let scratch =
    Workspace.scratch ws ~name:"fista" ~dim:p ~count:Fista.scratch_size
  in
  (* Traced runs only; allocates freely. *)
  let objective s =
    let resid = Vec.sub (Csr.matvec r s) t_n in
    let dev = Vec.sub s prior_n in
    Vec.dot resid resid +. (w *. Vec.dot dev dev)
  in
  let res =
    Fista.solve_into ~x0:start ~stop ~scratch ~objective ?dinv ~dim:p
      ~gradient_into ~lipschitz ()
  in
  if not res.Fista.converged then
    Logs.warn ~src:Problem.log_src (fun m ->
        m "Bayes.estimate: no convergence after %d iterations (sigma2 = %g)"
          res.Fista.iterations sigma2);
  {
    estimate = Vec.scale scale res.Fista.x;
    iterations = res.Fista.iterations;
    converged = res.Fista.converged;
  }
