module Vec = Tmest_linalg.Vec
module Csr = Tmest_linalg.Csr
module Fista = Tmest_opt.Fista
module Routing = Tmest_net.Routing

type result = {
  estimate : Vec.t;
  iterations : int;
  converged : bool;
}

let estimate ?(max_iter = 4000) ?(tol = 1e-10) ws ~loads ~prior ~sigma2 =
  let routing = Workspace.routing ws in
  Problem.check_dims routing ~loads;
  if sigma2 <= 0. then invalid_arg "Bayes.estimate: sigma2 must be positive";
  let p = Routing.num_pairs routing in
  if Array.length prior <> p then
    invalid_arg "Bayes.estimate: prior dimension mismatch";
  let r = routing.Routing.matrix in
  let scale = Workspace.total_traffic ws ~loads in
  let scale = if scale > 0. then scale else 1. in
  let t_n = Vec.scale (1. /. scale) loads in
  let prior_n = Vec.scale (1. /. scale) prior in
  let w = 1. /. sigma2 in
  (* grad = 2 Rᵀ(R s − t) + 2 w (s − prior). *)
  let gradient s =
    let res = Vec.sub (Csr.matvec r s) t_n in
    let g = Csr.tmatvec r res in
    Vec.mapi (fun i gi -> 2. *. (gi +. (w *. (s.(i) -. prior_n.(i))))) g
  in
  let lip_r = Workspace.op_norm ws in
  let lipschitz = (2. *. lip_r) +. (2. *. w) in
  let res =
    Fista.solve ~x0:(Vec.copy prior_n) ~max_iter ~tol ~dim:p ~gradient
      ~lipschitz ()
  in
  if not res.Fista.converged then
    Logs.warn ~src:Problem.log_src (fun m ->
        m "Bayes.estimate: no convergence after %d iterations (sigma2 = %g)"
          res.Fista.iterations sigma2);
  {
    estimate = Vec.scale scale res.Fista.x;
    iterations = res.Fista.iterations;
    converged = res.Fista.converged;
  }
