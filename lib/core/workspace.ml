module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Csr = Tmest_linalg.Csr
module Chol = Tmest_linalg.Chol
module Eigen = Tmest_linalg.Eigen
module Op = Tmest_linalg.Op
module Fista = Tmest_opt.Fista
module Routing = Tmest_net.Routing
module Topology = Tmest_net.Topology
module Pool = Tmest_parallel.Pool
module Obs = Tmest_obs.Obs

type prior_kind = Prior_gravity | Prior_wcb | Prior_uniform

type mode = Auto | Dense | Sparse

(* Preconditioner policy, resolved per workspace.  [Precond_auto] picks
   Jacobi in sparse mode — where iteration counts dominate wall-clock
   and the exact Gram diagonal is one O(nnz) pass — and none in dense
   mode, keeping every historical dense golden result bit-identical. *)
type precond_kind = Precond_auto | Precond_jacobi | Precond_block | Precond_none

(* Above this many OD pairs the dense artifacts (Gram, R, Cholesky,
   eigen) become the memory bottleneck — a 10⁴-pair Gram is ~1 GB — so
   [Auto] switches the workspace to matrix-free operators.  The paper
   networks (132 and 600 pairs) stay far below the gate, keeping every
   historical dense code path and its golden results bit-identical. *)
let sparse_gate = 2048

(* Internal mutable counters; snapshots exposed as immutable records.
   All mutation happens under the workspace lock, so hit/miss totals
   stay exact even when several domains solve concurrently. *)
type c = { mutable h : int; mutable m : int; mutable s : float }

let c_zero () = { h = 0; m = 0; s = 0. }

type counters = {
  c_gram : c;
  c_chol : c;
  c_eigen : c;
  c_transpose : c;
  c_dense : c;
  c_op : c;
  c_lipschitz : c;
  c_prior : c;
  c_total : c;
  c_solve : c;
  c_warm : c;
  c_precond : c;
}

(* Load-keyed caches are bounded MRU lists: snapshot sweeps reuse the
   same few load vectors and hit; long scans (e.g. the greedy
   combined-method search, which solves against thousands of distinct
   right-hand sides) cannot grow the workspace without bound. *)
let max_keyed = 8

(* Prior slots carry an explicit "being computed" state because the
   computation closure ([Estimator.build_prior_ws]) re-enters the
   workspace — the WCB prior calls [dense] and [total_traffic] — so it
   must run outside the lock; concurrent requests for the same
   [(kind, loads)] wait on [filled] instead of recomputing, which keeps
   the miss count at exactly one per materialized prior. *)
type prior_slot = {
  p_kind : prior_kind;
  p_loads : Vec.t;
  mutable p_value : Vec.t option;
}

type t = {
  mutable sink : Obs.sink;
      (* trace destination for everything solved against this routing
         context; [Obs.null] keeps every probe to a single branch *)
  routing : Routing.t;
  sparse : bool;
  ingress : int array;
  egress : int array;
  lock : Mutex.t;
  filled : Condition.t;
  mutable pool : Pool.t option;
  mutable gram : Mat.t option;
  mutable gram_sq : Mat.t option;
  mutable chol : Chol.t option;
  mutable eigen : Eigen.t option;
  mutable transpose : Csr.t option;
  mutable dense : Mat.t option;
  mutable zfac : Csr.t option;
      (* sparse mode: Z with ZᵀZ = (RᵀR)∘(RᵀR), see [z_factor] *)
  mutable op_norm : float option;
  mutable gram_norm : float option;
  lipschitz_tbl : (string, float) Hashtbl.t;
  op_tbl : (string * int, Op.t) Hashtbl.t;
      (* operator values keyed by (name, domain): compositions own
         scratch buffers, so each domain gets private closures *)
  mutable totals : (Vec.t * float) list;  (* MRU *)
  mutable priors : prior_slot list;  (* MRU *)
  scratch_tbl : (string * int * int, Vec.t array) Hashtbl.t;
      (* keyed by (consumer, dim, domain): each domain owns its arena *)
  scratch_mat_tbl : (string * int * int * int, Mat.t) Hashtbl.t;
      (* matrix arenas keyed by (consumer, rows, cols, domain): the
         window-scan samples buffers, one per scanning domain *)
  mutable warm : (string * Vec.t) list;  (* MRU *)
  mutable gdiag : Vec.t option;  (* exact diag(RᵀR) *)
  precond_tbl : (string, Vec.t) Hashtbl.t;
      (* memoized preconditioner diagonals, keyed by a method-built
         string with parameters %h-encoded; values are shared read-only
         so one entry serves every domain *)
  block_tbl : (string * int, (Vec.t -> dst:Vec.t -> unit) option) Hashtbl.t;
      (* block-Jacobi appliers per (key, domain) — the closures own
         gather buffers; [None] caches a memory-gate refusal *)
  mutable last_iters : (string * int) list;  (* MRU, per method name *)
  counters : counters;
  mutable solve_words : float;  (* cumulative allocation over solves *)
  mutable peak_words : float;  (* largest single-solve allocation *)
  mutable heap_words : float;  (* top-of-heap watermark after a solve *)
}

let create ?pool ?(sink = Obs.null) ?(mode = Auto) routing =
  let n = Topology.num_nodes routing.Routing.topo in
  let sparse =
    match mode with
    | Dense -> false
    | Sparse -> true
    | Auto -> Routing.num_pairs routing > sparse_gate
  in
  {
    sink;
    routing;
    sparse;
    ingress = Array.init n (fun i -> Routing.ingress_row routing i);
    egress = Array.init n (fun i -> Routing.egress_row routing i);
    lock = Mutex.create ();
    filled = Condition.create ();
    pool;
    gram = None;
    gram_sq = None;
    chol = None;
    eigen = None;
    transpose = None;
    dense = None;
    zfac = None;
    op_norm = None;
    gram_norm = None;
    lipschitz_tbl = Hashtbl.create 7;
    op_tbl = Hashtbl.create 7;
    totals = [];
    priors = [];
    scratch_tbl = Hashtbl.create 7;
    scratch_mat_tbl = Hashtbl.create 7;
    warm = [];
    gdiag = None;
    precond_tbl = Hashtbl.create 7;
    block_tbl = Hashtbl.create 7;
    last_iters = [];
    counters =
      {
        c_gram = c_zero ();
        c_chol = c_zero ();
        c_eigen = c_zero ();
        c_transpose = c_zero ();
        c_dense = c_zero ();
        c_op = c_zero ();
        c_lipschitz = c_zero ();
        c_prior = c_zero ();
        c_total = c_zero ();
        c_solve = c_zero ();
        c_warm = c_zero ();
        c_precond = c_zero ();
      };
    solve_words = 0.;
    peak_words = 0.;
    heap_words = 0.;
  }

let routing t = t.routing
let mode t = if t.sparse then Sparse else Dense
let is_sparse t = t.sparse

let resolve_precond t = function
  | Precond_auto -> if t.sparse then Precond_jacobi else Precond_none
  | k -> k
let sink t = t.sink
let set_sink t s = t.sink <- s

(* Every estimation method resolves its caller-supplied stopping policy
   the same way: its own defaults fill unset limits, the workspace sink
   backs an unset sink, and the method's name becomes the trace label
   unless the caller already attached one (e.g. a per-chunk tag). *)
let solver_stop t stop ~label ~max_iter ~tol =
  let module Stop = Tmest_opt.Stop in
  let sink =
    if Obs.is_null stop.Stop.sink then t.sink else stop.Stop.sink
  in
  Stop.make
    ~max_iter:(Stop.max_iter stop ~default:max_iter)
    ~tol:(Stop.tol stop ~default:tol)
    ~sink
    ~label:(Stop.label stop ~default:label) ()
let num_links t = Routing.num_links t.routing
let num_pairs t = Routing.num_pairs t.routing
let ingress_rows t = t.ingress
let egress_rows t = t.egress
let pool t = t.pool
let set_pool t p = t.pool <- p

let timed c compute =
  let t0 = Sys.time () in
  let v = compute () in
  c.s <- c.s +. (Sys.time () -. t0);
  v

(* Artifact memos hold the lock across the computation: the closures
   below are pure in the workspace (they read [t.routing] or an
   already-forced artifact), so holding the lock cannot deadlock, and
   it guarantees each artifact is computed once with exact counters —
   a concurrent second caller blocks, then hits. *)
(* Cumulative hit/miss totals go to the trace as counter samples, so a
   timeline shows cache effectiveness evolving, not just the final
   score.  Emission happens under the workspace lock; the recorder has
   its own independent mutex and never calls back in, so the order is
   safe. *)
let sample t name c =
  if t.sink.Obs.enabled then begin
    Obs.counter t.sink ("ws." ^ name ^ ".hits") (float_of_int c.h);
    Obs.counter t.sink ("ws." ^ name ^ ".misses") (float_of_int c.m)
  end

let memo ~name c get set compute t =
  Mutex.protect t.lock (fun () ->
      match get t with
      | Some v ->
          c.h <- c.h + 1;
          sample t name c;
          v
      | None ->
          c.m <- c.m + 1;
          sample t name c;
          let v =
            Obs.span t.sink ("ws." ^ name) (fun () -> timed c compute)
          in
          set t (Some v);
          v)

(* Dense artifacts are refused outright in sparse mode: silently
   materializing a 10⁴x10⁴ matrix would defeat the point of the mode,
   and a loud error names the matrix-free replacement. *)
let dense_only t ~name ~hint =
  if t.sparse then
    invalid_arg
      (Printf.sprintf
         "Workspace.%s: sparse mode (%d OD pairs > gate %d) never \
          materializes this artifact; use %s"
         name (num_pairs t) sparse_gate hint)

let gram t =
  dense_only t ~name:"gram" ~hint:"Workspace.normal_op";
  memo ~name:"gram" t.counters.c_gram
    (fun t -> t.gram)
    (fun t v -> t.gram <- v)
    (fun () -> Csr.gram t.routing.Routing.matrix)
    t

let gram_sq t =
  dense_only t ~name:"gram_sq" ~hint:"Workspace.gram_sq_op";
  let g = gram t in
  memo ~name:"gram" t.counters.c_gram
    (fun t -> t.gram_sq)
    (fun t v -> t.gram_sq <- v)
    (fun () ->
      let p = Mat.rows g in
      Mat.init p p (fun i j ->
          let x = Mat.unsafe_get g i j in
          x *. x))
    t

let gram_chol t =
  dense_only t ~name:"gram_chol"
    ~hint:"Tmest_opt.Cg over Workspace.normal_op";
  let g = gram t in
  memo ~name:"chol" t.counters.c_chol
    (fun t -> t.chol)
    (fun t v -> t.chol <- v)
    (fun () -> Chol.factor_regularized g)
    t

let gram_eigen t =
  dense_only t ~name:"gram_eigen" ~hint:"Op.norm2_est/Op.trace_est";
  let g = gram t in
  memo ~name:"eigen" t.counters.c_eigen
    (fun t -> t.eigen)
    (fun t v -> t.eigen <- v)
    (fun () -> Eigen.symmetric g)
    t

let transpose t =
  memo ~name:"transpose" t.counters.c_transpose
    (fun t -> t.transpose)
    (fun t v -> t.transpose <- v)
    (fun () -> Csr.transpose t.routing.Routing.matrix)
    t

let dense t =
  dense_only t ~name:"dense" ~hint:"Workspace.op";
  memo ~name:"dense" t.counters.c_dense
    (fun t -> t.dense)
    (fun t v -> t.dense <- v)
    (fun () -> Routing.dense t.routing)
    t

let op_norm t =
  memo ~name:"lipschitz" t.counters.c_lipschitz
    (fun t -> t.op_norm)
    (fun t v -> t.op_norm <- v)
    (fun () ->
      let r = t.routing.Routing.matrix in
      Fista.lipschitz_of_op ~dim:(num_pairs t) (fun v ->
          Csr.tmatvec r (Csr.matvec r v)))
    t

let gram_norm t =
  dense_only t ~name:"gram_norm" ~hint:"Workspace.op_norm";
  let g = gram t in
  memo ~name:"lipschitz" t.counters.c_lipschitz
    (fun t -> t.gram_norm)
    (fun t v -> t.gram_norm <- v)
    (fun () -> Fista.lipschitz_of_gram g)
    t

(* ------------------------------------------------------------------ *)
(* Matrix-free operator artifacts                                      *)
(* ------------------------------------------------------------------ *)

(* Operators are cached per (name, domain) because compositions own
   scratch buffers (see the single-caller note in {!Tmest_linalg.Op});
   handing every domain its private closures keeps concurrent solves
   race-free, mirroring the scratch arenas below.  The builders must
   not re-enter the workspace — expensive inputs (transpose, Z factor)
   are forced through their own memos first. *)
let op_cached t ~name ~build =
  let key = (name, (Domain.self () :> int)) in
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.op_tbl key with
      | Some v ->
          t.counters.c_op.h <- t.counters.c_op.h + 1;
          sample t "op" t.counters.c_op;
          v
      | None ->
          t.counters.c_op.m <- t.counters.c_op.m + 1;
          sample t "op" t.counters.c_op;
          let v = timed t.counters.c_op build in
          Hashtbl.replace t.op_tbl key v;
          v)

(* R itself.  The closures read [t.pool] at application time so that
   [set_pool] sweeps (bench drivers) apply to already-cached operators. *)
let op t =
  op_cached t ~name:"op" ~build:(fun () ->
      let r = t.routing.Routing.matrix in
      Op.make ~rows:(Csr.rows r) ~cols:(Csr.cols r)
        ~normal_diag:(fun () -> Csr.col_sq_norms r)
        ~apply_into:(fun x ~dst -> Csr.matvec_into ?pool:t.pool r x ~dst)
        ~apply_t_into:(fun y ~dst -> Csr.tmatvec_into r y ~dst)
        ())

(* RᵀR as x ↦ Rᵀ(Rx): the matrix-free replacement for {!gram}.  Built
   on the fused [Csr.normal_apply_into] — one kernel call per solver
   iteration through a per-domain link buffer, bit-identical to
   [Op.normal (op t)] (it runs the same matvec/tmatvec kernels, minus
   the closure indirection).  [t.pool] is read at application time so
   [set_pool] sweeps apply to cached operators. *)
let normal_op t =
  op_cached t ~name:"normal" ~build:(fun () ->
      let r = t.routing.Routing.matrix in
      let link = Vec.zeros (Csr.rows r) in
      let apply x ~dst =
        Csr.normal_apply_into ?pool:t.pool r x ~link ~dst
      in
      Op.make ~rows:(Csr.cols r) ~cols:(Csr.cols r)
        ~diag:(fun () -> Csr.col_sq_norms r)
        ~apply_into:apply ~apply_t_into:apply ())

(* The entry-wise squared Gram (RᵀR)∘(RᵀR) factored as ZᵀZ without ever
   forming the p x p matrix: G∘G has entries (Σ_l R_li R_lj)² =
   Σ_{l,l'} (R_li R_l'i)(R_lj R_l'j), so Z has one row per *used*
   ordered link pair (l,l') — a pair is used when some OD path crosses
   both links — with Z_((l,l'),i) = R_li · R_l'i.  nnz(Z) = Σ_i h_i²
   (squared path length per OD pair), far below the L² worst case. *)
let build_z rt =
  let p = Csr.rows rt in
  let pair_id = Hashtbl.create 1024 in
  let next = ref 0 in
  let triplets = ref [] in
  for i = 0 to p - 1 do
    let support = Csr.row_nonzeros rt i in
    List.iter
      (fun (l, vl) ->
        List.iter
          (fun (l', vl') ->
            let row =
              match Hashtbl.find_opt pair_id (l, l') with
              | Some r -> r
              | None ->
                  let r = !next in
                  incr next;
                  Hashtbl.add pair_id (l, l') r;
                  r
            in
            triplets := (row, i, vl *. vl') :: !triplets)
          support)
      support
  done;
  Csr.of_triplets ~rows:!next ~cols:p !triplets

let z_factor t =
  let rt = transpose t in
  memo ~name:"op" t.counters.c_op
    (fun t -> t.zfac)
    (fun t v -> t.zfac <- v)
    (fun () -> build_z rt)
    t

let gram_sq_op t =
  let z = z_factor t in
  op_cached t ~name:"gram_sq" ~build:(fun () ->
      let link = Vec.zeros (Csr.rows z) in
      let apply x ~dst =
        Csr.normal_apply_into ?pool:t.pool z x ~link ~dst
      in
      Op.make ~rows:(Csr.cols z) ~cols:(Csr.cols z)
        ~diag:(fun () -> Csr.col_sq_norms z)
        ~apply_into:apply ~apply_t_into:apply ())

let cached_lipschitz t ~key ~compute =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.lipschitz_tbl key with
      | Some v ->
          t.counters.c_lipschitz.h <- t.counters.c_lipschitz.h + 1;
          sample t "lipschitz" t.counters.c_lipschitz;
          v
      | None ->
          t.counters.c_lipschitz.m <- t.counters.c_lipschitz.m + 1;
          sample t "lipschitz" t.counters.c_lipschitz;
          let v = timed t.counters.c_lipschitz compute in
          Hashtbl.replace t.lipschitz_tbl key v;
          v)

(* Uncached spectral-norm estimates: the computation belongs to the
   caller (per-window matrices, stacked operators) and must not run
   under the lock — only the accounting does. *)
let counted_lipschitz t compute =
  let t0 = Sys.time () in
  let v = compute () in
  let dt = Sys.time () -. t0 in
  Mutex.protect t.lock (fun () ->
      t.counters.c_lipschitz.m <- t.counters.c_lipschitz.m + 1;
      t.counters.c_lipschitz.s <- t.counters.c_lipschitz.s +. dt;
      sample t "lipschitz" t.counters.c_lipschitz);
  v

let lipschitz_of_matrix t h =
  counted_lipschitz t (fun () -> Fista.lipschitz_of_gram h)

let lipschitz_of_op t ~dim apply =
  counted_lipschitz t (fun () -> Fista.lipschitz_of_op ~dim apply)

(* ------------------------------------------------------------------ *)
(* Preconditioners                                                     *)
(* ------------------------------------------------------------------ *)

let take_mru n l = List.filteri (fun i _ -> i < n) l

(* Exact diagonal of RᵀR — one O(nnz) pass over the routing matrix
   (Csr.col_sq_norms), never a stochastic estimate.  Works in both
   modes; the building block of every Jacobi preconditioner. *)
let gram_diag t =
  memo ~name:"precond" t.counters.c_precond
    (fun t -> t.gdiag)
    (fun t v -> t.gdiag <- v)
    (fun () -> Csr.col_sq_norms t.routing.Routing.matrix)
    t

(* Method-specific preconditioner diagonals (e.g. the inverse curvature
   diagonal 1/(2g_i + 2w)), memoized per key with parameters %h-encoded
   by the caller.  Values are read-only and shared across domains.  The
   compute closure may re-enter the workspace (gram_diag), so it runs
   outside the lock; a rare double compute costs one O(p) pass and both
   results are identical. *)
let precond_vec t ~key ~compute =
  let cached =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.precond_tbl key with
        | Some v ->
            t.counters.c_precond.h <- t.counters.c_precond.h + 1;
            sample t "precond" t.counters.c_precond;
            Some v
        | None ->
            t.counters.c_precond.m <- t.counters.c_precond.m + 1;
            sample t "precond" t.counters.c_precond;
            None)
  in
  match cached with
  | Some v -> v
  | None ->
      let t0 = Sys.time () in
      let v = compute () in
      let dt = Sys.time () -. t0 in
      Mutex.protect t.lock (fun () ->
          t.counters.c_precond.s <- t.counters.c_precond.s +. dt;
          match Hashtbl.find_opt t.precond_tbl key with
          | Some v' -> v'
          | None ->
              Hashtbl.replace t.precond_tbl key v;
              v)

(* Jacobi M⁻¹ for CG on the (shifted) normal equations G + shift·I:
   z_i = r_i / (g_i + shift).  Zero diagonal entries (OD pair crossing
   no measured link) pass through unscaled. *)
let jacobi_cg_minv t ~shift =
  let dinv =
    precond_vec t
      ~key:(Printf.sprintf "cg.jacobi:%h" shift)
      ~compute:(fun () ->
        Vec.map
          (fun g ->
            let d = g +. shift in
            if d > 0. then 1. /. d else 1.)
          (gram_diag t))
  in
  fun r ~dst -> Vec.mul_into dinv r ~dst

(* Memory gate for block-Jacobi: total factor storage Σ_s b_s² words.
   32M words = 256 MB of doubles; 500 PoPs (499² per block x 500
   sources ≈ 125M words) falls back to Jacobi with a warning. *)
let block_jacobi_budget_words = 32_000_000

(* Block-Jacobi M⁻¹ for CG on G + shift·I: per-source dense blocks of
   the Gram matrix, Cholesky-factored once and applied by in-place
   forward/back substitution.  Returns [None] (after a warning) when
   the factors would blow the memory budget; callers fall back to
   {!jacobi_cg_minv}.  Cached per (shift, domain): the applier owns
   gather buffers. *)
let block_jacobi_cg_minv t ~shift =
  (* Force inputs through their own memos before taking any lock. *)
  let n = Topology.num_nodes t.routing.Routing.topo in
  let p = num_pairs t in
  let rt = if t.sparse then Some (transpose t) else None in
  let g = if t.sparse then None else Some (gram t) in
  let key = (Printf.sprintf "cg.block:%h" shift, (Domain.self () :> int)) in
  let cached =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.block_tbl key with
        | Some v ->
            t.counters.c_precond.h <- t.counters.c_precond.h + 1;
            sample t "precond" t.counters.c_precond;
            Some v
        | None ->
            t.counters.c_precond.m <- t.counters.c_precond.m + 1;
            sample t "precond" t.counters.c_precond;
            None)
  in
  match cached with
  | Some v -> v
  | None ->
      let t0 = Sys.time () in
      let module Odpairs = Tmest_net.Odpairs in
      let idxs = Array.make n [] in
      for pair = p - 1 downto 0 do
        let s = Odpairs.source ~nodes:n pair in
        idxs.(s) <- pair :: idxs.(s)
      done;
      let idxs = Array.map Array.of_list idxs in
      let words =
        Array.fold_left (fun acc a -> acc + (Array.length a * Array.length a))
          0 idxs
      in
      let v =
        if words > block_jacobi_budget_words then begin
          Logs.warn (fun m ->
              m "Workspace.block_jacobi: factor storage %d words exceeds \
                 budget %d; falling back to Jacobi"
                words block_jacobi_budget_words);
          None
        end
        else begin
          (* Entry oracle for G_ij restricted to one source block. *)
          let block_entry =
            match (rt, g) with
            | Some rt, _ ->
                fun i j ->
                  (* Sparse rows of Rᵀ are short (path lengths); the
                     merge over two sorted link lists is O(h_i + h_j). *)
                  let rec merge a b acc =
                    match (a, b) with
                    | (la, va) :: ta, (lb, vb) :: tb ->
                        if la = lb then merge ta tb (acc +. (va *. vb))
                        else if la < lb then merge ta b acc
                        else merge a tb acc
                    | _ -> acc
                  in
                  merge (Csr.row_nonzeros rt i) (Csr.row_nonzeros rt j) 0.
            | None, Some g -> fun i j -> Mat.unsafe_get g i j
            | None, None -> assert false
          in
          let blocks =
            Array.map
              (fun idx ->
                let b = Array.length idx in
                if b = 0 then (idx, Mat.zeros 0 0, Vec.zeros 0)
                else begin
                  let blk = Mat.zeros b b in
                  for a = 0 to b - 1 do
                    for bj = a to b - 1 do
                      let v = block_entry idx.(a) idx.(bj) in
                      let v = if a = bj then v +. shift else v in
                      Mat.unsafe_set blk a bj v;
                      Mat.unsafe_set blk bj a v
                    done
                  done;
                  let low = Chol.lower (Chol.factor_regularized blk) in
                  (idx, low, Vec.zeros b)
                end)
              idxs
          in
          Some
            (fun r ~dst ->
              Array.iter
                (fun (idx, low, tmp) ->
                  let b = Array.length idx in
                  for a = 0 to b - 1 do
                    tmp.(a) <- r.(idx.(a))
                  done;
                  (* Forward substitution L y = tmp, in place. *)
                  for a = 0 to b - 1 do
                    let acc = ref tmp.(a) in
                    for j = 0 to a - 1 do
                      acc := !acc -. (Mat.unsafe_get low a j *. tmp.(j))
                    done;
                    tmp.(a) <- !acc /. Mat.unsafe_get low a a
                  done;
                  (* Back substitution Lᵀ x = y, in place. *)
                  for a = b - 1 downto 0 do
                    let acc = ref tmp.(a) in
                    for j = a + 1 to b - 1 do
                      acc := !acc -. (Mat.unsafe_get low j a *. tmp.(j))
                    done;
                    tmp.(a) <- !acc /. Mat.unsafe_get low a a
                  done;
                  for a = 0 to b - 1 do
                    dst.(idx.(a)) <- tmp.(a)
                  done)
                blocks)
        end
      in
      let dt = Sys.time () -. t0 in
      Mutex.protect t.lock (fun () ->
          t.counters.c_precond.s <- t.counters.c_precond.s +. dt;
          Hashtbl.replace t.block_tbl key v);
      v

(* Per-method iteration counts from the most recent solve: noted by
   [Estimator.solve], read by the benchmark emitters.  Also streamed as
   a [solve.<name>.iterations] counter when tracing is enabled (the
   count is deterministic, so this keeps one-job trace determinism). *)
let note_iterations t ~name ~iterations =
  Mutex.protect t.lock (fun () ->
      t.last_iters <-
        take_mru max_keyed
          ((name, iterations)
          :: List.filter (fun (k, _) -> not (String.equal k name)) t.last_iters);
      if t.sink.Obs.enabled then
        Obs.counter t.sink
          ("solve." ^ name ^ ".iterations")
          (float_of_int iterations))

let last_iterations t ~name =
  Mutex.protect t.lock (fun () -> List.assoc_opt name t.last_iters)

let same_loads a b = a == b || Vec.equal ~eps:0. a b

let total_traffic t ~loads =
  if Array.length loads <> num_links t then
    invalid_arg "Workspace.total_traffic: load vector dimension mismatch";
  Mutex.protect t.lock (fun () ->
      match List.find_opt (fun (l, _) -> same_loads l loads) t.totals with
      | Some (l, v) ->
          t.counters.c_total.h <- t.counters.c_total.h + 1;
          sample t "total" t.counters.c_total;
          (* Refresh MRU position. *)
          t.totals <- (l, v) :: List.filter (fun (l', _) -> l' != l) t.totals;
          v
      | None ->
          t.counters.c_total.m <- t.counters.c_total.m + 1;
          sample t "total" t.counters.c_total;
          let v =
            timed t.counters.c_total (fun () ->
                let acc = ref 0. in
                Array.iter (fun row -> acc := !acc +. loads.(row)) t.ingress;
                !acc)
          in
          t.totals <- take_mru max_keyed ((loads, v) :: t.totals);
          v)

let find_prior_slot t ~kind ~loads =
  List.find_opt
    (fun s -> s.p_kind = kind && same_loads s.p_loads loads)
    t.priors

let cached_prior t ~kind ~loads ~compute =
  Mutex.lock t.lock;
  match find_prior_slot t ~kind ~loads with
  | Some slot ->
      t.counters.c_prior.h <- t.counters.c_prior.h + 1;
      sample t "prior" t.counters.c_prior;
      t.priors <- slot :: List.filter (fun s -> s != slot) t.priors;
      (* Another domain may still be materializing this slot; waiting
         counts as a hit — the value is computed exactly once.  The
         computing domain keeps a direct reference, so the slot fills
         even if the MRU bound evicts it from the list meanwhile. *)
      let rec await () =
        match slot.p_value with
        | Some v -> v
        | None ->
            Condition.wait t.filled t.lock;
            await ()
      in
      let v = await () in
      Mutex.unlock t.lock;
      v
  | None ->
      t.counters.c_prior.m <- t.counters.c_prior.m + 1;
      sample t "prior" t.counters.c_prior;
      let slot = { p_kind = kind; p_loads = loads; p_value = None } in
      t.priors <- take_mru max_keyed (slot :: t.priors);
      Mutex.unlock t.lock;
      (* Outside the lock: prior closures re-enter the workspace (the
         WCB prior reads [dense] and [total_traffic]). *)
      let kind_tag =
        match kind with
        | Prior_gravity -> "gravity"
        | Prior_wcb -> "wcb"
        | Prior_uniform -> "uniform"
      in
      if t.sink.Obs.enabled then
        Obs.span_begin t.sink "ws.prior"
          ~args:[ ("kind", Obs.String kind_tag) ];
      let t0 = Sys.time () in
      let v = compute () in
      let dt = Sys.time () -. t0 in
      if t.sink.Obs.enabled then Obs.span_end t.sink "ws.prior";
      Mutex.protect t.lock (fun () ->
          t.counters.c_prior.s <- t.counters.c_prior.s +. dt;
          slot.p_value <- Some v;
          Condition.broadcast t.filled);
      v

(* ------------------------------------------------------------------ *)
(* Scratch-buffer pool and warm-start cache                            *)
(* ------------------------------------------------------------------ *)

(* Scratch pools are keyed by (consumer name, dimension, domain) so
   solvers with the same problem size against this routing context
   share one set of work vectors across an entire window scan, while
   concurrent solves on different domains each own a private arena and
   never scribble on each other's iterates.  Buffers are handed out as
   uninitialized storage — consumers must not assume contents survive
   between uses. *)
let scratch t ~name ~dim ~count =
  let key = (name, dim, (Domain.self () :> int)) in
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.scratch_tbl key with
      | Some bufs when Array.length bufs >= count -> bufs
      | existing ->
          let have = match existing with Some b -> b | None -> [||] in
          let bufs =
            Array.init count (fun i ->
                if i < Array.length have then have.(i) else Vec.zeros dim)
          in
          Hashtbl.replace t.scratch_tbl key bufs;
          if t.sink.Obs.enabled then begin
            Obs.counter t.sink "ws.scratch.arenas"
              (float_of_int (Hashtbl.length t.scratch_tbl));
            Obs.counter t.sink "ws.scratch.vectors"
              (float_of_int
                 (Hashtbl.fold
                    (fun _ b acc -> acc + Array.length b)
                    t.scratch_tbl 0))
          end;
          bufs)

(* Matrix arena with the same per-domain keying as [scratch]: window
   scans fill one samples matrix per scanning domain instead of
   allocating a window x L matrix per window position.  Contents are
   uninitialized storage between uses, like the vector arenas. *)
let scratch_mat t ~name ~rows ~cols =
  let key = (name, rows, cols, (Domain.self () :> int)) in
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.scratch_mat_tbl key with
      | Some m -> m
      | None ->
          let m = Mat.zeros rows cols in
          Hashtbl.replace t.scratch_mat_tbl key m;
          if t.sink.Obs.enabled then
            Obs.counter t.sink "ws.scratch.matrices"
              (float_of_int (Hashtbl.length t.scratch_mat_tbl));
          m)

(* Warm starts are bounded MRU like the other load-keyed caches: a
   window scan re-solves one (method, parameters) pair against slowly
   drifting loads, so the previous window's solution is an excellent
   starting point; unrelated keys evict the oldest entry.  Parallel
   scans append a per-chunk tag to the key (see [Ctx.scan_busy]), so
   each chunk chains through its own isolated entry. *)
let warm_start t ~key ~dim =
  Mutex.protect t.lock (fun () ->
      match List.find_opt (fun (k, _) -> String.equal k key) t.warm with
      | Some ((_, v) as entry) when Vec.dim v = dim ->
          t.counters.c_warm.h <- t.counters.c_warm.h + 1;
          sample t "warm" t.counters.c_warm;
          t.warm <-
            entry
            :: List.filter (fun (k', _) -> not (String.equal k' key)) t.warm;
          Some v
      | _ ->
          t.counters.c_warm.m <- t.counters.c_warm.m + 1;
          sample t "warm" t.counters.c_warm;
          None)

let store_warm_start t ~key v =
  (* Copy: the caller's estimate escapes to user code that may mutate
     it, while cache entries must stay frozen. *)
  let v = Vec.copy v in
  Mutex.protect t.lock (fun () ->
      t.warm <-
        take_mru max_keyed
          ((key, v)
          :: List.filter (fun (k', _) -> not (String.equal k' key)) t.warm))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

type counter = { hits : int; misses : int; seconds : float }

type stats = {
  gram : counter;
  chol : counter;
  eigen : counter;
  transpose : counter;
  dense : counter;
  op : counter;
  lipschitz : counter;
  prior : counter;
  total : counter;
  solve : counter;
  warm : counter;
  precond : counter;
  solve_words : float;
  peak_solve_words : float;
  heap_words : float;
}

let snap c = { hits = c.h; misses = c.m; seconds = c.s }

let stats t =
  Mutex.protect t.lock (fun () ->
      let c = t.counters in
      {
        gram = snap c.c_gram;
        chol = snap c.c_chol;
        eigen = snap c.c_eigen;
        transpose = snap c.c_transpose;
        dense = snap c.c_dense;
        op = snap c.c_op;
        lipschitz = snap c.c_lipschitz;
        prior = snap c.c_prior;
        total = snap c.c_total;
        solve = snap c.c_solve;
        warm = snap c.c_warm;
        precond = snap c.c_precond;
        solve_words = t.solve_words;
        peak_solve_words = t.peak_words;
        heap_words = t.heap_words;
      })

let reset_stats t =
  Mutex.protect t.lock (fun () ->
      let z c =
        c.h <- 0;
        c.m <- 0;
        c.s <- 0.
      in
      let c = t.counters in
      z c.c_gram;
      z c.c_chol;
      z c.c_eigen;
      z c.c_transpose;
      z c.c_dense;
      z c.c_op;
      z c.c_lipschitz;
      z c.c_prior;
      z c.c_total;
      z c.c_solve;
      z c.c_warm;
      z c.c_precond;
      t.solve_words <- 0.;
      t.peak_words <- 0.;
      t.heap_words <- 0.)

let record_solve t ~seconds ~words =
  (* Two complementary figures: [words] is the solve's cumulative
     allocation (minor + major churn, large for iterative methods), the
     heap watermark is the dense-matrix witness — a p x p Gram must
     *live* on the heap, so sparse-mode solves keep the watermark far
     below p^2 words however much they churn. *)
  let heap = float_of_int (Gc.quick_stat ()).Gc.top_heap_words in
  Mutex.protect t.lock (fun () ->
      t.counters.c_solve.m <- t.counters.c_solve.m + 1;
      t.counters.c_solve.s <- t.counters.c_solve.s +. seconds;
      t.solve_words <- t.solve_words +. words;
      if words > t.peak_words then t.peak_words <- words;
      if heap > t.heap_words then t.heap_words <- heap;
      if t.sink.Obs.enabled then
        (* Only the solve count is traced.  The heap watermark is
           process-global and monotone, and the per-solve allocation
           delta depends on process history (a first solve pays one-time
           lazy-initialization allocations that a repeat does not), so
           tracing either would make two identical runs record different
           values and break the one-job trace-determinism invariant.
           Both remain visible through [stats]. *)
        Obs.counter t.sink "ws.solves" (float_of_int t.counters.c_solve.m))

let add_counter a b =
  {
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    seconds = a.seconds +. b.seconds;
  }

let add_stats a b =
  {
    gram = add_counter a.gram b.gram;
    chol = add_counter a.chol b.chol;
    eigen = add_counter a.eigen b.eigen;
    transpose = add_counter a.transpose b.transpose;
    dense = add_counter a.dense b.dense;
    op = add_counter a.op b.op;
    lipschitz = add_counter a.lipschitz b.lipschitz;
    prior = add_counter a.prior b.prior;
    total = add_counter a.total b.total;
    solve = add_counter a.solve b.solve;
    warm = add_counter a.warm b.warm;
    precond = add_counter a.precond b.precond;
    solve_words = a.solve_words +. b.solve_words;
    peak_solve_words = Float.max a.peak_solve_words b.peak_solve_words;
    heap_words = Float.max a.heap_words b.heap_words;
  }

let stats_rows s =
  [
    ("gram", s.gram.hits, s.gram.misses, s.gram.seconds);
    ("chol", s.chol.hits, s.chol.misses, s.chol.seconds);
    ("eigen", s.eigen.hits, s.eigen.misses, s.eigen.seconds);
    ("transpose", s.transpose.hits, s.transpose.misses, s.transpose.seconds);
    ("dense", s.dense.hits, s.dense.misses, s.dense.seconds);
    ("op", s.op.hits, s.op.misses, s.op.seconds);
    ("lipschitz", s.lipschitz.hits, s.lipschitz.misses, s.lipschitz.seconds);
    ("prior", s.prior.hits, s.prior.misses, s.prior.seconds);
    ("total", s.total.hits, s.total.misses, s.total.seconds);
    ("solve", s.solve.hits, s.solve.misses, s.solve.seconds);
    ("warm", s.warm.hits, s.warm.misses, s.warm.seconds);
    ("precond", s.precond.hits, s.precond.misses, s.precond.seconds);
  ]

let pp_stats ppf s =
  let pp_row first (name, hits, misses, seconds) =
    if hits + misses > 0 then begin
      if not first then Format.fprintf ppf "  ";
      if name = "solve" then
        Format.fprintf ppf "%s %d runs (%.3fs)" name misses seconds
      else
        Format.fprintf ppf "%s %d hit%s/%d miss%s (%.3fs)" name hits
          (if hits = 1 then "" else "s")
          misses
          (if misses = 1 then "" else "es")
          seconds
    end
  in
  let rec go first = function
    | [] -> ()
    | ((_, h, m, _) as row) :: rest ->
        pp_row first row;
        go (first && h + m = 0) rest
  in
  go true (stats_rows s);
  if s.peak_solve_words > 0. then
    Format.fprintf ppf "  peak %.2e words/solve" s.peak_solve_words
