module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Csr = Tmest_linalg.Csr
module Chol = Tmest_linalg.Chol
module Eigen = Tmest_linalg.Eigen
module Fista = Tmest_opt.Fista
module Routing = Tmest_net.Routing
module Topology = Tmest_net.Topology

type prior_kind = Prior_gravity | Prior_wcb | Prior_uniform

(* Internal mutable counters; snapshots exposed as immutable records. *)
type c = { mutable h : int; mutable m : int; mutable s : float }

let c_zero () = { h = 0; m = 0; s = 0. }

type counters = {
  c_gram : c;
  c_chol : c;
  c_eigen : c;
  c_transpose : c;
  c_dense : c;
  c_lipschitz : c;
  c_prior : c;
  c_total : c;
  c_solve : c;
  c_warm : c;
}

(* Load-keyed caches are bounded MRU lists: snapshot sweeps reuse the
   same few load vectors and hit; long scans (e.g. the greedy
   combined-method search, which solves against thousands of distinct
   right-hand sides) cannot grow the workspace without bound. *)
let max_keyed = 8

type t = {
  routing : Routing.t;
  ingress : int array;
  egress : int array;
  mutable gram : Mat.t option;
  mutable gram_sq : Mat.t option;
  mutable chol : Chol.t option;
  mutable eigen : Eigen.t option;
  mutable transpose : Csr.t option;
  mutable dense : Mat.t option;
  mutable op_norm : float option;
  mutable gram_norm : float option;
  lipschitz_tbl : (string, float) Hashtbl.t;
  mutable totals : (Vec.t * float) list;  (* MRU *)
  mutable priors : (prior_kind * Vec.t * Vec.t) list;  (* MRU *)
  scratch_tbl : (string * int, Vec.t array) Hashtbl.t;
  mutable warm : (string * Vec.t) list;  (* MRU *)
  counters : counters;
}

let create routing =
  let n = Topology.num_nodes routing.Routing.topo in
  {
    routing;
    ingress = Array.init n (fun i -> Routing.ingress_row routing i);
    egress = Array.init n (fun i -> Routing.egress_row routing i);
    gram = None;
    gram_sq = None;
    chol = None;
    eigen = None;
    transpose = None;
    dense = None;
    op_norm = None;
    gram_norm = None;
    lipschitz_tbl = Hashtbl.create 7;
    totals = [];
    priors = [];
    scratch_tbl = Hashtbl.create 7;
    warm = [];
    counters =
      {
        c_gram = c_zero ();
        c_chol = c_zero ();
        c_eigen = c_zero ();
        c_transpose = c_zero ();
        c_dense = c_zero ();
        c_lipschitz = c_zero ();
        c_prior = c_zero ();
        c_total = c_zero ();
        c_solve = c_zero ();
        c_warm = c_zero ();
      };
  }

let routing t = t.routing
let num_links t = Routing.num_links t.routing
let num_pairs t = Routing.num_pairs t.routing
let ingress_rows t = t.ingress
let egress_rows t = t.egress

let timed c compute =
  let t0 = Sys.time () in
  let v = compute () in
  c.s <- c.s +. (Sys.time () -. t0);
  v

let memo c get set compute t =
  match get t with
  | Some v ->
      c.h <- c.h + 1;
      v
  | None ->
      c.m <- c.m + 1;
      let v = timed c compute in
      set t (Some v);
      v

let gram t =
  memo t.counters.c_gram
    (fun t -> t.gram)
    (fun t v -> t.gram <- v)
    (fun () -> Csr.gram t.routing.Routing.matrix)
    t

let gram_sq t =
  let g = gram t in
  memo t.counters.c_gram
    (fun t -> t.gram_sq)
    (fun t v -> t.gram_sq <- v)
    (fun () ->
      let p = Mat.rows g in
      Mat.init p p (fun i j ->
          let x = Mat.unsafe_get g i j in
          x *. x))
    t

let gram_chol t =
  let g = gram t in
  memo t.counters.c_chol
    (fun t -> t.chol)
    (fun t v -> t.chol <- v)
    (fun () -> Chol.factor_regularized g)
    t

let gram_eigen t =
  let g = gram t in
  memo t.counters.c_eigen
    (fun t -> t.eigen)
    (fun t v -> t.eigen <- v)
    (fun () -> Eigen.symmetric g)
    t

let transpose t =
  memo t.counters.c_transpose
    (fun t -> t.transpose)
    (fun t v -> t.transpose <- v)
    (fun () -> Csr.transpose t.routing.Routing.matrix)
    t

let dense t =
  memo t.counters.c_dense
    (fun t -> t.dense)
    (fun t v -> t.dense <- v)
    (fun () -> Routing.dense t.routing)
    t

let op_norm t =
  memo t.counters.c_lipschitz
    (fun t -> t.op_norm)
    (fun t v -> t.op_norm <- v)
    (fun () ->
      let r = t.routing.Routing.matrix in
      Fista.lipschitz_of_op ~dim:(num_pairs t) (fun v ->
          Csr.tmatvec r (Csr.matvec r v)))
    t

let gram_norm t =
  let g = gram t in
  memo t.counters.c_lipschitz
    (fun t -> t.gram_norm)
    (fun t v -> t.gram_norm <- v)
    (fun () -> Fista.lipschitz_of_gram g)
    t

let cached_lipschitz t ~key ~compute =
  match Hashtbl.find_opt t.lipschitz_tbl key with
  | Some v ->
      t.counters.c_lipschitz.h <- t.counters.c_lipschitz.h + 1;
      v
  | None ->
      t.counters.c_lipschitz.m <- t.counters.c_lipschitz.m + 1;
      let v = timed t.counters.c_lipschitz compute in
      Hashtbl.replace t.lipschitz_tbl key v;
      v

let lipschitz_of_matrix t h =
  t.counters.c_lipschitz.m <- t.counters.c_lipschitz.m + 1;
  timed t.counters.c_lipschitz (fun () -> Fista.lipschitz_of_gram h)

let lipschitz_of_op t ~dim apply =
  t.counters.c_lipschitz.m <- t.counters.c_lipschitz.m + 1;
  timed t.counters.c_lipschitz (fun () -> Fista.lipschitz_of_op ~dim apply)

let same_loads a b = a == b || Vec.equal ~eps:0. a b

let take_mru n l = List.filteri (fun i _ -> i < n) l

let total_traffic t ~loads =
  if Array.length loads <> num_links t then
    invalid_arg "Workspace.total_traffic: load vector dimension mismatch";
  match List.find_opt (fun (l, _) -> same_loads l loads) t.totals with
  | Some (l, v) ->
      t.counters.c_total.h <- t.counters.c_total.h + 1;
      (* Refresh MRU position. *)
      t.totals <- (l, v) :: List.filter (fun (l', _) -> l' != l) t.totals;
      v
  | None ->
      t.counters.c_total.m <- t.counters.c_total.m + 1;
      let v =
        timed t.counters.c_total (fun () ->
            let acc = ref 0. in
            Array.iter (fun row -> acc := !acc +. loads.(row)) t.ingress;
            !acc)
      in
      t.totals <- take_mru max_keyed ((loads, v) :: t.totals);
      v

let cached_prior t ~kind ~loads ~compute =
  match
    List.find_opt (fun (k, l, _) -> k = kind && same_loads l loads) t.priors
  with
  | Some ((_, l, v) as entry) ->
      t.counters.c_prior.h <- t.counters.c_prior.h + 1;
      t.priors <-
        entry :: List.filter (fun (k', l', _) -> not (k' = kind && l' == l)) t.priors;
      v
  | None ->
      t.counters.c_prior.m <- t.counters.c_prior.m + 1;
      let v = timed t.counters.c_prior compute in
      t.priors <- take_mru max_keyed ((kind, loads, v) :: t.priors);
      v

(* ------------------------------------------------------------------ *)
(* Scratch-buffer pool and warm-start cache                            *)
(* ------------------------------------------------------------------ *)

(* Scratch pools are keyed by (consumer name, dimension) so solvers
   with the same problem size against this routing context share one
   set of work vectors across an entire window scan.  Buffers are
   handed out as uninitialized storage — consumers must not assume
   contents survive between uses. *)
let scratch t ~name ~dim ~count =
  let key = (name, dim) in
  match Hashtbl.find_opt t.scratch_tbl key with
  | Some bufs when Array.length bufs >= count -> bufs
  | existing ->
      let have = match existing with Some b -> b | None -> [||] in
      let bufs =
        Array.init count (fun i ->
            if i < Array.length have then have.(i) else Vec.zeros dim)
      in
      Hashtbl.replace t.scratch_tbl key bufs;
      bufs

(* Warm starts are bounded MRU like the other load-keyed caches: a
   window scan re-solves one (method, parameters) pair against slowly
   drifting loads, so the previous window's solution is an excellent
   starting point; unrelated keys evict the oldest entry. *)
let warm_start t ~key ~dim =
  match List.find_opt (fun (k, _) -> String.equal k key) t.warm with
  | Some ((_, v) as entry) when Vec.dim v = dim ->
      t.counters.c_warm.h <- t.counters.c_warm.h + 1;
      t.warm <- entry :: List.filter (fun (k', _) -> not (String.equal k' key)) t.warm;
      Some v
  | _ ->
      t.counters.c_warm.m <- t.counters.c_warm.m + 1;
      None

let store_warm_start t ~key v =
  (* Copy: the caller's estimate escapes to user code that may mutate
     it, while cache entries must stay frozen. *)
  t.warm <-
    take_mru max_keyed
      ((key, Vec.copy v)
      :: List.filter (fun (k', _) -> not (String.equal k' key)) t.warm)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

type counter = { hits : int; misses : int; seconds : float }

type stats = {
  gram : counter;
  chol : counter;
  eigen : counter;
  transpose : counter;
  dense : counter;
  lipschitz : counter;
  prior : counter;
  total : counter;
  solve : counter;
  warm : counter;
}

let snap c = { hits = c.h; misses = c.m; seconds = c.s }

let stats t =
  let c = t.counters in
  {
    gram = snap c.c_gram;
    chol = snap c.c_chol;
    eigen = snap c.c_eigen;
    transpose = snap c.c_transpose;
    dense = snap c.c_dense;
    lipschitz = snap c.c_lipschitz;
    prior = snap c.c_prior;
    total = snap c.c_total;
    solve = snap c.c_solve;
    warm = snap c.c_warm;
  }

let reset_stats t =
  let z c =
    c.h <- 0;
    c.m <- 0;
    c.s <- 0.
  in
  let c = t.counters in
  z c.c_gram;
  z c.c_chol;
  z c.c_eigen;
  z c.c_transpose;
  z c.c_dense;
  z c.c_lipschitz;
  z c.c_prior;
  z c.c_total;
  z c.c_solve;
  z c.c_warm

let record_solve t seconds =
  t.counters.c_solve.m <- t.counters.c_solve.m + 1;
  t.counters.c_solve.s <- t.counters.c_solve.s +. seconds

let add_counter a b =
  {
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    seconds = a.seconds +. b.seconds;
  }

let add_stats a b =
  {
    gram = add_counter a.gram b.gram;
    chol = add_counter a.chol b.chol;
    eigen = add_counter a.eigen b.eigen;
    transpose = add_counter a.transpose b.transpose;
    dense = add_counter a.dense b.dense;
    lipschitz = add_counter a.lipschitz b.lipschitz;
    prior = add_counter a.prior b.prior;
    total = add_counter a.total b.total;
    solve = add_counter a.solve b.solve;
    warm = add_counter a.warm b.warm;
  }

let stats_rows s =
  [
    ("gram", s.gram.hits, s.gram.misses, s.gram.seconds);
    ("chol", s.chol.hits, s.chol.misses, s.chol.seconds);
    ("eigen", s.eigen.hits, s.eigen.misses, s.eigen.seconds);
    ("transpose", s.transpose.hits, s.transpose.misses, s.transpose.seconds);
    ("dense", s.dense.hits, s.dense.misses, s.dense.seconds);
    ("lipschitz", s.lipschitz.hits, s.lipschitz.misses, s.lipschitz.seconds);
    ("prior", s.prior.hits, s.prior.misses, s.prior.seconds);
    ("total", s.total.hits, s.total.misses, s.total.seconds);
    ("solve", s.solve.hits, s.solve.misses, s.solve.seconds);
    ("warm", s.warm.hits, s.warm.misses, s.warm.seconds);
  ]

let pp_stats ppf s =
  let pp_row first (name, hits, misses, seconds) =
    if hits + misses > 0 then begin
      if not first then Format.fprintf ppf "  ";
      if name = "solve" then
        Format.fprintf ppf "%s %d runs (%.3fs)" name misses seconds
      else
        Format.fprintf ppf "%s %d hit%s/%d miss%s (%.3fs)" name hits
          (if hits = 1 then "" else "s")
          misses
          (if misses = 1 then "" else "es")
          seconds
    end
  in
  let rec go first = function
    | [] -> ()
    | ((_, h, m, _) as row) :: rest ->
        pp_row first row;
        go (first && h + m = 0) rest
  in
  go true (stats_rows s)
