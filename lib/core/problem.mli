(** Shared plumbing for the estimation methods. *)

(** The library's log source ("tmest.core"): solvers report
    non-convergence and numerical trouble here at [Warning] level.
    Silence or route it with the usual [Logs] machinery. *)
val log_src : Logs.src

(** [total_traffic routing ~loads] is the total network traffic
    [Σ te(n)] read off the ingress access-link rows — the [stot] used to
    normalize estimation problems (Section 3.2.1). *)
val total_traffic : Tmest_net.Routing.t -> loads:Tmest_linalg.Vec.t -> float

(** [check_dims routing ~loads] validates the load vector length. *)
val check_dims : Tmest_net.Routing.t -> loads:Tmest_linalg.Vec.t -> unit

(** [gram routing] is the dense [RᵀR] of the routing matrix.
    Compatibility wrapper: delegates to a throwaway {!Workspace}, so
    each call still pays the full product.  Repeated solvers should
    hold a [Workspace.t] and use {!Workspace.gram}, which computes the
    product once per routing context. *)
val gram : Tmest_net.Routing.t -> Tmest_linalg.Mat.t

(** [residual_norm routing ~loads estimate] is [‖R s − t‖ / ‖t‖]:
    how consistent an estimate is with the link measurements. *)
val residual_norm :
  Tmest_net.Routing.t ->
  loads:Tmest_linalg.Vec.t ->
  Tmest_linalg.Vec.t ->
  float
