(** Constant-fanout estimation from a load time series
    (Section 4.2.4 — the paper's novel method).

    Assuming the fanouts [α(n,m) = s(n,m) / te(n)] are constant over the
    measurement window (all load fluctuation comes from the per-node
    totals), the fanout vector solves

    {v min Σ_k ‖R S[k] α − t[k]‖²
       s.t. Σ_m α(n,m) = 1 for every n,  α >= 0 v}

    where [S[k]] scales each OD pair by its source's total ingress
    traffic at time [k] (read off the ingress access-link loads).  The
    window makes the system overdetermined for [K >= 3] even though [R]
    itself is rank deficient. *)

type result = {
  fanouts : Tmest_linalg.Vec.t;  (** per OD pair, rows sum to 1 *)
  estimate : Tmest_linalg.Vec.t;
      (** demand estimate: fanouts applied to the window-average node
          totals — comparable to the window-average true demands *)
  iterations : int;  (** FISTA iterations spent on the solve *)
}

(** [estimate ?x0 ws ~load_samples] solves the constrained problem
    over a [K x L] window of load samples by accelerated projected
    gradient with an exact per-source probability-simplex projection
    (a KKT solve is numerically hopeless here: the Hessian blocks are
    scaled by squared, heavy-tailed node totals).  [x0] is an optional
    warm-start {e fanout} vector (e.g. the previous window's
    [result.fanouts]); default is uniform fanouts.  [stop] carries
    solver limits (defaults 4000 iterations, tolerance 1e-10) and the
    trace sink.  [precond] (default {!Workspace.Precond_none}) applies a
    {e block-constant} diagonal metric
    [d_s = 2·W(s,s)·max_(i in s) g_i] (constant within each source
    block, so the simplex projection stays exact); same fixed point.
    [Precond_auto] resolves to none for this method (the
    block-constant metric measured no iteration win).
    @raise Invalid_argument if the window is empty or dimensions differ. *)
val estimate :
  ?x0:Tmest_linalg.Vec.t ->
  ?stop:Tmest_opt.Stop.t ->
  ?precond:Workspace.precond_kind ->
  Workspace.t ->
  load_samples:Tmest_linalg.Mat.t ->
  result

(** [demands_of_fanouts ws ~fanouts ~loads] expands fanouts into a
    demand vector using the node totals of one load snapshot. *)
val demands_of_fanouts :
  Workspace.t ->
  fanouts:Tmest_linalg.Vec.t ->
  loads:Tmest_linalg.Vec.t ->
  Tmest_linalg.Vec.t
