(** Combining tomography with direct measurements (Section 5.3.6).

    Directly measuring a handful of demands (e.g. with per-LSP counters
    on selected tunnels) and pinning them in the entropy estimator
    collapses the estimation error.  [greedy] reproduces the paper's
    exhaustive-search experiment: at every step, measure the demand whose
    measurement most reduces the MRE.  [largest_first] is the practical
    policy the paper discusses (measure the biggest demands). *)

type step = {
  measured : int;  (** the pair measured at this step *)
  mre : float;  (** MRE of the entropy estimate after the step *)
}

(** [greedy ws ~loads ~prior ~truth ~sigma2 ~steps] returns the MRE
    trajectory: element [i] is the state after [i+1] measurements.  The
    MRE is computed at the paper's 90 % coverage threshold (fixed from
    the ground truth once, before any measurement). *)
val greedy :
  ?coverage:float ->
  Workspace.t ->
  loads:Tmest_linalg.Vec.t ->
  prior:Tmest_linalg.Vec.t ->
  truth:Tmest_linalg.Vec.t ->
  sigma2:float ->
  steps:int ->
  step list

(** [largest_first ws ~loads ~prior ~truth ~sigma2 ~steps] measures
    the demands in decreasing true-size order instead. *)
val largest_first :
  ?coverage:float ->
  Workspace.t ->
  loads:Tmest_linalg.Vec.t ->
  prior:Tmest_linalg.Vec.t ->
  truth:Tmest_linalg.Vec.t ->
  sigma2:float ->
  steps:int ->
  step list
