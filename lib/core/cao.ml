module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Csr = Tmest_linalg.Csr
module Fista = Tmest_opt.Fista
module Desc = Tmest_stats.Desc
module Routing = Tmest_net.Routing

type result = {
  estimate : Vec.t;
  objective : float;
  iterations : int;
}

let estimate ?(max_iter = 400) ?(unit_bps = 1e6) ws ~load_samples ~phi
    ~c ~sigma_inv2 =
  if phi <= 0. then invalid_arg "Cao.estimate: phi must be positive";
  if c < 1. then invalid_arg "Cao.estimate: need c >= 1";
  if sigma_inv2 < 0. then invalid_arg "Cao.estimate: negative sigma_inv2";
  let routing = Workspace.routing ws in
  let l = Routing.num_links routing and p = Routing.num_pairs routing in
  if Mat.cols load_samples <> l then
    invalid_arg "Cao.estimate: load samples do not match the routing matrix";
  let k = Mat.rows load_samples in
  if k < 2 then invalid_arg "Cao.estimate: need at least two load samples";
  let samples =
    Array.init k (fun i -> Vec.scale (1. /. unit_bps) (Mat.row load_samples i))
  in
  let t_hat, sigma_hat = Desc.sample_mean_cov samples in
  let g = Workspace.gram ws in
  let g2 = Workspace.gram_sq ws in
  let rt_t = Csr.tmatvec routing.Routing.matrix t_hat in
  let rt = Workspace.transpose ws in
  let v = Vec.zeros p in
  for pair = 0 to p - 1 do
    let links = Csr.row_nonzeros rt pair in
    let acc = ref 0. in
    List.iter
      (fun (i, ri) ->
        List.iter
          (fun (j, rj) -> acc := !acc +. (ri *. rj *. Mat.get sigma_hat i j))
          links)
      links;
    v.(pair) <- !acc
  done;
  let w = sigma_inv2 in
  let u_of lambda = Vec.map (fun x -> phi *. (Stdlib.max x 0. ** c)) lambda in
  let objective lambda =
    let u = u_of lambda in
    let first = Vec.dot lambda (Mat.matvec g lambda)
                -. (2. *. Vec.dot rt_t lambda) in
    let second = Vec.dot u (Mat.matvec g2 u) -. (2. *. Vec.dot v u) in
    first +. (w *. second)
  in
  let gradient lambda =
    let u = u_of lambda in
    let d_first = Vec.scale 2. (Vec.sub (Mat.matvec g lambda) rt_t) in
    let d_second_du = Vec.scale 2. (Vec.sub (Mat.matvec g2 u) v) in
    let du_dlambda =
      Vec.map (fun x -> phi *. c *. (Stdlib.max x 0. ** (c -. 1.))) lambda
    in
    Vec.mapi
      (fun i d -> d +. (w *. d_second_du.(i) *. du_dlambda.(i)))
      d_first
  in
  (* Start from the first-moment-only solution. *)
  let lip = 2. *. Workspace.gram_norm ws in
  let init =
    Fista.solve ~max_iter:2000 ~tol:1e-10 ~dim:p
      ~gradient:(fun x -> Vec.scale 2. (Vec.sub (Mat.matvec g x) rt_t))
      ~lipschitz:lip ()
  in
  let lambda = ref init.Fista.x in
  let f = ref (objective !lambda) in
  let step = ref (1. /. lip) in
  let iterations = ref 0 in
  let stalled = ref false in
  while (not !stalled) && !iterations < max_iter do
    incr iterations;
    let grad = gradient !lambda in
    (* Backtracking projected gradient: halve the step until descent. *)
    let rec try_step eta attempts =
      if attempts = 0 then None
      else begin
        let cand = Vec.clamp_nonneg (Vec.axpy (-.eta) grad !lambda) in
        let fc = objective cand in
        if fc < !f -. 1e-12 then Some (cand, fc, eta)
        else try_step (eta /. 2.) (attempts - 1)
      end
    in
    match try_step (!step *. 2.) 40 with
    | None -> stalled := true
    | Some (cand, fc, eta) ->
        let progress = !f -. fc in
        lambda := cand;
        f := fc;
        step := eta;
        if progress < 1e-12 *. (1. +. abs_float fc) then stalled := true
  done;
  {
    estimate = Vec.scale unit_bps !lambda;
    objective = !f;
    iterations = !iterations;
  }
