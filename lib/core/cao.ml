module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Csr = Tmest_linalg.Csr
module Fista = Tmest_opt.Fista
module Stop = Tmest_opt.Stop
module Obs = Tmest_obs.Obs
module Desc = Tmest_stats.Desc
module Routing = Tmest_net.Routing

type result = {
  estimate : Vec.t;
  objective : float;
  iterations : int;
}

let estimate ?x0 ?(stop = Stop.default) ?(unit_bps = 1e6)
    ?(precond = Workspace.Precond_none) ws ~load_samples ~phi ~c ~sigma_inv2 =
  if phi <= 0. then invalid_arg "Cao.estimate: phi must be positive";
  (* [tol] scales the relative-progress stall test of the backtracking
     outer loop (historical constant 1e-12). *)
  let stop =
    Workspace.solver_stop ws stop ~label:"cao" ~max_iter:400 ~tol:1e-12
  in
  let max_iter = Stop.max_iter stop ~default:400 in
  let progress_tol = Stop.tol stop ~default:1e-12 in
  let sink = stop.Stop.sink in
  let traced = sink.Obs.enabled in
  let label = Stop.label stop ~default:"cao" in
  if c < 1. then invalid_arg "Cao.estimate: need c >= 1";
  if sigma_inv2 < 0. then invalid_arg "Cao.estimate: negative sigma_inv2";
  let routing = Workspace.routing ws in
  let l = Routing.num_links routing and p = Routing.num_pairs routing in
  if Mat.cols load_samples <> l then
    invalid_arg "Cao.estimate: load samples do not match the routing matrix";
  let k = Mat.rows load_samples in
  if k < 2 then invalid_arg "Cao.estimate: need at least two load samples";
  let samples =
    Array.init k (fun i -> Vec.scale (1. /. unit_bps) (Mat.row load_samples i))
  in
  let t_hat, sigma_hat = Desc.sample_mean_cov samples in
  let pool = Workspace.pool ws in
  (* First- and second-moment systems G = RᵀR and G∘G.  Dense mode keeps
     the historical materialized matrices (and the dense-Gram spectral
     norm, whose last bits differ from the operator estimate); sparse
     mode applies both matrix-free. *)
  let g_matvec_into, g2_matvec_into, lip =
    if Workspace.is_sparse ws then begin
      let normal = Workspace.normal_op ws in
      let gsq = Workspace.gram_sq_op ws in
      ( (fun x ~dst -> Tmest_linalg.Op.apply_into normal x ~dst),
        (fun x ~dst -> Tmest_linalg.Op.apply_into gsq x ~dst),
        2. *. Workspace.op_norm ws )
    end
    else begin
      let g = Workspace.gram ws in
      let g2 = Workspace.gram_sq ws in
      ( (fun x ~dst -> Mat.matvec_into ?pool g x ~dst),
        (fun x ~dst -> Mat.matvec_into ?pool g2 x ~dst),
        2. *. Workspace.gram_norm ws )
    end
  in
  let rt_t = Csr.tmatvec routing.Routing.matrix t_hat in
  let rt = Workspace.transpose ws in
  let v = Vec.zeros p in
  for pair = 0 to p - 1 do
    let links = Csr.row_nonzeros rt pair in
    let acc = ref 0. in
    List.iter
      (fun (i, ri) ->
        List.iter
          (fun (j, rj) -> acc := !acc +. (ri *. rj *. Mat.get sigma_hat i j))
          links)
      links;
    v.(pair) <- !acc
  done;
  let w = sigma_inv2 in
  (* All per-iteration work — u(λ), matrix-vector products, gradient,
     line-search candidates — lives in one pooled buffer set. *)
  let bufs = Workspace.scratch ws ~name:"cao" ~dim:p ~count:5 in
  let u_buf = bufs.(0) and tmp_p = bufs.(1) and grad = bufs.(2) in
  let lambda = ref bufs.(3) and cand = ref bufs.(4) in
  let u_of_into lam ~dst =
    for i = 0 to p - 1 do
      dst.(i) <- phi *. (Stdlib.max lam.(i) 0. ** c)
    done
  in
  let objective lam =
    u_of_into lam ~dst:u_buf;
    g_matvec_into lam ~dst:tmp_p;
    let first = Vec.dot lam tmp_p -. (2. *. Vec.dot rt_t lam) in
    g2_matvec_into u_buf ~dst:tmp_p;
    let second = Vec.dot u_buf tmp_p -. (2. *. Vec.dot v u_buf) in
    first +. (w *. second)
  in
  let gradient_into lam ~dst =
    u_of_into lam ~dst:u_buf;
    g2_matvec_into u_buf ~dst:tmp_p;
    g_matvec_into lam ~dst;
    for i = 0 to p - 1 do
      let d_first = 2. *. (dst.(i) -. rt_t.(i)) in
      let d_second_du = 2. *. (tmp_p.(i) -. v.(i)) in
      let du_dlambda = phi *. c *. (Stdlib.max lam.(i) 0. ** (c -. 1.)) in
      dst.(i) <- d_first +. (w *. d_second_du *. du_dlambda)
    done
  in
  (match x0 with
  | Some v0 ->
      (* Warm start (bits/s): skip the first-moment bootstrap solve. *)
      if Vec.dim v0 <> p then invalid_arg "Cao.estimate: x0 dimension mismatch";
      for i = 0 to p - 1 do
        !lambda.(i) <- Stdlib.max (v0.(i) /. unit_bps) 0.
      done
  | None ->
      (* Start from the first-moment-only solution.  The bootstrap is a
         plain non-negative least-squares solve with curvature 2G, so it
         takes the same exact Jacobi metric d = 2·diag(G) as the entropy
         estimator; the nonconvex outer loop below already adapts its
         step by backtracking and is left untouched. *)
      let dinv =
        match Workspace.resolve_precond ws precond with
        | Workspace.Precond_none -> None
        | Workspace.Precond_jacobi | Workspace.Precond_block
        | Workspace.Precond_auto ->
            Some
              (Workspace.precond_vec ws ~key:"normal.jacobi.dinv"
                 ~compute:(fun () ->
                   Vec.map
                     (fun g -> if g > 0. then 1. /. (2. *. g) else 1.)
                     (Workspace.gram_diag ws)))
      in
      let boot_lip =
        match dinv with
        | None -> lip
        | Some dinv ->
            Workspace.cached_lipschitz ws ~key:"normal.jacobi.norm"
              ~compute:(fun () ->
                let ds = Vec.map sqrt dinv in
                Fista.lipschitz_of_op ~dim:p (fun x ->
                    let dst = Vec.zeros p in
                    g_matvec_into (Vec.mul ds x) ~dst;
                    Vec.mapi (fun i hi -> 2. *. hi *. ds.(i)) dst))
      in
      let init =
        Fista.solve_into
          ~stop:
            (Stop.make ~max_iter:2000 ~tol:1e-10 ~sink
               ~label:(label ^ "/bootstrap-fista") ())
          ~dim:p ?dinv
          ~scratch:
            (Workspace.scratch ws ~name:"fista" ~dim:p
               ~count:Fista.scratch_size)
          ~gradient_into:(fun x ~dst ->
            g_matvec_into x ~dst;
            Vec.sub_into dst rt_t ~dst;
            Vec.scale_into 2. dst ~dst)
          ~lipschitz:boot_lip ()
      in
      Vec.blit_into init.Fista.x ~dst:!lambda);
  let f = ref (objective !lambda) in
  let step = ref (1. /. lip) in
  let iterations = ref 0 in
  let stalled = ref false in
  if traced then
    Obs.span_begin sink label
      ~args:[ ("dim", Obs.Int p); ("max_iter", Obs.Int max_iter) ];
  while (not !stalled) && !iterations < max_iter do
    incr iterations;
    gradient_into !lambda ~dst:grad;
    (* Backtracking projected gradient: halve the step until descent. *)
    let rec try_step eta attempts =
      if attempts = 0 then None
      else begin
        Vec.axpy_into (-.eta) grad !lambda ~dst:!cand;
        Vec.clamp_nonneg_into !cand ~dst:!cand;
        let fc = objective !cand in
        if fc < !f -. 1e-12 then Some (fc, eta)
        else try_step (eta /. 2.) (attempts - 1)
      end
    in
    (match try_step (!step *. 2.) 40 with
    | None -> stalled := true
    | Some (fc, eta) ->
        let progress = !f -. fc in
        let tmp = !lambda in
        lambda := !cand;
        cand := tmp;
        f := fc;
        step := eta;
        if progress < progress_tol *. (1. +. abs_float fc) then
          stalled := true);
    if traced then
      Obs.iter sink ~solver:label ~iter:!iterations ~objective:!f
        ~step:!step ()
  done;
  if traced then Obs.span_end sink label;
  {
    estimate = Vec.scale unit_bps !lambda;
    objective = !f;
    iterations = !iterations;
  }
