module Vec = Tmest_linalg.Vec
module Csr = Tmest_linalg.Csr
module Rng = Tmest_stats.Rng
module Routing = Tmest_net.Routing
module Pool = Tmest_parallel.Pool

type result = {
  mean : Vec.t;
  accept_rate : float;
  sweeps : int;
}

(* log n! — exact cumulative table for small n, Stirling's series
   beyond it (absolute error < 1e-10 at n = 256).  The stdlib has no
   lgamma; this keeps the move ratio deterministic and dependency-free. *)
let log_fact_table =
  let t = Array.make 257 0. in
  for n = 2 to 256 do
    t.(n) <- t.(n - 1) +. log (float_of_int n)
  done;
  t

let log_fact n =
  if n <= 256 then log_fact_table.(n)
  else
    let x = float_of_int n in
    (x +. 0.5) *. log x
    -. x
    +. (0.5 *. log (2. *. Float.pi))
    +. (1. /. (12. *. x))
    -. (1. /. (360. *. x *. x *. x))

(* Poisson log-pmf increment for x_j -> x_j + m (m > 0):
   m log lambda - (log (x+m)! - log x!). *)
let log_prior_up ~log_lambda ~x ~m =
  (float_of_int m *. log_lambda) -. (log_fact (x + m) -. log_fact x)

let estimate ?(burn_sweeps = 50) ?(samples = 200) ?(thin = 2) ?(seed = 1)
    ?(chains = 4) ?(unit_bps = 1e6) ?(noise_frac = 0.02) ws ~loads ~prior () =
  let routing = Workspace.routing ws in
  Problem.check_dims routing ~loads;
  let p = Routing.num_pairs routing and l = Routing.num_links routing in
  if Array.length prior <> p then
    invalid_arg "Mcmc_int.estimate: prior dimension mismatch";
  if burn_sweeps < 0 || samples <= 0 || thin <= 0 || chains <= 0 then
    invalid_arg "Mcmc_int.estimate: bad chain parameters";
  if unit_bps <= 0. then invalid_arg "Mcmc_int.estimate: unit_bps <= 0";
  if noise_frac <= 0. then invalid_arg "Mcmc_int.estimate: noise_frac <= 0";
  let inv_u = 1. /. unit_bps in
  let y = Vec.scale inv_u loads in
  (* Prior rates in counting units, floored so log lambda stays finite;
     the floor only matters for structurally-dark pairs. *)
  let lambda = Vec.map (fun v -> Stdlib.max (v *. inv_u) 1e-6) prior in
  let log_lambda = Vec.map log lambda in
  (* Gaussian measurement slack: a fixed fraction of the mean link
     load.  Counts are exact integers, so the likelihood width only
     encodes how literally the (noisy, averaged) SNMP loads are taken. *)
  let sigma =
    let s = ref 0. in
    Array.iter (fun v -> s := !s +. v) y;
    Stdlib.max 1. (noise_frac *. !s /. float_of_int l)
  in
  let inv_2s2 = 1. /. (2. *. sigma *. sigma) in
  let rt = Workspace.transpose ws in
  (* Per-pair link incidence as arrays: the inner Metropolis loop walks
     it once per proposal and must not allocate. *)
  let links_of =
    Array.init p (fun j -> Array.of_list (Csr.row_nonzeros rt j))
  in
  (* Proposal half-width per pair, scaled to the prior rate so mixing
     does not stall on heavy pairs. *)
  let step =
    Array.init p (fun j ->
        Stdlib.max 1 (int_of_float (Float.round (lambda.(j) /. 8.))))
  in
  let x_start =
    Array.init p (fun j -> Stdlib.max 0 (int_of_float (Float.round lambda.(j))))
  in
  let per_chain = (samples + chains - 1) / chains in
  let collect_sweeps = burn_sweeps + (per_chain * thin) in
  let sums = Array.init chains (fun _ -> Vec.zeros p) in
  let counts = Array.make chains 0 in
  let accepts = Array.make chains 0 in
  let proposals = Array.make chains 0 in
  (* Each chain owns its state, its accumulator row and an [Rng]
     derived from its index, so the pooled run produces exactly the
     bits the sequential run would — chain streams depend on
     (seed, chain), never on scheduling. *)
  let run_chain chain =
    let rng = Rng.of_pair seed chain in
    let x = Array.copy x_start in
    (* Residual r = Rx - y, maintained incrementally: a move on pair j
       touches only that pair's links. *)
    let r = Vec.zeros l in
    let xf = Vec.init p (fun j -> float_of_int x.(j)) in
    Csr.matvec_into routing.Routing.matrix xf ~dst:r;
    Vec.sub_into r y ~dst:r;
    let propose () =
      proposals.(chain) <- proposals.(chain) + 1;
      let j = Rng.int rng p in
      let m = 1 + Rng.int rng step.(j) in
      let up = Rng.bool rng in
      if (not up) && x.(j) < m then () (* below zero: reject *)
      else begin
        let delta = if up then float_of_int m else float_of_int (-m) in
        let links = links_of.(j) in
        let dq = ref 0. in
        Array.iter
          (fun (i, a) ->
            let ri = r.(i) in
            let ri' = ri +. (delta *. a) in
            dq := !dq +. ((ri' *. ri') -. (ri *. ri)))
          links;
        let d_lik = -. !dq *. inv_2s2 in
        let d_prior =
          if up then log_prior_up ~log_lambda:log_lambda.(j) ~x:x.(j) ~m
          else -.log_prior_up ~log_lambda:log_lambda.(j) ~x:(x.(j) - m) ~m
        in
        let dll = d_lik +. d_prior in
        let accept = dll >= 0. || Rng.float rng < exp dll in
        if accept then begin
          accepts.(chain) <- accepts.(chain) + 1;
          x.(j) <- (if up then x.(j) + m else x.(j) - m);
          Array.iter (fun (i, a) -> r.(i) <- r.(i) +. (delta *. a)) links
        end
      end
    in
    let sweep () =
      for _ = 1 to p do
        propose ()
      done
    in
    for _ = 1 to burn_sweeps do
      sweep ()
    done;
    for _ = 1 to per_chain do
      for _ = 1 to thin do
        sweep ()
      done;
      let s = sums.(chain) in
      for j = 0 to p - 1 do
        s.(j) <- s.(j) +. float_of_int x.(j)
      done;
      counts.(chain) <- counts.(chain) + 1
    done
  in
  (match Workspace.pool ws with
  | Some pool when chains > 1 -> Pool.parallel_for pool ~n:chains run_chain
  | _ ->
      for chain = 0 to chains - 1 do
        run_chain chain
      done);
  (* Combine in chain-index order: independent of pool scheduling. *)
  let total = Array.fold_left ( + ) 0 counts in
  let mean = Vec.zeros p in
  Array.iter (fun s -> Vec.axpy_into 1. s mean ~dst:mean) sums;
  Vec.scale_into (unit_bps /. float_of_int total) mean ~dst:mean;
  let prop_total = Array.fold_left ( + ) 0 proposals in
  let acc_total = Array.fold_left ( + ) 0 accepts in
  {
    mean;
    accept_rate =
      (if prop_total = 0 then 0.
       else float_of_int acc_total /. float_of_int prop_total);
    sweeps = collect_sweeps;
  }
