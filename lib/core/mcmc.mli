(** Bayesian posterior sampling over the feasible demand polytope
    (in the spirit of Tebaldi & West 1998, the paper's reference [10]).

    A load snapshot confines the demands to the polytope
    [{s >= 0 | R s = t}].  With an independent exponential prior
    [s_p ~ Exp(1 / prior_p)] the posterior is the prior restricted to
    the polytope; a hit-and-run Markov chain samples it exactly:

    + start at a vertex (from the phase-1 simplex solution);
    + pick a random direction in the null space of [R];
    + sample the new point from the 1-D restriction of the prior to
      the feasible segment (a truncated exponential — closed form).

    Tebaldi & West sample integer Poisson counts; this is the continuous
    relaxation appropriate for rate data.  Beyond a point estimate
    (the posterior mean), the sampler yields the per-demand credible
    intervals the optimization methods cannot provide. *)

type result = {
  mean : Tmest_linalg.Vec.t;  (** posterior mean (bits/s) *)
  lower : Tmest_linalg.Vec.t;  (** 5th percentile per demand *)
  upper : Tmest_linalg.Vec.t;  (** 95th percentile per demand *)
  samples : int;  (** retained samples *)
  null_dim : int;  (** dimension of the sampled null space *)
}

(** How the prior weighs points of the feasible polytope:
    [`Exponential] is the independent [Exp(1/prior_p)] model (strongly
    informative: it drags the chain towards low-prior corners);
    [`Uniform] ignores the prior vector and samples the polytope
    uniformly — the non-informative posterior whose mean approximates
    the polytope centroid and whose credible intervals sit inside the
    worst-case bounds. *)
type prior_model = [ `Exponential | `Uniform ]

(** [sample ?burn_in ?samples ?thin ?seed ?chains ?prior_model ws
    ~loads ~prior] runs [chains] independent hit-and-run chains from the
    shared starting point, splitting the retained samples evenly
    (defaults: 500 burn-in steps per chain, 1000 retained samples,
    thinning 5, 1 chain, exponential prior).  Chain [c]'s generator is
    [Rng.of_pair seed c], so results are identical whether chains run
    sequentially or on the workspace's domain pool.
    @raise Tmest_opt.Simplex.Infeasible if the loads are inconsistent.
    @raise Invalid_argument on dimension mismatch. *)
val sample :
  ?burn_in:int ->
  ?samples:int ->
  ?thin:int ->
  ?seed:int ->
  ?chains:int ->
  ?prior_model:prior_model ->
  Workspace.t ->
  loads:Tmest_linalg.Vec.t ->
  prior:Tmest_linalg.Vec.t ->
  result
