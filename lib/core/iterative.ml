module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Routing = Tmest_net.Routing

type trace = {
  estimates : Vec.t array;
  deltas : float array;
}

let refine ?(rounds = 10) ?(tol = 1e-3) ?(sigma2 = 100.) ?stop
    ws ~load_series ~prior =
  let k = Mat.rows load_series in
  if k = 0 then invalid_arg "Iterative.refine: empty load series";
  if rounds <= 0 then invalid_arg "Iterative.refine: rounds must be positive";
  let estimates = ref [] and deltas = ref [] in
  let current = ref (Vec.copy prior) in
  let finished = ref false in
  let round = ref 0 in
  while (not !finished) && !round < rounds do
    let loads = Mat.row load_series (!round mod k) in
    let result = Bayes.estimate ?stop ws ~loads ~prior:!current ~sigma2 in
    let next = result.Bayes.estimate in
    let delta = Metrics.relative_l1 ~truth:!current ~estimate:next in
    estimates := next :: !estimates;
    deltas := delta :: !deltas;
    current := next;
    incr round;
    if delta < tol then finished := true
  done;
  {
    estimates = Array.of_list (List.rev !estimates);
    deltas = Array.of_list (List.rev !deltas);
  }

let final t = t.estimates.(Array.length t.estimates - 1)
