module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Csr = Tmest_linalg.Csr
module Op = Tmest_linalg.Op
module Fista = Tmest_opt.Fista
module Stop = Tmest_opt.Stop
module Desc = Tmest_stats.Desc
module Routing = Tmest_net.Routing

type result = {
  estimate : Vec.t;
  mean_residual : float;
  iterations : int;
}

let estimate ?x0 ?(stop = Stop.default) ?(unit_bps = 1e6)
    ?(precond = Workspace.Precond_none) ws ~load_samples ~sigma_inv2 =
  if sigma_inv2 < 0. then invalid_arg "Vardi.estimate: negative sigma_inv2";
  let stop =
    Workspace.solver_stop ws stop ~label:"vardi/fista" ~max_iter:6000
      ~tol:1e-12
  in
  if unit_bps <= 0. then invalid_arg "Vardi.estimate: unit_bps <= 0";
  let routing = Workspace.routing ws in
  let l = Routing.num_links routing and p = Routing.num_pairs routing in
  if Mat.cols load_samples <> l then
    invalid_arg "Vardi.estimate: load samples do not match the routing matrix";
  if Mat.rows load_samples < 2 then
    invalid_arg "Vardi.estimate: need at least two load samples";
  (* Work in counting units so Poisson moments are commensurate. *)
  let k = Mat.rows load_samples in
  let samples =
    Array.init k (fun i -> Vec.scale (1. /. unit_bps) (Mat.row load_samples i))
  in
  let t_hat, sigma_hat = Desc.sample_mean_cov samples in
  let w = sigma_inv2 in
  (* Linear term/2 = Rᵀ t̂ + w * v with v_p = r_pᵀ Σ̂ r_p. *)
  let rt = Workspace.transpose ws in
  let v = Vec.zeros p in
  for pair = 0 to p - 1 do
    let links = Csr.row_nonzeros rt pair in
    let acc = ref 0. in
    List.iter
      (fun (i, ri) ->
        List.iter
          (fun (j, rj) -> acc := !acc +. (ri *. rj *. Mat.get sigma_hat i j))
          links)
      links;
    v.(pair) <- !acc
  done;
  let lin = Vec.axpy w v (Csr.tmatvec routing.Routing.matrix t_hat) in
  (* Hessian/2 = H₀ = G + w * (G entry-wise squared); grad = 2 (H₀ x −
     lin).  Dense mode materializes H₀ (bit-identical to the historical
     path); sparse mode applies it matrix-free as
     normal_op + w · gram_sq_op, never touching a p x p matrix. *)
  let pool = Workspace.pool ws in
  (* Exact curvature diagonal: diag(2H₀)_i = 2(g_i + w·g_i²), since the
     (i,i) entry of G entry-wise squared is g_i².  Block degrades to
     Jacobi (the non-negativity clamp needs a diagonal metric). *)
  let dinv =
    match Workspace.resolve_precond ws precond with
    | Workspace.Precond_none -> None
    | Workspace.Precond_jacobi | Workspace.Precond_block
    | Workspace.Precond_auto ->
        Some
          (Workspace.precond_vec ws
             ~key:(Printf.sprintf "vardi.jacobi.dinv:%h" w)
             ~compute:(fun () ->
               Vec.map
                 (fun g ->
                   let d = 2. *. (g +. (w *. g *. g)) in
                   if d > 0. then 1. /. d else 1.)
                 (Workspace.gram_diag ws)))
  in
  let gradient_into, lipschitz, objective =
    if Workspace.is_sparse ws then begin
      let normal = Workspace.normal_op ws in
      let gsq = Workspace.gram_sq_op ws in
      let tmp = (Workspace.scratch ws ~name:"vardi.h0" ~dim:p ~count:1).(0) in
      let apply_h0_into x ~dst =
        Op.apply_into normal x ~dst;
        Op.apply_into gsq x ~dst:tmp;
        Vec.axpy_into w tmp dst ~dst
      in
      let gradient_into x ~dst =
        apply_h0_into x ~dst;
        Vec.sub_into dst lin ~dst;
        Vec.scale_into 2. dst ~dst
      in
      let lipschitz =
        match dinv with
        | None ->
            2.
            *. Workspace.cached_lipschitz ws
                 ~key:(Printf.sprintf "vardi.h0op:%h" w)
                 ~compute:(fun () ->
                   Fista.lipschitz_of_op ~dim:p (fun x ->
                       let dst = Vec.zeros p in
                       apply_h0_into x ~dst;
                       dst))
        | Some dinv ->
            2.
            *. Workspace.cached_lipschitz ws
                 ~key:(Printf.sprintf "vardi.h0op.jacobi:%h" w)
                 ~compute:(fun () ->
                   let ds = Vec.map sqrt dinv in
                   Fista.lipschitz_of_op ~dim:p (fun x ->
                       let dst = Vec.zeros p in
                       apply_h0_into (Vec.mul ds x) ~dst;
                       Vec.mul ds dst))
      in
      (* Traced runs only; allocates freely. *)
      let objective x =
        let hx = Vec.zeros p in
        apply_h0_into x ~dst:hx;
        Vec.dot x hx -. (2. *. Vec.dot lin x)
      in
      (gradient_into, lipschitz, objective)
    end
    else begin
      let g = Workspace.gram ws in
      let h0 =
        Mat.init p p (fun i j ->
            let gij = Mat.unsafe_get g i j in
            gij +. (w *. gij *. gij))
      in
      let gradient_into x ~dst =
        Mat.matvec_into ?pool h0 x ~dst;
        Vec.sub_into dst lin ~dst;
        Vec.scale_into 2. dst ~dst
      in
      let lipschitz =
        match dinv with
        | None ->
            2.
            *. Workspace.cached_lipschitz ws
                 ~key:(Printf.sprintf "vardi.h0:%h" w)
                 ~compute:(fun () -> Fista.lipschitz_of_gram h0)
        | Some dinv ->
            2.
            *. Workspace.cached_lipschitz ws
                 ~key:(Printf.sprintf "vardi.h0.jacobi:%h" w)
                 ~compute:(fun () ->
                   let ds = Vec.map sqrt dinv in
                   Fista.lipschitz_of_op ~dim:p (fun x ->
                       Vec.mul ds (Mat.matvec h0 (Vec.mul ds x))))
      in
      (* Traced runs only; allocates freely. *)
      let objective x =
        Vec.dot x (Mat.matvec h0 x) -. (2. *. Vec.dot lin x)
      in
      (gradient_into, lipschitz, objective)
    end
  in
  (* Warm starts arrive in bits/s; the solver works in counting units. *)
  let x0 = Option.map (fun v0 -> Vec.scale (1. /. unit_bps) v0) x0 in
  let scratch =
    Workspace.scratch ws ~name:"fista" ~dim:p ~count:Fista.scratch_size
  in
  let res =
    Fista.solve_into ?x0 ~stop ~scratch ~objective ?dinv ~dim:p ~gradient_into
      ~lipschitz ()
  in
  let lambda = res.Fista.x in
  let pred = Csr.matvec routing.Routing.matrix lambda in
  let denom = Vec.norm2 t_hat in
  let mean_residual =
    if denom = 0. then 0. else Vec.dist2 pred t_hat /. denom
  in
  if mean_residual > 0.5 then
    Logs.warn ~src:Problem.log_src (fun m ->
        m "Vardi.estimate: first-moment residual %.2f — the covariance \
           term dominates; the Poisson assumption is likely violated \
           (sigma_inv2 = %g)" mean_residual sigma_inv2);
  {
    estimate = Vec.scale unit_bps lambda;
    mean_residual;
    iterations = res.Fista.iterations;
  }
