(** Shared solver workspace: one preprocessing pass, many cheap solves.

    Every estimation method in the comparison solves against the same
    routing matrix [R], and most of them need the same derived
    artifacts: the CSR transpose [Rᵀ], the dense Gram matrix [RᵀR], its
    regularized Cholesky factor, spectral norms (gradient Lipschitz
    constants), the access-link row indices, the total-traffic
    normalization and the materialized prior vectors.  A [Workspace.t]
    wraps one routing context and computes each artifact lazily, exactly
    once, so that sweeps over regularization parameters, measurement
    windows and 5-minute snapshots pay the preprocessing cost a single
    time.

    All cached values are produced by the very same expressions the
    methods previously evaluated inline, so estimates obtained through a
    workspace are bit-identical to the historical per-call results.
    Cached matrices are shared — callers must treat them as read-only.

    The workspace also keeps per-artifact hit/miss/time counters (see
    {!stats}) so the effect of the caching is observable in the
    benchmark harness and the CLI rather than asserted.

    {b Thread safety}: every cache, counter and scratch arena is guarded
    by one internal mutex, so a single workspace may be driven from
    several domains of a {!Tmest_parallel.Pool} concurrently.  Hit/miss
    totals stay exact under contention — concurrent requests for the
    same artifact serialize and all but the first count as hits.
    Scratch arenas are additionally keyed by the calling domain (see
    {!scratch}), so concurrent solves never share work vectors. *)

type t

(** Prior families the estimation methods accept (paper Section 4).
    Defined here (rather than in {!Estimator}) so the workspace can key
    its prior cache on the family; [Estimator.prior_kind] re-exports the
    constructors. *)
type prior_kind =
  | Prior_gravity  (** simple gravity model (the paper's default prior) *)
  | Prior_wcb  (** worst-case-bound midpoints *)
  | Prior_uniform  (** total traffic spread evenly over all pairs *)

(** Solver-core mode.  [Dense] materializes the historical dense
    artifacts ({!gram}, {!dense}, Cholesky, eigen) — the small-[n] fast
    path, bit-identical to every previous release.  [Sparse] never
    builds a dense [n_od x n_od] matrix: solvers consume matrix-free
    operators ({!op}, {!normal_op}, {!gram_sq_op}) instead, which is
    what makes 100–500-PoP networks (10⁴–10⁵ OD pairs) feasible.
    [Auto] (the default) picks [Sparse] above {!sparse_gate} OD pairs. *)
type mode = Auto | Dense | Sparse

(** OD-pair count above which [Auto] resolves to [Sparse] (2048; the
    paper networks with 132 and 600 pairs stay dense). *)
val sparse_gate : int

(** Preconditioner policy for the iterative solvers.  [Precond_auto]
    resolves to each method's measured best configuration: the
    quadratic solvers (bayes, vardi, cao's bootstrap) take Jacobi in
    sparse mode — iteration counts dominate wall-clock at 100–500 PoPs
    and the exact Gram diagonal costs one O(nnz) pass — and none in
    dense mode (see {!resolve_precond}), which keeps every historical
    dense golden result bit-identical; entropy and fanout resolve
    [Precond_auto] to none (the KL-prox and block-simplex geometries
    measured slower under the diagonal metric).  [Precond_block]
    selects block-Jacobi where a block structure exists (per-source CG
    blocks, fanout's per-source metric) and degrades to Jacobi
    elsewhere. *)
type precond_kind =
  | Precond_auto
  | Precond_jacobi
  | Precond_block
  | Precond_none

(** [create ?pool ?sink ?mode routing] wraps a routing context.  No
    artifact is computed until first use.  [pool], when given, is the
    domain pool row-partitioned kernels and multi-chain samplers use for
    solves against this workspace (absent: everything runs
    sequentially).  [sink] (default {!Tmest_obs.Obs.null}) receives
    trace events from every cache, solver and estimator run against this
    workspace.  [mode] (default [Auto]) selects the solver core; see
    {!mode}. *)
val create :
  ?pool:Tmest_parallel.Pool.t -> ?sink:Tmest_obs.Obs.sink -> ?mode:mode ->
  Tmest_net.Routing.t -> t

val routing : t -> Tmest_net.Routing.t

(** [mode t] is the resolved mode, never [Auto]. *)
val mode : t -> mode

(** [is_sparse t] is [mode t = Sparse]. *)
val is_sparse : t -> bool

(** [resolve_precond t kind] resolves [Precond_auto] against this
    workspace's mode (Jacobi when sparse, none when dense); other kinds
    pass through.  Never returns [Precond_auto].  Methods whose
    geometry measured slower under the diagonal metric (entropy,
    fanout) bypass this and treat [Precond_auto] as none themselves. *)
val resolve_precond : t -> precond_kind -> precond_kind

(** [sink t] is the trace sink attached to this workspace; the null
    sink unless a driver installed one ([--trace]). *)
val sink : t -> Tmest_obs.Obs.sink

(** [set_sink t s] installs [s] as the trace destination for subsequent
    operations against this workspace. *)
val set_sink : t -> Tmest_obs.Obs.sink -> unit

(** [solver_stop t stop ~label ~max_iter ~tol] resolves a
    caller-supplied {!Tmest_opt.Stop.t} against a method's defaults:
    unset limits take [max_iter]/[tol], an unset (null) sink falls back
    to this workspace's {!sink}, and [label] names the solve in trace
    records unless the caller already attached one. *)
val solver_stop :
  t -> Tmest_opt.Stop.t -> label:string -> max_iter:int -> tol:float ->
  Tmest_opt.Stop.t

(** [pool t] is the domain pool attached at {!create} (or via
    {!set_pool}); consumers fall back to sequential code when [None]. *)
val pool : t -> Tmest_parallel.Pool.t option

(** [set_pool t p] swaps the attached pool — benchmark drivers use this
    to sweep job counts against one warmed-up workspace. *)
val set_pool : t -> Tmest_parallel.Pool.t option -> unit

(** [num_links t] / [num_pairs t]: dimensions of the wrapped [R]. *)
val num_links : t -> int

val num_pairs : t -> int

(** [ingress_rows t] / [egress_rows t]: per-node access-link row
    indices, materialized once ([ingress_rows t].(n) is the row carrying
    node [n]'s total ingress traffic).  Do not mutate. *)
val ingress_rows : t -> int array

val egress_rows : t -> int array

(** {1 Memoized linear-algebra artifacts}

    The dense artifacts ({!gram}, {!gram_sq}, {!gram_chol},
    {!gram_eigen}, {!dense}, {!gram_norm}) raise [Invalid_argument] in
    sparse mode — the error names the matrix-free replacement.  The
    CSR/operator artifacts work in both modes. *)

(** [gram t] is the dense [RᵀR], computed once.  Dense mode only. *)
val gram : t -> Tmest_linalg.Mat.t

(** [gram_sq t] is the entry-wise square of {!gram} (second-moment
    system of the Vardi/Cao methods).  Dense mode only. *)
val gram_sq : t -> Tmest_linalg.Mat.t

(** [gram_chol t] is the ridge-regularized Cholesky factor of {!gram}
    (default {!Tmest_linalg.Chol.factor_regularized} ridge).  Dense
    mode only. *)
val gram_chol : t -> Tmest_linalg.Chol.t

(** [gram_eigen t] is the symmetric eigendecomposition of {!gram}
    (null-space bases, numerical ranks).  Dense mode only. *)
val gram_eigen : t -> Tmest_linalg.Eigen.t

(** [transpose t] is [Rᵀ] in CSR form. *)
val transpose : t -> Tmest_linalg.Csr.t

(** [dense t] is [R] as a dense matrix (LP-based methods).  Dense mode
    only. *)
val dense : t -> Tmest_linalg.Mat.t

(** {1 Matrix-free operator artifacts}

    Available in both modes; in sparse mode they are the {e only} form
    of the measurement system.  Operators are cached per calling domain
    (compositions own scratch buffers, so every domain gets private
    closures) and counted under the [op] stats class — in sparse mode
    this class replaces the [gram]/[dense] classes, which would
    otherwise silently read 0. *)

(** [op t] is the routing matrix [R] as a matrix-free operator; forward
    products use the pooled CSR kernel (reading the {e current}
    {!pool} on every application). *)
val op : t -> Tmest_linalg.Op.t

(** [normal_op t] is the normal-equations operator [x ↦ Rᵀ(Rx)] — the
    matrix-free replacement for {!gram}. *)
val normal_op : t -> Tmest_linalg.Op.t

(** [gram_sq_op t] applies the entry-wise squared Gram [(RᵀR)∘(RᵀR)]
    without forming it: the factorization [ZᵀZ] has one [Z] row per
    used link pair, [nnz(Z) = Σ_i h_i²] (squared OD path lengths).
    Matrix-free replacement for {!gram_sq} (Vardi/Cao second-moment
    systems). *)
val gram_sq_op : t -> Tmest_linalg.Op.t

(** [op_norm t] is [‖RᵀR‖₂] estimated by power iteration on the sparse
    operator [v ↦ Rᵀ(Rv)] — the Lipschitz building block of the
    first-order methods (Entropy, Bayes). *)
val op_norm : t -> float

(** [gram_norm t] is [‖RᵀR‖₂] estimated by power iteration on the
    {e dense} {!gram} matrix.  Numerically this can differ from
    {!op_norm} in the last bits (different summation order), and the Cao
    solver historically used the dense variant, so both are kept. *)
val gram_norm : t -> float

(** [cached_lipschitz t ~key ~compute] memoizes a method-specific
    Lipschitz constant under [key].  Use for constants that depend on
    the routing matrix plus fixed scalar parameters (encode the
    parameters in the key); [compute] runs at most once per key. *)
val cached_lipschitz : t -> key:string -> compute:(unit -> float) -> float

(** [lipschitz_of_matrix t h] is {!Tmest_opt.Fista.lipschitz_of_gram}[ h],
    uncached (for per-window matrices that cannot be reused) but counted
    in {!stats}. *)
val lipschitz_of_matrix : t -> Tmest_linalg.Mat.t -> float

(** [lipschitz_of_op t ~dim apply] is
    {!Tmest_opt.Fista.lipschitz_of_op}, uncached but counted in
    {!stats} (joint multi-routing operators). *)
val lipschitz_of_op :
  t -> dim:int -> (Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t) -> float

(** {1 Preconditioners}

    All preconditioner artifacts are memoized per routing context and
    counted under the [precond] stats class.  Diagonals are {e exact}
    (one O(nnz) pass over the stored routing entries), never stochastic
    estimates, so preconditioned runs stay bit-reproducible across job
    counts. *)

(** [gram_diag t] is the exact diagonal of [RᵀR]
    ({!Tmest_linalg.Csr.col_sq_norms}), memoized.  Both modes. *)
val gram_diag : t -> Tmest_linalg.Vec.t

(** [precond_vec t ~key ~compute] memoizes a method-specific
    preconditioner diagonal under [key] (encode parameters with [%h]).
    The value is shared read-only across domains. *)
val precond_vec :
  t -> key:string -> compute:(unit -> Tmest_linalg.Vec.t) ->
  Tmest_linalg.Vec.t

(** [jacobi_cg_minv t ~shift] is the Jacobi [M⁻¹] for CG on the shifted
    normal equations [G + shift·I]: [z_i = r_i / (g_i + shift)] (zero
    diagonal entries pass through unscaled).  Pass as
    {!Tmest_opt.Cg.solve_into}'s [m_inv_into]. *)
val jacobi_cg_minv :
  t -> shift:float -> Tmest_linalg.Vec.t -> dst:Tmest_linalg.Vec.t -> unit

(** [block_jacobi_cg_minv t ~shift] is the block-Jacobi [M⁻¹] for CG on
    [G + shift·I]: per-source dense Gram blocks, Cholesky-factored once
    and applied by in-place triangular solves.  [None] (after a logged
    warning) when the factors would exceed the memory budget
    (Σ block² > 32M words) — fall back to {!jacobi_cg_minv}.  Cached per
    calling domain (the applier owns gather buffers). *)
val block_jacobi_cg_minv :
  t -> shift:float ->
  (Tmest_linalg.Vec.t -> dst:Tmest_linalg.Vec.t -> unit) option

(** [note_iterations t ~name ~iterations] records the iteration count
    of the most recent solve of method [name] (bounded MRU; called by
    [Estimator.solve]).  With an enabled sink also emits a
    [solve.<name>.iterations] counter sample — iteration counts are
    deterministic, so traces stay reproducible. *)
val note_iterations : t -> name:string -> iterations:int -> unit

(** [last_iterations t ~name] is the iteration count noted by the most
    recent solve of method [name], if any. *)
val last_iterations : t -> name:string -> int option

(** {1 Load-dependent caches}

    Keyed by the load vector itself (physical equality first, then
    structural); bounded most-recently-used lists, so sweeps that reuse
    one snapshot hit the cache while long scans cannot grow it without
    bound. *)

(** [total_traffic t ~loads] is the total network traffic [Σ te(n)]
    read off the ingress access-link rows (the [stot] normalization of
    Section 3.2.1). *)
val total_traffic : t -> loads:Tmest_linalg.Vec.t -> float

(** [cached_prior t ~kind ~loads ~compute] memoizes a materialized
    prior vector per [(kind, loads)].  The computation closure lives
    with the caller ({!Estimator.build_prior_ws}) so the workspace does
    not depend on the method modules.  Treat the result as read-only. *)
val cached_prior :
  t ->
  kind:prior_kind ->
  loads:Tmest_linalg.Vec.t ->
  compute:(unit -> Tmest_linalg.Vec.t) ->
  Tmest_linalg.Vec.t

(** {1 Scratch-buffer pool}

    Solver work vectors, keyed by consumer name, dimension and calling
    domain, so the allocation-free solver hot paths
    ({!Tmest_opt.Fista.solve_into} and friends) reuse one set of buffers
    across every solve against this routing context while concurrent
    solves on different domains each own a private arena.  Buffers are
    handed out as uninitialized storage: contents do not survive between
    [scratch] calls with the same key, and two concurrent consumers on
    one domain must use distinct names. *)

(** [scratch t ~name ~dim ~count] is a pool of at least [count] vectors
    of dimension [dim], created on first use and cached under
    [(name, dim, domain)].  Growing [count] extends the cached pool in
    place. *)
val scratch :
  t -> name:string -> dim:int -> count:int -> Tmest_linalg.Vec.t array

(** [scratch_mat t ~name ~rows ~cols] is a matrix arena with the same
    per-domain keying as {!scratch} ([(name, rows, cols, domain)]):
    window scans refill one samples matrix per scanning domain instead
    of allocating a fresh [window x L] matrix per window position.
    Contents are uninitialized storage between uses. *)
val scratch_mat : t -> name:string -> rows:int -> cols:int -> Tmest_linalg.Mat.t

(** {1 Warm-start cache}

    Bounded MRU cache of previous solutions, keyed by a caller-built
    string identifying the method and its parameters (e.g.
    ["entropy:sigma2=0x1.f4p+9:prior=gravity"]).  Window scans solve the
    same problem against slowly drifting load vectors, so the previous
    window's solution is an excellent starting iterate.  Opt-in:
    {!Estimator.run_ws} only consults this cache when asked, because a
    warm-started first-order solve stops at a {e different} point within
    the solver tolerance than a cold one. *)

(** [warm_start t ~key ~dim] is the most recent stored solution under
    [key], if any of matching dimension.  Counted under the [warm]
    stats class ([hits] = served, [misses] = empty lookups).  Treat the
    result as read-only. *)
val warm_start : t -> key:string -> dim:int -> Tmest_linalg.Vec.t option

(** [store_warm_start t ~key v] records [v] (copied) as the starting
    iterate for future solves under [key], evicting the least recently
    used entry beyond the cache bound. *)
val store_warm_start : t -> key:string -> Tmest_linalg.Vec.t -> unit

(** {1 Observability}

    Beyond the counter snapshots below, a workspace with an enabled
    {!sink} streams the same information as trace events: cumulative
    [ws.<artifact>.hits]/[.misses] counter samples on every cache
    probe, a [ws.<artifact>] span around each artifact computation, a
    [ws.prior] span per materialized prior, and [ws.scratch.*] arena
    gauges. *)

(** One artifact class's counters: [misses] is the number of times the
    artifact was actually computed, [hits] the number of times a cached
    value was served, [seconds] the cumulative wall-clock time spent
    computing (misses only). *)
type counter = { hits : int; misses : int; seconds : float }

type stats = {
  gram : counter;  (** dense [RᵀR] (+ entry-wise square); dense mode *)
  chol : counter;  (** regularized Cholesky factor; dense mode *)
  eigen : counter;  (** symmetric eigendecomposition; dense mode *)
  transpose : counter;  (** CSR transpose *)
  dense : counter;  (** dense [R]; dense mode *)
  op : counter;  (** matrix-free operators + Z factor; the sparse-mode
                     counterpart of [gram]/[dense] *)
  lipschitz : counter;  (** all spectral-norm estimates *)
  prior : counter;  (** materialized prior vectors *)
  total : counter;  (** total-traffic normalizations *)
  solve : counter;  (** full estimator runs via [Estimator.run_ws]
                        ([misses] = number of solves) *)
  warm : counter;  (** warm-start lookups ([hits] = starts served) *)
  precond : counter;
      (** preconditioner artifacts: Gram diagonal, method diagonals,
          block-Jacobi factors ([hits] = cached reuses) *)
  solve_words : float;
      (** cumulative words (minor+major) allocated inside recorded
          solves *)
  peak_solve_words : float;
      (** largest single-solve allocation (churn: iterative methods
          re-allocate per iteration, so this can exceed live memory) *)
  heap_words : float;
      (** process top-of-heap watermark observed after a recorded solve
          — the dense-matrix witness: a materialized [n_od x n_od] Gram
          must live on the heap, so sparse-mode runs keep this far
          below [n_od²] words no matter how much the solvers churn *)
}

(** [stats t] is a snapshot of the counters. *)
val stats : t -> stats

(** [reset_stats t] zeroes all counters (cached artifacts are kept). *)
val reset_stats : t -> unit

(** [record_solve t ~seconds ~words] accounts one full estimator run
    ([words] = words allocated during the solve, measured by the caller
    via [Gc.allocated_bytes] deltas); called by [Estimator.run_ws].
    Also samples the GC's top-of-heap watermark into [heap_words].
    Allocation figures are stats-only: the watermark is process-global
    and monotone, and per-solve allocation deltas depend on process
    history (first-run lazy initialization), so tracing either would
    break one-job trace determinism.  Emits only the [ws.solves]
    counter sample when the sink is enabled. *)
val record_solve : t -> seconds:float -> words:float -> unit

(** [add_stats a b] sums two snapshots field-wise (aggregating several
    workspaces in a report). *)
val add_stats : stats -> stats -> stats

(** [pp_stats ppf s] prints a compact human-readable summary. *)
val pp_stats : Format.formatter -> stats -> unit

(** [stats_rows s] is [(artifact, hits, misses, seconds)] per artifact
    class, in a stable order — machine-readable form for benchmark
    emitters. *)
val stats_rows : stats -> (string * int * int * float) list
