module Vec = Tmest_linalg.Vec
module Csr = Tmest_linalg.Csr
module Scaling = Tmest_opt.Scaling
module Stop = Tmest_opt.Stop
module Routing = Tmest_net.Routing
module Topology = Tmest_net.Topology
module Odpairs = Tmest_net.Odpairs

type result = {
  estimate : Vec.t;
  iterations : int;
  converged : bool;
  link_error : float;
}

(* Iterative tomogravity (Fang et al. 2007): alternate the two
   KL-projections that the one-shot method applies only once each —
   onto the gravity marginals (classic IPF, exactly Kruithof's step)
   and onto the link constraints {Rx = y} (one generalized iterative
   scaling sweep over the sparse routing matrix).  The access rows of R
   already imply the node marginals, so the constraint sets are nested
   and Csiszár's alternating I-projection argument applies: the iterate
   converges to the KL-projection of the gravity prior onto the full
   link system — the point where one-shot tomogravity stops after its
   first marginal pass. *)
let estimate ?(stop = Stop.default) ws ~loads ~prior =
  let stop =
    Workspace.solver_stop ws stop ~label:"tomogravity/iter" ~max_iter:200
      ~tol:1e-6
  in
  let max_iter = Stop.max_iter stop ~default:200 in
  let tol = Stop.tol stop ~default:1e-6 in
  let routing = Workspace.routing ws in
  Problem.check_dims routing ~loads;
  let n = Topology.num_nodes routing.Routing.topo in
  let p = Routing.num_pairs routing in
  let l = Routing.num_links routing in
  if Array.length prior <> p then
    invalid_arg "Tomogravity.estimate: prior dimension mismatch";
  let te, tx = Gravity.node_totals routing ~loads in
  let r = routing.Routing.matrix in
  let rt = Workspace.transpose ws in
  (* GIS normalization constant: any C >= max column weight of R keeps
     the multiplicative update a strict KL descent step. *)
  let c =
    let m = ref 1. in
    for pair = 0 to p - 1 do
      let s = ref 0. in
      Csr.iter_row rt pair (fun _ v -> s := !s +. v);
      if !s > !m then m := !s
    done;
    !m
  in
  let pool = Workspace.pool ws in
  let x = ref (Vec.copy prior) in
  let y = Vec.zeros l in
  let ratio = Vec.zeros l in
  (* One inner IPF pass per outer iteration is enough — the marginal
     projection only has to track the slowly-moving GIS iterate, and
     the final iterations leave it at a fixed point of both maps. *)
  let inner = { stop with Stop.max_iter = Some 4; tol = Some (tol /. 10.) } in
  let iterations = ref 0 in
  let converged = ref false in
  let link_error = ref infinity in
  let iter = ref 0 in
  while (not !converged) && !iter < max_iter do
    incr iter;
    iterations := !iter;
    (* KL-projection toward {Rx = y}: one GIS sweep.  Zero target loads
       force the crossing pairs to zero (ratio^positive -> 0), matching
       the structural-zero semantics of the scaling machinery. *)
    Csr.matvec_into ?pool r !x ~dst:y;
    let err = ref 0. in
    for i = 0 to l - 1 do
      ratio.(i) <- (if y.(i) > 0. then loads.(i) /. y.(i) else 1.);
      let e = abs_float (y.(i) -. loads.(i)) /. Stdlib.max loads.(i) 1. in
      if e > !err then err := e
    done;
    link_error := !err;
    if !err < tol then converged := true
    else begin
      for pair = 0 to p - 1 do
        if !x.(pair) > 0. then begin
          let f = ref 1. in
          Csr.iter_row rt pair (fun i v -> f := !f *. (ratio.(i) ** (v /. c)));
          !x.(pair) <- !x.(pair) *. !f
        end
      done;
      (* KL-projection onto the gravity marginals: Kruithof's IPF on
         the node-by-node view of the iterate. *)
      let m = Odpairs.matrix_of_vector ~nodes:n !x in
      let balanced, _ = Scaling.ipf ~stop:inner m ~row_sums:te ~col_sums:tx in
      x := Odpairs.vector_of_matrix ~nodes:n balanced
    end
  done;
  {
    estimate = !x;
    iterations = !iterations;
    converged = !converged;
    link_error = !link_error;
  }
