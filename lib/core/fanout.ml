module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Csr = Tmest_linalg.Csr
module Fista = Tmest_opt.Fista
module Projections = Tmest_opt.Projections
module Stop = Tmest_opt.Stop
module Routing = Tmest_net.Routing
module Topology = Tmest_net.Topology
module Odpairs = Tmest_net.Odpairs

type result = {
  fanouts : Vec.t;
  estimate : Vec.t;
  iterations : int;
}

(* The constrained least-squares problem

     min Σ_k ‖R S[k] α − t[k]‖²  s.t.  α in per-source simplices

   is solved by accelerated projected gradient with an exact Euclidean
   projection onto the product of probability simplices.  A KKT solve
   would be simpler on paper but the Hessian's blocks are scaled by
   squared node totals, whose spread (heavy-tailed PoP sizes) makes the
   KKT system numerically hopeless; projection-based iterations only
   ever evaluate well-scaled matrix-vector products. *)
let estimate ?x0 ?(stop = Stop.default) ?(precond = Workspace.Precond_none) ws
    ~load_samples =
  let stop =
    Workspace.solver_stop ws stop ~label:"fanout/fista" ~max_iter:4000
      ~tol:1e-10
  in
  let routing = Workspace.routing ws in
  let ingress = Workspace.ingress_rows ws in
  let l = Routing.num_links routing in
  let p = Routing.num_pairs routing in
  let n = Topology.num_nodes routing.Routing.topo in
  let k = Mat.rows load_samples in
  if k = 0 then invalid_arg "Fanout.estimate: empty load window";
  if Mat.cols load_samples <> l then
    invalid_arg "Fanout.estimate: load samples do not match routing matrix";
  (* Normalize loads by the average total network traffic. *)
  let scale = ref 0. in
  for step = 0 to k - 1 do
    for node = 0 to n - 1 do
      scale := !scale +. Mat.get load_samples step ingress.(node)
    done
  done;
  let scale = Stdlib.max (!scale /. float_of_int k) 1. in
  let te = Mat.zeros k n in
  for step = 0 to k - 1 do
    for node = 0 to n - 1 do
      Mat.set te step node (Mat.get load_samples step ingress.(node) /. scale)
    done
  done;
  let src_of = Array.init p (fun pair -> Odpairs.source ~nodes:n pair) in
  (* lin_p = Σ_k te_src(p)[k] (Rᵀ t[k])_p, so grad = 2(Hα − lin). *)
  let lin = Vec.zeros p in
  for step = 0 to k - 1 do
    let t_k = Vec.scale (1. /. scale) (Mat.row load_samples step) in
    let rt = Csr.tmatvec routing.Routing.matrix t_k in
    for pair = 0 to p - 1 do
      lin.(pair) <-
        lin.(pair) +. (Mat.get te step src_of.(pair) *. rt.(pair))
    done
  done;
  (* H = G ∘ W(src,src) with W = Σ_k te[k] te[k]ᵀ.  Dense mode
     materializes H (historical path); sparse mode never forms it —
     the original objective min Σ_k ‖R S[k] α − t[k]‖² with
     S[k] = diag(te[k] ∘ src) gives Hα = Σ_k S[k] Rᵀ(R S[k] α)
     directly, one pooled matvec pair per window sample. *)
  let apply_h_into, lipschitz =
    if Workspace.is_sparse ws then begin
      let r_op = Workspace.op ws in
      let pbufs = Workspace.scratch ws ~name:"fanout.h" ~dim:p ~count:2 in
      let sa = pbufs.(0) and z = pbufs.(1) in
      let y = (Workspace.scratch ws ~name:"fanout.h.links" ~dim:l ~count:1).(0)
      in
      let apply_h_into a ~dst =
        Array.fill dst 0 p 0.;
        for step = 0 to k - 1 do
          for pair = 0 to p - 1 do
            sa.(pair) <- Mat.get te step src_of.(pair) *. a.(pair)
          done;
          Tmest_linalg.Op.apply_into r_op sa ~dst:y;
          Tmest_linalg.Op.apply_t_into r_op y ~dst:z;
          for pair = 0 to p - 1 do
            dst.(pair) <-
              dst.(pair) +. (Mat.get te step src_of.(pair) *. z.(pair))
          done
        done
      in
      let lipschitz =
        2.
        *. Workspace.lipschitz_of_op ws ~dim:p (fun a ->
               let dst = Vec.zeros p in
               apply_h_into a ~dst;
               dst)
      in
      (apply_h_into, lipschitz)
    end
    else begin
      let w = Mat.zeros n n in
      for step = 0 to k - 1 do
        for a = 0 to n - 1 do
          let ta = Mat.get te step a in
          if ta <> 0. then
            for b = 0 to n - 1 do
              Mat.set w a b (Mat.get w a b +. (ta *. Mat.get te step b))
            done
        done
      done;
      let g = Workspace.gram ws in
      let h =
        Mat.init p p (fun i j ->
            Mat.unsafe_get g i j *. Mat.get w src_of.(i) src_of.(j))
      in
      let apply_h_into a ~dst = Mat.matvec_into h a ~dst in
      (apply_h_into, 2. *. Workspace.lipschitz_of_matrix ws h)
    end
  in
  let gradient_into a ~dst =
    apply_h_into a ~dst;
    Vec.sub_into dst lin ~dst;
    Vec.scale_into 2. dst ~dst
  in
  (* Preconditioning must keep the per-source simplex projection exact,
     which requires the metric to be constant within each source block
     (a uniformly scaled simplex projection is still the Euclidean one).
     Use d_s = 2·W(s,s)·max_{i in block s} g_i, the tightest
     block-constant bound on the exact curvature diagonal
     H_ii = 2·g_i·W(src(i),src(i)).  Depends on the load window, so it
     is recomputed per call (O(p)) rather than memoized.

     [Precond_auto] resolves to {e no} preconditioning for this method:
     the block-constant metric is too coarse to cut iterations on the
     measured instances (both paths hit the cap at 100 PoPs) and the
     intermediate iterate it stops on is worse.  Explicit selection
     stays available. *)
  let dinv, lipschitz =
    match precond with
    | Workspace.Precond_none | Workspace.Precond_auto -> (None, lipschitz)
    | Workspace.Precond_jacobi | Workspace.Precond_block ->
        let wdiag = Vec.zeros n in
        for step = 0 to k - 1 do
          for node = 0 to n - 1 do
            let t = Mat.get te step node in
            wdiag.(node) <- wdiag.(node) +. (t *. t)
          done
        done;
        let gdiag = Workspace.gram_diag ws in
        let gmax = Vec.zeros n in
        for pair = 0 to p - 1 do
          let s = src_of.(pair) in
          if gdiag.(pair) > gmax.(s) then gmax.(s) <- gdiag.(pair)
        done;
        let dinv =
          Vec.init p (fun pair ->
              let s = src_of.(pair) in
              let d = 2. *. wdiag.(s) *. gmax.(s) in
              if d > 0. then 1. /. d else 1.)
        in
        let ds = Vec.map sqrt dinv in
        let lipschitz =
          Workspace.lipschitz_of_op ws ~dim:p (fun a ->
              let dst = Vec.zeros p in
              apply_h_into (Vec.mul ds a) ~dst;
              Vec.mapi (fun i hi -> 2. *. hi *. ds.(i)) dst)
        in
        (Some dinv, lipschitz)
  in
  (* FISTA with the per-source simplex projection, started from uniform
     fanouts (or a warm-started fanout vector); the historical
     hand-rolled loop here is now the generic allocation-free solver
     with a block-simplex [project_into]. *)
  let part = Projections.block_partition ~block:src_of in
  let start =
    match x0 with
    | Some v ->
        if Array.length v <> p then
          invalid_arg "Fanout.estimate: x0 dimension mismatch";
        v
    | None -> Vec.create p (1. /. float_of_int (n - 1))
  in
  (* Traced runs only; allocates freely. *)
  let objective a =
    let ha = Vec.zeros p in
    apply_h_into a ~dst:ha;
    Vec.dot a ha -. (2. *. Vec.dot lin a)
  in
  let res =
    Fista.solve_into ~x0:start ~stop
      ~scratch:
        (Workspace.scratch ws ~name:"fista" ~dim:p ~count:Fista.scratch_size)
      ~project_into:(fun v ~dst -> Projections.block_simplex_into part v ~dst)
      ~objective ?dinv ~dim:p ~gradient_into ~lipschitz ()
  in
  let fanouts = res.Fista.x in
  (* Demand estimate against the window-average totals (in bits/s). *)
  let te_mean = Vec.zeros n in
  for step = 0 to k - 1 do
    for node = 0 to n - 1 do
      te_mean.(node) <- te_mean.(node) +. Mat.get te step node
    done
  done;
  let te_mean = Vec.scale (scale /. float_of_int k) te_mean in
  let estimate =
    Vec.mapi (fun pair a -> a *. te_mean.(src_of.(pair))) fanouts
  in
  { fanouts; estimate; iterations = res.Fista.iterations }

let demands_of_fanouts ws ~fanouts ~loads =
  let routing = Workspace.routing ws in
  Problem.check_dims routing ~loads;
  let n = Topology.num_nodes routing.Routing.topo in
  let p = Routing.num_pairs routing in
  if Array.length fanouts <> p then
    invalid_arg "Fanout.demands_of_fanouts: dimension mismatch";
  let te, _ = Gravity.node_totals routing ~loads in
  Vec.mapi
    (fun pair a -> a *. te.(Odpairs.source ~nodes:n pair))
    fanouts
