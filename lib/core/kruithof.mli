(** Kruithof's projection method (Section 4.2.1).

    The 1937 original adjusts a prior traffic matrix to measured total
    incoming and outgoing traffic per node by alternating proportional
    scaling; Krupp (1979) showed it computes the minimum
    Kullback–Leibler-distance feasible adjustment and generalized it to
    arbitrary linear constraints [R s = t]. *)

(** [adjust ?stop ws ~loads ~prior] applies classic Kruithof scaling:
    the prior demand vector is balanced so its per-node row/column
    totals match the measured [te]/[tx] from the access-link loads.
    Structural zeros of the prior are preserved.  [stop] carries the IPF
    sweep limits (defaults 500, 1e-9) and trace sink. *)
val adjust :
  ?stop:Tmest_opt.Stop.t ->
  Workspace.t ->
  loads:Tmest_linalg.Vec.t ->
  prior:Tmest_linalg.Vec.t ->
  Tmest_linalg.Vec.t

(** [krupp ?stop ws ~loads ~prior] is the generalized
    projection: minimize [D(s ‖ prior)] subject to the full link system
    [R s = t], via Darroch–Ratcliff iterative scaling.  Requires the
    loads to be consistent (they are, for loads derived as [R s]). *)
val krupp :
  ?stop:Tmest_opt.Stop.t ->
  Workspace.t ->
  loads:Tmest_linalg.Vec.t ->
  prior:Tmest_linalg.Vec.t ->
  Tmest_linalg.Vec.t
