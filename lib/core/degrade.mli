(** Degraded-mode input repair: estimation that survives dirty data.

    Every method in this library assumes the load vector it is given is
    finite, non-negative and consistent with {e some} demand vector.
    Real measurement pipelines deliver worse: lost polls (no value at
    all), 32-bit counter wraps and resets (grossly wrong values on
    individual links), and noise.  This module sits between the
    measurements and the estimators: it detects missing and
    inconsistent rows of [R s = t] and repairs them so any registered
    method can run unmodified.

    Detection and repair both lean on one fact: the rows of a routing
    matrix are linearly dependent (total ingress equals total egress,
    and traffic is conserved at every transit node), so a corrupted
    single row generally leaves the range of [R].  The repair fits
    [s] to the surviving rows by ridge-regularized least squares
    against the workspace's cached Gram factor (rows lost to the mask
    are removed by a rank-one downdate), then

    - {b imputes} each missing row as its fitted value [(R s)_i], and
    - {b projects} each violated row — relative misfit above
      [residual_tol] — onto the fitted value, which is exactly dropping
      the inconsistent constraint in favour of the least-squares
      consensus of the others.

    With clean inputs nothing is flagged and the {e original arrays}
    are returned (physical equality), so a degraded-mode
    {!Estimator.solve} is bit-identical to the plain path — asserted in
    the test suite. *)

(** What happened to one run's inputs.  All counts refer to the
    snapshot load vector except the [sample_*] fields (window rows). *)
type health = {
  links : int;  (** measurement rows inspected *)
  missing : int;  (** non-finite or negative snapshot cells *)
  imputed : int;  (** missing cells replaced by fitted values *)
  projected : int;  (** inconsistent rows projected onto the fit *)
  sample_cells : int;  (** window cells inspected (0 without samples) *)
  sample_missing : int;  (** window cells repaired by temporal fill *)
  balance_gap : float;
      (** relative total-ingress vs total-egress mismatch of the
          (zero-filled) input — the cheapest inconsistency witness *)
  residual_before : float;
      (** relative misfit of the observed rows against the
          least-squares fit, before repair *)
  residual_after : float;  (** same misfit after repair *)
  rank_deficiency : int option;
      (** [num_pairs - numerical rank of RᵀR], when
          [policy.report_rank] asked for it — the structural
          underdetermination of the tomography problem *)
  clean : bool;  (** no repair performed; inputs returned unchanged *)
}

type policy = {
  residual_tol : float;
      (** relative per-row misfit above which an observed row is
          treated as corrupt and projected (default [1e-3]; clean
          synthetic data sits around [1e-8]) *)
  project_inconsistent : bool;
      (** [false]: only impute missing rows, never rewrite observed
          ones *)
  repair_samples : bool;
      (** temporally fill non-finite window cells (per link, last
          finite value carried forward) *)
  feasible : bool;
      (** when a repair occurs, replace the {e whole} load vector by
          [R s+] — [s+] the non-negative part of the least-squares fit
          — so the repaired system is exactly consistent with some
          demand vector.  Methods that require feasibility (the WCB
          linear programs) need this; {!Estimator.solve} switches it on
          for them automatically.  Clean inputs are still returned
          untouched. *)
  report_rank : bool;
      (** compute [rank_deficiency] (forces the workspace's cached
          eigendecomposition — O(p³) once per routing context) *)
  on_health : (health -> unit) option;
      (** called with every run's health record; the hook drivers use
          to surface degradation without changing {!Estimator.solve}'s
          return type *)
}

(** [residual_tol = 1e-3], project and repair samples, not [feasible],
    no rank, no callback. *)
val default : policy

val with_on_health : (health -> unit) -> policy -> policy

type repaired = {
  loads : Tmest_linalg.Vec.t;
      (** physically the input when nothing needed repair *)
  samples : Tmest_linalg.Mat.t option;  (** likewise *)
  health : health;
}

(** [repair ?sink policy ws ~loads ?samples ()] runs detection and
    repair.  With an enabled [sink] the run is wrapped in a
    [degrade/repair] span and the health counts are emitted as
    [degrade.*] counters.
    @raise Invalid_argument if [loads] does not match the workspace's
    routing matrix. *)
val repair :
  ?sink:Tmest_obs.Obs.sink ->
  policy ->
  Workspace.t ->
  loads:Tmest_linalg.Vec.t ->
  ?samples:Tmest_linalg.Mat.t ->
  unit ->
  repaired

(** [pp_health ppf h] prints a compact one-line summary. *)
val pp_health : Format.formatter -> health -> unit
