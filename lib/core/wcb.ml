module Vec = Tmest_linalg.Vec
module Simplex = Tmest_opt.Simplex
module Routing = Tmest_net.Routing

type bounds = {
  lower : Vec.t;
  upper : Vec.t;
}

let trivial_upper ws ~loads =
  let routing = Workspace.routing ws in
  Problem.check_dims routing ~loads;
  let p = Routing.num_pairs routing in
  let upper = Vec.create p infinity in
  (* A link bounds a demand only when the demand crosses it *whole*:
     with fractional (ECMP) routing, t_l >= frac * s_p gives s_p <=
     t_l / frac, so only coefficient-1 rows yield t_l itself.  Access
     links always qualify. *)
  let rt = Workspace.transpose ws in
  for pair = 0 to p - 1 do
    Tmest_linalg.Csr.iter_row rt pair (fun link coeff ->
        if coeff >= 1. -. 1e-9 then
          upper.(pair) <- Stdlib.min upper.(pair) loads.(link))
  done;
  upper

let bounds ?pairs ws ~loads =
  (* Documented dense-only exclusion: the bounds are 2p linear programs
     over a dense simplex tableau, O(p·L) memory and O(p) pivoting each
     — there is no matrix-free simplex, so above the sparse gate the
     method is excluded rather than silently unscalable. *)
  if Workspace.is_sparse ws then
    invalid_arg
      "Wcb.bounds: LP-based worst-case bounds are a dense-only method; \
       not available on a sparse-mode workspace (use Wcb.trivial_upper \
       for the coefficient-1 row bounds)";
  let routing = Workspace.routing ws in
  Problem.check_dims routing ~loads;
  let p = Routing.num_pairs routing in
  let scale = Workspace.total_traffic ws ~loads in
  let scale = if scale > 0. then scale else 1. in
  let r = Workspace.dense ws in
  let t = Vec.scale (1. /. scale) loads in
  let state = Simplex.make r t in
  let selected =
    match pairs with
    | None -> List.init p (fun i -> i)
    | Some l ->
        List.iter
          (fun i ->
            if i < 0 || i >= p then invalid_arg "Wcb.bounds: pair out of range")
          l;
        l
  in
  let lower = Vec.zeros p in
  let upper = trivial_upper ws ~loads in
  let objective = Vec.zeros p in
  List.iter
    (fun pair ->
      objective.(pair) <- 1.;
      (match Simplex.maximize state objective with
      | Simplex.Optimal { objective = v; _ } ->
          upper.(pair) <- Stdlib.min upper.(pair) (v *. scale)
      | Simplex.Unbounded -> () (* keep the trivial bound *));
      (match Simplex.minimize state objective with
      | Simplex.Optimal { objective = v; _ } ->
          lower.(pair) <- Stdlib.max 0. (v *. scale)
      | Simplex.Unbounded -> assert false (* s >= 0 bounds it below *));
      objective.(pair) <- 0.)
    selected;
  { lower; upper }

let midpoint b = Vec.scale 0.5 (Vec.add b.lower b.upper)
let width b = Vec.sub b.upper b.lower

let contains b s =
  let eps = 1e-6 in
  let ok = ref true in
  Array.iteri
    (fun i x ->
      let tol = eps *. (1. +. abs_float x) in
      if x < b.lower.(i) -. tol || x > b.upper.(i) +. tol then ok := false)
    s;
  !ok
