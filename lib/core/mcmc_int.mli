(** Integer-valued network tomography (Hazelton 2015).

    Where {!Mcmc} samples real-valued demand vectors along null-space
    directions of a dense simplex tableau (and is dense-only for it),
    this sampler keeps the state an exact integer vector of packet
    rates in counting units and explores it with single-site
    Metropolis-Hastings moves: pick a pair, propose an integer step,
    accept by the product of a Poisson prior (rate = the gravity prior)
    and a Gaussian pseudo-likelihood on the link loads.  The link
    residual [Rx - y] is maintained incrementally through the sparse
    transpose — a move costs O(path length) — so the method runs
    unchanged on sparse-mode workspaces at 100+ PoPs.

    Chains split by {!Tmest_stats.Rng.of_pair}[ seed chain] own
    disjoint accumulators and combine in chain-index order, so results
    are bit-identical at every pool size, exactly like {!Mcmc}. *)

type result = {
  mean : Tmest_linalg.Vec.t;  (** posterior mean demand, bits/s *)
  accept_rate : float;  (** accepted / proposed moves, all chains *)
  sweeps : int;  (** per-chain sweeps (burn-in + thinned collection) *)
}

(** [estimate ws ~loads ~prior ()] samples the integer posterior.
    [prior] (bits/s) sets the per-pair Poisson rates after conversion
    to counting units of [unit_bps] (default 1 Mbit/s, so states are
    integer Mbit/s).  One sweep is [num_pairs] single-site proposals;
    each chain runs [burn_sweeps] (default 50) then collects
    [samples / chains] states [thin] sweeps apart.  [noise_frac]
    (default 0.02) sets the Gaussian slack as a fraction of the mean
    link load.  Deterministic in [(seed, chains)]; independent of the
    workspace pool size. *)
val estimate :
  ?burn_sweeps:int ->
  ?samples:int ->
  ?thin:int ->
  ?seed:int ->
  ?chains:int ->
  ?unit_bps:float ->
  ?noise_frac:float ->
  Workspace.t ->
  loads:Tmest_linalg.Vec.t ->
  prior:Tmest_linalg.Vec.t ->
  unit ->
  result
