(** Second/third-moment cumulant rate tomography (Lev-Ari et al.).

    Cumulants of independent sums are linear in the component
    cumulants with entry-wise powers of the mixing matrix as
    coefficients: for link loads [y = R x] with independent pair rates,
    [kappa_k(y) = R^(k) kappa_k(x)] where [R^(k)] squares (cubes) each
    routing entry.  Under the Poisson-style traffic assumption
    [kappa_1 = kappa_2 = kappa_3 = lambda], the per-link sample mean,
    variance and third central moment of a measurement window give
    three linear systems sharing one rate vector.  This module stacks
    them into a weighted non-negative least squares problem

    [min_{x >= 0} ||Rx - k1||^2 + w2 ||R2 x - k2||^2 + w3 ||R3 x - k3||^2]

    and solves it with FISTA, applying every operator matrix-free
    through {!Tmest_linalg.Op} — the entry-wise powered matrices share
    R's sparsity, so the method runs in sparse mode at 100+ PoPs
    without ever materializing a dense Gram.

    Where {!Vardi}'s method matches the full second-moment covariance
    (and inherits its noisy off-diagonal entries), the cumulant system
    uses only per-link moments — fewer equations, but each far better
    estimated from short windows, plus a third-moment system Vardi has
    no analogue of. *)

type result = {
  estimate : Tmest_linalg.Vec.t;  (** demand estimate, bits/s *)
  iterations : int;
  converged : bool;
}

(** [estimate ws ~load_samples ~w2 ~w3] fits the window (rows =
    snapshots, columns = links, bits/s).  [w2]/[w3] weight the second-
    and third-moment systems against the first ([w3] is ignored when
    the window has fewer than 3 rows — the third k-statistic needs
    them).  [unit_bps] sets the counting unit (default 1 Mbit/s).
    [x0] is a warm start in bits/s.  [precond] follows the workspace
    {!Workspace.resolve_precond} policy; the Jacobi diagonal is exact
    (column square norms of all three systems).  Deterministic and
    jobs-independent for a fixed policy. *)
val estimate :
  ?x0:Tmest_linalg.Vec.t ->
  ?stop:Tmest_opt.Stop.t ->
  ?unit_bps:float ->
  ?precond:Workspace.precond_kind ->
  Workspace.t ->
  load_samples:Tmest_linalg.Mat.t ->
  w2:float ->
  w3:float ->
  result
