module Vec = Tmest_linalg.Vec
module Csr = Tmest_linalg.Csr
module Proxgrad = Tmest_opt.Proxgrad
module Stop = Tmest_opt.Stop
module Routing = Tmest_net.Routing

type result = {
  estimate : Vec.t;
  iterations : int;
  converged : bool;
}

let solve ?x0 ?(stop = Stop.default) ?(precond = Workspace.Precond_none) ws
    ~loads ~prior ~sigma2 ~mask =
  let stop =
    Workspace.solver_stop ws stop ~label:"entropy/proxgrad" ~max_iter:4000
      ~tol:1e-10
  in
  let routing = Workspace.routing ws in
  Problem.check_dims routing ~loads;
  if sigma2 <= 0. then invalid_arg "Entropy.estimate: sigma2 must be positive";
  let p = Routing.num_pairs routing in
  if Array.length prior <> p then
    invalid_arg "Entropy.estimate: prior dimension mismatch";
  let r = routing.Routing.matrix in
  let scale = Workspace.total_traffic ws ~loads in
  let scale = if scale > 0. then scale else 1. in
  let t_n = Vec.scale (1. /. scale) loads in
  let prior_n =
    Vec.mapi (fun i x -> if mask.(i) then 0. else x /. scale) prior
  in
  let w = 1. /. sigma2 in
  (* grad = 2 Rᵀ(R s − t), staged through one links-dimension buffer so
     solver iterations allocate nothing. *)
  let l = Routing.num_links routing in
  let pool = Workspace.pool ws in
  let tmp_l = (Workspace.scratch ws ~name:"entropy.links" ~dim:l ~count:1).(0) in
  let gradient_into s ~dst =
    Csr.matvec_into ?pool r s ~dst:tmp_l;
    Vec.sub_into tmp_l t_n ~dst:tmp_l;
    Csr.tmatvec_into r tmp_l ~dst;
    Vec.scale_into 2. dst ~dst
  in
  (* Jacobi preconditioning in the curvature metric D = diag(2g),
     g = exact diag(RᵀR): the KL prox stays separable under a diagonal
     metric (coordinate i sees the effective step step·dinv_i), and the
     preconditioned curvature D^{-1/2}(2G)D^{-1/2} = g^{-1/2}G g^{-1/2}
     has its mass compressed toward 1, which is what collapses the
     iteration count on the path-length-skewed large networks.  Entries
     with g_i = 0 (OD pair crossing no link) keep unit scaling.  Block
     degrades to Jacobi here: the diagonal is already exact, and the
     prox separability requires a diagonal metric.

     [Precond_auto] resolves to {e no} preconditioning for this method:
     measured on the 100-PoP synthetic backbone, the Jacobi metric
     raises the iteration count (3016 -> 3947) — rescaling the KL prox
     slows the multiplicative adjustment of the heavy coordinates more
     than the normalized quadratic gains.  Jacobi stays available
     explicitly. *)
  let dinv =
    match precond with
    | Workspace.Precond_none | Workspace.Precond_auto -> None
    | Workspace.Precond_jacobi | Workspace.Precond_block ->
        Some
          (Workspace.precond_vec ws ~key:"normal.jacobi.dinv"
             ~compute:(fun () ->
               Vec.map
                 (fun g -> if g > 0. then 1. /. (2. *. g) else 1.)
                 (Workspace.gram_diag ws)))
  in
  let lipschitz =
    match dinv with
    | None -> 2. *. Workspace.op_norm ws
    | Some dinv ->
        (* ‖D^{-1/2} H D^{-1/2}‖ for H = 2G — shared with every other
           consumer of the Jacobi-preconditioned normal equations. *)
        Workspace.cached_lipschitz ws ~key:"normal.jacobi.norm"
          ~compute:(fun () ->
            let ds = Vec.map sqrt dinv in
            Tmest_opt.Fista.lipschitz_of_op ~dim:p (fun v ->
                let u = Vec.mul ds v in
                let h = Csr.tmatvec r (Csr.matvec r u) in
                Vec.mapi (fun i hi -> 2. *. hi *. ds.(i)) h))
  in
  let prox_into =
    match dinv with
    | None -> Proxgrad.kl_prox_into ~weight:w ~prior:prior_n
    | Some dinv -> Proxgrad.kl_prox_scaled_into ~weight:w ~prior:prior_n ~dinv
  in
  let start =
    match x0 with
    | None -> Vec.copy prior_n
    | Some v ->
        (* Warm start, rescaled to the solver's normalized units and
           forced onto the prior's support. *)
        Vec.mapi
          (fun i x -> if prior_n.(i) <= 0. then 0. else Stdlib.max 0. (x /. scale))
          v
  in
  let scratch =
    Workspace.scratch ws ~name:"proxgrad" ~dim:p
      ~count:Proxgrad.scratch_size
  in
  (* Only evaluated on traced runs, to fill the objective column of
     per-iteration records; allocates freely. *)
  let objective s =
    let resid = Vec.sub (Csr.matvec r s) t_n in
    Vec.dot resid resid
    +. (w *. Proxgrad.kl_divergence s prior_n)
  in
  let res =
    Proxgrad.solve_into ~x0:start ~stop ~scratch ~objective ?dinv ~dim:p
      ~gradient_into ~prox_into ~lipschitz ()
  in
  if not res.Proxgrad.converged then
    Logs.warn ~src:Problem.log_src (fun m ->
        m "Entropy.estimate: no convergence after %d iterations (sigma2 = %g)"
          res.Proxgrad.iterations sigma2);
  {
    estimate = Vec.scale scale res.Proxgrad.x;
    iterations = res.Proxgrad.iterations;
    converged = res.Proxgrad.converged;
  }

let estimate ?x0 ?stop ?precond ws ~loads ~prior ~sigma2 =
  let mask = Array.make (Workspace.num_pairs ws) false in
  solve ?x0 ?stop ?precond ws ~loads ~prior ~sigma2 ~mask

let estimate_fixed ?x0 ?stop ?precond ws ~loads ~prior ~sigma2 ~fixed =
  let p = Workspace.num_pairs ws in
  let mask = Array.make p false in
  let s_fixed = Vec.zeros p in
  List.iter
    (fun (pair, value) ->
      if pair < 0 || pair >= p then
        invalid_arg "Entropy.estimate_fixed: pair index out of range";
      if value < 0. then
        invalid_arg "Entropy.estimate_fixed: negative measured demand";
      mask.(pair) <- true;
      s_fixed.(pair) <- value)
    fixed;
  (* Move the measured demands' contribution to the right-hand side. *)
  let loads' =
    Vec.sub loads (Routing.link_loads (Workspace.routing ws) s_fixed)
  in
  let res = solve ?x0 ?stop ?precond ws ~loads:loads' ~prior ~sigma2 ~mask in
  let estimate =
    Vec.mapi
      (fun i v -> if mask.(i) then s_fixed.(i) else v)
      res.estimate
  in
  { res with estimate }
