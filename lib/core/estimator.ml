module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Stop = Tmest_opt.Stop
module Obs = Tmest_obs.Obs

type prior_kind = Workspace.prior_kind =
  | Prior_gravity
  | Prior_wcb
  | Prior_uniform

type t =
  | Gravity
  | Kruithof of { prior : prior_kind }
  | Entropy of { sigma2 : float; prior : prior_kind }
  | Bayes of { sigma2 : float; prior : prior_kind }
  | Wcb_midpoint
  | Fanout of { window : int }
  | Vardi of { sigma_inv2 : float; window : int }
  | Cao of { phi : float; c : float; sigma_inv2 : float; window : int }
  | Tomogravity_iter of { prior : prior_kind }
  | Cumulant of { w2 : float; w3 : float; window : int }
  | Mcmc_int of { samples : int; thin : int; chains : int }

let name = function
  | Gravity -> "gravity"
  | Kruithof _ -> "kruithof"
  | Entropy _ -> "entropy"
  | Bayes _ -> "bayes"
  | Wcb_midpoint -> "wcb"
  | Fanout _ -> "fanout"
  | Vardi _ -> "vardi"
  | Cao _ -> "cao"
  | Tomogravity_iter _ -> "tomogravity_iter"
  | Cumulant _ -> "cumulant"
  | Mcmc_int _ -> "mcmc_int"

let of_name = function
  | "gravity" -> Gravity
  | "kruithof" -> Kruithof { prior = Prior_gravity }
  | "entropy" -> Entropy { sigma2 = 1000.; prior = Prior_gravity }
  | "bayes" -> Bayes { sigma2 = 1000.; prior = Prior_gravity }
  | "wcb" -> Wcb_midpoint
  | "fanout" -> Fanout { window = 10 }
  | "vardi" -> Vardi { sigma_inv2 = 0.01; window = 50 }
  | "cao" -> Cao { phi = 1.; c = 1.5; sigma_inv2 = 0.01; window = 50 }
  | "tomogravity_iter" -> Tomogravity_iter { prior = Prior_gravity }
  | "cumulant" -> Cumulant { w2 = 0.1; w3 = 0.01; window = 50 }
  | "mcmc_int" -> Mcmc_int { samples = 200; thin = 2; chains = 4 }
  | s -> invalid_arg (Printf.sprintf "Estimator.of_name: unknown method %S" s)

let all_names () =
  [
    "gravity"; "kruithof"; "entropy"; "bayes"; "wcb"; "fanout"; "vardi";
    "cao"; "tomogravity_iter"; "cumulant"; "mcmc_int";
  ]

let uses_time_series = function
  | Gravity | Kruithof _ | Entropy _ | Bayes _ | Wcb_midpoint
  | Tomogravity_iter _ | Mcmc_int _ -> false
  | Fanout _ | Vardi _ | Cao _ | Cumulant _ -> true

(* The one capability split: LP-based worst-case bounds walk a dense
   simplex tableau per demand and are a documented dense-only
   exclusion; every other method (including all three related-work
   additions) has a matrix-free path and runs on sparse-mode
   workspaces.  Drivers (CLI listings, experiment sweeps, bench rows,
   the daemon) must consult this predicate rather than hard-coding
   method names. *)
let supports_sparse = function Wcb_midpoint -> false | _ -> true

module Options = struct
  type t = {
    warm : bool;
    warm_tag : string option;
    x0 : Vec.t option;
    sink : Obs.sink;
    degrade : Degrade.policy option;
    precond : Workspace.precond_kind;
  }

  let default =
    {
      warm = false;
      warm_tag = None;
      x0 = None;
      sink = Obs.null;
      degrade = None;
      precond = Workspace.Precond_auto;
    }

  let make ?(warm = false) ?warm_tag ?x0 ?(sink = Obs.null) ?degrade
      ?(precond = Workspace.Precond_auto) () =
    { warm; warm_tag; x0; sink; degrade; precond }

  let with_warm warm t = { t with warm }
  let with_warm_tag tag t = { t with warm_tag = Some tag }
  let with_x0 x0 t = { t with x0 = Some x0 }
  let with_sink sink t = { t with sink }
  let with_degrade policy t = { t with degrade = Some policy }
  let with_precond precond t = { t with precond }
end

let prior kind ws ~loads =
  Workspace.cached_prior ws ~kind ~loads ~compute:(fun () ->
      match kind with
      | Prior_gravity -> Gravity.simple (Workspace.routing ws) ~loads
      | Prior_wcb -> Wcb.midpoint (Wcb.bounds ws ~loads)
      | Prior_uniform ->
          let p = Workspace.num_pairs ws in
          let total = Workspace.total_traffic ws ~loads in
          Vec.create p (total /. float_of_int p))

let last_window samples window =
  let k = Mat.rows samples in
  let window = Stdlib.max 2 (Stdlib.min window k) in
  Mat.submatrix samples ~row:(k - window) ~col:0 ~rows:window
    ~cols:(Mat.cols samples)

let prior_tag = function
  | Prior_gravity -> "gravity"
  | Prior_wcb -> "wcb"
  | Prior_uniform -> "uniform"

(* Warm-start cache keys: method plus every parameter that changes the
   optimization problem (the load vector deliberately excluded — the
   point is to start the next window from this window's solution). *)
let warm_key = function
  | Gravity | Kruithof _ | Wcb_midpoint -> None
  | Entropy { sigma2; prior } ->
      Some (Printf.sprintf "entropy:sigma2=%h:prior=%s" sigma2 (prior_tag prior))
  | Bayes { sigma2; prior } ->
      Some (Printf.sprintf "bayes:sigma2=%h:prior=%s" sigma2 (prior_tag prior))
  | Fanout { window } -> Some (Printf.sprintf "fanout:window=%d" window)
  | Vardi { sigma_inv2; window } ->
      Some (Printf.sprintf "vardi:sigma_inv2=%h:window=%d" sigma_inv2 window)
  | Cao { phi; c; sigma_inv2; window } ->
      Some
        (Printf.sprintf "cao:phi=%h:c=%h:sigma_inv2=%h:window=%d" phi c
           sigma_inv2 window)
  (* Tomogravity_iter always iterates from the prior (a warm start
     would change which point the alternating projection converges to)
     and Mcmc_int restarts its chains from the prior by construction —
     both are deliberately warm-start-free, so warm solves stay
     bit-identical to cold ones. *)
  | Tomogravity_iter _ | Mcmc_int _ -> None
  | Cumulant { w2; w3; window } ->
      Some (Printf.sprintf "cumulant:w2=%h:w3=%h:window=%d" w2 w3 window)

let solve ?(opts = Options.default) t ws ~loads ~load_samples =
  let t0 = Sys.time () in
  (* Allocation accounting for the peak-words counter: the delta of the
     calling domain's cumulative allocation (minor + major, in words)
     over the whole solve.  At scale this is the witness that no code
     path materialized a dense n_od x n_od matrix. *)
  let w0 = Gc.allocated_bytes () in
  let sink =
    if Obs.is_null opts.Options.sink then Workspace.sink ws
    else opts.Options.sink
  in
  (* Methods fall back to the workspace sink on their own; building the
     [stop] explicitly here matters only when the caller routed a
     different sink through [opts]. *)
  let stop = Stop.make ~sink () in
  (* Degraded mode: repair the measurements before any method sees
     them.  Snapshot-only methods skip the window so a clean snapshot
     stays on the fast path even when the window has gaps. *)
  let loads, load_samples =
    match opts.Options.degrade with
    | None -> (loads, load_samples)
    | Some policy ->
        (* The WCB linear programs need an exactly consistent system;
           everything else prefers the minimal row-local repair. *)
        let policy =
          match t with
          | Wcb_midpoint -> { policy with Degrade.feasible = true }
          | _ -> policy
        in
        if uses_time_series t then begin
          let r = Degrade.repair ~sink policy ws ~loads ~samples:load_samples () in
          ( r.Degrade.loads,
            match r.Degrade.samples with
            | Some m -> m
            | None -> load_samples )
        end
        else
          let r = Degrade.repair ~sink policy ws ~loads () in
          (r.Degrade.loads, load_samples)
  in
  let key = if opts.Options.warm then warm_key t else None in
  (* A tag isolates this caller's warm-start chain from others sharing
     the workspace — parallel window scans tag by chunk so each chunk
     chains through its own cache entry. *)
  let key =
    match (key, opts.Options.warm_tag) with
    | Some k, Some tag -> Some (k ^ "#" ^ tag)
    | _ -> key
  in
  let x0 =
    match opts.Options.x0 with
    | Some _ as explicit -> explicit
    | None -> (
        match key with
        | Some key ->
            Workspace.warm_start ws ~key ~dim:(Workspace.num_pairs ws)
        | None -> None)
  in
  let store v =
    match key with
    | Some key -> Workspace.store_warm_start ws ~key v
    | None -> ()
  in
  let precond = opts.Options.precond in
  let note iters = Workspace.note_iterations ws ~name:(name t) ~iterations:iters in
  let run () =
    match t with
    | Gravity -> Gravity.simple (Workspace.routing ws) ~loads
    | Kruithof { prior = kind } ->
        let prior = prior kind ws ~loads in
        Kruithof.adjust ~stop ws ~loads ~prior
    | Entropy { sigma2; prior = kind } ->
        let prior = prior kind ws ~loads in
        let res = Entropy.estimate ?x0 ~stop ~precond ws ~loads ~prior ~sigma2 in
        note res.Entropy.iterations;
        store res.Entropy.estimate;
        res.Entropy.estimate
    | Bayes { sigma2; prior = kind } ->
        let prior = prior kind ws ~loads in
        let res = Bayes.estimate ?x0 ~stop ~precond ws ~loads ~prior ~sigma2 in
        note res.Bayes.iterations;
        store res.Bayes.estimate;
        res.Bayes.estimate
    | Wcb_midpoint -> Wcb.midpoint (Wcb.bounds ws ~loads)
    | Fanout { window } ->
        let samples = last_window load_samples window in
        (* The natural warm-start state is the fanout vector, not the
           demand estimate it expands to. *)
        let res = Fanout.estimate ?x0 ~stop ~precond ws ~load_samples:samples in
        note res.Fanout.iterations;
        store res.Fanout.fanouts;
        res.Fanout.estimate
    | Vardi { sigma_inv2; window } ->
        let samples = last_window load_samples window in
        let res =
          Vardi.estimate ?x0 ~stop ~precond ws ~load_samples:samples ~sigma_inv2
        in
        note res.Vardi.iterations;
        store res.Vardi.estimate;
        res.Vardi.estimate
    | Cao { phi; c; sigma_inv2; window } ->
        let samples = last_window load_samples window in
        let res =
          Cao.estimate ?x0 ~stop ~precond ws ~load_samples:samples ~phi ~c
            ~sigma_inv2
        in
        note res.Cao.iterations;
        store res.Cao.estimate;
        res.Cao.estimate
    | Tomogravity_iter { prior = kind } ->
        let prior = prior kind ws ~loads in
        let res = Tomogravity.estimate ~stop ws ~loads ~prior in
        note res.Tomogravity.iterations;
        res.Tomogravity.estimate
    | Cumulant { w2; w3; window } ->
        let samples = last_window load_samples window in
        let res =
          Cumulant.estimate ?x0 ~stop ~precond ws ~load_samples:samples ~w2 ~w3
        in
        note res.Cumulant.iterations;
        store res.Cumulant.estimate;
        res.Cumulant.estimate
    | Mcmc_int { samples; thin; chains } ->
        let prior = prior Prior_gravity ws ~loads in
        let res = Mcmc_int.estimate ~samples ~thin ~chains ws ~loads ~prior () in
        note res.Mcmc_int.sweeps;
        res.Mcmc_int.mean
  in
  let estimate =
    if sink.Obs.enabled then
      Obs.span sink
        ("solve/" ^ name t)
        ~args:
          [
            ("method", Obs.String (name t));
            ("warm", Obs.Bool opts.Options.warm);
          ]
        run
    else run ()
  in
  Workspace.record_solve ws
    ~seconds:(Sys.time () -. t0)
    ~words:((Gc.allocated_bytes () -. w0) /. 8.);
  estimate
