module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Routing = Tmest_net.Routing

type prior_kind = Workspace.prior_kind =
  | Prior_gravity
  | Prior_wcb
  | Prior_uniform

type t =
  | Gravity
  | Kruithof of { prior : prior_kind }
  | Entropy of { sigma2 : float; prior : prior_kind }
  | Bayes of { sigma2 : float; prior : prior_kind }
  | Wcb_midpoint
  | Fanout of { window : int }
  | Vardi of { sigma_inv2 : float; window : int }
  | Cao of { phi : float; c : float; sigma_inv2 : float; window : int }

let name = function
  | Gravity -> "gravity"
  | Kruithof _ -> "kruithof"
  | Entropy _ -> "entropy"
  | Bayes _ -> "bayes"
  | Wcb_midpoint -> "wcb"
  | Fanout _ -> "fanout"
  | Vardi _ -> "vardi"
  | Cao _ -> "cao"

let of_name = function
  | "gravity" -> Gravity
  | "kruithof" -> Kruithof { prior = Prior_gravity }
  | "entropy" -> Entropy { sigma2 = 1000.; prior = Prior_gravity }
  | "bayes" -> Bayes { sigma2 = 1000.; prior = Prior_gravity }
  | "wcb" -> Wcb_midpoint
  | "fanout" -> Fanout { window = 10 }
  | "vardi" -> Vardi { sigma_inv2 = 0.01; window = 50 }
  | "cao" -> Cao { phi = 1.; c = 1.5; sigma_inv2 = 0.01; window = 50 }
  | s -> invalid_arg (Printf.sprintf "Estimator.of_name: unknown method %S" s)

let all_names () =
  [ "gravity"; "kruithof"; "entropy"; "bayes"; "wcb"; "fanout"; "vardi"; "cao" ]

let uses_time_series = function
  | Gravity | Kruithof _ | Entropy _ | Bayes _ | Wcb_midpoint -> false
  | Fanout _ | Vardi _ | Cao _ -> true

let build_prior_ws kind ws ~loads =
  Workspace.cached_prior ws ~kind ~loads ~compute:(fun () ->
      match kind with
      | Prior_gravity -> Gravity.simple (Workspace.routing ws) ~loads
      | Prior_wcb -> Wcb.midpoint (Wcb.bounds ws ~loads)
      | Prior_uniform ->
          let p = Workspace.num_pairs ws in
          let total = Workspace.total_traffic ws ~loads in
          Vec.create p (total /. float_of_int p))

let build_prior kind routing ~loads =
  build_prior_ws kind (Workspace.create routing) ~loads

let last_window samples window =
  let k = Mat.rows samples in
  let window = Stdlib.max 2 (Stdlib.min window k) in
  Mat.submatrix samples ~row:(k - window) ~col:0 ~rows:window
    ~cols:(Mat.cols samples)

let run_ws t ws ~loads ~load_samples =
  let t0 = Sys.time () in
  let estimate =
    match t with
    | Gravity -> Gravity.simple (Workspace.routing ws) ~loads
    | Kruithof { prior } ->
        let prior = build_prior_ws prior ws ~loads in
        Kruithof.adjust ws ~loads ~prior
    | Entropy { sigma2; prior } ->
        let prior = build_prior_ws prior ws ~loads in
        (Entropy.estimate ws ~loads ~prior ~sigma2).Entropy.estimate
    | Bayes { sigma2; prior } ->
        let prior = build_prior_ws prior ws ~loads in
        (Bayes.estimate ws ~loads ~prior ~sigma2).Bayes.estimate
    | Wcb_midpoint -> Wcb.midpoint (Wcb.bounds ws ~loads)
    | Fanout { window } ->
        let samples = last_window load_samples window in
        (Fanout.estimate ws ~load_samples:samples).Fanout.estimate
    | Vardi { sigma_inv2; window } ->
        let samples = last_window load_samples window in
        (Vardi.estimate ws ~load_samples:samples ~sigma_inv2).Vardi.estimate
    | Cao { phi; c; sigma_inv2; window } ->
        let samples = last_window load_samples window in
        (Cao.estimate ws ~load_samples:samples ~phi ~c ~sigma_inv2).Cao.estimate
  in
  Workspace.record_solve ws (Sys.time () -. t0);
  estimate

let run t routing ~loads ~load_samples =
  run_ws t (Workspace.create routing) ~loads ~load_samples
