module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Csr = Tmest_linalg.Csr
module Chol = Tmest_linalg.Chol
module Eigen = Tmest_linalg.Eigen
module Cg = Tmest_opt.Cg
module Stop = Tmest_opt.Stop
module Obs = Tmest_obs.Obs

type health = {
  links : int;
  missing : int;
  imputed : int;
  projected : int;
  sample_cells : int;
  sample_missing : int;
  balance_gap : float;
  residual_before : float;
  residual_after : float;
  rank_deficiency : int option;
  clean : bool;
}

type policy = {
  residual_tol : float;
  project_inconsistent : bool;
  repair_samples : bool;
  feasible : bool;
  report_rank : bool;
  on_health : (health -> unit) option;
}

let default =
  {
    residual_tol = 1e-3;
    project_inconsistent = true;
    repair_samples = true;
    feasible = false;
    report_rank = false;
    on_health = None;
  }

let with_on_health f policy = { policy with on_health = Some f }

type repaired = {
  loads : Vec.t;
  samples : Mat.t option;
  health : health;
}

let usable x = Float.is_finite x && x >= 0.

(* Cholesky of the Gram matrix restricted to the observed rows:
   RᵀDR = RᵀR − Σ_{i masked} r_i r_iᵀ, a cheap rank-one downdate per
   masked row against the workspace's cached product.  The cached
   factor itself serves the common no-mask case. *)
let observed_chol ws = function
  | [] -> Workspace.gram_chol ws
  | masked ->
      let r = (Workspace.routing ws).Tmest_net.Routing.matrix in
      let g = Mat.copy (Workspace.gram ws) in
      List.iter
        (fun i ->
          let entries = Csr.row_nonzeros r i in
          List.iter
            (fun (j, vj) ->
              List.iter
                (fun (k, vk) ->
                  Mat.unsafe_set g j k (Mat.unsafe_get g j k -. (vj *. vk)))
                entries)
            entries)
        masked;
      Chol.factor_regularized g

(* Least-squares consensus fit of the observed rows.  Dense mode solves
   against the (downdated) Cholesky factor; sparse mode runs CG on the
   matrix-free masked normal operator x ↦ RᵀDRx + ridge·x (D zeroes the
   masked link rows), with the same ridge scaling rule as
   [Chol.factor_regularized] read off the exact Gram diagonal
   Σ_l R²_li — the p x p Gram itself is never formed. *)
let observed_fit ws masked ~rhs =
  if not (Workspace.is_sparse ws) then Chol.solve (observed_chol ws masked) rhs
  else begin
    let r = (Workspace.routing ws).Tmest_net.Routing.matrix in
    let l = Workspace.num_links ws in
    let p = Workspace.num_pairs ws in
    let rt = Workspace.transpose ws in
    let max_diag = ref 0. in
    for pair = 0 to p - 1 do
      let acc = ref 0. in
      Csr.iter_row rt pair (fun _ v -> acc := !acc +. (v *. v));
      max_diag := Stdlib.max !max_diag !acc
    done;
    let ridge = 1e-12 *. Stdlib.max !max_diag 1. in
    let y = (Workspace.scratch ws ~name:"degrade.cg.links" ~dim:l ~count:1).(0)
    in
    let pool = Workspace.pool ws in
    let apply_into x ~dst =
      Csr.matvec_into ?pool r x ~dst:y;
      List.iter (fun i -> y.(i) <- 0.) masked;
      Csr.tmatvec_into r y ~dst;
      Vec.axpy_into ridge x dst ~dst
    in
    let stop =
      Workspace.solver_stop ws Stop.default ~label:"degrade/cg"
        ~max_iter:(2 * p) ~tol:1e-12
    in
    let scratch =
      Workspace.scratch ws ~name:"degrade.cg" ~dim:p ~count:Cg.scratch_size
    in
    (Cg.solve_into ~stop ~scratch ~apply_into ~b:rhs ()).Cg.x
  end

let rank_of_eigen d =
  let top = Stdlib.max d.Eigen.values.(0) 0. in
  let threshold = 1e-9 *. Stdlib.max top 1e-30 in
  Array.fold_left
    (fun acc v -> if v > threshold then acc + 1 else acc)
    0 d.Eigen.values

(* Relative misfit of the observed rows against the fitted loads. *)
let observed_residual ~observed t y =
  let num = ref 0. and den = ref 0. in
  Array.iteri
    (fun i ti ->
      if observed.(i) then begin
        let d = ti -. y.(i) in
        num := !num +. (d *. d);
        den := !den +. (ti *. ti)
      end)
    t;
  if !den = 0. then sqrt !num else sqrt (!num /. !den)

let repair_snapshot policy ws ~loads =
  let l = Workspace.num_links ws in
  if Array.length loads <> l then
    invalid_arg "Degrade.repair: load vector does not match the routing matrix";
  let missing = ref [] and nmiss = ref 0 in
  for i = l - 1 downto 0 do
    if not (usable loads.(i)) then begin
      missing := i :: !missing;
      incr nmiss
    end
  done;
  let observed = Array.map usable loads in
  let zeroed =
    if !nmiss = 0 then loads
    else Array.mapi (fun i x -> if observed.(i) then x else 0.) loads
  in
  (* Total-ingress vs total-egress mismatch: the cheapest witness that
     the loads left the range of R (their difference is a fixed left
     null vector of every routing matrix). *)
  let sum_rows rows =
    Array.fold_left (fun acc i -> acc +. zeroed.(i)) 0. rows
  in
  let t_in = sum_rows (Workspace.ingress_rows ws) in
  let t_out = sum_rows (Workspace.egress_rows ws) in
  let balance_gap =
    abs_float (t_in -. t_out) /. Stdlib.max (Stdlib.max t_in t_out) 1.
  in
  (* Least-squares consensus of the observed rows. *)
  let r = (Workspace.routing ws).Tmest_net.Routing.matrix in
  let rhs = Csr.tmatvec r zeroed in
  let fit = observed_fit ws !missing ~rhs in
  let y = Csr.matvec r fit in
  let residual_before = observed_residual ~observed loads y in
  let scale_floor = 1e-6 *. Stdlib.max (Vec.norm_inf zeroed) 1. in
  let violated = ref [] and nviol = ref 0 in
  if policy.project_inconsistent then
    for i = l - 1 downto 0 do
      if observed.(i) then begin
        let scale =
          Stdlib.max (Stdlib.max (abs_float loads.(i)) (abs_float y.(i)))
            scale_floor
        in
        if abs_float (loads.(i) -. y.(i)) /. scale > policy.residual_tol
        then begin
          violated := i :: !violated;
          incr nviol
        end
      end
    done;
  let clean = !nmiss = 0 && !nviol = 0 in
  let repaired_loads =
    if clean then loads
    else if policy.feasible then
      (* Rewrite every row as [R s+]: exactly consistent with the
         non-negative demand vector [s+], so LP-based methods (the WCB
         bounds) stay feasible on repaired data. *)
      Csr.matvec r (Array.map (fun x -> Stdlib.max 0. x) fit)
    else begin
      let out = Array.copy zeroed in
      let patch i = out.(i) <- Stdlib.max 0. y.(i) in
      List.iter patch !missing;
      List.iter patch !violated;
      out
    end
  in
  let residual_after =
    if clean then residual_before
    else observed_residual ~observed repaired_loads y
  in
  let rank_deficiency =
    (* Sparse mode has no eigendecomposition to read the rank from;
       callers get [None] rather than a guess. *)
    if policy.report_rank && not (Workspace.is_sparse ws) then
      Some (Workspace.num_pairs ws - rank_of_eigen (Workspace.gram_eigen ws))
    else None
  in
  ( repaired_loads,
    {
      links = l;
      missing = !nmiss;
      imputed = !nmiss;
      projected = !nviol;
      sample_cells = 0;
      sample_missing = 0;
      balance_gap;
      residual_before;
      residual_after;
      rank_deficiency;
      clean;
    } )

(* Window rows are repaired per link by carrying the last finite value
   forward (backward for a leading gap): adjacent 5-minute samples are
   highly correlated, so temporal fill preserves the second moments the
   time-series methods estimate far better than zeros would.  Rows are
   not re-projected — the full least-squares treatment is reserved for
   the snapshot the constraints are built from. *)
let repair_window m =
  let rows = Mat.rows m and cols = Mat.cols m in
  let filled = ref 0 in
  let any_missing = ref false in
  (for r = 0 to rows - 1 do
     for c = 0 to cols - 1 do
       if not (usable (Mat.get m r c)) then any_missing := true
     done
   done);
  if not !any_missing then (m, 0, rows * cols)
  else begin
    let out = Mat.init rows cols (fun r c -> Mat.get m r c) in
    for c = 0 to cols - 1 do
      (* Forward pass: carry the last finite value. *)
      let last = ref Float.nan in
      for r = 0 to rows - 1 do
        let x = Mat.get out r c in
        if usable x then last := x
        else if usable !last then begin
          Mat.set out r c !last;
          incr filled
        end
      done;
      (* Backward pass: leading gaps take the first finite value. *)
      let next = ref Float.nan in
      for r = rows - 1 downto 0 do
        let x = Mat.get out r c in
        if usable x then next := x
        else begin
          (if usable !next then Mat.set out r c !next
           else (* the whole column is lost *) Mat.set out r c 0.);
          incr filled
        end
      done
    done;
    (out, !filled, rows * cols)
  end

let repair ?(sink = Obs.null) policy ws ~loads ?samples () =
  let run () =
    let loads', h = repair_snapshot policy ws ~loads in
    let samples', h =
      match samples with
      | None -> (None, h)
      | Some m when not policy.repair_samples ->
          (Some m, { h with sample_cells = Mat.rows m * Mat.cols m })
      | Some m ->
          let m', filled, cells = repair_window m in
          ( Some m',
            {
              h with
              sample_cells = cells;
              sample_missing = filled;
              clean = h.clean && filled = 0;
            } )
    in
    (match policy.on_health with Some f -> f h | None -> ());
    if sink.Obs.enabled then begin
      Obs.counter sink "degrade.missing" (float_of_int h.missing);
      Obs.counter sink "degrade.projected" (float_of_int h.projected);
      Obs.counter sink "degrade.sample_missing"
        (float_of_int h.sample_missing);
      Obs.counter sink "degrade.balance_gap" h.balance_gap;
      Obs.counter sink "degrade.residual_before" h.residual_before;
      Obs.counter sink "degrade.residual_after" h.residual_after
    end;
    { loads = loads'; samples = samples'; health = h }
  in
  if sink.Obs.enabled then Obs.span sink "degrade/repair" run else run ()

let pp_health ppf h =
  Format.fprintf ppf
    "links=%d missing=%d projected=%d sample_fill=%d/%d balance=%.2e \
     residual=%.2e->%.2e%s%s"
    h.links h.missing h.projected h.sample_missing h.sample_cells
    h.balance_gap h.residual_before h.residual_after
    (match h.rank_deficiency with
    | Some d -> Format.sprintf " rank_deficiency=%d" d
    | None -> "")
    (if h.clean then " (clean)" else "")
