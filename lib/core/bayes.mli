(** Bayesian / Tikhonov-regularized estimation (Section 4.2.3, eq. 7).

    With a Gaussian prior [s ~ N(prior, σ² I)] and unit-variance load
    noise, the MAP estimate solves

    {v  min ‖R s − t‖² + σ⁻² ‖s − prior‖²   subject to   s >= 0  v}

    The regularization parameter [σ²] trades prior belief against the
    link measurements: small [σ²] pins the estimate to the prior, large
    [σ²] uses the prior only to pick among load-consistent solutions.
    The problem is solved in total-traffic-normalized units, so [σ²] is
    dimensionless and comparable across networks (the x-axis of the
    paper's Figures 13/15). *)

type result = {
  estimate : Tmest_linalg.Vec.t;
  iterations : int;
  converged : bool;
}

(** [estimate ?x0 ?stop ws ~loads ~prior ~sigma2] solves the
    regularized problem with an accelerated projected-gradient method.
    [x0] is an optional warm-start estimate in bits/s (e.g. the previous
    measurement window's solution); default is the prior itself.
    [precond] (default {!Workspace.Precond_none}) applies diagonal
    preconditioning in the exact curvature metric
    [diag(2·diag(RᵀR) + 2/σ²)]; same fixed point, fewer iterations.
    @raise Invalid_argument on dimension mismatch or [sigma2 <= 0]. *)
val estimate :
  ?x0:Tmest_linalg.Vec.t ->
  ?stop:Tmest_opt.Stop.t ->
  ?precond:Workspace.precond_kind ->
  Workspace.t ->
  loads:Tmest_linalg.Vec.t ->
  prior:Tmest_linalg.Vec.t ->
  sigma2:float ->
  result
