(** Iterative Bayesian prior refinement (Vaton & Gravey, ITC 2003 — the
    paper's reference [11]).

    The estimated traffic matrix from one set of link-load measurements
    is used as the prior for the next estimation round on fresh
    measurements, and the process repeats until the estimate stops
    moving.  On slowly varying traffic this lets a cheap initial prior
    (gravity) bootstrap itself into a far better one. *)

type trace = {
  estimates : Tmest_linalg.Vec.t array;  (** estimate after each round *)
  deltas : float array;
      (** relative L1 change between consecutive rounds *)
}

(** [refine ?rounds ?tol ?sigma2 ws ~load_series ~prior] runs the
    refinement over the rows of [load_series] (consecutive snapshots,
    cycled if [rounds] exceeds the row count).  Each round solves the
    Bayesian problem {!Bayes.estimate} with the previous round's output
    as the prior.  Stops early when the relative L1 change drops below
    [tol] (default 1e-3).  Returns the full trace; the final estimate is
    [estimates.(Array.length estimates - 1)].
    @raise Invalid_argument on an empty series. *)
val refine :
  ?rounds:int ->
  ?tol:float ->
  ?sigma2:float ->
  ?stop:Tmest_opt.Stop.t ->
  Workspace.t ->
  load_series:Tmest_linalg.Mat.t ->
  prior:Tmest_linalg.Vec.t ->
  trace

(** [final t] is the last estimate of a trace. *)
val final : trace -> Tmest_linalg.Vec.t
