module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Csr = Tmest_linalg.Csr
module Eigen = Tmest_linalg.Eigen
module Fista = Tmest_opt.Fista
module Stop = Tmest_opt.Stop

type result = {
  estimate : Vec.t;
  iterations : int;
  converged : bool;
  stacked_rank_gain : int;
}

let rank_of_eigen d =
  let top = Stdlib.max d.Eigen.values.(0) 0. in
  let threshold = 1e-9 *. Stdlib.max top 1e-30 in
  Array.fold_left (fun acc v -> if v > threshold then acc + 1 else acc) 0
    d.Eigen.values

let estimate ?(stop = Stop.default) configs =
  (match configs with [] -> invalid_arg "Routechange.estimate: no configs" | _ -> ());
  let first_ws = fst (List.hd configs) in
  let stop =
    Workspace.solver_stop first_ws stop ~label:"routechange/fista"
      ~max_iter:6000 ~tol:1e-10
  in
  let p = Workspace.num_pairs first_ws in
  List.iter
    (fun (ws, loads) ->
      if Workspace.num_pairs ws <> p then
        invalid_arg "Routechange.estimate: OD dimension mismatch";
      Problem.check_dims (Workspace.routing ws) ~loads)
    configs;
  (* Normalize every snapshot by its own total so the stacking weights
     configurations equally. *)
  let scaled =
    List.map
      (fun (ws, loads) ->
        let s = Workspace.total_traffic ws ~loads in
        let s = if s > 0. then s else 1. in
        (ws, Vec.scale (1. /. s) loads, s))
      configs
  in
  let matrix_of ws = (Workspace.routing ws).Tmest_net.Routing.matrix in
  let mean_scale =
    List.fold_left (fun acc (_, _, s) -> acc +. s) 0. scaled
    /. float_of_int (List.length scaled)
  in
  let gradient x =
    let g = Vec.zeros p in
    List.iter
      (fun (ws, t, _) ->
        let r = matrix_of ws in
        Vec.axpy_into 2. (Csr.tmatvec r (Vec.sub (Csr.matvec r x) t)) g ~dst:g)
      scaled;
    g
  in
  let lipschitz =
    2.
    *. Workspace.lipschitz_of_op first_ws ~dim:p (fun v ->
           let acc = Vec.zeros p in
           List.iter
             (fun (ws, _, _) ->
               let r = matrix_of ws in
               Vec.axpy_into 1. (Csr.tmatvec r (Csr.matvec r v)) acc ~dst:acc)
             scaled;
           acc)
  in
  let res = Fista.solve ~stop ~dim:p ~gradient ~lipschitz () in
  let stacked_rank_gain =
    if p > 300 then 0
    else begin
      let first = rank_of_eigen (Workspace.gram_eigen first_ws) in
      let stacked = Mat.zeros p p in
      List.iter
        (fun (ws, _, _) ->
          let g = Workspace.gram ws in
          for i = 0 to p - 1 do
            for j = 0 to p - 1 do
              Mat.unsafe_set stacked i j
                (Mat.unsafe_get stacked i j +. Mat.unsafe_get g i j)
            done
          done)
        scaled;
      rank_of_eigen (Eigen.symmetric stacked) - first
    end
  in
  {
    estimate = Vec.scale mean_scale res.Fista.x;
    iterations = res.Fista.iterations;
    converged = res.Fista.converged;
    stacked_rank_gain;
  }
