(** Entropy-regularized ("tomogravity") estimation
    (Section 4.2.1, eq. 6; Zhang et al. 2003).

    {v  min ‖R s − t‖² + σ⁻² D(s ‖ prior)   subject to   s >= 0  v}

    where [D] is the generalized Kullback–Leibler divergence.  Solved by
    accelerated proximal gradient; the KL proximal step has a closed form
    through the Lambert-W function, so no inner iteration is needed.
    Like {!Bayes}, the solve runs in total-traffic-normalized units and
    [σ²] is the dimensionless regularization parameter. *)

type result = {
  estimate : Tmest_linalg.Vec.t;
  iterations : int;
  converged : bool;
}

(** [estimate ?stop ws ~loads ~prior ~sigma2] solves the problem.
    Prior entries that are zero stay zero in the estimate (KL structural
    zeros); pass a floor-adjusted prior if that is not desired.  [stop]
    ({!Tmest_opt.Stop.t}) carries solver limits (defaults 4000
    iterations, tolerance 1e-10) and the trace sink; an unset sink falls
    back to the workspace's.

    [precond] (default {!Workspace.Precond_none}) selects diagonal
    preconditioning in the exact curvature metric [diag(2·diag(RᵀR))];
    the KL prox is applied in the same metric so the fixed point is
    unchanged, only the iteration count.  [Precond_block] degrades to
    Jacobi here (the prox needs a diagonal metric); [Precond_auto]
    resolves to none for this method (the diagonal metric measured
    slower on the KL geometry — request Jacobi explicitly to use it).
    @raise Invalid_argument on dimension mismatch or [sigma2 <= 0]. *)
val estimate :
  ?x0:Tmest_linalg.Vec.t ->
  ?stop:Tmest_opt.Stop.t ->
  ?precond:Workspace.precond_kind ->
  Workspace.t ->
  loads:Tmest_linalg.Vec.t ->
  prior:Tmest_linalg.Vec.t ->
  sigma2:float ->
  result

(** [estimate_fixed ?stop ws ~loads ~prior ~sigma2 ~fixed]
    solves the same problem with some demands pinned to known values
    ([fixed] maps pair index to the measured demand): the pinned columns
    are moved to the right-hand side and excluded from the optimization.
    Used when combining tomography with direct measurements
    (Section 5.3.6). *)
val estimate_fixed :
  ?x0:Tmest_linalg.Vec.t ->
  ?stop:Tmest_opt.Stop.t ->
  ?precond:Workspace.precond_kind ->
  Workspace.t ->
  loads:Tmest_linalg.Vec.t ->
  prior:Tmest_linalg.Vec.t ->
  sigma2:float ->
  fixed:(int * float) list ->
  result
