module Vec = Tmest_linalg.Vec
module Scaling = Tmest_opt.Scaling
module Routing = Tmest_net.Routing
module Topology = Tmest_net.Topology
module Odpairs = Tmest_net.Odpairs

let adjust ws ~loads ~prior =
  let routing = Workspace.routing ws in
  Problem.check_dims routing ~loads;
  let n = Topology.num_nodes routing.Routing.topo in
  if Array.length prior <> Odpairs.count n then
    invalid_arg "Kruithof.adjust: prior dimension mismatch";
  let te, tx = Gravity.node_totals routing ~loads in
  let prior_m = Odpairs.matrix_of_vector ~nodes:n prior in
  let balanced, _report =
    Scaling.ipf prior_m ~row_sums:te ~col_sums:tx
  in
  Odpairs.vector_of_matrix ~nodes:n balanced

let krupp ?max_iter ?tol ws ~loads ~prior =
  let routing = Workspace.routing ws in
  Problem.check_dims routing ~loads;
  let r = Workspace.dense ws in
  let s, _report = Scaling.gis ?max_iter ?tol r loads ~prior in
  s
