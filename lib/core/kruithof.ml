module Vec = Tmest_linalg.Vec
module Scaling = Tmest_opt.Scaling
module Stop = Tmest_opt.Stop
module Routing = Tmest_net.Routing
module Topology = Tmest_net.Topology
module Odpairs = Tmest_net.Odpairs

let adjust ?(stop = Stop.default) ws ~loads ~prior =
  let stop =
    Workspace.solver_stop ws stop ~label:"kruithof/ipf" ~max_iter:500
      ~tol:1e-9
  in
  let routing = Workspace.routing ws in
  Problem.check_dims routing ~loads;
  let n = Topology.num_nodes routing.Routing.topo in
  if Array.length prior <> Odpairs.count n then
    invalid_arg "Kruithof.adjust: prior dimension mismatch";
  let te, tx = Gravity.node_totals routing ~loads in
  let prior_m = Odpairs.matrix_of_vector ~nodes:n prior in
  let balanced, _report =
    Scaling.ipf ~stop prior_m ~row_sums:te ~col_sums:tx
  in
  Odpairs.vector_of_matrix ~nodes:n balanced

let krupp ?(stop = Stop.default) ws ~loads ~prior =
  (* Documented dense-only exclusion: generalized iterative scaling
     walks dense columns of R per constraint; the Kruithof method used
     in the comparison ([adjust]) is link-free and scales fine. *)
  if Workspace.is_sparse ws then
    invalid_arg
      "Kruithof.krupp: generalized iterative scaling over dense R is a \
       dense-only path; use Kruithof.adjust on sparse-mode workspaces";
  let stop =
    Workspace.solver_stop ws stop ~label:"kruithof/gis" ~max_iter:2000
      ~tol:1e-8
  in
  let routing = Workspace.routing ws in
  Problem.check_dims routing ~loads;
  let r = Workspace.dense ws in
  let s, _report = Scaling.gis ~stop r loads ~prior in
  s
