module Vec = Tmest_linalg.Vec
module Routing = Tmest_net.Routing

type step = {
  measured : int;
  mre : float;
}

let fixed_of_set truth set = List.map (fun p -> (p, truth.(p))) set

let mre_with ?x0 ws ~loads ~prior ~truth ~sigma2 ~threshold set =
  let res =
    (* The sweep re-solves thousands of times; warm starts plus a looser
       inner tolerance keep it tractable (MRE differences of interest
       are >= 1e-3). *)
    Entropy.estimate_fixed ?x0
      ~stop:(Tmest_opt.Stop.make ~max_iter:1500 ~tol:1e-8 ())
      ws ~loads ~prior ~sigma2 ~fixed:(fixed_of_set truth set)
  in
  ( Metrics.mre_with_threshold ~threshold ~truth ~estimate:res.Entropy.estimate,
    res.Entropy.estimate )

let run_policy ?(coverage = 0.9) ws ~loads ~prior ~truth ~sigma2 ~steps
    ~choose =
  let p = Workspace.num_pairs ws in
  if Array.length truth <> p then
    invalid_arg "Combined: truth dimension mismatch";
  let steps = Stdlib.min steps p in
  let threshold, _ = Metrics.threshold_for_coverage ~coverage truth in
  let warm = ref None in
  let eval set =
    mre_with ?x0:!warm ws ~loads ~prior ~truth ~sigma2 ~threshold set
  in
  let rec loop set acc remaining_steps =
    if remaining_steps = 0 then List.rev acc
    else begin
      match choose ~eval:(fun s -> fst (eval s)) ~set with
      | None -> List.rev acc
      | Some pair ->
          let set = pair :: set in
          let mre, solution = eval set in
          warm := Some solution;
          loop set ({ measured = pair; mre } :: acc) (remaining_steps - 1)
    end
  in
  loop [] [] steps

let greedy ?coverage ws ~loads ~prior ~truth ~sigma2 ~steps =
  let p = Workspace.num_pairs ws in
  let choose ~eval ~set =
    (* Exhaustive search: try measuring every remaining demand and keep
       the one with the lowest resulting MRE (paper Fig. 16). *)
    let best = ref None in
    for pair = 0 to p - 1 do
      if not (List.mem pair set) then begin
        let mre : float = eval (pair :: set) in
        match !best with
        | Some (_, m) when m <= mre -> ()
        | _ -> best := Some (pair, mre)
      end
    done;
    Option.map fst !best
  in
  run_policy ?coverage ws ~loads ~prior ~truth ~sigma2 ~steps ~choose

let largest_first ?coverage ws ~loads ~prior ~truth ~sigma2 ~steps =
  let p = Workspace.num_pairs ws in
  let order = Array.init p (fun i -> i) in
  Array.sort (fun a b -> compare truth.(b) truth.(a)) order;
  let next = ref 0 in
  let choose ~eval:_ ~set:_ =
    if !next >= p then None
    else begin
      let pair = order.(!next) in
      incr next;
      Some pair
    end
  in
  run_policy ?coverage ws ~loads ~prior ~truth ~sigma2 ~steps ~choose
