let log_src =
  Logs.Src.create "tmest.core" ~doc:"Traffic-matrix estimation solvers"

module Vec = Tmest_linalg.Vec
module Routing = Tmest_net.Routing
module Topology = Tmest_net.Topology

let check_dims routing ~loads =
  if Array.length loads <> Routing.num_links routing then
    invalid_arg "load vector does not match the routing matrix"

let total_traffic routing ~loads =
  check_dims routing ~loads;
  let n = Topology.num_nodes routing.Routing.topo in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. loads.(Routing.ingress_row routing i)
  done;
  !acc

let gram routing = Workspace.gram (Workspace.create routing)

let residual_norm routing ~loads estimate =
  check_dims routing ~loads;
  let r = Routing.link_loads routing estimate in
  let d = Vec.dist2 r loads in
  let n = Vec.norm2 loads in
  if n = 0. then d else d /. n
