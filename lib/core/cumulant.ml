module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Csr = Tmest_linalg.Csr
module Op = Tmest_linalg.Op
module Fista = Tmest_opt.Fista
module Stop = Tmest_opt.Stop
module Routing = Tmest_net.Routing

type result = {
  estimate : Vec.t;
  iterations : int;
  converged : bool;
}

(* Entry-wise power of the routing matrix, preserving the sparsity
   pattern: under ECMP the fractional split weights make R^(k) differ
   from R, and the k-th cumulant of a sum of independent pair rates is
   exactly R^(k) applied to the pair cumulants. *)
let entrywise_pow csr k =
  let triplets = ref [] in
  for i = Csr.rows csr - 1 downto 0 do
    Csr.iter_row csr i (fun j v -> triplets := (i, j, v ** k) :: !triplets)
  done;
  Csr.of_triplets ~rows:(Csr.rows csr) ~cols:(Csr.cols csr) !triplets

let estimate ?x0 ?(stop = Stop.default) ?(unit_bps = 1e6)
    ?(precond = Workspace.Precond_none) ws ~load_samples ~w2 ~w3 =
  if w2 < 0. || w3 < 0. then
    invalid_arg "Cumulant.estimate: negative moment weight";
  if unit_bps <= 0. then invalid_arg "Cumulant.estimate: unit_bps <= 0";
  let stop =
    Workspace.solver_stop ws stop ~label:"cumulant/fista" ~max_iter:6000
      ~tol:1e-12
  in
  let routing = Workspace.routing ws in
  let l = Routing.num_links routing and p = Routing.num_pairs routing in
  if Mat.cols load_samples <> l then
    invalid_arg
      "Cumulant.estimate: load samples do not match the routing matrix";
  let k = Mat.rows load_samples in
  if k < 2 then invalid_arg "Cumulant.estimate: need at least two load samples";
  (* Work in counting units so the Poisson cumulant ladder
     (kappa_1 = kappa_2 = kappa_3 = lambda) is commensurate. *)
  let inv_u = 1. /. unit_bps in
  let ybar = Vec.zeros l and m2 = Vec.zeros l and m3 = Vec.zeros l in
  let kf = float_of_int k in
  for i = 0 to l - 1 do
    let mean = ref 0. in
    for s = 0 to k - 1 do
      mean := !mean +. (Mat.get load_samples s i *. inv_u)
    done;
    let mean = !mean /. kf in
    ybar.(i) <- mean;
    let s2 = ref 0. and s3 = ref 0. in
    for s = 0 to k - 1 do
      let d = (Mat.get load_samples s i *. inv_u) -. mean in
      s2 := !s2 +. (d *. d);
      s3 := !s3 +. (d *. d *. d)
    done;
    m2.(i) <- !s2 /. (kf -. 1.);
    (* Unbiased k-statistic for the third cumulant needs k >= 3; with a
       2-sample window the third-moment term is dropped below. *)
    m3.(i) <- (if k >= 3 then kf *. !s3 /. ((kf -. 1.) *. (kf -. 2.)) else 0.)
  done;
  let w3 = if k >= 3 then w3 else 0. in
  (* Moment calibration: real traffic is not unit-rate Poisson — its
     dispersion law is closer to var = phi * mean^c — so the raw
     second/third-moment systems would contradict the first-moment one
     and drag the fit toward whichever is heavier.  Estimate the
     effective cumulant ratios u2 = kappa2/kappa1 and u3 =
     kappa3/kappa2 from the aggregate over links (a scaled-Poisson
     process has exactly constant ratios), and rescale the moment
     targets so all three systems agree in aggregate; the per-link
     deviations remain as the tomographic signal. *)
  let sum v = Array.fold_left ( +. ) 0. v in
  let s1 = sum ybar and s2 = sum m2 and s3 = sum m3 in
  let u2 = if s1 > 0. && s2 > 0. then s2 /. s1 else 1. in
  let u3 = if s2 > 0. && s3 > 0. then s3 /. s2 else 1. in
  (* A non-positive aggregate third moment means the window is too
     short to say anything about skew; drop that system. *)
  let w3 = if s3 > 0. then w3 else 0. in
  Vec.scale_into (1. /. u2) m2 ~dst:m2;
  Vec.scale_into (1. /. (u2 *. u3)) m3 ~dst:m3;
  (* The three moment systems R lambda = kappa_1, R^(2) lambda =
     kappa_2, R^(3) lambda = kappa_3 share one rate vector; stack them
     as a weighted non-negative least-squares problem and solve it
     matrix-free through [Op] — never a p x p matrix. *)
  let pool = Workspace.pool ws in
  let a = Workspace.op ws in
  let r2 = entrywise_pow routing.Routing.matrix 2. in
  let r3 = entrywise_pow routing.Routing.matrix 3. in
  let a2 = Op.of_csr ?pool r2 in
  let a3 = Op.of_csr ?pool r3 in
  let ly = (Workspace.scratch ws ~name:"cumulant.links" ~dim:l ~count:1).(0) in
  let tp = (Workspace.scratch ws ~name:"cumulant.pairs" ~dim:p ~count:1).(0) in
  let apply_h_into x ~dst =
    Op.apply_into a x ~dst:ly;
    Op.apply_t_into a ly ~dst:dst;
    Op.apply_into a2 x ~dst:ly;
    Op.apply_t_into a2 ly ~dst:tp;
    Vec.axpy_into w2 tp dst ~dst;
    if w3 > 0. then begin
      Op.apply_into a3 x ~dst:ly;
      Op.apply_t_into a3 ly ~dst:tp;
      Vec.axpy_into w3 tp dst ~dst
    end
  in
  (* Linear term/2 = R^T kappa_1 + w2 R2^T kappa_2 + w3 R3^T kappa_3. *)
  let lin = Csr.tmatvec routing.Routing.matrix ybar in
  Vec.axpy_into w2 (Csr.tmatvec r2 m2) lin ~dst:lin;
  if w3 > 0. then Vec.axpy_into w3 (Csr.tmatvec r3 m3) lin ~dst:lin;
  let dinv =
    match Workspace.resolve_precond ws precond with
    | Workspace.Precond_none -> None
    | Workspace.Precond_jacobi | Workspace.Precond_block
    | Workspace.Precond_auto ->
        (* Exact curvature diagonal: diag(2H)_j = 2(g_j + w2 g2_j +
           w3 g3_j) with g{,2,3} the column square norms of R^(1,2,3).
           Block degrades to Jacobi — the non-negativity clamp needs a
           diagonal metric. *)
        Some
          (Workspace.precond_vec ws
             ~key:(Printf.sprintf "cumulant.jacobi.dinv:%h:%h" w2 w3)
             ~compute:(fun () ->
               let g = Workspace.gram_diag ws in
               let g2 = Csr.col_sq_norms r2 in
               let g3 = Csr.col_sq_norms r3 in
               Vec.init p (fun j ->
                   let d =
                     2. *. (g.(j) +. (w2 *. g2.(j)) +. (w3 *. g3.(j)))
                   in
                   if d > 0. then 1. /. d else 1.)))
  in
  let gradient_into x ~dst =
    apply_h_into x ~dst;
    Vec.sub_into dst lin ~dst;
    Vec.scale_into 2. dst ~dst
  in
  let lipschitz =
    match dinv with
    | None ->
        2.
        *. Workspace.cached_lipschitz ws
             ~key:(Printf.sprintf "cumulant.h:%h:%h" w2 w3)
             ~compute:(fun () ->
               Fista.lipschitz_of_op ~dim:p (fun x ->
                   let dst = Vec.zeros p in
                   apply_h_into x ~dst;
                   dst))
    | Some dinv ->
        2.
        *. Workspace.cached_lipschitz ws
             ~key:(Printf.sprintf "cumulant.h.jacobi:%h:%h" w2 w3)
             ~compute:(fun () ->
               let ds = Vec.map sqrt dinv in
               Fista.lipschitz_of_op ~dim:p (fun x ->
                   let dst = Vec.zeros p in
                   apply_h_into (Vec.mul ds x) ~dst;
                   Vec.mul ds dst))
  in
  (* Traced runs only; allocates freely. *)
  let objective x =
    let hx = Vec.zeros p in
    apply_h_into x ~dst:hx;
    Vec.dot x hx -. (2. *. Vec.dot lin x)
  in
  (* Warm starts arrive in bits/s; the solver works in counting units. *)
  let x0 = Option.map (fun v0 -> Vec.scale inv_u v0) x0 in
  let scratch =
    Workspace.scratch ws ~name:"fista" ~dim:p ~count:Fista.scratch_size
  in
  let res =
    Fista.solve_into ?x0 ~stop ~scratch ~objective ?dinv ~dim:p ~gradient_into
      ~lipschitz ()
  in
  {
    estimate = Vec.scale unit_bps res.Fista.x;
    iterations = res.Fista.iterations;
    converged = res.Fista.converged;
  }
