(** Iterative tomogravity (Fang et al. 2007).

    One-shot tomogravity ({!Kruithof.adjust}) performs a single
    KL-projection of the gravity prior onto the node marginals and
    stops — the link constraints in the interior of the network are
    never enforced.  This module alternates that marginal projection
    with a KL-projection step onto the full link system [{Rx = y}]
    (one generalized-iterative-scaling sweep over the sparse routing
    matrix per iteration), so the fixed point satisfies both.  Because
    the access rows of [R] already imply the marginals, the iteration
    is an alternating I-projection onto nested constraint sets and
    converges to the KL-projection of the prior onto [{Rx = y}].

    Fully matrix-free: per iteration one pooled sparse matvec, one
    O(nnz) sweep over the transpose, and one IPF pass on the n x n
    node matrix — no dense artifacts, so the method runs unchanged on
    sparse-mode workspaces.  The iteration always starts from the
    supplied prior (never a warm start); for a fixed [stop] policy the
    result is deterministic and independent of the jobs count. *)

type result = {
  estimate : Tmest_linalg.Vec.t;  (** demand estimate, bits/s *)
  iterations : int;  (** outer alternation count *)
  converged : bool;
      (** max relative link residual fell below the tolerance *)
  link_error : float;  (** final max relative link residual *)
}

(** [estimate ws ~loads ~prior] iterates from [prior] (bits/s — in the
    paper's setup the gravity model of {!Gravity.simple}).  [stop]
    bounds the outer alternation: default 200 iterations, tolerance
    1e-6 on the worst relative link residual. *)
val estimate :
  ?stop:Tmest_opt.Stop.t ->
  Workspace.t ->
  loads:Tmest_linalg.Vec.t ->
  prior:Tmest_linalg.Vec.t ->
  result
