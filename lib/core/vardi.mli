(** Vardi's Poissonian moment-matching estimator (Section 4.2.2).

    Under [s_p ~ Poisson(λ_p)], the link loads satisfy [E t = R λ] and
    [Cov t = R diag(λ) Rᵀ].  Given a time series of load measurements,
    the sample mean and covariance are matched to these expressions in
    least squares:

    {v min ‖R λ − t̂‖² + σ⁻² ‖R diag(λ) Rᵀ − Σ̂‖_F²,   λ >= 0 v}

    Both terms are quadratic in [λ] (the Frobenius term has Hessian
    [(RᵀR) ∘ (RᵀR)], the entry-wise square of the Gram matrix), so the
    problem is a non-negative quadratic program solved by accelerated
    projected gradient.  [σ⁻² ∈ (0, 1]] expresses faith in the Poisson
    assumption ([σ⁻² = 1] trusts it fully).

    Traffic is rescaled internally so the *counting units* are
    explicit: the Poisson mean-variance link only holds in the unit the
    traffic is counted in, and [unit_bps] (default 1 Mbps) sets it. *)

type result = {
  estimate : Tmest_linalg.Vec.t;  (** estimated mean rates, bits/s *)
  mean_residual : float;  (** ‖Rλ − t̂‖ / ‖t̂‖ at the solution *)
  iterations : int;
}

(** [estimate ?x0 ?stop ?unit_bps ws ~load_samples ~sigma_inv2]
    runs the estimator on a [K x L] matrix of load samples.  [x0] is an
    optional warm-start estimate in bits/s (converted internally to the
    counting unit).  [precond] (default {!Workspace.Precond_none})
    applies diagonal preconditioning in the exact curvature metric
    [d_i = 2(g_i + σ⁻²·g_i²)] where [g = diag(RᵀR)]; same fixed point,
    fewer iterations.
    @raise Invalid_argument if [sigma_inv2 < 0] or dimensions differ. *)
val estimate :
  ?x0:Tmest_linalg.Vec.t ->
  ?stop:Tmest_opt.Stop.t ->
  ?unit_bps:float ->
  ?precond:Workspace.precond_kind ->
  Workspace.t ->
  load_samples:Tmest_linalg.Mat.t ->
  sigma_inv2:float ->
  result
