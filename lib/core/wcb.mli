(** Worst-case bounds on demands (Section 4.3.1).

    With no statistical assumptions, a load snapshot [t] confines the
    demand vector to the polytope [{s >= 0 | R s = t}]; per-demand upper
    and lower bounds come from maximizing / minimizing [s_p] over it —
    two linear programs per demand, all sharing one feasible region, so
    the simplex solver's warm-started re-optimization carries most of
    the work.  The bound midpoints make a surprisingly good prior
    (Fig. 9 / 15). *)

type bounds = {
  lower : Tmest_linalg.Vec.t;
  upper : Tmest_linalg.Vec.t;
}

(** [bounds ?pairs ws ~loads] computes the per-demand bounds.
    [pairs] restricts the computation to a subset of OD pairs (bounds of
    the others are reported as [0] and the trivial path-minimum upper
    bound).
    @raise Tmest_opt.Simplex.Infeasible if the loads are inconsistent. *)
val bounds :
  ?pairs:int list ->
  Workspace.t ->
  loads:Tmest_linalg.Vec.t ->
  bounds

(** [trivial_upper ws ~loads] is the per-demand upper bound
    [min over links on the path of t_l] — the baseline any useful LP
    bound must beat. *)
val trivial_upper :
  Workspace.t -> loads:Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t

(** [midpoint b] is the prior [(lower + upper) / 2]. *)
val midpoint : bounds -> Tmest_linalg.Vec.t

(** [width b] is [upper - lower] per demand (the uncertainty). *)
val width : bounds -> Tmest_linalg.Vec.t

(** [contains b s] checks [lower <= s <= upper] element-wise (within
    [1e-6] relative tolerance) — true for the ground truth by
    construction. *)
val contains : bounds -> Tmest_linalg.Vec.t -> bool
