(** A uniform face over all estimation methods, for drivers (CLI,
    benchmarks) that select a method by name.

    The single entry point is {!solve}: one method value, one shared
    {!Workspace.t}, one {!Options.t} bundling everything that modulates
    a run (warm starts, an explicit starting iterate, the trace sink).
    There are no throwaway-workspace conveniences — construct a
    workspace once per routing context and reuse it; that is where all
    caching, scratch reuse and observability live. *)

(** Re-export of {!Workspace.prior_kind} so drivers can speak prior
    names without depending on the workspace module directly. *)
type prior_kind = Workspace.prior_kind =
  | Prior_gravity  (** simple gravity model (the paper's default prior) *)
  | Prior_wcb  (** worst-case-bound midpoints *)
  | Prior_uniform  (** total traffic spread evenly over all pairs *)

type t =
  | Gravity
  | Kruithof of { prior : prior_kind }
  | Entropy of { sigma2 : float; prior : prior_kind }
  | Bayes of { sigma2 : float; prior : prior_kind }
  | Wcb_midpoint
  | Fanout of { window : int }
  | Vardi of { sigma_inv2 : float; window : int }
  | Cao of { phi : float; c : float; sigma_inv2 : float; window : int }
  | Tomogravity_iter of { prior : prior_kind }
      (** iterative tomogravity ({!Tomogravity}): alternating
          KL-projections between the gravity marginals and the link
          constraints *)
  | Cumulant of { w2 : float; w3 : float; window : int }
      (** second/third-moment cumulant rate tomography ({!Cumulant})
          over a measurement window *)
  | Mcmc_int of { samples : int; thin : int; chains : int }
      (** integer-valued posterior sampling ({!Mcmc_int}) with
          Rng.of_pair-split chains *)

(** [name t] is a short identifier (e.g. ["entropy"]). *)
val name : t -> string

(** [of_name s] parses a method with default parameters.
    @raise Invalid_argument on unknown names. *)
val of_name : string -> t

(** [all_names ()] lists the known method identifiers. *)
val all_names : unit -> string list

(** [uses_time_series t] is true for methods that consume a window of
    load measurements rather than one snapshot. *)
val uses_time_series : t -> bool

(** [supports_sparse t] is the single capability predicate for
    sparse-mode workspaces: false only for the LP-based worst-case
    bounds ([Wcb_midpoint]), which need a dense simplex tableau per
    demand and refuse above the gate; true for every method with a
    matrix-free path.  Drivers listing or sweeping methods on a
    sparse-mode workspace must filter through this predicate instead
    of hard-coding names. *)
val supports_sparse : t -> bool

(** Per-run options for {!solve}.

    The record is private: construct it with {!make} and refine it with
    the [with_*] builders, so every construction site stays valid when a
    field is added.  Fields remain readable everywhere. *)
module Options : sig
  type t = private {
    warm : bool;
        (** start iterative methods from the workspace's cached solution
            for the same method and parameters — the previous window of
            a scan — and store the new solution back.  Warm runs
            converge to the same optimum within the solver tolerance but
            are {e not} bit-identical to cold runs; leave unset where
            exact reproducibility across call orders matters. *)
    warm_tag : string option;
        (** suffixes the warm-start cache key, giving this caller a
            private warm-start chain; parallel window scans tag by chunk
            so concurrent chunks never cross-feed starting iterates. *)
    x0 : Tmest_linalg.Vec.t option;
        (** explicit starting iterate (bits/s); overrides the warm-start
            cache lookup.  The solution is still stored back under the
            warm key when [warm] is set. *)
    sink : Tmest_obs.Obs.sink;
        (** trace destination for this run; the null sink (default)
            falls back to the workspace's {!Workspace.sink}. *)
    degrade : Degrade.policy option;
        (** degraded mode: run {!Degrade.repair} on the measurements
            before the method sees them.  [None] (default) trusts the
            inputs.  With a policy and {e clean} inputs the repair is a
            no-op returning the original arrays, so the solve stays
            bit-identical to the plain path. *)
    precond : Workspace.precond_kind;
        (** preconditioning policy threaded to the iterative methods.
            The default [Precond_auto] resolves per method to the
            measured best configuration: Jacobi for the quadratic
            solvers (bayes, vardi, cao) in sparse mode, none in dense
            mode (keeping the historical dense results bit-identical),
            and none for entropy/fanout whose prox geometries measured
            slower under the diagonal metric.  Preconditioned solves
            converge to the same optimum within the solver tolerance
            but are {e not} bit-identical to unpreconditioned ones;
            pass [Precond_none] where that matters.  For a fixed
            policy, results are deterministic and independent of the
            jobs count. *)
  }

  (** Cold, untagged, no explicit start, null sink, no degraded mode,
      automatic preconditioning. *)
  val default : t

  val make :
    ?warm:bool ->
    ?warm_tag:string ->
    ?x0:Tmest_linalg.Vec.t ->
    ?sink:Tmest_obs.Obs.sink ->
    ?degrade:Degrade.policy ->
    ?precond:Workspace.precond_kind ->
    unit ->
    t

  val with_warm : bool -> t -> t
  val with_warm_tag : string -> t -> t
  val with_x0 : Tmest_linalg.Vec.t -> t -> t
  val with_sink : Tmest_obs.Obs.sink -> t -> t
  val with_degrade : Degrade.policy -> t -> t
  val with_precond : Workspace.precond_kind -> t -> t
end

(** [prior kind ws ~loads] materializes a prior vector through the
    workspace's [(kind, loads)] cache, so repeated solves on the same
    snapshot reuse one prior (WCB priors in particular cost two LPs per
    demand). *)
val prior :
  prior_kind ->
  Workspace.t ->
  loads:Tmest_linalg.Vec.t ->
  Tmest_linalg.Vec.t

(** [solve ?opts t ws ~loads ~load_samples] executes the method against
    a shared workspace.  Snapshot methods use [loads]; time-series
    methods take the last [window] rows of [load_samples] (and fall back
    to fewer if the series is shorter).  Returns the demand estimate in
    bits/s and accounts the wall-clock in the workspace's [solve]
    counter.

    With an enabled trace sink (either [opts.sink] or the workspace's),
    the run is wrapped in a [solve/<method>] span and every iterative
    solver underneath emits per-iteration records.

    With [opts.degrade] set, the inputs first pass through
    {!Degrade.repair} (the window only for time-series methods); the
    policy's [on_health] hook observes what was repaired. *)
val solve :
  ?opts:Options.t ->
  t ->
  Workspace.t ->
  loads:Tmest_linalg.Vec.t ->
  load_samples:Tmest_linalg.Mat.t ->
  Tmest_linalg.Vec.t
