(** A uniform face over all estimation methods, for drivers (CLI,
    benchmarks) that select a method by name. *)

(** Re-export of {!Workspace.prior_kind} so drivers can speak prior
    names without depending on the workspace module directly. *)
type prior_kind = Workspace.prior_kind =
  | Prior_gravity  (** simple gravity model (the paper's default prior) *)
  | Prior_wcb  (** worst-case-bound midpoints *)
  | Prior_uniform  (** total traffic spread evenly over all pairs *)

type t =
  | Gravity
  | Kruithof of { prior : prior_kind }
  | Entropy of { sigma2 : float; prior : prior_kind }
  | Bayes of { sigma2 : float; prior : prior_kind }
  | Wcb_midpoint
  | Fanout of { window : int }
  | Vardi of { sigma_inv2 : float; window : int }
  | Cao of { phi : float; c : float; sigma_inv2 : float; window : int }

(** [name t] is a short identifier (e.g. ["entropy"]). *)
val name : t -> string

(** [of_name s] parses a method with default parameters.
    @raise Invalid_argument on unknown names. *)
val of_name : string -> t

(** [all_names ()] lists the known method identifiers. *)
val all_names : unit -> string list

(** [uses_time_series t] is true for methods that consume a window of
    load measurements rather than one snapshot. *)
val uses_time_series : t -> bool

(** [build_prior_ws kind ws ~loads] materializes a prior vector through
    the workspace's [(kind, loads)] cache, so repeated solves on the
    same snapshot reuse one prior (WCB priors in particular cost two LPs
    per demand). *)
val build_prior_ws :
  prior_kind ->
  Workspace.t ->
  loads:Tmest_linalg.Vec.t ->
  Tmest_linalg.Vec.t

(** [build_prior kind routing ~loads] is {!build_prior_ws} on a
    throwaway workspace — compatibility wrapper with no reuse. *)
val build_prior :
  prior_kind ->
  Tmest_net.Routing.t ->
  loads:Tmest_linalg.Vec.t ->
  Tmest_linalg.Vec.t

(** [run_ws ?warm t ws ~loads ~load_samples] executes the method against
    a shared workspace.  Snapshot methods use [loads]; time-series
    methods take the last [window] rows of [load_samples] (and fall back
    to fewer if the series is shorter).  Returns the demand estimate in
    bits/s and accounts the wall-clock in the workspace's [solve]
    counter.

    With [warm:true] (default false), iterative methods start from the
    workspace's cached solution for the same method and parameters —
    the previous window of a scan — and store their own solution back.
    Warm runs converge to the same optimum within the solver tolerance
    but are {e not} bit-identical to cold runs; leave [warm] unset where
    exact reproducibility across call orders matters.

    [warm_tag] (only meaningful with [warm:true]) suffixes the cache
    key, giving the caller a private warm-start chain; parallel window
    scans tag by chunk so concurrent chunks never cross-feed starting
    iterates. *)
val run_ws :
  ?warm:bool ->
  ?warm_tag:string ->
  t ->
  Workspace.t ->
  loads:Tmest_linalg.Vec.t ->
  load_samples:Tmest_linalg.Mat.t ->
  Tmest_linalg.Vec.t

(** [run t routing ~loads ~load_samples] is {!run_ws} on a fresh
    throwaway workspace: identical results, none of the reuse. *)
val run :
  t ->
  Tmest_net.Routing.t ->
  loads:Tmest_linalg.Vec.t ->
  load_samples:Tmest_linalg.Mat.t ->
  Tmest_linalg.Vec.t
