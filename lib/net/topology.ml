module Rng = Tmest_stats.Rng

type node_kind = Access | Peering

type node = {
  node_id : int;
  name : string;
  kind : node_kind;
  lat : float;
  lon : float;
}

type link_kind = Interior | Ingress of int | Egress of int

type link = {
  link_id : int;
  src : int;
  dst : int;
  capacity : float;
  metric : float;
  lkind : link_kind;
}

type t = {
  net_name : string;
  nodes : node array;
  links : link array;
  outgoing : (int * int) list array;
}

let num_nodes t = Array.length t.nodes
let num_links t = Array.length t.links

let num_interior_links t =
  Array.fold_left
    (fun acc l -> if l.lkind = Interior then acc + 1 else acc)
    0 t.links

let find_access t n pred =
  let found = ref (-1) in
  Array.iter (fun l -> if pred l.lkind n then found := l.link_id) t.links;
  if !found < 0 then invalid_arg "Topology: node has no access link";
  !found

let ingress_link t n =
  find_access t n (fun k n -> match k with Ingress m -> m = n | _ -> false)

let egress_link t n =
  find_access t n (fun k n -> match k with Egress m -> m = n | _ -> false)

let interior_links t =
  Array.to_list t.links |> List.filter (fun l -> l.lkind = Interior)

let build ~name nodes edges =
  let n = Array.length nodes in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (a, b, capacity, metric) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg "Topology.build: endpoint out of range";
      if a = b then invalid_arg "Topology.build: self loop";
      if capacity <= 0. || metric <= 0. then
        invalid_arg "Topology.build: capacity and metric must be positive";
      let key = (Stdlib.min a b, Stdlib.max a b) in
      if Hashtbl.mem seen key then
        invalid_arg "Topology.build: duplicate edge";
      Hashtbl.add seen key ())
    edges;
  let interior =
    List.concat_map
      (fun (a, b, capacity, metric) ->
        [ (a, b, capacity, metric); (b, a, capacity, metric) ])
      edges
  in
  let node_capacity = Array.make n 0. in
  List.iter
    (fun (a, _, c, _) -> node_capacity.(a) <- node_capacity.(a) +. c)
    interior;
  let links = ref [] in
  let next_id = ref 0 in
  let add src dst capacity metric lkind =
    links := { link_id = !next_id; src; dst; capacity; metric; lkind } :: !links;
    incr next_id
  in
  List.iter (fun (a, b, c, m) -> add a b c m Interior) interior;
  for i = 0 to n - 1 do
    let cap = Stdlib.max node_capacity.(i) 1e9 in
    add (-1) i cap 1. (Ingress i);
    add i (-1) cap 1. (Egress i)
  done;
  let links = Array.of_list (List.rev !links) in
  let outgoing = Array.make n [] in
  Array.iter
    (fun l ->
      if l.lkind = Interior then
        outgoing.(l.src) <- (l.link_id, l.dst) :: outgoing.(l.src))
    links;
  Array.iteri (fun i adj -> outgoing.(i) <- List.rev adj) outgoing;
  { net_name = name; nodes; links; outgoing }

let pi = 4. *. atan 1.

let haversine_km (lat1, lon1) (lat2, lon2) =
  let rad x = x *. pi /. 180. in
  let dlat = rad (lat2 -. lat1) and dlon = rad (lon2 -. lon1) in
  let a =
    (sin (dlat /. 2.) ** 2.)
    +. (cos (rad lat1) *. cos (rad lat2) *. (sin (dlon /. 2.) ** 2.))
  in
  2. *. 6371. *. asin (sqrt (Stdlib.min 1. a))

(* Capacity tiers: OC-48 / OC-192 / OC-768. *)
let capacity_tiers = [| 2.5e9; 10e9; 40e9 |]

let generate ~name ~seed ~nodes:n ~directed_links cities =
  if n < 3 then invalid_arg "Topology.generate: need at least 3 nodes";
  if Array.length cities < n then
    invalid_arg "Topology.generate: not enough cities";
  let core_directed = directed_links - (2 * n) in
  if core_directed < 2 * n || core_directed mod 2 <> 0 then
    invalid_arg "Topology.generate: unrealizable link budget";
  let edges_wanted = core_directed / 2 in
  if edges_wanted > n * (n - 1) / 2 then
    invalid_arg "Topology.generate: more edges than node pairs";
  let rng = Rng.create seed in
  let node_arr =
    Array.init n (fun i ->
        let name, lat, lon = cities.(i) in
        { node_id = i; name; kind = Access; lat; lon })
  in
  (* Order nodes by angle around the centroid so the ring is geographic. *)
  let clat =
    Array.fold_left (fun acc nd -> acc +. nd.lat) 0. node_arr /. float_of_int n
  in
  let clon =
    Array.fold_left (fun acc nd -> acc +. nd.lon) 0. node_arr /. float_of_int n
  in
  let order = Array.init n (fun i -> i) in
  let angle i =
    atan2 (node_arr.(i).lat -. clat) (node_arr.(i).lon -. clon)
  in
  Array.sort (fun a b -> compare (angle a) (angle b)) order;
  let edge_set = Hashtbl.create 64 in
  let edge_key a b = (Stdlib.min a b, Stdlib.max a b) in
  let edges = ref [] in
  let dist a b =
    haversine_km
      (node_arr.(a).lat, node_arr.(a).lon)
      (node_arr.(b).lat, node_arr.(b).lon)
  in
  let pick_capacity importance =
    (* Busier (shorter, more central) links tend to be fatter pipes. *)
    let r = Rng.float rng +. importance in
    if r > 1.2 then capacity_tiers.(2)
    else if r > 0.6 then capacity_tiers.(1)
    else capacity_tiers.(0)
  in
  let add_edge a b importance =
    let key = edge_key a b in
    if not (Hashtbl.mem edge_set key) then begin
      Hashtbl.add edge_set key ();
      let km = dist a b in
      let metric = Stdlib.max 1. (Float.round (km /. 50.)) in
      edges := (a, b, pick_capacity importance, metric) :: !edges
    end
  in
  (* Ring for strong connectivity. *)
  for i = 0 to n - 1 do
    add_edge order.(i) order.((i + 1) mod n) 0.5
  done;
  (* Shortcut edges, biased toward close pairs (real backbones are
     distance-sensitive but not planar). *)
  let candidates = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if not (Hashtbl.mem edge_set (edge_key a b)) then
        candidates := (a, b) :: !candidates
    done
  done;
  let cand = Array.of_list !candidates in
  let weights =
    Array.map (fun (a, b) -> 1. /. ((1. +. (dist a b /. 500.)) ** 2.)) cand
  in
  let remaining = ref (edges_wanted - n) in
  let active = Array.make (Array.length cand) true in
  while !remaining > 0 do
    let total =
      Array.fold_left ( +. ) 0.
        (Array.mapi (fun i w -> if active.(i) then w else 0.) weights)
    in
    let target = Rng.float rng *. total in
    let acc = ref 0. and chosen = ref (-1) in
    Array.iteri
      (fun i w ->
        if active.(i) && !chosen < 0 then begin
          acc := !acc +. w;
          if !acc >= target then chosen := i
        end)
      weights;
    let i = if !chosen < 0 then Array.length cand - 1 else !chosen in
    if active.(i) then begin
      active.(i) <- false;
      let a, b = cand.(i) in
      add_edge a b (Rng.float rng *. 0.8);
      decr remaining
    end
  done;
  build ~name node_arr (List.rev !edges)

(* ------------------------------------------------------------------ *)
(* Synthetic hierarchical backbones (scale studies)                    *)
(* ------------------------------------------------------------------ *)

let hub_count n =
  Stdlib.max 2 (int_of_float (Float.round (sqrt (float_of_int n))))

(* Synthetic PoP tables for sizes beyond the paper's city lists: ≈√n
   regional hubs on a jittered continental grid, the remaining PoPs
   scattered around their cluster hub.  Hubs occupy indices 0..h-1.
   Deterministic in [seed]; all RNG draws happen in index order. *)
let synthetic_cities ~n ~seed =
  if n < 3 then invalid_arg "Topology.synthetic_cities: need at least 3 PoPs";
  let rng = Rng.create seed in
  let h = hub_count n in
  let grid = int_of_float (ceil (sqrt (float_of_int h))) in
  let hub_pos = Array.make h (0., 0.) in
  for i = 0 to h - 1 do
    let gx = i mod grid and gy = i / grid in
    let lon =
      -120.
      +. (70. *. (float_of_int gx +. 0.5) /. float_of_int grid)
      +. Rng.uniform rng ~lo:(-2.) ~hi:2.
    in
    let lat =
      28.
      +. (20. *. (float_of_int gy +. 0.5) /. float_of_int grid)
      +. Rng.uniform rng ~lo:(-1.5) ~hi:1.5
    in
    hub_pos.(i) <- (lat, lon)
  done;
  let cities = Array.make n ("", 0., 0.) in
  for i = 0 to n - 1 do
    if i < h then begin
      let lat, lon = hub_pos.(i) in
      cities.(i) <- (Printf.sprintf "hub%02d" i, lat, lon)
    end
    else begin
      let hub = (i - h) mod h in
      let hlat, hlon = hub_pos.(hub) in
      let lat = hlat +. Rng.uniform rng ~lo:(-2.5) ~hi:2.5 in
      let lon = hlon +. Rng.uniform rng ~lo:(-3.) ~hi:3. in
      cities.(i) <- (Printf.sprintf "pop%03d" i, lat, lon)
    end
  done;
  cities

(* A 100–500-PoP backbone with realistic hierarchy: a fat hub ring (plus
   chord shortcuts) forms the core, every leaf PoP is dual-homed to its
   two nearest hubs.  Dual homing plus the ring guarantees strong
   connectivity; metrics follow great-circle distance like [generate].
   Link count comes out at ≈ 2n + 3h core directed links + 2n access
   links rather than being a caller budget — at these sizes realism
   beats exact budgets. *)
let generate_hierarchical ~name ~seed ~pops () =
  let n = pops in
  let cities = synthetic_cities ~n ~seed in
  let h = hub_count n in
  let node_arr =
    Array.init n (fun i ->
        let name, lat, lon = cities.(i) in
        { node_id = i; name; kind = Access; lat; lon })
  in
  let dist a b =
    haversine_km
      (node_arr.(a).lat, node_arr.(a).lon)
      (node_arr.(b).lat, node_arr.(b).lon)
  in
  let edge_set = Hashtbl.create 64 in
  let edges = ref [] in
  let add_edge a b capacity =
    let key = (Stdlib.min a b, Stdlib.max a b) in
    if a <> b && not (Hashtbl.mem edge_set key) then begin
      Hashtbl.add edge_set key ();
      let metric = Stdlib.max 1. (Float.round (dist a b /. 50.)) in
      edges := (a, b, capacity, metric) :: !edges
    end
  in
  (* Hub ring in geographic angle order around the hub centroid. *)
  let clat = ref 0. and clon = ref 0. in
  for i = 0 to h - 1 do
    clat := !clat +. node_arr.(i).lat;
    clon := !clon +. node_arr.(i).lon
  done;
  let clat = !clat /. float_of_int h and clon = !clon /. float_of_int h in
  let order = Array.init h (fun i -> i) in
  let angle i = atan2 (node_arr.(i).lat -. clat) (node_arr.(i).lon -. clon) in
  Array.sort (fun a b -> compare (angle a) (angle b)) order;
  let hub_cap = capacity_tiers.(2) in
  for i = 0 to h - 1 do
    add_edge order.(i) order.((i + 1) mod h) hub_cap
  done;
  (* Chord shortcuts keep hub-to-hub paths short on larger rings. *)
  if h >= 5 then
    for i = 0 to h - 1 do
      add_edge order.(i) order.((i + 2) mod h) hub_cap
    done;
  (* Leaves: dual-homed to the two nearest hubs. *)
  let leaf_cap = capacity_tiers.(1) in
  for leaf = h to n - 1 do
    let hubs = Array.init h (fun i -> i) in
    Array.sort (fun a b -> compare (dist leaf a) (dist leaf b)) hubs;
    add_edge leaf hubs.(0) leaf_cap;
    add_edge leaf hubs.(1) leaf_cap
  done;
  build ~name node_arr (List.rev !edges)

let is_connected t =
  let n = num_nodes t in
  if n = 0 then true
  else begin
    (* Strong connectivity: BFS forward from 0 and BFS over reversed
       interior links. *)
    let reachable forward =
      let seen = Array.make n false in
      let queue = Queue.create () in
      Queue.add 0 queue;
      seen.(0) <- true;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Array.iter
          (fun l ->
            if l.lkind = Interior then begin
              let from, into = if forward then (l.src, l.dst) else (l.dst, l.src) in
              if from = u && not seen.(into) then begin
                seen.(into) <- true;
                Queue.add into queue
              end
            end)
          t.links
      done;
      Array.for_all (fun b -> b) seen
    in
    reachable true && reachable false
  end

let set_node_kind t n kind =
  if n < 0 || n >= num_nodes t then
    invalid_arg "Topology.set_node_kind: node out of range";
  let nodes = Array.copy t.nodes in
  nodes.(n) <- { nodes.(n) with kind };
  { t with nodes }

let european_cities =
  [|
    ("London", 51.51, -0.13);
    ("Amsterdam", 52.37, 4.90);
    ("Paris", 48.86, 2.35);
    ("Frankfurt", 50.11, 8.68);
    ("Stockholm", 59.33, 18.07);
    ("Madrid", 40.42, -3.70);
    ("Milan", 45.46, 9.19);
    ("Brussels", 50.85, 4.35);
    ("Zurich", 47.38, 8.54);
    ("Vienna", 48.21, 16.37);
    ("Copenhagen", 55.68, 12.57);
    ("Dublin", 53.35, -6.26);
  |]

let american_cities =
  [|
    ("NewYork", 40.71, -74.01);
    ("Washington", 38.91, -77.04);
    ("Chicago", 41.88, -87.63);
    ("Dallas", 32.78, -96.80);
    ("LosAngeles", 34.05, -118.24);
    ("SanFrancisco", 37.77, -122.42);
    ("Seattle", 47.61, -122.33);
    ("Atlanta", 33.75, -84.39);
    ("Miami", 25.76, -80.19);
    ("Denver", 39.74, -104.99);
    ("Houston", 29.76, -95.37);
    ("Phoenix", 33.45, -112.07);
    ("Boston", 42.36, -71.06);
    ("Philadelphia", 39.95, -75.17);
    ("Detroit", 42.33, -83.05);
    ("Minneapolis", 44.98, -93.27);
    ("StLouis", 38.63, -90.20);
    ("KansasCity", 39.10, -94.58);
    ("SaltLakeCity", 40.76, -111.89);
    ("Portland", 45.52, -122.68);
    ("SanDiego", 32.72, -117.16);
    ("Austin", 30.27, -97.74);
    ("Charlotte", 35.23, -80.84);
    ("Cleveland", 41.50, -81.69);
    ("Tampa", 27.95, -82.46);
  |]

let pp ppf t =
  Format.fprintf ppf "@[<v>network %s: %d PoPs, %d links (%d interior)@,"
    t.net_name (num_nodes t) (num_links t) (num_interior_links t);
  Array.iter
    (fun l ->
      if l.lkind = Interior then
        Format.fprintf ppf "  %s -> %s cap=%.1fG metric=%.0f@,"
          t.nodes.(l.src).name t.nodes.(l.dst).name (l.capacity /. 1e9)
          l.metric)
    t.links;
  Format.fprintf ppf "@]"
