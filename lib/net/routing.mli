(** Routing matrices: the [R] of [R s = t] (paper eq. 1-2).

    Rows are links (interior + access), columns are OD pairs; entry
    [(l, p)] is 1 when pair [p]'s path crosses link [l].  The ingress
    access link of node [n] carries every pair sourced at [n] and the
    egress link of [m] every pair destined to [m], so the link-load
    vector [R s] contains the node totals [te(n)], [tx(m)] alongside the
    interior loads. *)

type t = {
  topo : Topology.t;
  matrix : Tmest_linalg.Csr.t;  (** L x P, 0/1 *)
  paths : int list array;  (** per OD pair, interior link ids *)
}

(** [of_paths topo paths] builds the routing matrix from per-pair
    interior paths (as produced by {!Lsp.paths}).
    @raise Invalid_argument if a path's links do not form a walk from the
    pair's source to its destination. *)
val of_paths : Topology.t -> int list array -> t

(** [shortest_path topo] routes every pair on the plain IGP shortest
    path. *)
val shortest_path : Topology.t -> t

(** [without_links topo ~failed] routes every pair on the shortest path
    avoiding the interior links in [failed] — the post-failure (or
    post-weight-change) routing the IGP converges to — or [None] if the
    failures disconnect some pair.  Used by the route-change and
    fault-injection machinery to build the {e fresh} routing whose loads
    an estimator holding a stale [R] would observe. *)
val without_links : Topology.t -> failed:int list -> t option

(** [cspf_mesh topo ~bandwidths] sets up an LSP full mesh (see
    {!Lsp.mesh}) and extracts its routing. *)
val cspf_mesh : Topology.t -> bandwidths:Tmest_linalg.Vec.t -> t

(** [ecmp topo] routes every pair over *all* of its equal-cost shortest
    paths with per-hop equal splitting (the OSPF/IS-IS ECMP behaviour),
    producing a fractional routing matrix (paper Section 3.1: "the
    routing matrix may easily be transformed ... by allowing fractional
    values").  [paths] holds one representative shortest path per pair. *)
val ecmp : Topology.t -> t

(** [link_loads t s] is [R s]: the exact link loads induced by demand
    vector [s]. *)
val link_loads : t -> Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t

(** [dense t] is [R] as a dense matrix (small networks / solvers that
    need dense access). *)
val dense : t -> Tmest_linalg.Mat.t

(** [num_pairs t] and [num_links t]. *)
val num_pairs : t -> int

val num_links : t -> int

(** [ingress_row t n] / [egress_row t n] are the row indices carrying
    node [n]'s total ingress/egress traffic. *)
val ingress_row : t -> int -> int

val egress_row : t -> int -> int

(** [interior_rows t] is the list of interior-link row indices. *)
val interior_rows : t -> int list
