module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Csr = Tmest_linalg.Csr

type t = {
  topo : Topology.t;
  matrix : Csr.t;
  paths : int list array;
}

let validate_path topo ~src ~dst path =
  let current = ref src in
  List.iter
    (fun link_id ->
      if link_id < 0 || link_id >= Topology.num_links topo then
        invalid_arg "Routing: link id out of range";
      let l = topo.Topology.links.(link_id) in
      if l.Topology.lkind <> Topology.Interior then
        invalid_arg "Routing: path uses a non-interior link";
      if l.Topology.src <> !current then
        invalid_arg "Routing: path is not a contiguous walk";
      current := l.Topology.dst)
    path;
  if !current <> dst then invalid_arg "Routing: path does not reach dst"

let of_paths topo paths =
  let n = Topology.num_nodes topo in
  let p = Odpairs.count n in
  if Array.length paths <> p then
    invalid_arg "Routing.of_paths: need one path per OD pair";
  let entries = ref [] in
  Odpairs.iter ~nodes:n (fun pair src dst ->
      validate_path topo ~src ~dst paths.(pair);
      entries := (Topology.ingress_link topo src, pair, 1.) :: !entries;
      entries := (Topology.egress_link topo dst, pair, 1.) :: !entries;
      List.iter
        (fun link_id -> entries := (link_id, pair, 1.) :: !entries)
        paths.(pair));
  let matrix =
    Csr.of_triplets ~rows:(Topology.num_links topo) ~cols:p !entries
  in
  { topo; matrix; paths }

let shortest_path topo =
  let n = Topology.num_nodes topo in
  let paths = Array.make (Odpairs.count n) [] in
  for src = 0 to n - 1 do
    let _, parent = Dijkstra.tree topo ~src in
    for dst = 0 to n - 1 do
      if dst <> src then begin
        match Dijkstra.path_of_tree topo parent ~src ~dst with
        | Some path -> paths.(Odpairs.index ~nodes:n ~src ~dst) <- path
        | None ->
            invalid_arg
              (Printf.sprintf "Routing.shortest_path: %d unreachable from %d"
                 dst src)
      end
    done
  done;
  of_paths topo paths

let without_links topo ~failed =
  let usable l = not (List.mem l.Topology.link_id failed) in
  let n = Topology.num_nodes topo in
  let paths = Array.make (Odpairs.count n) [] in
  let ok = ref true in
  for src = 0 to n - 1 do
    let _, parent = Dijkstra.tree ~usable topo ~src in
    for dst = 0 to n - 1 do
      if dst <> src then begin
        match Dijkstra.path_of_tree topo parent ~src ~dst with
        | Some path -> paths.(Odpairs.index ~nodes:n ~src ~dst) <- path
        | None -> ok := false
      end
    done
  done;
  if !ok then Some (of_paths topo paths) else None

let cspf_mesh topo ~bandwidths =
  let cspf = Cspf.create topo in
  let lsps = Lsp.mesh cspf ~bandwidths in
  of_paths topo (Lsp.paths lsps)

(* Per-destination reverse shortest-path distances over interior links. *)
let distances_to topo ~dst =
  let n = Topology.num_nodes topo in
  let dist = Array.make n infinity in
  dist.(dst) <- 0.;
  let module Pq = Set.Make (struct
    type t = float * int

    let compare = compare
  end) in
  let queue = ref (Pq.singleton (0., dst)) in
  let visited = Array.make n false in
  (* Incoming interior links per node. *)
  let incoming = Array.make n [] in
  Array.iter
    (fun l ->
      if l.Topology.lkind = Topology.Interior then
        incoming.(l.Topology.dst) <- l :: incoming.(l.Topology.dst))
    topo.Topology.links;
  while not (Pq.is_empty !queue) do
    let ((_, v) as key) = Pq.min_elt !queue in
    queue := Pq.remove key !queue;
    if not visited.(v) then begin
      visited.(v) <- true;
      List.iter
        (fun l ->
          let u = l.Topology.src in
          let nd = dist.(v) +. l.Topology.metric in
          if nd < dist.(u) then begin
            dist.(u) <- nd;
            queue := Pq.add (nd, u) !queue
          end)
        incoming.(v)
    end
  done;
  dist

let ecmp topo =
  let n = Topology.num_nodes topo in
  let p = Odpairs.count n in
  let eps = 1e-9 in
  let entries = ref [] in
  let paths = Array.make p [] in
  for dst = 0 to n - 1 do
    let dist = distances_to topo ~dst in
    (* Equal-cost next-hop links per node towards [dst]. *)
    let dag = Array.make n [] in
    Array.iter
      (fun l ->
        if l.Topology.lkind = Topology.Interior then begin
          let u = l.Topology.src and v = l.Topology.dst in
          if
            Float.is_finite dist.(u)
            && abs_float (dist.(u) -. (l.Topology.metric +. dist.(v))) < eps
          then dag.(u) <- l :: dag.(u)
        end)
      topo.Topology.links;
    let dag = Array.map List.rev dag in
    (* Node processing order: decreasing distance to dst. *)
    let order = Array.init n (fun i -> i) in
    Array.sort (fun a b -> compare dist.(b) dist.(a)) order;
    for src = 0 to n - 1 do
      if src <> dst then begin
        if not (Float.is_finite dist.(src)) then
          invalid_arg "Routing.ecmp: destination unreachable";
        let pair = Odpairs.index ~nodes:n ~src ~dst in
        (* Per-hop equal splitting of one unit of demand. *)
        let flow = Array.make n 0. in
        flow.(src) <- 1.;
        Array.iter
          (fun u ->
            if u <> dst && flow.(u) > 0. then begin
              let next = dag.(u) in
              let share = flow.(u) /. float_of_int (List.length next) in
              List.iter
                (fun l ->
                  entries := (l.Topology.link_id, pair, share) :: !entries;
                  flow.(l.Topology.dst) <- flow.(l.Topology.dst) +. share)
                next
            end)
          order;
        entries := (Topology.ingress_link topo src, pair, 1.) :: !entries;
        entries := (Topology.egress_link topo dst, pair, 1.) :: !entries;
        (* Representative path: lowest-link-id next hop at each node. *)
        let rec walk u acc =
          if u = dst then List.rev acc
          else begin
            match dag.(u) with
            | [] -> invalid_arg "Routing.ecmp: broken DAG"
            | l :: _ -> walk l.Topology.dst (l.Topology.link_id :: acc)
          end
        in
        paths.(pair) <- walk src []
      end
    done
  done;
  let matrix =
    Csr.of_triplets ~rows:(Topology.num_links topo) ~cols:p !entries
  in
  { topo; matrix; paths }

let link_loads t s = Csr.matvec t.matrix s
let dense t = Csr.to_dense t.matrix
let num_pairs t = Csr.cols t.matrix
let num_links t = Csr.rows t.matrix
let ingress_row t n = Topology.ingress_link t.topo n
let egress_row t n = Topology.egress_link t.topo n

let interior_rows t =
  List.map
    (fun l -> l.Topology.link_id)
    (Topology.interior_links t.topo)
