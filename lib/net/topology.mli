(** Backbone topology model: PoPs connected by directed links.

    Each PoP has an explicit access-ingress and access-egress link (the
    [e(n)] and [x(m)] of the paper's Section 3.1), so a routing matrix
    over all links carries the node-total rows the gravity model needs.
    Interior links connect distinct PoPs and carry transit traffic. *)

type node_kind = Access | Peering

type node = {
  node_id : int;
  name : string;
  kind : node_kind;
  lat : float;  (** degrees, for distance-based IGP metrics *)
  lon : float;
}

type link_kind =
  | Interior  (** a core link between two PoPs *)
  | Ingress of int  (** the access link over which node [n]'s demand enters *)
  | Egress of int  (** the access link over which node [m]'s demand exits *)

type link = {
  link_id : int;
  src : int;  (** source PoP ([-1] for access links' outside end) *)
  dst : int;  (** destination PoP ([-1] for egress links' outside end) *)
  capacity : float;  (** bits per second *)
  metric : float;  (** IGP metric used by (C)SPF *)
  lkind : link_kind;
}

type t = {
  net_name : string;
  nodes : node array;
  links : link array;
  outgoing : (int * int) list array;
      (** per node: [(link_id, neighbour)] over interior links *)
}

(** [num_nodes t], [num_links t] (all links, including access links). *)
val num_nodes : t -> int

val num_links : t -> int

(** [num_interior_links t] counts only core links. *)
val num_interior_links : t -> int

(** [ingress_link t n] / [egress_link t n] are the access-link ids of
    node [n]. *)
val ingress_link : t -> int -> int

val egress_link : t -> int -> int

(** [interior_links t] lists core links in id order. *)
val interior_links : t -> link list

(** [build ~name nodes edges] assembles a topology from PoPs and
    *bidirectional* core edges [(a, b, capacity, metric)]; each edge
    yields two directed links, and every node gets ingress/egress access
    links with capacity equal to the sum of its interior capacity.
    @raise Invalid_argument on out-of-range endpoints, self-loops, or
    duplicate edges. *)
val build :
  name:string ->
  node array ->
  (int * int * float * float) list ->
  t

(** [generate ~name ~seed ~nodes ~directed_links cities] synthesizes a
    connected backbone over the given city list with exactly
    [directed_links] total directed links ([2*nodes] of which are access
    links).  The core is a ring (for connectivity) plus
    random geographically-biased shortcut edges; capacities are drawn
    from standard OC-48/OC-192/OC-768 tiers; metrics follow great-circle
    distance.  [directed_links - 2*nodes] must be even, at least
    [2*nodes], and at most [nodes*(nodes-1)].
    @raise Invalid_argument if the link budget is not realizable. *)
val generate :
  name:string ->
  seed:int ->
  nodes:int ->
  directed_links:int ->
  (string * float * float) array ->
  t

(** [synthetic_cities ~n ~seed] places [n] synthetic PoPs for scale
    studies beyond the paper's city tables: ≈[sqrt n] regional hubs on a
    jittered continental grid (named [hubNN], indices [0..h-1]) and the
    remaining PoPs scattered around their cluster hub (named [popNNN]).
    Deterministic in [seed].
    @raise Invalid_argument when [n < 3]. *)
val synthetic_cities : n:int -> seed:int -> (string * float * float) array

(** [generate_hierarchical ~name ~seed ~pops ()] synthesizes a
    [pops]-PoP hierarchical backbone: a 40 Gb/s hub ring (with chord
    shortcuts once the ring has ≥ 5 hubs) over [synthetic_cities] hubs,
    every leaf PoP dual-homed to its two nearest hubs at 10 Gb/s.
    Metrics follow great-circle distance as in [generate]; the result is
    strongly connected by construction.  Intended for the 100–500-PoP
    sparse-mode scaling studies. *)
val generate_hierarchical : name:string -> seed:int -> pops:int -> unit -> t

(** [is_connected t] checks strong connectivity over interior links. *)
val is_connected : t -> bool

(** [set_node_kind t n kind] returns a topology with node [n]'s kind
    replaced (used to mark peering PoPs for the generalized gravity
    model). *)
val set_node_kind : t -> int -> node_kind -> t

(** [european_cities] and [american_cities] are the PoP name/coordinate
    tables used for the paper-scale networks (12 and 25 PoPs). *)
val european_cities : (string * float * float) array

val american_cities : (string * float * float) array

val pp : Format.formatter -> t -> unit
