(** Fixed-size domain pool for fan-out parallelism.

    The evaluation pipeline is embarrassingly parallel — independent
    5-minute snapshots, independent estimation methods, independent
    networks, row-partitioned matrix products — and this module spreads
    that work across OCaml 5 domains using only the stdlib
    ([Domain]/[Atomic]/[Mutex]/[Condition]; no domainslib).

    Determinism contract:
    + {!parallel_for} and {!map} must only be used for tasks whose
      results are independent of execution order (each task writes its
      own slot); their results are then identical at every pool size.
    + {!reduce} always combines per-chunk partial results in chunk-index
      order, and the chunk layout depends only on the input length —
      never on the pool size or on scheduling — so for a deterministic
      [f] its result is bit-identical at every pool size, including the
      sequential one.
    + {!iter_chunks} exposes the chunk index so callers that thread
      state through a chunk (warm-start chains) can key that state by
      chunk, keeping results scheduling-independent at a fixed [jobs].

    A pool of size 1 spawns no domains and runs everything in the
    caller; the parallel paths are exact supersets of the sequential
    ones, not separate code. *)

type t

(** [create ~jobs] is a pool of [max 1 jobs] participants: the caller
    plus [jobs - 1] worker domains spawned immediately.  Every pool is
    registered for shutdown at exit, so forgetting {!shutdown} never
    blocks process termination. *)
val create : jobs:int -> t

(** Number of participants (caller + workers), [>= 1]. *)
val size : t -> int

(** [sink t] is the pool's trace sink ({!Tmest_obs.Obs.null} unless a
    driver installed one). *)
val sink : t -> Tmest_obs.Obs.sink

(** [set_sink t s] routes the pool's trace events — queue-depth counter
    samples on submission, a [pool.parallel_for] span per fan-out, a
    [pool.slot] span per participating domain and a [pool.chunk] span
    per {!iter_chunks} chunk — to [s]. *)
val set_sink : t -> Tmest_obs.Obs.sink -> unit

(** [shutdown t] drains queued tasks, joins the worker domains and
    makes further submissions run sequentially in the caller.
    Idempotent. *)
val shutdown : t -> unit

(** [default_jobs ()] is the [TMEST_JOBS] environment variable if set
    to a positive integer, else [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** The process-wide shared pool, created on first use with
    {!default_jobs}. *)
val default : unit -> t

(** [set_default_jobs jobs] replaces the default pool with one of
    [jobs] participants (shutting the previous one down).  Drivers call
    this once after parsing [--jobs]. *)
val set_default_jobs : int -> unit

(** [parallel_for t ~n body] runs [body i] for [i = 0 .. n - 1], work
    distributed dynamically over the pool; the caller participates and
    the call returns only once every task has finished.  The first
    exception raised by any task is re-raised in the caller (remaining
    tasks still run to completion).  Safe to nest: an inner
    [parallel_for] issued from a task makes progress on the caller's
    own domain even when all workers are busy. *)
val parallel_for : t -> n:int -> (int -> unit) -> unit

(** [map t f a] is [Array.map f a], elements computed on the pool.
    Result slots are written independently, so the output is identical
    at every pool size. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [iter_chunks t ~n f] partitions [0 .. n - 1] into
    [min (size t) n] contiguous chunks and runs [f ~chunk ~lo ~hi]
    (half-open [\[lo, hi)]) for each, chunks distributed over the pool.
    The layout is a pure function of [(size t, n)]. *)
val iter_chunks : t -> n:int -> (chunk:int -> lo:int -> hi:int -> unit) -> unit

(** [chunks_for t ~n ~cost] is the tuned chunk count for a loop of [n]
    items whose total cost is [cost] units (one unit ≈ one
    multiply-add): enough chunks to feed every slot a few times over
    when the loop is heavy, one chunk when the loop is too cheap to be
    worth a dispatch.  Pure function of [(size t, n, cost)]; always in
    [\[1, n\]] (and [1] whenever [size t = 1]). *)
val chunks_for : t -> n:int -> cost:int -> int

(** [iter_grained t ~n ~cost f] partitions [0 .. n - 1] into
    {!chunks_for} contiguous chunks and runs [f ~lo ~hi] for each; a
    single-chunk layout runs inline in the caller with no dispatch.
    Unlike {!iter_chunks} the layout depends on [cost], so this is only
    for bodies that are bit-identical under {e any} partition —
    row-partitioned kernels where each index owns its output slot — not
    for chunk-keyed state threading (use {!iter_chunks}). *)
val iter_grained : t -> n:int -> cost:int -> (lo:int -> hi:int -> unit) -> unit

(** [reduce t ~f ~combine a] is
    [f a.(0) ⊕ f a.(1) ⊕ ... ⊕ f a.(n-1)] (with [⊕ = combine]),
    computed as per-chunk partials combined in chunk order; [None] on
    the empty array.  The chunk layout depends only on [Array.length a],
    so the grouping — hence the result, even for non-associative
    floating-point [combine] — is bit-identical at every pool size. *)
val reduce : t -> f:('a -> 'b) -> combine:('b -> 'b -> 'b) -> 'a array -> 'b option

(** Mutex-guarded one-shot memoization — a domain-safe replacement for
    [Lazy.t] in values shared across pool tasks ([Lazy.force] raises on
    concurrent forcing from several domains). *)
module Once : sig
  type 'a t

  val make : (unit -> 'a) -> 'a t

  (** First caller computes (others wait); later calls return the memo.
      If the computation raised, every force re-raises that exception. *)
  val force : 'a t -> 'a
end
