module Obs = Tmest_obs.Obs

type t = {
  size : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work : Condition.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
  mutable sink : Obs.sink;
      (* trace destination for queue-depth samples, per-slot utilization
         spans and chunk timing; [Obs.null] costs one branch per probe *)
}

(* Workers block on [work] until a task arrives or the pool closes;
   [shutdown] drains the queue before the workers exit so no submitted
   task is dropped. *)
let worker_loop t =
  let rec next () =
    if not (Queue.is_empty t.queue) then begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.lock;
      (* Tasks wrap their own exception handling ([parallel_for]
         funnels failures to the submitting caller); a stray exception
         must not kill the worker. *)
      (try task () with _ -> ());
      Mutex.lock t.lock;
      next ()
    end
    else if t.closed then ()
    else begin
      Condition.wait t.work t.lock;
      next ()
    end
  in
  Mutex.lock t.lock;
  next ();
  Mutex.unlock t.lock

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.work;
  let domains = t.domains in
  t.domains <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join domains

let create ~jobs =
  let size = Stdlib.max 1 jobs in
  let t =
    {
      size;
      queue = Queue.create ();
      lock = Mutex.create ();
      work = Condition.create ();
      closed = false;
      domains = [];
      sink = Obs.null;
    }
  in
  t.domains <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  (* A pool whose workers idle in [Condition.wait] would block process
     exit (the runtime joins live domains); joining here is cheap and
     makes leaked pools harmless. *)
  if size > 1 then Stdlib.at_exit (fun () -> shutdown t);
  t

let size t = t.size
let sink t = t.sink
let set_sink t s = t.sink <- s

let submit t task =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    task ()
  end
  else begin
    Queue.push task t.queue;
    if t.sink.Obs.enabled then
      Obs.counter t.sink "pool.queue_depth"
        (float_of_int (Queue.length t.queue));
    Condition.signal t.work;
    Mutex.unlock t.lock
  end

(* Batched dispatch: [copies] pushes of the same task under one lock
   acquisition with one wake-up, instead of [copies] lock/signal
   round-trips.  This is the fan-out fast path — [parallel_for] seeds
   every worker with the same participate closure, so the per-task
   closure allocation is hoisted out of the dispatch loop by
   construction. *)
let submit_batch t ~copies task =
  if copies = 1 then submit t task
  else if copies > 1 then begin
    Mutex.lock t.lock;
    if t.closed then begin
      Mutex.unlock t.lock;
      for _ = 1 to copies do
        task ()
      done
    end
    else begin
      for _ = 1 to copies do
        Queue.push task t.queue
      done;
      if t.sink.Obs.enabled then
        Obs.counter t.sink "pool.queue_depth"
          (float_of_int (Queue.length t.queue));
      Condition.broadcast t.work;
      Mutex.unlock t.lock
    end
  end

(* ------------------------------------------------------------------ *)
(* Default pool                                                        *)
(* ------------------------------------------------------------------ *)

let default_jobs () =
  match Sys.getenv_opt "TMEST_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let default_lock = Mutex.create ()
let default_pool = ref None

let default () =
  Mutex.lock default_lock;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create ~jobs:(default_jobs ()) in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_lock;
  p

let set_default_jobs jobs =
  Mutex.lock default_lock;
  let old = !default_pool in
  default_pool := Some (create ~jobs);
  Mutex.unlock default_lock;
  Option.iter shutdown old

(* ------------------------------------------------------------------ *)
(* Fan-out primitives                                                  *)
(* ------------------------------------------------------------------ *)

exception Task_failure of exn * Printexc.raw_backtrace

let parallel_for t ~n body =
  if n <= 0 then ()
  else if t.size = 1 || n = 1 then
    for i = 0 to n - 1 do
      body i
    done
  else begin
    (* Dynamic scheduling over an atomic index: each participant
       (caller included) claims the next task until the range drains.
       The caller then waits for in-flight tasks, so no task outlives
       the call. *)
    let sink = t.sink in
    let traced = sink.Obs.enabled in
    if traced then
      Obs.span_begin sink "pool.parallel_for"
        ~args:[ ("n", Obs.Int n); ("jobs", Obs.Int t.size) ];
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let failure = Atomic.make None in
    let wait_lock = Mutex.create () in
    let all_done = Condition.create () in
    let rec run_tasks () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (try body i
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set failure None (Some (e, bt))));
        if Atomic.fetch_and_add completed 1 = n - 1 then begin
          Mutex.lock wait_lock;
          Condition.broadcast all_done;
          Mutex.unlock wait_lock
        end;
        run_tasks ()
      end
    in
    (* Per-slot utilization: each participant (workers and the caller)
       wraps its claim loop in a span on its own domain, so a timeline
       groups busy time by thread id. *)
    let participate () =
      if traced then Obs.span sink "pool.slot" run_tasks else run_tasks ()
    in
    submit_batch t ~copies:(Stdlib.min (t.size - 1) (n - 1)) participate;
    participate ();
    Mutex.lock wait_lock;
    while Atomic.get completed < n do
      Condition.wait all_done wait_lock
    done;
    Mutex.unlock wait_lock;
    if traced then Obs.span_end sink "pool.parallel_for";
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace (Task_failure (e, bt)) bt
    | None -> ()
  end

(* Unwrap so callers observe the original exception. *)
let parallel_for t ~n body =
  try parallel_for t ~n body
  with Task_failure (e, bt) -> Printexc.raise_with_backtrace e bt

let map t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for t ~n (fun i -> out.(i) <- Some (f a.(i)));
    Array.map
      (function Some v -> v | None -> assert false (* every slot written *))
      out
  end

let chunk_bounds ~chunks ~n c = (c * n / chunks, (c + 1) * n / chunks)

let iter_chunks t ~n f =
  if n > 0 then begin
    let chunks = Stdlib.min t.size n in
    let sink = t.sink in
    parallel_for t ~n:chunks (fun c ->
        let lo, hi = chunk_bounds ~chunks ~n c in
        if sink.Obs.enabled then
          Obs.span sink "pool.chunk"
            ~args:
              [ ("chunk", Obs.Int c); ("lo", Obs.Int lo); ("hi", Obs.Int hi) ]
            (fun () -> f ~chunk:c ~lo ~hi)
        else f ~chunk:c ~lo ~hi)
  end

(* ------------------------------------------------------------------ *)
(* Cost-weighted grain model                                           *)
(* ------------------------------------------------------------------ *)

(* Target work per chunk, in caller-supplied cost units (one unit ≈ one
   multiply-add).  Dispatching a chunk costs on the order of a few
   microseconds (queue push + wake-up + atomic claims), so a chunk needs
   tens of thousands of flops before that overhead disappears into the
   work itself. *)
let grain_cost = 32_768

(* Upper bound on oversplitting: a few chunks per slot lets the dynamic
   scheduler absorb uneven chunk costs without drowning in dispatch. *)
let max_chunks_per_slot = 4

let chunks_for t ~n ~cost =
  if n <= 1 || t.size = 1 || cost <= 0 then 1
  else begin
    let by_cost = cost / grain_cost in
    let cap = t.size * max_chunks_per_slot in
    Stdlib.max 1 (Stdlib.min n (Stdlib.min cap by_cost))
  end

let iter_grained t ~n ~cost f =
  if n > 0 then begin
    let chunks = chunks_for t ~n ~cost in
    if chunks = 1 then f ~lo:0 ~hi:n
    else
      parallel_for t ~n:chunks (fun c ->
          let lo, hi = chunk_bounds ~chunks ~n c in
          f ~lo ~hi)
  end

(* Chunk layout for [reduce] depends on the input length only, so the
   combine tree — and therefore the floating-point result — is the same
   at every pool size. *)
let reduce_chunks n = Stdlib.min n 64

let reduce t ~f ~combine a =
  let n = Array.length a in
  if n = 0 then None
  else begin
    let chunks = reduce_chunks n in
    let partial = Array.make chunks None in
    parallel_for t ~n:chunks (fun c ->
        let lo, hi = chunk_bounds ~chunks ~n c in
        let acc = ref (f a.(lo)) in
        for i = lo + 1 to hi - 1 do
          acc := combine !acc (f a.(i))
        done;
        partial.(c) <- Some !acc);
    let acc = ref None in
    Array.iter
      (fun p ->
        match (!acc, p) with
        | None, p -> acc := p
        | Some x, Some y -> acc := Some (combine x y)
        | Some _, None -> assert false (* every chunk is non-empty *))
      partial;
    !acc
  end

(* ------------------------------------------------------------------ *)
(* One-shot memoization                                                *)
(* ------------------------------------------------------------------ *)

module Once = struct
  type 'a state =
    | Pending of (unit -> 'a)
    | Done of 'a
    | Failed of exn

  type 'a t = { mutable state : 'a state; lock : Mutex.t }

  let make f = { state = Pending f; lock = Mutex.create () }

  let force t =
    (* Fast path without the lock is unsound for non-atomic record
       fields; the lock is uncontended after the first force and these
       values are forced far from any hot loop. *)
    Mutex.lock t.lock;
    let r =
      match t.state with
      | Done v -> Ok v
      | Failed e -> Error e
      | Pending f -> (
          match f () with
          | v ->
              t.state <- Done v;
              Ok v
          | exception e ->
              t.state <- Failed e;
              Error e)
    in
    Mutex.unlock t.lock;
    match r with Ok v -> v | Error e -> raise e
end
