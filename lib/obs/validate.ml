(* Schema validation for trace files.  Used by [test_obs] under `dune
   runtest` and by the [trace_check] executable CI runs against the
   CLI's --trace output.

   Beyond per-record shape, two structural properties are enforced:
   timestamps are globally monotone non-decreasing, and span begin/end
   events balance as a properly nested stack per emitting domain. *)

type summary = {
  events : int;
  spans : int;
  counters : int;
  iters : int;
  max_depth : int;
  solvers : string list;
}

let pp_summary ppf s =
  Format.fprintf ppf
    "%d events: %d spans (max depth %d), %d counters, %d iteration records \
     from [%s]"
    s.events s.spans s.max_depth s.counters s.iters
    (String.concat "; " s.solvers)

type checker = {
  mutable n : int;
  mutable spans : int;
  mutable counters : int;
  mutable iters : int;
  mutable max_depth : int;
  mutable last_ts : float;
  mutable solvers : string list;
  stacks : (int, string list) Hashtbl.t;  (* open spans per tid *)
}

let new_checker () =
  {
    n = 0;
    spans = 0;
    counters = 0;
    iters = 0;
    max_depth = 0;
    last_ts = neg_infinity;
    solvers = [];
    stacks = Hashtbl.create 7;
  }

let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

let field name conv where j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> fail "%s: missing or mistyped field %S" where name

let ( let* ) = Result.bind

let check_ts c where ts =
  if ts < c.last_ts then
    fail "%s: timestamp %g goes backwards (previous %g)" where ts c.last_ts
  else begin
    c.last_ts <- ts;
    Ok ()
  end

let begin_span c ~tid name =
  let stack = Option.value ~default:[] (Hashtbl.find_opt c.stacks tid) in
  let stack = name :: stack in
  Hashtbl.replace c.stacks tid stack;
  c.spans <- c.spans + 1;
  c.max_depth <- Stdlib.max c.max_depth (List.length stack)

let end_span c ~tid ~where name =
  match Hashtbl.find_opt c.stacks tid with
  | Some (top :: rest) when String.equal top name ->
      Hashtbl.replace c.stacks tid rest;
      Ok ()
  | Some (top :: _) ->
      fail "%s: span_end %S does not match open span %S (tid %d)" where name
        top tid
  | Some [] | None -> fail "%s: span_end %S with no open span (tid %d)" where
                        name tid

let note_solver c solver =
  if not (List.mem solver c.solvers) then c.solvers <- solver :: c.solvers

(* One record in the common (ts, tid, kind) vocabulary shared by both
   encodings. *)
let check_record c ~where ~ts ~tid j kind =
  c.n <- c.n + 1;
  let* () = check_ts c where ts in
  match kind with
  | "span_begin" ->
      let* name = field "name" Json.to_str where j in
      begin_span c ~tid name;
      Ok ()
  | "span_end" ->
      let* name = field "name" Json.to_str where j in
      end_span c ~tid ~where name
  | "counter" ->
      let* _name = field "name" Json.to_str where j in
      let* _v =
        match Json.member "value" j with
        | Some (Json.Num v) -> Ok v
        | Some Json.Null -> Ok nan
        | _ -> fail "%s: counter without numeric value" where
      in
      c.counters <- c.counters + 1;
      Ok ()
  | "iter" ->
      let* solver = field "solver" Json.to_str where j in
      let* it = field "iter" Json.to_int where j in
      let* _ =
        match Json.member "restart" j with
        | Some (Json.Bool _) -> Ok ()
        | _ -> fail "%s: iter without boolean restart" where
      in
      (* objective/residual/step must be present (numeric or null-NaN). *)
      let* () =
        List.fold_left
          (fun acc f ->
            let* () = acc in
            match Json.member f j with
            | Some (Json.Num _) | Some Json.Null -> Ok ()
            | _ -> fail "%s: iter field %S missing or mistyped" where f)
          (Ok ())
          [ "objective"; "residual"; "step" ]
      in
      if it < 1 then fail "%s: iteration index %d < 1" where it
      else begin
        note_solver c solver;
        c.iters <- c.iters + 1;
        Ok ()
      end
  | other -> fail "%s: unknown record type %S" where other

let finish c =
  let open_spans =
    Hashtbl.fold
      (fun tid stack acc ->
        if stack = [] then acc
        else Printf.sprintf "tid %d: %s" tid (String.concat " > " stack) :: acc)
      c.stacks []
  in
  if open_spans <> [] then
    fail "unclosed spans at end of trace (%s)" (String.concat "; " open_spans)
  else
    Ok
      {
        events = c.n;
        spans = c.spans;
        counters = c.counters;
        iters = c.iters;
        max_depth = c.max_depth;
        solvers = List.sort compare c.solvers;
      }

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)
(* ------------------------------------------------------------------ *)

let jsonl contents =
  let lines =
    List.filteri
      (fun _ l -> String.trim l <> "")
      (String.split_on_char '\n' contents)
  in
  match lines with
  | [] -> fail "empty trace"
  | header :: rest ->
      let* h =
        match Json.of_string header with
        | j -> Ok j
        | exception Json.Parse_error m -> fail "header: %s" m
      in
      let* kind = field "type" Json.to_str "header" h in
      let* () =
        if kind <> "header" then fail "first record is %S, not a header" kind
        else Ok ()
      in
      let* s = field "schema" Json.to_str "header" h in
      let* () =
        if s <> Recorder.schema then
          fail "schema %S, expected %S" s Recorder.schema
        else Ok ()
      in
      let c = new_checker () in
      let* () =
        List.fold_left
          (fun acc (i, line) ->
            let* () = acc in
            let where = Printf.sprintf "line %d" (i + 2) in
            let* j =
              match Json.of_string line with
              | j -> Ok j
              | exception Json.Parse_error m -> fail "%s: %s" where m
            in
            let* kind = field "type" Json.to_str where j in
            let* ts = field "ts" Json.to_float where j in
            let* tid = field "tid" Json.to_int where j in
            check_record c ~where ~ts ~tid j kind)
          (Ok ())
          (List.mapi (fun i l -> (i, l)) rest)
      in
      finish c

(* ------------------------------------------------------------------ *)
(* Chrome trace format                                                 *)
(* ------------------------------------------------------------------ *)

let chrome contents =
  let* j =
    match Json.of_string contents with
    | j -> Ok j
    | exception Json.Parse_error m -> fail "trace: %s" m
  in
  let* s = field "schema" Json.to_str "trace" j in
  let* () =
    if s <> Recorder.schema then fail "schema %S, expected %S" s Recorder.schema
    else Ok ()
  in
  let* evs = field "traceEvents" Json.to_list "trace" j in
  let c = new_checker () in
  let* () =
    List.fold_left
      (fun acc (i, ev) ->
        let* () = acc in
        let where = Printf.sprintf "traceEvents[%d]" i in
        let* ph = field "ph" Json.to_str where ev in
        let* ts = field "ts" Json.to_float where ev in
        let* tid = field "tid" Json.to_int where ev in
        let* name = field "name" Json.to_str where ev in
        c.n <- c.n + 1;
        let* () = check_ts c where ts in
        match ph with
        | "B" ->
            begin_span c ~tid name;
            Ok ()
        | "E" -> end_span c ~tid ~where name
        | "C" -> (
            c.counters <- c.counters + 1;
            (* Solver-iteration counters carry an [iter] arg. *)
            match Option.bind (Json.member "args" ev) (Json.member "iter") with
            | Some _ ->
                note_solver c name;
                c.iters <- c.iters + 1;
                Ok ()
            | None -> Ok ())
        | other -> fail "%s: unsupported phase %S" where other)
      (Ok ())
      (List.mapi (fun i e -> (i, e)) evs)
  in
  finish c

let file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  if Filename.check_suffix path ".jsonl" then jsonl contents
  else chrome contents
