(* In-memory trace recorder: a domain-safe sink that appends events to
   a list, plus the two on-disk encodings.

   Timestamps are rebased to the recorder's creation instant before
   serialization: rebased nanoseconds fit a double exactly (raw epoch
   nanoseconds do not), so the JSON round-trips without losing the
   ordering the validator checks. *)

type stamped = { t_ns : int64; tid : int; ev : Obs.event }

type t = {
  lock : Mutex.t;
  mutable rev_events : stamped list;
  mutable count : int;
  mutable meta : (string * string) list;
  t0 : int64;
}

let create ?(meta = []) () =
  {
    lock = Mutex.create ();
    rev_events = [];
    count = 0;
    meta;
    t0 = Obs.Clock.now_ns ();
  }

let set_meta t key value =
  Mutex.protect t.lock (fun () ->
      t.meta <- (key, value) :: List.remove_assoc key t.meta)

let meta t = Mutex.protect t.lock (fun () -> List.rev t.meta)

let sink t =
  Obs.make_sink (fun ~t_ns ~tid ev ->
      Mutex.protect t.lock (fun () ->
          t.rev_events <- { t_ns; tid; ev } :: t.rev_events;
          t.count <- t.count + 1))

let length t = Mutex.protect t.lock (fun () -> t.count)

let events t =
  let rev = Mutex.protect t.lock (fun () -> t.rev_events) in
  let a = Array.of_list rev in
  let n = Array.length a in
  Array.init n (fun i ->
      let s = a.(n - 1 - i) in
      (s.t_ns, s.tid, s.ev))

let schema = "tmest-trace-1"

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)
(* ------------------------------------------------------------------ *)

let value_to_json = function
  | Obs.Int i -> Json.Num (float_of_int i)
  | Obs.Float x -> Json.Num x
  | Obs.String s -> Json.Str s
  | Obs.Bool b -> Json.Bool b

let args_to_json args =
  Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) args)

let rebase t t_ns = Int64.to_float (Int64.sub t_ns t.t0)

let event_json_at ~t0 { t_ns; tid; ev } =
  let ts = ("ts", Json.Num (Int64.to_float (Int64.sub t_ns t0))) in
  let tid = ("tid", Json.Num (float_of_int tid)) in
  match ev with
  | Obs.Span_begin { name; args } ->
      Json.Obj
        (("type", Json.Str "span_begin") :: ts :: tid
        :: ("name", Json.Str name)
        ::
        (if args = [] then [] else [ ("args", args_to_json args) ]))
  | Obs.Span_end { name } ->
      Json.Obj
        [ ("type", Json.Str "span_end"); ts; tid; ("name", Json.Str name) ]
  | Obs.Counter { name; value } ->
      Json.Obj
        [
          ("type", Json.Str "counter");
          ts;
          tid;
          ("name", Json.Str name);
          ("value", Json.Num value);
        ]
  | Obs.Iter { solver; iter; objective; residual; step; restart } ->
      Json.Obj
        [
          ("type", Json.Str "iter");
          ts;
          tid;
          ("solver", Json.Str solver);
          ("iter", Json.Num (float_of_int iter));
          ("objective", Json.Num objective);
          ("residual", Json.Num residual);
          ("step", Json.Num step);
          ("restart", Json.Bool restart);
        ]

let event_json t s = event_json_at ~t0:t.t0 s

let header_json_of meta =
  Json.Obj
    [
      ("type", Json.Str "header");
      ("schema", Json.Str schema);
      ("meta", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) meta));
    ]

let header_json t = header_json_of (meta t)

let to_jsonl t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Json.to_string (header_json t));
  Buffer.add_char buf '\n';
  Array.iter
    (fun (t_ns, tid, ev) ->
      Buffer.add_string buf (Json.to_string (event_json t { t_ns; tid; ev }));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace format                                                 *)
(* ------------------------------------------------------------------ *)

(* The about://tracing JSON object format: spans become B/E duration
   events, counters become C events, and solver iterations become C
   events named after the solver so the per-iteration series plot as
   counter tracks.  Timestamps are microseconds. *)
let chrome_event t { t_ns; tid; ev } =
  let us = rebase t t_ns /. 1e3 in
  let base ph name =
    [
      ("name", Json.Str name);
      ("ph", Json.Str ph);
      ("ts", Json.Num us);
      ("pid", Json.Num 1.);
      ("tid", Json.Num (float_of_int tid));
    ]
  in
  match ev with
  | Obs.Span_begin { name; args } ->
      Json.Obj
        (base "B" name
        @ if args = [] then [] else [ ("args", args_to_json args) ])
  | Obs.Span_end { name } -> Json.Obj (base "E" name)
  | Obs.Counter { name; value } ->
      Json.Obj
        (base "C" name @ [ ("args", Json.Obj [ ("value", Json.Num value) ]) ])
  | Obs.Iter { solver; iter; objective; residual; step; restart } ->
      Json.Obj
        (base "C" solver
        @ [
            ( "args",
              Json.Obj
                [
                  ("iter", Json.Num (float_of_int iter));
                  ("objective", Json.Num objective);
                  ("residual", Json.Num residual);
                  ("step", Json.Num step);
                  ("restart", Json.Bool restart);
                ] );
          ])

let to_chrome t =
  let evs =
    Array.to_list
      (Array.map
         (fun (t_ns, tid, ev) -> chrome_event t { t_ns; tid; ev })
         (events t))
  in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str schema);
         ("displayTimeUnit", Json.Str "ms");
         ( "otherData",
           Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) (meta t)) );
         ("traceEvents", Json.List evs);
       ])

let write_file t path =
  let contents =
    if Filename.check_suffix path ".jsonl" then to_jsonl t else to_chrome t
  in
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Live JSONL feed                                                     *)
(* ------------------------------------------------------------------ *)

module Live = struct
  type live = {
    lock : Mutex.t;
    oc : out_channel;
    t0 : int64;
    mutable count : int;
    mutable closed : bool;
  }

  type t = live

  let create ?(meta = []) path =
    let oc = open_out path in
    let t = { lock = Mutex.create (); oc; t0 = Obs.Clock.now_ns ();
              count = 0; closed = false } in
    (* The header goes out immediately: a consumer tailing the feed can
       parse it from line one, before any tick has run. *)
    output_string oc (Json.to_string (header_json_of meta));
    output_char oc '\n';
    flush oc;
    t

  let sink t =
    Obs.make_sink (fun ~t_ns ~tid ev ->
        Mutex.protect t.lock (fun () ->
            if not t.closed then begin
              output_string t.oc
                (Json.to_string (event_json_at ~t0:t.t0 { t_ns; tid; ev }));
              output_char t.oc '\n';
              (* One flush per event keeps the file a valid, current
                 JSONL stream at every instant — the point of a live
                 feed; the daemon emits a handful of events per
                 5-minute tick, so the cost is irrelevant. *)
              flush t.oc;
              t.count <- t.count + 1
            end))

  let length t = Mutex.protect t.lock (fun () -> t.count)

  let close t =
    Mutex.protect t.lock (fun () ->
        if not t.closed then begin
          t.closed <- true;
          flush t.oc;
          close_out t.oc
        end)
end
