(** In-memory trace recorder and its on-disk encodings.

    A recorder is a domain-safe {!Obs.sink} target: solver iterations
    emitted concurrently from pool workers interleave under one lock.
    Timestamps serialize rebased to the recorder's creation instant, so
    they are small, exact doubles and globally monotone. *)

type t

(** [create ()] makes an empty recorder; [meta] seeds the header
    key/value block (command line, network, job count, ...). *)
val create : ?meta:(string * string) list -> unit -> t

(** [set_meta t k v] adds or replaces one header entry. *)
val set_meta : t -> string -> string -> unit

(** Header entries, oldest first. *)
val meta : t -> (string * string) list

(** The sink that appends into this recorder. *)
val sink : t -> Obs.sink

(** Number of recorded events. *)
val length : t -> int

(** All events in emission order as [(t_ns, tid, event)]. *)
val events : t -> (int64 * int * Obs.event) array

(** Schema identifier written into both encodings
    (["tmest-trace-1"]). *)
val schema : string

(** One JSON object per line: a header line, then every event. *)
val to_jsonl : t -> string

(** Chrome trace-viewer JSON object ([traceEvents] array: B/E duration
    events for spans, C counter events for counters and solver
    iterations). *)
val to_chrome : t -> string

(** [write_file t path] writes {!to_jsonl} if [path] ends in [.jsonl],
    else {!to_chrome}. *)
val write_file : t -> string -> unit

(** Streaming JSONL writer for long-lived producers (the estimation
    daemon): the header line is written at {!Live.create} and every
    event is appended — and flushed — as it is emitted, so the file is
    a valid, schema-checkable [tmest-trace-1] stream at every instant
    and can be tailed while the producer runs.  Unlike {!t}, nothing is
    buffered in memory. *)
module Live : sig
  type t

  (** [create ?meta path] opens [path] (truncating) and writes the
      header line. *)
  val create : ?meta:(string * string) list -> string -> t

  (** The sink that appends to this feed; domain-safe. *)
  val sink : t -> Obs.sink

  (** Events written so far (excluding the header). *)
  val length : t -> int

  (** Flush and close the file; further events are dropped. *)
  val close : t -> unit
end
