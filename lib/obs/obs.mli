(** Solver observability: monotone clock, pluggable event sinks, and
    the span / counter / per-iteration vocabulary emitted by the
    estimation stack.

    The library is zero-dependency.  Every emission point is guarded by
    {!field:sink.enabled}; with the {!null} sink the entire subsystem
    costs one branch per probe and allocates nothing, so estimates are
    bit-identical whether or not observability is linked in. *)

module Clock : sig
  (** [set_source f] installs [f] (seconds, any epoch) as the raw time
      source.  The default is [Sys.time] (CPU seconds) so the library
      stays dependency-free; drivers that link [unix] should install
      [Unix.gettimeofday] for wall-clock spans. *)
  val set_source : (unit -> float) -> unit

  (** [now_ns ()] is the current time in nanoseconds, clamped against
      the last issued stamp: the returned sequence is globally monotone
      non-decreasing even across domains or a stepping source. *)
  val now_ns : unit -> int64
end

type value =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type event =
  | Span_begin of { name : string; args : (string * value) list }
      (** Start of a named region; spans nest per emitting domain. *)
  | Span_end of { name : string }
      (** End of the innermost open span with this name. *)
  | Counter of { name : string; value : float }
      (** Point sample of a named metric (cache hit totals, arena
          sizes, pool queue depths). *)
  | Iter of {
      solver : string;
      iter : int;
      objective : float;  (** [nan] when the solver cannot evaluate it *)
      residual : float;  (** solver-specific progress norm; [nan] if none *)
      step : float;  (** step size / trust parameter; [nan] if none *)
      restart : bool;  (** momentum restart (FISTA-family) *)
    }  (** One record per solver iteration. *)

(** A sink receives timestamped events from the emitting domain ([tid]
    is the domain id).  Implementations must be domain-safe: solver
    iterations on pool workers emit concurrently. *)
type sink = {
  enabled : bool;
      (** [false] only for {!null}: hot paths check this single field
          and skip event construction entirely. *)
  emit : t_ns:int64 -> tid:int -> event -> unit;
}

(** The no-op sink: disabled, never called. *)
val null : sink

(** [is_null s] is [true] iff [s] drops everything ([not s.enabled]). *)
val is_null : sink -> bool

(** [make_sink emit] is an enabled sink delivering to [emit]. *)
val make_sink : (t_ns:int64 -> tid:int -> event -> unit) -> sink

(** [emit sink ev] stamps [ev] with {!Clock.now_ns} and the current
    domain id and delivers it (no-op on a disabled sink). *)
val emit : sink -> event -> unit

val span_begin : ?args:(string * value) list -> sink -> string -> unit
val span_end : sink -> string -> unit

(** [span sink name f] runs [f] inside a [name] span; the end event is
    emitted even if [f] raises.  With a disabled sink this is exactly
    [f ()]. *)
val span : ?args:(string * value) list -> sink -> string -> (unit -> 'a) -> 'a

val counter : sink -> string -> float -> unit

(** [iter sink ~solver ~iter ()] records one solver iteration.  Callers
    on allocation-free hot paths should guard the call with
    [sink.enabled] so disabled runs do not even box the floats. *)
val iter :
  sink ->
  solver:string ->
  iter:int ->
  ?objective:float ->
  ?residual:float ->
  ?step:float ->
  ?restart:bool ->
  unit ->
  unit
