(* Core observability primitives: a monotone clock, a pluggable event
   sink, and the span/counter/iteration vocabulary the solver stack
   emits.  The module is dependency-free by design — anything from the
   linear-algebra kernels up to the CLI can emit events without
   dragging in new link requirements. *)

module Clock = struct
  (* The default source is [Sys.time] (process CPU seconds): always
     available, strictly non-decreasing, but not wall-clock.  Drivers
     that link [unix] install [Unix.gettimeofday] at startup for real
     wall-clock spans.  Whatever the source, [now_ns] clamps against
     the last issued stamp so the emitted sequence is monotone even if
     the source steps backwards (NTP) or two domains race. *)
  let source = Atomic.make Sys.time

  let set_source f = Atomic.set source f

  let last = Atomic.make 0L

  let rec clamp t =
    let cur = Atomic.get last in
    if Int64.compare t cur <= 0 then cur
    else if Atomic.compare_and_set last cur t then t
    else clamp t

  let now_ns () =
    let seconds = (Atomic.get source) () in
    clamp (Int64.of_float (seconds *. 1e9))
end

type value =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type event =
  | Span_begin of { name : string; args : (string * value) list }
  | Span_end of { name : string }
  | Counter of { name : string; value : float }
  | Iter of {
      solver : string;
      iter : int;
      objective : float;
      residual : float;
      step : float;
      restart : bool;
    }

type sink = {
  enabled : bool;
  emit : t_ns:int64 -> tid:int -> event -> unit;
}

let null = { enabled = false; emit = (fun ~t_ns:_ ~tid:_ _ -> ()) }
let is_null s = not s.enabled

let make_sink emit = { enabled = true; emit }

let tid () = (Domain.self () :> int)

let emit sink ev =
  if sink.enabled then sink.emit ~t_ns:(Clock.now_ns ()) ~tid:(tid ()) ev

let span_begin ?(args = []) sink name =
  if sink.enabled then emit sink (Span_begin { name; args })

let span_end sink name = if sink.enabled then emit sink (Span_end { name })

let span ?args sink name f =
  if not sink.enabled then f ()
  else begin
    span_begin ?args sink name;
    Fun.protect ~finally:(fun () -> span_end sink name) f
  end

let counter sink name value =
  if sink.enabled then emit sink (Counter { name; value })

(* Callers are expected to guard the whole call with [sink.enabled] (or
   [is_null]) so disabled runs pay one branch and zero allocation; the
   guard here is a second line of defense, not the hot-path contract. *)
let iter sink ~solver ~iter ?(objective = nan) ?(residual = nan)
    ?(step = nan) ?(restart = false) () =
  if sink.enabled then
    emit sink (Iter { solver; iter; objective; residual; step; restart })
