(** Minimal JSON tree, printer and strict parser.

    Only what the trace writers and schema validator need: no streaming,
    no number-precision guarantees beyond round-tripping the library's
    own output, NaN printed as [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** Compact (single-line) serialization. *)
val to_string : t -> string

(** Strict parse of one JSON document.
    @raise Parse_error on malformed input or trailing bytes. *)
val of_string : string -> t

(** [member k v] is field [k] of object [v], if both exist. *)
val member : string -> t -> t option

val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
