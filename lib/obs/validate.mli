(** Schema validation for trace files (both encodings).

    Checks per-record shape against the ["tmest-trace-1"] schema plus
    two structural invariants: globally monotone non-decreasing
    timestamps, and properly nested, fully closed span begin/end pairs
    per emitting domain. *)

type summary = {
  events : int;
  spans : int;  (** number of completed spans *)
  counters : int;
  iters : int;  (** solver per-iteration records *)
  max_depth : int;  (** deepest span nesting observed *)
  solvers : string list;  (** distinct solver labels, sorted *)
}

val pp_summary : Format.formatter -> summary -> unit

(** [jsonl contents] validates one-record-per-line output
    ({!Recorder.to_jsonl}). *)
val jsonl : string -> (summary, string) result

(** [chrome contents] validates Chrome trace-viewer output
    ({!Recorder.to_chrome}). *)
val chrome : string -> (summary, string) result

(** [file path] reads and validates [path], dispatching on the
    [.jsonl] suffix. *)
val file : string -> (summary, string) result
