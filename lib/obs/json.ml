(* Minimal JSON support for the trace writers and the schema validator.
   Covers exactly the JSON this library produces (objects, arrays,
   strings, finite numbers, booleans, null) — not a general-purpose
   parser, but a strict one: anything malformed raises [Parse_error]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else if Float.is_nan x then Buffer.add_string buf "null"
    (* JSON has no NaN; absent-by-null keeps lines parseable. *)
  else if x = Float.infinity then Buffer.add_string buf "1e999"
  else if x = Float.neg_infinity then Buffer.add_string buf "-1e999"
  else Buffer.add_string buf (Printf.sprintf "%.17g" x)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> add_num buf x
  | Str s -> escape buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type state = { s : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> error st (Printf.sprintf "expected %c" c)

let parse_literal st lit v =
  if
    st.pos + String.length lit <= String.length st.s
    && String.sub st.s st.pos (String.length lit) = lit
  then begin
    st.pos <- st.pos + String.length lit;
    v
  end
  else error st (Printf.sprintf "expected %s" lit)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.s then error st "short \\u escape";
            let hex = String.sub st.s st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error st "bad \\u escape"
            in
            st.pos <- st.pos + 4;
            (* Traces only escape control characters, so plain byte
               emission is sufficient here. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
            go ()
        | _ -> error st "bad escape")
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  if st.pos = start then error st "expected number";
  match float_of_string_opt (String.sub st.s start (st.pos - start)) with
  | Some x -> x
  | None -> error st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance st;
              Obj (List.rev ((k, v) :: acc))
          | _ -> error st "expected , or }"
        in
        fields []
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List (List.rev (v :: acc))
          | _ -> error st "expected , or ]"
        in
        items []
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> Num (parse_number st)

let of_string s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Num x -> Some x | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_int = function
  | Num x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
