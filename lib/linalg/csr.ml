type t = {
  rows : int;
  cols : int;
  row_ptr : int array; (* length rows+1 *)
  col_idx : int array; (* length nnz, sorted within each row *)
  values : float array; (* length nnz *)
}

let of_triplets ~rows ~cols entries =
  if rows < 0 || cols < 0 then invalid_arg "Csr.of_triplets: negative size";
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg
          (Printf.sprintf "Csr.of_triplets: (%d,%d) out of bounds for %dx%d"
             i j rows cols))
    entries;
  (* Sum duplicates via per-row association tables, then pack. *)
  let row_tbls = Array.init rows (fun _ -> Hashtbl.create 4) in
  List.iter
    (fun (i, j, v) ->
      let tbl = row_tbls.(i) in
      let cur = try Hashtbl.find tbl j with Not_found -> 0. in
      Hashtbl.replace tbl j (cur +. v))
    entries;
  let row_lists =
    Array.map
      (fun tbl ->
        Hashtbl.fold (fun j v acc -> if v = 0. then acc else (j, v) :: acc)
          tbl []
        |> List.sort (fun (a, _) (b, _) -> compare a b))
      row_tbls
  in
  let nnz = Array.fold_left (fun acc l -> acc + List.length l) 0 row_lists in
  let row_ptr = Array.make (rows + 1) 0 in
  let col_idx = Array.make nnz 0 in
  let values = Array.make nnz 0. in
  let k = ref 0 in
  for i = 0 to rows - 1 do
    row_ptr.(i) <- !k;
    List.iter
      (fun (j, v) ->
        col_idx.(!k) <- j;
        values.(!k) <- v;
        incr k)
      row_lists.(i)
  done;
  row_ptr.(rows) <- !k;
  { rows; cols; row_ptr; col_idx; values }

let of_dense m =
  let entries = ref [] in
  for i = Mat.rows m - 1 downto 0 do
    for j = Mat.cols m - 1 downto 0 do
      let v = Mat.unsafe_get m i j in
      if v <> 0. then entries := (i, j, v) :: !entries
    done
  done;
  of_triplets ~rows:(Mat.rows m) ~cols:(Mat.cols m) !entries

let rows m = m.rows
let cols m = m.cols
let nnz m = Array.length m.values

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Csr.get: out of bounds";
  let rec find k stop =
    if k >= stop then 0.
    else if m.col_idx.(k) = j then m.values.(k)
    else if m.col_idx.(k) > j then 0.
    else find (k + 1) stop
  in
  find m.row_ptr.(i) m.row_ptr.(i + 1)

(* Dual-build row kernel (see Kernel): the unsafe variant also lifts
   the row_ptr reads and dst store out of the bounds checker — the
   checked twin runs the identical accumulation. *)
let matvec_rows_unsafe m x dst lo hi =
  let row_ptr = m.row_ptr and col_idx = m.col_idx and values = m.values in
  for i = lo to hi - 1 do
    let stop = Array.unsafe_get row_ptr (i + 1) - 1 in
    let acc = ref 0. in
    for k = Array.unsafe_get row_ptr i to stop do
      acc :=
        !acc
        +. Array.unsafe_get values k
           *. Array.unsafe_get x (Array.unsafe_get col_idx k)
    done;
    Array.unsafe_set dst i !acc
  done

let matvec_rows_checked m x dst lo hi =
  for i = lo to hi - 1 do
    let acc = ref 0. in
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      acc := !acc +. (m.values.(k) *. x.(m.col_idx.(k)))
    done;
    dst.(i) <- !acc
  done

let matvec_rows =
  if Kernel.checked then matvec_rows_checked else matvec_rows_unsafe

let matvec_into ?pool m x ~dst =
  if Array.length x <> m.cols then
    invalid_arg "Csr.matvec_into: dimension mismatch";
  if Array.length dst <> m.rows then
    invalid_arg "Csr.matvec_into: destination dimension mismatch";
  if dst == x && Array.length m.values > 0 then
    invalid_arg "Csr.matvec_into: dst must not alias x";
  match pool with
  | Some p ->
      (* Row-partitioned: every row owns its dst slot and accumulates in
         the same order as the sequential loop, so the result is
         bit-identical under any chunking — which licenses the
         cost-weighted grain (chunk count sized by nnz, one inline chunk
         when the product is too small to amortize a dispatch). *)
      Tmest_parallel.Pool.iter_grained p ~n:m.rows
        ~cost:(Array.length m.values)
        (fun ~lo ~hi -> matvec_rows m x dst lo hi)
  | None -> matvec_rows m x dst 0 m.rows

let matvec ?pool m x =
  if Array.length x <> m.cols then invalid_arg "Csr.matvec: dimension mismatch";
  let y = Array.make m.rows 0. in
  matvec_into ?pool m x ~dst:y;
  y

(* Transpose apply scatters into dst, so it stays sequential (rows
   racing on shared dst slots would break bit-identity); only the
   indexing differs between the two builds. *)
let tmatvec_rows_unsafe m x dst =
  let row_ptr = m.row_ptr and col_idx = m.col_idx and values = m.values in
  for i = 0 to m.rows - 1 do
    let xi = Array.unsafe_get x i in
    if xi <> 0. then begin
      let stop = Array.unsafe_get row_ptr (i + 1) - 1 in
      for k = Array.unsafe_get row_ptr i to stop do
        let j = Array.unsafe_get col_idx k in
        Array.unsafe_set dst j
          (Array.unsafe_get dst j +. (xi *. Array.unsafe_get values k))
      done
    end
  done

let tmatvec_rows_checked m x dst =
  for i = 0 to m.rows - 1 do
    let xi = x.(i) in
    if xi <> 0. then
      for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        let j = m.col_idx.(k) in
        dst.(j) <- dst.(j) +. (xi *. m.values.(k))
      done
  done

let tmatvec_rows =
  if Kernel.checked then tmatvec_rows_checked else tmatvec_rows_unsafe

let tmatvec_into m x ~dst =
  if Array.length x <> m.rows then
    invalid_arg "Csr.tmatvec_into: dimension mismatch";
  if Array.length dst <> m.cols then
    invalid_arg "Csr.tmatvec_into: destination dimension mismatch";
  if dst == x && Array.length m.values > 0 then
    invalid_arg "Csr.tmatvec_into: dst must not alias x";
  Array.fill dst 0 m.cols 0.;
  tmatvec_rows m x dst

let tmatvec m x =
  if Array.length x <> m.rows then
    invalid_arg "Csr.tmatvec: dimension mismatch";
  let y = Array.make m.cols 0. in
  tmatvec_into m x ~dst:y;
  y

(* Fused normal-equations apply dst = Mᵀ(Mx) through a caller-owned
   link-length buffer: the one kernel the matrix-free Gram operators
   run per solver iteration.  The forward half is pooled (grained by
   nnz); the transpose half scatters sequentially.  Bit-identical to
   [matvec_into] + [tmatvec_into] — it is exactly those kernels minus
   the per-call closure indirection. *)
let normal_apply_into ?pool m x ~link ~dst =
  if Array.length x <> m.cols then
    invalid_arg "Csr.normal_apply_into: dimension mismatch";
  if Array.length link <> m.rows then
    invalid_arg "Csr.normal_apply_into: link buffer dimension mismatch";
  if Array.length dst <> m.cols then
    invalid_arg "Csr.normal_apply_into: destination dimension mismatch";
  if (link == x || link == dst) && Array.length m.values > 0 then
    invalid_arg "Csr.normal_apply_into: link must not alias x or dst";
  (match pool with
  | Some p ->
      Tmest_parallel.Pool.iter_grained p ~n:m.rows
        ~cost:(Array.length m.values)
        (fun ~lo ~hi -> matvec_rows m x link lo hi)
  | None -> matvec_rows m x link 0 m.rows);
  Array.fill dst 0 m.cols 0.;
  tmatvec_rows m link dst

(* Exact diagonal of the Gram matrix AᵀA: (AᵀA)_jj = Σ_i A_ij², one
   pass over the stored entries.  This is what makes Jacobi
   preconditioners exact and O(nnz) — no Hutchinson sampling needed. *)
let col_sq_norms m =
  let d = Array.make m.cols 0. in
  for k = 0 to Array.length m.values - 1 do
    let j = Array.unsafe_get m.col_idx k in
    let v = Array.unsafe_get m.values k in
    Array.unsafe_set d j (Array.unsafe_get d j +. (v *. v))
  done;
  d

let to_dense m =
  let d = Mat.zeros m.rows m.cols in
  for i = 0 to m.rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      Mat.unsafe_set d i m.col_idx.(k) m.values.(k)
    done
  done;
  d

let row_nonzeros m i =
  if i < 0 || i >= m.rows then invalid_arg "Csr.row_nonzeros: out of bounds";
  let acc = ref [] in
  for k = m.row_ptr.(i + 1) - 1 downto m.row_ptr.(i) do
    acc := (m.col_idx.(k), m.values.(k)) :: !acc
  done;
  !acc

let iter_row m i f =
  if i < 0 || i >= m.rows then invalid_arg "Csr.iter_row: out of bounds";
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    f m.col_idx.(k) m.values.(k)
  done

let scale_cols m d =
  if Array.length d <> m.cols then
    invalid_arg "Csr.scale_cols: dimension mismatch";
  {
    m with
    values = Array.mapi (fun k v -> v *. d.(m.col_idx.(k))) m.values;
  }

let transpose m =
  let entries = ref [] in
  for i = m.rows - 1 downto 0 do
    for k = m.row_ptr.(i + 1) - 1 downto m.row_ptr.(i) do
      entries := (m.col_idx.(k), i, m.values.(k)) :: !entries
    done
  done;
  of_triplets ~rows:m.cols ~cols:m.rows !entries

let gram m =
  let g = Mat.zeros m.cols m.cols in
  for i = 0 to m.rows - 1 do
    for k1 = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      let j1 = m.col_idx.(k1) and v1 = m.values.(k1) in
      for k2 = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        let j2 = m.col_idx.(k2) in
        Mat.unsafe_set g j1 j2
          (Mat.unsafe_get g j1 j2 +. (v1 *. m.values.(k2)))
      done
    done
  done;
  g
