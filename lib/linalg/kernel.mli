(** Debug switch for the fused unsafe kernels.

    The reduction and matvec hot loops in {!Vec}, {!Mat} and {!Csr} are
    compiled in two variants: an [Array.unsafe_get]/[unsafe_set] build
    (default) and a bounds-checked build enabled by setting
    [TMEST_CHECKED_KERNELS=1] in the environment.  The two variants
    execute the identical float operations in the identical order, so
    they are bit-identical; the checked build exists to turn an indexing
    bug into an [Invalid_argument] instead of silent memory corruption.
    Dimension preconditions are validated unconditionally in both
    builds — the switch only governs per-element bounds checks. *)

(** True when [TMEST_CHECKED_KERNELS] is set to [1]/[true]/[yes]/[on].
    Read once at program start; kernel implementations are selected at
    module-binding time. *)
val checked : bool
