type t = float array

let create n x = Array.make n x
let zeros n = create n 0.
let ones n = create n 1.
let init = Array.init

let basis n i =
  if i < 0 || i >= n then invalid_arg "Vec.basis: index out of range";
  let v = zeros n in
  v.(i) <- 1.;
  v

let copy = Array.copy
let dim = Array.length

let check_same_dim name u v =
  if Array.length u <> Array.length v then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
         (Array.length u) (Array.length v))

let check_dst name v dst =
  if Array.length dst <> Array.length v then
    invalid_arg
      (Printf.sprintf "Vec.%s: destination dimension mismatch (%d vs %d)"
         name (Array.length dst) (Array.length v))

(* Destination-passing kernels.  [dst] may alias any operand: every
   kernel reads index [i] of its operands before writing index [i] of
   [dst], so aliased calls still compute the element-wise result. *)

let blit_into src ~dst =
  check_dst "blit_into" src dst;
  Array.blit src 0 dst 0 (Array.length src)

let add_into u v ~dst =
  check_same_dim "add_into" u v;
  check_dst "add_into" u dst;
  for i = 0 to Array.length u - 1 do
    Array.unsafe_set dst i (Array.unsafe_get u i +. Array.unsafe_get v i)
  done

let sub_into u v ~dst =
  check_same_dim "sub_into" u v;
  check_dst "sub_into" u dst;
  for i = 0 to Array.length u - 1 do
    Array.unsafe_set dst i (Array.unsafe_get u i -. Array.unsafe_get v i)
  done

let scale_into a v ~dst =
  check_dst "scale_into" v dst;
  for i = 0 to Array.length v - 1 do
    Array.unsafe_set dst i (a *. Array.unsafe_get v i)
  done

let axpy_into a x y ~dst =
  check_same_dim "axpy_into" x y;
  check_dst "axpy_into" x dst;
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set dst i
      ((a *. Array.unsafe_get x i) +. Array.unsafe_get y i)
  done

let mul_into u v ~dst =
  check_same_dim "mul_into" u v;
  check_dst "mul_into" u dst;
  for i = 0 to Array.length u - 1 do
    Array.unsafe_set dst i (Array.unsafe_get u i *. Array.unsafe_get v i)
  done

let div_into u v ~dst =
  check_same_dim "div_into" u v;
  check_dst "div_into" u dst;
  for i = 0 to Array.length u - 1 do
    Array.unsafe_set dst i (Array.unsafe_get u i /. Array.unsafe_get v i)
  done

let clamp_nonneg_into v ~dst =
  check_dst "clamp_nonneg_into" v dst;
  for i = 0 to Array.length v - 1 do
    let x = Array.unsafe_get v i in
    Array.unsafe_set dst i (if x < 0. then 0. else x)
  done

let add u v =
  check_same_dim "add" u v;
  let dst = Array.make (Array.length u) 0. in
  add_into u v ~dst;
  dst

let sub u v =
  check_same_dim "sub" u v;
  let dst = Array.make (Array.length u) 0. in
  sub_into u v ~dst;
  dst

let scale a v =
  let dst = Array.make (Array.length v) 0. in
  scale_into a v ~dst;
  dst

let axpy a x y =
  check_same_dim "axpy" x y;
  let dst = Array.make (Array.length y) 0. in
  axpy_into a x y ~dst;
  dst

let mul u v =
  check_same_dim "mul" u v;
  let dst = Array.make (Array.length u) 0. in
  mul_into u v ~dst;
  dst

let div u v =
  check_same_dim "div" u v;
  let dst = Array.make (Array.length u) 0. in
  div_into u v ~dst;
  dst

(* Reduction kernels: fused unsafe loops by default, bounds-checked
   twins behind [Kernel.checked].  Both variants accumulate left to
   right from 0. over the same elements, so they are bit-identical to
   each other and to the historical fold-based definitions. *)

let dot_unsafe u v =
  check_same_dim "dot" u v;
  let acc = ref 0. in
  for i = 0 to Array.length u - 1 do
    acc := !acc +. (Array.unsafe_get u i *. Array.unsafe_get v i)
  done;
  !acc

let dot_checked u v =
  check_same_dim "dot" u v;
  let acc = ref 0. in
  for i = 0 to Array.length u - 1 do
    acc := !acc +. (u.(i) *. v.(i))
  done;
  !acc

let dot = if Kernel.checked then dot_checked else dot_unsafe
let norm2 v = sqrt (dot v v)

let norm1_unsafe v =
  let acc = ref 0. in
  for i = 0 to Array.length v - 1 do
    acc := !acc +. abs_float (Array.unsafe_get v i)
  done;
  !acc

let norm1_checked v =
  let acc = ref 0. in
  for i = 0 to Array.length v - 1 do
    acc := !acc +. abs_float v.(i)
  done;
  !acc

let norm1 = if Kernel.checked then norm1_checked else norm1_unsafe

let norm_inf_unsafe v =
  let acc = ref 0. in
  for i = 0 to Array.length v - 1 do
    acc := Stdlib.max !acc (abs_float (Array.unsafe_get v i))
  done;
  !acc

let norm_inf_checked v =
  let acc = ref 0. in
  for i = 0 to Array.length v - 1 do
    acc := Stdlib.max !acc (abs_float v.(i))
  done;
  !acc

let norm_inf = if Kernel.checked then norm_inf_checked else norm_inf_unsafe

let dist2_unsafe u v =
  check_same_dim "dist2" u v;
  let acc = ref 0. in
  for i = 0 to Array.length u - 1 do
    let d = Array.unsafe_get u i -. Array.unsafe_get v i in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let dist2_checked u v =
  check_same_dim "dist2" u v;
  let acc = ref 0. in
  for i = 0 to Array.length u - 1 do
    let d = u.(i) -. v.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let dist2 = if Kernel.checked then dist2_checked else dist2_unsafe

let sum_unsafe v =
  let acc = ref 0. in
  for i = 0 to Array.length v - 1 do
    acc := !acc +. Array.unsafe_get v i
  done;
  !acc

let sum_checked v =
  let acc = ref 0. in
  for i = 0 to Array.length v - 1 do
    acc := !acc +. v.(i)
  done;
  !acc

let sum = if Kernel.checked then sum_checked else sum_unsafe

(* Fused update-and-reduce: dst = a*x + y followed by dot dst dst in one
   pass.  Per element the store happens before the accumulate, exactly
   as in the two-kernel sequence, so the returned square norm — and
   [dst] — are bit-identical to [axpy_into] + [dot].  The fusion saves
   one full traversal per CG iteration and is allocation-neutral: it
   returns one boxed float where [dot] returned one. *)

let axpy_sq_into_unsafe a x y ~dst =
  check_same_dim "axpy_sq_into" x y;
  check_dst "axpy_sq_into" x dst;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    let r = (a *. Array.unsafe_get x i) +. Array.unsafe_get y i in
    Array.unsafe_set dst i r;
    acc := !acc +. (r *. r)
  done;
  !acc

let axpy_sq_into_checked a x y ~dst =
  check_same_dim "axpy_sq_into" x y;
  check_dst "axpy_sq_into" x dst;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    let r = (a *. x.(i)) +. y.(i) in
    dst.(i) <- r;
    acc := !acc +. (r *. r)
  done;
  !acc

let axpy_sq_into =
  if Kernel.checked then axpy_sq_into_checked else axpy_sq_into_unsafe

let mean v =
  if Array.length v = 0 then invalid_arg "Vec.mean: empty vector";
  sum v /. float_of_int (Array.length v)

let fold_nonempty name f v =
  if Array.length v = 0 then invalid_arg ("Vec." ^ name ^ ": empty vector");
  let acc = ref v.(0) in
  for i = 1 to Array.length v - 1 do
    acc := f !acc v.(i)
  done;
  !acc

let min v = fold_nonempty "min" Stdlib.min v
let max v = fold_nonempty "max" Stdlib.max v

let arg_best name better v =
  if Array.length v = 0 then invalid_arg ("Vec." ^ name ^ ": empty vector");
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if better v.(i) v.(!best) then best := i
  done;
  !best

let argmax v = arg_best "argmax" ( > ) v
let argmin v = arg_best "argmin" ( < ) v
let map = Array.map
let mapi = Array.mapi

let map2 f u v =
  check_same_dim "map2" u v;
  Array.mapi (fun i x -> f x v.(i)) u

let clamp_nonneg v =
  let dst = Array.make (Array.length v) 0. in
  clamp_nonneg_into v ~dst;
  dst

let equal ?(eps = 1e-9) u v =
  Array.length u = Array.length v
  &&
  let ok = ref true in
  for i = 0 to Array.length u - 1 do
    if abs_float (u.(i) -. v.(i)) > eps then ok := false
  done;
  !ok

let pp ppf v =
  Format.fprintf ppf "[@[";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%.6g" x)
    v;
  Format.fprintf ppf "@]]"

let to_list = Array.to_list
let of_list = Array.of_list
