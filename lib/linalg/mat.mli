(** Dense matrices of floats, stored row-major in a flat array. *)

type t = private { rows : int; cols : int; data : float array }

(** [create r c x] is an [r]x[c] matrix filled with [x]. *)
val create : int -> int -> float -> t

val zeros : int -> int -> t

(** [identity n] is the [n]x[n] identity. *)
val identity : int -> t

(** [init r c f] has entry [f i j] at row [i], column [j]. *)
val init : int -> int -> (int -> int -> float) -> t

(** [of_rows rows] builds a matrix from an array of equal-length rows. *)
val of_rows : float array array -> t

(** [of_vec v] is the column matrix of [v]. *)
val of_vec : Vec.t -> t

(** [diag v] is the square diagonal matrix with diagonal [v]. *)
val diag : Vec.t -> t

val copy : t -> t
val rows : t -> int
val cols : t -> int

(** [get m i j] / [set m i j x]: bounds-checked element access. *)
val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

(** [unsafe_get]/[unsafe_set]: no bounds checks; for inner loops. *)
val unsafe_get : t -> int -> int -> float

val unsafe_set : t -> int -> int -> float -> unit

(** [row m i] is a copy of row [i] as a vector. *)
val row : t -> int -> Vec.t

(** [col m j] is a copy of column [j] as a vector. *)
val col : t -> int -> Vec.t

(** [set_row m i v] overwrites row [i]. *)
val set_row : t -> int -> Vec.t -> unit

(** [transpose m] is [m]ᵀ. *)
val transpose : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

(** [matmul ?pool a b] is the matrix product [a*b].  With [pool], rows
    of the result are computed in parallel row blocks (large operands
    only); each row runs the exact sequential loop, so the product is
    bit-identical at every pool size. *)
val matmul : ?pool:Tmest_parallel.Pool.t -> t -> t -> t

(** [matvec ?pool a x] is [a*x] ([pool] as in {!matmul}). *)
val matvec : ?pool:Tmest_parallel.Pool.t -> t -> Vec.t -> Vec.t

(** [matvec_into ?pool a x ~dst] writes [a*x] into [dst] without
    allocating.  [dst] must not alias [x].  With [pool], rows are
    computed in parallel row blocks (large operands only) —
    bit-identical to the sequential product at every pool size. *)
val matvec_into : ?pool:Tmest_parallel.Pool.t -> t -> Vec.t -> dst:Vec.t -> unit

(** [tmatvec a x] is [aᵀ*x], without forming the transpose. *)
val tmatvec : t -> Vec.t -> Vec.t

(** [tmatvec_into a x ~dst] writes [aᵀ*x] into [dst] without
    allocating.  [dst] must not alias [x]. *)
val tmatvec_into : t -> Vec.t -> dst:Vec.t -> unit

(** [gram a] is [aᵀ*a] computed symmetrically. *)
val gram : t -> t

(** [scale_cols a d] is [a * diag d]: column [j] scaled by [d.(j)]. *)
val scale_cols : t -> Vec.t -> t

(** [vstack a b] stacks [a] on top of [b] (same column count). *)
val vstack : t -> t -> t

(** [hstack a b] places [a] left of [b] (same row count). *)
val hstack : t -> t -> t

(** [submatrix m ~row ~col ~rows ~cols] is a copied rectangular block. *)
val submatrix : t -> row:int -> col:int -> rows:int -> cols:int -> t

(** [select_cols m js] is the matrix of columns [js] of [m], in order. *)
val select_cols : t -> int array -> t

(** [frobenius m] is the Frobenius norm. *)
val frobenius : t -> float

(** [equal ?eps a b] is entry-wise equality within tolerance. *)
val equal : ?eps:float -> t -> t -> bool

(** [is_symmetric ?eps m]. *)
val is_symmetric : ?eps:float -> t -> bool

val pp : Format.formatter -> t -> unit
