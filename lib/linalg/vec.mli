(** Dense vectors of floats.

    A vector is a plain [float array]; this module collects the numerical
    operations the rest of the library needs.  All binary operations require
    operands of equal length and raise [Invalid_argument] otherwise. *)

type t = float array

(** [create n x] is a vector of length [n] filled with [x]. *)
val create : int -> float -> t

(** [zeros n] is the zero vector of length [n]. *)
val zeros : int -> t

(** [ones n] is the all-ones vector of length [n]. *)
val ones : int -> t

(** [init n f] is [| f 0; ...; f (n-1) |]. *)
val init : int -> (int -> float) -> t

(** [basis n i] is the [i]-th standard basis vector of length [n]. *)
val basis : int -> int -> t

(** [copy v] is an independent copy of [v]. *)
val copy : t -> t

val dim : t -> int

(** [add u v] is the element-wise sum. *)
val add : t -> t -> t

(** [sub u v] is the element-wise difference [u - v]. *)
val sub : t -> t -> t

(** [scale a v] is [a * v]. *)
val scale : float -> t -> t

(** [axpy a x y] is [a*x + y]. *)
val axpy : float -> t -> t -> t

(** [mul u v] is the element-wise (Hadamard) product. *)
val mul : t -> t -> t

(** [div u v] is the element-wise quotient. *)
val div : t -> t -> t

(** {1 Destination-passing kernels}

    Allocation-free variants used by the iterative-solver hot paths:
    each writes its element-wise result into [dst] and returns nothing.
    [dst] may alias any operand (every kernel reads index [i] before
    writing index [i]), and results are bit-identical to the allocating
    counterparts above.  All raise [Invalid_argument] on dimension
    mismatch. *)

(** [blit_into src ~dst] copies [src] into [dst]. *)
val blit_into : t -> dst:t -> unit

(** [add_into u v ~dst] writes [u + v] into [dst]. *)
val add_into : t -> t -> dst:t -> unit

(** [sub_into u v ~dst] writes [u - v] into [dst]. *)
val sub_into : t -> t -> dst:t -> unit

(** [scale_into a v ~dst] writes [a * v] into [dst]. *)
val scale_into : float -> t -> dst:t -> unit

(** [axpy_into a x y ~dst] writes [a*x + y] into [dst]; with [~dst:y]
    this is the classical in-place BLAS axpy. *)
val axpy_into : float -> t -> t -> dst:t -> unit

(** [mul_into u v ~dst] writes the Hadamard product into [dst]. *)
val mul_into : t -> t -> dst:t -> unit

(** [div_into u v ~dst] writes the element-wise quotient into [dst]. *)
val div_into : t -> t -> dst:t -> unit

(** [clamp_nonneg_into v ~dst] writes [max v 0] element-wise into
    [dst] (the non-negative-orthant projection of the solvers). *)
val clamp_nonneg_into : t -> dst:t -> unit

(** [axpy_sq_into a x y ~dst] writes [a*x + y] into [dst] and returns
    [dot dst dst], fused in one pass.  Bit-identical to [axpy_into]
    followed by [dot dst dst] (per element the store precedes the
    accumulate); [dst] may alias [x] or [y].  This is the CG residual
    update [r <- r - alpha*Ap; ||r||^2] without the second traversal. *)
val axpy_sq_into : float -> t -> t -> dst:t -> float

(** [dot u v] is the inner product.

    [dot] and the norm/reduction kernels below run as fused
    [Array.unsafe_get] loops by default; set [TMEST_CHECKED_KERNELS=1]
    to select the bounds-checked twins (see {!Kernel}) — same floats,
    same order, bit-identical results. *)
val dot : t -> t -> float

(** [norm2 v] is the Euclidean norm. *)
val norm2 : t -> float

(** [norm1 v] is the sum of absolute values. *)
val norm1 : t -> float

(** [norm_inf v] is the maximum absolute value, 0 for the empty vector. *)
val norm_inf : t -> float

(** [dist2 u v] is [norm2 (sub u v)] without allocating. *)
val dist2 : t -> t -> float

(** [sum v] is the sum of the entries. *)
val sum : t -> float

(** [mean v] is the arithmetic mean; raises [Invalid_argument] if empty. *)
val mean : t -> float

(** [min v] and [max v]; raise [Invalid_argument] if empty. *)
val min : t -> float

val max : t -> float

(** [argmax v] is the index of the first maximal entry. *)
val argmax : t -> int

val argmin : t -> int

(** [map f v] applies [f] element-wise. *)
val map : (float -> float) -> t -> t

val mapi : (int -> float -> float) -> t -> t

(** [map2 f u v] applies [f] pair-wise. *)
val map2 : (float -> float -> float) -> t -> t -> t

(** [clamp_nonneg v] replaces negative entries by 0. *)
val clamp_nonneg : t -> t

(** [equal ?eps u v] tests element-wise equality within absolute
    tolerance [eps] (default [1e-9]). *)
val equal : ?eps:float -> t -> t -> bool

(** [pp] prints as [[x0; x1; ...]] with 6 significant digits. *)
val pp : Format.formatter -> t -> unit

val to_list : t -> float list

val of_list : float list -> t
