type t = { rows : int; cols : int; data : float array }

let create rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) x }

let zeros rows cols = create rows cols 0.

let init rows cols f =
  let m = zeros rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_rows rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then zeros 0 0
  else begin
    let cols = Array.length rows_arr.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> cols then
          invalid_arg "Mat.of_rows: ragged rows")
      rows_arr;
    init rows cols (fun i j -> rows_arr.(i).(j))
  end

let of_vec v = init (Array.length v) 1 (fun i _ -> v.(i))

let diag v =
  let n = Array.length v in
  init n n (fun i j -> if i = j then v.(i) else 0.)

let copy m = { m with data = Array.copy m.data }
let rows m = m.rows
let cols m = m.cols

let check_bounds name m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: (%d,%d) out of bounds for %dx%d" name i j
         m.rows m.cols)

let get m i j =
  check_bounds "get" m i j;
  m.data.((i * m.cols) + j)

let set m i j x =
  check_bounds "set" m i j;
  m.data.((i * m.cols) + j) <- x

let unsafe_get m i j = Array.unsafe_get m.data ((i * m.cols) + j)
let unsafe_set m i j x = Array.unsafe_set m.data ((i * m.cols) + j) x

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Mat.row: out of bounds";
  Array.sub m.data (i * m.cols) m.cols

let col m j =
  if j < 0 || j >= m.cols then invalid_arg "Mat.col: out of bounds";
  Array.init m.rows (fun i -> m.data.((i * m.cols) + j))

let set_row m i v =
  if i < 0 || i >= m.rows then invalid_arg "Mat.set_row: out of bounds";
  if Array.length v <> m.cols then
    invalid_arg "Mat.set_row: dimension mismatch";
  Array.blit v 0 m.data (i * m.cols) m.cols

let transpose m = init m.cols m.rows (fun i j -> unsafe_get m j i)

let check_same_shape name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: shape mismatch (%dx%d vs %dx%d)" name a.rows
         a.cols b.rows b.cols)

let add a b =
  check_same_shape "add" a b;
  { a with data = Array.mapi (fun k x -> x +. b.data.(k)) a.data }

let sub a b =
  check_same_shape "sub" a b;
  { a with data = Array.mapi (fun k x -> x -. b.data.(k)) a.data }

let scale c m = { m with data = Array.map (fun x -> c *. x) m.data }

let matmul_rows a b c lo hi =
  (* i-k-j loop order keeps the inner loop contiguous in both b and c. *)
  for i = lo to hi - 1 do
    for k = 0 to a.cols - 1 do
      let aik = Array.unsafe_get a.data ((i * a.cols) + k) in
      if aik <> 0. then begin
        let brow = k * b.cols in
        let crow = i * c.cols in
        for j = 0 to b.cols - 1 do
          Array.unsafe_set c.data (crow + j)
            (Array.unsafe_get c.data (crow + j)
            +. (aik *. Array.unsafe_get b.data (brow + j)))
        done
      end
    done
  done

let matmul ?pool a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.matmul: inner dimension mismatch (%dx%d * %dx%d)"
         a.rows a.cols b.rows b.cols);
  let c = zeros a.rows b.cols in
  (match pool with
  | Some p ->
      (* Row blocks of [c] are disjoint and each row runs the exact
         sequential loop, so the product is bit-identical under any
         chunking; the grain is cost-weighted by the flop count and
         collapses to one inline chunk for small operands. *)
      Tmest_parallel.Pool.iter_grained p ~n:a.rows
        ~cost:(a.rows * a.cols * b.cols)
        (fun ~lo ~hi -> matmul_rows a b c lo hi)
  | None -> matmul_rows a b c 0 a.rows);
  c

(* Dual-build row kernel (see Kernel): both variants accumulate each
   row left to right, so they are bit-identical. *)
let matvec_rows_unsafe a x dst lo hi =
  let data = a.data in
  for i = lo to hi - 1 do
    let base = i * a.cols in
    let acc = ref 0. in
    for j = 0 to a.cols - 1 do
      acc :=
        !acc +. (Array.unsafe_get data (base + j) *. Array.unsafe_get x j)
    done;
    Array.unsafe_set dst i !acc
  done

let matvec_rows_checked a x dst lo hi =
  for i = lo to hi - 1 do
    let base = i * a.cols in
    let acc = ref 0. in
    for j = 0 to a.cols - 1 do
      acc := !acc +. (a.data.(base + j) *. x.(j))
    done;
    dst.(i) <- !acc
  done

let matvec_rows =
  if Kernel.checked then matvec_rows_checked else matvec_rows_unsafe

let matvec_into ?pool a x ~dst =
  if a.cols <> Array.length x then
    invalid_arg "Mat.matvec_into: dimension mismatch";
  if Array.length dst <> a.rows then
    invalid_arg "Mat.matvec_into: destination dimension mismatch";
  if dst == x && a.rows > 0 && a.cols > 0 then
    invalid_arg "Mat.matvec_into: dst must not alias x";
  match pool with
  | Some p ->
      Tmest_parallel.Pool.iter_grained p ~n:a.rows ~cost:(a.rows * a.cols)
        (fun ~lo ~hi -> matvec_rows a x dst lo hi)
  | None -> matvec_rows a x dst 0 a.rows

let matvec ?pool a x =
  if a.cols <> Array.length x then
    invalid_arg "Mat.matvec: dimension mismatch";
  let y = Array.make a.rows 0. in
  matvec_into ?pool a x ~dst:y;
  y

let tmatvec_into a x ~dst =
  if a.rows <> Array.length x then
    invalid_arg "Mat.tmatvec_into: dimension mismatch";
  if Array.length dst <> a.cols then
    invalid_arg "Mat.tmatvec_into: destination dimension mismatch";
  if dst == x && a.rows > 0 && a.cols > 0 then
    invalid_arg "Mat.tmatvec_into: dst must not alias x";
  Array.fill dst 0 a.cols 0.;
  for i = 0 to a.rows - 1 do
    let xi = Array.unsafe_get x i in
    if xi <> 0. then begin
      let base = i * a.cols in
      for j = 0 to a.cols - 1 do
        Array.unsafe_set dst j
          (Array.unsafe_get dst j
          +. (xi *. Array.unsafe_get a.data (base + j)))
      done
    end
  done

let tmatvec a x =
  if a.rows <> Array.length x then
    invalid_arg "Mat.tmatvec: dimension mismatch";
  let y = Array.make a.cols 0. in
  tmatvec_into a x ~dst:y;
  y

let gram a =
  let n = a.cols in
  let g = zeros n n in
  for k = 0 to a.rows - 1 do
    let base = k * n in
    for i = 0 to n - 1 do
      let aki = Array.unsafe_get a.data (base + i) in
      if aki <> 0. then
        for j = i to n - 1 do
          let idx = (i * n) + j in
          Array.unsafe_set g.data idx
            (Array.unsafe_get g.data idx
            +. (aki *. Array.unsafe_get a.data (base + j)))
        done
    done
  done;
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      g.data.((i * n) + j) <- g.data.((j * n) + i)
    done
  done;
  g

let scale_cols a d =
  if Array.length d <> a.cols then
    invalid_arg "Mat.scale_cols: dimension mismatch";
  init a.rows a.cols (fun i j -> unsafe_get a i j *. d.(j))

let vstack a b =
  if a.cols <> b.cols then invalid_arg "Mat.vstack: column mismatch";
  let m = zeros (a.rows + b.rows) a.cols in
  Array.blit a.data 0 m.data 0 (Array.length a.data);
  Array.blit b.data 0 m.data (Array.length a.data) (Array.length b.data);
  m

let hstack a b =
  if a.rows <> b.rows then invalid_arg "Mat.hstack: row mismatch";
  init a.rows (a.cols + b.cols) (fun i j ->
      if j < a.cols then unsafe_get a i j else unsafe_get b i (j - a.cols))

let submatrix m ~row ~col ~rows ~cols =
  if
    row < 0 || col < 0 || rows < 0 || cols < 0
    || row + rows > m.rows
    || col + cols > m.cols
  then invalid_arg "Mat.submatrix: block out of bounds";
  init rows cols (fun i j -> unsafe_get m (row + i) (col + j))

let select_cols m js =
  Array.iter
    (fun j ->
      if j < 0 || j >= m.cols then
        invalid_arg "Mat.select_cols: column index out of bounds")
    js;
  init m.rows (Array.length js) (fun i k -> unsafe_get m i js.(k))

let frobenius m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.data)

let equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  Array.iteri
    (fun k x -> if abs_float (x -. b.data.(k)) > eps then ok := false)
    a.data;
  !ok

let is_symmetric ?(eps = 1e-9) m =
  m.rows = m.cols
  &&
  let ok = ref true in
  for i = 0 to m.rows - 1 do
    for j = i + 1 to m.cols - 1 do
      if abs_float (unsafe_get m i j -. unsafe_get m j i) > eps then
        ok := false
    done
  done;
  !ok

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    if i > 0 then Format.fprintf ppf "@,";
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.4g" (unsafe_get m i j)
    done;
    Format.fprintf ppf "]"
  done;
  Format.fprintf ppf "@]"
