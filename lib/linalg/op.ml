(* Matrix-free linear operators.

   An operator is just a pair of destination-passing closures for [A x]
   and [Aᵀ y] plus its shape.  The solver stack works against this
   interface so that large instances (10⁴–10⁵ OD pairs) never have to
   materialize a dense routing matrix or Gram matrix: CSR-backed
   operators apply in O(nnz), and compositions (normal equations,
   diagonal shifts, low-rank corrections) stay matrix-free.

   Operators are single-caller: compositions such as {!normal} keep one
   internal scratch buffer, so a given operator value must not be
   applied concurrently from several domains.  (Parallelism lives
   *inside* an application — pooled CSR matvecs — not across them.) *)

type t = {
  rows : int;
  cols : int;
  apply_into : Vec.t -> dst:Vec.t -> unit;
  apply_t_into : Vec.t -> dst:Vec.t -> unit;
}

let make ~rows ~cols ~apply_into ~apply_t_into =
  if rows < 0 || cols < 0 then invalid_arg "Op.make: negative dimension";
  { rows; cols; apply_into; apply_t_into }

let rows t = t.rows
let cols t = t.cols

let check_apply t x ~dst =
  if Vec.dim x <> t.cols then invalid_arg "Op.apply: dimension mismatch";
  if Vec.dim dst <> t.rows then invalid_arg "Op.apply: dst dimension mismatch"

let check_apply_t t y ~dst =
  if Vec.dim y <> t.rows then invalid_arg "Op.apply_t: dimension mismatch";
  if Vec.dim dst <> t.cols then
    invalid_arg "Op.apply_t: dst dimension mismatch"

let apply_into t x ~dst =
  check_apply t x ~dst;
  t.apply_into x ~dst

let apply_t_into t y ~dst =
  check_apply_t t y ~dst;
  t.apply_t_into y ~dst

let apply t x =
  let dst = Vec.zeros t.rows in
  apply_into t x ~dst;
  dst

let apply_t t y =
  let dst = Vec.zeros t.cols in
  apply_t_into t y ~dst;
  dst

let of_csr ?pool m =
  {
    rows = Csr.rows m;
    cols = Csr.cols m;
    apply_into = (fun x ~dst -> Csr.matvec_into ?pool m x ~dst);
    apply_t_into = (fun y ~dst -> Csr.tmatvec_into m y ~dst);
  }

let of_mat ?pool m =
  {
    rows = Mat.rows m;
    cols = Mat.cols m;
    apply_into = (fun x ~dst -> Mat.matvec_into ?pool m x ~dst);
    apply_t_into = (fun y ~dst -> Mat.tmatvec_into m y ~dst);
  }

(* AᵀA as a single square operator.  The intermediate rows-length
   product lives in one scratch buffer owned by the closure (see the
   single-caller note above). *)
let normal a =
  let scratch = Vec.zeros a.rows in
  let apply x ~dst =
    a.apply_into x ~dst:scratch;
    a.apply_t_into scratch ~dst
  in
  { rows = a.cols; cols = a.cols; apply_into = apply; apply_t_into = apply }

let diag d =
  let n = Vec.dim d in
  let apply x ~dst = Vec.mul_into d x ~dst in
  { rows = n; cols = n; apply_into = apply; apply_t_into = apply }

let identity n =
  let apply x ~dst = Vec.blit_into x ~dst in
  { rows = n; cols = n; apply_into = apply; apply_t_into = apply }

let scale c a =
  {
    a with
    apply_into =
      (fun x ~dst ->
        a.apply_into x ~dst;
        Vec.scale_into c dst ~dst);
    apply_t_into =
      (fun y ~dst ->
        a.apply_t_into y ~dst;
        Vec.scale_into c dst ~dst);
  }

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Op.add: shape mismatch";
  let scratch_r = Vec.zeros a.rows in
  let scratch_c = Vec.zeros a.cols in
  {
    rows = a.rows;
    cols = a.cols;
    apply_into =
      (fun x ~dst ->
        b.apply_into x ~dst:scratch_r;
        a.apply_into x ~dst;
        Vec.add_into dst scratch_r ~dst);
    apply_t_into =
      (fun y ~dst ->
        b.apply_t_into y ~dst:scratch_c;
        a.apply_t_into y ~dst;
        Vec.add_into dst scratch_c ~dst);
  }

let add_diag a d =
  if a.rows <> a.cols then invalid_arg "Op.add_diag: operator not square";
  if Vec.dim d <> a.cols then invalid_arg "Op.add_diag: diagonal mismatch";
  let wrap f x ~dst =
    f x ~dst;
    for i = 0 to a.cols - 1 do
      dst.(i) <- dst.(i) +. (d.(i) *. x.(i))
    done
  in
  {
    a with
    apply_into = wrap a.apply_into;
    apply_t_into = wrap a.apply_t_into;
  }

let shift a c =
  if a.rows <> a.cols then invalid_arg "Op.shift: operator not square";
  let wrap f x ~dst =
    f x ~dst;
    Vec.axpy_into c x dst ~dst
  in
  {
    a with
    apply_into = wrap a.apply_into;
    apply_t_into = wrap a.apply_t_into;
  }

(* Rank-one correction x ↦ u (v·x); the transpose swaps the factors. *)
let outer u v =
  {
    rows = Vec.dim u;
    cols = Vec.dim v;
    apply_into =
      (fun x ~dst ->
        let a = Vec.dot v x in
        Vec.scale_into a u ~dst);
    apply_t_into =
      (fun y ~dst ->
        let a = Vec.dot u y in
        Vec.scale_into a v ~dst);
  }

(* ------------------------------------------------------------------ *)
(* Spectral estimates                                                  *)
(* ------------------------------------------------------------------ *)

(* Power iteration for the largest eigenvalue of a symmetric PSD
   operator.  Start vector, iteration count and the 1% safety margin
   deliberately mirror [Fista.lipschitz_of_op] so that a dense Gram and
   its matrix-free twin produce the same estimate. *)
let norm2_est ?(iters = 60) a =
  if a.rows <> a.cols then invalid_arg "Op.norm2_est: operator not square";
  let dim = a.rows in
  if dim = 0 then 0.
  else begin
    let v =
      ref (Vec.init dim (fun i -> 1. +. (0.01 *. float_of_int (i mod 7))))
    in
    let lambda = ref 0. in
    let n0 = Vec.norm2 !v in
    v := Vec.scale (1. /. n0) !v;
    let w = Vec.zeros dim in
    for _ = 1 to iters do
      a.apply_into !v ~dst:w;
      let n = Vec.norm2 w in
      if n > 0. then begin
        lambda := n;
        Vec.scale_into (1. /. n) w ~dst:!v
      end
    done;
    !lambda *. 1.01
  end

(* Deterministic Rademacher stream for the trace estimator: splitmix64,
   inlined because tmest_linalg sits below tmest_stats in the library
   graph. *)
let splitmix64 state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let trace_est ?(samples = 16) ?(seed = 0x51ca) a =
  if a.rows <> a.cols then invalid_arg "Op.trace_est: operator not square";
  let dim = a.rows in
  if dim = 0 then 0.
  else begin
    let state = ref (Int64.of_int seed) in
    let z = Vec.zeros dim in
    let az = Vec.zeros dim in
    let acc = ref 0. in
    for _ = 1 to samples do
      for i = 0 to dim - 1 do
        z.(i) <- (if Int64.compare (splitmix64 state) 0L >= 0 then 1. else -1.)
      done;
      a.apply_into z ~dst:az;
      acc := !acc +. Vec.dot z az
    done;
    !acc /. float_of_int samples
  end
