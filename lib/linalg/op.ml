(* Matrix-free linear operators.

   An operator is just a pair of destination-passing closures for [A x]
   and [Aᵀ y] plus its shape.  The solver stack works against this
   interface so that large instances (10⁴–10⁵ OD pairs) never have to
   materialize a dense routing matrix or Gram matrix: CSR-backed
   operators apply in O(nnz), and compositions (normal equations,
   diagonal shifts, low-rank corrections) stay matrix-free.

   Operators additionally carry {e exact} diagonal thunks where the
   composition admits one in O(nnz): [diag] for the operator's own
   diagonal (square operators) and [normal_diag] for the diagonal of
   AᵀA (column sums-of-squares of the underlying matrix).  Jacobi
   preconditioners read these instead of falling back to stochastic
   (Hutchinson-style) diagonal estimation — the exact value is both
   cheaper (one pass over the stored entries vs. dozens of operator
   applications) and deterministic.

   Operators are single-caller: compositions such as {!normal} keep one
   internal scratch buffer, so a given operator value must not be
   applied concurrently from several domains.  (Parallelism lives
   *inside* an application — pooled CSR matvecs — not across them.) *)

type t = {
  rows : int;
  cols : int;
  apply_into : Vec.t -> dst:Vec.t -> unit;
  apply_t_into : Vec.t -> dst:Vec.t -> unit;
  diag : (unit -> Vec.t) option;
  normal_diag : (unit -> Vec.t) option;
}

let make ?diag ?normal_diag ~rows ~cols ~apply_into ~apply_t_into () =
  if rows < 0 || cols < 0 then invalid_arg "Op.make: negative dimension";
  { rows; cols; apply_into; apply_t_into; diag; normal_diag }

let rows t = t.rows
let cols t = t.cols
let diagonal t = Option.map (fun f -> f ()) t.diag
let normal_diagonal t = Option.map (fun f -> f ()) t.normal_diag

let check_apply t x ~dst =
  if Vec.dim x <> t.cols then invalid_arg "Op.apply: dimension mismatch";
  if Vec.dim dst <> t.rows then invalid_arg "Op.apply: dst dimension mismatch"

let check_apply_t t y ~dst =
  if Vec.dim y <> t.rows then invalid_arg "Op.apply_t: dimension mismatch";
  if Vec.dim dst <> t.cols then
    invalid_arg "Op.apply_t: dst dimension mismatch"

let apply_into t x ~dst =
  check_apply t x ~dst;
  t.apply_into x ~dst

let apply_t_into t y ~dst =
  check_apply_t t y ~dst;
  t.apply_t_into y ~dst

let apply t x =
  let dst = Vec.zeros t.rows in
  apply_into t x ~dst;
  dst

let apply_t t y =
  let dst = Vec.zeros t.cols in
  apply_t_into t y ~dst;
  dst

let of_csr ?pool m =
  {
    rows = Csr.rows m;
    cols = Csr.cols m;
    apply_into = (fun x ~dst -> Csr.matvec_into ?pool m x ~dst);
    apply_t_into = (fun y ~dst -> Csr.tmatvec_into m y ~dst);
    diag = None;
    (* diag(mᵀm) exactly, in one O(nnz) pass. *)
    normal_diag = Some (fun () -> Csr.col_sq_norms m);
  }

let of_mat ?pool m =
  {
    rows = Mat.rows m;
    cols = Mat.cols m;
    apply_into = (fun x ~dst -> Mat.matvec_into ?pool m x ~dst);
    apply_t_into = (fun y ~dst -> Mat.tmatvec_into m y ~dst);
    diag =
      (if Mat.rows m = Mat.cols m then
         Some (fun () -> Vec.init (Mat.rows m) (fun i -> Mat.unsafe_get m i i))
       else None);
    normal_diag =
      Some
        (fun () ->
          Vec.init (Mat.cols m) (fun j ->
              let acc = ref 0. in
              for i = 0 to Mat.rows m - 1 do
                let v = Mat.unsafe_get m i j in
                acc := !acc +. (v *. v)
              done;
              !acc));
  }

(* AᵀA as a single square operator.  The intermediate rows-length
   product lives in one scratch buffer owned by the closure (see the
   single-caller note above).  Its exact diagonal is the factor's
   column sums-of-squares, inherited from [normal_diag]. *)
let normal a =
  let scratch = Vec.zeros a.rows in
  let apply x ~dst =
    a.apply_into x ~dst:scratch;
    a.apply_t_into scratch ~dst
  in
  {
    rows = a.cols;
    cols = a.cols;
    apply_into = apply;
    apply_t_into = apply;
    diag = a.normal_diag;
    normal_diag = None;
  }

let diag d =
  let n = Vec.dim d in
  let apply x ~dst = Vec.mul_into d x ~dst in
  {
    rows = n;
    cols = n;
    apply_into = apply;
    apply_t_into = apply;
    diag = Some (fun () -> Vec.copy d);
    normal_diag = Some (fun () -> Vec.map (fun v -> v *. v) d);
  }

let identity n =
  let apply x ~dst = Vec.blit_into x ~dst in
  let ones () = Vec.create n 1. in
  {
    rows = n;
    cols = n;
    apply_into = apply;
    apply_t_into = apply;
    diag = Some ones;
    normal_diag = Some ones;
  }

let map_thunk f = Option.map (fun g () -> f (g ()))

let scale c a =
  {
    a with
    apply_into =
      (fun x ~dst ->
        a.apply_into x ~dst;
        Vec.scale_into c dst ~dst);
    apply_t_into =
      (fun y ~dst ->
        a.apply_t_into y ~dst;
        Vec.scale_into c dst ~dst);
    diag = map_thunk (Vec.scale c) a.diag;
    normal_diag = map_thunk (Vec.scale (c *. c)) a.normal_diag;
  }

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Op.add: shape mismatch";
  let scratch_r = Vec.zeros a.rows in
  let scratch_c = Vec.zeros a.cols in
  {
    rows = a.rows;
    cols = a.cols;
    apply_into =
      (fun x ~dst ->
        b.apply_into x ~dst:scratch_r;
        a.apply_into x ~dst;
        Vec.add_into dst scratch_r ~dst);
    apply_t_into =
      (fun y ~dst ->
        b.apply_t_into y ~dst:scratch_c;
        a.apply_t_into y ~dst;
        Vec.add_into dst scratch_c ~dst);
    diag =
      (match (a.diag, b.diag) with
      | Some da, Some db -> Some (fun () -> Vec.add (da ()) (db ()))
      | _ -> None);
    (* diag((A+B)ᵀ(A+B)) needs the cross term AᵀB; not tracked. *)
    normal_diag = None;
  }

let add_diag a d =
  if a.rows <> a.cols then invalid_arg "Op.add_diag: operator not square";
  if Vec.dim d <> a.cols then invalid_arg "Op.add_diag: diagonal mismatch";
  let wrap f x ~dst =
    f x ~dst;
    for i = 0 to a.cols - 1 do
      dst.(i) <- dst.(i) +. (d.(i) *. x.(i))
    done
  in
  {
    a with
    apply_into = wrap a.apply_into;
    apply_t_into = wrap a.apply_t_into;
    diag = map_thunk (fun da -> Vec.add da d) a.diag;
    normal_diag = None;
  }

let shift a c =
  if a.rows <> a.cols then invalid_arg "Op.shift: operator not square";
  let wrap f x ~dst =
    f x ~dst;
    Vec.axpy_into c x dst ~dst
  in
  {
    a with
    apply_into = wrap a.apply_into;
    apply_t_into = wrap a.apply_t_into;
    diag = map_thunk (Vec.map (fun v -> v +. c)) a.diag;
    normal_diag = None;
  }

(* Rank-one correction x ↦ u (v·x); the transpose swaps the factors. *)
let outer u v =
  {
    rows = Vec.dim u;
    cols = Vec.dim v;
    apply_into =
      (fun x ~dst ->
        let a = Vec.dot v x in
        Vec.scale_into a u ~dst);
    apply_t_into =
      (fun y ~dst ->
        let a = Vec.dot u y in
        Vec.scale_into a v ~dst);
    diag =
      (if Vec.dim u = Vec.dim v then Some (fun () -> Vec.mul u v) else None);
    normal_diag =
      Some
        (fun () ->
          let uu = Vec.dot u u in
          Vec.map (fun vi -> uu *. vi *. vi) v);
  }

(* Symmetric diagonal preconditioning D^{-1/2} A D^{-1/2}: similar to
   M⁻¹A (same spectrum) but stays symmetric, so spectral estimates and
   CG theory carry over unchanged.  The inverse square roots are
   materialized once; each application costs two extra O(n) scalings. *)
let precondition a d =
  if a.rows <> a.cols then invalid_arg "Op.precondition: operator not square";
  if Vec.dim d <> a.cols then
    invalid_arg "Op.precondition: diagonal dimension mismatch";
  let inv_sqrt =
    Vec.map
      (fun v ->
        if v <= 0. then invalid_arg "Op.precondition: diagonal must be > 0"
        else 1. /. sqrt v)
      d
  in
  let scratch = Vec.zeros a.cols in
  let apply f x ~dst =
    Vec.mul_into inv_sqrt x ~dst:scratch;
    f scratch ~dst;
    Vec.mul_into inv_sqrt dst ~dst
  in
  {
    a with
    apply_into = apply a.apply_into;
    apply_t_into = apply a.apply_t_into;
    diag = map_thunk (fun da -> Vec.div da d) a.diag;
    normal_diag = None;
  }

(* ------------------------------------------------------------------ *)
(* Spectral estimates                                                  *)
(* ------------------------------------------------------------------ *)

(* Power iteration for the largest eigenvalue of a symmetric PSD
   operator.  Start vector, iteration count and the 1% safety margin
   deliberately mirror [Fista.lipschitz_of_op] so that a dense Gram and
   its matrix-free twin produce the same estimate. *)
let norm2_est ?(iters = 60) a =
  if a.rows <> a.cols then invalid_arg "Op.norm2_est: operator not square";
  let dim = a.rows in
  if dim = 0 then 0.
  else begin
    let v =
      ref (Vec.init dim (fun i -> 1. +. (0.01 *. float_of_int (i mod 7))))
    in
    let lambda = ref 0. in
    let n0 = Vec.norm2 !v in
    v := Vec.scale (1. /. n0) !v;
    let w = Vec.zeros dim in
    for _ = 1 to iters do
      a.apply_into !v ~dst:w;
      let n = Vec.norm2 w in
      if n > 0. then begin
        lambda := n;
        Vec.scale_into (1. /. n) w ~dst:!v
      end
    done;
    !lambda *. 1.01
  end

(* Deterministic Rademacher stream for the trace estimator: splitmix64,
   inlined because tmest_linalg sits below tmest_stats in the library
   graph. *)
let splitmix64 state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let trace_est ?(samples = 16) ?(seed = 0x51ca) a =
  if a.rows <> a.cols then invalid_arg "Op.trace_est: operator not square";
  let dim = a.rows in
  if dim = 0 then 0.
  else begin
    let state = ref (Int64.of_int seed) in
    let z = Vec.zeros dim in
    let az = Vec.zeros dim in
    let acc = ref 0. in
    for _ = 1 to samples do
      for i = 0 to dim - 1 do
        z.(i) <- (if Int64.compare (splitmix64 state) 0L >= 0 then 1. else -1.)
      done;
      a.apply_into z ~dst:az;
      acc := !acc +. Vec.dot z az
    done;
    !acc /. float_of_int samples
  end
