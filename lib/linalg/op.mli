(** Matrix-free linear operators.

    The sparse-first solver core works against this interface instead of
    materialized matrices: a [t] knows its shape and how to apply [A x]
    and [Aᵀ y] into caller-provided buffers.  CSR-backed operators apply
    in O(nnz); compositions keep normal equations, diagonal shifts and
    low-rank corrections matrix-free, which is what makes estimation
    feasible at 10⁴–10⁵ OD pairs where a dense Gram is unbuildable.

    {b Exact diagonals.} Operators carry optional thunks for their own
    diagonal ([diag], square operators) and for the diagonal of [AᵀA]
    ([normal_diag]).  Compositions propagate them where an exact O(nnz)
    formula exists, so Jacobi preconditioners never need stochastic
    (Hutchinson) diagonal estimation: a CSR factor yields diag(AᵀA) in
    one pass over its stored entries.

    {b Concurrency.} Operators are single-caller: compositions such as
    {!normal} and {!add} own internal scratch buffers, so one operator
    value must not be applied from several domains at once.  Parallelism
    belongs inside an application (pooled CSR matvec), not across
    applications. *)

type t = {
  rows : int;
  cols : int;
  apply_into : Vec.t -> dst:Vec.t -> unit;
  apply_t_into : Vec.t -> dst:Vec.t -> unit;
  diag : (unit -> Vec.t) option;
      (** Exact diagonal of the (square) operator, when known. *)
  normal_diag : (unit -> Vec.t) option;
      (** Exact diagonal of [AᵀA], when known. *)
}

(** [make ~rows ~cols ~apply_into ~apply_t_into] wraps raw closures.
    The closures receive already shape-checked arguments.  [?diag] /
    [?normal_diag] optionally attach exact diagonal thunks (each call
    may allocate a fresh vector; callers memoize). *)
val make :
  ?diag:(unit -> Vec.t) ->
  ?normal_diag:(unit -> Vec.t) ->
  rows:int ->
  cols:int ->
  apply_into:(Vec.t -> dst:Vec.t -> unit) ->
  apply_t_into:(Vec.t -> dst:Vec.t -> unit) ->
  unit ->
  t

val rows : t -> int
val cols : t -> int

(** [diagonal t] is the exact diagonal of [t] when the composition
    tracks one ([None] otherwise — never an estimate). *)
val diagonal : t -> Vec.t option

(** [normal_diagonal t] is the exact diagonal of [tᵀt] when tracked. *)
val normal_diagonal : t -> Vec.t option

(** [apply_into t x ~dst] writes [A x] into [dst] (length [rows]);
    raises [Invalid_argument] on shape mismatch. *)
val apply_into : t -> Vec.t -> dst:Vec.t -> unit

(** [apply_t_into t y ~dst] writes [Aᵀ y] into [dst] (length [cols]). *)
val apply_t_into : t -> Vec.t -> dst:Vec.t -> unit

(** Allocating conveniences over the [_into] forms. *)
val apply : t -> Vec.t -> Vec.t

val apply_t : t -> Vec.t -> Vec.t

(** [of_csr ?pool m] applies the sparse matrix in O(nnz); forward
    products use the pooled row-partitioned kernel and are bit-identical
    at every pool size.  Carries the exact Gram diagonal
    ({!Csr.col_sq_norms}). *)
val of_csr : ?pool:Tmest_parallel.Pool.t -> Csr.t -> t

(** [of_mat ?pool m] wraps a dense matrix (small-[n] fast path and test
    oracle).  Carries exact diagonals. *)
val of_mat : ?pool:Tmest_parallel.Pool.t -> Mat.t -> t

(** [normal a] is the square operator [x ↦ Aᵀ(A x)] — the matrix-free
    normal equations.  Symmetric, so [apply_t = apply].  Its [diag] is
    [a]'s [normal_diag]. *)
val normal : t -> t

(** [diag d] is the diagonal operator [x ↦ d ∘ x]. *)
val diag : Vec.t -> t

val identity : int -> t

(** [scale c a] is [c·A] (diagonals scale by [c] and [c²]). *)
val scale : float -> t -> t

(** [add a b] is [A + B] (shapes must match); [diag] adds when both
    operands track one. *)
val add : t -> t -> t

(** [add_diag a d] is [A + diag d] for square [a]. *)
val add_diag : t -> Vec.t -> t

(** [shift a c] is [A + c·I] for square [a] (ridge terms). *)
val shift : t -> float -> t

(** [outer u v] is the rank-one operator [x ↦ u (v·x)]. *)
val outer : Vec.t -> Vec.t -> t

(** [precondition a d] is the symmetrically scaled operator
    [D^{-1/2} A D^{-1/2}] with [D = diag d], [d > 0] elementwise —
    similar to [M⁻¹A] (same spectrum) but symmetric, so CG and spectral
    estimates apply unchanged.  Two extra O(n) scalings per
    application. *)
val precondition : t -> Vec.t -> t

(** [norm2_est ?iters a] estimates the largest eigenvalue of a
    symmetric PSD operator by power iteration, with the same start
    vector, default iteration count and 1% safety margin as
    [Fista.lipschitz_of_op] — a dense Gram and its matrix-free twin get
    the same estimate. *)
val norm2_est : ?iters:int -> t -> float

(** [trace_est ?samples ?seed a] is the Hutchinson trace estimator
    [E(zᵀAz)] over deterministic Rademacher vectors; exact in
    expectation, deterministic in [seed]. *)
val trace_est : ?samples:int -> ?seed:int -> t -> float
