(* Debug switch for the fused unsafe kernels.

   The hot reduction kernels in Vec/Mat/Csr come in two builds of the
   same loop: an [Array.unsafe_get]/[unsafe_set] version (default) and a
   bounds-checked version selected by setting TMEST_CHECKED_KERNELS in
   the environment.  Both run the identical sequence of floating-point
   operations — same elements, same order — so switching the flag can
   never change a result, only whether an out-of-bounds index faults
   loudly.  The flag is read once at module initialization and the
   kernels are selected at binding time, so the safe/unsafe choice costs
   nothing per call. *)

let checked =
  match Sys.getenv_opt "TMEST_CHECKED_KERNELS" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false
