(** Compressed sparse row (CSR) matrices.

    Routing matrices are sparse 0/1 matrices with a handful of nonzeros per
    column (one per link on the demand's path); CSR keeps the estimation
    methods' matrix-vector products cheap on the larger networks. *)

type t

(** [of_triplets ~rows ~cols entries] builds a CSR matrix from
    [(row, col, value)] triplets.  Duplicate coordinates are summed;
    explicit zeros are dropped. *)
val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t

(** [of_dense m] converts a dense matrix, dropping zeros. *)
val of_dense : Mat.t -> t

val rows : t -> int
val cols : t -> int

(** [nnz m] is the number of stored entries. *)
val nnz : t -> int

(** [get m i j] is the entry at [(i, j)] (0 if not stored). *)
val get : t -> int -> int -> float

(** [matvec ?pool m x] is [m * x] ([pool] as in {!matvec_into}). *)
val matvec : ?pool:Tmest_parallel.Pool.t -> t -> Vec.t -> Vec.t

(** [matvec_into ?pool m x ~dst] writes [m * x] into [dst] without
    allocating.  [dst] must not alias [x].  With [pool], rows are
    computed in parallel row blocks (large operands only); every row
    owns its [dst] slot and accumulates in sequential order, so the
    result is bit-identical at every pool size. *)
val matvec_into : ?pool:Tmest_parallel.Pool.t -> t -> Vec.t -> dst:Vec.t -> unit

(** [tmatvec m x] is [mᵀ * x]. *)
val tmatvec : t -> Vec.t -> Vec.t

(** [tmatvec_into m x ~dst] writes [mᵀ * x] into [dst] without
    allocating.  [dst] must not alias [x]. *)
val tmatvec_into : t -> Vec.t -> dst:Vec.t -> unit

(** [normal_apply_into ?pool m x ~link ~dst] writes [mᵀ(m x)] into
    [dst], staging the forward product in the caller-owned [link]
    buffer (length [rows m]; must not alias [x] or [dst]).  The forward
    half runs on [pool] with nnz-weighted granularity; results are
    bit-identical to [matvec_into] followed by [tmatvec_into] at every
    pool size.  This is the per-iteration kernel of the matrix-free
    normal-equation operators. *)
val normal_apply_into :
  ?pool:Tmest_parallel.Pool.t -> t -> Vec.t -> link:Vec.t -> dst:Vec.t -> unit

(** [to_dense m] expands to a dense matrix. *)
val to_dense : t -> Mat.t

(** [col_sq_norms m] is the vector of column sums-of-squares
    [d_j = Σ_i m_ij²] — the exact diagonal of the Gram matrix [mᵀm],
    computed in one O(nnz) pass (the building block of Jacobi
    preconditioners; exact, so no stochastic trace/diagonal estimation
    is ever needed for Gram diagonals). *)
val col_sq_norms : t -> Vec.t

(** [row_nonzeros m i] is the list of [(col, value)] pairs of row [i],
    in increasing column order. *)
val row_nonzeros : t -> int -> (int * float) list

(** [iter_row m i f] applies [f col value] over row [i]'s stored entries. *)
val iter_row : t -> int -> (int -> float -> unit) -> unit

(** [scale_cols m d] multiplies column [j] by [d.(j)]. *)
val scale_cols : t -> Vec.t -> t

(** [transpose m] is [mᵀ] in CSR form. *)
val transpose : t -> t

(** [gram m] is the dense Gram matrix [mᵀ * m]. *)
val gram : t -> Mat.t
