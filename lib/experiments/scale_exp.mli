(** Scaling-law study: method cost and accuracy on synthetic
    hierarchical backbones across the workspace sparse gate. *)

val scale : Ctx.t -> Report.t
