module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Fanout = Tmest_core.Fanout
module Metrics = Tmest_core.Metrics
module Dataset = Tmest_traffic.Dataset

(* Average true demand over the same window the estimator saw. *)
let window_truth net window =
  let d = net.Ctx.dataset in
  let ks = Array.of_list (Dataset.busy_samples d) in
  let window = Stdlib.min window (Array.length ks) in
  let ks = Array.sub ks (Array.length ks - window) window in
  let p = Dataset.num_pairs d in
  let acc = Vec.zeros p in
  Array.iter (fun k -> Vec.axpy_into 1. (Dataset.demand_at d k) acc ~dst:acc) ks;
  Vec.scale (1. /. float_of_int window) acc

let estimate_for ?x0 net window =
  let samples = Ctx.Scan.samples net ~window in
  let r = Fanout.estimate ?x0 net.Ctx.workspace ~load_samples:samples in
  (r, window_truth net window)

(* Scan over window lengths, warm-starting each solve from the previous
   length's fanout vector (the fanout space is shared across lengths). *)
let scan_windows net windows =
  let _, results =
    List.fold_left
      (fun (x0, acc) window ->
        let r, truth = estimate_for ?x0 net window in
        (Some r.Fanout.fanouts, (window, r.Fanout.estimate, truth) :: acc))
      (None, []) windows
  in
  List.rev results

let fig10 ctx =
  let net = ctx.Ctx.america in
  let windows = if ctx.Ctx.fast then [ 1; 3 ] else [ 1; 3; 10 ] in
  let items =
    List.concat_map
      (fun (window, estimate, truth) ->
        let order = Array.init (Array.length truth) (fun i -> i) in
        Array.sort (fun a b -> compare truth.(a) truth.(b)) order;
        let points = Array.map (fun p -> (truth.(p), estimate.(p))) order in
        [
          Report.series
            (Printf.sprintf "window %d: average demand vs estimate" window)
            points;
          Report.note "window %d: MRE %.3f, rank correlation %.3f" window
            (Metrics.mre ~truth ~estimate ())
            (Metrics.rank_correlation truth estimate);
        ])
      (scan_windows net windows)
  in
  {
    Report.id = "fig10";
    title = "Fanout estimation vs window-average demands (America)";
    items;
  }

let fig11 ctx =
  let windows =
    if ctx.Ctx.fast then [ 1; 2; 4; 8 ]
    else [ 1; 2; 3; 5; 7; 10; 15; 20; 25; 30; 35; 40 ]
  in
  let items =
    List.concat_map
      (fun net ->
        let points =
          List.map
            (fun (window, estimate, truth) ->
              (float_of_int window, Metrics.mre ~truth ~estimate ()))
            (scan_windows net windows)
        in
        let points = Array.of_list points in
        let peak =
          Array.fold_left (fun acc (_, m) -> Stdlib.max acc m) 0. points
        in
        let last = snd points.(Array.length points - 1) in
        [
          Report.series (net.Ctx.label ^ " MRE vs window length") points;
          Report.note
            "%s: MRE %.3f at its worst short window -> %.3f at window %d \
             (decreases then levels out; the window-1 point is \
             artificially good because our access-link rows make a single \
             snapshot near-sufficient, see EXPERIMENTS.md)"
            net.Ctx.label peak last
            (int_of_float (fst points.(Array.length points - 1)));
        ])
      (Ctx.networks ctx)
  in
  {
    Report.id = "fig11";
    title = "Fanout-estimation MRE as a function of window length";
    items;
  }
