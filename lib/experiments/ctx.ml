module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Dataset = Tmest_traffic.Dataset
module Spec = Tmest_traffic.Spec
module Pool = Tmest_parallel.Pool
module Obs = Tmest_obs.Obs

type network = {
  label : string;
  dataset : Dataset.t;
  workspace : Tmest_core.Workspace.t;
  snapshot_k : int;
  truth : Vec.t;
  loads : Vec.t;
  gravity_prior : Vec.t Pool.Once.t;
  wcb : Tmest_core.Wcb.bounds Pool.Once.t;
  wcb_prior : Vec.t Pool.Once.t;
}

type t = {
  europe : network;
  america : network;
  pool : Pool.t;
  fast : bool;
  sink : Obs.sink;
  scale_pops : int list option;
  scale_seed : int option;
}

let make_network ~pool ~sink label dataset =
  let spec = dataset.Dataset.spec in
  let snapshot_k = spec.Spec.busy_start + (spec.Spec.busy_len / 2) in
  let truth = Dataset.demand_at dataset snapshot_k in
  let loads = Dataset.link_loads_at dataset snapshot_k in
  let workspace =
    Tmest_core.Workspace.create ~pool ~sink dataset.Dataset.routing
  in
  let gravity_prior =
    Pool.Once.make (fun () ->
        Tmest_core.Estimator.prior Tmest_core.Estimator.Prior_gravity
          workspace ~loads)
  in
  let wcb = Pool.Once.make (fun () -> Tmest_core.Wcb.bounds workspace ~loads) in
  let wcb_prior =
    Pool.Once.make (fun () ->
        Tmest_core.Workspace.cached_prior workspace
          ~kind:Tmest_core.Workspace.Prior_wcb ~loads ~compute:(fun () ->
            Tmest_core.Wcb.midpoint (Pool.Once.force wcb)))
  in
  {
    label;
    dataset;
    workspace;
    snapshot_k;
    truth;
    loads;
    gravity_prior;
    wcb;
    wcb_prior;
  }

let create ?(fast = false) ?jobs ?(sink = Obs.null) ?scale_pops ?scale_seed ()
    =
  let pool =
    match jobs with Some j -> Pool.create ~jobs:j | None -> Pool.default ()
  in
  if not (Obs.is_null sink) then Pool.set_sink pool sink;
  (* The two datasets are independent; generate and wrap them as two
     pool tasks so context construction overlaps on multicore runs. *)
  let builders =
    if fast then
      [|
        (fun () ->
          make_network ~pool ~sink "Europe"
            (Dataset.generate
               { (Spec.scaled ~nodes:6 ~directed_links:28 Spec.europe) with
                 Spec.name = "europe-fast" }));
        (fun () ->
          make_network ~pool ~sink "America"
            (Dataset.generate
               { (Spec.scaled ~nodes:8 ~directed_links:44 Spec.america) with
                 Spec.name = "america-fast" }));
      |]
    else
      [|
        (fun () -> make_network ~pool ~sink "Europe" (Dataset.europe ()));
        (fun () -> make_network ~pool ~sink "America" (Dataset.america ()));
      |]
  in
  match Pool.map pool (fun build -> build ()) builders with
  | [| europe; america |] ->
      { europe; america; pool; fast; sink; scale_pops; scale_seed }
  | _ -> assert false

let pool t = t.pool
let sink t = t.sink
let networks t = [ t.europe; t.america ]

(* Scale-study networks are built on demand rather than held in the
   context: they are large, and only the scaling experiments want them.
   The workspace picks sparse mode by itself once the pair count clears
   the gate. *)
let synthetic ?seed t ~pops =
  make_network ~pool:t.pool ~sink:t.sink
    (Printf.sprintf "Synthetic-%d" pops)
    (Dataset.synthetic ?seed ~pops ())

let busy_loads net ~window =
  let d = net.dataset in
  let ks = Array.of_list (Dataset.busy_samples d) in
  let window = Stdlib.min window (Array.length ks) in
  let ks = Array.sub ks (Array.length ks - window) window in
  (* One load extraction (CSR matvec) per row, blitted wholesale —
     never one extraction per matrix element. *)
  let m = Mat.zeros window (Dataset.num_links d) in
  Array.iteri (fun i k -> Mat.set_row m i (Dataset.link_loads_at d k)) ks;
  m

let busy_mean net = Dataset.busy_mean_demand net.dataset

let scan_busy ?(opts = Tmest_core.Estimator.Options.default) net est ~window
    ~steps =
  let module Options = Tmest_core.Estimator.Options in
  let d = net.dataset in
  let ks = Array.of_list (Dataset.busy_samples d) in
  let nk = Array.length ks in
  if nk = 0 then invalid_arg "Ctx.scan_busy: no busy samples";
  let window = Stdlib.max 1 (Stdlib.min window nk) in
  let steps = Stdlib.max 1 (Stdlib.min steps (nk - window + 1)) in
  let l = Dataset.num_links d in
  let sink =
    if Obs.is_null opts.Options.sink then
      Tmest_core.Workspace.sink net.workspace
    else opts.Options.sink
  in
  (* Hoisted measurement pipeline: each distinct snapshot's load vector
     is extracted once (one CSR matvec) up front, and every window's
     samples matrix is refilled by row blits into a per-domain scratch
     matrix from the workspace arena — never one extraction per matrix
     element, never one matrix allocation per window.  The values (and
     therefore the estimates) are bit-identical to the naive build. *)
  let base = nk - steps - window + 1 in
  let loads_at =
    Array.init (steps + window - 1) (fun j ->
        Dataset.link_loads_at d ks.(base + j))
  in
  let samples_arena () =
    Tmest_core.Workspace.scratch_mat net.workspace ~name:"scan.samples"
      ~rows:window ~cols:l
  in
  let solve ~opts ~samples i =
    let last = nk - steps + i in
    let first = last - window + 1 in
    for r = 0 to window - 1 do
      Mat.set_row samples r loads_at.(first - base + r)
    done;
    (* A private copy per solve: the shared [loads_at] rows also feed
       later windows' samples fills, so the estimator must never see
       the shared vector (degraded-mode repairs get their own copy, as
       they did when each window extracted loads afresh). *)
    let loads = Vec.copy loads_at.(last - base) in
    let run () =
      Tmest_core.Estimator.solve ~opts est net.workspace ~loads
        ~load_samples:samples
    in
    let estimate =
      if sink.Obs.enabled then
        Obs.span sink "scan.window"
          ~args:[ ("step", Obs.Int i); ("snapshot", Obs.Int ks.(last)) ]
          run
      else run ()
    in
    (ks.(last), estimate)
  in
  match Tmest_core.Workspace.pool net.workspace with
  | Some p when Pool.size p > 1 && steps > 1 ->
      (* One contiguous chunk of windows per pool slot.  Within a chunk
         the steps run in order and (when warm) chain warm starts under
         a chunk-tagged key, so results depend only on (jobs, steps) —
         never on scheduling.  Cold scans are bit-identical to the
         sequential path. *)
      let out = Array.make steps None in
      Pool.iter_chunks p ~n:steps (fun ~chunk ~lo ~hi ->
          let opts =
            if opts.Options.warm then
              (* Nested under any caller-supplied tag so two tagged
                 scans sharing a workspace keep disjoint chains. *)
              let tag =
                match opts.Options.warm_tag with
                | Some t -> Printf.sprintf "%s/chunk%d" t chunk
                | None -> Printf.sprintf "chunk%d" chunk
              in
              Options.with_warm_tag tag opts
            else opts
          in
          (* Keyed by the executing domain, so chunks that land on the
             same domain reuse one buffer and chunks on different
             domains never share mutable state. *)
          let samples = samples_arena () in
          for i = lo to hi - 1 do
            out.(i) <- Some (solve ~opts ~samples i)
          done);
      Array.to_list
        (Array.map
           (function Some r -> r | None -> assert false (* all written *))
           out)
  | _ ->
      (* Explicit in-order recursion: each step's solve must complete
         before the next so warm starts chain through the workspace
         cache. *)
      let samples = samples_arena () in
      let rec go i acc =
        if i >= steps then List.rev acc
        else go (i + 1) (solve ~opts ~samples i :: acc)
      in
      go 0 []

(* Production-shaped day replay: [windows] successive re-estimations —
   the paper's every-5-minutes operational loop, 288 intervals per
   day — cycling over the dataset's full measurement day when the
   replay is longer than the recorded series.  Same hoisted pipeline as
   [scan_busy]: per-snapshot loads extracted once, one samples matrix
   per scanning domain, per-window loads copies.  Cold replays are
   bit-identical at every pool size; warm replays chain per chunk
   exactly like [scan_busy]. *)
let replay ?(opts = Tmest_core.Estimator.Options.default) net est ~window
    ~windows =
  let module Options = Tmest_core.Estimator.Options in
  let d = net.dataset in
  let ns = Dataset.num_samples d in
  if ns = 0 then invalid_arg "Ctx.replay: no samples";
  if windows <= 0 then invalid_arg "Ctx.replay: windows must be > 0";
  let window = Stdlib.max 1 (Stdlib.min window ns) in
  let positions = ns - window + 1 in
  let l = Dataset.num_links d in
  let sink =
    if Obs.is_null opts.Options.sink then
      Tmest_core.Workspace.sink net.workspace
    else opts.Options.sink
  in
  let loads_at = Array.init ns (fun k -> Dataset.link_loads_at d k) in
  let samples_arena () =
    Tmest_core.Workspace.scratch_mat net.workspace ~name:"replay.samples"
      ~rows:window ~cols:l
  in
  let solve ~opts ~samples i =
    let last = window - 1 + (i mod positions) in
    let first = last - window + 1 in
    for r = 0 to window - 1 do
      Mat.set_row samples r loads_at.(first + r)
    done;
    let loads = Vec.copy loads_at.(last) in
    let run () =
      Tmest_core.Estimator.solve ~opts est net.workspace ~loads
        ~load_samples:samples
    in
    let estimate =
      if sink.Obs.enabled then
        Obs.span sink "replay.window"
          ~args:[ ("interval", Obs.Int i); ("snapshot", Obs.Int last) ]
          run
      else run ()
    in
    (last, estimate)
  in
  match Tmest_core.Workspace.pool net.workspace with
  | Some p when Pool.size p > 1 && windows > 1 ->
      let out = Array.make windows None in
      Pool.iter_chunks p ~n:windows (fun ~chunk ~lo ~hi ->
          let opts =
            if opts.Options.warm then
              let tag =
                match opts.Options.warm_tag with
                | Some t -> Printf.sprintf "%s/chunk%d" t chunk
                | None -> Printf.sprintf "chunk%d" chunk
              in
              Options.with_warm_tag tag opts
            else opts
          in
          let samples = samples_arena () in
          for i = lo to hi - 1 do
            out.(i) <- Some (solve ~opts ~samples i)
          done);
      Array.to_list
        (Array.map
           (function Some r -> r | None -> assert false (* all written *))
           out)
  | _ ->
      let samples = samples_arena () in
      let rec go i acc =
        if i >= windows then List.rev acc
        else go (i + 1) (solve ~opts ~samples i :: acc)
      in
      go 0 []
