module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Dataset = Tmest_traffic.Dataset
module Spec = Tmest_traffic.Spec
module Pool = Tmest_parallel.Pool
module Obs = Tmest_obs.Obs

type network = {
  label : string;
  dataset : Dataset.t;
  workspace : Tmest_core.Workspace.t;
  snapshot_k : int;
  truth : Vec.t;
  loads : Vec.t;
  gravity_prior : Vec.t Pool.Once.t;
  wcb : Tmest_core.Wcb.bounds Pool.Once.t;
  wcb_prior : Vec.t Pool.Once.t;
}

type t = {
  europe : network;
  america : network;
  pool : Pool.t;
  fast : bool;
  sink : Obs.sink;
  scale_pops : int list option;
  scale_seed : int option;
}

let make_network ~pool ~sink label dataset =
  let spec = dataset.Dataset.spec in
  let snapshot_k = spec.Spec.busy_start + (spec.Spec.busy_len / 2) in
  let truth = Dataset.demand_at dataset snapshot_k in
  let loads = Dataset.link_loads_at dataset snapshot_k in
  let workspace =
    Tmest_core.Workspace.create ~pool ~sink dataset.Dataset.routing
  in
  let gravity_prior =
    Pool.Once.make (fun () ->
        Tmest_core.Estimator.prior Tmest_core.Estimator.Prior_gravity
          workspace ~loads)
  in
  let wcb = Pool.Once.make (fun () -> Tmest_core.Wcb.bounds workspace ~loads) in
  let wcb_prior =
    Pool.Once.make (fun () ->
        Tmest_core.Workspace.cached_prior workspace
          ~kind:Tmest_core.Workspace.Prior_wcb ~loads ~compute:(fun () ->
            Tmest_core.Wcb.midpoint (Pool.Once.force wcb)))
  in
  {
    label;
    dataset;
    workspace;
    snapshot_k;
    truth;
    loads;
    gravity_prior;
    wcb;
    wcb_prior;
  }

let create ?(fast = false) ?jobs ?(sink = Obs.null) ?scale_pops ?scale_seed ()
    =
  let pool =
    match jobs with Some j -> Pool.create ~jobs:j | None -> Pool.default ()
  in
  if not (Obs.is_null sink) then Pool.set_sink pool sink;
  (* The two datasets are independent; generate and wrap them as two
     pool tasks so context construction overlaps on multicore runs. *)
  let builders =
    if fast then
      [|
        (fun () ->
          make_network ~pool ~sink "Europe"
            (Dataset.generate
               { (Spec.scaled ~nodes:6 ~directed_links:28 Spec.europe) with
                 Spec.name = "europe-fast" }));
        (fun () ->
          make_network ~pool ~sink "America"
            (Dataset.generate
               { (Spec.scaled ~nodes:8 ~directed_links:44 Spec.america) with
                 Spec.name = "america-fast" }));
      |]
    else
      [|
        (fun () -> make_network ~pool ~sink "Europe" (Dataset.europe ()));
        (fun () -> make_network ~pool ~sink "America" (Dataset.america ()));
      |]
  in
  match Pool.map pool (fun build -> build ()) builders with
  | [| europe; america |] ->
      { europe; america; pool; fast; sink; scale_pops; scale_seed }
  | _ -> assert false

let pool t = t.pool
let sink t = t.sink
let networks t = [ t.europe; t.america ]

(* Scale-study networks are built on demand rather than held in the
   context: they are large, and only the scaling experiments want them.
   The workspace picks sparse mode by itself once the pair count clears
   the gate. *)
let synthetic ?seed t ~pops =
  make_network ~pool:t.pool ~sink:t.sink
    (Printf.sprintf "Synthetic-%d" pops)
    (Dataset.synthetic ?seed ~pops ())

let busy_mean net = Dataset.busy_mean_demand net.dataset

module Scan = struct
  module Options = Tmest_core.Estimator.Options
  module Workspace = Tmest_core.Workspace

  type source =
    | Busy of { window : int; steps : int }
    | Replay of { window : int; windows : int }
    | Windows of { window : int; loads : Vec.t array }

  type t = {
    source : source;
    opts : Options.t;
    tag : string option;
    pool : Pool.t option;
    on_window : (step:int -> snapshot:int -> Vec.t -> unit) option;
  }

  let make ?(opts = Options.default) ?tag ?pool ?on_window source =
    { source; opts; tag; pool; on_window }

  let samples net ~window =
    let d = net.dataset in
    let ks = Array.of_list (Dataset.busy_samples d) in
    let window = Stdlib.min window (Array.length ks) in
    let ks = Array.sub ks (Array.length ks - window) window in
    (* One load extraction (CSR matvec) per row, blitted wholesale —
       never one extraction per matrix element. *)
    let m = Mat.zeros window (Dataset.num_links d) in
    Array.iteri (fun i k -> Mat.set_row m i (Dataset.link_loads_at d k)) ks;
    m

  (* One engine for every source.  A source compiles down to a hoisted
     array of per-snapshot load vectors (each extracted once — one CSR
     matvec per distinct snapshot for the dataset-backed sources), a
     window-start mapping and a snapshot-label mapping; the engine
     refills a per-domain scratch samples matrix by row blits and runs
     one estimator solve per step.  The values (and therefore the
     estimates) are bit-identical to the pre-[Scan] entry points this
     replaces, which a golden test pins. *)
  type compiled = {
    loads_at : Vec.t array;
    window : int;
    steps : int;
    start_of : int -> int;  (** window start index into [loads_at] *)
    snap_of : int -> int;  (** snapshot label for step [i] *)
    arena : string;
    span : string;
    step_arg : string;
  }

  let compile net source =
    let d = net.dataset in
    match source with
    | Busy { window; steps } ->
        let ks = Array.of_list (Dataset.busy_samples d) in
        let nk = Array.length ks in
        if nk = 0 then invalid_arg "Ctx.Scan: no busy samples";
        let window = Stdlib.max 1 (Stdlib.min window nk) in
        let steps = Stdlib.max 1 (Stdlib.min steps (nk - window + 1)) in
        let base = nk - steps - window + 1 in
        let loads_at =
          Array.init (steps + window - 1) (fun j ->
              Dataset.link_loads_at d ks.(base + j))
        in
        {
          loads_at;
          window;
          steps;
          start_of = (fun i -> i);
          snap_of = (fun i -> ks.(nk - steps + i));
          arena = "scan.samples";
          span = "scan.window";
          step_arg = "step";
        }
    | Replay { window; windows } ->
        let ns = Dataset.num_samples d in
        if ns = 0 then invalid_arg "Ctx.Scan: no samples";
        if windows <= 0 then invalid_arg "Ctx.Scan: windows must be > 0";
        let window = Stdlib.max 1 (Stdlib.min window ns) in
        let positions = ns - window + 1 in
        let loads_at = Array.init ns (fun k -> Dataset.link_loads_at d k) in
        {
          loads_at;
          window;
          steps = windows;
          start_of = (fun i -> i mod positions);
          snap_of = (fun i -> (i mod positions) + window - 1);
          arena = "replay.samples";
          span = "replay.window";
          step_arg = "interval";
        }
    | Windows { window; loads } ->
        let n = Array.length loads in
        if n = 0 then invalid_arg "Ctx.Scan: empty load series";
        let window = Stdlib.max 1 (Stdlib.min window n) in
        {
          loads_at = loads;
          window;
          steps = n - window + 1;
          start_of = (fun i -> i);
          snap_of = (fun i -> i + window - 1);
          arena = "series.samples";
          span = "scan.window";
          step_arg = "step";
        }

  let run net est t =
    let c = compile net t.source in
    let opts =
      match t.tag with
      | Some tag -> Options.with_warm_tag tag t.opts
      | None -> t.opts
    in
    let sink =
      if Obs.is_null opts.Options.sink then Workspace.sink net.workspace
      else opts.Options.sink
    in
    let l = Dataset.num_links net.dataset in
    let samples_arena () =
      Workspace.scratch_mat net.workspace ~name:c.arena ~rows:c.window ~cols:l
    in
    let solve ~opts ~samples i =
      let s = c.start_of i in
      for r = 0 to c.window - 1 do
        Mat.set_row samples r c.loads_at.(s + r)
      done;
      (* A private copy per solve: the shared [loads_at] rows also feed
         later windows' samples fills, so the estimator must never see
         the shared vector (degraded-mode repairs get their own copy,
         as they did when each window extracted loads afresh). *)
      let loads = Vec.copy c.loads_at.(s + c.window - 1) in
      let run () =
        Tmest_core.Estimator.solve ~opts est net.workspace ~loads
          ~load_samples:samples
      in
      let estimate =
        if sink.Obs.enabled then
          Obs.span sink c.span
            ~args:
              [ (c.step_arg, Obs.Int i); ("snapshot", Obs.Int (c.snap_of i)) ]
            run
        else run ()
      in
      (match t.on_window with
      | Some f -> f ~step:i ~snapshot:(c.snap_of i) estimate
      | None -> ());
      (c.snap_of i, estimate)
    in
    let pool =
      match t.pool with Some p -> Some p | None -> Workspace.pool net.workspace
    in
    match pool with
    | Some p when Pool.size p > 1 && c.steps > 1 ->
        (* One contiguous chunk of windows per pool slot.  Within a
           chunk the steps run in order and (when warm) chain warm
           starts under a chunk-tagged key, so results depend only on
           (jobs, steps) — never on scheduling.  Cold scans are
           bit-identical to the sequential path. *)
        let out = Array.make c.steps None in
        Pool.iter_chunks p ~n:c.steps (fun ~chunk ~lo ~hi ->
            let opts =
              if opts.Options.warm then
                (* Nested under any caller-supplied tag so two tagged
                   scans sharing a workspace keep disjoint chains. *)
                let tag =
                  match opts.Options.warm_tag with
                  | Some t -> Printf.sprintf "%s/chunk%d" t chunk
                  | None -> Printf.sprintf "chunk%d" chunk
                in
                Options.with_warm_tag tag opts
              else opts
            in
            (* Keyed by the executing domain, so chunks that land on
               the same domain reuse one buffer and chunks on different
               domains never share mutable state. *)
            let samples = samples_arena () in
            for i = lo to hi - 1 do
              out.(i) <- Some (solve ~opts ~samples i)
            done);
        Array.to_list
          (Array.map
             (function Some r -> r | None -> assert false (* all written *))
             out)
    | _ ->
        (* Explicit in-order recursion: each step's solve must complete
           before the next so warm starts chain through the workspace
           cache. *)
        let samples = samples_arena () in
        let rec go i acc =
          if i >= c.steps then List.rev acc
          else go (i + 1) (solve ~opts ~samples i :: acc)
        in
        go 0 []

  (* Incremental push-one-estimate-one engine for streaming consumers
     (the daemon): a ring of the last [window] load rows, assembled
     oldest-first into a workspace scratch matrix per estimate.  At full
     fill the assembled samples matrix is bit-identical to what a batch
     [run] over the same rows would build, so a sequential warm daemon
     tick stream matches a sequential warm batch scan bit for bit. *)
  module Series = struct
    type series = {
      ws : Workspace.t;
      name : string;
      window : int;
      links : int;
      ring : Mat.t;
      mutable count : int;
      mutable head : int;  (** next write slot *)
      mutable pushed : int;  (** lifetime pushes, across {!clear}s *)
    }

    type t = series

    let create ?(name = "series") ws ~window ~links =
      if window < 1 then invalid_arg "Scan.Series.create: window < 1";
      if links < 1 then invalid_arg "Scan.Series.create: links < 1";
      {
        ws;
        name;
        window;
        links;
        ring = Mat.zeros window links;
        count = 0;
        head = 0;
        pushed = 0;
      }

    let fill t = t.count
    let total t = t.pushed
    let window t = t.window

    let push t v =
      if Array.length v <> t.links then
        invalid_arg "Scan.Series.push: load vector has the wrong length";
      Mat.set_row t.ring t.head v;
      t.head <- (t.head + 1) mod t.window;
      t.count <- Stdlib.min (t.count + 1) t.window;
      t.pushed <- t.pushed + 1

    (* Invalidate the window (a routing change made the old rows
       meaningless under the new [R]); the lifetime push count keeps
       running. *)
    let clear t =
      t.count <- 0;
      t.head <- 0

    let latest t =
      if t.count = 0 then invalid_arg "Scan.Series.latest: empty series";
      Mat.row t.ring ((t.head - 1 + t.window) mod t.window)

    let estimate ?(opts = Options.default) t est =
      if t.count = 0 then invalid_arg "Scan.Series.estimate: empty series";
      (* Time-series methods need at least two rows
         (Estimator.last_window); at fill one, the single measurement
         stands in for its own history. *)
      let rows = Stdlib.max 2 t.count in
      let samples =
        Workspace.scratch_mat t.ws ~name:(t.name ^ ".samples") ~rows
          ~cols:t.links
      in
      let oldest = (t.head - t.count + t.window) mod t.window in
      for i = 0 to t.count - 1 do
        Mat.set_row samples
          (rows - t.count + i)
          (Mat.row t.ring ((oldest + i) mod t.window))
      done;
      if t.count = 1 then Mat.set_row samples 0 (Mat.row t.ring oldest);
      let loads = latest t in
      Tmest_core.Estimator.solve ~opts est t.ws ~loads ~load_samples:samples
  end
end
