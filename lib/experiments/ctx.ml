module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Dataset = Tmest_traffic.Dataset
module Spec = Tmest_traffic.Spec

type network = {
  label : string;
  dataset : Dataset.t;
  workspace : Tmest_core.Workspace.t;
  snapshot_k : int;
  truth : Vec.t;
  loads : Vec.t;
  gravity_prior : Vec.t Lazy.t;
  wcb : Tmest_core.Wcb.bounds Lazy.t;
  wcb_prior : Vec.t Lazy.t;
}

type t = {
  europe : network;
  america : network;
  fast : bool;
}

let make_network label dataset =
  let spec = dataset.Dataset.spec in
  let snapshot_k = spec.Spec.busy_start + (spec.Spec.busy_len / 2) in
  let truth = Dataset.demand_at dataset snapshot_k in
  let loads = Dataset.link_loads_at dataset snapshot_k in
  let workspace = Tmest_core.Workspace.create dataset.Dataset.routing in
  let gravity_prior =
    lazy
      (Tmest_core.Estimator.build_prior_ws Tmest_core.Estimator.Prior_gravity
         workspace ~loads)
  in
  let wcb = lazy (Tmest_core.Wcb.bounds workspace ~loads) in
  let wcb_prior =
    lazy
      (Tmest_core.Workspace.cached_prior workspace
         ~kind:Tmest_core.Workspace.Prior_wcb ~loads ~compute:(fun () ->
           Tmest_core.Wcb.midpoint (Lazy.force wcb)))
  in
  {
    label;
    dataset;
    workspace;
    snapshot_k;
    truth;
    loads;
    gravity_prior;
    wcb;
    wcb_prior;
  }

let create ?(fast = false) () =
  if fast then begin
    let eu =
      Dataset.generate
        { (Spec.scaled ~nodes:6 ~directed_links:28 Spec.europe) with
          Spec.name = "europe-fast" }
    in
    let us =
      Dataset.generate
        { (Spec.scaled ~nodes:8 ~directed_links:44 Spec.america) with
          Spec.name = "america-fast" }
    in
    {
      europe = make_network "Europe" eu;
      america = make_network "America" us;
      fast = true;
    }
  end
  else
    {
      europe = make_network "Europe" (Dataset.europe ());
      america = make_network "America" (Dataset.america ());
      fast = false;
    }

let networks t = [ t.europe; t.america ]

let busy_loads net ~window =
  let d = net.dataset in
  let ks = Array.of_list (Dataset.busy_samples d) in
  let window = Stdlib.min window (Array.length ks) in
  let ks = Array.sub ks (Array.length ks - window) window in
  Mat.init window (Dataset.num_links d) (fun i j ->
      (Dataset.link_loads_at d ks.(i)).(j))

let busy_mean net = Dataset.busy_mean_demand net.dataset

let scan_busy ?(warm = false) net est ~window ~steps =
  let d = net.dataset in
  let ks = Array.of_list (Dataset.busy_samples d) in
  let nk = Array.length ks in
  if nk = 0 then invalid_arg "Ctx.scan_busy: no busy samples";
  let window = Stdlib.max 1 (Stdlib.min window nk) in
  let steps = Stdlib.max 1 (Stdlib.min steps (nk - window + 1)) in
  let l = Dataset.num_links d in
  (* Explicit in-order recursion: each step's solve must complete before
     the next so warm starts chain through the workspace cache. *)
  let rec go i acc =
    if i >= steps then List.rev acc
    else begin
      let last = nk - steps + i in
      let first = last - window + 1 in
      let samples =
        Mat.init window l (fun r j ->
            (Dataset.link_loads_at d ks.(first + r)).(j))
      in
      let loads = Dataset.link_loads_at d ks.(last) in
      let estimate =
        Tmest_core.Estimator.run_ws ~warm est net.workspace ~loads
          ~load_samples:samples
      in
      go (i + 1) ((ks.(last), estimate) :: acc)
    end
  in
  go 0 []
