(* Scaling-law study for the sparse solver core: synthetic hierarchical
   backbones on both sides of the workspace sparse gate, a sweep of
   methods per size, CPU seconds and per-solve allocation from the
   workspace counters.  The full BENCH_scale.json sweep lives in the
   bench driver; this experiment is the registry-sized view of the same
   law. *)

module Vec = Tmest_linalg.Vec
module Core = Tmest_core
module W = Tmest_core.Workspace

(* Every registered method that the workspace mode can run — the same
   capability predicate the registry exposes as [Registry.supports]
   (this module sits below [Registry] in the dependency order, so it
   consults the core predicate directly rather than keeping the old
   hand-maintained four-method list). *)
let methods ~sparse =
  List.filter
    (fun name -> (not sparse) || Core.Estimator.supports_sparse
                                   (Core.Estimator.of_name name))
    (Core.Estimator.all_names ())

let scale ctx =
  let sizes =
    match ctx.Ctx.scale_pops with
    | Some sizes -> sizes
    | None -> if ctx.Ctx.fast then [ 8; 12 ] else [ 25; 60; 100 ]
  in
  let rows =
    List.concat_map
      (fun pops ->
        let net = Ctx.synthetic ?seed:ctx.Ctx.scale_seed ctx ~pops in
        let ws = net.Ctx.workspace in
        let pairs = W.num_pairs ws in
        let samples = Ctx.Scan.samples net ~window:8 in
        List.map
          (fun name ->
            let m = Core.Estimator.of_name name in
            W.reset_stats ws;
            let t0 = Sys.time () in
            let estimate =
              Core.Estimator.solve m ws ~loads:net.Ctx.loads
                ~load_samples:samples
            in
            let seconds = Sys.time () -. t0 in
            let st = W.stats ws in
            let reference =
              if Core.Estimator.uses_time_series m then Ctx.busy_mean net
              else net.Ctx.truth
            in
            ( Printf.sprintf "%d/%s" pops name,
              [|
                float_of_int pops;
                float_of_int pairs;
                (if W.is_sparse ws then 1. else 0.);
                seconds;
                st.W.peak_solve_words;
                Core.Metrics.mre ~truth:reference ~estimate ();
              |] ))
          (methods ~sparse:(W.is_sparse ws)))
      sizes
  in
  {
    Report.id = "scale";
    title = "Scaling law: sparse vs dense solver core";
    items =
      [
        Report.table
          ~columns:
            [ "size/method"; "pops"; "pairs"; "sparse"; "cpu_s";
              "peak_words"; "mre" ]
          rows;
        Report.note
          "sparse = 1 once the OD-pair count clears the workspace gate \
           (%d): those solves never materialize a dense Gram or routing \
           matrix, so peak_words grows with nnz(R), not pairs^2."
          W.sparse_gate;
      ];
  }
