(** The experiment registry: every table and figure of the paper's
    evaluation, keyed by id
    ("fig1" .. "fig16", "tab1", "tab2"), plus the extension experiments
    ("ext1" .. "ext5") covering the paper's declared future work. *)

type entry = {
  id : string;
  title : string;
  run : Ctx.t -> Report.t;
}

val all : entry list

(** [find id] looks an experiment up.
    @raise Not_found for unknown ids. *)
val find : string -> entry

(** [ids ()] lists the registered experiment ids in paper order. *)
val ids : unit -> string list

(** [supports ~sparse m] — can method [m] run on a workspace in the
    given mode?  Dense mode accepts every method; sparse mode defers
    to {!Tmest_core.Estimator.supports_sparse} (false only for the
    LP-based worst-case bounds).  Every experiment or driver sweeping
    methods over a workspace must filter through this single predicate
    rather than keep its own exclusion list. *)
val supports : sparse:bool -> Tmest_core.Estimator.t -> bool

(** [method_names ~sparse] is {!Tmest_core.Estimator.all_names}
    filtered by {!supports}. *)
val method_names : sparse:bool -> string list

(** [run_all ?pool ctx] runs every registered experiment against [ctx]
    — concurrently on [pool] (default: the context's pool) — and
    returns [(entry, report)] in registry order.  Experiments are
    deterministic and only read the context, so the reports are
    identical to a sequential loop at every pool size. *)
val run_all : ?pool:Tmest_parallel.Pool.t -> Ctx.t -> (entry * Report.t) list
