module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Vardi = Tmest_core.Vardi
module Metrics = Tmest_core.Metrics
module Dataset = Tmest_traffic.Dataset
module Routing = Tmest_net.Routing

let tab1 ctx =
  let k = if ctx.Ctx.fast then 20 else 50 in
  let rows =
    List.map
      (fun sigma_inv2 ->
        let values =
          List.map
            (fun net ->
              let samples = Ctx.Scan.samples net ~window:k in
              let r =
                Vardi.estimate net.Ctx.workspace ~load_samples:samples
                  ~sigma_inv2
              in
              let truth = Ctx.busy_mean net in
              Metrics.mre ~truth ~estimate:r.Vardi.estimate ())
            (Ctx.networks ctx)
        in
        (Printf.sprintf "sigma^-2 = %g" sigma_inv2, Array.of_list values))
      [ 0.01; 1. ]
  in
  {
    Report.id = "tab1";
    title = Printf.sprintf "MRE for the Vardi approach, K = %d" k;
    items =
      [
        Report.table ~columns:[ "setting"; "Europe"; "America" ] rows;
        Report.note
          "paper: 0.47 / 0.98 at sigma^-2 = 0.01 and 302 / 1183 at \
           sigma^-2 = 1 — full faith in the Poisson assumption is \
           catastrophic";
      ];
  }

let fig12 ctx =
  let windows =
    if ctx.Ctx.fast then [ 25; 50; 100 ]
    else [ 25; 50; 100; 200; 400; 600; 800; 1000 ]
  in
  let unit_bps = 1e6 in
  let items =
    List.concat_map
      (fun net ->
        let d = net.Ctx.dataset in
        let truth = Ctx.busy_mean net in
        let max_window = List.fold_left Stdlib.max 0 windows in
        let series =
          Dataset.poisson_series d ~unit_bps ~samples:max_window
            ~seed:(20040 + Dataset.num_nodes d)
        in
        let loads =
          Mat.init max_window (Dataset.num_links d) (fun k j ->
              (Routing.link_loads d.Dataset.routing (Mat.row series k)).(j))
        in
        (* Growing-window scan, warm-starting each solve from the
           previous window's solution. *)
        let _, points =
          List.fold_left
            (fun (x0, acc) window ->
              let sub =
                Mat.submatrix loads ~row:0 ~col:0 ~rows:window
                  ~cols:(Mat.cols loads)
              in
              let r =
                Vardi.estimate ?x0 ~unit_bps net.Ctx.workspace
                  ~load_samples:sub ~sigma_inv2:1.
              in
              ( Some r.Vardi.estimate,
                (float_of_int window,
                 Metrics.mre ~truth ~estimate:r.Vardi.estimate ())
                :: acc ))
            (None, []) windows
        in
        let points = List.rev points in
        [
          Report.series
            (net.Ctx.label ^ " MRE vs window (synthetic Poisson TM)")
            (Array.of_list points);
        ])
      (Ctx.networks ctx)
  in
  {
    Report.id = "fig12";
    title =
      "Vardi on ideal Poisson data: MRE vs window size (covariance \
       estimation converges slowly)";
    items =
      items
      @ [
          Report.note
            "even when the Poisson assumption holds exactly, hundreds of \
             samples are needed for an acceptable error (paper Fig. 12)";
        ];
  }
