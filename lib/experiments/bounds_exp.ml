module Vec = Tmest_linalg.Vec
module Wcb = Tmest_core.Wcb
module Metrics = Tmest_core.Metrics

let fig8 ctx =
  let items =
    List.concat_map
      (fun net ->
        let b = Tmest_parallel.Pool.Once.force net.Ctx.wcb in
        let truth = net.Ctx.truth in
        let order = Array.init (Array.length truth) (fun i -> i) in
        Array.sort (fun a b -> compare truth.(a) truth.(b)) order;
        let lower =
          Array.map (fun p -> (truth.(p), b.Wcb.lower.(p))) order
        in
        let upper =
          Array.map (fun p -> (truth.(p), b.Wcb.upper.(p))) order
        in
        (* Bound quality counts. *)
        let trivial =
          Wcb.trivial_upper net.Ctx.workspace ~loads:net.Ctx.loads
        in
        let nontrivial = ref 0 and exact = ref 0 in
        let total = Array.length truth in
        Array.iteri
          (fun p u ->
            let tol = 1e-6 *. (1. +. truth.(p)) in
            if u < trivial.(p) -. tol || b.Wcb.lower.(p) > tol then
              incr nontrivial;
            if u -. b.Wcb.lower.(p) <= 1e-6 *. (1. +. u) then incr exact)
          b.Wcb.upper;
        let threshold, _ = Metrics.threshold_for_coverage ~coverage:0.9 truth in
        let mean_rel_width =
          let acc = ref 0. and count = ref 0 in
          Array.iteri
            (fun p t ->
              if t >= threshold && t > 0. then begin
                acc := !acc +. ((b.Wcb.upper.(p) -. b.Wcb.lower.(p)) /. t);
                incr count
              end)
            truth;
          !acc /. float_of_int (Stdlib.max 1 !count)
        in
        [
          Report.series (net.Ctx.label ^ " lower bound vs actual") lower;
          Report.series (net.Ctx.label ^ " upper bound vs actual") upper;
          Report.note
            "%s: %d/%d bounds non-trivial, %d measured exactly; mean \
             relative width on top demands %.2f"
            net.Ctx.label !nontrivial total !exact mean_rel_width;
        ])
      (Ctx.networks ctx)
  in
  {
    Report.id = "fig8";
    title = "Worst-case bounds on demands";
    items;
  }

let fig9 ctx =
  let items =
    List.concat_map
      (fun net ->
        let prior = Tmest_parallel.Pool.Once.force net.Ctx.wcb_prior in
        let truth = net.Ctx.truth in
        let order = Array.init (Array.length truth) (fun i -> i) in
        Array.sort (fun a b -> compare truth.(a) truth.(b)) order;
        let points = Array.map (fun p -> (truth.(p), prior.(p))) order in
        [
          Report.series (net.Ctx.label ^ " WCB prior vs actual") points;
          Report.note "%s: WCB prior MRE %.3f (rank correlation %.3f)"
            net.Ctx.label
            (Metrics.mre ~truth ~estimate:prior ())
            (Metrics.rank_correlation truth prior);
        ])
      (Ctx.networks ctx)
  in
  {
    Report.id = "fig9";
    title = "Priors obtained from worst-case bounds";
    items;
  }
