module Vec = Tmest_linalg.Vec
module Bayes = Tmest_core.Bayes
module Entropy = Tmest_core.Entropy
module Metrics = Tmest_core.Metrics
module Dataset = Tmest_traffic.Dataset

let sigma2_grid ~fast =
  if fast then [ 1e-3; 1.; 1e3 ]
  else [ 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 1e1; 1e2; 1e3; 1e4; 1e5 ]

let max_iter ~fast = if fast then 2000 else 12000

let sweep ~fast net ~prior method_ =
  let ws = net.Ctx.workspace in
  let loads = net.Ctx.loads and truth = net.Ctx.truth in
  List.map
    (fun sigma2 ->
      let estimate =
        match method_ with
        | `Bayes ->
            (Bayes.estimate ~stop:(Tmest_opt.Stop.make ~max_iter:(max_iter ~fast) ()) ws ~loads ~prior
               ~sigma2)
              .Bayes.estimate
        | `Entropy ->
            (Entropy.estimate ~stop:(Tmest_opt.Stop.make ~max_iter:(max_iter ~fast) ()) ws ~loads ~prior
               ~sigma2)
              .Entropy.estimate
      in
      (log10 sigma2, Metrics.mre ~truth ~estimate ()))
    (sigma2_grid ~fast)

let fig13 ctx =
  let items =
    List.concat_map
      (fun net ->
        let prior = Tmest_parallel.Pool.Once.force net.Ctx.gravity_prior in
        let bayes = sweep ~fast:ctx.Ctx.fast net ~prior `Bayes in
        let entropy = sweep ~fast:ctx.Ctx.fast net ~prior `Entropy in
        let prior_mre =
          Metrics.mre ~truth:net.Ctx.truth ~estimate:prior ()
        in
        [
          Report.series
            (net.Ctx.label ^ " Bayesian MRE vs log10(reg)")
            (Array.of_list bayes);
          Report.series
            (net.Ctx.label ^ " Entropy MRE vs log10(reg)")
            (Array.of_list entropy);
          Report.note
            "%s: gravity-prior MRE %.3f (the left asymptote); best Bayes \
             %.3f, best Entropy %.3f — large regularization (trust the \
             measurements) wins"
            net.Ctx.label prior_mre
            (List.fold_left (fun a (_, m) -> Stdlib.min a m) infinity bayes)
            (List.fold_left (fun a (_, m) -> Stdlib.min a m) infinity entropy);
        ])
      (Ctx.networks ctx)
  in
  {
    Report.id = "fig13";
    title =
      "MRE vs regularization parameter: Bayesian and Entropy (gravity \
       prior)";
    items;
  }

let fig14 ctx =
  let net = ctx.Ctx.america in
  let ws = net.Ctx.workspace in
  let prior = Tmest_parallel.Pool.Once.force net.Ctx.gravity_prior in
  let truth = net.Ctx.truth in
  let sigma2 = 1000. in
  let order = Array.init (Array.length truth) (fun i -> i) in
  Array.sort (fun a b -> compare truth.(a) truth.(b)) order;
  let items =
    List.concat_map
      (fun (label, estimate) ->
        let points = Array.map (fun p -> (truth.(p), estimate.(p))) order in
        [
          Report.series (label ^ " actual vs estimated (America)") points;
          Report.note "%s: MRE %.3f, rank correlation %.3f" label
            (Metrics.mre ~truth ~estimate ())
            (Metrics.rank_correlation truth estimate);
        ])
      [
        ( "Bayesian",
          (Bayes.estimate ~stop:(Tmest_opt.Stop.make ~max_iter:(max_iter ~fast:ctx.Ctx.fast) ()) ws
             ~loads:net.Ctx.loads ~prior ~sigma2)
            .Bayes.estimate );
        ( "Entropy",
          (Entropy.estimate ~stop:(Tmest_opt.Stop.make ~max_iter:(max_iter ~fast:ctx.Ctx.fast) ()) ws
             ~loads:net.Ctx.loads ~prior ~sigma2)
            .Entropy.estimate );
      ]
  in
  {
    Report.id = "fig14";
    title =
      "Real vs estimated demands, American subnetwork (regularization \
       1000)";
    items;
  }

let fig15 ctx =
  let items =
    List.concat_map
      (fun net ->
        let gravity = Tmest_parallel.Pool.Once.force net.Ctx.gravity_prior in
        let wcb = Tmest_parallel.Pool.Once.force net.Ctx.wcb_prior in
        let s_gravity = sweep ~fast:ctx.Ctx.fast net ~prior:gravity `Bayes in
        let s_wcb = sweep ~fast:ctx.Ctx.fast net ~prior:wcb `Bayes in
        let at_smallest l = snd (List.hd l) in
        [
          Report.series
            (net.Ctx.label ^ " Bayes w. gravity prior")
            (Array.of_list s_gravity);
          Report.series
            (net.Ctx.label ^ " Bayes w. WCB prior")
            (Array.of_list s_wcb);
          Report.note
            "%s: at small regularization the WCB prior wins (%.3f vs \
             %.3f); at large regularization both converge"
            net.Ctx.label (at_smallest s_wcb) (at_smallest s_gravity);
        ])
      (Ctx.networks ctx)
  in
  {
    Report.id = "fig15";
    title = "Bayesian MRE vs regularization: gravity prior vs WCB prior";
    items;
  }
