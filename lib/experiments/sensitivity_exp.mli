(** Extension: robustness of every registered method to injected
    measurement faults.

    Sweeps corruption cells (multiplicative noise levels, missing-link
    fractions, 32-bit counter wraps and resets — see
    {!Tmest_faults.Inject}) over both networks, runs all methods through
    the degraded estimation mode ({!Tmest_core.Degrade}), and reports an
    MRE-vs-corruption table per network plus the repair health of each
    cell.  The first cell is clean, pinning the degraded mode's
    no-repair behaviour. *)

val sens : Ctx.t -> Report.t
