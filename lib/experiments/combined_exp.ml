module Combined = Tmest_core.Combined
module Metrics = Tmest_core.Metrics
module Entropy = Tmest_core.Entropy
module Dataset = Tmest_traffic.Dataset

let fig16 ?steps ctx =
  let net = ctx.Ctx.europe in
  let steps =
    match steps with
    | Some s -> s
    | None -> if ctx.Ctx.fast then 4 else 25
  in
  let ws = net.Ctx.workspace in
  let prior = Tmest_parallel.Pool.Once.force net.Ctx.gravity_prior in
  let truth = net.Ctx.truth and loads = net.Ctx.loads in
  let sigma2 = 1000. in
  let base = (Entropy.estimate ws ~loads ~prior ~sigma2).Entropy.estimate in
  let base_mre = Metrics.mre ~truth ~estimate:base () in
  let to_points steps_list =
    Array.of_list
      ((0., base_mre)
      :: List.mapi
           (fun i s -> (float_of_int (i + 1), s.Combined.mre))
           steps_list)
  in
  let greedy = Combined.greedy ws ~loads ~prior ~truth ~sigma2 ~steps in
  let largest =
    Combined.largest_first ws ~loads ~prior ~truth ~sigma2 ~steps
  in
  let count_until l target =
    let rec go i = function
      | [] -> None
      | s :: rest ->
          if s.Combined.mre < target then Some (i + 1) else go (i + 1) rest
    in
    go 0 l
  in
  let describe label l target =
    match count_until l target with
    | Some k ->
        Report.note "%s: MRE < %.0f%% after measuring %d demands" label
          (100. *. target) k
    | None ->
        Report.note "%s: MRE still >= %.0f%% after %d measurements" label
          (100. *. target) steps
  in
  {
    Report.id = "fig16";
    title =
      "Entropy MRE vs number of directly measured demands (Europe)";
    items =
      [
        Report.series "greedy (exhaustive search)" (to_points greedy);
        Report.series "largest demands first" (to_points largest);
        Report.note "starting MRE (no measurements): %.3f" base_mre;
        describe "greedy" greedy (base_mre /. 4.);
        describe "largest-first" largest (base_mre /. 4.);
        Report.note
          "paper: Europe drops from 11%% to <1%% after 6 greedy \
           measurements, but needs the 19 largest demands for the same \
           via the size-ranked policy";
      ];
  }
