type entry = {
  id : string;
  title : string;
  run : Ctx.t -> Report.t;
}

let all =
  [
    {
      id = "fig1";
      title = "Total network traffic over time";
      run = Data_analysis.fig1;
    };
    {
      id = "fig2";
      title = "Cumulative demand distributions";
      run = Data_analysis.fig2;
    };
    {
      id = "fig3";
      title = "Spatial distribution of traffic";
      run = Data_analysis.fig3;
    };
    {
      id = "fig4";
      title = "Largest demands of the top-4 American PoPs";
      run = Data_analysis.fig4;
    };
    {
      id = "fig5";
      title = "Fanouts of the largest demands (stability)";
      run = Data_analysis.fig5;
    };
    {
      id = "fig6";
      title = "Mean-variance relationship";
      run = Data_analysis.fig6;
    };
    {
      id = "fig7";
      title = "Gravity model vs actual demands";
      run = Data_analysis.fig7;
    };
    { id = "fig8"; title = "Worst-case bounds"; run = Bounds_exp.fig8 };
    { id = "fig9"; title = "Worst-case bound priors"; run = Bounds_exp.fig9 };
    {
      id = "fig10";
      title = "Fanout estimation scatter (America)";
      run = Fanout_exp.fig10;
    };
    {
      id = "fig11";
      title = "Fanout MRE vs window length";
      run = Fanout_exp.fig11;
    };
    { id = "tab1"; title = "Vardi MRE, K = 50"; run = Vardi_exp.tab1 };
    {
      id = "fig12";
      title = "Vardi MRE vs window size on synthetic Poisson TMs";
      run = Vardi_exp.fig12;
    };
    {
      id = "fig13";
      title = "Bayes/Entropy MRE vs regularization";
      run = Regularized_exp.fig13;
    };
    {
      id = "fig14";
      title = "Actual vs estimated (America, reg = 1000)";
      run = Regularized_exp.fig14;
    };
    {
      id = "fig15";
      title = "Bayes MRE vs regularization: gravity vs WCB prior";
      run = Regularized_exp.fig15;
    };
    {
      id = "fig16";
      title = "Entropy MRE vs number of measured demands";
      run = (fun ctx -> Combined_exp.fig16 ctx);
    };
    {
      id = "tab2";
      title = "Best MRE per method (summary)";
      run = Summary_exp.tab2;
    };
    {
      id = "ext1";
      title = "Prior ablation for regularized methods (extension)";
      run = Extensions.ext1;
    };
    {
      id = "ext2";
      title = "Measurement-error sensitivity (extension)";
      run = Extensions.ext2;
    };
    {
      id = "ext3";
      title = "Component failures and stale routing (extension)";
      run = Extensions.ext3;
    };
    {
      id = "ext4";
      title = "Generalized gravity with peering PoPs (extension)";
      run = Extensions.ext4;
    };
    {
      id = "ext5";
      title = "Cao et al. GLM parameter sweep (extension)";
      run = Extensions.ext5;
    };
    {
      id = "ext6";
      title = "NetFlow variance distortion (extension)";
      run = Extensions.ext6;
    };
    {
      id = "ext7";
      title = "Iterative Bayesian prior refinement (extension)";
      run = Extensions.ext7;
    };
    {
      id = "ext8";
      title = "ECMP vs single-path routing matrices (extension)";
      run = Extensions.ext8;
    };
    {
      id = "ext9";
      title = "Route-change inference, Nucci et al. (extension)";
      run = Extensions.ext9;
    };
    {
      id = "ext10";
      title = "Bayesian posterior sampling, Tebaldi-West (extension)";
      run = Extensions.ext10;
    };
    {
      id = "ext11";
      title = "TE with estimated traffic matrices (extension)";
      run = Extensions.ext11;
    };
    {
      id = "ext12";
      title = "Estimation quality across the diurnal cycle (extension)";
      run = Extensions.ext12;
    };
    {
      id = "sens";
      title = "Fault-injection sensitivity sweep (extension)";
      run = Sensitivity_exp.sens;
    };
    {
      id = "scale";
      title = "Scaling law: sparse vs dense solver core (extension)";
      run = Scale_exp.scale;
    };
  ]

let find id = List.find (fun e -> e.id = id) all
let ids () = List.map (fun e -> e.id) all

(* The one capability predicate shared by every method-sweeping driver
   (scale experiment, bench rows, CLI listings, the daemon): a thin
   face over [Estimator.supports_sparse] so experiment code never
   hard-codes method names again. *)
let supports ~sparse m =
  (not sparse) || Tmest_core.Estimator.supports_sparse m

let method_names ~sparse =
  List.filter
    (fun name -> supports ~sparse (Tmest_core.Estimator.of_name name))
    (Tmest_core.Estimator.all_names ())

let run_all ?pool ctx =
  let module Obs = Tmest_obs.Obs in
  let entries = Array.of_list all in
  let pool = match pool with Some p -> p | None -> Ctx.pool ctx in
  let sink = Ctx.sink ctx in
  (* Experiments only read the context (workspace caches are
     domain-safe and every experiment is deterministic), so running
     them concurrently returns the same reports as the sequential loop,
     in registry order. *)
  Array.to_list
    (Tmest_parallel.Pool.map pool
       (fun e ->
         if sink.Obs.enabled then
           Obs.span sink ("exp/" ^ e.id)
             ~args:[ ("title", Obs.String e.title) ]
             (fun () -> (e, e.run ctx))
         else (e, e.run ctx))
       entries)
