(** Shared experiment context: the two datasets plus cached derived
    artifacts (priors, worst-case bounds, busy-window load matrices)
    that several experiments reuse. *)

type network = {
  label : string;
  dataset : Tmest_traffic.Dataset.t;
  workspace : Tmest_core.Workspace.t;
      (** shared solver workspace for this network's routing context:
          every experiment and every 5-minute snapshot reuses its cached
          Gram/Lipschitz/prior artifacts *)
  snapshot_k : int;  (** the busy-period snapshot the paper-style
                         single-measurement evaluations use *)
  truth : Tmest_linalg.Vec.t;  (** demand vector at [snapshot_k] *)
  loads : Tmest_linalg.Vec.t;  (** [R s] at [snapshot_k] *)
  gravity_prior : Tmest_linalg.Vec.t Tmest_parallel.Pool.Once.t;
      (** one-shot memos rather than [Lazy.t]: experiments running
          concurrently on the pool may force these from any domain *)
  wcb : Tmest_core.Wcb.bounds Tmest_parallel.Pool.Once.t;
  wcb_prior : Tmest_linalg.Vec.t Tmest_parallel.Pool.Once.t;
}

type t = {
  europe : network;
  america : network;
  pool : Tmest_parallel.Pool.t;
      (** domain pool shared by both workspaces, window scans and the
          experiment registry *)
  fast : bool;  (** shrink sweeps for quick runs (tests) *)
  sink : Tmest_obs.Obs.sink;
      (** trace sink installed at {!create}; the null sink unless the
          driver passed [--trace] *)
  scale_pops : int list option;
      (** override of the scaling experiment's PoP-count sweep
          (CLI [--pops]); [None] leaves each experiment's default *)
  scale_seed : int option;
      (** override of the synthetic-network seed (CLI [--seed]) *)
}

(** [create ?fast ?jobs ?sink ()] builds the paper-scale context
    ([fast = false], default) or a reduced one on small networks with
    shorter sweeps ([fast = true]).  [jobs] sizes a dedicated domain
    pool (default: the shared {!Tmest_parallel.Pool.default}); the two
    networks are generated and wrapped concurrently on it.  [sink],
    when given, is installed on the pool and both workspaces, so every
    solver, cache and chunk in the whole run traces to it.
    [scale_pops] / [scale_seed] override the scaling experiments'
    synthetic-network sweep. *)
val create :
  ?fast:bool ->
  ?jobs:int ->
  ?sink:Tmest_obs.Obs.sink ->
  ?scale_pops:int list ->
  ?scale_seed:int ->
  unit ->
  t

(** [pool t] is the context's domain pool. *)
val pool : t -> Tmest_parallel.Pool.t

(** [sink t] is the trace sink installed at {!create}. *)
val sink : t -> Tmest_obs.Obs.sink

(** [networks t] is [[europe; america]] (evaluation order used in all
    two-network tables). *)
val networks : t -> network list

(** [synthetic t ~pops] builds a [pops]-PoP scale-study network
    ({!Tmest_traffic.Dataset.synthetic}) on the context's pool and sink.
    Not cached and not part of {!networks}: the paper experiments stay
    two-network, scale studies request the sizes they need.  Above the
    workspace sparse gate the returned network's workspace runs
    matrix-free (and its [wcb] memo raises if forced — the LP bounds are
    a dense-only method). *)
val synthetic : ?seed:int -> t -> pops:int -> network

(** [busy_mean net] is the busy-period mean demand (reference for
    time-series methods). *)
val busy_mean : network -> Tmest_linalg.Vec.t

(** The unified windowed-scan API: every sliding-window estimation run
    — busy-period scan, day replay, caller-supplied measurement series,
    and (through {!Scan.Series}) the streaming daemon's incremental
    loop — goes through one engine configured by a single record.

    This replaces the former [scan_busy] / [busy_loads] / [replay]
    trio; the migrated paths are bit-identical to the old entry points
    (pinned by a golden test). *)
module Scan : sig
  (** Where the measurement windows come from. *)
  type source =
    | Busy of { window : int; steps : int }
        (** slide a [window]-sample measurement window over the last
            [steps] busy-period snapshots of the network's dataset *)
    | Replay of { window : int; windows : int }
        (** production-shaped day replay: [windows] successive
            re-estimations (the paper's every-5-minutes loop — 288
            intervals per day), cycling over the dataset's full
            measurement day when the replay is longer than the recorded
            series *)
    | Windows of { window : int; loads : Tmest_linalg.Vec.t array }
        (** slide over a caller-supplied series of per-snapshot load
            vectors (oldest first) — one step per window position; used
            to re-run a recorded stream as a batch scan *)

  (** The scan configuration: one record carrying the window source,
      the per-solve estimator options, an optional warm-chain tag (a
      shorthand for [Options.with_warm_tag] — chunk tags nest under
      it), an optional pool override (default: the workspace's pool; a
      1-slot pool forces the sequential in-order path), and an optional
      per-window callback.  [on_window] fires after each window's solve
      with the step index, snapshot label and estimate; on a
      multi-domain pool it is called from worker domains (chunks run
      concurrently), so the callback must be thread-safe. *)
  type t = {
    source : source;
    opts : Tmest_core.Estimator.Options.t;
    tag : string option;
    pool : Tmest_parallel.Pool.t option;
    on_window : (step:int -> snapshot:int -> Tmest_linalg.Vec.t -> unit) option;
  }

  val make :
    ?opts:Tmest_core.Estimator.Options.t ->
    ?tag:string ->
    ?pool:Tmest_parallel.Pool.t ->
    ?on_window:(step:int -> snapshot:int -> Tmest_linalg.Vec.t -> unit) ->
    source ->
    t

  (** [samples net ~window] is the [window x L] matrix of the last
      [window] busy-period link-load samples (the batch counterpart of
      a {!source}'s window assembly, for callers that feed
      [Estimator.solve] directly). *)
  val samples : network -> window:int -> Tmest_linalg.Mat.t

  (** [run net est t] executes the scan: snapshot methods see each
      window-end load vector, time-series methods the whole window.
      With [opts.warm] set, each solve starts from the previous
      position's solution through the workspace warm-start cache; with
      an enabled sink (either [opts.sink] or the workspace's), each
      window solve is wrapped in a [scan.window] ([replay.window] for
      {!Replay}) span.  Returns [(snapshot label, estimate)] in scan
      order.

      On a multi-domain pool the scan splits into one contiguous chunk
      of positions per pool slot; warm chains then run per chunk (the
      chunk index is appended to the warm tag), so results are a
      function of the job count and step count only — never of
      scheduling — and match the sequential scan within the solver
      tolerance.  Cold scans ([warm:false]) are bit-identical to the
      sequential scan at every pool size. *)
  val run :
    network ->
    Tmest_core.Estimator.t ->
    t ->
    (int * Tmest_linalg.Vec.t) list

  (** Incremental push-one-estimate-one engine for streaming consumers
      (the daemon): a ring buffer of the last [window] load rows,
      assembled oldest-first into a workspace scratch matrix on each
      {!estimate}.  At full fill the assembled samples matrix is
      bit-identical to what a batch {!run} over the same rows builds,
      so a sequential warm tick stream matches a sequential warm batch
      scan bit for bit. *)
  module Series : sig
    type t

    (** [create ?name ws ~window ~links] — [name] keys the scratch
        arena, so two series on one workspace should use distinct
        names. *)
    val create :
      ?name:string -> Tmest_core.Workspace.t -> window:int -> links:int -> t

    (** [push t v] appends a load row (copied), evicting the oldest
        once [window] rows are held. *)
    val push : t -> Tmest_linalg.Vec.t -> unit

    (** [fill t] is the number of rows currently held (≤ window). *)
    val fill : t -> int

    (** [total t] is the lifetime push count, across {!clear}s. *)
    val total : t -> int

    val window : t -> int

    (** [clear t] empties the window (a routing change invalidated the
        held rows); {!total} keeps counting. *)
    val clear : t -> unit

    (** [latest t] is a copy of the newest row.
        @raise Invalid_argument when empty. *)
    val latest : t -> Tmest_linalg.Vec.t

    (** [estimate ?opts t est] solves on the current window: loads =
        newest row, samples = held rows oldest-first (at fill 1 the
        single row is duplicated — time-series methods need two).
        @raise Invalid_argument when empty. *)
    val estimate :
      ?opts:Tmest_core.Estimator.Options.t ->
      t ->
      Tmest_core.Estimator.t ->
      Tmest_linalg.Vec.t
  end
end
