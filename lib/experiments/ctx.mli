(** Shared experiment context: the two datasets plus cached derived
    artifacts (priors, worst-case bounds, busy-window load matrices)
    that several experiments reuse. *)

type network = {
  label : string;
  dataset : Tmest_traffic.Dataset.t;
  workspace : Tmest_core.Workspace.t;
      (** shared solver workspace for this network's routing context:
          every experiment and every 5-minute snapshot reuses its cached
          Gram/Lipschitz/prior artifacts *)
  snapshot_k : int;  (** the busy-period snapshot the paper-style
                         single-measurement evaluations use *)
  truth : Tmest_linalg.Vec.t;  (** demand vector at [snapshot_k] *)
  loads : Tmest_linalg.Vec.t;  (** [R s] at [snapshot_k] *)
  gravity_prior : Tmest_linalg.Vec.t Lazy.t;
  wcb : Tmest_core.Wcb.bounds Lazy.t;
  wcb_prior : Tmest_linalg.Vec.t Lazy.t;
}

type t = {
  europe : network;
  america : network;
  fast : bool;  (** shrink sweeps for quick runs (tests) *)
}

(** [create ?fast ()] builds the paper-scale context ([fast = false],
    default) or a reduced one on small networks with shorter sweeps
    ([fast = true]). *)
val create : ?fast:bool -> unit -> t

(** [networks t] is [[europe; america]] (evaluation order used in all
    two-network tables). *)
val networks : t -> network list

(** [busy_loads net ~window] is the [window x L] matrix of the last
    [window] busy-period link-load samples. *)
val busy_loads : network -> window:int -> Tmest_linalg.Mat.t

(** [busy_mean net] is the busy-period mean demand (reference for
    time-series methods). *)
val busy_mean : network -> Tmest_linalg.Vec.t

(** [scan_busy ?warm net est ~window ~steps] slides a fixed-size
    measurement window over the last [steps] busy-period snapshots and
    runs estimator [est] once per position (snapshot methods see the
    window-end load vector; time-series methods see the whole window).
    With [warm:true] each solve starts from the previous position's
    solution through the workspace warm-start cache — the intended use
    of {!Tmest_core.Estimator.run_ws}'s [warm] flag.  Returns
    [(snapshot index, estimate)] in scan order. *)
val scan_busy :
  ?warm:bool ->
  network ->
  Tmest_core.Estimator.t ->
  window:int ->
  steps:int ->
  (int * Tmest_linalg.Vec.t) list
