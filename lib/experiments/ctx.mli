(** Shared experiment context: the two datasets plus cached derived
    artifacts (priors, worst-case bounds, busy-window load matrices)
    that several experiments reuse. *)

type network = {
  label : string;
  dataset : Tmest_traffic.Dataset.t;
  workspace : Tmest_core.Workspace.t;
      (** shared solver workspace for this network's routing context:
          every experiment and every 5-minute snapshot reuses its cached
          Gram/Lipschitz/prior artifacts *)
  snapshot_k : int;  (** the busy-period snapshot the paper-style
                         single-measurement evaluations use *)
  truth : Tmest_linalg.Vec.t;  (** demand vector at [snapshot_k] *)
  loads : Tmest_linalg.Vec.t;  (** [R s] at [snapshot_k] *)
  gravity_prior : Tmest_linalg.Vec.t Tmest_parallel.Pool.Once.t;
      (** one-shot memos rather than [Lazy.t]: experiments running
          concurrently on the pool may force these from any domain *)
  wcb : Tmest_core.Wcb.bounds Tmest_parallel.Pool.Once.t;
  wcb_prior : Tmest_linalg.Vec.t Tmest_parallel.Pool.Once.t;
}

type t = {
  europe : network;
  america : network;
  pool : Tmest_parallel.Pool.t;
      (** domain pool shared by both workspaces, window scans and the
          experiment registry *)
  fast : bool;  (** shrink sweeps for quick runs (tests) *)
  sink : Tmest_obs.Obs.sink;
      (** trace sink installed at {!create}; the null sink unless the
          driver passed [--trace] *)
  scale_pops : int list option;
      (** override of the scaling experiment's PoP-count sweep
          (CLI [--pops]); [None] leaves each experiment's default *)
  scale_seed : int option;
      (** override of the synthetic-network seed (CLI [--seed]) *)
}

(** [create ?fast ?jobs ?sink ()] builds the paper-scale context
    ([fast = false], default) or a reduced one on small networks with
    shorter sweeps ([fast = true]).  [jobs] sizes a dedicated domain
    pool (default: the shared {!Tmest_parallel.Pool.default}); the two
    networks are generated and wrapped concurrently on it.  [sink],
    when given, is installed on the pool and both workspaces, so every
    solver, cache and chunk in the whole run traces to it.
    [scale_pops] / [scale_seed] override the scaling experiments'
    synthetic-network sweep. *)
val create :
  ?fast:bool ->
  ?jobs:int ->
  ?sink:Tmest_obs.Obs.sink ->
  ?scale_pops:int list ->
  ?scale_seed:int ->
  unit ->
  t

(** [pool t] is the context's domain pool. *)
val pool : t -> Tmest_parallel.Pool.t

(** [sink t] is the trace sink installed at {!create}. *)
val sink : t -> Tmest_obs.Obs.sink

(** [networks t] is [[europe; america]] (evaluation order used in all
    two-network tables). *)
val networks : t -> network list

(** [synthetic t ~pops] builds a [pops]-PoP scale-study network
    ({!Tmest_traffic.Dataset.synthetic}) on the context's pool and sink.
    Not cached and not part of {!networks}: the paper experiments stay
    two-network, scale studies request the sizes they need.  Above the
    workspace sparse gate the returned network's workspace runs
    matrix-free (and its [wcb] memo raises if forced — the LP bounds are
    a dense-only method). *)
val synthetic : ?seed:int -> t -> pops:int -> network

(** [busy_loads net ~window] is the [window x L] matrix of the last
    [window] busy-period link-load samples. *)
val busy_loads : network -> window:int -> Tmest_linalg.Mat.t

(** [busy_mean net] is the busy-period mean demand (reference for
    time-series methods). *)
val busy_mean : network -> Tmest_linalg.Vec.t

(** [scan_busy ?opts net est ~window ~steps] slides a fixed-size
    measurement window over the last [steps] busy-period snapshots and
    runs estimator [est] once per position (snapshot methods see the
    window-end load vector; time-series methods see the whole window).
    With [opts.warm] set, each solve starts from the previous position's
    solution through the workspace warm-start cache — the intended use
    of {!Tmest_core.Estimator.Options.t}'s [warm] flag; on parallel
    scans the chunk index is appended to [opts.warm_tag].  With an
    enabled sink (either [opts.sink] or the workspace's), each window
    solve is wrapped in a [scan.window] span.  Returns
    [(snapshot index, estimate)] in scan order.

    On a multi-domain pool the scan splits into one contiguous chunk of
    positions per pool slot; warm chains then run per chunk (keyed by
    chunk index), so results are a function of the job count and step
    count only — never of scheduling — and match the sequential scan
    within the solver tolerance.  Cold scans ([warm:false]) are
    bit-identical to the sequential scan at every pool size. *)
val scan_busy :
  ?opts:Tmest_core.Estimator.Options.t ->
  network ->
  Tmest_core.Estimator.t ->
  window:int ->
  steps:int ->
  (int * Tmest_linalg.Vec.t) list

(** [replay ?opts net est ~window ~windows] is the production-shaped
    day replay: [windows] successive re-estimations (the paper's
    every-5-minutes loop — 288 intervals per day), cycling over the
    dataset's full measurement day when the replay is longer than the
    recorded series.  Each interval runs the whole measurement
    pipeline — window-end loads, a [window x L] samples matrix refilled
    by row blits into a per-domain workspace arena, one estimator
    solve.  Per-snapshot load extraction is hoisted out of the loop
    (each snapshot is one CSR matvec, extracted once for the whole
    replay).  Returns [(snapshot index, estimate)] per interval.

    Determinism matches {!scan_busy}: cold replays are bit-identical at
    every pool size; warm replays chain warm starts per chunk, so they
    are a function of the job count only. *)
val replay :
  ?opts:Tmest_core.Estimator.Options.t ->
  network ->
  Tmest_core.Estimator.t ->
  window:int ->
  windows:int ->
  (int * Tmest_linalg.Vec.t) list
