module Core = Tmest_core
module Metrics = Tmest_core.Metrics
module Inject = Tmest_faults.Inject

(* Corruption cells swept by the experiment.  Each cell owns a seed so
   its fault pattern is independent of the others (and of the sweep
   order); the first cell is deliberately clean to pin the degraded
   mode's no-op behaviour inside a published table. *)
let cells ~fast =
  let g sigma = Inject.Gaussian sigma in
  if fast then
    [
      ("clean", Inject.none);
      ("noise 2%", Inject.make ~seed:9001 ~noise:(g 0.02) ());
      ("drop 10%", Inject.make ~seed:9002 ~drop_prob:0.1 ());
      ( "noise 2% + drop 10%",
        Inject.make ~seed:9003 ~noise:(g 0.02) ~drop_prob:0.1 () );
    ]
  else
    [
      ("clean", Inject.none);
      ("noise 1%", Inject.make ~seed:9001 ~noise:(g 0.01) ());
      ("noise 5%", Inject.make ~seed:9002 ~noise:(g 0.05) ());
      ("drop 5%", Inject.make ~seed:9003 ~drop_prob:0.05 ());
      ("drop 20%", Inject.make ~seed:9004 ~drop_prob:0.2 ());
      ( "noise 2% + drop 10%",
        Inject.make ~seed:9005 ~noise:(g 0.02) ~drop_prob:0.1 () );
      ( "wrap 2% + reset 1%",
        Inject.make ~seed:9006 ~wrap_prob:0.02 ~reset_prob:0.01 () );
    ]

let methods () = List.map Core.Estimator.of_name (Core.Estimator.all_names ())

let per_network ~fast net =
  let window = if fast then 10 else 30 in
  let clean_samples = Ctx.Scan.samples net ~window in
  let truth = net.Ctx.truth in
  let busy_truth = Ctx.busy_mean net in
  let methods = methods () in
  let mre_of est estimate =
    let truth =
      if Core.Estimator.uses_time_series est then busy_truth else truth
    in
    Metrics.mre ~truth ~estimate ()
  in
  let health = ref [] in
  let rows =
    List.map
      (fun (label, spec) ->
        let loads = Inject.loads spec ~loads:net.Ctx.loads in
        let samples = Inject.samples spec clean_samples in
        let captured = ref None in
        let policy =
          Core.Degrade.with_on_health
            (fun h -> captured := Some h)
            Core.Degrade.default
        in
        let opts = Core.Estimator.Options.make ~degrade:policy () in
        let mres =
          List.map
            (fun est ->
              let estimate =
                Core.Estimator.solve ~opts est net.Ctx.workspace ~loads
                  ~load_samples:samples
              in
              mre_of est estimate)
            methods
        in
        (match !captured with
        | Some h -> health := (label, h) :: !health
        | None -> ());
        (label, Array.of_list mres))
      (cells ~fast)
  in
  (* Baseline for the heaviest drop cell: what the best snapshot method
     pays when missing links are zero-filled instead of repaired. *)
  let baseline =
    let spec =
      Inject.make ~seed:9004 ~drop_prob:(if fast then 0.1 else 0.2) ()
    in
    let dirty = Inject.loads spec ~loads:net.Ctx.loads in
    let est = Core.Estimator.of_name "entropy" in
    let solve ~opts loads =
      Core.Estimator.solve ~opts est net.Ctx.workspace ~loads
        ~load_samples:clean_samples
    in
    let repaired =
      let opts =
        Core.Estimator.Options.make ~degrade:Core.Degrade.default ()
      in
      mre_of est (solve ~opts dirty)
    in
    let zero_filled =
      mre_of est
        (solve ~opts:Core.Estimator.Options.default (Inject.zero_fill dirty))
    in
    (repaired, zero_filled)
  in
  (rows, List.rev !health, baseline)

let health_note label entries =
  Report.note "%s repair health — %s" label
    (String.concat "; "
       (List.map
          (fun (cell, h) ->
            Format.asprintf "%s: %a" cell Core.Degrade.pp_health h)
          entries))

let sens ctx =
  let fast = ctx.Ctx.fast in
  let columns = "fault" :: Core.Estimator.all_names () in
  let eu_rows, eu_health, (eu_rep, eu_zero) =
    per_network ~fast ctx.Ctx.europe
  in
  let us_rows, us_health, (us_rep, us_zero) =
    per_network ~fast ctx.Ctx.america
  in
  {
    Report.id = "sens";
    title = "Sensitivity to measurement faults: MRE vs corruption level";
    items =
      [
        Report.note "Europe";
        Report.table ~columns eu_rows;
        Report.note "America";
        Report.table ~columns us_rows;
        health_note "Europe" eu_health;
        health_note "America" us_health;
        Report.note
          "entropy under heaviest drop cell, repaired vs zero-filled: \
           Europe %.4f vs %.4f, America %.4f vs %.4f"
          eu_rep eu_zero us_rep us_zero;
        Report.note
          "drops and counter faults are repaired nearly for free (the \
           routing matrix's dependent rows expose them); multiplicative \
           noise mostly stays in range(R) and passes through to the \
           estimate — the paper's exact-load assumption is the \
           optimistic end of this table";
      ];
  }
