module Vec = Tmest_linalg.Vec
module Dataset = Tmest_traffic.Dataset
module Core = Tmest_core
module Metrics = Tmest_core.Metrics

let best_over f options = List.fold_left (fun acc o -> Stdlib.min acc (f o)) infinity options

let tab2 ctx =
  let fast = ctx.Ctx.fast in
  let max_iter = if fast then 2000 else 12000 in
  let sigma2s = Regularized_exp.sigma2_grid ~fast in
  let windows = if fast then [ 3; 8 ] else [ 3; 10; 20; 40 ] in
  let per_network net =
    let ws = net.Ctx.workspace in
    let loads = net.Ctx.loads and truth = net.Ctx.truth in
    let gravity = Tmest_parallel.Pool.Once.force net.Ctx.gravity_prior in
    let wcb = Tmest_parallel.Pool.Once.force net.Ctx.wcb_prior in
    let snapshot_mre estimate = Metrics.mre ~truth ~estimate () in
    let busy_truth = Ctx.busy_mean net in
    let busy_mre estimate = Metrics.mre ~truth:busy_truth ~estimate () in
    let regularized method_ prior sigma2 =
      match method_ with
      | `Bayes ->
          (Core.Bayes.estimate ~stop:(Tmest_opt.Stop.make ~max_iter ()) ws ~loads ~prior ~sigma2)
            .Core.Bayes.estimate
      | `Entropy ->
          (Core.Entropy.estimate ~stop:(Tmest_opt.Stop.make ~max_iter ()) ws ~loads ~prior ~sigma2)
            .Core.Entropy.estimate
    in
    [
      ("Worst-case bound prior", snapshot_mre wcb);
      ("Simple gravity prior", snapshot_mre gravity);
      ( "Entropy w. gravity prior",
        best_over
          (fun s2 -> snapshot_mre (regularized `Entropy gravity s2))
          sigma2s );
      ( "Bayes w. gravity prior",
        best_over
          (fun s2 -> snapshot_mre (regularized `Bayes gravity s2))
          sigma2s );
      ( "Bayes w. WCB prior",
        best_over
          (fun s2 -> snapshot_mre (regularized `Bayes wcb s2))
          sigma2s );
      ( "Fanout",
        best_over
          (fun window ->
            let samples = Ctx.Scan.samples net ~window in
            busy_mre
              (Core.Fanout.estimate ws ~load_samples:samples)
                .Core.Fanout.estimate)
          windows );
      ( "Vardi",
        best_over
          (fun sigma_inv2 ->
            let samples = Ctx.Scan.samples net ~window:(if fast then 20 else 50) in
            busy_mre
              (Core.Vardi.estimate ws ~load_samples:samples ~sigma_inv2)
                .Core.Vardi.estimate)
          [ 1e-4; 0.01; 1. ] );
      ( "Kruithof/Krupp projection*",
        snapshot_mre
          (Core.Kruithof.krupp ~stop:(Tmest_opt.Stop.make ~max_iter:3000 ()) ws ~loads ~prior:gravity) );
      ( "Cao et al. GLM*",
        let samples = Ctx.Scan.samples net ~window:(if fast then 20 else 50) in
        let spec = net.Ctx.dataset.Dataset.spec in
        busy_mre
          (Core.Cao.estimate ws ~load_samples:samples ~phi:1.
             ~c:spec.Tmest_traffic.Spec.c ~sigma_inv2:0.01)
            .Core.Cao.estimate );
    ]
  in
  let eu = per_network ctx.Ctx.europe in
  let us = per_network ctx.Ctx.america in
  let rows =
    List.map2
      (fun (label, eu_v) (_, us_v) -> (label, [| eu_v; us_v |]))
      eu us
  in
  {
    Report.id = "tab2";
    title = "Performance comparison: best MRE per method and subnetwork";
    items =
      [
        Report.table ~columns:[ "method"; "Europe"; "America" ] rows;
        Report.note
          "rows marked * are extensions beyond the paper's Table 2 \
           (Krupp projection; Cao's GLM is the paper's declared future \
           work)";
        Report.note
          "paper's Table 2 — Europe: WCB 0.10, gravity 0.26, entropy \
           0.11, bayes 0.08, bayes+WCB 0.07, fanout 0.22, vardi 0.47; \
           America: 0.39 / 0.78 / 0.22 / 0.25 / 0.23 / 0.40 / 0.98";
      ];
  }
