module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Rng = Tmest_stats.Rng
module Dist = Tmest_stats.Dist
module Dataset = Tmest_traffic.Dataset
module Topology = Tmest_net.Topology
module Routing = Tmest_net.Routing
module Odpairs = Tmest_net.Odpairs
module Core = Tmest_core
module Metrics = Tmest_core.Metrics

(* Experiment sweeps cap solver effort per call; the shared Stop record
   carries that cap down to the solvers (trace sinks ride along from the
   workspace automatically). *)
let stop_of max_iter = Tmest_opt.Stop.make ~max_iter ()

let entropy_mre ?(sigma2 = 1000.) ~max_iter net ~loads ~prior =
  let estimate =
    (Core.Entropy.estimate ~stop:(stop_of max_iter) net.Ctx.workspace ~loads ~prior ~sigma2)
      .Core.Entropy.estimate
  in
  Metrics.mre ~truth:net.Ctx.truth ~estimate ()

(* ------------------------------------------------------------ ext1 *)

let ext1 ctx =
  let fast = ctx.Ctx.fast in
  let max_iter = if fast then 2000 else 12000 in
  let sigma2s = Regularized_exp.sigma2_grid ~fast in
  let rows =
    List.concat_map
      (fun net ->
        let ws = net.Ctx.workspace in
        let loads = net.Ctx.loads in
        let priors =
          [
            ( "uniform",
              Core.Estimator.prior Core.Estimator.Prior_uniform ws
                ~loads );
            ("gravity", Tmest_parallel.Pool.Once.force net.Ctx.gravity_prior);
            ("wcb", Tmest_parallel.Pool.Once.force net.Ctx.wcb_prior);
          ]
        in
        List.concat_map
          (fun (pname, prior) ->
            let best method_ =
              List.fold_left
                (fun acc sigma2 ->
                  let estimate =
                    match method_ with
                    | `Entropy ->
                        (Core.Entropy.estimate ~stop:(stop_of max_iter) ws ~loads ~prior
                           ~sigma2)
                          .Core.Entropy.estimate
                    | `Bayes ->
                        (Core.Bayes.estimate ~stop:(stop_of max_iter) ws ~loads ~prior
                           ~sigma2)
                          .Core.Bayes.estimate
                  in
                  Stdlib.min acc
                    (Metrics.mre ~truth:net.Ctx.truth ~estimate ()))
                infinity sigma2s
            in
            [
              ( Printf.sprintf "%s %s prior" net.Ctx.label pname,
                [| best `Entropy; best `Bayes |] );
            ])
          priors)
      (Ctx.networks ctx)
  in
  {
    Report.id = "ext1";
    title = "Prior ablation: best MRE of regularized methods per prior";
    items =
      [
        Report.table ~columns:[ "prior"; "Entropy"; "Bayes" ] rows;
        Report.note
          "informative priors matter most at small regularization; with \
           the best regularization the measurement term dominates and \
           even a uniform prior is workable";
      ];
  }

(* ------------------------------------------------------------ ext2 *)

let ext2 ctx =
  let net = ctx.Ctx.europe in
  let max_iter = if ctx.Ctx.fast then 2000 else 8000 in
  let prior_of loads =
    Core.Gravity.simple net.Ctx.dataset.Dataset.routing ~loads
  in
  let rng = Rng.create 4242 in
  (* Multiplicative per-link measurement error. *)
  let noisy_loads sigma =
    Vec.map
      (fun t -> Stdlib.max 0. (t *. (1. +. Dist.gaussian rng ~mu:0. ~sigma)))
      net.Ctx.loads
  in
  let error_levels =
    if ctx.Ctx.fast then [ 0.; 0.05 ] else [ 0.; 0.005; 0.01; 0.02; 0.05; 0.1 ]
  in
  let noise_series =
    List.map
      (fun sigma ->
        let loads = noisy_loads sigma in
        (sigma, entropy_mre ~max_iter net ~loads ~prior:(prior_of loads)))
      error_levels
  in
  (* Stale samples: lost polls replaced by the previous interval's
     value, per link, with loss probability q. *)
  let prev_loads =
    Dataset.link_loads_at net.Ctx.dataset (net.Ctx.snapshot_k - 1)
  in
  let stale_loads q =
    Vec.mapi
      (fun i t -> if Rng.float rng < q then prev_loads.(i) else t)
      net.Ctx.loads
  in
  let loss_levels =
    if ctx.Ctx.fast then [ 0.; 0.2 ] else [ 0.; 0.05; 0.1; 0.2; 0.4 ]
  in
  let stale_series =
    List.map
      (fun q ->
        let loads = stale_loads q in
        (q, entropy_mre ~max_iter net ~loads ~prior:(prior_of loads)))
      loss_levels
  in
  {
    Report.id = "ext2";
    title =
      "Measurement errors (Europe): entropy MRE vs link-load error and \
       stale-sample rate";
    items =
      [
        Report.series "MRE vs multiplicative error std"
          (Array.of_list noise_series);
        Report.series "MRE vs stale-sample probability"
          (Array.of_list stale_series);
        Report.note
          "link-load errors propagate roughly linearly into the estimate; \
           stale 5-minute samples are mild because adjacent intervals are \
           highly correlated";
      ];
  }

(* ------------------------------------------------------------ ext3 *)

let ext3 ctx =
  let net = ctx.Ctx.europe in
  let d = net.Ctx.dataset in
  let topo = d.Dataset.topo in
  let max_iter = if ctx.Ctx.fast then 2000 else 8000 in
  let truth = net.Ctx.truth in
  (* Busiest interior links are the interesting failures. *)
  let base_loads = net.Ctx.loads in
  let interior =
    List.sort
      (fun a b ->
        compare base_loads.(b.Topology.link_id) base_loads.(a.Topology.link_id))
      (Topology.interior_links topo)
  in
  let count = if ctx.Ctx.fast then 2 else 5 in
  let rows =
    List.filteri (fun i _ -> i < count) interior
    |> List.filter_map (fun link ->
           (* The network re-routes: new shortest paths avoiding the
              link.  Loads reflect the new routing; the estimator still
              uses the old routing matrix (stale R). *)
           match Routing.without_links topo ~failed:[ link.Topology.link_id ] with
           | None -> None
           | Some new_routing ->
               let loads = Routing.link_loads new_routing truth in
               let stale_routing = d.Dataset.routing in
               let prior = Core.Gravity.simple stale_routing ~loads in
               let stale_mre =
                 entropy_mre ~max_iter net ~loads ~prior
               in
               let fresh_prior = Core.Gravity.simple new_routing ~loads in
               let fresh =
                 (Core.Entropy.estimate ~stop:(stop_of max_iter)
                    (Core.Workspace.create new_routing)
                    ~loads ~prior:fresh_prior ~sigma2:1000.)
                   .Core.Entropy.estimate
               in
               let fresh_mre = Metrics.mre ~truth ~estimate:fresh () in
               Some
                 ( Printf.sprintf "fail %s->%s"
                     topo.Topology.nodes.(link.Topology.src).Topology.name
                     topo.Topology.nodes.(link.Topology.dst).Topology.name,
                   [| fresh_mre; stale_mre |] ))
  in
  {
    Report.id = "ext3";
    title =
      "Component failures (Europe): entropy MRE with re-routed traffic, \
       fresh vs stale routing matrix";
    items =
      [
        Report.table ~columns:[ "failure"; "fresh R"; "stale R" ] rows;
        Report.note
          "an out-of-date routing matrix corrupts the estimate far more \
           than the failure itself: keeping R synchronized with the IGP \
           is part of the measurement system";
      ];
  }

(* ------------------------------------------------------------ ext4 *)

let ext4 ctx =
  let net = ctx.Ctx.america in
  let d = net.Ctx.dataset in
  let n = Dataset.num_nodes d in
  let max_iter = if ctx.Ctx.fast then 2000 else 8000 in
  (* Mark the three least active PoPs as peering points and build a
     ground truth with no peer-to-peer traffic (peers exchange traffic
     with customers, not each other). *)
  let te = Dataset.node_ingress_totals d net.Ctx.snapshot_k in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare te.(a) te.(b)) order;
  let peer_count = Stdlib.min 3 (n - 2) in
  let peers = Array.sub order 0 peer_count in
  let is_peer i = Array.exists (fun p -> p = i) peers in
  let topo =
    Array.fold_left
      (fun t p -> Topology.set_node_kind t p Topology.Peering)
      d.Dataset.topo peers
  in
  let routing = { d.Dataset.routing with Routing.topo } in
  let ws = Core.Workspace.create routing in
  let truth =
    Vec.mapi
      (fun p v ->
        let src, dst = Odpairs.pair ~nodes:n p in
        if is_peer src && is_peer dst then 0. else v)
      net.Ctx.truth
  in
  let loads = Routing.link_loads routing truth in
  let simple = Core.Gravity.simple routing ~loads in
  let generalized = Core.Gravity.generalized routing ~loads in
  let mre estimate = Metrics.mre ~truth ~estimate () in
  let entropy prior =
    mre
      (Core.Entropy.estimate ~stop:(stop_of max_iter) ws ~loads ~prior ~sigma2:1000.)
        .Core.Entropy.estimate
  in
  (* Spurious peer-to-peer traffic predicted by each prior. *)
  let peer_leak estimate =
    let acc = ref 0. in
    Odpairs.iter ~nodes:n (fun p src dst ->
        if is_peer src && is_peer dst then acc := !acc +. estimate.(p));
    !acc /. Vec.sum truth
  in
  {
    Report.id = "ext4";
    title =
      "Generalized gravity model with peering PoPs (America, 3 peers, no \
       peer-to-peer traffic)";
    items =
      [
        Report.table
          ~columns:[ "prior"; "prior MRE"; "entropy MRE"; "p2p leak" ]
          [
            ( "simple gravity",
              [| mre simple; entropy simple; peer_leak simple |] );
            ( "generalized gravity",
              [| mre generalized; entropy generalized; peer_leak generalized |]
            );
          ];
        Report.note
          "the generalized model's structural zeros remove the spurious \
           peer-to-peer traffic the simple model invents, improving both \
           the prior and the regularized estimate built on it";
      ];
  }

(* ------------------------------------------------------------ ext5 *)

let ext5 ctx =
  let window = if ctx.Ctx.fast then 20 else 50 in
  let rows =
    List.concat_map
      (fun net ->
        let ws = net.Ctx.workspace in
        let samples = Ctx.Scan.samples net ~window in
        let truth = Ctx.busy_mean net in
        let mre estimate = Metrics.mre ~truth ~estimate () in
        let cao c sigma_inv2 =
          mre
            (Core.Cao.estimate ws ~load_samples:samples ~phi:1. ~c
               ~sigma_inv2)
              .Core.Cao.estimate
        in
        let vardi sigma_inv2 =
          mre
            (Core.Vardi.estimate ws ~load_samples:samples ~sigma_inv2)
              .Core.Vardi.estimate
        in
        [
          ( net.Ctx.label ^ " vardi (c=1)",
            [| vardi 1e-4; vardi 0.01; vardi 1. |] );
          ( net.Ctx.label ^ " cao c=1.5",
            [| cao 1.5 1e-4; cao 1.5 0.01; cao 1.5 1. |] );
          ( net.Ctx.label ^ " cao c=2",
            [| cao 2. 1e-4; cao 2. 0.01; cao 2. 1. |] );
        ])
      (Ctx.networks ctx)
  in
  {
    Report.id = "ext5";
    title =
      "Cao et al. generalized linear model (the paper's missing method): \
       MRE by scaling exponent and moment weight";
    items =
      [
        Report.table
          ~columns:
            [ "method"; "s^-2=1e-4"; "s^-2=0.01"; "s^-2=1" ]
          rows;
        Report.note
          "matching the fitted scaling exponent helps little: the \
           bottleneck is covariance estimation from short windows, \
           exactly as the paper argues for Vardi";
      ];
  }

(* ------------------------------------------------------------ ext6 *)

let ext6 ctx =
  let net = ctx.Ctx.europe in
  let mean = Ctx.busy_mean net in
  let top = if ctx.Ctx.fast then 8 else 30 in
  let order = Array.init (Array.length mean) (fun i -> i) in
  Array.sort (fun a b -> compare mean.(b) mean.(a)) order;
  let horizon_s = 3. *. 3600. in
  let bins = int_of_float (horizon_s /. 300.) in
  let rng = Rng.create 9099 in
  (* Flow-level traffic for the top demands; same flows binned both
     ways (per-LSP counters vs NetFlow lifetime averages). *)
  (* Long bursty flows are the interesting case: a flow spanning many
     5-minute bins contributes one flat lifetime-average to all of them. *)
  let params =
    {
      Tmest_netflow.Generator.mean_flow_duration_s = 1800.;
      segment_s = 240.;
      burstiness = 1.0;
      duration_log_std = 1.0;
      flows_per_second = 0.1;
    }
  in
  let flows =
    List.concat
      (List.init top (fun rank ->
           Tmest_netflow.Generator.generate rng params ~od:rank
             ~mean_rate:mean.(order.(rank)) ~horizon_s))
  in
  let exact =
    Tmest_netflow.Collector.exact_bins flows ~interval_s:300. ~bins
      ~pairs:top
  in
  let netflow =
    Tmest_netflow.Collector.netflow_bins flows ~interval_s:300. ~bins
      ~pairs:top
  in
  let ratios =
    Tmest_netflow.Collector.variance_distortion ~exact ~netflow
    |> Array.to_list
    |> List.filter Float.is_finite
    |> Array.of_list
  in
  let med = Tmest_stats.Desc.median ratios in
  (* Mean-variance fits from both measurement styles. *)
  let fit m =
    let means = Array.init top (fun p -> Tmest_stats.Desc.mean (Mat.col m p)) in
    let vars = Array.init top (fun p -> Tmest_stats.Desc.variance (Mat.col m p)) in
    Tmest_stats.Regress.power_law means vars
  in
  let fe = fit exact and fn = fit netflow in
  let points =
    let sorted = Array.copy ratios in
    Array.sort compare sorted;
    Array.mapi
      (fun i r ->
        (float_of_int (i + 1) /. float_of_int (Array.length sorted), r))
      sorted
  in
  {
    Report.id = "ext6";
    title =
      "NetFlow vs direct measurement: 5-minute variance distortion from \
       lifetime aggregation (Europe, top demands)";
    items =
      [
        Report.series "CDF of Var_netflow / Var_exact per demand" points;
        Report.note
          "median variance ratio %.2f — NetFlow lifetime averaging \
           erases a large share of the 5-minute variability"
          med;
        Report.note
          "mean-variance exponent c: %.2f from exact bins vs %.2f from \
           NetFlow bins (prefactor %.3g vs %.3g) — the distortion the \
           paper warns would bias variance-based estimators validated \
           on NetFlow data"
          fe.Tmest_stats.Regress.c fn.Tmest_stats.Regress.c
          fe.Tmest_stats.Regress.phi fn.Tmest_stats.Regress.phi;
      ];
  }

(* ------------------------------------------------------------ ext7 *)

let ext7 ctx =
  let max_iter = if ctx.Ctx.fast then 1500 else 6000 in
  let rounds = if ctx.Ctx.fast then 4 else 8 in
  let rows =
    List.map
      (fun net ->
        let ws = net.Ctx.workspace in
        (* Consecutive snapshots ending at the evaluation snapshot feed
           the refinement, so the last round's measurement is the one
           the MRE is computed against. *)
        let d = net.Ctx.dataset in
        let series =
          Mat.init rounds (Dataset.num_links d) (fun i j ->
              (Dataset.link_loads_at d
                 (net.Ctx.snapshot_k - rounds + 1 + i)).(j))
        in
        let prior = Tmest_parallel.Pool.Once.force net.Ctx.gravity_prior in
        (* A deliberately prior-trusting sigma2: on a single snapshot it
           barely moves away from gravity, so any gain is attributable
           to the iteration. *)
        let sigma2 = 1. in
        let trace =
          Core.Iterative.refine ~rounds ~tol:1e-4 ~sigma2
            ~stop:(stop_of max_iter) ws
            ~load_series:series ~prior
        in
        let truth = net.Ctx.truth in
        let one_shot =
          (Core.Bayes.estimate ~stop:(stop_of max_iter) ws ~loads:net.Ctx.loads ~prior
             ~sigma2)
            .Core.Bayes.estimate
        in
        ( net.Ctx.label,
          [|
            Metrics.mre ~truth ~estimate:prior ();
            Metrics.mre ~truth ~estimate:one_shot ();
            Metrics.mre ~truth ~estimate:(Core.Iterative.final trace) ();
            float_of_int (Array.length trace.Core.Iterative.estimates);
          |] ))
      (Ctx.networks ctx)
  in
  {
    Report.id = "ext7";
    title =
      "Iterative Bayesian prior refinement (Vaton & Gravey, the paper's \
       ref [11])";
    items =
      [
        Report.table
          ~columns:[ "network"; "gravity"; "one round"; "refined"; "rounds" ]
          rows;
        Report.note
          "re-using each round's estimate as the next prior accumulates \
           the information of several measurement snapshots even at \
           prior-trusting regularization";
      ];
  }

(* ------------------------------------------------------------ ext8 *)

let ext8 ctx =
  let max_iter = if ctx.Ctx.fast then 2000 else 8000 in
  let rows =
    List.concat_map
      (fun net ->
        let topo = net.Ctx.dataset.Dataset.topo in
        let truth = net.Ctx.truth in
        let evaluate label routing =
          let ws = Core.Workspace.create routing in
          let loads = Routing.link_loads routing truth in
          let prior = Core.Gravity.simple routing ~loads in
          let entropy =
            (Core.Entropy.estimate ~stop:(stop_of max_iter) ws ~loads ~prior ~sigma2:1000.)
              .Core.Entropy.estimate
          in
          let wcb = Core.Wcb.midpoint (Core.Wcb.bounds ws ~loads) in
          ( Printf.sprintf "%s %s" net.Ctx.label label,
            [|
              Metrics.mre ~truth ~estimate:prior ();
              Metrics.mre ~truth ~estimate:entropy ();
              Metrics.mre ~truth ~estimate:wcb ();
            |] )
        in
        (* Distance-derived metrics almost never tie, so compare on the
           hop-count-metric variant of the same topology (a common
           operator configuration), where a dense graph has many
           equal-cost paths. *)
        let unit_topo =
          {
            topo with
            Topology.links =
              Array.map
                (fun l ->
                  if l.Topology.lkind = Topology.Interior then
                    { l with Topology.metric = 1. }
                  else l)
                topo.Topology.links;
          }
        in
        [
          evaluate "single-path" (Routing.shortest_path unit_topo);
          evaluate "ECMP" (Routing.ecmp unit_topo);
        ])
      (* Europe only: the per-demand LP bounds under a fractional ECMP
         matrix are vastly slower on the 600-pair American network. *)
      [ ctx.Ctx.europe ]
  in
  {
    Report.id = "ext8";
    title =
      "Fractional (ECMP) vs single-path routing matrices: effect on \
       estimation";
    items =
      [
        Report.table ~columns:[ "routing"; "gravity"; "entropy"; "wcb mid" ]
          rows;
        Report.note
          "equal-cost splitting spreads each demand over more links, \
           changing the conditioning of R s = t; the paper's fractional-R \
           remark (Section 3.1) in practice";
      ];
  }

(* ------------------------------------------------------------ ext9 *)

let ext9 ctx =
  let net = ctx.Ctx.europe in
  let d = net.Ctx.dataset in
  let topo = d.Dataset.topo in
  (* Constant demands across configurations: the busy-period mean. *)
  let truth = Ctx.busy_mean net in
  let base = Routing.shortest_path topo in
  let base_ws = Core.Workspace.create base in
  let loads1 = Routing.link_loads base truth in
  (* Alternative configurations: take down each of the two busiest
     interior links in turn (weight changes in practice; failures give
     the same load-shifting effect). *)
  let by_load =
    List.sort
      (fun a b ->
        compare loads1.(b.Topology.link_id) loads1.(a.Topology.link_id))
      (Topology.interior_links topo)
  in
  let alt_configs =
    List.filteri (fun i _ -> i < 2) by_load
    |> List.filter_map (fun l ->
           Routing.without_links topo ~failed:[ l.Topology.link_id ])
    |> List.map (fun r ->
           (Core.Workspace.create r, Routing.link_loads r truth))
  in
  let configs = (base_ws, loads1) :: alt_configs in
  let prefix k = List.filteri (fun i _ -> i < k) configs in
  let rows =
    List.map
      (fun k ->
        let r = Core.Routechange.estimate (prefix k) in
        ( Printf.sprintf "%d configuration%s" k (if k = 1 then "" else "s"),
          [|
            Metrics.mre ~truth ~estimate:r.Core.Routechange.estimate ();
            float_of_int r.Core.Routechange.stacked_rank_gain;
          |] ))
      (List.init (List.length configs) (fun i -> i + 1))
  in
  {
    Report.id = "ext9";
    title =
      "Route-change inference (Nucci et al., ref [14]): MRE vs number of \
       routing configurations (Europe)";
    items =
      [
        Report.table ~columns:[ "configurations"; "MRE"; "rank gain" ] rows;
        Report.note
          "each weight change contributes fresh equations over the same \
           demands; pure least squares needs no prior once the stacked \
           system approaches full column rank";
      ];
  }

(* ----------------------------------------------------------- ext10 *)

let ext10 ctx =
  let net = ctx.Ctx.europe in
  let ws = net.Ctx.workspace in
  let truth = net.Ctx.truth and loads = net.Ctx.loads in
  let prior = Tmest_parallel.Pool.Once.force net.Ctx.gravity_prior in
  (* Chain length scales with the null-space dimension the sampler has
     to mix over (~76 for the full European network). *)
  let samples = if ctx.Ctx.fast then 300 else 2000 in
  let thin = if ctx.Ctx.fast then 5 else 25 in
  (* Four chains per posterior: the fixed chain count keeps the result
     identical at every job count while letting multi-domain runs spread
     the chains over the pool. *)
  let chains = 4 in
  let r =
    Core.Mcmc.sample ~burn_in:(samples * thin / 4) ~samples ~thin ~chains
      ~prior_model:`Uniform ws ~loads ~prior
  in
  let r_exp =
    Core.Mcmc.sample ~burn_in:(samples * thin / 4) ~samples ~thin ~chains
      ~prior_model:`Exponential ws ~loads ~prior
  in
  let entropy =
    (Core.Entropy.estimate ws ~loads ~prior ~sigma2:1000.)
      .Core.Entropy.estimate
  in
  let threshold, kept = Metrics.threshold_for_coverage ~coverage:0.9 truth in
  let covered = ref 0 in
  let widths = ref [] and wcb_widths = ref [] in
  let bounds = Tmest_parallel.Pool.Once.force net.Ctx.wcb in
  Array.iteri
    (fun i t ->
      if t >= threshold then begin
        if t >= r.Core.Mcmc.lower.(i) && t <= r.Core.Mcmc.upper.(i) then
          incr covered;
        widths := (r.Core.Mcmc.upper.(i) -. r.Core.Mcmc.lower.(i)) /. t :: !widths;
        wcb_widths :=
          (bounds.Core.Wcb.upper.(i) -. bounds.Core.Wcb.lower.(i)) /. t
          :: !wcb_widths
      end)
    truth;
  let mean l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
  {
    Report.id = "ext10";
    title =
      "Bayesian posterior sampling (Tebaldi-West-style hit-and-run, ref \
       [10]): point accuracy and credible intervals (Europe)";
    items =
      [
        Report.table
          ~columns:[ "estimate"; "MRE" ]
          [
            ( "uniform posterior mean",
              [| Metrics.mre ~truth ~estimate:r.Core.Mcmc.mean () |] );
            ( "exponential posterior mean",
              [| Metrics.mre ~truth ~estimate:r_exp.Core.Mcmc.mean () |] );
            ("entropy (reference)", [| Metrics.mre ~truth ~estimate:entropy () |]);
            ("gravity prior", [| Metrics.mre ~truth ~estimate:prior () |]);
          ];
        Report.note
          "uniform-posterior 90%%-interval coverage of the truth on the \
           top demands: %d/%d; mean relative interval width %.2f vs %.2f \
           for the worst-case bounds (the posterior concentrates inside \
           the feasible polytope)"
          !covered kept (mean !widths) (mean !wcb_widths);
        Report.note "null-space dimension sampled: %d" r.Core.Mcmc.null_dim;
      ];
  }

(* ----------------------------------------------------------- ext11 *)

let ext11 ctx =
  let max_iter = if ctx.Ctx.fast then 2000 else 8000 in
  let nets =
    if ctx.Ctx.fast then [ ctx.Ctx.europe ] else Ctx.networks ctx
  in
  let rows =
    List.concat_map
      (fun net ->
        let topo = net.Ctx.dataset.Dataset.topo in
        (* Scale the snapshot TM up until the default weights congest
           the network, so the optimization has work to do. *)
        let base = Tmest_te.Weight_opt.evaluate topo ~demands:net.Ctx.truth in
        let scale_up =
          if base.Tmest_te.Utilization.max_utilization > 0. then
            1.1 /. base.Tmest_te.Utilization.max_utilization
          else 1.
        in
        let truth = Vec.scale scale_up net.Ctx.truth in
        let loads = Vec.scale scale_up net.Ctx.loads in
        let prior = Vec.scale scale_up (Tmest_parallel.Pool.Once.force net.Ctx.gravity_prior) in
        let estimated =
          (Core.Entropy.estimate ~stop:(stop_of max_iter) net.Ctx.workspace ~loads ~prior
             ~sigma2:1000.)
            .Core.Entropy.estimate
        in
        (* Optimize the IGP weights against each TM, then score every
           weight setting under the *true* demands. *)
        let score label demands_for_opt =
          let r = Tmest_te.Weight_opt.optimize ~max_passes:4 topo
              ~demands:demands_for_opt in
          let achieved =
            Tmest_te.Weight_opt.evaluate r.Tmest_te.Weight_opt.topo
              ~demands:truth
          in
          ( Printf.sprintf "%s %s" net.Ctx.label label,
            [|
              achieved.Tmest_te.Utilization.max_utilization;
              achieved.Tmest_te.Utilization.cost /. 1e9;
            |] )
        in
        let default =
          let r = Tmest_te.Weight_opt.evaluate topo ~demands:truth in
          ( net.Ctx.label ^ " default weights",
            [|
              r.Tmest_te.Utilization.max_utilization;
              r.Tmest_te.Utilization.cost /. 1e9;
            |] )
        in
        [
          default;
          score "optimized w. true TM" truth;
          score "optimized w. estimated TM" estimated;
          score "optimized w. gravity TM" prior;
        ])
      nets
  in
  {
    Report.id = "ext11";
    title =
      "Traffic engineering with estimated traffic matrices (ref [4]): \
       weight optimization driven by true vs estimated demands, scored \
       under the true demands";
    items =
      [
        Report.table
          ~columns:[ "weights"; "max util"; "cost (1e9)" ]
          rows;
        Report.note
          "an entropy-estimated TM steers the weight search nearly as \
           well as the true TM — the operational argument for estimation \
           when direct measurement is unavailable";
      ];
  }

(* ----------------------------------------------------------- ext12 *)

let ext12 ctx =
  let max_iter = if ctx.Ctx.fast then 1500 else 5000 in
  let stride = if ctx.Ctx.fast then 10 else 6 in
  let items =
    List.concat_map
      (fun net ->
        let d = net.Ctx.dataset in
        let samples = Dataset.num_samples d in
        let ws = net.Ctx.workspace in
        let routing = d.Dataset.routing in
        let points = ref [] in
        let k = ref 0 in
        while !k < samples do
          let truth = Dataset.demand_at d !k in
          let loads = Dataset.link_loads_at d !k in
          if Vec.sum truth > 0. then begin
            let prior = Core.Gravity.simple routing ~loads in
            let est =
              (Core.Entropy.estimate ~stop:(stop_of max_iter) ws ~loads ~prior ~sigma2:1000.)
                .Core.Entropy.estimate
            in
            let hour = 24. *. float_of_int !k /. float_of_int samples in
            points :=
              (hour, Metrics.mre ~truth ~estimate:est ()) :: !points
          end;
          k := !k + stride
        done;
        let points = Array.of_list (List.rev !points) in
        let ys = Array.map snd points in
        let busy = net.Ctx.dataset.Dataset.spec in
        [
          Report.series (net.Ctx.label ^ " entropy MRE by time of day")
            points;
          Report.note
            "%s: MRE %.3f-%.3f across the day (busy period samples \
             %d-%d); estimation quality holds outside the busy hour \
             because the problem is re-normalized per snapshot"
            net.Ctx.label
            (Array.fold_left Stdlib.min ys.(0) ys)
            (Array.fold_left Stdlib.max ys.(0) ys)
            busy.Tmest_traffic.Spec.busy_start
            (busy.Tmest_traffic.Spec.busy_start
            + busy.Tmest_traffic.Spec.busy_len - 1);
        ])
      (Ctx.networks ctx)
  in
  {
    Report.id = "ext12";
    title =
      "Estimation quality across the diurnal cycle (entropy, gravity \
       prior, reg 1000)";
    items;
  }
