(* SplitMix64 (Steele, Lea, Flood 2014): a 64-bit state advanced by a Weyl
   sequence, output mixed by two xor-shift-multiply rounds.  Passes BigCrush
   and is trivially splittable, which is all we need for reproducible
   synthetic datasets. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = int64 t in
  { state = Int64.mul s 0xDA942042E4DD58B5L }

(* Random-access splitting: [of_pair seed i] jumps straight to the state
   the (i+1)'th sequential [split] of [create seed] would produce — the
   Weyl sequence makes the k'th draw a pure function of (seed, k).
   Parallel consumers (MCMC chains, per-sample synthetic noise) derive
   their stream from an index and get bit-identical results whether the
   streams are created sequentially or concurrently. *)
let of_pair seed i =
  if i < 0 then invalid_arg "Rng.of_pair: negative index";
  let s =
    mix
      (Int64.add (Int64.of_int seed)
         (Int64.mul (Int64.of_int (i + 1)) golden_gamma))
  in
  { state = Int64.mul s 0xDA942042E4DD58B5L }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the low 62 bits to avoid modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let rec draw () =
    let r = Int64.to_int (Int64.logand (int64 t) mask) in
    let v = r mod bound in
    if r - v > (1 lsl 62) - bound then draw () else v
  in
  draw ()

let float t =
  (* 53 random bits mapped to [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)
let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
