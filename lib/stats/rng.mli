(** Deterministic pseudo-random number generation.

    A small, fast SplitMix64 generator with an explicit state, so every
    dataset and experiment in this repository is reproducible from a seed
    independently of the OCaml stdlib's generator. *)

type t

(** [create seed] is a fresh generator. Equal seeds give equal streams. *)
val create : int -> t

(** [copy t] is an independent generator with the same state. *)
val copy : t -> t

(** [split t] derives a new, statistically independent generator and
    advances [t]. *)
val split : t -> t

(** [of_pair seed i] is the [(i+1)]'th generator that sequential
    {!split}s of [create seed] would yield, computed directly — indexed
    streams for parallel consumers (chains, per-sample noise) that must
    not depend on creation order.  [i] must be non-negative. *)
val of_pair : int -> int -> t

(** [int64 t] is the next raw 64-bit output. *)
val int64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)
val int : t -> int -> int

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [uniform t ~lo ~hi] is uniform in [\[lo, hi)]. *)
val uniform : t -> lo:float -> hi:float -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t a] is a uniformly random element of the non-empty array [a]. *)
val choose : t -> 'a array -> 'a
