let inv_e = exp (-1.)

(* Halley iteration on w*e^w = x, started from a branch-point or
   asymptotic guess.  Converges to machine precision in < 10 steps over
   the whole domain. *)
let w0 x =
  if x < -.inv_e -. 1e-12 then invalid_arg "Lambert.w0: x < -1/e";
  if x = 0. then 0.
  else begin
    let w0_guess =
      if x < -0.25 then begin
        (* Near the branch point use the series in p = sqrt(2(ex+1)). *)
        let p = sqrt (2. *. ((exp 1. *. x) +. 1.)) in
        -1. +. p -. (p *. p /. 3.)
      end
      else if x < 1. then x *. (1. -. x +. (1.5 *. x *. x))
      else begin
        let l1 = log x in
        let l2 = log l1 in
        if l1 > 3. then l1 -. l2 +. (l2 /. l1) else l1
      end
    in
    let w = ref (Stdlib.max w0_guess (-1.0)) in
    (* Early exit when the iterate reaches a fixed point: every further
       pass would recompute the same value, so breaking is bit-identical
       to the historical fixed 40-iteration loop (an oscillating iterate
       never matches and still runs the full budget). *)
    let it = ref 0 and live = ref true in
    while !live && !it < 40 do
      incr it;
      let ew = exp !w in
      let f = (!w *. ew) -. x in
      if f = 0. then live := false
      else begin
        let denom =
          (ew *. (!w +. 1.))
          -. ((!w +. 2.) *. f /. (2. *. (!w +. 1.)))
        in
        if denom = 0. then live := false
        else begin
          let next = !w -. (f /. denom) in
          if next = !w then live := false else w := next
        end
      end
    done;
    !w
  end

(* Solve w + log w = log_x for w > 0 by Newton; never forms exp log_x. *)
let w0_exp log_x =
  if log_x < -700. then exp log_x
  else if log_x <= 1. then w0 (exp log_x)
  else begin
    let w = ref (Stdlib.max (log_x -. log log_x) 1e-8) in
    (* Same fixed-point early exit as [w0]: bit-identical results. *)
    let it = ref 0 and live = ref true in
    while !live && !it < 60 do
      incr it;
      let f = !w +. log !w -. log_x in
      let f' = 1. +. (1. /. !w) in
      let next = !w -. (f /. f') in
      let next = if next > 0. then next else !w /. 2. in
      if next = !w then live := false else w := next
    done;
    !w
  end
