module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Rng = Tmest_stats.Rng
module Dist = Tmest_stats.Dist
module Counter = Tmest_snmp.Counter

type noise =
  | No_noise
  | Gaussian of float
  | Heavy_tailed of { sigma : float; dof : float }

type spec = {
  seed : int;
  noise : noise;
  drop_prob : float;
  wrap_prob : float;
  reset_prob : float;
  interval_s : float;
}

let none =
  {
    seed = 0;
    noise = No_noise;
    drop_prob = 0.;
    wrap_prob = 0.;
    reset_prob = 0.;
    interval_s = 300.;
  }

let make ?(seed = 1) ?(noise = No_noise) ?(drop_prob = 0.) ?(wrap_prob = 0.)
    ?(reset_prob = 0.) ?(interval_s = 300.) () =
  let check_prob name p =
    if p < 0. || p > 1. then
      invalid_arg (Printf.sprintf "Inject.make: %s must be in [0, 1]" name)
  in
  check_prob "drop_prob" drop_prob;
  check_prob "wrap_prob" wrap_prob;
  check_prob "reset_prob" reset_prob;
  if interval_s <= 0. then invalid_arg "Inject.make: interval_s <= 0";
  (match noise with
  | No_noise -> ()
  | Gaussian sigma ->
      if sigma < 0. then invalid_arg "Inject.make: noise sigma < 0"
  | Heavy_tailed { sigma; dof } ->
      if sigma < 0. || dof <= 0. then
        invalid_arg "Inject.make: heavy-tailed noise needs sigma >= 0, dof > 0");
  { seed; noise; drop_prob; wrap_prob; reset_prob; interval_s }

let is_none spec =
  spec.drop_prob = 0. && spec.wrap_prob = 0. && spec.reset_prob = 0.
  &&
  match spec.noise with
  | No_noise -> true
  | Gaussian sigma -> sigma = 0.
  | Heavy_tailed { sigma; _ } -> sigma = 0.

let description spec =
  let b = Buffer.create 64 in
  (match spec.noise with
  | No_noise -> ()
  | Gaussian sigma -> Buffer.add_string b (Printf.sprintf "noise=%g " sigma)
  | Heavy_tailed { sigma; dof } ->
      Buffer.add_string b (Printf.sprintf "t-noise=%g(dof=%g) " sigma dof));
  if spec.drop_prob > 0. then
    Buffer.add_string b (Printf.sprintf "drop=%g " spec.drop_prob);
  if spec.wrap_prob > 0. then
    Buffer.add_string b (Printf.sprintf "wrap=%g " spec.wrap_prob);
  if spec.reset_prob > 0. then
    Buffer.add_string b (Printf.sprintf "reset=%g " spec.reset_prob);
  Buffer.add_string b (Printf.sprintf "seed=%d" spec.seed);
  Buffer.contents b

let modulus_32 = 4294967296.

(* What a collector differencing raw 32-bit readings reports when the
   true interval volume exceeds the counter range: the wrap correction
   recovers one fold, every further fold is invisible. *)
let wrapped_rate spec rate =
  let bytes = rate *. spec.interval_s /. 8. in
  let c = Counter.create Counter.Bits32 in
  Counter.advance c ~bytes;
  let visible =
    Counter.delta ~width:Counter.Bits32 ~previous:0.
      ~current:(Counter.read c)
  in
  visible *. 8. /. spec.interval_s

(* A counter restart mid-interval: the new reading is below the old one,
   the collector's single-wrap correction fires and reports a difference
   that has nothing to do with the traffic. *)
let reset_rate spec rng rate =
  let bytes = rate *. spec.interval_s /. 8. in
  let up_fraction = Rng.float rng in
  let c = Counter.create Counter.Bits32 in
  Counter.advance c ~bytes:(bytes *. up_fraction);
  let previous = Rng.uniform rng ~lo:0. ~hi:modulus_32 in
  let garbage =
    Counter.delta ~width:Counter.Bits32 ~previous ~current:(Counter.read c)
  in
  garbage *. 8. /. spec.interval_s

let noisy_rate spec rng rate =
  match spec.noise with
  | No_noise -> rate
  | Gaussian sigma when sigma = 0. -> rate
  | Gaussian sigma ->
      Stdlib.max 0. (rate *. (1. +. Dist.gaussian rng ~mu:0. ~sigma))
  | Heavy_tailed { sigma; _ } when sigma = 0. -> rate
  | Heavy_tailed { sigma; dof } ->
      let z = Dist.standard_gaussian rng in
      let chi2 = Dist.gamma rng ~shape:(dof /. 2.) ~scale:2. in
      let t = z /. sqrt (Stdlib.max 1e-12 (chi2 /. dof)) in
      Stdlib.max 0. (rate *. (1. +. (sigma *. t)))

(* One measurement cell.  The draws happen in a fixed order on a
   per-cell stream, so corrupting a window row never perturbs the
   snapshot (or any other row). *)
let corrupt_cell spec ~stream rate =
  let rng = Rng.of_pair spec.seed stream in
  let dropped = Rng.float rng < spec.drop_prob in
  let wrapped = Rng.float rng < spec.wrap_prob in
  let reset = Rng.float rng < spec.reset_prob in
  if dropped then Float.nan
  else if reset then reset_rate spec rng rate
  else if wrapped then wrapped_rate spec rate
  else noisy_rate spec rng rate

(* Row 0 is the snapshot; window row [r] maps to stream row [r + 1].
   Links per network are far below the row stride. *)
let stream_of ~row ~link = (row * 1_048_576) + link

let loads spec ~loads =
  if is_none spec then loads
  else
    Array.mapi
      (fun i rate -> corrupt_cell spec ~stream:(stream_of ~row:0 ~link:i) rate)
      loads

let samples spec m =
  if is_none spec then m
  else
    Mat.init (Mat.rows m) (Mat.cols m) (fun r i ->
        corrupt_cell spec
          ~stream:(stream_of ~row:(r + 1) ~link:i)
          (Mat.get m r i))

let zero_fill v =
  Array.map (fun x -> if Float.is_finite x then x else 0.) v

let zero_fill_mat m =
  Mat.init (Mat.rows m) (Mat.cols m) (fun r i ->
      let x = Mat.get m r i in
      if Float.is_finite x then x else 0.)

let stale_routing topo ~fail = Tmest_net.Routing.without_links topo ~failed:fail
