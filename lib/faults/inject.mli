(** Deterministic measurement-fault injection.

    The paper evaluates every estimator on {e exact} link loads
    ([t = R s], Section 3); a deployed collection system never sees
    them.  This module corrupts a clean load vector (or a window of
    them) the way an SNMP pipeline does: multiplicative per-link
    measurement noise, lost counters, 32-bit counter wraps and
    mid-window counter resets — the latter two simulated through
    {!Tmest_snmp.Counter} so the corrupted values are exactly what a
    collector differencing real counter readings would report.

    Corruption is deterministic: link [i] of snapshot row [r] draws from
    the indexed stream [Tmest_stats.Rng.of_pair spec.seed] of cell
    [(r, i)], so the result is a pure function of [(spec, input)] —
    independent of evaluation order, pool size or how many other links
    were corrupted.  Missing measurements are reported as [nan]; the
    degraded estimation mode ({!Tmest_core.Degrade}) detects and repairs
    them downstream. *)

type noise =
  | No_noise
  | Gaussian of float
      (** multiplicative error with relative std [sigma]:
          [t * (1 + N(0, sigma^2))], clamped at 0 *)
  | Heavy_tailed of { sigma : float; dof : float }
      (** Student-t relative error with [dof] degrees of freedom —
          occasional gross outliers, the empirical shape of polling
          glitches *)

type spec = {
  seed : int;
  noise : noise;
  drop_prob : float;  (** per-link probability of a lost measurement *)
  wrap_prob : float;
      (** per-link probability that the reading comes from an
          uncorrected 32-bit counter (value folded modulo 2^32 bytes
          per interval) *)
  reset_prob : float;
      (** per-link probability of a mid-window counter reset: the
          collector wrap-corrects a difference across the restart and
          reports garbage *)
  interval_s : float;  (** polling interval for the counter arithmetic *)
}

(** No corruption at all: every rate and probability zero. *)
val none : spec

val make :
  ?seed:int ->
  ?noise:noise ->
  ?drop_prob:float ->
  ?wrap_prob:float ->
  ?reset_prob:float ->
  ?interval_s:float ->
  unit ->
  spec

(** [is_none spec] is [true] when the spec injects nothing; {!loads}
    and {!samples} then return their input unchanged (physically). *)
val is_none : spec -> bool

(** One-line summary, e.g. ["noise=0.05 drop=0.1 seed=7"]. *)
val description : spec -> string

(** [loads spec ~loads] corrupts one snapshot.  Dropped links are
    [nan]; all other entries are finite and non-negative.  The input is
    never mutated. *)
val loads : spec -> loads:Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t

(** [samples spec m] corrupts a window of load rows; row [r] uses the
    per-row stream of cell [(r + 1, link)], so a window's corruption
    does not collide with the snapshot stream (row 0). *)
val samples : spec -> Tmest_linalg.Mat.t -> Tmest_linalg.Mat.t

(** [zero_fill v] replaces non-finite entries by 0 — the naive baseline
    a repair-less pipeline falls back to (and what the comparison in
    [tme faults] measures the degraded mode against). *)
val zero_fill : Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t

(** [zero_fill_mat m] is {!zero_fill} row-wise. *)
val zero_fill_mat : Tmest_linalg.Mat.t -> Tmest_linalg.Mat.t

(** [stale_routing topo ~fail] is the re-routed (post-failure) routing
    with the [fail] busiest-listed interior link ids removed, or [None]
    if the network disconnects: the loads an estimator holding the old
    [R] would observe after an unsynchronized routing change.  Thin
    wrapper over {!Tmest_net.Routing.without_links}. *)
val stale_routing :
  Tmest_net.Topology.t -> fail:int list -> Tmest_net.Routing.t option
