(** Euclidean projections onto simple convex sets. *)

(** [simplex ?total v] is the Euclidean projection of [v] onto
    [{x >= 0 | Σ x = total}] (default [total = 1]), via the sort-based
    algorithm of Held/Wolfe/Crowder (also Duchi et al. 2008), O(n log n).
    @raise Invalid_argument if [total <= 0] or [v] is empty. *)
val simplex : ?total:float -> Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t

(** Precomputed block structure for {!block_simplex_into}: member index
    lists plus per-block sort buffers, so the projection inside a solver
    iteration allocates nothing. *)
type partition

(** [block_partition ~block] groups coordinates by [block.(i)] (block
    ids must be [0..B-1]).  Build once per problem, reuse across
    iterations. *)
val block_partition : block:int array -> partition

(** [block_simplex_into part v ~dst] projects each block of coordinates
    independently onto the probability simplex, writing into [dst]
    ([dst] may alias [v]; blocks are disjoint, so per-block writes never
    disturb another block's reads). *)
val block_simplex_into :
  partition -> Tmest_linalg.Vec.t -> dst:Tmest_linalg.Vec.t -> unit

(** [block_simplex ~block v] is the allocating form: builds the
    partition and projects.  [block.(i)] names the block of coordinate
    [i].  Used to enforce per-source fanout constraints
    [Σ_m α(n,m) = 1, α >= 0]. *)
val block_simplex : block:int array -> Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t
