(** Scratch-buffer pools for the allocation-free solver hot paths.

    Each iterative solver documents how many work vectors of the
    problem dimension it needs ([Fista.scratch_size] etc.).  Passing a
    preallocated pool makes repeated solves allocation-free end to end;
    omitting it falls back to a fresh per-call allocation (setup cost
    only — the iterations themselves never allocate either way). *)

(** [take ~name ~dim ~count pool] is [pool] validated to hold at least
    [count] buffers of dimension [dim] (raising [Invalid_argument]
    otherwise, with [name] in the message), or [count] fresh zero
    vectors when [pool] is [None].  Buffer contents are not preserved:
    solvers treat them as uninitialized. *)
val take :
  name:string ->
  dim:int ->
  count:int ->
  Tmest_linalg.Vec.t array option ->
  Tmest_linalg.Vec.t array
