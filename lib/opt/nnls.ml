module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Qr = Tmest_linalg.Qr
module Obs = Tmest_obs.Obs

type result = { x : Vec.t; residual_norm : float; iterations : int }

(* Lawson & Hanson (1974), ch. 23.  P is the passive (free) set, Z the
   active (zero) set.  Each outer step admits the variable with the most
   positive gradient of the residual; the inner loop backtracks along the
   segment to the unconstrained solution whenever it leaves the positive
   orthant, pinning the blocking variables. *)
let solve ?(stop = Stop.default) a b =
  let m = Mat.rows a and n = Mat.cols a in
  if Array.length b <> m then invalid_arg "Nnls.solve: dimension mismatch";
  let max_iter = Stop.max_iter stop ~default:(3 * n) in
  let sink = stop.Stop.sink in
  let traced = sink.Obs.enabled in
  let label = Stop.label stop ~default:"nnls" in
  let x = Vec.zeros n in
  let passive = Array.make n false in
  let iterations = ref 0 in
  (* The outer-loop residual and dual gradient are recomputed every
     step; keep one buffer for each instead of allocating per call. *)
  let resid = Vec.zeros m in
  let w = Vec.zeros n in
  let refresh_residual () =
    Mat.matvec_into a x ~dst:resid;
    Vec.sub_into b resid ~dst:resid
  in
  let tol =
    match stop.Stop.tol with
    | Some t -> t
    | None -> 1e-10 *. float_of_int m *. (1. +. Vec.norm_inf b)
  in
  let passive_indices () =
    let acc = ref [] in
    for j = n - 1 downto 0 do
      if passive.(j) then acc := j :: !acc
    done;
    Array.of_list !acc
  in
  (* Unconstrained LS on the passive columns, via QR. *)
  let ls_on_passive () =
    let idx = passive_indices () in
    if Array.length idx = 0 then [||]
    else begin
      let sub = Mat.select_cols a idx in
      Qr.solve_lstsq sub b
    end
  in
  let finished = ref false in
  if traced then
    Obs.span_begin sink label
      ~args:[ ("rows", Obs.Int m); ("cols", Obs.Int n);
              ("max_iter", Obs.Int max_iter) ];
  while (not !finished) && !iterations < max_iter do
    incr iterations;
    refresh_residual ();
    if traced then
      Obs.iter sink ~solver:label ~iter:!iterations
        ~residual:(Vec.norm2 resid) ();
    Mat.tmatvec_into a resid ~dst:w;
    (* Most promising zero variable. *)
    let best = ref (-1) in
    for j = 0 to n - 1 do
      if (not passive.(j)) && w.(j) > tol then
        if !best < 0 || w.(j) > w.(!best) then best := j
    done;
    if !best < 0 then finished := true
    else begin
      passive.(!best) <- true;
      let inner_done = ref false in
      while not !inner_done do
        let idx = passive_indices () in
        let z = ls_on_passive () in
        let min_z = Array.fold_left Stdlib.min infinity z in
        if min_z > 0. then begin
          Array.iteri (fun k j -> x.(j) <- z.(k)) idx;
          inner_done := true
        end
        else begin
          (* Step from x toward z until the first variable hits zero. *)
          let alpha = ref infinity in
          Array.iteri
            (fun k j ->
              if z.(k) <= 0. then begin
                let denom = x.(j) -. z.(k) in
                if denom > 0. then
                  alpha := Stdlib.min !alpha (x.(j) /. denom)
              end)
            idx;
          let alpha = if !alpha = infinity then 0. else !alpha in
          Array.iteri
            (fun k j -> x.(j) <- x.(j) +. (alpha *. (z.(k) -. x.(j))))
            idx;
          Array.iteri
            (fun k j ->
              if z.(k) <= 0. && x.(j) <= 1e-12 then begin
                x.(j) <- 0.;
                passive.(j) <- false
              end)
            idx
        end
      done
    end
  done;
  if traced then Obs.span_end sink label;
  refresh_residual ();
  { x; residual_norm = Vec.norm2 resid; iterations = !iterations }
