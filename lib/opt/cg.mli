(** Conjugate gradients for symmetric positive-(semi)definite systems.

    Matrix-free: only matrix-vector products are needed, so it works
    with CSR routing Grams and implicit normal equations without
    forming dense factors. *)

type result = {
  x : Tmest_linalg.Vec.t;
  iterations : int;
  residual_norm : float;  (** ‖b − A x‖ at exit *)
  converged : bool;
}

(** Number of scratch buffers of the system dimension consumed by
    [solve_into] (iterate, residual, search direction, operator
    output, preconditioned residual). *)
val scratch_size : int

(** [solve_into ~apply_into ~b ()] solves [A x = b] for SPD [A] given
    as the destination-passing product [apply_into v ~dst] (never
    called with [dst] aliasing [v]).  Iterations are allocation-free:
    all work happens in [scratch_size] preallocated buffers (supplied
    via [scratch] or allocated once at entry); the returned [x] is a
    fresh copy.  [stop] ({!Stop.t}) bundles the stopping rule — residual
    below [tol * ‖b‖] (default [tol = 1e-10]) or [max_iter] iterations
    (default [2 * dim]) — and the trace sink; with an enabled sink the
    solver emits one span plus a per-iteration record (residual norm,
    step length α).

    [?m_inv_into] turns the solver into preconditioned CG: it must
    apply a symmetric positive-definite [M⁻¹] (e.g. inverse Jacobi or
    block-Jacobi diagonal) into [dst], and is called once per iteration.
    Convergence is still judged on the true residual [‖b − A x‖], so the
    preconditioner changes the iteration count, never the accuracy.
    Omitting it gives a path bit-identical to classic CG. *)
val solve_into :
  ?x0:Tmest_linalg.Vec.t ->
  ?stop:Stop.t ->
  ?scratch:Tmest_linalg.Vec.t array ->
  ?m_inv_into:(Tmest_linalg.Vec.t -> dst:Tmest_linalg.Vec.t -> unit) ->
  apply_into:(Tmest_linalg.Vec.t -> dst:Tmest_linalg.Vec.t -> unit) ->
  b:Tmest_linalg.Vec.t ->
  unit ->
  result

(** [solve ~apply ~b ()] is {!solve_into} with an allocating
    matrix-vector product. *)
val solve :
  ?x0:Tmest_linalg.Vec.t ->
  ?stop:Stop.t ->
  apply:(Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t) ->
  b:Tmest_linalg.Vec.t ->
  unit ->
  result

(** [solve_mat a b] is [solve] with a dense SPD matrix. *)
val solve_mat :
  ?stop:Stop.t -> Tmest_linalg.Mat.t -> Tmest_linalg.Vec.t ->
  result

(** [lsqr_normal ~matvec ~tmatvec ~b ()] solves the least-squares
    problem [min ‖M x − b‖] through the normal equations
    [MᵀM x = Mᵀ b] with CG (adequate for the mildly conditioned routing
    systems here). *)
val lsqr_normal :
  ?stop:Stop.t ->
  matvec:(Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t) ->
  tmatvec:(Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t) ->
  b:Tmest_linalg.Vec.t ->
  unit ->
  result
