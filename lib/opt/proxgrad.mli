(** Accelerated proximal-gradient method for composite objectives
    [f(x) + h(x)] with [f] smooth and [h] prox-friendly.

    The entropy ("tomogravity") estimator is solved with
    [f(s) = ‖R s − t‖²] and [h(s) = σ⁻² D(s ‖ prior)]; the proximal
    operator of a scaled generalized KL divergence has the closed form
    [prox(v) = c · W₀((p/c) · e^(v/c))] evaluated through the log-domain
    Lambert-W to avoid overflow. *)

type result = {
  x : Tmest_linalg.Vec.t;
  iterations : int;
  converged : bool;
}

(** Number of scratch buffers of the problem dimension consumed by
    [solve_into]. *)
val scratch_size : int

(** [solve_into ~dim ~gradient_into ~prox_into ~lipschitz ()] minimizes
    [f + h] where [gradient_into v ~dst] writes ∇f(v) into [dst],
    [prox_into step v ~dst] writes [argmin_u h(u) + ‖u−v‖²/(2 step)]
    into [dst] ([dst] may alias [v]), and [lipschitz] bounds ∇f's
    Lipschitz constant.  Iterations are allocation-free: all work
    happens in [scratch_size] preallocated buffers (supplied via
    [scratch] or allocated once at entry); the returned [x] is a fresh
    copy.

    [stop] bundles the iteration budget (default 3000), tolerance
    (default 1e-9) and trace sink ({!Stop.t}); with an enabled sink the
    solver emits one span plus per-iteration records, and [objective]
    (evaluated only when tracing) fills their objective column.

    [dinv] applies diagonal preconditioning: the forward step becomes
    [y − step·D⁻¹∇f(y)] with [D = diag(1/dinv)], and [prox_into] must
    apply the prox in the same metric (see {!kl_prox_scaled_into});
    [lipschitz] must bound the preconditioned curvature.  [backtrack]
    (value of the smooth part) replaces the fixed [1/lipschitz] step
    with a backtracking line search seeded by the spectral estimate;
    see {!Fista.solve_into}.  Omitting both reproduces the historical
    path bit for bit. *)
val solve_into :
  ?x0:Tmest_linalg.Vec.t ->
  ?stop:Stop.t ->
  ?scratch:Tmest_linalg.Vec.t array ->
  ?objective:(Tmest_linalg.Vec.t -> float) ->
  ?dinv:Tmest_linalg.Vec.t ->
  ?backtrack:(Tmest_linalg.Vec.t -> float) ->
  dim:int ->
  gradient_into:(Tmest_linalg.Vec.t -> dst:Tmest_linalg.Vec.t -> unit) ->
  prox_into:(float -> Tmest_linalg.Vec.t -> dst:Tmest_linalg.Vec.t -> unit) ->
  lipschitz:float ->
  unit ->
  result

(** [solve ~dim ~gradient ~prox ~lipschitz ()] is {!solve_into} with
    allocating callbacks; kept as the convenient non-hot-path entry
    point. *)
val solve :
  ?x0:Tmest_linalg.Vec.t ->
  ?stop:Stop.t ->
  dim:int ->
  gradient:(Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t) ->
  prox:(float -> Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t) ->
  lipschitz:float ->
  unit ->
  result

(** [kl_prox_into ~weight ~prior step v ~dst] writes the proximal
    operator of [weight · D(· ‖ prior)] (generalized KL,
    [D(s‖p) = Σ s ln(s/p) − s + p]) with step size [step] into [dst],
    element-wise.  [dst] may alias [v].  Entries with [prior <= 0] are
    mapped to 0. *)
val kl_prox_into :
  weight:float ->
  prior:Tmest_linalg.Vec.t ->
  float ->
  Tmest_linalg.Vec.t ->
  dst:Tmest_linalg.Vec.t ->
  unit

(** [kl_prox ~weight ~prior step v] is the allocating form of
    {!kl_prox_into}. *)
val kl_prox :
  weight:float -> prior:Tmest_linalg.Vec.t -> float -> Tmest_linalg.Vec.t ->
  Tmest_linalg.Vec.t

(** [kl_prox_scaled_into ~weight ~prior ~dinv step v ~dst] is
    {!kl_prox_into} in the diagonal metric [D = diag(1/dinv)]
    ([argmin_u weight·D(u‖prior) + ‖u−v‖²_D/(2·step)]): separable, with
    coordinate [i] seeing the effective step [step·dinv.(i)].  The
    matching prox for {!solve_into}'s [dinv] option.  [dst] may alias
    [v]. *)
val kl_prox_scaled_into :
  weight:float ->
  prior:Tmest_linalg.Vec.t ->
  dinv:Tmest_linalg.Vec.t ->
  float ->
  Tmest_linalg.Vec.t ->
  dst:Tmest_linalg.Vec.t ->
  unit

(** [kl_divergence s p] is [Σ sᵢ ln(sᵢ/pᵢ) − sᵢ + pᵢ], with the usual
    conventions [0 ln 0 = 0]; infinite if some [sᵢ > 0] has [pᵢ = 0]. *)
val kl_divergence : Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t -> float
