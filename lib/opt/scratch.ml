module Vec = Tmest_linalg.Vec

(* The iterative solvers iterate over a fixed number of work vectors;
   [take] either validates a caller-supplied pool (so repeated solves
   against one routing context reuse the same arrays, see
   [Tmest_core.Workspace]) or allocates a fresh one.  Buffers are
   treated as uninitialized on entry: every solver overwrites them
   before reading. *)
let take ~name ~dim ~count = function
  | None -> Array.init count (fun _ -> Vec.zeros dim)
  | Some bufs ->
      if Array.length bufs < count then
        invalid_arg
          (Printf.sprintf "%s: scratch pool too small (%d < %d buffers)"
             name (Array.length bufs) count);
      for i = 0 to count - 1 do
        if Vec.dim bufs.(i) <> dim then
          invalid_arg
            (Printf.sprintf
               "%s: scratch buffer %d has dimension %d, expected %d" name i
               (Vec.dim bufs.(i)) dim)
      done;
      bufs
