(** Accelerated projected-gradient (FISTA) solver for smooth convex
    objectives over the non-negative orthant.

    Used for the larger regularized estimation problems (Bayesian, Vardi)
    where forming and factoring normal equations per active-set change
    would be too slow. *)

type result = {
  x : Tmest_linalg.Vec.t;
  iterations : int;
  converged : bool;
}

(** Number of scratch buffers of the problem dimension consumed by
    [solve_into] (current iterate, candidate iterate, extrapolation
    point, gradient). *)
val scratch_size : int

(** [solve_into ~dim ~gradient_into ~lipschitz ()] minimizes a convex
    differentiable [f] with gradient [gradient_into] (destination-passing:
    [gradient_into v ~dst] writes ∇f(v) into [dst]) and gradient
    Lipschitz constant [lipschitz] over the projection set.

    Iterations are allocation-free: all work happens in [scratch_size]
    preallocated buffers (supplied via [scratch], validated by
    {!Scratch.take}, or allocated once at entry).  The returned [x] is a
    fresh copy and never aliases the scratch pool.

    - [x0]: starting point (default 0); projected before use.
    - [stop]: shared stopping/observability policy ({!Stop.t}); solver
      defaults are 2000 iterations and a tolerance of 1e-9 — stop when
      the projected-gradient step moves [x] by less than
      [tol * (1 + ‖x‖)] in Euclidean norm.  With an enabled trace sink
      the solver emits one span plus a per-iteration record (step norm,
      step size, restart flag); with the null sink the iterations stay
      allocation-free and results bit-identical.
    - [project_into]: projection onto the feasible set, written to [dst]
      (which may alias the input); defaults to clamping onto [{x >= 0}].
    - [objective]: evaluated on the new iterate {e only} when tracing is
      enabled, to fill the objective column of iteration records; it
      never influences the solve.
    - [dinv]: inverse of a positive diagonal metric [D]; the gradient
      step becomes [y − step·D⁻¹∇f(y)] (diagonal preconditioning).
      [lipschitz] must then bound [D^{-1/2} H D^{-1/2}], i.e. the
      preconditioned curvature.  Omitting [dinv] reproduces the
      unpreconditioned path bit for bit.
    - [backtrack]: value of the smooth part [f]; switches the fixed
      [1/lipschitz] step to a backtracking line search seeded by the
      spectral estimate — accept [η] when
      [f(x⁺) ≤ f(y) + ∇f(y)·(x⁺−y) + ‖x⁺−y‖²_D/(2η)], halve on
      failure, grow mildly between iterations.  [f] is evaluated 2+
      times per iteration (may allocate), so this is for objectives
      whose true curvature sits well below the spectral bound.
    - Restarts the momentum whenever it points uphill (adaptive restart),
      which matters for the badly conditioned small-regularization runs. *)
val solve_into :
  ?x0:Tmest_linalg.Vec.t ->
  ?stop:Stop.t ->
  ?scratch:Tmest_linalg.Vec.t array ->
  ?project_into:(Tmest_linalg.Vec.t -> dst:Tmest_linalg.Vec.t -> unit) ->
  ?objective:(Tmest_linalg.Vec.t -> float) ->
  ?dinv:Tmest_linalg.Vec.t ->
  ?backtrack:(Tmest_linalg.Vec.t -> float) ->
  dim:int ->
  gradient_into:(Tmest_linalg.Vec.t -> dst:Tmest_linalg.Vec.t -> unit) ->
  lipschitz:float ->
  unit ->
  result

(** [solve ~dim ~gradient ~lipschitz ()] is {!solve_into} with an
    allocating gradient callback and the non-negative orthant
    projection; kept as the convenient non-hot-path entry point. *)
val solve :
  ?x0:Tmest_linalg.Vec.t ->
  ?stop:Stop.t ->
  dim:int ->
  gradient:(Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t) ->
  lipschitz:float ->
  unit ->
  result

(** [lipschitz_of_gram h] is the largest eigenvalue of the symmetric
    positive-semidefinite matrix [h], estimated by power iteration; a
    valid gradient Lipschitz constant for [f(x) = ½xᵀhx − qᵀx]. *)
val lipschitz_of_gram : ?iters:int -> Tmest_linalg.Mat.t -> float

(** [lipschitz_of_op ~dim apply] estimates ‖H‖₂ for a symmetric PSD
    operator given only matrix-vector products. *)
val lipschitz_of_op :
  ?iters:int -> dim:int -> (Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t) -> float
