(* Shared stopping/observability policy for the iterative solvers.

   Every solver used to grow its own [?max_iter ?tol] pair; the record
   here unifies them and carries the trace sink, so threading
   observability through a call chain is one value instead of three
   optional arguments.  [max_iter]/[tol] stay optional inside the
   record: [None] means "the solver's own default", which differs per
   solver (FISTA 2000 iterations, proximal gradient 3000, CG 2·dim). *)

type t = {
  max_iter : int option;
  tol : float option;
  sink : Tmest_obs.Obs.sink;
  label : string option;
}

let default =
  { max_iter = None; tol = None; sink = Tmest_obs.Obs.null; label = None }

let make ?max_iter ?tol ?(sink = Tmest_obs.Obs.null) ?label () =
  { max_iter; tol; sink; label }

let with_sink sink t = { t with sink }
let with_label label t = { t with label = Some label }

let max_iter t ~default = Option.value t.max_iter ~default
let tol t ~default = Option.value t.tol ~default
let label t ~default = Option.value t.label ~default
