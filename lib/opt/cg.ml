module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Obs = Tmest_obs.Obs

type result = {
  x : Vec.t;
  iterations : int;
  residual_norm : float;
  converged : bool;
}

let scratch_size = 5

let solve_into ?x0 ?(stop = Stop.default) ?scratch ?m_inv_into ~apply_into ~b
    () =
  let dim = Array.length b in
  let max_iter = Stop.max_iter stop ~default:(2 * dim) in
  let tol = Stop.tol stop ~default:1e-10 in
  let sink = stop.Stop.sink in
  let traced = sink.Obs.enabled in
  let label = Stop.label stop ~default:"cg" in
  let bufs =
    Scratch.take ~name:"Cg.solve_into" ~dim ~count:scratch_size scratch
  in
  let x = bufs.(0) and r = bufs.(1) and p = bufs.(2) and ap = bufs.(3) in
  (* Preconditioned residual z = M⁻¹r.  Without a preconditioner [z]
     aliases [r] and every z-expression collapses onto the classic CG
     recurrences — same floats in the same order, so enabling the
     [m_inv_into:None] path is bit-identical to the historical
     unpreconditioned solver. *)
  let z = match m_inv_into with Some _ -> bufs.(4) | None -> r in
  (match x0 with
  | Some v ->
      if Vec.dim v <> dim then invalid_arg "Cg.solve: x0 dimension mismatch";
      Vec.blit_into v ~dst:x
  | None -> Array.fill x 0 dim 0.);
  apply_into x ~dst:ap;
  Vec.sub_into b ap ~dst:r;
  let rs = ref (Vec.dot r r) in
  let rz =
    ref
      (match m_inv_into with
      | Some f ->
          f r ~dst:z;
          Vec.dot r z
      | None -> !rs)
  in
  Vec.blit_into z ~dst:p;
  let target = tol *. (Vec.norm2 b +. 1e-300) in
  let iterations = ref 0 in
  if traced then
    Obs.span_begin sink label
      ~args:[ ("dim", Obs.Int dim); ("max_iter", Obs.Int max_iter) ];
  (* Convergence is judged on the true residual ‖r‖ in both modes, so a
     preconditioner changes the path, never the meaning of [tol]. *)
  while sqrt !rs > target && !iterations < max_iter do
    incr iterations;
    apply_into p ~dst:ap;
    let pap = Vec.dot p ap in
    if pap <= 0. then begin
      (* Null-space direction of a semidefinite operator: stop here. *)
      if traced then
        Obs.iter sink ~solver:label ~iter:!iterations ~residual:0. ();
      rs := 0.
    end
    else begin
      let alpha = !rz /. pap in
      Vec.axpy_into alpha p x ~dst:x;
      (* Fused r <- r - alpha*Ap and ||r||^2 in one pass: bit-identical
         to the separate axpy + dot (store precedes accumulate per
         element) and allocation-neutral (one boxed float return where
         [dot] returned one). *)
      let rs' = Vec.axpy_sq_into (-.alpha) ap r ~dst:r in
      let rz' =
        match m_inv_into with
        | Some f ->
            f r ~dst:z;
            Vec.dot r z
        | None -> rs'
      in
      let beta = rz' /. !rz in
      Vec.axpy_into beta p z ~dst:p;
      if traced then
        Obs.iter sink ~solver:label ~iter:!iterations ~residual:(sqrt rs')
          ~step:alpha ();
      rs := rs';
      rz := rz'
    end
  done;
  if traced then Obs.span_end sink label;
  apply_into x ~dst:ap;
  Vec.sub_into b ap ~dst:r;
  let residual_norm = Vec.norm2 r in
  {
    x = Vec.copy x;
    iterations = !iterations;
    residual_norm;
    converged = residual_norm <= Stdlib.max target (10. *. target);
  }

let solve ?x0 ?stop ~apply ~b () =
  solve_into ?x0 ?stop
    ~apply_into:(fun v ~dst -> Vec.blit_into (apply v) ~dst)
    ~b ()

let solve_mat ?stop a b =
  if Mat.rows a <> Mat.cols a then invalid_arg "Cg.solve_mat: not square";
  solve_into ?stop
    ~apply_into:(fun v ~dst -> Mat.matvec_into a v ~dst)
    ~b ()

let lsqr_normal ?stop ~matvec ~tmatvec ~b () =
  let apply v = tmatvec (matvec v) in
  let rhs = tmatvec b in
  solve ?stop ~apply ~b:rhs ()
