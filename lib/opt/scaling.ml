module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Obs = Tmest_obs.Obs

type report = { iterations : int; max_error : float; converged : bool }

let ipf ?(stop = Stop.default) prior ~row_sums ~col_sums =
  let max_iter = Stop.max_iter stop ~default:500 in
  let tol = Stop.tol stop ~default:1e-9 in
  let sink = stop.Stop.sink in
  let traced = sink.Obs.enabled in
  let label = Stop.label stop ~default:"ipf" in
  let n = Mat.rows prior and m = Mat.cols prior in
  if Array.length row_sums <> n || Array.length col_sums <> m then
    invalid_arg "Scaling.ipf: dimension mismatch";
  Array.iter
    (fun x -> if x < 0. then invalid_arg "Scaling.ipf: negative target")
    (Array.append row_sums col_sums);
  let s = Mat.copy prior in
  let scale_axis sums ~along_rows =
    let k = if along_rows then n else m in
    for i = 0 to k - 1 do
      let total = ref 0. in
      let len = if along_rows then m else n in
      for j = 0 to len - 1 do
        total :=
          !total +. (if along_rows then Mat.unsafe_get s i j
                     else Mat.unsafe_get s j i)
      done;
      if !total > 0. then begin
        let f = sums.(i) /. !total in
        for j = 0 to len - 1 do
          if along_rows then
            Mat.unsafe_set s i j (Mat.unsafe_get s i j *. f)
          else Mat.unsafe_set s j i (Mat.unsafe_get s j i *. f)
        done
      end
    done
  in
  let marginal_error () =
    let err = ref 0. in
    for i = 0 to n - 1 do
      let total = ref 0. in
      for j = 0 to m - 1 do
        total := !total +. Mat.unsafe_get s i j
      done;
      err := Stdlib.max !err (abs_float (!total -. row_sums.(i)))
    done;
    for j = 0 to m - 1 do
      let total = ref 0. in
      for i = 0 to n - 1 do
        total := !total +. Mat.unsafe_get s i j
      done;
      err := Stdlib.max !err (abs_float (!total -. col_sums.(j)))
    done;
    !err
  in
  let scale_ref =
    Stdlib.max (Vec.norm_inf row_sums) (Vec.norm_inf col_sums) +. 1.
  in
  let iterations = ref 0 in
  let err = ref infinity in
  if traced then
    Obs.span_begin sink label
      ~args:[ ("rows", Obs.Int n); ("cols", Obs.Int m);
              ("max_iter", Obs.Int max_iter) ];
  while !iterations < max_iter && !err > tol *. scale_ref do
    incr iterations;
    scale_axis row_sums ~along_rows:true;
    scale_axis col_sums ~along_rows:false;
    err := marginal_error ();
    if traced then
      Obs.iter sink ~solver:label ~iter:!iterations ~residual:!err ()
  done;
  if traced then Obs.span_end sink label;
  ( s,
    {
      iterations = !iterations;
      max_error = !err;
      converged = !err <= tol *. scale_ref;
    } )

let gis ?(stop = Stop.default) r t ~prior =
  let max_iter = Stop.max_iter stop ~default:2000 in
  let tol = Stop.tol stop ~default:1e-8 in
  let sink = stop.Stop.sink in
  let traced = sink.Obs.enabled in
  let label = Stop.label stop ~default:"gis" in
  let l = Mat.rows r and p = Mat.cols r in
  if Array.length t <> l || Array.length prior <> p then
    invalid_arg "Scaling.gis: dimension mismatch";
  for i = 0 to l - 1 do
    for j = 0 to p - 1 do
      if Mat.unsafe_get r i j < 0. then
        invalid_arg "Scaling.gis: constraint matrix must be non-negative"
    done
  done;
  (* f# of Darroch–Ratcliff: the largest feature total over variables;
     exponents r_lp / f# make the per-step correction a proper mean. *)
  let fsharp = ref 0. in
  for j = 0 to p - 1 do
    let colsum = ref 0. in
    for i = 0 to l - 1 do
      colsum := !colsum +. Mat.unsafe_get r i j
    done;
    fsharp := Stdlib.max !fsharp !colsum
  done;
  let fsharp = Stdlib.max !fsharp 1e-12 in
  let s = Vec.copy prior in
  let iterations = ref 0 in
  let err = ref infinity in
  let scale_ref = Vec.norm_inf t +. 1. in
  if traced then
    Obs.span_begin sink label
      ~args:[ ("dim", Obs.Int p); ("max_iter", Obs.Int max_iter) ];
  while !iterations < max_iter && !err > tol *. scale_ref do
    incr iterations;
    let pred = Mat.matvec r s in
    for j = 0 to p - 1 do
      if s.(j) > 0. then begin
        let log_factor = ref 0. in
        for i = 0 to l - 1 do
          let rij = Mat.unsafe_get r i j in
          if rij > 0. && pred.(i) > 0. && t.(i) > 0. then
            log_factor := !log_factor +. (rij *. log (t.(i) /. pred.(i)))
        done;
        s.(j) <- s.(j) *. exp (!log_factor /. fsharp)
      end
    done;
    let pred = Mat.matvec r s in
    err := Vec.norm_inf (Vec.sub pred t);
    if traced then
      Obs.iter sink ~solver:label ~iter:!iterations ~residual:!err ()
  done;
  if traced then Obs.span_end sink label;
  ( s,
    {
      iterations = !iterations;
      max_error = !err;
      converged = !err <= tol *. scale_ref;
    } )
