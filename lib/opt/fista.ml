module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Obs = Tmest_obs.Obs

type result = { x : Vec.t; iterations : int; converged : bool }

let scratch_size = 4

let default_project v ~dst = Vec.clamp_nonneg_into v ~dst

let solve_into ?x0 ?(stop = Stop.default) ?scratch ?project_into ?objective
    ?dinv ?backtrack ~dim ~gradient_into ~lipschitz () =
  if lipschitz <= 0. then invalid_arg "Fista.solve: lipschitz must be > 0";
  (match dinv with
  | Some dv when Vec.dim dv <> dim ->
      invalid_arg "Fista.solve: dinv dimension mismatch"
  | _ -> ());
  let max_iter = Stop.max_iter stop ~default:2000 in
  let tol = Stop.tol stop ~default:1e-9 in
  let sink = stop.Stop.sink in
  let traced = sink.Obs.enabled in
  let label = Stop.label stop ~default:"fista" in
  let project_into =
    match project_into with Some f -> f | None -> default_project
  in
  let step = 1. /. lipschitz in
  let bufs =
    Scratch.take ~name:"Fista.solve_into" ~dim ~count:scratch_size scratch
  in
  let x = ref bufs.(0) and x_next = ref bufs.(1) in
  let y = bufs.(2) and g = bufs.(3) in
  (match x0 with
  | Some v ->
      if Vec.dim v <> dim then
        invalid_arg "Fista.solve: x0 dimension mismatch";
      project_into v ~dst:!x
  | None -> Array.fill !x 0 dim 0.);
  Vec.blit_into !x ~dst:y;
  let momentum = ref 1. in
  let iterations = ref 0 in
  let converged = ref false in
  (* Preconditioned gradient step x⁺ = Π(y − η·D⁻¹∇f(y)); without
     [dinv] this is the historical axpy, bit for bit. *)
  let take_step eta =
    (match dinv with
    | None -> Vec.axpy_into (-.eta) g y ~dst:!x_next
    | Some dv ->
        let xna = !x_next in
        for i = 0 to dim - 1 do
          Array.unsafe_set xna i
            (Array.unsafe_get y i
            -. (eta *. Array.unsafe_get dv i *. Array.unsafe_get g i))
        done);
    project_into !x_next ~dst:!x_next
  in
  (* Backtracking line search on the smooth part: accept η when
     f(x⁺) ≤ f(y) + ∇f(y)·(x⁺−y) + ‖x⁺−y‖²_D/(2η) (sufficient-decrease
     in the step's own metric), halving on failure.  The spectral
     1/lipschitz seeds the search and mild growth between iterations
     lets the step recover after a conservative stretch. *)
  let bt_step = ref step in
  let used_step = ref step in
  let quad_gap eta =
    let xna = !x_next in
    let gd = ref 0. and dd = ref 0. in
    (match dinv with
    | None ->
        for i = 0 to dim - 1 do
          let d = Array.unsafe_get xna i -. Array.unsafe_get y i in
          gd := !gd +. (Array.unsafe_get g i *. d);
          dd := !dd +. (d *. d)
        done
    | Some dv ->
        for i = 0 to dim - 1 do
          let d = Array.unsafe_get xna i -. Array.unsafe_get y i in
          gd := !gd +. (Array.unsafe_get g i *. d);
          dd := !dd +. (d *. d /. Array.unsafe_get dv i)
        done);
    !gd +. (!dd /. (2. *. eta))
  in
  if traced then
    Obs.span_begin sink label
      ~args:[ ("dim", Obs.Int dim); ("max_iter", Obs.Int max_iter) ];
  while (not !converged) && !iterations < max_iter do
    incr iterations;
    gradient_into y ~dst:g;
    (match backtrack with
    | None -> (
        (* Inlined [take_step step]: calling the closure would box the
           float argument every iteration (+2 minor words on the
           disabled path, which BENCH_solvers.json pins at 2/iter). *)
        (match dinv with
        | None -> Vec.axpy_into (-.step) g y ~dst:!x_next
        | Some dv ->
            let xna = !x_next in
            for i = 0 to dim - 1 do
              Array.unsafe_set xna i
                (Array.unsafe_get y i
                -. (step *. Array.unsafe_get dv i *. Array.unsafe_get g i))
            done);
        project_into !x_next ~dst:!x_next)
    | Some f ->
        let fy = f y in
        let slack = 1e-10 *. (abs_float fy +. 1.) in
        let accepted = ref false in
        let attempts = ref 0 in
        while not !accepted do
          incr attempts;
          take_step !bt_step;
          if
            !attempts >= 30
            || f !x_next <= fy +. quad_gap !bt_step +. slack
          then accepted := true
          else bt_step := !bt_step /. 2.
        done;
        used_step := !bt_step;
        bt_step := !bt_step *. 1.25);
    (* One fused pass computes the adaptive-restart test
       (O'Donoghue & Candès: kill the momentum when it opposes the
       direction of progress), the step length and ‖x_next‖ without
       materializing [y − x_next] or [delta = x_next − x]. *)
    let xa = !x and xna = !x_next in
    let restart_dot = ref 0. and delta_sq = ref 0. and xnext_sq = ref 0. in
    for i = 0 to dim - 1 do
      let xn = Array.unsafe_get xna i in
      let d = xn -. Array.unsafe_get xa i in
      restart_dot := !restart_dot +. ((Array.unsafe_get y i -. xn) *. d);
      delta_sq := !delta_sq +. (d *. d);
      xnext_sq := !xnext_sq +. (xn *. xn)
    done;
    let restart = !restart_dot > 0. in
    let momentum_next =
      if restart then 1.
      else (1. +. sqrt (1. +. (4. *. !momentum *. !momentum))) /. 2.
    in
    let beta = if restart then 0. else (!momentum -. 1.) /. momentum_next in
    for i = 0 to dim - 1 do
      let xn = Array.unsafe_get xna i in
      Array.unsafe_set y i
        ((beta *. (xn -. Array.unsafe_get xa i)) +. xn)
    done;
    if sqrt !delta_sq <= tol *. (1. +. sqrt !xnext_sq) then converged := true;
    if traced then
      Obs.iter sink ~solver:label ~iter:!iterations
        ~objective:
          (match objective with Some f -> f !x_next | None -> nan)
        ~residual:(sqrt !delta_sq) ~step:!used_step ~restart ();
    let tmp = !x in
    x := !x_next;
    x_next := tmp;
    momentum := momentum_next
  done;
  if traced then Obs.span_end sink label;
  { x = Vec.copy !x; iterations = !iterations; converged = !converged }

let solve ?x0 ?stop ~dim ~gradient ~lipschitz () =
  solve_into ?x0 ?stop ~dim
    ~gradient_into:(fun v ~dst -> Vec.blit_into (gradient v) ~dst)
    ~lipschitz ()

let lipschitz_of_op ?(iters = 60) ~dim apply =
  if dim = 0 then 0.
  else begin
    (* Power iteration with a deterministic, mildly irregular start so we
       do not begin orthogonal to the principal eigenvector. *)
    let v = ref (Vec.init dim (fun i -> 1. +. (0.01 *. float_of_int (i mod 7)))) in
    let lambda = ref 0. in
    let n0 = Vec.norm2 !v in
    v := Vec.scale (1. /. n0) !v;
    for _ = 1 to iters do
      let w = apply !v in
      let n = Vec.norm2 w in
      if n > 0. then begin
        lambda := n;
        v := Vec.scale (1. /. n) w
      end
    done;
    (* Small safety margin: an underestimated Lipschitz constant breaks
       the FISTA step-size guarantee. *)
    !lambda *. 1.01
  end

let lipschitz_of_gram ?iters h =
  if Mat.rows h <> Mat.cols h then
    invalid_arg "Fista.lipschitz_of_gram: matrix not square";
  lipschitz_of_op ?iters ~dim:(Mat.rows h) (fun v -> Mat.matvec h v)
