(** Shared stopping and observability policy for the iterative solvers.

    Replaces the per-solver [?max_iter ?tol] optional-argument sets:
    one record carries the iteration budget, the convergence tolerance,
    the trace sink, and an optional label that names the solve in
    per-iteration trace records (e.g. ["entropy/proxgrad"] instead of
    the bare ["proxgrad"]). *)

type t = {
  max_iter : int option;  (** [None]: the solver's own default *)
  tol : float option;  (** [None]: the solver's own default *)
  sink : Tmest_obs.Obs.sink;
      (** per-iteration records and solve spans go here; {!Tmest_obs.Obs.null}
          (the default) keeps the solver allocation-free and bit-identical *)
  label : string option;  (** overrides the solver name in trace records *)
}

(** No limits overridden, null sink, no label. *)
val default : t

val make :
  ?max_iter:int ->
  ?tol:float ->
  ?sink:Tmest_obs.Obs.sink ->
  ?label:string ->
  unit ->
  t

val with_sink : Tmest_obs.Obs.sink -> t -> t
val with_label : string -> t -> t

(** [max_iter t ~default] resolves the iteration budget. *)
val max_iter : t -> default:int -> int

(** [tol t ~default] resolves the tolerance. *)
val tol : t -> default:float -> float

(** [label t ~default] resolves the trace label. *)
val label : t -> default:string -> string
