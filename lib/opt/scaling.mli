(** Iterative proportional fitting (Kruithof's projection method) and
    Darroch–Ratcliff generalized iterative scaling.

    Both compute the minimum Kullback–Leibler-distance adjustment of a
    prior to given linear measurements (Krupp 1979): classic IPF for
    row/column totals, GIS for a general non-negative constraint matrix. *)

type report = { iterations : int; max_error : float; converged : bool }

(** [ipf ?stop prior ~row_sums ~col_sums] rescales the non-negative
    [prior] matrix so its row and column sums match the targets.
    Structural zeros of the prior stay zero.  Row and column totals must
    agree ([Σ row_sums = Σ col_sums] within tolerance) for convergence.
    [stop] ({!Stop.t}) carries the iteration budget (default 500), the
    tolerance (default 1e-9) and the trace sink; with an enabled sink
    each sweep emits a record with the worst marginal error.  Returns
    the balanced matrix and a convergence report. *)
val ipf :
  ?stop:Stop.t ->
  Tmest_linalg.Mat.t ->
  row_sums:Tmest_linalg.Vec.t ->
  col_sums:Tmest_linalg.Vec.t ->
  Tmest_linalg.Mat.t * report

(** [gis ?stop r t ~prior] finds a non-negative [s] minimizing
    [D(s ‖ prior)] subject to [r s = t], by generalized iterative scaling
    ([r] must be entry-wise non-negative, [t] positive where a constraint
    is active).  Structural zeros of the prior stay zero.  [stop]
    defaults: 2000 iterations, tolerance 1e-8. *)
val gis :
  ?stop:Stop.t ->
  Tmest_linalg.Mat.t ->
  Tmest_linalg.Vec.t ->
  prior:Tmest_linalg.Vec.t ->
  Tmest_linalg.Vec.t * report
