module Vec = Tmest_linalg.Vec
module Lambert = Tmest_stats.Lambert
module Obs = Tmest_obs.Obs

type result = { x : Vec.t; iterations : int; converged : bool }

let scratch_size = 4

let solve_into ?x0 ?(stop = Stop.default) ?scratch ?objective ~dim
    ~gradient_into ~prox_into ~lipschitz () =
  if lipschitz <= 0. then invalid_arg "Proxgrad.solve: lipschitz must be > 0";
  let max_iter = Stop.max_iter stop ~default:3000 in
  let tol = Stop.tol stop ~default:1e-9 in
  let sink = stop.Stop.sink in
  let traced = sink.Obs.enabled in
  let label = Stop.label stop ~default:"proxgrad" in
  let step = 1. /. lipschitz in
  let bufs =
    Scratch.take ~name:"Proxgrad.solve_into" ~dim ~count:scratch_size scratch
  in
  let x = ref bufs.(0) and x_next = ref bufs.(1) in
  let y = bufs.(2) and g = bufs.(3) in
  (match x0 with
  | Some v ->
      if Vec.dim v <> dim then
        invalid_arg "Proxgrad.solve: x0 dimension mismatch";
      Vec.blit_into v ~dst:!x
  | None -> Array.fill !x 0 dim 0.);
  Vec.blit_into !x ~dst:y;
  let momentum = ref 1. in
  let iterations = ref 0 in
  let converged = ref false in
  if traced then
    Obs.span_begin sink label
      ~args:[ ("dim", Obs.Int dim); ("max_iter", Obs.Int max_iter) ];
  while (not !converged) && !iterations < max_iter do
    incr iterations;
    gradient_into y ~dst:g;
    Vec.axpy_into (-.step) g y ~dst:!x_next;
    prox_into step !x_next ~dst:!x_next;
    (* Fused restart/step/norm pass; see Fista.solve_into. *)
    let xa = !x and xna = !x_next in
    let restart_dot = ref 0. and delta_sq = ref 0. and xnext_sq = ref 0. in
    for i = 0 to dim - 1 do
      let xn = Array.unsafe_get xna i in
      let d = xn -. Array.unsafe_get xa i in
      restart_dot := !restart_dot +. ((Array.unsafe_get y i -. xn) *. d);
      delta_sq := !delta_sq +. (d *. d);
      xnext_sq := !xnext_sq +. (xn *. xn)
    done;
    let restart = !restart_dot > 0. in
    let momentum_next =
      if restart then 1.
      else (1. +. sqrt (1. +. (4. *. !momentum *. !momentum))) /. 2.
    in
    let beta = if restart then 0. else (!momentum -. 1.) /. momentum_next in
    for i = 0 to dim - 1 do
      let xn = Array.unsafe_get xna i in
      Array.unsafe_set y i
        ((beta *. (xn -. Array.unsafe_get xa i)) +. xn)
    done;
    if sqrt !delta_sq <= tol *. (1. +. sqrt !xnext_sq) then converged := true;
    if traced then
      Obs.iter sink ~solver:label ~iter:!iterations
        ~objective:
          (match objective with Some f -> f !x_next | None -> nan)
        ~residual:(sqrt !delta_sq) ~step ~restart ();
    let tmp = !x in
    x := !x_next;
    x_next := tmp;
    momentum := momentum_next
  done;
  if traced then Obs.span_end sink label;
  { x = Vec.copy !x; iterations = !iterations; converged = !converged }

let solve ?x0 ?stop ~dim ~gradient ~prox ~lipschitz () =
  solve_into ?x0 ?stop ~dim
    ~gradient_into:(fun v ~dst -> Vec.blit_into (gradient v) ~dst)
    ~prox_into:(fun step v ~dst -> Vec.blit_into (prox step v) ~dst)
    ~lipschitz ()

(* Minimizer of  w·(s ln(s/p) − s + p) + (s − v)²/(2η)  over s >= 0:
   stationarity gives  c ln(s/p) + s = v  with  c = w·η, hence
   s = c · W₀((p/c)·e^(v/c)).  Computed via the log-domain W to survive
   v/c of thousands. *)
let kl_prox_into ~weight ~prior step v ~dst =
  if weight < 0. then invalid_arg "Proxgrad.kl_prox: negative weight";
  if Vec.dim dst <> Vec.dim v then
    invalid_arg "Proxgrad.kl_prox_into: destination dimension mismatch";
  if Vec.dim prior <> Vec.dim v then
    invalid_arg "Proxgrad.kl_prox_into: prior dimension mismatch";
  let c = weight *. step in
  if c = 0. then Vec.clamp_nonneg_into v ~dst
  else
    (* The Lambert evaluation is inlined from [Lambert.w0_exp] /
       [Lambert.w0] (same guesses, same iteration counts, so results are
       bit-identical), with [dst.(i)] as the unboxed Newton/Halley cell:
       a [float ref] or a cross-module float call would box on every
       element and this loop is the allocation hot path of the entropy
       solver.  [test_kernels] pins the two implementations together. *)
    for i = 0 to Vec.dim v - 1 do
      let p = prior.(i) in
      if p <= 0. then dst.(i) <- 0.
      else begin
        let l = log p -. log c +. (v.(i) /. c) in
        if l < -700. then dst.(i) <- c *. exp l
        else if l <= 1. then begin
          (* Halley on w·e^w = x, x = e^l in (0, e]. *)
          let x = exp l in
          if x = 0. then dst.(i) <- 0.
          else begin
            let guess =
              if x < 1. then x *. (1. -. x +. (1.5 *. x *. x))
              else begin
                let l1 = log x in
                let l2 = log l1 in
                if l1 > 3. then l1 -. l2 +. (l2 /. l1) else l1
              end
            in
            dst.(i) <- (if guess > -1.0 then guess else -1.0);
            for _ = 1 to 40 do
              let w = dst.(i) in
              let ew = exp w in
              let f = (w *. ew) -. x in
              if f <> 0. then begin
                let denom =
                  (ew *. (w +. 1.))
                  -. ((w +. 2.) *. f /. (2. *. (w +. 1.)))
                in
                if denom <> 0. then dst.(i) <- w -. (f /. denom)
              end
            done;
            dst.(i) <- c *. dst.(i)
          end
        end
        else begin
          (* Newton on w + ln w = l.  ([Stdlib.max] is polymorphic and
             would box both floats; [l > 1] here so no NaN concerns.) *)
          let g = l -. log l in
          dst.(i) <- (if g > 1e-8 then g else 1e-8);
          for _ = 1 to 60 do
            let w = dst.(i) in
            let f = w +. log w -. l in
            let f' = 1. +. (1. /. w) in
            let next = w -. (f /. f') in
            dst.(i) <- (if next > 0. then next else w /. 2.)
          done;
          dst.(i) <- c *. dst.(i)
        end
      end
    done

let kl_prox ~weight ~prior step v =
  if weight < 0. then invalid_arg "Proxgrad.kl_prox: negative weight";
  let dst = Vec.zeros (Vec.dim v) in
  kl_prox_into ~weight ~prior step v ~dst;
  dst

let kl_divergence s p =
  if Array.length s <> Array.length p then
    invalid_arg "Proxgrad.kl_divergence: dimension mismatch";
  let acc = ref 0. in
  (try
     Array.iteri
       (fun i si ->
         let pi = p.(i) in
         if si < 0. then invalid_arg "Proxgrad.kl_divergence: negative entry";
         if si = 0. then acc := !acc +. pi
         else if pi <= 0. then begin
           acc := infinity;
           raise Exit
         end
         else acc := !acc +. ((si *. log (si /. pi)) -. si +. pi))
       s
   with Exit -> ());
  !acc
