module Vec = Tmest_linalg.Vec
module Lambert = Tmest_stats.Lambert
module Obs = Tmest_obs.Obs

type result = { x : Vec.t; iterations : int; converged : bool }

let scratch_size = 4

let solve_into ?x0 ?(stop = Stop.default) ?scratch ?objective ?dinv ?backtrack
    ~dim ~gradient_into ~prox_into ~lipschitz () =
  if lipschitz <= 0. then invalid_arg "Proxgrad.solve: lipschitz must be > 0";
  (match dinv with
  | Some dv when Vec.dim dv <> dim ->
      invalid_arg "Proxgrad.solve: dinv dimension mismatch"
  | _ -> ());
  let max_iter = Stop.max_iter stop ~default:3000 in
  let tol = Stop.tol stop ~default:1e-9 in
  let sink = stop.Stop.sink in
  let traced = sink.Obs.enabled in
  let label = Stop.label stop ~default:"proxgrad" in
  let step = 1. /. lipschitz in
  let bufs =
    Scratch.take ~name:"Proxgrad.solve_into" ~dim ~count:scratch_size scratch
  in
  let x = ref bufs.(0) and x_next = ref bufs.(1) in
  let y = bufs.(2) and g = bufs.(3) in
  (match x0 with
  | Some v ->
      if Vec.dim v <> dim then
        invalid_arg "Proxgrad.solve: x0 dimension mismatch";
      Vec.blit_into v ~dst:!x
  | None -> Array.fill !x 0 dim 0.);
  Vec.blit_into !x ~dst:y;
  let momentum = ref 1. in
  let iterations = ref 0 in
  let converged = ref false in
  (* Preconditioned forward step x⁺ = prox_η(y − η·D⁻¹∇f(y)); the prox
     callback sees the same η and is expected to apply the matching
     metric (e.g. {!kl_prox_scaled_into} with the same [dinv]).  Without
     [dinv] this is the historical axpy, bit for bit. *)
  let take_step eta =
    (match dinv with
    | None -> Vec.axpy_into (-.eta) g y ~dst:!x_next
    | Some dv ->
        let xna = !x_next in
        for i = 0 to dim - 1 do
          Array.unsafe_set xna i
            (Array.unsafe_get y i
            -. (eta *. Array.unsafe_get dv i *. Array.unsafe_get g i))
        done);
    prox_into eta !x_next ~dst:!x_next
  in
  (* Backtracking line search on the smooth part (see Fista.solve_into):
     seed from the spectral estimate, halve on failure, mild growth
     between iterations. *)
  let bt_step = ref step in
  let used_step = ref step in
  let quad_gap eta =
    let xna = !x_next in
    let gd = ref 0. and dd = ref 0. in
    (match dinv with
    | None ->
        for i = 0 to dim - 1 do
          let d = Array.unsafe_get xna i -. Array.unsafe_get y i in
          gd := !gd +. (Array.unsafe_get g i *. d);
          dd := !dd +. (d *. d)
        done
    | Some dv ->
        for i = 0 to dim - 1 do
          let d = Array.unsafe_get xna i -. Array.unsafe_get y i in
          gd := !gd +. (Array.unsafe_get g i *. d);
          dd := !dd +. (d *. d /. Array.unsafe_get dv i)
        done);
    !gd +. (!dd /. (2. *. eta))
  in
  if traced then
    Obs.span_begin sink label
      ~args:[ ("dim", Obs.Int dim); ("max_iter", Obs.Int max_iter) ];
  while (not !converged) && !iterations < max_iter do
    incr iterations;
    gradient_into y ~dst:g;
    (match backtrack with
    | None -> take_step step
    | Some f ->
        let fy = f y in
        let slack = 1e-10 *. (abs_float fy +. 1.) in
        let accepted = ref false in
        let attempts = ref 0 in
        while not !accepted do
          incr attempts;
          take_step !bt_step;
          if
            !attempts >= 30
            || f !x_next <= fy +. quad_gap !bt_step +. slack
          then accepted := true
          else bt_step := !bt_step /. 2.
        done;
        used_step := !bt_step;
        bt_step := !bt_step *. 1.25);
    (* Fused restart/step/norm pass; see Fista.solve_into. *)
    let xa = !x and xna = !x_next in
    let restart_dot = ref 0. and delta_sq = ref 0. and xnext_sq = ref 0. in
    for i = 0 to dim - 1 do
      let xn = Array.unsafe_get xna i in
      let d = xn -. Array.unsafe_get xa i in
      restart_dot := !restart_dot +. ((Array.unsafe_get y i -. xn) *. d);
      delta_sq := !delta_sq +. (d *. d);
      xnext_sq := !xnext_sq +. (xn *. xn)
    done;
    let restart = !restart_dot > 0. in
    let momentum_next =
      if restart then 1.
      else (1. +. sqrt (1. +. (4. *. !momentum *. !momentum))) /. 2.
    in
    let beta = if restart then 0. else (!momentum -. 1.) /. momentum_next in
    for i = 0 to dim - 1 do
      let xn = Array.unsafe_get xna i in
      Array.unsafe_set y i
        ((beta *. (xn -. Array.unsafe_get xa i)) +. xn)
    done;
    if sqrt !delta_sq <= tol *. (1. +. sqrt !xnext_sq) then converged := true;
    if traced then
      Obs.iter sink ~solver:label ~iter:!iterations
        ~objective:
          (match objective with Some f -> f !x_next | None -> nan)
        ~residual:(sqrt !delta_sq) ~step:!used_step ~restart ();
    let tmp = !x in
    x := !x_next;
    x_next := tmp;
    momentum := momentum_next
  done;
  if traced then Obs.span_end sink label;
  { x = Vec.copy !x; iterations = !iterations; converged = !converged }

let solve ?x0 ?stop ~dim ~gradient ~prox ~lipschitz () =
  solve_into ?x0 ?stop ~dim
    ~gradient_into:(fun v ~dst -> Vec.blit_into (gradient v) ~dst)
    ~prox_into:(fun step v ~dst -> Vec.blit_into (prox step v) ~dst)
    ~lipschitz ()

(* Minimizer of  w·(s ln(s/p) − s + p) + (s − v)²/(2η)  over s >= 0:
   stationarity gives  c ln(s/p) + s = v  with  c = w·η, hence
   s = c · W₀((p/c)·e^(v/c)).  Computed via the log-domain W to survive
   v/c of thousands. *)
let kl_prox_into ~weight ~prior step v ~dst =
  if weight < 0. then invalid_arg "Proxgrad.kl_prox: negative weight";
  if Vec.dim dst <> Vec.dim v then
    invalid_arg "Proxgrad.kl_prox_into: destination dimension mismatch";
  if Vec.dim prior <> Vec.dim v then
    invalid_arg "Proxgrad.kl_prox_into: prior dimension mismatch";
  let c = weight *. step in
  if c = 0. then Vec.clamp_nonneg_into v ~dst
  else
    (* The Lambert evaluation is inlined from [Lambert.w0_exp] /
       [Lambert.w0] (same guesses, same iteration counts, so results are
       bit-identical), with [dst.(i)] as the unboxed Newton/Halley cell:
       a [float ref] or a cross-module float call would box on every
       element and this loop is the allocation hot path of the entropy
       solver.  [test_kernels] pins the two implementations together. *)
    for i = 0 to Vec.dim v - 1 do
      let p = prior.(i) in
      if p <= 0. then dst.(i) <- 0.
      else begin
        let l = log p -. log c +. (v.(i) /. c) in
        if l < -700. then dst.(i) <- c *. exp l
        else if l <= 1. then begin
          (* Halley on w·e^w = x, x = e^l in (0, e]. *)
          let x = exp l in
          if x = 0. then dst.(i) <- 0.
          else begin
            let guess =
              if x < 1. then x *. (1. -. x +. (1.5 *. x *. x))
              else begin
                let l1 = log x in
                let l2 = log l1 in
                if l1 > 3. then l1 -. l2 +. (l2 /. l1) else l1
              end
            in
            dst.(i) <- (if guess > -1.0 then guess else -1.0);
            (* Fixed-point early exit (see [Lambert.w0]): once an
               update leaves the cell unchanged every remaining pass
               would too, so breaking is bit-identical to the fixed
               40-iteration loop.  Halley converges cubically, so this
               turns ~40 exp/log evaluations into ~5 — the difference
               between the prox dominating the entropy solve and it
               costing about as much as the matvecs. *)
            let it = ref 0 and live = ref true in
            while !live && !it < 40 do
              incr it;
              let w = dst.(i) in
              let ew = exp w in
              let f = (w *. ew) -. x in
              if f = 0. then live := false
              else begin
                let denom =
                  (ew *. (w +. 1.))
                  -. ((w +. 2.) *. f /. (2. *. (w +. 1.)))
                in
                if denom = 0. then live := false
                else begin
                  let next = w -. (f /. denom) in
                  if next = w then live := false else dst.(i) <- next
                end
              end
            done;
            dst.(i) <- c *. dst.(i)
          end
        end
        else begin
          (* Newton on w + ln w = l.  ([Stdlib.max] is polymorphic and
             would box both floats; [l > 1] here so no NaN concerns.) *)
          let g = l -. log l in
          dst.(i) <- (if g > 1e-8 then g else 1e-8);
          (* Same fixed-point early exit as the Halley branch. *)
          let it = ref 0 and live = ref true in
          while !live && !it < 60 do
            incr it;
            let w = dst.(i) in
            let f = w +. log w -. l in
            let f' = 1. +. (1. /. w) in
            let next = w -. (f /. f') in
            let next = if next > 0. then next else w /. 2. in
            if next = w then live := false else dst.(i) <- next
          done;
          dst.(i) <- c *. dst.(i)
        end
      end
    done

let kl_prox ~weight ~prior step v =
  if weight < 0. then invalid_arg "Proxgrad.kl_prox: negative weight";
  let dst = Vec.zeros (Vec.dim v) in
  kl_prox_into ~weight ~prior step v ~dst;
  dst

(* KL prox in the diagonal metric ‖u−v‖²_D/(2η) with D = diag(1/dinv):
   the problem stays separable and coordinate i sees the effective step
   η·dinv_i, so this is {!kl_prox_into} with a per-coordinate
   c_i = weight·step·dinv_i.  The loop bodies are duplicated rather
   than shared through a closure for the same unboxing reason. *)
let kl_prox_scaled_into ~weight ~prior ~dinv step v ~dst =
  if weight < 0. then invalid_arg "Proxgrad.kl_prox_scaled: negative weight";
  if Vec.dim dst <> Vec.dim v then
    invalid_arg "Proxgrad.kl_prox_scaled_into: destination dimension mismatch";
  if Vec.dim prior <> Vec.dim v then
    invalid_arg "Proxgrad.kl_prox_scaled_into: prior dimension mismatch";
  if Vec.dim dinv <> Vec.dim v then
    invalid_arg "Proxgrad.kl_prox_scaled_into: dinv dimension mismatch";
  if weight = 0. || step = 0. then Vec.clamp_nonneg_into v ~dst
  else
    for i = 0 to Vec.dim v - 1 do
      let p = prior.(i) in
      let c = weight *. step *. dinv.(i) in
      if p <= 0. then dst.(i) <- 0.
      else if c <= 0. then
        dst.(i) <- (if v.(i) > 0. then v.(i) else 0.)
      else begin
        let l = log p -. log c +. (v.(i) /. c) in
        if l < -700. then dst.(i) <- c *. exp l
        else if l <= 1. then begin
          let x = exp l in
          if x = 0. then dst.(i) <- 0.
          else begin
            let guess =
              if x < 1. then x *. (1. -. x +. (1.5 *. x *. x))
              else begin
                let l1 = log x in
                let l2 = log l1 in
                if l1 > 3. then l1 -. l2 +. (l2 /. l1) else l1
              end
            in
            dst.(i) <- (if guess > -1.0 then guess else -1.0);
            let it = ref 0 and live = ref true in
            while !live && !it < 40 do
              incr it;
              let w = dst.(i) in
              let ew = exp w in
              let f = (w *. ew) -. x in
              if f = 0. then live := false
              else begin
                let denom =
                  (ew *. (w +. 1.))
                  -. ((w +. 2.) *. f /. (2. *. (w +. 1.)))
                in
                if denom = 0. then live := false
                else begin
                  let next = w -. (f /. denom) in
                  if next = w then live := false else dst.(i) <- next
                end
              end
            done;
            dst.(i) <- c *. dst.(i)
          end
        end
        else begin
          let g = l -. log l in
          dst.(i) <- (if g > 1e-8 then g else 1e-8);
          let it = ref 0 and live = ref true in
          while !live && !it < 60 do
            incr it;
            let w = dst.(i) in
            let f = w +. log w -. l in
            let f' = 1. +. (1. /. w) in
            let next = w -. (f /. f') in
            let next = if next > 0. then next else w /. 2. in
            if next = w then live := false else dst.(i) <- next
          done;
          dst.(i) <- c *. dst.(i)
        end
      end
    done

let kl_divergence s p =
  if Array.length s <> Array.length p then
    invalid_arg "Proxgrad.kl_divergence: dimension mismatch";
  let acc = ref 0. in
  (try
     Array.iteri
       (fun i si ->
         let pi = p.(i) in
         if si < 0. then invalid_arg "Proxgrad.kl_divergence: negative entry";
         if si = 0. then acc := !acc +. pi
         else if pi <= 0. then begin
           acc := infinity;
           raise Exit
         end
         else acc := !acc +. ((si *. log (si /. pi)) -. si +. pi))
       s
   with Exit -> ());
  !acc
