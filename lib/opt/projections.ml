module Vec = Tmest_linalg.Vec

(* Threshold tau with sum(max(v_i - tau, 0)) = total over the given
   coordinates, found by one pass over the sorted values.  [sorted] is
   caller-provided storage of the block's size so repeated projections
   (FISTA iterations) do not allocate. *)
let threshold_into total (v : float array) (idx : int array)
    (sorted : float array) =
  let n = Array.length idx in
  if n = 0 then invalid_arg "Projections: empty block";
  for j = 0 to n - 1 do
    sorted.(j) <- v.(idx.(j))
  done;
  Array.sort (fun a b -> compare b a) sorted;
  let tau = ref ((sorted.(0) -. total) /. 1.) in
  let cum = ref 0. in
  (try
     for j = 0 to n - 1 do
       cum := !cum +. sorted.(j);
       let candidate = (!cum -. total) /. float_of_int (j + 1) in
       if j + 1 >= n || sorted.(j + 1) <= candidate then begin
         tau := candidate;
         raise Exit
       end
     done
   with Exit -> ());
  !tau

let threshold total v idx =
  threshold_into total v idx (Array.make (Array.length idx) 0.)

let simplex ?(total = 1.) v =
  if total <= 0. then invalid_arg "Projections.simplex: total must be > 0";
  if Array.length v = 0 then invalid_arg "Projections.simplex: empty vector";
  let idx = Array.init (Array.length v) (fun i -> i) in
  let tau = threshold total v idx in
  Array.map (fun x -> Stdlib.max 0. (x -. tau)) v

type partition = {
  dim : int;
  members : int array array;
  sort_bufs : float array array;
}

let block_partition ~block =
  let nblocks =
    Array.fold_left
      (fun acc b ->
        if b < 0 then
          invalid_arg "Projections.block_partition: negative block id";
        Stdlib.max acc (b + 1))
      0 block
  in
  let counts = Array.make nblocks 0 in
  Array.iter (fun b -> counts.(b) <- counts.(b) + 1) block;
  let members = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make nblocks 0 in
  Array.iteri
    (fun i b ->
      members.(b).(fill.(b)) <- i;
      fill.(b) <- fill.(b) + 1)
    block;
  {
    dim = Array.length block;
    members;
    sort_bufs = Array.map (fun idx -> Array.make (Array.length idx) 0.) members;
  }

let block_simplex_into part v ~dst =
  if Array.length v <> part.dim then
    invalid_arg "Projections.block_simplex_into: dimension mismatch";
  if Array.length dst <> part.dim then
    invalid_arg "Projections.block_simplex_into: destination dimension mismatch";
  Array.iteri
    (fun b idx ->
      if Array.length idx > 0 then begin
        let tau = threshold_into 1. v idx part.sort_bufs.(b) in
        Array.iter (fun i -> dst.(i) <- Stdlib.max 0. (v.(i) -. tau)) idx
      end)
    part.members

let block_simplex ~block v =
  if Array.length block <> Array.length v then
    invalid_arg "Projections.block_simplex: dimension mismatch";
  let part = block_partition ~block in
  let dst = Array.make (Array.length v) 0. in
  block_simplex_into part v ~dst;
  dst
