(** Non-negative least squares: Lawson–Hanson active-set algorithm.

    Solves {v min ‖A x − b‖₂  subject to  x >= 0 v} exactly (up to
    tolerance), by growing a passive set of strictly positive variables
    and solving unconstrained least squares on it. *)

type result = {
  x : Tmest_linalg.Vec.t;
  residual_norm : float;  (** ‖A x − b‖₂ at the solution *)
  iterations : int;
}

(** [solve ?stop a b] solves the NNLS problem.  [stop] ({!Stop.t})
    carries the dual-feasibility tolerance (default scales with the
    problem), the outer-iteration budget (default [3 * cols]) and the
    trace sink; with an enabled sink each outer iteration emits a record
    with the current residual norm. *)
val solve :
  ?stop:Stop.t ->
  Tmest_linalg.Mat.t ->
  Tmest_linalg.Vec.t ->
  result
