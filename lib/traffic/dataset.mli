(** Evaluation datasets: topology + CSPF routing + measured demands.

    Mirrors the paper's evaluation data set (Section 5.1.4): the demands
    are the ground-truth traffic matrix time series, the routing matrix
    comes from a simulated CSPF over the generated topology, and link
    loads are *derived* as [t = R s], so routing, demands and loads are
    consistent by construction. *)

type t = {
  spec : Spec.t;
  topo : Tmest_net.Topology.t;
  routing : Tmest_net.Routing.t;
  truth : Demand_gen.ground_truth;
}

(** [generate spec] builds topology, demands and the CSPF LSP-mesh
    routing (LSP bandwidth values are the busy-period mean demands, as
    an operator would size them). *)
val generate : Spec.t -> t

(** [europe ()] and [america ()] are the paper-scale datasets.
    [?seed] overrides the spec's seed (for sensitivity runs). *)
val europe : ?seed:int -> unit -> t

val america : ?seed:int -> unit -> t

(** [synthetic ~pops ()] is a [pops]-PoP hierarchical backbone
    ({!Tmest_net.Topology.generate_hierarchical}) with gravity-consistent
    demands over a short measurement day (64 samples), routed on plain
    IGP shortest paths.  Sized for the sparse-mode scaling studies
    (100–500 PoPs); above the workspace sparse gate the solvers run
    matrix-free on it.  [?seed] defaults to a fixed study seed. *)
val synthetic : ?seed:int -> pops:int -> unit -> t

val num_nodes : t -> int
val num_pairs : t -> int
val num_links : t -> int
val num_samples : t -> int

(** [demand_at t k] is the demand vector of sample [k] (bits/s). *)
val demand_at : t -> int -> Tmest_linalg.Vec.t

(** [link_loads_at t k] is [R s[k]]. *)
val link_loads_at : t -> int -> Tmest_linalg.Vec.t

(** [busy_samples t] is the list of sample indices of the evaluation
    busy period. *)
val busy_samples : t -> int list

(** [busy_mean_demand t] is the mean demand vector over the busy
    period — the reference value of the time-series evaluations. *)
val busy_mean_demand : t -> Tmest_linalg.Vec.t

(** [total_series t] is the total network traffic per sample. *)
val total_series : t -> float array

(** [node_ingress_totals t k] is [te(n)] per node at sample [k]
    (equals the row sums of the TM); [node_egress_totals] gives
    [tx(m)]. *)
val node_ingress_totals : t -> int -> Tmest_linalg.Vec.t

val node_egress_totals : t -> int -> Tmest_linalg.Vec.t

(** [fanouts_at t k] is the fanout vector [alpha] at sample [k]:
    [alpha.(p) = s.(p) / te(src p)] (0 when the node total is 0). *)
val fanouts_at : t -> int -> Tmest_linalg.Vec.t

(** [demand_series t p] is demand [p]'s time series. *)
val demand_series : t -> int -> float array

(** [poisson_series t ~unit_bps ~samples ~seed] generates the synthetic
    Poisson traffic-matrix series of Section 5.3.4 / Fig. 12: each
    element is an independent Poisson draw with the busy-period mean
    intensity, in quanta of [unit_bps]. *)
val poisson_series :
  t -> unit_bps:float -> samples:int -> seed:int -> Tmest_linalg.Mat.t
