module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Rng = Tmest_stats.Rng
module Dist = Tmest_stats.Dist
module Topology = Tmest_net.Topology
module Routing = Tmest_net.Routing
module Odpairs = Tmest_net.Odpairs

type t = {
  spec : Spec.t;
  topo : Topology.t;
  routing : Routing.t;
  truth : Demand_gen.ground_truth;
}

let busy_samples_of_spec (spec : Spec.t) =
  List.init spec.Spec.busy_len (fun i -> spec.Spec.busy_start + i)

(* Keep the busy window inside the sample range when a spec shortens the
   measurement period (small test datasets). *)
let clamp_busy (spec : Spec.t) =
  let busy_len = Stdlib.min spec.Spec.busy_len spec.Spec.samples in
  let busy_start =
    Stdlib.max 0 (Stdlib.min spec.Spec.busy_start (spec.Spec.samples - busy_len))
  in
  { spec with Spec.busy_start; busy_len }

let generate spec =
  let spec = clamp_busy spec in
  let topo =
    Topology.generate ~name:spec.Spec.name ~seed:spec.Spec.seed
      ~nodes:spec.Spec.nodes ~directed_links:spec.Spec.directed_links
      spec.Spec.cities
  in
  let truth = Demand_gen.generate spec topo in
  (* LSP bandwidth values: busy-period mean demand per pair, the figure
     an operator would configure from measurements. *)
  let p = Odpairs.count spec.Spec.nodes in
  let busy = busy_samples_of_spec spec in
  let bandwidths = Vec.zeros p in
  List.iter
    (fun k ->
      for pair = 0 to p - 1 do
        bandwidths.(pair) <-
          bandwidths.(pair) +. Mat.get truth.Demand_gen.demands k pair
      done)
    busy;
  let scale = 1. /. float_of_int (List.length busy) in
  let bandwidths = Vec.scale scale bandwidths in
  let routing = Routing.cspf_mesh topo ~bandwidths in
  { spec; topo; routing; truth }

(* A [pops]-PoP hierarchical backbone with gravity-consistent demands
   for the sparse-mode scaling studies.  The topology comes first so the
   spec records the actual link count; routing is plain IGP shortest
   path — a CSPF mesh over hundreds of thousands of pairs would dominate
   the whole study without changing what the solvers see. *)
let synthetic ?(seed = 20260808) ~pops () =
  let name = Printf.sprintf "synthetic%d" pops in
  let topo = Topology.generate_hierarchical ~name ~seed ~pops () in
  let spec =
    clamp_busy
      {
        Spec.name;
        seed;
        nodes = pops;
        directed_links = Topology.num_links topo;
        cities = [||];
        diurnal = Diurnal.america;
        zipf_alpha = 1.5;
        locality = 0.1;
        dominant_per_node = 2;
        phi = 0.004;
        c = 1.5;
        fanout_drift = 0.05;
        small_fanout_noise = 0.4;
        peak_total_bps = float_of_int pops *. 4e9;
        samples = 64;
        busy_start = 40;
        busy_len = 16;
      }
  in
  let truth = Demand_gen.generate spec topo in
  let routing = Routing.shortest_path topo in
  { spec; topo; routing; truth }

let europe ?seed () =
  let spec = Spec.europe in
  let spec = match seed with None -> spec | Some s -> { spec with Spec.seed = s } in
  generate spec

let america ?seed () =
  let spec = Spec.america in
  let spec = match seed with None -> spec | Some s -> { spec with Spec.seed = s } in
  generate spec

let num_nodes t = Topology.num_nodes t.topo
let num_pairs t = Routing.num_pairs t.routing
let num_links t = Routing.num_links t.routing
let num_samples t = Mat.rows t.truth.Demand_gen.demands

let demand_at t k = Mat.row t.truth.Demand_gen.demands k
let link_loads_at t k = Routing.link_loads t.routing (demand_at t k)
let busy_samples t = busy_samples_of_spec t.spec

let busy_mean_demand t =
  let busy = busy_samples t in
  let p = num_pairs t in
  let acc = Vec.zeros p in
  List.iter (fun k -> Vec.axpy_into 1. (demand_at t k) acc ~dst:acc) busy;
  Vec.scale (1. /. float_of_int (List.length busy)) acc

let total_series t =
  Array.init (num_samples t) (fun k -> Vec.sum (demand_at t k))

let node_ingress_totals t k =
  let n = num_nodes t in
  let s = demand_at t k in
  let te = Vec.zeros n in
  Odpairs.iter ~nodes:n (fun p src _dst -> te.(src) <- te.(src) +. s.(p));
  te

let node_egress_totals t k =
  let n = num_nodes t in
  let s = demand_at t k in
  let tx = Vec.zeros n in
  Odpairs.iter ~nodes:n (fun p _src dst -> tx.(dst) <- tx.(dst) +. s.(p));
  tx

let fanouts_at t k =
  let n = num_nodes t in
  let s = demand_at t k in
  let te = node_ingress_totals t k in
  Vec.mapi
    (fun p sp ->
      let src = Odpairs.source ~nodes:n p in
      if te.(src) <= 0. then 0. else sp /. te.(src))
    s

let demand_series t p =
  Array.init (num_samples t) (fun k -> Mat.get t.truth.Demand_gen.demands k p)

let poisson_series t ~unit_bps ~samples ~seed =
  if unit_bps <= 0. then invalid_arg "Dataset.poisson_series: unit_bps <= 0";
  let p = num_pairs t in
  let lambdas = Vec.scale (1. /. unit_bps) (busy_mean_demand t) in
  (* One indexed generator per sample: row [k] depends on (seed, k)
     only, so a subset of rows — or rows drawn concurrently — matches
     the full sequential series bit for bit. *)
  Mat.of_rows
    (Array.init samples (fun k ->
         let rng = Rng.of_pair seed k in
         Array.init p (fun pair ->
             unit_bps *. float_of_int (Dist.poisson rng ~lambda:lambdas.(pair)))))
