(* trace_check: validate a tmest trace file against the
   "tmest-trace-1" schema.

   Usage: trace_check FILE [FILE ...]

   Each file is parsed with Tmest_obs.Validate (dispatching on the
   .jsonl suffix, like Recorder.write_file) and checked for per-record
   shape, globally monotone timestamps and properly nested span pairs.
   Prints one summary line per valid file; exits 1 on the first
   malformed one.  CI runs this over the traced smoke run. *)

let check path =
  match Tmest_obs.Validate.file path with
  | Ok summary ->
      Format.printf "%s: ok — %a@." path Tmest_obs.Validate.pp_summary summary;
      true
  | Error msg ->
      Printf.eprintf "%s: INVALID — %s\n" path msg;
      false
  | exception Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      false

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: trace_check FILE [FILE ...]";
    exit 2
  end;
  exit (if List.for_all check files then 0 else 1)
