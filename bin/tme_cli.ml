(* tme: command-line driver for the traffic-matrix estimation library.

   Subcommands:
     tme info                       - describe the synthetic datasets
     tme estimate -n europe -m ...  - run one estimator, print accuracy
     tme experiment fig13           - run one experiment report
     tme csv fig13 -o out.csv       - dump an experiment's data as CSV
     tme snmp-demo                  - run the SNMP collection pipeline *)

open Cmdliner
module Dataset = Tmest_traffic.Dataset
module Spec = Tmest_traffic.Spec
module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Core = Tmest_core
module Inject = Tmest_faults.Inject
module Pool = Tmest_parallel.Pool
module Obs = Tmest_obs.Obs
module Recorder = Tmest_obs.Recorder

let dataset_of_name ?seed = function
  | "europe" -> Dataset.europe ?seed ()
  | "america" -> Dataset.america ?seed ()
  | s ->
      Printf.eprintf "unknown network %S (expected europe or america)\n" s;
      exit 2

(* [--pops N] trumps [--network]: a synthetic hierarchical backbone of
   the requested size (sparse solver core above the workspace gate). *)
let dataset_of ?pops ?seed name =
  match pops with
  | Some p when p >= 3 -> Dataset.synthetic ?seed ~pops:p ()
  | Some p ->
      Printf.eprintf "--pops %d: need at least 3 PoPs\n" p;
      exit 2
  | None -> dataset_of_name ?seed name

(* --------------------------------------------------- shared flag table *)

(* One specification per flag, shared by every subcommand that takes it.
   estimate, experiment, faults and daemon compose their terms from this
   table, so a flag spelled the same way means the same thing everywhere
   it appears: same names, same documentation, same default. *)
module Flags = struct
  let network =
    let doc =
      "Synthetic network to use: europe (12 PoPs) or america (25 PoPs)."
    in
    Arg.(value & opt string "europe" & info [ "n"; "network" ] ~docv:"NET" ~doc)

  let pops =
    let doc =
      "Replace the named network by a generated hierarchical backbone \
       with $(docv) PoPs (dual-homed leaves on a hub ring).  Above the \
       workspace sparse gate the solvers run matrix-free."
    in
    Arg.(value & opt (some int) None & info [ "pops" ] ~docv:"N" ~doc)

  let seed =
    let doc = "Override the dataset generator seed (synthetic or named)." in
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

  let jobs =
    let doc =
      "Domain-pool size for parallel window scans, matvecs and experiment \
       sweeps (default: $(b,TMEST_JOBS) if set to a positive integer, else \
       the recommended domain count)."
    in
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

  let trace =
    let doc =
      "Record an execution trace to $(docv): spans for solves, windows \
       and cache fills, counters for workspace caches, and one record \
       per solver iteration.  A $(b,.jsonl) suffix selects the \
       line-oriented encoding; anything else gets Chrome trace-viewer \
       JSON (load in about://tracing or ui.perfetto.dev)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

  let fast =
    let doc = "Use reduced datasets (fast, for smoke runs)." in
    Arg.(value & flag & info [ "fast" ] ~doc)

  let fault_seed =
    let doc = "Seed for the deterministic fault-injection streams." in
    Arg.(value & opt int 7 & info [ "fault-seed" ] ~docv:"SEED" ~doc)

  let precond =
    let doc =
      "Preconditioning policy for the iterative solvers: $(b,auto) \
       (Jacobi in sparse mode, none in dense), $(b,jacobi), $(b,block) \
       or $(b,none)."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("auto", Core.Workspace.Precond_auto);
               ("jacobi", Core.Workspace.Precond_jacobi);
               ("block", Core.Workspace.Precond_block);
               ("none", Core.Workspace.Precond_none);
             ])
          Core.Workspace.Precond_auto
      & info [ "precond" ] ~docv:"KIND" ~doc)

  let window ~default =
    let doc = "Window length for time-series methods." in
    Arg.(value & opt int default & info [ "w"; "window" ] ~doc)

  let method_ =
    (* Capability flags come from the shared predicate, so the listing
       can never drift from what a sparse-mode workspace accepts. *)
    let doc =
      Printf.sprintf "Estimation method: %s."
        (String.concat ", "
           (List.map
              (fun name ->
                if Core.Estimator.supports_sparse (Core.Estimator.of_name name)
                then name
                else name ^ " (dense-only)")
              (Core.Estimator.all_names ())))
    in
    Arg.(value & opt string "entropy" & info [ "m"; "method" ] ~docv:"METHOD" ~doc)
end

(* Resize the shared default pool before any workspace or context is
   built; every later [Pool.default ()] then returns the resized pool. *)
let apply_jobs jobs = Option.iter Pool.set_default_jobs jobs

(* Run [f] against a trace sink: the null sink without [--trace], else
   a recorder whose contents are written to [path] on the way out
   (also on failure, so aborted runs keep their partial trace). *)
let with_trace ?(meta = []) trace f =
  match trace with
  | None -> f Obs.null
  | Some path ->
      (* Spans should measure wall-clock, not CPU seconds. *)
      Obs.Clock.set_source Unix.gettimeofday;
      let r = Recorder.create ~meta () in
      let finish () =
        Recorder.write_file r path;
        Printf.eprintf "trace: %d events -> %s\n%!" (Recorder.length r) path
      in
      let code =
        try f (Recorder.sink r)
        with e ->
          finish ();
          raise e
      in
      finish ();
      code

(* -------------------------------------------------------------- info *)

let info_cmd =
  let run () =
    List.iter
      (fun name ->
        let d = dataset_of_name name in
        let spec = d.Dataset.spec in
        Printf.printf
          "%-8s %2d PoPs  %3d links (%d interior)  %3d OD pairs  %d \
           samples  busy %d..%d\n"
          name (Dataset.num_nodes d) (Dataset.num_links d)
          (Tmest_net.Topology.num_interior_links d.Dataset.topo)
          (Dataset.num_pairs d) (Dataset.num_samples d)
          spec.Spec.busy_start
          (spec.Spec.busy_start + spec.Spec.busy_len - 1);
        let mean = Dataset.busy_mean_demand d in
        Printf.printf
          "         peak total %.1f Gbps, largest busy-hour demand %.0f \
           Mbps, top-20%% share %.0f%%\n"
          (spec.Spec.peak_total_bps /. 1e9)
          (Vec.max mean /. 1e6)
          (100. *. Tmest_stats.Desc.top_share ~fraction:0.2 mean))
      [ "europe"; "america" ];
    0
  in
  let doc = "Describe the synthetic evaluation datasets." in
  Cmd.v (Cmd.info "info" ~doc) Term.(const run $ const ())

(* ---------------------------------------------------------- estimate *)

(* Fault-injection flags shared by `estimate' and `faults'. *)
let noise_arg =
  let doc =
    "Relative std of multiplicative Gaussian measurement noise applied \
     to every link load before estimation."
  in
  Arg.(value & opt float 0. & info [ "noise" ] ~docv:"SIGMA" ~doc)

let drop_links_arg =
  let doc = "Per-link probability of a lost (missing) load measurement." in
  Arg.(value & opt float 0. & info [ "drop-links" ] ~docv:"PROB" ~doc)

let spec_of ~seed ~noise ~drop ~wrap ~reset =
  match
    Inject.make ~seed
      ~noise:(if noise > 0. then Inject.Gaussian noise else Inject.No_noise)
      ~drop_prob:drop ~wrap_prob:wrap ~reset_prob:reset ()
  with
  | spec -> spec
  | exception Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      exit 2

let estimate_cmd =
  let sigma2_arg =
    let doc = "Regularization parameter for entropy/bayes." in
    Arg.(value & opt float 1000. & info [ "sigma2" ] ~doc)
  in
  let top_arg =
    let doc = "Print the TOP largest demands with their estimates." in
    Arg.(value & opt int 10 & info [ "top" ] ~doc)
  in
  let run network pops seed method_name sigma2 window top precond noise drop
      fault_seed jobs trace =
    apply_jobs jobs;
    let d = dataset_of ?pops ?seed network in
    let spec = d.Dataset.spec in
    let network = spec.Spec.name in
    let k = spec.Spec.busy_start + (spec.Spec.busy_len / 2) in
    let truth = Dataset.demand_at d k in
    let loads = Dataset.link_loads_at d k in
    let ks = Array.of_list (Dataset.busy_samples d) in
    let w = Stdlib.min (Stdlib.max window 2) (Array.length ks) in
    let ks = Array.sub ks (Array.length ks - w) w in
    let load_samples =
      Mat.init w (Dataset.num_links d) (fun i j ->
          (Dataset.link_loads_at d ks.(i)).(j))
    in
    let m =
      match Core.Estimator.of_name method_name with
      | Core.Estimator.Entropy { prior; _ } ->
          Core.Estimator.Entropy { sigma2; prior }
      | Core.Estimator.Bayes { prior; _ } ->
          Core.Estimator.Bayes { sigma2; prior }
      | Core.Estimator.Fanout _ -> Core.Estimator.Fanout { window = w }
      | other -> other
      | exception Invalid_argument msg ->
          Printf.eprintf "%s\n" msg;
          exit 2
    in
    with_trace trace
      ~meta:
        [
          ("command", "estimate");
          ("network", network);
          ("method", Core.Estimator.name m);
        ]
    @@ fun sink ->
    let ws =
      Core.Workspace.create ~pool:(Pool.default ()) ~sink d.Dataset.routing
    in
    let fault = spec_of ~seed:fault_seed ~noise ~drop ~wrap:0. ~reset:0. in
    let loads = Inject.loads fault ~loads in
    let load_samples = Inject.samples fault load_samples in
    let opts =
      if Inject.is_none fault then Core.Estimator.Options.make ~precond ()
      else
        Core.Estimator.Options.make ~precond
          ~degrade:
            (Core.Degrade.with_on_health
               (fun h ->
                 Format.printf "degraded : %a@." Core.Degrade.pp_health h)
               Core.Degrade.default)
          ()
    in
    if not (Inject.is_none fault) then
      Printf.printf "faults   : %s\n" (Inject.description fault);
    let estimate =
      (* Dense-only methods (wcb) refuse sparse-mode workspaces; turn
         the refusal into a CLI error instead of an uncaught exception. *)
      try Core.Estimator.solve ~opts m ws ~loads ~load_samples
      with Invalid_argument msg when Core.Workspace.is_sparse ws ->
        Printf.eprintf "%s\n" msg;
        exit 2
    in
    let reference =
      if Core.Estimator.uses_time_series m then Dataset.busy_mean_demand d
      else truth
    in
    Printf.printf "method   : %s on %s\n" (Core.Estimator.name m) network;
    Printf.printf "mode     : %s (%d OD pairs, gate %d)\n"
      (if Core.Workspace.is_sparse ws then "sparse" else "dense")
      (Dataset.num_pairs d) Core.Workspace.sparse_gate;
    (* Silent in the default build: the checked-kernel run is the debug
       configuration (TMEST_CHECKED_KERNELS=1) and must be bit-identical
       anyway, but the record keeps a traced/benchmarked run honest. *)
    if Tmest_linalg.Kernel.checked then
      Printf.printf "kernels  : bounds-checked (TMEST_CHECKED_KERNELS)\n";
    let st = Core.Workspace.stats ws in
    Printf.printf "alloc    : %.3e words/solve peak, heap watermark %.3e \
                   words\n"
      st.Core.Workspace.peak_solve_words st.Core.Workspace.heap_words;
    (match
       Core.Workspace.last_iterations ws ~name:(Core.Estimator.name m)
     with
    | Some iters -> Printf.printf "iters    : %d\n" iters
    | None -> ());
    Printf.printf "MRE      : %.4f (90%% traffic coverage)\n"
      (Core.Metrics.mre ~truth:reference ~estimate ());
    Printf.printf "rank rho : %.4f\n"
      (Core.Metrics.rank_correlation reference estimate);
    Printf.printf "residual : %.6f (relative ||Rs - t||)\n"
      (Core.Problem.residual_norm d.Dataset.routing
         ~loads:(if Inject.is_none fault then loads else Inject.zero_fill loads)
         estimate);
    Format.printf "workspace: %a@." Core.Workspace.pp_stats
      (Core.Workspace.stats ws);
    let n = Dataset.num_nodes d in
    let name i =
      d.Dataset.topo.Tmest_net.Topology.nodes.(i).Tmest_net.Topology.name
    in
    let order = Array.init (Array.length reference) (fun i -> i) in
    Array.sort (fun a b -> compare reference.(b) reference.(a)) order;
    Printf.printf "%-28s %12s %12s %8s\n" "demand" "actual Mbps" "est Mbps"
      "err";
    for rank = 0 to Stdlib.min top (Array.length order) - 1 do
      let p = order.(rank) in
      let src, dst = Tmest_net.Odpairs.pair ~nodes:n p in
      Printf.printf "%-28s %12.1f %12.1f %7.1f%%\n"
        (Printf.sprintf "%s -> %s" (name src) (name dst))
        (reference.(p) /. 1e6) (estimate.(p) /. 1e6)
        (100. *. (estimate.(p) -. reference.(p)) /. reference.(p))
    done;
    0
  in
  let doc = "Estimate the traffic matrix from link loads and report accuracy." in
  Cmd.v (Cmd.info "estimate" ~doc)
    Term.(
      const run $ Flags.network $ Flags.pops $ Flags.seed $ Flags.method_
      $ sigma2_arg
      $ Flags.window ~default:10
      $ top_arg $ Flags.precond $ noise_arg $ drop_links_arg
      $ Flags.fault_seed $ Flags.jobs $ Flags.trace)

(* -------------------------------------------------------- experiment *)

let exp_id_arg =
  let doc = "Experiment id (fig1..fig16, tab1, tab2); see `tme list'." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)

let experiment_cmd =
  let run id fast pops seed jobs trace =
    apply_jobs jobs;
    match Tmest_experiments.Registry.find id with
    | exception Not_found ->
        Printf.eprintf "unknown experiment %S; try `tme list'\n" id;
        2
    | e ->
        with_trace trace
          ~meta:[ ("command", "experiment"); ("experiment", id) ]
        @@ fun sink ->
        let ctx =
          Tmest_experiments.Ctx.create ~fast ~sink
            ?scale_pops:(Option.map (fun p -> [ p ]) pops)
            ?scale_seed:seed ()
        in
        Tmest_experiments.Report.print (e.Tmest_experiments.Registry.run ctx);
        0
  in
  let doc = "Run one paper experiment and print its report." in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(
      const run $ exp_id_arg $ Flags.fast $ Flags.pops $ Flags.seed
      $ Flags.jobs $ Flags.trace)

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-6s %s\n" e.Tmest_experiments.Registry.id
          e.Tmest_experiments.Registry.title)
      Tmest_experiments.Registry.all;
    0
  in
  let doc = "List the available experiments." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let csv_cmd =
  let out_arg =
    let doc = "Output file (default: stdout)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)
  in
  let run id fast out jobs =
    apply_jobs jobs;
    match Tmest_experiments.Registry.find id with
    | exception Not_found ->
        Printf.eprintf "unknown experiment %S; try `tme list'\n" id;
        2
    | e ->
        let ctx = Tmest_experiments.Ctx.create ~fast () in
        let report = e.Tmest_experiments.Registry.run ctx in
        let csv = Tmest_experiments.Report.to_csv report in
        (match out with
        | None -> print_string csv
        | Some path ->
            let oc = open_out path in
            output_string oc csv;
            close_out oc;
            Printf.printf "wrote %s\n" path);
        0
  in
  let doc = "Dump an experiment's series and tables as CSV." in
  Cmd.v (Cmd.info "csv" ~doc)
    Term.(const run $ exp_id_arg $ Flags.fast $ out_arg $ Flags.jobs)

(* ------------------------------------------------------------ export *)

let export_cmd =
  let dir_arg =
    let doc = "Directory to write <net>.topo and <net>.tm into." in
    Arg.(value & opt string "." & info [ "d"; "dir" ] ~doc)
  in
  let run network dir =
    let d = dataset_of_name network in
    let nodes = Dataset.num_nodes d in
    let topo_path = Filename.concat dir (network ^ ".topo") in
    let tm_path = Filename.concat dir (network ^ ".tm") in
    Tmest_io.Topology_io.write topo_path d.Dataset.topo;
    Tmest_io.Tm_io.write_series tm_path ~nodes
      d.Dataset.truth.Tmest_traffic.Demand_gen.demands;
    Printf.printf "wrote %s (%d PoPs) and %s (%d samples x %d pairs)\n"
      topo_path nodes tm_path (Dataset.num_samples d) (Dataset.num_pairs d);
    0
  in
  let doc = "Export a synthetic dataset as .topo / .tm text files." in
  Cmd.v (Cmd.info "export" ~doc) Term.(const run $ Flags.network $ dir_arg)

(* ----------------------------------------------------- estimate-files *)

let estimate_files_cmd =
  let topo_arg =
    let doc = "Topology file (.topo format)." in
    Arg.(required & opt (some string) None & info [ "topo" ] ~doc)
  in
  let tm_arg =
    let doc =
      "Traffic-matrix series file (.tm); link loads are derived from \
       the requested sample and used as the estimator's only input."
    in
    Arg.(required & opt (some string) None & info [ "tm" ] ~doc)
  in
  let sample_arg =
    let doc = "Sample index within the series." in
    Arg.(value & opt int 0 & info [ "sample" ] ~doc)
  in
  let sigma2_arg =
    let doc = "Regularization parameter." in
    Arg.(value & opt float 1000. & info [ "sigma2" ] ~doc)
  in
  let run topo_path tm_path sample sigma2 jobs =
    apply_jobs jobs;
    match
      let topo = Tmest_io.Topology_io.read topo_path in
      let nodes = Tmest_net.Topology.num_nodes topo in
      let series = Tmest_io.Tm_io.read_series tm_path ~nodes in
      (topo, series)
    with
    | exception Failure msg ->
        Printf.eprintf "%s\n" msg;
        2
    | topo, series ->
        if sample < 0 || sample >= Mat.rows series then begin
          Printf.eprintf "sample %d out of range (series has %d)\n" sample
            (Mat.rows series);
          2
        end
        else begin
          let routing = Tmest_net.Routing.shortest_path topo in
          let ws =
            Core.Workspace.create ~pool:(Pool.default ()) routing
          in
          let truth = Mat.row series sample in
          let loads = Tmest_net.Routing.link_loads routing truth in
          let prior =
            Core.Estimator.prior Core.Estimator.Prior_gravity ws ~loads
          in
          let est =
            (Core.Entropy.estimate ws ~loads ~prior ~sigma2)
              .Core.Entropy.estimate
          in
          Printf.printf
            "network %s: %d nodes, %d pairs; sample %d\n"
            topo.Tmest_net.Topology.net_name
            (Tmest_net.Topology.num_nodes topo)
            (Array.length truth) sample;
          Printf.printf "gravity prior MRE : %.4f\n"
            (Core.Metrics.mre ~truth ~estimate:prior ());
          Printf.printf "entropy MRE       : %.4f (sigma2 = %g)\n"
            (Core.Metrics.mre ~truth ~estimate:est ())
            sigma2;
          0
        end
  in
  let doc =
    "Run the entropy estimator on user-supplied .topo / .tm files \
     (shortest-path routing; loads derived from the chosen sample)."
  in
  Cmd.v (Cmd.info "estimate-files" ~doc)
    Term.(const run $ topo_arg $ tm_arg $ sample_arg $ sigma2_arg $ Flags.jobs)

(* ------------------------------------------------------------ faults *)

let faults_cmd =
  let wrap_arg =
    let doc = "Per-link probability of an uncorrected 32-bit counter wrap." in
    Arg.(value & opt float 0. & info [ "wrap" ] ~docv:"PROB" ~doc)
  in
  let reset_arg =
    let doc = "Per-link probability of a mid-window counter reset." in
    Arg.(value & opt float 0. & info [ "reset" ] ~docv:"PROB" ~doc)
  in
  let run network pops seed noise drop wrap reset fault_seed window jobs trace
      =
    apply_jobs jobs;
    let fault = spec_of ~seed:fault_seed ~noise ~drop ~wrap ~reset in
    let d = dataset_of ?pops ?seed network in
    let spec = d.Dataset.spec in
    let k = spec.Spec.busy_start + (spec.Spec.busy_len / 2) in
    let truth = Dataset.demand_at d k in
    let busy_truth = Dataset.busy_mean_demand d in
    let clean_loads = Dataset.link_loads_at d k in
    let ks = Array.of_list (Dataset.busy_samples d) in
    let w = Stdlib.min (Stdlib.max window 2) (Array.length ks) in
    let ks = Array.sub ks (Array.length ks - w) w in
    let clean_samples =
      Mat.init w (Dataset.num_links d) (fun i j ->
          (Dataset.link_loads_at d ks.(i)).(j))
    in
    let dirty_loads = Inject.loads fault ~loads:clean_loads in
    let dirty_samples = Inject.samples fault clean_samples in
    let network = spec.Spec.name in
    with_trace trace
      ~meta:[ ("command", "faults"); ("network", network) ]
    @@ fun sink ->
    let ws =
      Core.Workspace.create ~pool:(Pool.default ()) ~sink d.Dataset.routing
    in
    Printf.printf "faults   : %s on %s\n" (Inject.description fault) network;
    let health = ref None in
    let degrade_opts =
      Core.Estimator.Options.make
        ~degrade:
          (Core.Degrade.with_on_health
             (fun h -> health := Some h)
             Core.Degrade.default)
        ()
    in
    Printf.printf "%-10s %10s %10s %10s\n" "method" "clean" "repaired"
      "zero-fill";
    List.iter
      (fun name ->
        let m = Core.Estimator.of_name name in
        let reference =
          if Core.Estimator.uses_time_series m then busy_truth else truth
        in
        (* Zero-filled loads are genuinely inconsistent; the WCB linear
           programs (rightly) reject them — report that as nan. *)
        let mre solve =
          try Core.Metrics.mre ~truth:reference ~estimate:(solve ()) ()
          with Tmest_opt.Simplex.Infeasible -> Float.nan
        in
        (* Dense-only methods refuse a sparse-mode workspace (above the
           gate with --pops): the shared capability predicate says so
           up front; the exception handler stays as a safety net. *)
        if
          Core.Workspace.is_sparse ws && not (Core.Estimator.supports_sparse m)
        then
          Printf.printf "%-10s   excluded (dense-only method, sparse mode)\n"
            name
        else
        try
          let clean =
            mre (fun () ->
                Core.Estimator.solve m ws ~loads:clean_loads
                  ~load_samples:clean_samples)
          in
          let repaired =
            mre (fun () ->
                Core.Estimator.solve ~opts:degrade_opts m ws ~loads:dirty_loads
                  ~load_samples:dirty_samples)
          in
          let zero =
            mre (fun () ->
                Core.Estimator.solve m ws
                  ~loads:(Inject.zero_fill dirty_loads)
                  ~load_samples:(Inject.zero_fill_mat dirty_samples))
          in
          Printf.printf "%-10s %10.4f %10.4f %10.4f\n" name clean repaired zero
        with Invalid_argument _ when Core.Workspace.is_sparse ws ->
          Printf.printf "%-10s   excluded (dense-only method, sparse mode)\n"
            name)
      (Core.Estimator.all_names ());
    (match !health with
    | Some h -> Format.printf "degraded : %a@." Core.Degrade.pp_health h
    | None -> ());
    0
  in
  let doc =
    "Inject measurement faults, run every method in degraded mode and \
     compare against clean inputs and a zero-fill baseline."
  in
  Cmd.v (Cmd.info "faults" ~doc)
    Term.(
      const run $ Flags.network $ Flags.pops $ Flags.seed $ noise_arg
      $ drop_links_arg $ wrap_arg $ reset_arg $ Flags.fault_seed
      $ Flags.window ~default:10
      $ Flags.jobs $ Flags.trace)

(* ------------------------------------------------------------ daemon *)

module Daemon = Tmest_daemon.Daemon
module Collect = Tmest_snmp.Collect

(* Like [with_trace], but a [.jsonl] path gets the streaming writer:
   the header goes out before the first tick and every event is flushed
   as it is emitted, so the feed can be tailed (and schema-checked)
   while the daemon runs. *)
let with_live_trace ?(meta = []) trace f =
  match trace with
  | Some path when Filename.check_suffix path ".jsonl" ->
      Obs.Clock.set_source Unix.gettimeofday;
      let live = Recorder.Live.create ~meta path in
      let finish () =
        Recorder.Live.close live;
        Printf.eprintf "trace: %d events -> %s (live)\n%!"
          (Recorder.Live.length live) path
      in
      let code =
        try f (Recorder.Live.sink live)
        with e ->
          finish ();
          raise e
      in
      finish ();
      code
  | other -> with_trace ~meta other f

(* "L@K" or "L@K0..K1": a scenario event pinned to one tick or to an
   inclusive tick range. *)
let event_conv =
  let parse s =
    match String.index_opt s '@' with
    | None -> Error (`Msg (Printf.sprintf "%S: expected ID@TICK or ID@K0..K1" s))
    | Some at -> (
        let id = String.sub s 0 at in
        let range = String.sub s (at + 1) (String.length s - at - 1) in
        let int v =
          match int_of_string_opt v with
          | Some i when i >= 0 -> Ok i
          | _ -> Error (`Msg (Printf.sprintf "%S: bad number %S" s v))
        in
        let split_range r =
          let n = String.length r in
          let rec find i =
            if i + 1 >= n then None
            else if r.[i] = '.' && r.[i + 1] = '.' then
              Some (String.sub r 0 i, String.sub r (i + 2) (n - i - 2))
            else find (i + 1)
          in
          find 0
        in
        let ( let* ) = Result.bind in
        let* id = int id in
        match split_range range with
        | Some (k0, k1) ->
            let* k0 = int k0 in
            let* k1 = int k1 in
            if k1 < k0 then
              Error (`Msg (Printf.sprintf "%S: empty tick range" s))
            else Ok (id, k0, k1)
        | None ->
            let* k = int range in
            Ok (id, k, k))
  in
  let print ppf (id, k0, k1) =
    if k0 = k1 then Format.fprintf ppf "%d@%d" id k0
    else Format.fprintf ppf "%d@%d..%d" id k0 k1
  in
  Arg.conv (parse, print)

let daemon_cmd =
  let ticks_arg =
    let doc = "Intervals to run (288 five-minute ticks = one day)." in
    Arg.(value & opt int 288 & info [ "ticks" ] ~docv:"N" ~doc)
  in
  let interval_scale_arg =
    let doc =
      "Pace the loop in real time at $(docv) times the nominal poll \
       interval (e.g. 0.001 sleeps ~0.3 s per tick); 0 free-runs \
       (benchmarks, smoke tests)."
    in
    Arg.(value & opt float 0. & info [ "interval-scale" ] ~docv:"SCALE" ~doc)
  in
  let loss_arg =
    let doc = "Per-poll UDP loss probability on the collection stream." in
    Arg.(
      value
      & opt float Collect.default_config.Collect.loss_prob
      & info [ "loss" ] ~docv:"PROB" ~doc)
  in
  let flap_arg =
    let doc =
      "Fail interior link $(i,L) for ticks $(i,K0)..$(i,K1) (inclusive; \
       $(i,L@K) flaps for the single tick $(i,K)).  Routing converges \
       around the failure and the daemon switches to the rerouted \
       workspace.  Repeatable."
    in
    Arg.(
      value & opt_all event_conv [] & info [ "flap-link" ] ~docv:"L@K0..K1" ~doc)
  in
  let drop_arg =
    let doc =
      "Silence poller $(i,P) for ticks $(i,K0)..$(i,K1): every link \
       polled by it misses those rounds and is repaired online.  \
       Repeatable."
    in
    Arg.(
      value
      & opt_all event_conv []
      & info [ "drop-poller" ] ~docv:"P@K0..K1" ~doc)
  in
  let reset_arg =
    let doc =
      "Restart link $(i,L)'s byte counter at tick $(i,K) (a line-card \
       reboot).  Repeatable."
    in
    Arg.(value & opt_all event_conv [] & info [ "reset-link" ] ~docv:"L@K" ~doc)
  in
  let run network pops seed fast method_name window ticks interval_scale loss
      flaps drops resets precond fault_seed jobs trace =
    apply_jobs jobs;
    let d =
      match (pops, fast) with
      | Some _, _ -> dataset_of ?pops ?seed network
      | None, true ->
          let spec =
            match network with
            | "europe" -> Spec.scaled ~nodes:6 ~directed_links:28 Spec.europe
            | "america" -> Spec.scaled ~nodes:8 ~directed_links:44 Spec.america
            | s ->
                Printf.eprintf
                  "unknown network %S (expected europe or america)\n" s;
                exit 2
          in
          let spec = { spec with Spec.name = spec.Spec.name ^ "-fast" } in
          let spec =
            match seed with Some s -> { spec with Spec.seed = s } | None -> spec
          in
          Dataset.generate spec
      | None, false -> dataset_of ?seed network
    in
    let spec = d.Dataset.spec in
    let est =
      match Core.Estimator.of_name method_name with
      | m -> m
      | exception Invalid_argument msg ->
          Printf.eprintf "%s\n" msg;
          exit 2
    in
    let stream =
      { Collect.default_config with Collect.loss_prob = loss; seed = fault_seed }
    in
    let scenario =
      {
        Daemon.flaps;
        poller_drops = drops;
        resets = List.map (fun (l, k, _) -> (l, k)) resets;
      }
    in
    let pace =
      if interval_scale > 0. then
        Some (fun () -> Unix.sleepf (interval_scale *. stream.Collect.interval_s))
      else None
    in
    let cfg =
      Daemon.config ~window ~ticks ~precond ~stream ~scenario ?pace ~est ()
    in
    with_live_trace trace
      ~meta:
        [
          ("command", "daemon");
          ("network", spec.Spec.name);
          ("method", Core.Estimator.name est);
          ("ticks", string_of_int ticks);
        ]
    @@ fun sink ->
    Printf.printf "daemon   : %s on %s, window %d, %d ticks\n"
      (Core.Estimator.name est) spec.Spec.name window ticks;
    Printf.printf
      "stream   : interval %g s, jitter %g s, loss %g, %d pollers, seed %d\n"
      stream.Collect.interval_s stream.Collect.jitter_s
      stream.Collect.loss_prob stream.Collect.pollers stream.Collect.seed;
    let r =
      try Daemon.run ~pool:(Pool.default ()) ~sink cfg d
      with Invalid_argument msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
    in
    (* Per-tick lines only where something happened: epoch switches,
       lost polls, counter resets.  A clean day stays quiet. *)
    let last_epoch = ref (-1) in
    List.iter
      (fun (t : Daemon.tick_record) ->
        if t.Daemon.epoch <> !last_epoch then begin
          Printf.printf "epoch %d  from tick %d (%s)\n" t.Daemon.epoch
            t.Daemon.tick
            (if t.Daemon.epoch = 0 then "all links up" else "routing changed");
          last_epoch := t.Daemon.epoch
        end;
        if t.Daemon.missing > 0 || t.Daemon.resets > 0 then
          Printf.printf
            "tick %3d  missing %d  resets %d  imputed %d  total %.1f Gbps\n"
            t.Daemon.tick t.Daemon.missing t.Daemon.resets
            (match t.Daemon.health with
            | Some h -> h.Core.Degrade.imputed
            | None -> 0)
            (t.Daemon.total_bps /. 1e9))
      r.Daemon.records;
    Printf.printf "ticks    : %d run, %d aborted, %d epochs\n" r.Daemon.ticks
      r.Daemon.aborted r.Daemon.epochs;
    Printf.printf "stream   : %d polls lost, %d counter resets\n"
      r.Daemon.polls_lost r.Daemon.counter_resets;
    Printf.printf "latency  : p50 %.2f ms, p99 %.2f ms, %.1f ticks/s\n"
      r.Daemon.p50_ms r.Daemon.p99_ms r.Daemon.ticks_per_sec;
    (match List.rev r.Daemon.records with
    | last :: _ ->
        Printf.printf "final    : MRE %.4f vs snapshot %d truth\n"
          (Core.Metrics.mre
             ~truth:(Dataset.demand_at d last.Daemon.snapshot)
             ~estimate:last.Daemon.estimate ())
          last.Daemon.snapshot
    | [] -> ());
    if r.Daemon.aborted > 0 then 1 else 0
  in
  let doc =
    "Run the streaming estimation daemon: poll, slide the window, \
     re-estimate each interval; repair online and survive routing flaps."
  in
  Cmd.v (Cmd.info "daemon" ~doc)
    Term.(
      const run $ Flags.network $ Flags.pops $ Flags.seed $ Flags.fast
      $ Flags.method_
      $ Flags.window ~default:8
      $ ticks_arg $ interval_scale_arg $ loss_arg $ flap_arg $ drop_arg
      $ reset_arg $ Flags.precond $ Flags.fault_seed $ Flags.jobs
      $ Flags.trace)

(* --------------------------------------------------------- snmp demo *)

let snmp_cmd =
  let loss_arg =
    let doc = "Per-poll UDP loss probability." in
    Arg.(value & opt float 0.01 & info [ "loss" ] ~doc)
  in
  let run network loss =
    let d = dataset_of_name network in
    let pairs = Dataset.num_pairs d in
    let samples = Dataset.num_samples d in
    let config =
      { Tmest_snmp.Collect.default_config with
        Tmest_snmp.Collect.loss_prob = loss; seed = 7 }
    in
    let truth k = Dataset.demand_at d k in
    let r = Tmest_snmp.Collect.run config ~true_rates:truth ~samples ~pairs in
    Printf.printf "polled %d LSPs x %d intervals: %d polls sent, %d lost\n"
      pairs samples r.Tmest_snmp.Collect.polls_sent
      r.Tmest_snmp.Collect.polls_lost;
    Printf.printf "mean per-sample rate error: %.4f%%\n"
      (100. *. Tmest_snmp.Collect.mean_absolute_rate_error r ~true_rates:truth);
    0
  in
  let doc = "Simulate the SNMP collection pipeline over a dataset." in
  Cmd.v (Cmd.info "snmp-demo" ~doc) Term.(const run $ Flags.network $ loss_arg)

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let doc =
    "Traffic matrix estimation on a large IP backbone (IMC 2004 \
     reproduction)"
  in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default
          (Cmd.info "tme" ~version:"1.0.0" ~doc)
          [
            info_cmd;
            estimate_cmd;
            experiment_cmd;
            list_cmd;
            csv_cmd;
            faults_cmd;
            daemon_cmd;
            snmp_cmd;
            export_cmd;
            estimate_files_cmd;
          ]))
