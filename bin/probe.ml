(* Scratch timing probe used during development; kept as a fast sanity
   runner: times the iterative methods on a generated backbone under
   each preconditioning policy and prints iteration counts, so
   solver-stack changes can be judged before a full --scale sweep. *)

module Dataset = Tmest_traffic.Dataset
module Spec = Tmest_traffic.Spec
module Mat = Tmest_linalg.Mat
module Vec = Tmest_linalg.Vec
module Stop = Tmest_opt.Stop
module Core = Tmest_core

let () =
  let pops =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 100
  in
  let max_iter =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 20000
  in
  let t0 = Unix.gettimeofday () in
  let d = Dataset.synthetic ~pops () in
  Printf.printf "dataset %d pops: %d pairs %d links (%.1fs)\n%!" pops
    (Dataset.num_pairs d) (Dataset.num_links d)
    (Unix.gettimeofday () -. t0);
  let ws = Core.Workspace.create d.Dataset.routing in
  let spec = d.Dataset.spec in
  let k = spec.Spec.busy_start + (spec.Spec.busy_len / 2) in
  let loads = Dataset.link_loads_at d k in
  let truth = Dataset.demand_at d k in
  let window = 8 in
  let ks = Array.of_list (Dataset.busy_samples d) in
  let ks = Array.sub ks (Array.length ks - window) window in
  let load_samples =
    Mat.init window (Dataset.num_links d) (fun i j ->
        (Dataset.link_loads_at d ks.(i)).(j))
  in
  let prior = Core.Estimator.prior Core.Estimator.Prior_gravity ws ~loads in
  let stop = Stop.make ~max_iter () in
  let kinds =
    [
      ("none", Core.Workspace.Precond_none);
      ("jacobi", Core.Workspace.Precond_jacobi);
    ]
  in
  List.iter
    (fun (tag, precond) ->
      let t0 = Unix.gettimeofday () in
      let r = Core.Entropy.estimate ~stop ~precond ws ~loads ~prior ~sigma2:1000. in
      Printf.printf "entropy/%-6s: %6.2fs  iters %5d converged %b  mre %.4f\n%!"
        tag
        (Unix.gettimeofday () -. t0)
        r.Core.Entropy.iterations r.Core.Entropy.converged
        (Core.Metrics.mre ~truth ~estimate:r.Core.Entropy.estimate ()))
    kinds;
  List.iter
    (fun (tag, precond) ->
      let t0 = Unix.gettimeofday () in
      let r = Core.Bayes.estimate ~stop ~precond ws ~loads ~prior ~sigma2:1000. in
      Printf.printf "bayes/%-6s  : %6.2fs  iters %5d converged %b  mre %.4f\n%!"
        tag
        (Unix.gettimeofday () -. t0)
        r.Core.Bayes.iterations r.Core.Bayes.converged
        (Core.Metrics.mre ~truth ~estimate:r.Core.Bayes.estimate ()))
    kinds;
  List.iter
    (fun (tag, precond) ->
      let t0 = Unix.gettimeofday () in
      let r = Core.Vardi.estimate ~stop ~precond ws ~load_samples ~sigma_inv2:0.01 in
      Printf.printf "vardi/%-6s  : %6.2fs  iters %5d  mre %.4f\n%!" tag
        (Unix.gettimeofday () -. t0)
        r.Core.Vardi.iterations
        (Core.Metrics.mre ~truth ~estimate:r.Core.Vardi.estimate ()))
    kinds;
  List.iter
    (fun (tag, precond) ->
      let t0 = Unix.gettimeofday () in
      let r = Core.Fanout.estimate ~stop ~precond ws ~load_samples in
      Printf.printf "fanout/%-6s : %6.2fs  iters %5d  mre %.4f\n%!" tag
        (Unix.gettimeofday () -. t0)
        r.Core.Fanout.iterations
        (Core.Metrics.mre ~truth:(Dataset.busy_mean_demand d)
           ~estimate:r.Core.Fanout.estimate ()))
    kinds
