module Rng = Tmest_stats.Rng
module Dist = Tmest_stats.Dist

type params = {
  mean_flow_duration_s : float;
  duration_log_std : float;
  segment_s : float;
  burstiness : float;
  flows_per_second : float;
}

let default_params =
  {
    mean_flow_duration_s = 120.;
    duration_log_std = 1.0;
    segment_s = 10.;
    burstiness = 0.8;
    flows_per_second = 0.5;
  }

let make_flow rng params ~od ~start_s ~base_rate =
  (* Lognormal lifetime with the requested mean. *)
  let sigma = params.duration_log_std in
  let mu = log params.mean_flow_duration_s -. (sigma *. sigma /. 2.) in
  let duration = Stdlib.max 1. (Dist.lognormal rng ~mu ~sigma) in
  let nsegs =
    Stdlib.max 1 (int_of_float (ceil (duration /. params.segment_s)))
  in
  let seg_d = duration /. float_of_int nsegs in
  let segments =
    Array.init nsegs (fun _ ->
        let rate =
          if params.burstiness <= 0. then base_rate
          else begin
            (* Gamma with mean base_rate, relative std = burstiness. *)
            let shape = 1. /. (params.burstiness *. params.burstiness) in
            Dist.gamma rng ~shape ~scale:(base_rate /. shape)
          end
        in
        (seg_d, rate))
  in
  { Flow.od; start_s; segments }

let generate rng params ~od ~mean_rate ~horizon_s =
  if horizon_s <= 0. then invalid_arg "Generator.generate: horizon <= 0";
  if mean_rate < 0. then invalid_arg "Generator.generate: negative rate";
  if mean_rate = 0. then []
  else begin
    (* Poisson arrivals; start a little before 0 so the window does not
       begin flow-empty. *)
    let warmup = 3. *. params.mean_flow_duration_s in
    let flows = ref [] in
    let t = ref (-.warmup) in
    while !t < horizon_s do
      t := !t +. Dist.exponential rng ~rate:params.flows_per_second;
      if !t < horizon_s then begin
        (* Heavy-tailed base rates: a few elephants, many mice. *)
        let base = Dist.pareto rng ~shape:1.6 ~scale:1. in
        flows := make_flow rng params ~od ~start_s:!t ~base_rate:base :: !flows
      end
    done;
    let flows = !flows in
    (* Scale so the aggregate inside [0, horizon) matches the target. *)
    let carried =
      List.fold_left
        (fun acc f -> acc +. Flow.bits_between f ~t0:0. ~t1:horizon_s)
        0. flows
    in
    if carried <= 0. then []
    else begin
      let factor = mean_rate *. horizon_s /. carried in
      List.map
        (fun f ->
          {
            f with
            Flow.segments =
              Array.map (fun (d, r) -> (d, r *. factor)) f.Flow.segments;
          })
        flows
    end
  end
