(** Flow-level traffic synthesis for one OD pair.

    The aggregate of the generated flows matches a target mean rate over
    the horizon, while individual flows have heavy-tailed sizes and
    bursty intra-flow rate profiles — the two properties that make
    lifetime-averaged NetFlow rates a poor proxy for 5-minute
    variability. *)

type params = {
  mean_flow_duration_s : float;  (** average flow lifetime (default 120 s) *)
  duration_log_std : float;  (** lognormal spread of lifetimes *)
  segment_s : float;  (** intra-flow rate re-draw period (default 10 s) *)
  burstiness : float;
      (** relative std of the intra-flow rate around the flow's base
          rate (Gamma segments; 0 = perfectly smooth flows) *)
  flows_per_second : float;  (** arrival intensity *)
}

val default_params : params

(** [generate rng params ~od ~mean_rate ~horizon_s] produces flows whose
    aggregate rate over [\[0, horizon_s)] averages [mean_rate].  Flow
    arrivals are Poisson; base rates are heavy-tailed (Pareto) and
    scaled so the expected aggregate matches.  Flows may extend past the
    horizon (their spill-over is part of the model).
    @raise Invalid_argument on non-positive horizon or negative rate. *)
val generate :
  Tmest_stats.Rng.t ->
  params ->
  od:int ->
  mean_rate:float ->
  horizon_s:float ->
  Flow.t list
