(** Individual traffic flows, as a NetFlow-style collector sees them.

    A flow belongs to one OD pair, lives over a time interval, and has a
    piecewise-constant rate profile — the intra-flow variability that
    NetFlow's lifetime aggregation throws away (the paper's criticism of
    NetFlow-based traffic matrices, Section 5). *)

type t = {
  od : int;  (** OD-pair index *)
  start_s : float;  (** start time, seconds *)
  segments : (float * float) array;
      (** (duration seconds, rate bits/s) pieces, in time order *)
}

(** [duration f] is the flow's total lifetime in seconds. *)
val duration : t -> float

(** [end_s f] is [start_s + duration]. *)
val end_s : t -> float

(** [total_bits f] is the exact volume carried. *)
val total_bits : t -> float

(** [mean_rate f] is [total_bits / duration] — the only rate NetFlow
    export retains. *)
val mean_rate : t -> float

(** [bits_between f ~t0 ~t1] integrates the true rate profile over
    [\[t0, t1)] (0 outside the flow's lifetime). *)
val bits_between : t -> t0:float -> t1:float -> float

(** [validate f] checks invariants (positive durations, non-negative
    rates); raises [Invalid_argument] otherwise. *)
val validate : t -> unit
