(** Binning flows into traffic-matrix time series, two ways.

    [exact_bins] integrates each flow's true rate profile per interval —
    what the per-LSP SNMP counters of the paper's MPLS measurement see.
    [netflow_bins] reproduces the NetFlow collector the paper describes:
    "the exported information contains the start and end time of every
    flow, and the number of bytes transmitted during that interval.
    The collector calculates the average rate during the lifetime of the
    flow, and adds that to the traffic matrix" — so a flow contributes
    its *lifetime-average* rate to every interval it overlaps, erasing
    intra-flow variability. *)

(** [exact_bins flows ~interval_s ~bins ~pairs] is the [bins x pairs]
    matrix of true average rates (bits/s) per interval. *)
val exact_bins :
  Flow.t list -> interval_s:float -> bins:int -> pairs:int -> Tmest_linalg.Mat.t

(** [netflow_bins flows ~interval_s ~bins ~pairs] is the NetFlow
    reconstruction: each flow's lifetime-average rate, weighted by the
    overlap fraction of the interval. *)
val netflow_bins :
  Flow.t list -> interval_s:float -> bins:int -> pairs:int -> Tmest_linalg.Mat.t

(** [variance_distortion ~exact ~netflow] compares per-pair temporal
    variances: returns the array of ratios
    [Var_netflow(p) / Var_exact(p)] (NaN-free; pairs with zero exact
    variance are skipped, encoded as [nan] in the slot).  Ratios well
    below 1 quantify the variability NetFlow aggregation destroys. *)
val variance_distortion :
  exact:Tmest_linalg.Mat.t -> netflow:Tmest_linalg.Mat.t -> float array
