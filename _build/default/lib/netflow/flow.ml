type t = {
  od : int;
  start_s : float;
  segments : (float * float) array;
}

let duration f =
  Array.fold_left (fun acc (d, _) -> acc +. d) 0. f.segments

let end_s f = f.start_s +. duration f

let total_bits f =
  Array.fold_left (fun acc (d, r) -> acc +. (d *. r)) 0. f.segments

let mean_rate f =
  let d = duration f in
  if d <= 0. then 0. else total_bits f /. d

let bits_between f ~t0 ~t1 =
  if t1 <= t0 then 0.
  else begin
    let acc = ref 0. in
    let cursor = ref f.start_s in
    Array.iter
      (fun (d, r) ->
        let seg0 = !cursor and seg1 = !cursor +. d in
        let lo = Stdlib.max seg0 t0 and hi = Stdlib.min seg1 t1 in
        if hi > lo then acc := !acc +. ((hi -. lo) *. r);
        cursor := seg1)
      f.segments;
    !acc
  end

let validate f =
  if f.od < 0 then invalid_arg "Flow: negative OD index";
  if Array.length f.segments = 0 then invalid_arg "Flow: no segments";
  Array.iter
    (fun (d, r) ->
      if d <= 0. then invalid_arg "Flow: non-positive segment duration";
      if r < 0. then invalid_arg "Flow: negative rate")
    f.segments
