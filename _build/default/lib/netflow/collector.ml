module Mat = Tmest_linalg.Mat
module Desc = Tmest_stats.Desc

let check_args ~interval_s ~bins ~pairs =
  if interval_s <= 0. then invalid_arg "Collector: interval <= 0";
  if bins <= 0 || pairs <= 0 then invalid_arg "Collector: empty shape"

let bin_range f ~interval_s ~bins =
  let first =
    Stdlib.max 0 (int_of_float (floor (f.Flow.start_s /. interval_s)))
  in
  let last =
    Stdlib.min (bins - 1)
      (int_of_float (floor ((Flow.end_s f -. 1e-9) /. interval_s)))
  in
  (first, last)

let exact_bins flows ~interval_s ~bins ~pairs =
  check_args ~interval_s ~bins ~pairs;
  let m = Mat.zeros bins pairs in
  List.iter
    (fun f ->
      Flow.validate f;
      if f.Flow.od >= pairs then invalid_arg "Collector: od out of range";
      let first, last = bin_range f ~interval_s ~bins in
      for b = first to last do
        let t0 = float_of_int b *. interval_s in
        let bits = Flow.bits_between f ~t0 ~t1:(t0 +. interval_s) in
        Mat.set m b f.Flow.od (Mat.get m b f.Flow.od +. (bits /. interval_s))
      done)
    flows;
  m

let netflow_bins flows ~interval_s ~bins ~pairs =
  check_args ~interval_s ~bins ~pairs;
  let m = Mat.zeros bins pairs in
  List.iter
    (fun f ->
      Flow.validate f;
      if f.Flow.od >= pairs then invalid_arg "Collector: od out of range";
      let rate = Flow.mean_rate f in
      let first, last = bin_range f ~interval_s ~bins in
      for b = first to last do
        let t0 = float_of_int b *. interval_s in
        let overlap =
          Stdlib.min (Flow.end_s f) (t0 +. interval_s)
          -. Stdlib.max f.Flow.start_s t0
        in
        if overlap > 0. then
          Mat.set m b f.Flow.od
            (Mat.get m b f.Flow.od +. (rate *. overlap /. interval_s))
      done)
    flows;
  m

let variance_distortion ~exact ~netflow =
  if Mat.rows exact <> Mat.rows netflow || Mat.cols exact <> Mat.cols netflow
  then invalid_arg "Collector.variance_distortion: shape mismatch";
  Array.init (Mat.cols exact) (fun p ->
      let col m = Mat.col m p in
      let ve = Desc.variance (col exact) in
      if ve <= 0. then nan else Desc.variance (col netflow) /. ve)
