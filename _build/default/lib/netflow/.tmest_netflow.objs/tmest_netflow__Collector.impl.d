lib/netflow/collector.ml: Array Flow List Stdlib Tmest_linalg Tmest_stats
