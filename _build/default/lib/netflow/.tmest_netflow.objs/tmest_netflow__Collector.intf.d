lib/netflow/collector.mli: Flow Tmest_linalg
