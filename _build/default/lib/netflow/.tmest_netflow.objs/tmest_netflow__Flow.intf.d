lib/netflow/flow.mli:
