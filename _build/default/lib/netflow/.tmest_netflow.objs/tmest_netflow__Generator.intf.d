lib/netflow/generator.mli: Flow Tmest_stats
