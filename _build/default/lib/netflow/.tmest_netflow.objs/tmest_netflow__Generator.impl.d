lib/netflow/generator.ml: Array Flow List Stdlib Tmest_stats
