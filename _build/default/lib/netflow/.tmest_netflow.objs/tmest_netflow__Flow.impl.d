lib/netflow/flow.ml: Array Stdlib
