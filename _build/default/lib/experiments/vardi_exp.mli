(** Vardi-method experiments (Section 5.3.4):

    - Table 1: MRE of the Vardi approach for sigma^-2 in {0.01, 1} over
      the K = 50 busy-period samples
    - Fig. 12: MRE vs window size on synthetic Poisson traffic matrices
      (supporting the covariance-estimation-convergence argument) *)

val tab1 : Ctx.t -> Report.t
val fig12 : Ctx.t -> Report.t
