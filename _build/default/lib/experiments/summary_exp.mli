(** Table 2: best-achievable MRE of every method on both subnetworks
    (Section 5.3.7), plus extension rows for the methods this
    reproduction adds beyond the paper (Kruithof/Krupp projection, Cao's
    generalized linear model). *)

val tab2 : Ctx.t -> Report.t
