type series = {
  label : string;
  points : (float * float) array;
}

type table = {
  columns : string list;
  rows : (string * float array) list;
}

type item =
  | Series of series
  | Table of table
  | Note of string

type t = {
  id : string;
  title : string;
  items : item list;
}

let series label points = Series { label; points }

let series_of_ys label ys =
  Series
    { label; points = Array.mapi (fun i y -> (float_of_int i, y)) ys }

let table ~columns rows = Table { columns; rows }
let note fmt = Printf.ksprintf (fun s -> Note s) fmt

let blocks = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline ys =
  if Array.length ys = 0 then ""
  else begin
    let finite = Array.of_list (List.filter Float.is_finite (Array.to_list ys)) in
    if Array.length finite = 0 then String.make (Array.length ys) '?'
    else begin
      let lo = Array.fold_left Stdlib.min finite.(0) finite in
      let hi = Array.fold_left Stdlib.max finite.(0) finite in
      let buf = Buffer.create (Array.length ys * 3) in
      Array.iter
        (fun y ->
          if not (Float.is_finite y) then Buffer.add_char buf '?'
          else begin
            let level =
              if hi = lo then 4
              else
                int_of_float
                  (Float.round ((y -. lo) /. (hi -. lo) *. 8.))
            in
            Buffer.add_string buf blocks.(Stdlib.max 0 (Stdlib.min 8 level))
          end)
        ys;
      Buffer.contents buf
    end
  end

let downsample ~max_points points =
  let n = Array.length points in
  if n <= max_points then points
  else begin
    let step = float_of_int (n - 1) /. float_of_int (max_points - 1) in
    Array.init max_points (fun i ->
        points.(int_of_float (Float.round (float_of_int i *. step))))
  end

let pp_series ppf s =
  let ys = Array.map snd s.points in
  Format.fprintf ppf "  %s  (%d points)@," s.label (Array.length s.points);
  Format.fprintf ppf "    %s@," (sparkline (Array.map snd (downsample ~max_points:60 s.points)));
  let shown = downsample ~max_points:12 s.points in
  Format.fprintf ppf "    x:";
  Array.iter (fun (x, _) -> Format.fprintf ppf " %9.3g" x) shown;
  Format.fprintf ppf "@,    y:";
  Array.iter (fun (_, y) -> Format.fprintf ppf " %9.3g" y) shown;
  Format.fprintf ppf "@,";
  if Array.length ys > 0 then begin
    let finite = Array.of_list (List.filter Float.is_finite (Array.to_list ys)) in
    if Array.length finite > 0 then begin
      let lo = Array.fold_left Stdlib.min finite.(0) finite in
      let hi = Array.fold_left Stdlib.max finite.(0) finite in
      Format.fprintf ppf "    min %.4g  max %.4g@," lo hi
    end
  end

let pp_table ppf t =
  let widths =
    List.map (fun c -> Stdlib.max 10 (String.length c)) t.columns
  in
  let pad w s = Printf.sprintf "%*s" w s in
  Format.fprintf ppf "  ";
  List.iter2 (fun w c -> Format.fprintf ppf " %s" (pad w c)) widths t.columns;
  Format.fprintf ppf "@,";
  List.iter
    (fun (label, values) ->
      Format.fprintf ppf "  ";
      (match widths with
      | w :: rest ->
          Format.fprintf ppf " %s" (pad w label);
          List.iteri
            (fun i w ->
              let v =
                if i < Array.length values then
                  Printf.sprintf "%.4g" values.(i)
                else ""
              in
              Format.fprintf ppf " %s" (pad w v))
            rest
      | [] -> ());
      Format.fprintf ppf "@,")
    t.rows

let pp ppf t =
  Format.fprintf ppf "@[<v>=== %s: %s ===@," (String.uppercase_ascii t.id)
    t.title;
  List.iter
    (fun item ->
      match item with
      | Note s -> Format.fprintf ppf "  note: %s@," s
      | Series s -> pp_series ppf s
      | Table tbl -> pp_table ppf tbl)
    t.items;
  Format.fprintf ppf "@]"

let csv_escape s =
  if String.contains s ',' || String.contains s '"' then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun item ->
      match item with
      | Note _ -> ()
      | Series s ->
          Array.iter
            (fun (x, y) ->
              Buffer.add_string buf
                (Printf.sprintf "series,%s,%.8g,%.8g\n" (csv_escape s.label) x
                   y))
            s.points
      | Table tbl ->
          let data_cols = List.tl tbl.columns in
          List.iter
            (fun (row, values) ->
              List.iteri
                (fun i col ->
                  if i < Array.length values then
                    Buffer.add_string buf
                      (Printf.sprintf "table,%s,%s,%.8g\n" (csv_escape row)
                         (csv_escape col) values.(i)))
                data_cols)
            tbl.rows)
    t.items;
  Buffer.contents buf

let print t =
  Format.printf "%a@." pp t
