(** Experiment reports: the printable reproduction of one paper table or
    figure.

    A report carries named series (figure curves), small tables, and
    free-form notes.  [pp] renders a terminal view (tables, downsampled
    series, unicode sparklines); [to_csv] dumps every series and table
    for external plotting. *)

type series = {
  label : string;
  points : (float * float) array;  (** (x, y) in x order *)
}

type table = {
  columns : string list;  (** header, first column is the row label *)
  rows : (string * float array) list;
}

type item =
  | Series of series
  | Table of table
  | Note of string

type t = {
  id : string;  (** e.g. "fig13" *)
  title : string;
  items : item list;
}

val series : string -> (float * float) array -> item

(** [series_of_ys label ys] numbers the x axis 0, 1, ... *)
val series_of_ys : string -> float array -> item

val table : columns:string list -> (string * float array) list -> item
val note : ('a, unit, string, item) format4 -> 'a

(** [sparkline ys] renders values as unicode block characters (for
    quick visual shape checks in terminal output). *)
val sparkline : float array -> string

val pp : Format.formatter -> t -> unit

(** [to_csv t] is a CSV rendition: series as [series,label,x,y] rows and
    tables as [table,row,col,value] rows. *)
val to_csv : t -> string

(** [print t] renders to stdout. *)
val print : t -> unit
