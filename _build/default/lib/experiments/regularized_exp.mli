(** Regularized-estimation experiments (Section 5.3.5):

    - Fig. 13: Bayesian and Entropy MRE vs the regularization parameter
      (gravity prior), both subnetworks
    - Fig. 14: actual vs estimated demands for both methods on the
      American subnetwork at regularization 1000
    - Fig. 15: Bayesian MRE vs regularization with gravity vs WCB
      priors, both subnetworks *)

val fig13 : Ctx.t -> Report.t
val fig14 : Ctx.t -> Report.t
val fig15 : Ctx.t -> Report.t

(** The regularization sweep grid used by fig13/fig15 and the Table 2
    best-value search. *)
val sigma2_grid : fast:bool -> float list
