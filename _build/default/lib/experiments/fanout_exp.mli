(** Fanout-estimation experiments (Section 5.3.3):

    - Fig. 10: fanout estimates vs window-average demands for window
      lengths 1, 3 and 10 (American subnetwork)
    - Fig. 11: fanout-estimation MRE as a function of window length *)

val fig10 : Ctx.t -> Report.t
val fig11 : Ctx.t -> Report.t
