module Vec = Tmest_linalg.Vec
module Desc = Tmest_stats.Desc
module Regress = Tmest_stats.Regress
module Dataset = Tmest_traffic.Dataset
module Spec = Tmest_traffic.Spec
module Odpairs = Tmest_net.Odpairs
module Topology = Tmest_net.Topology
module Gravity = Tmest_core.Gravity
module Metrics = Tmest_core.Metrics

let fig1 ctx =
  let nets = Ctx.networks ctx in
  let all_totals =
    List.map (fun n -> Dataset.total_series n.Ctx.dataset) nets
  in
  let global_max =
    List.fold_left
      (fun acc ts -> Array.fold_left Stdlib.max acc ts)
      0. all_totals
  in
  let items =
    List.map2
      (fun net totals ->
        let samples = Array.length totals in
        let points =
          Array.mapi
            (fun k v ->
              (24. *. float_of_int k /. float_of_int samples, v /. global_max))
            totals
        in
        Report.series (net.Ctx.label ^ " normalized total") points)
      nets all_totals
  in
  let busy =
    let d = (List.hd nets).Ctx.dataset in
    let spec = d.Dataset.spec in
    let samples = float_of_int spec.Spec.samples in
    Report.note "shared busy period: %.1f-%.1f GMT (%d samples)"
      (24. *. float_of_int spec.Spec.busy_start /. samples)
      (24.
      *. float_of_int (spec.Spec.busy_start + spec.Spec.busy_len)
      /. samples)
      spec.Spec.busy_len
  in
  {
    Report.id = "fig1";
    title = "Total network traffic over time (diurnal cycles)";
    items = items @ [ busy ];
  }

let fig2 ctx =
  let items =
    List.concat_map
      (fun net ->
        let mean = Ctx.busy_mean net in
        let shares = Desc.cumulative_share mean in
        let n = Array.length shares in
        let points =
          Array.mapi
            (fun i s -> (100. *. float_of_int (i + 1) /. float_of_int n, s))
            shares
        in
        [
          Report.series (net.Ctx.label ^ " cumulative share") points;
          Report.note "%s: top 20%% of demands carry %.1f%% of traffic"
            net.Ctx.label
            (100. *. Desc.top_share ~fraction:0.2 mean);
        ])
      (Ctx.networks ctx)
  in
  {
    Report.id = "fig2";
    title = "Cumulative demand distributions";
    items;
  }

let fig3 ctx =
  let items =
    List.concat_map
      (fun net ->
        let d = net.Ctx.dataset in
        let n = Dataset.num_nodes d in
        let mean = Ctx.busy_mean net in
        let total = Vec.sum mean in
        let order = Array.init (Array.length mean) (fun i -> i) in
        Array.sort (fun a b -> compare mean.(b) mean.(a)) order;
        let name i = d.Dataset.topo.Topology.nodes.(i).Topology.name in
        let rows =
          List.init 10 (fun rank ->
              let p = order.(rank) in
              let src, dst = Odpairs.pair ~nodes:n p in
              ( Printf.sprintf "%s %s->%s" net.Ctx.label (name src) (name dst),
                [| mean.(p) /. total *. 100. |] ))
        in
        [
          Report.table
            ~columns:[ "largest demands"; "% of total" ]
            rows;
          Report.note
            "%s: %d of %d node pairs carry 50%% of the traffic" net.Ctx.label
            (let acc = ref 0. and k = ref 0 in
             while !acc < 0.5 *. total do
               acc := !acc +. mean.(order.(!k));
               incr k
             done;
             !k)
            (Array.length mean);
        ])
      (Ctx.networks ctx)
  in
  {
    Report.id = "fig3";
    title = "Spatial distribution of traffic (demand heat map)";
    items;
  }

(* Top source PoPs and their largest demands, shared by fig4/fig5. *)
let top_sources net count =
  let d = net.Ctx.dataset in
  let n = Dataset.num_nodes d in
  let mean = Ctx.busy_mean net in
  let te = Array.make n 0. in
  Odpairs.iter ~nodes:n (fun p src _ -> te.(src) <- te.(src) +. mean.(p));
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare te.(b) te.(a)) order;
  Array.to_list (Array.sub order 0 count)
  |> List.map (fun src ->
         (* Largest demand out of this source. *)
         let best = ref (-1) in
         Odpairs.iter ~nodes:n (fun p s _ ->
             if s = src && (!best < 0 || mean.(p) > mean.(!best)) then
               best := p);
         (src, !best))

let relative_std xs =
  let m = Desc.mean xs in
  if m <= 0. then 0. else Desc.std xs /. m

let demand_and_fanout_series net pair =
  let d = net.Ctx.dataset in
  let k = Dataset.num_samples d in
  let demand = Dataset.demand_series d pair in
  let fanout =
    Array.init k (fun t -> (Dataset.fanouts_at d t).(pair))
  in
  (demand, fanout)

let fig_4_5 ~fanouts ctx =
  let net = ctx.Ctx.america in
  let d = net.Ctx.dataset in
  let n = Dataset.num_nodes d in
  let name i = d.Dataset.topo.Topology.nodes.(i).Topology.name in
  let sources = top_sources net 4 in
  let items =
    List.concat_map
      (fun (src, pair) ->
        let demand, fanout = demand_and_fanout_series net pair in
        let ys = if fanouts then fanout else demand in
        let peak = Array.fold_left Stdlib.max 1e-30 ys in
        let points =
          Array.mapi
            (fun k v ->
              ( 24. *. float_of_int k /. float_of_int (Array.length ys),
                v /. peak ))
            ys
        in
        let _, dst = Odpairs.pair ~nodes:n pair in
        [
          Report.series
            (Printf.sprintf "%s->%s %s" (name src) (name dst)
               (if fanouts then "fanout" else "demand"))
            points;
          Report.note "%s->%s relative std: demand %.3f, fanout %.3f"
            (name src) (name dst) (relative_std demand) (relative_std fanout);
        ])
      sources
  in
  if fanouts then
    {
      Report.id = "fig5";
      title =
        "Fanouts of the largest demands from the top-4 American PoPs \
         (stability)";
      items;
    }
  else
    {
      Report.id = "fig4";
      title = "Largest demands from the top-4 American PoPs over 24 h";
      items;
    }

let fig4 ctx = fig_4_5 ~fanouts:false ctx
let fig5 ctx = fig_4_5 ~fanouts:true ctx

let fig6 ctx =
  let items =
    List.concat_map
      (fun net ->
        let d = net.Ctx.dataset in
        let busy = Dataset.busy_samples d in
        let p = Dataset.num_pairs d in
        let scale = d.Dataset.spec.Spec.peak_total_bps in
        let means = Array.make p 0. and vars = Array.make p 0. in
        for pair = 0 to p - 1 do
          let xs =
            Array.of_list
              (List.map (fun k -> (Dataset.demand_at d k).(pair) /. scale) busy)
          in
          means.(pair) <- Desc.mean xs;
          vars.(pair) <- Desc.variance xs
        done;
        let fit = Regress.power_law means vars in
        (* Log-log scatter, sorted by mean, downsampled implicitly by
           the report printer. *)
        let pairs =
          Array.of_list
            (List.filter
               (fun (m, v) -> m > 0. && v > 0.)
               (Array.to_list (Array.mapi (fun i m -> (m, vars.(i))) means)))
        in
        Array.sort compare pairs;
        let points = Array.map (fun (m, v) -> (log10 m, log10 v)) pairs in
        [
          Report.series (net.Ctx.label ^ " log10 mean vs log10 var") points;
          Report.note
            "%s fit: Var = %.3g * mean^%.2f  (r2 = %.3f; paper: c = %s)"
            net.Ctx.label fit.Regress.phi fit.Regress.c fit.Regress.r2
            (if net.Ctx.label = "Europe" then "1.6" else "1.5");
        ])
      (Ctx.networks ctx)
  in
  {
    Report.id = "fig6";
    title = "Demand mean-variance relationship (generalized scaling law)";
    items;
  }

let fig7 ctx =
  let items =
    List.concat_map
      (fun net ->
        let routing = net.Ctx.dataset.Dataset.routing in
        let est = Gravity.simple routing ~loads:net.Ctx.loads in
        let truth = net.Ctx.truth in
        let order = Array.init (Array.length truth) (fun i -> i) in
        Array.sort (fun a b -> compare truth.(b) truth.(a)) order;
        let top_count = Stdlib.max 1 (Array.length truth / 10) in
        let ratio_top =
          let acc = ref 0. in
          for i = 0 to top_count - 1 do
            let p = order.(i) in
            acc := !acc +. (est.(p) /. Stdlib.max truth.(p) 1.)
          done;
          !acc /. float_of_int top_count
        in
        let points =
          Array.map
            (fun p -> (truth.(p), est.(p)))
            (Array.of_list (List.rev (Array.to_list order)))
        in
        [
          Report.series (net.Ctx.label ^ " actual vs gravity estimate") points;
          Report.note
            "%s: MRE %.3f, rank correlation %.3f, top-decile est/actual %.2f%s"
            net.Ctx.label
            (Metrics.mre ~truth ~estimate:est ())
            (Metrics.rank_correlation truth est)
            ratio_top
            (if ratio_top < 0.9 then " (underestimates large demands)" else "");
        ])
      (Ctx.networks ctx)
  in
  {
    Report.id = "fig7";
    title = "Real demands vs simple gravity model estimates";
    items;
  }
