lib/experiments/data_analysis.mli: Ctx Report
