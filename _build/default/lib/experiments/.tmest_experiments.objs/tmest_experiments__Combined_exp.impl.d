lib/experiments/combined_exp.ml: Array Ctx Lazy List Report Tmest_core Tmest_traffic
