lib/experiments/registry.mli: Ctx Report
