lib/experiments/bounds_exp.ml: Array Ctx Lazy List Report Stdlib Tmest_core Tmest_linalg Tmest_traffic
