lib/experiments/fanout_exp.mli: Ctx Report
