lib/experiments/bounds_exp.mli: Ctx Report
