lib/experiments/extensions.mli: Ctx Report
