lib/experiments/vardi_exp.ml: Array Ctx List Printf Report Stdlib Tmest_core Tmest_linalg Tmest_net Tmest_traffic
