lib/experiments/registry.ml: Bounds_exp Combined_exp Ctx Data_analysis Extensions Fanout_exp List Regularized_exp Report Summary_exp Vardi_exp
