lib/experiments/extensions.ml: Array Ctx Float Lazy List Printf Regularized_exp Report Stdlib Tmest_core Tmest_linalg Tmest_net Tmest_netflow Tmest_stats Tmest_te Tmest_traffic
