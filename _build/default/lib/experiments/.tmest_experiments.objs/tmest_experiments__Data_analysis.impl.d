lib/experiments/data_analysis.ml: Array Ctx List Printf Report Stdlib Tmest_core Tmest_linalg Tmest_net Tmest_stats Tmest_traffic
