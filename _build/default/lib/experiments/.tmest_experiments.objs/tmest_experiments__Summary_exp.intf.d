lib/experiments/summary_exp.mli: Ctx Report
