lib/experiments/fanout_exp.ml: Array Ctx List Printf Report Stdlib Tmest_core Tmest_linalg Tmest_traffic
