lib/experiments/combined_exp.mli: Ctx Report
