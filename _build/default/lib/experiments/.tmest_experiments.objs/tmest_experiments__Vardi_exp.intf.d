lib/experiments/vardi_exp.mli: Ctx Report
