lib/experiments/summary_exp.ml: Ctx Lazy List Regularized_exp Report Stdlib Tmest_core Tmest_linalg Tmest_traffic
