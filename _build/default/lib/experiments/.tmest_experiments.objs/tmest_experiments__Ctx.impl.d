lib/experiments/ctx.ml: Array Lazy Stdlib Tmest_core Tmest_linalg Tmest_traffic
