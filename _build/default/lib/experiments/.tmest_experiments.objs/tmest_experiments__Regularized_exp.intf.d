lib/experiments/regularized_exp.mli: Ctx Report
