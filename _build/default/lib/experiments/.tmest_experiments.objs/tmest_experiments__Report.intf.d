lib/experiments/report.mli: Format
