lib/experiments/ctx.mli: Lazy Tmest_core Tmest_linalg Tmest_traffic
