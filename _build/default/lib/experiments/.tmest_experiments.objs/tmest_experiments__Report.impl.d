lib/experiments/report.ml: Array Buffer Float Format List Printf Stdlib String
