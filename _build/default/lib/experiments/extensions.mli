(** Extension experiments beyond the paper's evaluation — each one
    addresses an item the paper explicitly leaves open (Section 6) or a
    design choice this reproduction makes:

    - [ext1]: prior ablation — uniform vs gravity vs worst-case-bound
      priors for the regularized estimators (design-choice ablation).
    - [ext2]: measurement errors — per-link multiplicative SNMP error
      and stale samples from lost polls ("our data set does not contain
      measurement errors ... we have not evaluated the effect of such
      events").
    - [ext3]: component failures — estimation with a stale routing
      matrix while the network has re-routed around a failed link.
    - [ext4]: the generalized gravity model with peering PoPs
      (described in Section 4.1 but left without evaluation).
    - [ext5]: Cao et al.'s generalized-linear-model estimator, the
      paper's declared missing method, swept over its parameters. *)

val ext1 : Ctx.t -> Report.t
val ext2 : Ctx.t -> Report.t
val ext3 : Ctx.t -> Report.t
val ext4 : Ctx.t -> Report.t
val ext5 : Ctx.t -> Report.t

(** [ext6]: NetFlow variance distortion — quantifies the paper's
    Section-5 argument that flow-lifetime aggregation destroys the
    intra-flow variability that variance-based estimators need, using
    the flow-level simulator ({!Tmest_netflow}). *)
val ext6 : Ctx.t -> Report.t

(** [ext7]: iterative Bayesian prior refinement (Vaton & Gravey, the
    paper's reference [11]) across consecutive snapshots. *)
val ext7 : Ctx.t -> Report.t

(** [ext8]: single-path vs fractional ECMP routing matrices — the
    paper's Section 3.1 remark about fractional [R], evaluated. *)
val ext8 : Ctx.t -> Report.t

(** [ext9]: route-change inference (Nucci et al., the paper's reference
    [14]) — stacking load snapshots from several routing configurations
    over the same demands. *)
val ext9 : Ctx.t -> Report.t

(** [ext10]: Bayesian posterior sampling over the feasible polytope
    (Tebaldi & West, the paper's reference [10]) — point accuracy and
    credible intervals. *)
val ext10 : Ctx.t -> Report.t

(** [ext11]: traffic engineering with estimated traffic matrices
    (Roughan, Thorup & Zhang, the paper's reference [4]): IGP weight
    optimization driven by the true vs the estimated TM, scored under
    the true demands. *)
val ext11 : Ctx.t -> Report.t

(** [ext12]: estimation quality across the diurnal cycle — the paper
    evaluates only the busy hour; this sweeps the entropy estimator over
    the whole 24 h. *)
val ext12 : Ctx.t -> Report.t
