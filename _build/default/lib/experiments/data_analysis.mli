(** Reproductions of the paper's data-analysis figures (Section 5.2):

    - Fig. 1: normalized total traffic over time, both subnetworks
    - Fig. 2: cumulative demand distribution
    - Fig. 3: spatial demand distribution
    - Fig. 4: largest demands of the top source PoPs over 24 h
    - Fig. 5: the corresponding fanouts (stability comparison)
    - Fig. 6: demand mean-variance relationship and power-law fit
    - Fig. 7: gravity-model estimates vs actual demands *)

val fig1 : Ctx.t -> Report.t
val fig2 : Ctx.t -> Report.t
val fig3 : Ctx.t -> Report.t
val fig4 : Ctx.t -> Report.t
val fig5 : Ctx.t -> Report.t
val fig6 : Ctx.t -> Report.t
val fig7 : Ctx.t -> Report.t
