(** Worst-case-bound experiments (Section 5.3.2):

    - Fig. 8: per-demand LP bounds vs actual demands
    - Fig. 9: the bound-midpoint prior vs actual demands *)

val fig8 : Ctx.t -> Report.t
val fig9 : Ctx.t -> Report.t
