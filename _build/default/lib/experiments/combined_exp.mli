(** Tomography + direct measurement experiment (Section 5.3.6, Fig. 16):
    MRE of the Entropy method as a function of the number of directly
    measured demands on the European subnetwork, with the greedy
    (exhaustive-search) and largest-demand-first selection policies. *)

val fig16 : ?steps:int -> Ctx.t -> Report.t
