module Vec = Tmest_linalg.Vec
module Topology = Tmest_net.Topology
module Routing = Tmest_net.Routing

type report = {
  utilization : Vec.t;
  max_utilization : float;
  max_link : int;
  cost : float;
}

(* Fortz & Thorup's piecewise-linear link cost: convex, slope growing
   from 1 to 5000 as utilization passes 1/3, 2/3, 9/10, 1, 11/10. *)
let congestion_cost ~load ~capacity =
  if capacity <= 0. then invalid_arg "Utilization: non-positive capacity";
  let u = load /. capacity in
  let c = capacity in
  if u < 1. /. 3. then load
  else if u < 2. /. 3. then (3. *. load) -. (2. /. 3. *. c)
  else if u < 0.9 then (10. *. load) -. (16. /. 3. *. c)
  else if u < 1. then (70. *. load) -. (178. /. 3. *. c)
  else if u < 1.1 then (500. *. load) -. (1468. /. 3. *. c)
  else (5000. *. load) -. (16318. /. 3. *. c)

let of_loads topo ~loads =
  if Array.length loads <> Topology.num_links topo then
    invalid_arg "Utilization.of_loads: dimension mismatch";
  let utilization = Array.make (Array.length loads) 0. in
  let max_utilization = ref 0. in
  let max_link = ref (-1) in
  let cost = ref 0. in
  Array.iter
    (fun l ->
      let id = l.Topology.link_id in
      let u = loads.(id) /. l.Topology.capacity in
      utilization.(id) <- u;
      if l.Topology.lkind = Topology.Interior then begin
        if u > !max_utilization then begin
          max_utilization := u;
          max_link := id
        end;
        cost := !cost +. congestion_cost ~load:loads.(id) ~capacity:l.Topology.capacity
      end)
    topo.Topology.links;
  {
    utilization;
    max_utilization = !max_utilization;
    max_link = !max_link;
    cost = !cost;
  }

let of_demands routing ~demands =
  of_loads routing.Routing.topo ~loads:(Routing.link_loads routing demands)

let headroom topo ~loads ~threshold =
  let report = of_loads topo ~loads in
  Topology.interior_links topo
  |> List.filter_map (fun l ->
         let id = l.Topology.link_id in
         let u = report.utilization.(id) in
         if u > threshold then Some (id, u) else None)
  |> List.sort (fun (_, a) (_, b) -> compare b a)
