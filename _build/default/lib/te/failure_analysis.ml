module Vec = Tmest_linalg.Vec
module Topology = Tmest_net.Topology
module Dijkstra = Tmest_net.Dijkstra
module Odpairs = Tmest_net.Odpairs

type event = {
  failed_link : int;
  partitioned : bool;
  report : Utilization.report;
}

let loads_without topo ~demands ~failed =
  let n = Topology.num_nodes topo in
  if Array.length demands <> Odpairs.count n then
    invalid_arg "Failure_analysis: demand dimension mismatch";
  let usable l = l.Topology.link_id <> failed in
  let loads = Array.make (Topology.num_links topo) 0. in
  let partitioned = ref false in
  for src = 0 to n - 1 do
    let _, parent = Dijkstra.tree ~usable topo ~src in
    for dst = 0 to n - 1 do
      if dst <> src then begin
        let p = Odpairs.index ~nodes:n ~src ~dst in
        if demands.(p) > 0. then begin
          match Dijkstra.path_of_tree topo parent ~src ~dst with
          | None -> partitioned := true
          | Some path ->
              List.iter
                (fun l -> loads.(l) <- loads.(l) +. demands.(p))
                path;
              loads.(Topology.ingress_link topo src) <-
                loads.(Topology.ingress_link topo src) +. demands.(p);
              loads.(Topology.egress_link topo dst) <-
                loads.(Topology.egress_link topo dst) +. demands.(p)
        end
      end
    done
  done;
  (loads, !partitioned)

let sweep topo ~demands =
  Topology.interior_links topo
  |> List.map (fun l ->
         let failed = l.Topology.link_id in
         let loads, partitioned = loads_without topo ~demands ~failed in
         (* The failed link carries nothing. *)
         loads.(failed) <- 0.;
         {
           failed_link = failed;
           partitioned;
           report = Utilization.of_loads topo ~loads;
         })

let worst topo ~demands =
  match sweep topo ~demands with
  | [] -> invalid_arg "Failure_analysis.worst: no interior links"
  | first :: rest ->
      List.fold_left
        (fun best e ->
          if
            e.report.Utilization.max_utilization
            > best.report.Utilization.max_utilization
          then e
          else best)
        first rest

let overload_set ~threshold events =
  List.concat_map
    (fun e ->
      let over = ref [] in
      Array.iteri
        (fun link u ->
          if u > threshold && link <> e.failed_link then
            over := (e.failed_link, link) :: !over)
        e.report.Utilization.utilization;
      !over)
    events

let overload_agreement ~threshold a b =
  let sa = overload_set ~threshold a and sb = overload_set ~threshold b in
  let both = List.length (List.filter (fun x -> List.mem x sb) sa) in
  (both, List.length sa - both, List.length sb - both)
