(** IGP link-weight optimization by local search
    (a compact Fortz-Thorup-style heuristic).

    Given a traffic matrix, searches over interior-link weights to
    minimize the piecewise-linear congestion cost of the induced
    shortest-path routing.  This is the optimization an operator would
    drive with an *estimated* TM — reference [4] of the paper studies
    exactly how estimation errors affect it. *)

type result = {
  topo : Tmest_net.Topology.t;  (** topology with the optimized weights *)
  cost : float;  (** final congestion cost *)
  max_utilization : float;
  initial_cost : float;
  initial_max_utilization : float;
  moves : int;  (** accepted weight changes *)
}

(** [optimize ?max_passes ?candidates topo ~demands] runs the search.
    Each pass scans the links on the most-utilized paths and tries the
    multiplicative [candidates] (default
    [0.25; 0.5; 0.8; 1.25; 2.; 4.]) for each; the best improving move is
    kept.  Stops after a pass without improvement or [max_passes]
    (default 6). *)
val optimize :
  ?max_passes:int ->
  ?candidates:float list ->
  Tmest_net.Topology.t ->
  demands:Tmest_linalg.Vec.t ->
  result

(** [with_weight topo ~link ~metric] is [topo] with one interior link's
    metric replaced.
    @raise Invalid_argument for non-interior links or metric <= 0. *)
val with_weight :
  Tmest_net.Topology.t -> link:int -> metric:float -> Tmest_net.Topology.t

(** [evaluate topo ~demands] is the congestion report of shortest-path
    routing [demands] over [topo] (convenience wrapper). *)
val evaluate :
  Tmest_net.Topology.t -> demands:Tmest_linalg.Vec.t -> Utilization.report
