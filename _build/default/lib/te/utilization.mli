(** Link-utilization analysis: the traffic-engineering consumer the
    paper's introduction motivates TM estimation with. *)

type report = {
  utilization : Tmest_linalg.Vec.t;  (** per link, load / capacity *)
  max_utilization : float;  (** over interior links *)
  max_link : int;  (** arg max (interior link id, -1 if none) *)
  cost : float;  (** Fortz-Thorup piecewise-linear congestion cost *)
}

(** [of_demands routing ~demands] computes the report for a demand
    vector routed by [routing]. *)
val of_demands :
  Tmest_net.Routing.t -> demands:Tmest_linalg.Vec.t -> report

(** [of_loads topo ~loads] computes the report directly from a
    link-load vector. *)
val of_loads : Tmest_net.Topology.t -> loads:Tmest_linalg.Vec.t -> report

(** [congestion_cost ~load ~capacity] is the Fortz-Thorup piecewise
    linear penalty for one link: slope 1 below 1/3 utilization, rising
    to 5000 above 110 % — the standard objective for IGP weight
    optimization. *)
val congestion_cost : load:float -> capacity:float -> float

(** [headroom topo ~loads ~threshold] lists interior links whose
    utilization exceeds [threshold], busiest first, as
    [(link_id, utilization)] — the provisioning to-do list. *)
val headroom :
  Tmest_net.Topology.t ->
  loads:Tmest_linalg.Vec.t ->
  threshold:float ->
  (int * float) list
