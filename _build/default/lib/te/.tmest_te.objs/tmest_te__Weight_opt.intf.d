lib/te/weight_opt.mli: Tmest_linalg Tmest_net Utilization
