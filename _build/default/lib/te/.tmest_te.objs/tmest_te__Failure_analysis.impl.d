lib/te/failure_analysis.ml: Array List Tmest_linalg Tmest_net Utilization
