lib/te/weight_opt.ml: Array List Stdlib Tmest_linalg Tmest_net Utilization
