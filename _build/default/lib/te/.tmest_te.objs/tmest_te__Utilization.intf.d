lib/te/utilization.mli: Tmest_linalg Tmest_net
