lib/te/failure_analysis.mli: Tmest_linalg Tmest_net Utilization
