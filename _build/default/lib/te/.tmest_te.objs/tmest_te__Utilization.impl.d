lib/te/utilization.ml: Array List Tmest_linalg Tmest_net
