(** Systematic single-link failure sweeps.

    For every interior link: remove it, re-route all demands on IGP
    shortest paths, and record the post-failure utilization profile.
    The classic planning question a traffic matrix answers ("which
    failure overloads what?"), evaluated with either the true or an
    estimated TM. *)

type event = {
  failed_link : int;
  partitioned : bool;  (** some demands had no surviving path *)
  report : Utilization.report;  (** post-failure utilizations *)
}

(** [sweep topo ~demands] simulates every single interior-link failure.
    Demands that lose connectivity are dropped from the re-routed load
    (and the event is flagged [partitioned]). *)
val sweep : Tmest_net.Topology.t -> demands:Tmest_linalg.Vec.t -> event list

(** [worst topo ~demands] is the failure event with the highest
    post-failure max-utilization. *)
val worst : Tmest_net.Topology.t -> demands:Tmest_linalg.Vec.t -> event

(** [overload_agreement ~threshold a b] compares two sweeps (e.g. true
    vs estimated TM): returns [(both, only_a, only_b)] counts of
    (failure, link) pairs whose post-failure utilization exceeds
    [threshold] — the planning-decision agreement measure. *)
val overload_agreement :
  threshold:float -> event list -> event list -> int * int * int
