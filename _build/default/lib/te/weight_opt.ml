module Vec = Tmest_linalg.Vec
module Topology = Tmest_net.Topology
module Routing = Tmest_net.Routing

type result = {
  topo : Topology.t;
  cost : float;
  max_utilization : float;
  initial_cost : float;
  initial_max_utilization : float;
  moves : int;
}

let with_weight topo ~link ~metric =
  if metric <= 0. then invalid_arg "Weight_opt.with_weight: metric <= 0";
  if link < 0 || link >= Topology.num_links topo then
    invalid_arg "Weight_opt.with_weight: link out of range";
  let links = Array.copy topo.Topology.links in
  if links.(link).Topology.lkind <> Topology.Interior then
    invalid_arg "Weight_opt.with_weight: not an interior link";
  links.(link) <- { links.(link) with Topology.metric };
  { topo with Topology.links }

let evaluate topo ~demands =
  Utilization.of_demands (Routing.shortest_path topo) ~demands

let optimize ?(max_passes = 6)
    ?(candidates = [ 0.25; 0.5; 0.8; 1.25; 2.; 4. ]) topo ~demands =
  let initial = evaluate topo ~demands in
  let best_topo = ref topo in
  let best = ref initial in
  let moves = ref 0 in
  let improved_in_pass = ref true in
  let passes = ref 0 in
  while !improved_in_pass && !passes < max_passes do
    incr passes;
    improved_in_pass := false;
    (* Scan busiest links first: that is where a weight change moves
       the most traffic. *)
    let order =
      Topology.interior_links !best_topo
      |> List.map (fun l -> l.Topology.link_id)
      |> List.sort (fun a b ->
             compare
               (!best).Utilization.utilization.(b)
               (!best).Utilization.utilization.(a))
    in
    List.iter
      (fun link ->
        let current = (!best_topo).Topology.links.(link).Topology.metric in
        List.iter
          (fun factor ->
            let metric =
              Stdlib.max 1. (Stdlib.min 1e5 (current *. factor))
            in
            if metric <> current then begin
              let trial_topo = with_weight !best_topo ~link ~metric in
              let trial = evaluate trial_topo ~demands in
              if trial.Utilization.cost < (!best).Utilization.cost *. (1. -. 1e-9)
              then begin
                best_topo := trial_topo;
                best := trial;
                incr moves;
                improved_in_pass := true
              end
            end)
          candidates)
      order
  done;
  {
    topo = !best_topo;
    cost = (!best).Utilization.cost;
    max_utilization = (!best).Utilization.max_utilization;
    initial_cost = initial.Utilization.cost;
    initial_max_utilization = initial.Utilization.max_utilization;
    moves = !moves;
  }
