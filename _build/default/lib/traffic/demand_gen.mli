(** Synthetic demand time-series generator.

    Produces a [samples x P] matrix of demand rates (bits/s) whose
    statistical fingerprint matches the paper's measured data; see
    {!Spec} for the properties and the knobs that control them. *)

type ground_truth = {
  demands : Tmest_linalg.Mat.t;  (** K x P, bits/s, K = spec.samples *)
  mean_demands : Tmest_linalg.Mat.t;
      (** K x P noise-free demand means (the latent process the noise is
          added to; useful for tests) *)
  base_fanouts : Tmest_linalg.Mat.t;  (** N x N, rows sum to 1, diag 0 *)
  node_activity : Tmest_linalg.Vec.t;  (** per-node relative volume *)
}

(** [generate spec topo] draws the demand process for [topo] (which must
    have [spec.nodes] nodes).  Deterministic in [spec.seed]. *)
val generate : Spec.t -> Tmest_net.Topology.t -> ground_truth
