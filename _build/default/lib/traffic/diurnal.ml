type t = {
  base : float;
  peak_hour : float;
  concentration : float;
  shoulder_hour : float;
  shoulder_gain : float;
}

let two_pi = 8. *. atan 1.

let bump ~center ~kappa hour =
  let theta = two_pi *. (hour -. center) /. 24. in
  exp (kappa *. (cos theta -. 1.))

let value t ~hour =
  let main = bump ~center:t.peak_hour ~kappa:t.concentration hour in
  let shoulder =
    t.shoulder_gain *. bump ~center:t.shoulder_hour ~kappa:t.concentration hour
  in
  t.base +. ((1. -. t.base) *. (main +. shoulder) /. (1. +. t.shoulder_gain))

let samples t ~count =
  if count <= 0 then invalid_arg "Diurnal.samples: count must be positive";
  Array.init count (fun k ->
      value t ~hour:(24. *. float_of_int k /. float_of_int count))

(* European business/evening traffic peaks in the late afternoon GMT;
   the American profile peaks a few hours later, so the busy periods
   overlap around 18:00 GMT (paper Fig. 1). *)
let europe =
  {
    base = 0.35;
    peak_hour = 17.0;
    concentration = 2.2;
    shoulder_hour = 9.5;
    shoulder_gain = 0.35;
  }

let america =
  {
    base = 0.32;
    peak_hour = 20.5;
    concentration = 1.9;
    shoulder_hour = 14.0;
    shoulder_gain = 0.30;
  }
