type t = {
  name : string;
  seed : int;
  nodes : int;
  directed_links : int;
  cities : (string * float * float) array;
  diurnal : Diurnal.t;
  zipf_alpha : float;
  locality : float;
  dominant_per_node : int;
  phi : float;
  c : float;
  fanout_drift : float;
  small_fanout_noise : float;
  peak_total_bps : float;
  samples : int;
  busy_start : int;
  busy_len : int;
}

(* The shared busy period: samples 204..253 = 17:00-21:10 GMT, 250 min,
   where the European and American busy periods overlap (paper Fig. 1). *)
let busy_start_default = 204
let busy_len_default = 50

let europe =
  {
    name = "europe";
    seed = 20041025;
    nodes = 12;
    directed_links = 72;
    cities = Tmest_net.Topology.european_cities;
    diurnal = Diurnal.europe;
    zipf_alpha = 1.8;
    locality = 0.15;
    dominant_per_node = 2;
    phi = 0.002;
    c = 1.6;
    fanout_drift = 0.05;
    small_fanout_noise = 0.35;
    peak_total_bps = 30e9;
    samples = 288;
    busy_start = busy_start_default;
    busy_len = busy_len_default;
  }

let america =
  {
    name = "america";
    seed = 20041027;
    nodes = 25;
    directed_links = 284;
    cities = Tmest_net.Topology.american_cities;
    diurnal = Diurnal.america;
    zipf_alpha = 1.5;
    locality = 0.45;
    dominant_per_node = 3;
    phi = 0.004;
    c = 1.5;
    fanout_drift = 0.05;
    small_fanout_noise = 0.4;
    peak_total_bps = 80e9;
    samples = 288;
    busy_start = busy_start_default;
    busy_len = busy_len_default;
  }

let scaled ~nodes ~directed_links t =
  if nodes > Array.length t.cities then
    invalid_arg "Spec.scaled: not enough cities for requested size";
  { t with nodes; directed_links; name = t.name ^ "-small" }
