(** Diurnal total-traffic profiles.

    The paper's Figure 1 shows both subnetworks following a clear daily
    cycle with pronounced, partly overlapping busy periods (around 18:00
    GMT).  We model the normalized total traffic as a von-Mises-shaped
    bump over the 24-hour circle on top of a base load, plus an optional
    secondary (morning) shoulder. *)

type t = {
  base : float;  (** off-peak floor, fraction of the peak (0..1) *)
  peak_hour : float;  (** centre of the main busy period, hours GMT *)
  concentration : float;  (** von Mises kappa; larger = narrower peak *)
  shoulder_hour : float;  (** centre of the secondary bump *)
  shoulder_gain : float;  (** relative height of the secondary bump *)
}

(** [value t ~hour] is the profile at [hour] (0..24, wraps), scaled so the
    main peak is ~1. *)
val value : t -> hour:float -> float

(** [samples t ~count] evaluates the profile at [count] evenly spaced
    instants over 24 h (e.g. 288 five-minute samples). *)
val samples : t -> count:int -> float array

(** Profiles used for the synthetic datasets: the European busy period
    is earlier and slightly narrower than the American one, and the two
    overlap around 18:00 GMT as in the paper. *)
val europe : t

val america : t
