(** Synthetic-dataset specifications.

    A spec fixes everything needed to regenerate a dataset: the topology
    budget (PoPs and directed-link count, matching the paper's networks),
    the diurnal profile, the spatial demand structure, and the noise
    model.  The defaults for [europe] and [america] are tuned so the
    generated data exhibits the properties measured in Section 5.2:

    - the top 20 % of demands carry ≈ 80 % of the traffic (Fig. 2-3);
    - fanouts of large demands are much more stable than the demands
      (Fig. 4-5);
    - 5-minute demand mean/variance follow [Var = phi * mean^c] with
      c ≈ 1.6 for Europe and 1.5 for America and a tight log-log fit
      (Fig. 6).  [phi] here is the generator's prefactor in peak-total
      units, calibrated so the largest demands carry 15-30 % relative
      5-minute noise (the paper's own phi depends on its undisclosed
      absolute scale; the shape — the exponent and fit quality — is what
      the reproduction preserves, with America noisier than Europe as in
      the paper);
    - the American network violates the gravity assumption more strongly
      (per-PoP dominating destinations), Europe less so (Fig. 7). *)

type t = {
  name : string;
  seed : int;
  nodes : int;
  directed_links : int;
  cities : (string * float * float) array;
  diurnal : Diurnal.t;
  zipf_alpha : float;  (** heavy-tail exponent of PoP activity weights *)
  locality : float;
      (** 0 = pure gravity fanouts; 1 = fanouts dominated by each PoP's
          own few destinations.  Drives the gravity-model misfit. *)
  dominant_per_node : int;  (** how many dominating destinations per PoP *)
  phi : float;  (** mean-variance scaling prefactor (normalized units) *)
  c : float;  (** mean-variance scaling exponent *)
  fanout_drift : float;  (** slow relative wander of fanouts over 24 h *)
  small_fanout_noise : float;
      (** extra relative fanout noise for the small demands *)
  peak_total_bps : float;  (** total network traffic at the diurnal peak *)
  samples : int;  (** number of 5-minute samples (288 = 24 h) *)
  busy_start : int;  (** first sample of the evaluation busy period *)
  busy_len : int;  (** busy-period length in samples (50 = 250 min) *)
}

val europe : t
val america : t

(** [scaled ~nodes ~directed_links t] shrinks a spec to a smaller network
    (for fast tests), keeping the statistical knobs. *)
val scaled : nodes:int -> directed_links:int -> t -> t
