lib/traffic/spec.ml: Array Diurnal Tmest_net
