lib/traffic/diurnal.mli:
