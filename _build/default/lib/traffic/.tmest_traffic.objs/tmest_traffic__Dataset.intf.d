lib/traffic/dataset.mli: Demand_gen Spec Tmest_linalg Tmest_net
