lib/traffic/demand_gen.ml: Array Diurnal List Spec Stdlib Tmest_linalg Tmest_net Tmest_stats
