lib/traffic/demand_gen.mli: Spec Tmest_linalg Tmest_net
