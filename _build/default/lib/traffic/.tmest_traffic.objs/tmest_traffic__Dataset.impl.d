lib/traffic/dataset.ml: Array Demand_gen List Spec Stdlib Tmest_linalg Tmest_net Tmest_stats
