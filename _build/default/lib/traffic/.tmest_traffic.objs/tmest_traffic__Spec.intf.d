lib/traffic/spec.mli: Diurnal
