lib/traffic/diurnal.ml: Array
