module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Rng = Tmest_stats.Rng
module Dist = Tmest_stats.Dist
module Odpairs = Tmest_net.Odpairs

type ground_truth = {
  demands : Mat.t;
  mean_demands : Mat.t;
  base_fanouts : Mat.t;
  node_activity : Vec.t;
}

(* Per-source fanout rows: a mixture of global destination popularity
   (the gravity-friendly part) and a handful of dominating destinations
   specific to the source (the part that defeats gravity, Section 5.2.4).
   Dominating destinations are biased towards geographically distant
   PoPs — big flows tend to be long-haul (content to eyeballs across the
   continent), and their paths cross many links. *)
let base_fanouts rng (spec : Spec.t) (topo : Tmest_net.Topology.t) =
  let n = spec.Spec.nodes in
  let popularity = Dist.zipf_weights ~n ~alpha:spec.Spec.zipf_alpha in
  let pop_order = Array.init n (fun i -> i) in
  Rng.shuffle rng pop_order;
  let dest_pop = Array.make n 0. in
  Array.iteri (fun rank node -> dest_pop.(node) <- popularity.(rank)) pop_order;
  let coord i =
    let nd = topo.Tmest_net.Topology.nodes.(i) in
    (nd.Tmest_net.Topology.lat, nd.Tmest_net.Topology.lon)
  in
  let dist2 a b =
    let la, lo = coord a and lb, lob = coord b in
    let d = ((la -. lb) ** 2.) +. ((lo -. lob) ** 2.) in
    1e-6 +. d
  in
  let weighted_sample_without_replacement weights k =
    let items = Array.mapi (fun i w -> (i, w)) weights in
    let chosen = ref [] in
    let active = Array.map (fun (_, w) -> w) items in
    for _ = 1 to k do
      let total = Array.fold_left ( +. ) 0. active in
      if total > 0. then begin
        let target = Rng.float rng *. total in
        let acc = ref 0. and pick = ref (-1) in
        Array.iteri
          (fun i w ->
            if !pick < 0 && w > 0. then begin
              acc := !acc +. w;
              if !acc >= target then pick := i
            end)
          active;
        let pick = if !pick < 0 then Array.length active - 1 else !pick in
        chosen := pick :: !chosen;
        active.(pick) <- 0.
      end
    done;
    List.rev !chosen
  in
  let fanouts = Mat.zeros n n in
  for src = 0 to n - 1 do
    (* Dominating destinations for this source, distance-biased. *)
    let weights =
      Array.init n (fun m -> if m = src then 0. else dist2 src m)
    in
    let k = Stdlib.min spec.Spec.dominant_per_node (n - 1) in
    let others = Array.of_list (weighted_sample_without_replacement weights k) in
    let dom_weight = Array.make n 0. in
    let shares =
      Dist.dirichlet rng (Array.make k 1.5)
    in
    for i = 0 to k - 1 do
      dom_weight.(others.(i)) <- shares.(i)
    done;
    let row_total = ref 0. in
    for dst = 0 to n - 1 do
      if dst <> src then begin
        let gravity_part = dest_pop.(dst) in
        let v =
          ((1. -. spec.Spec.locality) *. gravity_part)
          +. (spec.Spec.locality *. dom_weight.(dst))
        in
        Mat.set fanouts src dst v;
        row_total := !row_total +. v
      end
    done;
    for dst = 0 to n - 1 do
      if dst <> src then
        Mat.set fanouts src dst (Mat.get fanouts src dst /. !row_total)
    done
  done;
  (dest_pop, fanouts)

let generate (spec : Spec.t) topo =
  let n = Tmest_net.Topology.num_nodes topo in
  if n <> spec.Spec.nodes then
    invalid_arg "Demand_gen.generate: topology size does not match spec";
  let rng = Rng.create spec.Spec.seed in
  let p = Odpairs.count n in
  let k = spec.Spec.samples in
  let _dest_pop, fanouts = base_fanouts rng spec topo in
  (* Node activity: how much each PoP originates, heavy-tailed and
     independent of destination popularity. *)
  let act_weights = Dist.zipf_weights ~n ~alpha:spec.Spec.zipf_alpha in
  let act_order = Array.init n (fun i -> i) in
  Rng.shuffle rng act_order;
  let node_activity = Array.make n 0. in
  Array.iteri
    (fun rank node -> node_activity.(node) <- act_weights.(rank))
    act_order;
  (* Per-node diurnal phase shift (time zones inside a continent, user
     mix): +- ~1 h. *)
  let phase = Array.init n (fun _ -> Rng.uniform rng ~lo:(-1.2) ~hi:1.2) in
  (* Raw node totals before global normalization. *)
  let node_total = Mat.zeros k n in
  for step = 0 to k - 1 do
    let hour = 24. *. float_of_int step /. float_of_int k in
    for node = 0 to n - 1 do
      let d =
        Diurnal.value spec.Spec.diurnal ~hour:(hour +. phase.(node))
      in
      Mat.set node_total step node (node_activity.(node) *. d)
    done
  done;
  (* Normalize so the peak *total* network traffic equals 1, then scale
     to bits per second. *)
  let peak = ref 0. in
  for step = 0 to k - 1 do
    peak := Stdlib.max !peak (Vec.sum (Mat.row node_total step))
  done;
  let to_bps = spec.Spec.peak_total_bps /. !peak in
  (* Fanout wander: per-pair AR(1) in log space.  Innovations sized so
     the stationary relative std is [fanout_drift] for the large pairs
     and [fanout_drift + small_fanout_noise] for the small ones
     (Section 5.2.2: small demands' fanouts fluctuate relatively more). *)
  let rho = 0.992 in
  let base_share = Array.make p 0. in
  Odpairs.iter ~nodes:n (fun pair src dst ->
      base_share.(pair) <-
        node_activity.(src) *. Mat.get fanouts src dst);
  let share_median =
    Tmest_stats.Desc.median (Array.copy base_share)
  in
  let target_rel = Array.map
      (fun share ->
        if share >= share_median then spec.Spec.fanout_drift
        else spec.Spec.fanout_drift +. spec.Spec.small_fanout_noise)
      base_share
  in
  let innovation_std =
    Array.map (fun rel -> rel *. sqrt (1. -. (rho *. rho))) target_rel
  in
  let gamma = Array.make p 0. in
  (* Start at the stationary distribution. *)
  Array.iteri
    (fun pair std ->
      gamma.(pair) <-
        Dist.gaussian rng ~mu:0. ~sigma:(std /. sqrt (1. -. (rho *. rho))))
    innovation_std;
  let mean_demands = Mat.zeros k p in
  let demands = Mat.zeros k p in
  (* Interval noise: in units normalized by the peak total (where the
     paper fits phi and c), Var = phi * mean^c.  A Gamma draw with
     matched mean and variance keeps the law exact for the small demands
     too — a zero-clipped Gaussian would deflate their variance and bias
     the fitted exponent towards 2. *)
  let total = spec.Spec.peak_total_bps in
  let sample_demand mu_bps =
    if mu_bps <= 0. then 0.
    else begin
      let mu_norm = mu_bps /. total in
      let var_bps = spec.Spec.phi *. (mu_norm ** spec.Spec.c) *. total *. total in
      if var_bps <= 0. then mu_bps
      else begin
        let shape = mu_bps *. mu_bps /. var_bps in
        let scale = var_bps /. mu_bps in
        Dist.gamma rng ~shape ~scale
      end
    end
  in
  for step = 0 to k - 1 do
    (* Advance fanout wander and renormalize per source. *)
    Array.iteri
      (fun pair std ->
        gamma.(pair) <-
          (rho *. gamma.(pair)) +. Dist.gaussian rng ~mu:0. ~sigma:std)
      innovation_std;
    let row_norm = Array.make n 0. in
    let alpha = Array.make p 0. in
    Odpairs.iter ~nodes:n (fun pair src dst ->
        let a = Mat.get fanouts src dst *. exp gamma.(pair) in
        alpha.(pair) <- a;
        row_norm.(src) <- row_norm.(src) +. a;
        ignore dst);
    Odpairs.iter ~nodes:n (fun pair src _dst ->
        let a = alpha.(pair) /. row_norm.(src) in
        let mu = Mat.get node_total step src *. a *. to_bps in
        Mat.set mean_demands step pair mu;
        Mat.set demands step pair (sample_demand mu))
  done;
  { demands; mean_demands; base_fanouts = fanouts; node_activity }
