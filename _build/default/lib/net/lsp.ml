type t = {
  lsp_id : int;
  src : int;
  dst : int;
  bandwidth : float;
  path : int list;
}

let route_one cspf ~src ~dst ~bandwidth =
  match Cspf.reserve cspf ~src ~dst ~bandwidth with
  | Some path -> path
  | None -> (
      (* Fall back to the plain shortest path: the tunnel is still set
         up, just without honoring the constraint. *)
      match Cspf.route cspf ~src ~dst ~bandwidth:0. with
      | Some path -> path
      | None ->
          invalid_arg
            (Printf.sprintf "Lsp.mesh: no path from node %d to node %d" src
               dst))

let mesh cspf ~bandwidths =
  let topo = Cspf.topology cspf in
  let n = Topology.num_nodes topo in
  let p = Odpairs.count n in
  if Array.length bandwidths <> p then
    invalid_arg "Lsp.mesh: bandwidth vector has wrong dimension";
  let order = Array.init p (fun i -> i) in
  Array.sort
    (fun a b -> compare bandwidths.(b) bandwidths.(a))
    order;
  let lsps = Array.make p None in
  Array.iter
    (fun pair ->
      let src, dst = Odpairs.pair ~nodes:n pair in
      let bandwidth = bandwidths.(pair) in
      let path = route_one cspf ~src ~dst ~bandwidth in
      lsps.(pair) <- Some { lsp_id = pair; src; dst; bandwidth; path })
    order;
  Array.map
    (function Some l -> l | None -> assert false)
    lsps

let reroute cspf lsp =
  Cspf.release cspf ~path:lsp.path ~bandwidth:lsp.bandwidth;
  let path =
    route_one cspf ~src:lsp.src ~dst:lsp.dst ~bandwidth:lsp.bandwidth
  in
  { lsp with path }

let paths lsps =
  let arr = Array.make (Array.length lsps) [] in
  Array.iter (fun l -> arr.(l.lsp_id) <- l.path) lsps;
  arr
