(** Shortest paths over the interior links of a topology. *)

(** [shortest_path ?usable topo ~src ~dst] is the minimum-metric path from
    [src] to [dst] as a list of interior link ids (in travel order), or
    [None] if [dst] is unreachable.  [usable] filters links (default:
    all interior links); ties are broken toward fewer hops, then lower
    link ids, so paths are deterministic. *)
val shortest_path :
  ?usable:(Topology.link -> bool) ->
  Topology.t ->
  src:int ->
  dst:int ->
  int list option

(** [tree ?usable topo ~src] computes, for every node, the distance from
    [src] and the incoming link on the shortest-path tree ([-1] at the
    root / unreachable marked by [infinity]). *)
val tree :
  ?usable:(Topology.link -> bool) ->
  Topology.t ->
  src:int ->
  float array * int array

(** [path_of_tree topo parents ~src ~dst] reconstructs the link-id path
    from a [tree] result, or [None] if unreachable. *)
val path_of_tree :
  Topology.t -> int array -> src:int -> dst:int -> int list option

(** [path_metric topo path] sums the metrics along a link-id path. *)
val path_metric : Topology.t -> int list -> float
