(** MPLS label-switched paths and full-mesh setup.

    Global Crossing's measurement infrastructure rests on a full mesh of
    LSPs between core routers; per-LSP byte counters then give the exact
    traffic matrix.  [mesh] reproduces the setup: one LSP per ordered PoP
    pair, routed by CSPF in decreasing order of requested bandwidth. *)

type t = {
  lsp_id : int;  (** equals the OD-pair index of (src, dst) *)
  src : int;
  dst : int;
  bandwidth : float;  (** reserved bandwidth (bits/s) *)
  path : int list;  (** interior link ids, in travel order *)
}

(** [mesh cspf ~bandwidths] sets up a full mesh over the CSPF state:
    [bandwidths.(p)] is the requested bandwidth of OD pair [p].  LSPs are
    placed in decreasing bandwidth order (largest trunks get first pick,
    the usual TE practice); when no constrained path exists the LSP falls
    back to the unconstrained shortest path, mirroring an operator
    over-subscribing rather than leaving a pair dark.
    @raise Invalid_argument if the topology is disconnected for some pair. *)
val mesh : Cspf.t -> bandwidths:Tmest_linalg.Vec.t -> t array

(** [reroute cspf lsp] recomputes one LSP's path on the current CSPF
    state (e.g. after a link failure), returning the updated LSP.  The
    old reservation is released first. *)
val reroute : Cspf.t -> t -> t

(** [paths lsps] extracts the per-pair path array indexed by lsp_id. *)
val paths : t array -> int list array
