module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat

let count n = n * (n - 1)

let index ~nodes ~src ~dst =
  if src < 0 || src >= nodes || dst < 0 || dst >= nodes then
    invalid_arg "Odpairs.index: node out of range";
  if src = dst then invalid_arg "Odpairs.index: src = dst";
  (src * (nodes - 1)) + if dst < src then dst else dst - 1

let pair ~nodes p =
  if p < 0 || p >= count nodes then invalid_arg "Odpairs.pair: out of range";
  let src = p / (nodes - 1) in
  let r = p mod (nodes - 1) in
  let dst = if r < src then r else r + 1 in
  (src, dst)

let iter ~nodes f =
  for p = 0 to count nodes - 1 do
    let src, dst = pair ~nodes p in
    f p src dst
  done

let source ~nodes p = fst (pair ~nodes p)
let dest ~nodes p = snd (pair ~nodes p)

let matrix_of_vector ~nodes s =
  if Array.length s <> count nodes then
    invalid_arg "Odpairs.matrix_of_vector: dimension mismatch";
  let m = Mat.zeros nodes nodes in
  iter ~nodes (fun p src dst -> Mat.set m src dst s.(p));
  m

let vector_of_matrix ~nodes m =
  if Mat.rows m <> nodes || Mat.cols m <> nodes then
    invalid_arg "Odpairs.vector_of_matrix: dimension mismatch";
  let s = Vec.zeros (count nodes) in
  iter ~nodes (fun p src dst -> s.(p) <- Mat.get m src dst);
  s
