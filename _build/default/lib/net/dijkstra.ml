(* Dijkstra with a set-based priority queue.  Keys carry (distance,
   hops, node) so label comparison alone makes the tie-breaking
   deterministic: shorter metric first, then fewer hops, then smaller
   node id. *)

module Key = struct
  type t = float * int * int

  let compare = compare
end

module Pq = Set.Make (Key)

let default_usable (_ : Topology.link) = true

let tree ?(usable = default_usable) (topo : Topology.t) ~src =
  let n = Topology.num_nodes topo in
  if src < 0 || src >= n then invalid_arg "Dijkstra.tree: src out of range";
  let dist = Array.make n infinity in
  let hops = Array.make n max_int in
  let parent = Array.make n (-1) in
  let visited = Array.make n false in
  dist.(src) <- 0.;
  hops.(src) <- 0;
  let queue = ref (Pq.singleton (0., 0, src)) in
  while not (Pq.is_empty !queue) do
    let ((_, _, u) as key) = Pq.min_elt !queue in
    queue := Pq.remove key !queue;
    if not visited.(u) then begin
      visited.(u) <- true;
      List.iter
        (fun (link_id, v) ->
          let l = topo.Topology.links.(link_id) in
          if (not visited.(v)) && usable l then begin
            let nd = dist.(u) +. l.Topology.metric in
            let nh = hops.(u) + 1 in
            if
              nd < dist.(v)
              || (nd = dist.(v) && nh < hops.(v))
              || (nd = dist.(v) && nh = hops.(v) && parent.(v) > link_id)
            then begin
              dist.(v) <- nd;
              hops.(v) <- nh;
              parent.(v) <- link_id;
              queue := Pq.add (nd, nh, v) !queue
            end
          end)
        topo.Topology.outgoing.(u)
    end
  done;
  (dist, parent)

let path_of_tree (topo : Topology.t) parent ~src ~dst =
  if src = dst then Some []
  else if parent.(dst) < 0 then None
  else begin
    let rec walk node acc =
      if node = src then Some acc
      else begin
        let link_id = parent.(node) in
        if link_id < 0 then None
        else begin
          let l = topo.Topology.links.(link_id) in
          walk l.Topology.src (link_id :: acc)
        end
      end
    in
    walk dst []
  end

let shortest_path ?usable topo ~src ~dst =
  let _, parent = tree ?usable topo ~src in
  path_of_tree topo parent ~src ~dst

let path_metric (topo : Topology.t) path =
  List.fold_left
    (fun acc link_id -> acc +. topo.Topology.links.(link_id).Topology.metric)
    0. path
