(** Enumeration of origin-destination pairs.

    A network with [n] nodes has [P = n*(n-1)] ordered pairs of distinct
    nodes.  This module fixes the bijection between pair indices
    [0 .. P-1] and [(src, dst)] tuples used by every traffic matrix and
    routing matrix in the library. *)

(** [count n] is [n * (n - 1)]. *)
val count : int -> int

(** [index ~nodes ~src ~dst] is the pair index of [(src, dst)].
    @raise Invalid_argument if [src = dst] or out of range. *)
val index : nodes:int -> src:int -> dst:int -> int

(** [pair ~nodes p] is the [(src, dst)] of pair index [p]. *)
val pair : nodes:int -> int -> int * int

(** [iter ~nodes f] applies [f p src dst] for every ordered pair. *)
val iter : nodes:int -> (int -> int -> int -> unit) -> unit

(** [source ~nodes p] / [dest ~nodes p] project a pair index. *)
val source : nodes:int -> int -> int

val dest : nodes:int -> int -> int

(** [matrix_of_vector ~nodes s] reshapes a demand vector into an [n]x[n]
    matrix with zero diagonal; [vector_of_matrix] inverts it (the diagonal
    is ignored). *)
val matrix_of_vector : nodes:int -> Tmest_linalg.Vec.t -> Tmest_linalg.Mat.t

val vector_of_matrix : nodes:int -> Tmest_linalg.Mat.t -> Tmest_linalg.Vec.t
