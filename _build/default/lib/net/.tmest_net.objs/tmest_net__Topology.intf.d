lib/net/topology.mli: Format
