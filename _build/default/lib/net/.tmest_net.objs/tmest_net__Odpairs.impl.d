lib/net/odpairs.ml: Array Tmest_linalg
