lib/net/lsp.mli: Cspf Tmest_linalg
