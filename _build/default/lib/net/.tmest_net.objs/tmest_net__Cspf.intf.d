lib/net/cspf.mli: Topology
