lib/net/dijkstra.ml: Array List Set Topology
