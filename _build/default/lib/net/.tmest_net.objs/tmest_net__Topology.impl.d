lib/net/topology.ml: Array Float Format Hashtbl List Queue Stdlib Tmest_stats
