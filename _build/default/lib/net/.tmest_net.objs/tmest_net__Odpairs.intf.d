lib/net/odpairs.mli: Tmest_linalg
