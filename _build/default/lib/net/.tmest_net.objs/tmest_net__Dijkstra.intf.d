lib/net/dijkstra.mli: Topology
