lib/net/routing.mli: Tmest_linalg Topology
