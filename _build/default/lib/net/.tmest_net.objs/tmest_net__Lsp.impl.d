lib/net/lsp.ml: Array Cspf Odpairs Printf Topology
