lib/net/routing.ml: Array Cspf Dijkstra Float List Lsp Odpairs Printf Set Tmest_linalg Topology
