lib/net/cspf.ml: Array Dijkstra List Stdlib Topology
