type t = {
  topo : Topology.t;
  reserved : float array;
  up : bool array;
}

let create topo =
  let l = Topology.num_links topo in
  { topo; reserved = Array.make l 0.; up = Array.make l true }

let topology t = t.topo

let check_link t link_id =
  if link_id < 0 || link_id >= Topology.num_links t.topo then
    invalid_arg "Cspf: link id out of range"

let available t link_id =
  check_link t link_id;
  if not t.up.(link_id) then 0.
  else begin
    let l = t.topo.Topology.links.(link_id) in
    Stdlib.max 0. (l.Topology.capacity -. t.reserved.(link_id))
  end

let reserved t link_id =
  check_link t link_id;
  t.reserved.(link_id)

let route t ~src ~dst ~bandwidth =
  if bandwidth < 0. then invalid_arg "Cspf.route: negative bandwidth";
  let usable l =
    t.up.(l.Topology.link_id) && available t l.Topology.link_id >= bandwidth
  in
  Dijkstra.shortest_path ~usable t.topo ~src ~dst

let reserve t ~src ~dst ~bandwidth =
  match route t ~src ~dst ~bandwidth with
  | None -> None
  | Some path ->
      List.iter
        (fun link_id ->
          t.reserved.(link_id) <- t.reserved.(link_id) +. bandwidth)
        path;
      Some path

let release t ~path ~bandwidth =
  List.iter
    (fun link_id ->
      check_link t link_id;
      t.reserved.(link_id) <- Stdlib.max 0. (t.reserved.(link_id) -. bandwidth))
    path

let fail_link t link_id =
  check_link t link_id;
  t.up.(link_id) <- false

let restore_link t link_id =
  check_link t link_id;
  t.up.(link_id) <- true

let is_up t link_id =
  check_link t link_id;
  t.up.(link_id)

let reset t =
  Array.fill t.reserved 0 (Array.length t.reserved) 0.;
  Array.fill t.up 0 (Array.length t.up) true
