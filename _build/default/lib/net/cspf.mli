(** Constraint-based shortest path first with bandwidth reservations.

    Models the head-end behaviour of an MPLS-TE network (Section 5.1.1):
    an LSP with a bandwidth value is routed on the minimum-IGP-metric
    path among links with enough unreserved bandwidth, and RSVP-style
    reservations are subtracted from the links along the chosen path. *)

type t
(** Mutable reservation/failure state over one topology. *)

val create : Topology.t -> t

(** [topology t] is the underlying topology. *)
val topology : t -> Topology.t

(** [available t link_id] is the unreserved capacity of a link
    (0 when the link is failed). *)
val available : t -> int -> float

(** [reserved t link_id] is the currently reserved bandwidth. *)
val reserved : t -> int -> float

(** [route t ~src ~dst ~bandwidth] computes a constrained shortest path
    without reserving.  Returns interior link ids, or [None] if no path
    with enough headroom exists. *)
val route : t -> src:int -> dst:int -> bandwidth:float -> int list option

(** [reserve t ~src ~dst ~bandwidth] routes and books the reservation.
    Returns the path taken. *)
val reserve : t -> src:int -> dst:int -> bandwidth:float -> int list option

(** [release t ~path ~bandwidth] returns a reservation. *)
val release : t -> path:int list -> bandwidth:float -> unit

(** [fail_link t link_id] takes a link (and reservations crossing it stay
    booked; re-routing is the caller's policy) out of service;
    [restore_link] brings it back. *)
val fail_link : t -> int -> unit

val restore_link : t -> int -> unit

(** [is_up t link_id]. *)
val is_up : t -> int -> bool

(** [reset t] clears all reservations and failures. *)
val reset : t -> unit
