module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Lu = Tmest_linalg.Lu

exception Infeasible
exception Stalled

type outcome = Optimal of { x : Vec.t; objective : float } | Unbounded

(* Columns [0, n) are the problem variables; columns [n, n+m) are the
   phase-1 artificial variables (the j-th artificial is e_{j-n}).  The
   basis inverse is kept explicitly and refreshed from scratch every
   [refactor_period] pivots to stop drift. *)
type t = {
  m : int;
  n : int;
  a : Mat.t; (* rows pre-flipped so that b >= 0 *)
  b : Vec.t;
  basis : int array; (* length m *)
  binv : Mat.t; (* m x m, mutated in place *)
  xb : Vec.t; (* current basic values, = binv * b *)
  mutable pivots_since_refactor : int;
}

let eps = 1e-9
let refactor_period = 64

let column t j =
  if j < t.n then Mat.col t.a j
  else begin
    let e = Vec.zeros t.m in
    e.(j - t.n) <- 1.;
    e
  end

let in_basis t j = Array.exists (fun bj -> bj = j) t.basis

let refactor t =
  let bmat = Mat.zeros t.m t.m in
  for r = 0 to t.m - 1 do
    let cj = column t t.basis.(r) in
    for i = 0 to t.m - 1 do
      Mat.unsafe_set bmat i r cj.(i)
    done
  done;
  let inv = Lu.inverse bmat in
  Array.blit inv.Mat.data 0 t.binv.Mat.data 0 (t.m * t.m);
  let xb = Mat.matvec t.binv t.b in
  Array.blit xb 0 t.xb 0 t.m;
  t.pivots_since_refactor <- 0

(* Replace basis row [r] by column [q], given the simplex direction
   [d] = binv * A_q.  Rank-one update of binv and xb. *)
let pivot t ~row:r ~col:q ~dir:d =
  let piv = d.(r) in
  let n = t.m in
  for j = 0 to n - 1 do
    Mat.unsafe_set t.binv r j (Mat.unsafe_get t.binv r j /. piv)
  done;
  t.xb.(r) <- t.xb.(r) /. piv;
  for i = 0 to n - 1 do
    if i <> r && d.(i) <> 0. then begin
      let di = d.(i) in
      for j = 0 to n - 1 do
        Mat.unsafe_set t.binv i j
          (Mat.unsafe_get t.binv i j -. (di *. Mat.unsafe_get t.binv r j))
      done;
      t.xb.(i) <- t.xb.(i) -. (di *. t.xb.(r))
    end
  done;
  t.basis.(r) <- q;
  t.pivots_since_refactor <- t.pivots_since_refactor + 1;
  if t.pivots_since_refactor >= refactor_period then refactor t

(* One phase of simplex minimization.  [cost j] gives the objective
   coefficient of column [j]; [candidates] lists the columns allowed to
   enter.  Returns [None] on optimality, raises on stall. *)
let run_phase t ~cost ~candidates =
  let max_pivots = 2000 + (200 * (t.m + t.n)) in
  let degenerate_streak = ref 0 in
  let rec iterate k =
    if k > max_pivots then raise Stalled;
    let use_bland = !degenerate_streak > 40 in
    (* Simplex multipliers y = B^-T c_B, then reduced costs. *)
    let cb = Array.map (fun j -> cost j) t.basis in
    let y = Mat.tmatvec t.binv cb in
    let entering = ref (-1) in
    let best = ref (-.eps) in
    (try
       List.iter
         (fun j ->
           if not (in_basis t j) then begin
             let aj = column t j in
             let rj = cost j -. Vec.dot y aj in
             if use_bland then begin
               if rj < -.eps then begin
                 entering := j;
                 raise Exit
               end
             end
             else if rj < !best then begin
               best := rj;
               entering := j
             end
           end)
         candidates
     with Exit -> ());
    if !entering < 0 then None (* optimal *)
    else begin
      let q = !entering in
      let d = Mat.matvec t.binv (column t q) in
      (* Ratio test; prefer kicking artificials out on ties. *)
      let leave = ref (-1) in
      let best_ratio = ref infinity in
      for i = 0 to t.m - 1 do
        if d.(i) > eps then begin
          let ratio = t.xb.(i) /. d.(i) in
          let strictly_better = ratio < !best_ratio -. eps in
          let tie = abs_float (ratio -. !best_ratio) <= eps in
          let prefer =
            tie && !leave >= 0
            && ((t.basis.(i) >= t.n && t.basis.(!leave) < t.n)
               || (t.basis.(i) < t.basis.(!leave)
                  && (t.basis.(i) >= t.n) = (t.basis.(!leave) >= t.n)))
          in
          if strictly_better || !leave < 0 || prefer then begin
            best_ratio := ratio;
            leave := i
          end
        end
      done;
      if !leave < 0 then Some q (* unbounded direction *)
      else begin
        if !best_ratio <= eps then incr degenerate_streak
        else degenerate_streak := 0;
        pivot t ~row:!leave ~col:q ~dir:d;
        iterate (k + 1)
      end
    end
  in
  iterate 0

let all_columns lo hi =
  let rec build j acc = if j < lo then acc else build (j - 1) (j :: acc) in
  build (hi - 1) []

(* After phase 1, swap any artificial still basic (at zero) for an
   original column with a nonzero entry in that basis row; rows where no
   such column exists are redundant constraints and keep their artificial
   pinned at zero harmlessly. *)
let evict_artificials t =
  for r = 0 to t.m - 1 do
    if t.basis.(r) >= t.n then begin
      let found = ref (-1) in
      let j = ref 0 in
      while !found < 0 && !j < t.n do
        if not (in_basis t !j) then begin
          let d = Mat.matvec t.binv (column t !j) in
          if abs_float d.(r) > 1e-7 then found := !j
        end;
        incr j
      done;
      match !found with
      | -1 -> ()
      | q ->
          let d = Mat.matvec t.binv (column t q) in
          pivot t ~row:r ~col:q ~dir:d
    end
  done

let make a b =
  let m = Mat.rows a and n = Mat.cols a in
  if Array.length b <> m then invalid_arg "Simplex.make: dimension mismatch";
  let a = Mat.copy a and b = Vec.copy b in
  for i = 0 to m - 1 do
    if b.(i) < 0. then begin
      b.(i) <- -.b.(i);
      for j = 0 to n - 1 do
        Mat.unsafe_set a i j (-.(Mat.unsafe_get a i j))
      done
    end
  done;
  let t =
    {
      m;
      n;
      a;
      b;
      basis = Array.init m (fun i -> n + i);
      binv = Mat.identity m;
      xb = Vec.copy b;
      pivots_since_refactor = 0;
    }
  in
  let phase1_cost j = if j >= n then 1. else 0. in
  (match run_phase t ~cost:phase1_cost ~candidates:(all_columns 0 n) with
  | Some _ -> assert false (* phase 1 objective is bounded below by 0 *)
  | None -> ());
  let infeas = ref 0. in
  Array.iteri
    (fun r j -> if j >= n then infeas := !infeas +. t.xb.(r))
    t.basis;
  if !infeas > 1e-6 *. (1. +. Vec.norm1 b) then raise Infeasible;
  evict_artificials t;
  t

let extract t =
  let x = Vec.zeros t.n in
  Array.iteri
    (fun r j ->
      if j < t.n then x.(j) <- (if t.xb.(r) < 0. then 0. else t.xb.(r)))
    t.basis;
  x

let minimize t c =
  if Array.length c <> t.n then
    invalid_arg "Simplex.minimize: objective dimension mismatch";
  let cost j = if j < t.n then c.(j) else 0. in
  match run_phase t ~cost ~candidates:(all_columns 0 t.n) with
  | Some _ -> Unbounded
  | None ->
      let x = extract t in
      Optimal { x; objective = Vec.dot c x }

let maximize t c =
  match minimize t (Vec.scale (-1.) c) with
  | Unbounded -> Unbounded
  | Optimal { x; objective } -> Optimal { x; objective = -.objective }

let feasible_point = extract
let lp_min a b c = minimize (make a b) c
let lp_max a b c = maximize (make a b) c
