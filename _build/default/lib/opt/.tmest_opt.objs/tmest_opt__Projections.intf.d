lib/opt/projections.mli: Tmest_linalg
