lib/opt/scaling.ml: Array Stdlib Tmest_linalg
