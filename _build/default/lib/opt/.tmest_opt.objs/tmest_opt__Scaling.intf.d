lib/opt/scaling.mli: Tmest_linalg
