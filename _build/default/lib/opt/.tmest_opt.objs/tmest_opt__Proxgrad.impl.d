lib/opt/proxgrad.ml: Array Tmest_linalg Tmest_stats
