lib/opt/nnls.ml: Array Stdlib Tmest_linalg
