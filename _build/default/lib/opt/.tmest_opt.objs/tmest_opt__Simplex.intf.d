lib/opt/simplex.mli: Tmest_linalg
