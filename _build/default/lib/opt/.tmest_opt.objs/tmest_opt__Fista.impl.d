lib/opt/fista.ml: Tmest_linalg
