lib/opt/projections.ml: Array Stdlib Tmest_linalg
