lib/opt/proxgrad.mli: Tmest_linalg
