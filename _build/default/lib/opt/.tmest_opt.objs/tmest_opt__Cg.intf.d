lib/opt/cg.mli: Tmest_linalg
