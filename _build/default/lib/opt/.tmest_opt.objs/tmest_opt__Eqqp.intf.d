lib/opt/eqqp.mli: Tmest_linalg
