lib/opt/nnls.mli: Tmest_linalg
