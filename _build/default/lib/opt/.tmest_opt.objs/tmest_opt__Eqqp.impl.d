lib/opt/eqqp.ml: Array Stdlib Tmest_linalg
