lib/opt/fista.mli: Tmest_linalg
