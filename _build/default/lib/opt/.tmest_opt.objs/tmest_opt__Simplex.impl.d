lib/opt/simplex.ml: Array List Tmest_linalg
