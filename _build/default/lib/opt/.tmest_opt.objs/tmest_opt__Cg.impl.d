lib/opt/cg.ml: Array Stdlib Tmest_linalg
