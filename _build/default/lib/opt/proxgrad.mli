(** Accelerated proximal-gradient method for composite objectives
    [f(x) + h(x)] with [f] smooth and [h] prox-friendly.

    The entropy ("tomogravity") estimator is solved with
    [f(s) = ‖R s − t‖²] and [h(s) = σ⁻² D(s ‖ prior)]; the proximal
    operator of a scaled generalized KL divergence has the closed form
    [prox(v) = c · W₀((p/c) · e^(v/c))] evaluated through the log-domain
    Lambert-W to avoid overflow. *)

type result = {
  x : Tmest_linalg.Vec.t;
  iterations : int;
  converged : bool;
}

(** [solve ~dim ~gradient ~prox ~lipschitz ()] minimizes [f + h] where
    [gradient] is ∇f, [prox step v] is [argmin_u h(u) + ‖u−v‖²/(2 step)],
    and [lipschitz] bounds ∇f's Lipschitz constant. *)
val solve :
  ?x0:Tmest_linalg.Vec.t ->
  ?max_iter:int ->
  ?tol:float ->
  dim:int ->
  gradient:(Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t) ->
  prox:(float -> Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t) ->
  lipschitz:float ->
  unit ->
  result

(** [kl_prox ~weight ~prior step v] is the proximal operator of
    [weight · D(· ‖ prior)] (generalized KL, [D(s‖p) = Σ s ln(s/p) − s + p])
    with step size [step], applied element-wise.  Entries with
    [prior <= 0] are mapped to 0. *)
val kl_prox :
  weight:float -> prior:Tmest_linalg.Vec.t -> float -> Tmest_linalg.Vec.t ->
  Tmest_linalg.Vec.t

(** [kl_divergence s p] is [Σ sᵢ ln(sᵢ/pᵢ) − sᵢ + pᵢ], with the usual
    conventions [0 ln 0 = 0]; infinite if some [sᵢ > 0] has [pᵢ = 0]. *)
val kl_divergence : Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t -> float
