(** Equality-constrained quadratic programming.

    Solves {v min ½ xᵀ H x − qᵀ x   subject to   C x = d v}
    via the KKT system, with an optional active-set refinement adding
    [x >= 0] — the form of the paper's constant-fanout estimation problem
    (Section 4.2.4). *)

type solution = {
  x : Tmest_linalg.Vec.t;
  multipliers : Tmest_linalg.Vec.t;  (** one per equality constraint *)
}

exception Singular_kkt

(** [solve ?ridge h q c d] solves the equality-constrained QP.  [ridge]
    (default 1e-10 relative) is added to [H]'s diagonal to keep the KKT
    system factorable when [H] is only positive semidefinite.
    @raise Singular_kkt when the KKT matrix is singular even after
    regularization (e.g. [C] has dependent rows). *)
val solve :
  ?ridge:float ->
  Tmest_linalg.Mat.t ->
  Tmest_linalg.Vec.t ->
  Tmest_linalg.Mat.t ->
  Tmest_linalg.Vec.t ->
  solution

(** [solve_nonneg ?ridge ?max_iter h q c d] additionally enforces
    [x >= 0] by an NNLS-style active set on the bounds: pin the most
    negative variable, re-solve, release pinned variables whose bound
    multiplier goes negative.  Returns the final iterate (primal feasible
    for the bounds up to tolerance). *)
val solve_nonneg :
  ?ridge:float ->
  ?max_iter:int ->
  Tmest_linalg.Mat.t ->
  Tmest_linalg.Vec.t ->
  Tmest_linalg.Mat.t ->
  Tmest_linalg.Vec.t ->
  solution
