module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat

type result = { x : Vec.t; iterations : int; converged : bool }

let project v = Vec.clamp_nonneg v

let solve ?x0 ?(max_iter = 2000) ?(tol = 1e-9) ~dim ~gradient ~lipschitz () =
  if lipschitz <= 0. then invalid_arg "Fista.solve: lipschitz must be > 0";
  let step = 1. /. lipschitz in
  let x = ref (match x0 with Some v -> project v | None -> Vec.zeros dim) in
  let y = ref (Vec.copy !x) in
  let momentum = ref 1. in
  let iterations = ref 0 in
  let converged = ref false in
  while (not !converged) && !iterations < max_iter do
    incr iterations;
    let g = gradient !y in
    let x_next = project (Vec.axpy (-.step) g !y) in
    let delta = Vec.sub x_next !x in
    (* Adaptive restart (O'Donoghue & Candès): kill the momentum when it
       opposes the direction of progress. *)
    let restart = Vec.dot (Vec.sub !y x_next) delta > 0. in
    let momentum_next =
      if restart then 1.
      else (1. +. sqrt (1. +. (4. *. !momentum *. !momentum))) /. 2.
    in
    let beta = if restart then 0. else (!momentum -. 1.) /. momentum_next in
    y := Vec.axpy beta delta x_next;
    if Vec.norm2 delta <= tol *. (1. +. Vec.norm2 x_next) then
      converged := true;
    x := x_next;
    momentum := momentum_next
  done;
  { x = !x; iterations = !iterations; converged = !converged }

let lipschitz_of_op ?(iters = 60) ~dim apply =
  if dim = 0 then 0.
  else begin
    (* Power iteration with a deterministic, mildly irregular start so we
       do not begin orthogonal to the principal eigenvector. *)
    let v = ref (Vec.init dim (fun i -> 1. +. (0.01 *. float_of_int (i mod 7)))) in
    let lambda = ref 0. in
    let n0 = Vec.norm2 !v in
    v := Vec.scale (1. /. n0) !v;
    for _ = 1 to iters do
      let w = apply !v in
      let n = Vec.norm2 w in
      if n > 0. then begin
        lambda := n;
        v := Vec.scale (1. /. n) w
      end
    done;
    (* Small safety margin: an underestimated Lipschitz constant breaks
       the FISTA step-size guarantee. *)
    !lambda *. 1.01
  end

let lipschitz_of_gram ?iters h =
  if Mat.rows h <> Mat.cols h then
    invalid_arg "Fista.lipschitz_of_gram: matrix not square";
  lipschitz_of_op ?iters ~dim:(Mat.rows h) (fun v -> Mat.matvec h v)
