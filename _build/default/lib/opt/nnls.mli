(** Non-negative least squares: Lawson–Hanson active-set algorithm.

    Solves {v min ‖A x − b‖₂  subject to  x >= 0 v} exactly (up to
    tolerance), by growing a passive set of strictly positive variables
    and solving unconstrained least squares on it. *)

type result = {
  x : Tmest_linalg.Vec.t;
  residual_norm : float;  (** ‖A x − b‖₂ at the solution *)
  iterations : int;
}

(** [solve ?max_iter ?tol a b] solves the NNLS problem.  [tol] bounds the
    dual feasibility (default scales with the problem); [max_iter] defaults
    to [3 * cols]. *)
val solve :
  ?max_iter:int ->
  ?tol:float ->
  Tmest_linalg.Mat.t ->
  Tmest_linalg.Vec.t ->
  result
