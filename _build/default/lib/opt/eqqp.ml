module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Lu = Tmest_linalg.Lu

type solution = { x : Vec.t; multipliers : Vec.t }

exception Singular_kkt

let kkt_solve ~ridge h q c d =
  let n = Mat.cols h and m = Mat.rows c in
  if Mat.rows h <> n then invalid_arg "Eqqp: H must be square";
  if Mat.cols c <> n then invalid_arg "Eqqp: C column mismatch";
  if Array.length q <> n || Array.length d <> m then
    invalid_arg "Eqqp: vector dimension mismatch";
  let kkt = Mat.zeros (n + m) (n + m) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Mat.unsafe_set kkt i j (Mat.unsafe_get h i j)
    done;
    Mat.unsafe_set kkt i i (Mat.unsafe_get kkt i i +. ridge)
  done;
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let v = Mat.unsafe_get c i j in
      Mat.unsafe_set kkt (n + i) j v;
      Mat.unsafe_set kkt j (n + i) v
    done
  done;
  let rhs = Array.append q d in
  let sol = try Lu.solve_system kkt rhs with Lu.Singular _ -> raise Singular_kkt in
  (Array.sub sol 0 n, Array.sub sol n m)

let default_ridge h =
  let n = Mat.rows h in
  let max_diag = ref 0. in
  for i = 0 to n - 1 do
    max_diag := Stdlib.max !max_diag (abs_float (Mat.get h i i))
  done;
  1e-10 *. Stdlib.max !max_diag 1.

let solve ?ridge h q c d =
  let ridge = match ridge with Some r -> r | None -> default_ridge h in
  let x, multipliers = kkt_solve ~ridge h q c d in
  { x; multipliers }

(* Reduced solve with the variables in [pinned] fixed at zero: drop those
   columns (and rows of H). *)
let solve_reduced ~ridge h q c d pinned =
  let n = Mat.cols h in
  let free = ref [] in
  for j = n - 1 downto 0 do
    if not pinned.(j) then free := j :: !free
  done;
  let free = Array.of_list !free in
  let nf = Array.length free in
  let hf = Mat.init nf nf (fun i j -> Mat.get h free.(i) free.(j)) in
  let qf = Array.map (fun j -> q.(j)) free in
  let cf = Mat.init (Mat.rows c) nf (fun i j -> Mat.get c i free.(j)) in
  let xf, nu = kkt_solve ~ridge hf qf cf d in
  let x = Vec.zeros n in
  Array.iteri (fun k j -> x.(j) <- xf.(k)) free;
  (x, nu)

let solve_nonneg ?ridge ?(max_iter = 200) h q c d =
  let ridge = match ridge with Some r -> r | None -> default_ridge h in
  let n = Mat.cols h in
  let pinned = Array.make n false in
  let tol = 1e-9 in
  let x = ref (Vec.zeros n) in
  let nu = ref (Vec.zeros (Mat.rows c)) in
  let finished = ref false in
  let iter = ref 0 in
  while (not !finished) && !iter < max_iter do
    incr iter;
    let xi, nui = solve_reduced ~ridge h q c d pinned in
    x := xi;
    nu := nui;
    (* Pin every negative free variable at once (block pinning): far
       fewer KKT factorizations than one-at-a-time, and any variable
       pinned too eagerly is released by the multiplier check below. *)
    let pinned_any = ref false in
    for j = 0 to n - 1 do
      if (not pinned.(j)) && xi.(j) < -.tol then begin
        pinned.(j) <- true;
        pinned_any := true
      end
    done;
    if !pinned_any then ()
    else begin
      (* Bound multipliers mu = Hx − q − Cᵀnu; release the most negative. *)
      let grad = Vec.sub (Mat.matvec h xi) q in
      let ct_nu = Mat.tmatvec c nui in
      let release = ref (-1) in
      let release_val = ref (-.tol) in
      for j = 0 to n - 1 do
        if pinned.(j) then begin
          let mu = grad.(j) -. ct_nu.(j) in
          if mu < !release_val then begin
            release_val := mu;
            release := j
          end
        end
      done;
      if !release >= 0 then pinned.(!release) <- false else finished := true
    end
  done;
  { x = Vec.clamp_nonneg !x; multipliers = !nu }
