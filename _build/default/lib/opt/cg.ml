module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat

type result = {
  x : Vec.t;
  iterations : int;
  residual_norm : float;
  converged : bool;
}

let solve ?x0 ?max_iter ?(tol = 1e-10) ~apply ~b () =
  let dim = Array.length b in
  let max_iter = match max_iter with Some k -> k | None -> 2 * dim in
  let x = ref (match x0 with Some v -> Vec.copy v | None -> Vec.zeros dim) in
  let r = ref (Vec.sub b (apply !x)) in
  let p = ref (Vec.copy !r) in
  let rs = ref (Vec.dot !r !r) in
  let target = tol *. (Vec.norm2 b +. 1e-300) in
  let iterations = ref 0 in
  while sqrt !rs > target && !iterations < max_iter do
    incr iterations;
    let ap = apply !p in
    let pap = Vec.dot !p ap in
    if pap <= 0. then begin
      (* Null-space direction of a semidefinite operator: stop here. *)
      rs := 0.
    end
    else begin
      let alpha = !rs /. pap in
      x := Vec.axpy alpha !p !x;
      r := Vec.axpy (-.alpha) ap !r;
      let rs' = Vec.dot !r !r in
      let beta = rs' /. !rs in
      p := Vec.axpy beta !p !r;
      rs := rs'
    end
  done;
  let residual_norm = Vec.norm2 (Vec.sub b (apply !x)) in
  {
    x = !x;
    iterations = !iterations;
    residual_norm;
    converged = residual_norm <= Stdlib.max target (10. *. target);
  }

let solve_mat ?max_iter ?tol a b =
  if Mat.rows a <> Mat.cols a then invalid_arg "Cg.solve_mat: not square";
  solve ?max_iter ?tol ~apply:(fun v -> Mat.matvec a v) ~b ()

let lsqr_normal ?max_iter ?tol ~matvec ~tmatvec ~b () =
  let apply v = tmatvec (matvec v) in
  let rhs = tmatvec b in
  solve ?max_iter ?tol ~apply ~b:rhs ()
