(** Two-phase primal simplex for linear programs in standard form:

    {v  min / max  cᵀx   subject to   A x = b,  x >= 0  v}

    The solver keeps its basis (and basis inverse) between calls, so a
    sequence of objectives over the same feasible region — the worst-case
    bound computation solves 2·P programs over one region — pays the
    phase-1 cost only once and warm-starts every subsequent solve. *)

type t
(** Mutable solver state for one feasible region [{x >= 0 | Ax = b}]. *)

exception Infeasible
(** Raised by [make] when the region is empty. *)

exception Stalled
(** Raised when the pivot limit is exceeded (should not happen with
    Bland's rule; indicates severe numerical trouble). *)

type outcome =
  | Optimal of { x : Tmest_linalg.Vec.t; objective : float }
  | Unbounded

(** [make a b] prepares the region [{x >= 0 | a x = b}] and finds an initial
    basic feasible solution (phase 1).
    @raise Infeasible when no feasible point exists. *)
val make : Tmest_linalg.Mat.t -> Tmest_linalg.Vec.t -> t

(** [minimize t c] minimizes [cᵀx] over the region, starting from the
    current basis. *)
val minimize : t -> Tmest_linalg.Vec.t -> outcome

(** [maximize t c] maximizes [cᵀx]. *)
val maximize : t -> Tmest_linalg.Vec.t -> outcome

(** [feasible_point t] is the current basic feasible solution. *)
val feasible_point : t -> Tmest_linalg.Vec.t

(** [lp_min a b c] and [lp_max a b c] are one-shot conveniences. *)
val lp_min : Tmest_linalg.Mat.t -> Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t -> outcome

val lp_max : Tmest_linalg.Mat.t -> Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t -> outcome
