module Vec = Tmest_linalg.Vec
module Lambert = Tmest_stats.Lambert

type result = { x : Vec.t; iterations : int; converged : bool }

let solve ?x0 ?(max_iter = 3000) ?(tol = 1e-9) ~dim ~gradient ~prox
    ~lipschitz () =
  if lipschitz <= 0. then invalid_arg "Proxgrad.solve: lipschitz must be > 0";
  let step = 1. /. lipschitz in
  let x = ref (match x0 with Some v -> Vec.copy v | None -> Vec.zeros dim) in
  let y = ref (Vec.copy !x) in
  let momentum = ref 1. in
  let iterations = ref 0 in
  let converged = ref false in
  while (not !converged) && !iterations < max_iter do
    incr iterations;
    let g = gradient !y in
    let x_next = prox step (Vec.axpy (-.step) g !y) in
    let delta = Vec.sub x_next !x in
    let restart = Vec.dot (Vec.sub !y x_next) delta > 0. in
    let momentum_next =
      if restart then 1.
      else (1. +. sqrt (1. +. (4. *. !momentum *. !momentum))) /. 2.
    in
    let beta = if restart then 0. else (!momentum -. 1.) /. momentum_next in
    y := Vec.axpy beta delta x_next;
    if Vec.norm2 delta <= tol *. (1. +. Vec.norm2 x_next) then
      converged := true;
    x := x_next;
    momentum := momentum_next
  done;
  { x = !x; iterations = !iterations; converged = !converged }

(* Minimizer of  w·(s ln(s/p) − s + p) + (s − v)²/(2η)  over s >= 0:
   stationarity gives  c ln(s/p) + s = v  with  c = w·η, hence
   s = c · W₀((p/c)·e^(v/c)).  Computed via the log-domain W to survive
   v/c of thousands. *)
let kl_prox ~weight ~prior step v =
  if weight < 0. then invalid_arg "Proxgrad.kl_prox: negative weight";
  let c = weight *. step in
  if c = 0. then Vec.clamp_nonneg v
  else
    Vec.mapi
      (fun i vi ->
        let p = prior.(i) in
        if p <= 0. then 0.
        else begin
          let log_arg = log p -. log c +. (vi /. c) in
          c *. Lambert.w0_exp log_arg
        end)
      v

let kl_divergence s p =
  if Array.length s <> Array.length p then
    invalid_arg "Proxgrad.kl_divergence: dimension mismatch";
  let acc = ref 0. in
  (try
     Array.iteri
       (fun i si ->
         let pi = p.(i) in
         if si < 0. then invalid_arg "Proxgrad.kl_divergence: negative entry";
         if si = 0. then acc := !acc +. pi
         else if pi <= 0. then begin
           acc := infinity;
           raise Exit
         end
         else acc := !acc +. ((si *. log (si /. pi)) -. si +. pi))
       s
   with Exit -> ());
  !acc
