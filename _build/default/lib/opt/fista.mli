(** Accelerated projected-gradient (FISTA) solver for smooth convex
    objectives over the non-negative orthant.

    Used for the larger regularized estimation problems (Bayesian, Vardi)
    where forming and factoring normal equations per active-set change
    would be too slow. *)

type result = {
  x : Tmest_linalg.Vec.t;
  iterations : int;
  converged : bool;
}

(** [solve ~dim ~gradient ~lipschitz ()] minimizes a convex differentiable
    [f] with gradient [gradient] and gradient Lipschitz constant
    [lipschitz] over [{x >= 0}].

    - [x0]: starting point (default 0); negative entries are projected.
    - [max_iter]: default 2000.
    - [tol]: stop when the projected-gradient step moves [x] by less than
      [tol * (1 + ‖x‖)] in Euclidean norm (default 1e-9).
    - Restarts the momentum whenever it points uphill (adaptive restart),
      which matters for the badly conditioned small-regularization runs. *)
val solve :
  ?x0:Tmest_linalg.Vec.t ->
  ?max_iter:int ->
  ?tol:float ->
  dim:int ->
  gradient:(Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t) ->
  lipschitz:float ->
  unit ->
  result

(** [lipschitz_of_gram h] is the largest eigenvalue of the symmetric
    positive-semidefinite matrix [h], estimated by power iteration; a
    valid gradient Lipschitz constant for [f(x) = ½xᵀhx − qᵀx]. *)
val lipschitz_of_gram : ?iters:int -> Tmest_linalg.Mat.t -> float

(** [lipschitz_of_op ~dim apply] estimates ‖H‖₂ for a symmetric PSD
    operator given only matrix-vector products. *)
val lipschitz_of_op :
  ?iters:int -> dim:int -> (Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t) -> float
