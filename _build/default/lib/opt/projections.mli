(** Euclidean projections onto simple convex sets. *)

(** [simplex ?total v] is the Euclidean projection of [v] onto
    [{x >= 0 | Σ x = total}] (default [total = 1]), via the sort-based
    algorithm of Held/Wolfe/Crowder (also Duchi et al. 2008), O(n log n).
    @raise Invalid_argument if [total <= 0] or [v] is empty. *)
val simplex : ?total:float -> Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t

(** [block_simplex ~block v] projects each block of coordinates
    independently onto the probability simplex: [block.(i)] names the
    block of coordinate [i] (block ids must be [0..B-1]).  Used to
    enforce per-source fanout constraints [Σ_m α(n,m) = 1, α >= 0]. *)
val block_simplex : block:int array -> Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t
