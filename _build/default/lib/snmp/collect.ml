module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Rng = Tmest_stats.Rng

type config = {
  interval_s : float;
  jitter_s : float;
  loss_prob : float;
  width : Counter.width;
  pollers : int;
  seed : int;
}

let default_config =
  {
    interval_s = 300.;
    jitter_s = 10.;
    loss_prob = 0.01;
    width = Counter.Bits64;
    pollers = 4;
    seed = 1;
  }

type result = {
  rates : Mat.t;
  present : bool array array;
  polls_sent : int;
  polls_lost : int;
}

let run config ~true_rates ~samples ~pairs =
  if config.interval_s <= 0. then invalid_arg "Collect.run: interval <= 0";
  if config.jitter_s < 0. || config.jitter_s >= config.interval_s then
    invalid_arg "Collect.run: jitter must be in [0, interval)";
  if config.loss_prob < 0. || config.loss_prob >= 1. then
    invalid_arg "Collect.run: loss probability out of range";
  if config.pollers <= 0 then invalid_arg "Collect.run: need >= 1 poller";
  let rng = Rng.create config.seed in
  let interval = config.interval_s in
  (* Cumulative true byte counts per pair at nominal boundaries. *)
  let rate_rows = Array.init samples (fun k -> true_rates k) in
  let cum = Array.make_matrix (samples + 1) pairs 0. in
  for k = 0 to samples - 1 do
    for p = 0 to pairs - 1 do
      cum.(k + 1).(p) <- cum.(k).(p) +. (rate_rows.(k).(p) *. interval /. 8.)
    done
  done;
  let bytes_at ~pair t =
    let k = int_of_float (floor (t /. interval)) in
    let k = Stdlib.max 0 (Stdlib.min k (samples - 1)) in
    let dt = t -. (float_of_int k *. interval) in
    cum.(k).(pair) +. (rate_rows.(k).(pair) *. dt /. 8.)
  in
  (* Shared per-(poller, poll) jitter: a poller sweeps its routers in one
     burst; individual LSP reads land a few seconds apart. *)
  let poller_jitter =
    Array.init config.pollers (fun _ ->
        Array.init (samples + 1) (fun _ ->
            Rng.uniform rng ~lo:0. ~hi:config.jitter_s))
  in
  let rates = Mat.zeros samples pairs in
  let present = Array.init samples (fun _ -> Array.make pairs false) in
  let polls_sent = ref 0 and polls_lost = ref 0 in
  let wrap_mod =
    match config.width with
    | Counter.Bits32 -> 4294967296.
    | Counter.Bits64 -> 1.8446744073709552e19
  in
  for pair = 0 to pairs - 1 do
    let poller = pair mod config.pollers in
    let extra = Rng.uniform rng ~lo:0. ~hi:5. in
    (* Replay the successful polls, then difference them. *)
    let last_ok = ref None in
    for k = 0 to samples do
      incr polls_sent;
      let lost = Rng.float rng < config.loss_prob in
      (* Anchor the series: first and final polls always succeed, as a
         collector would retry until the series is bracketed. *)
      let lost = lost && k > 0 && k < samples in
      if lost then incr polls_lost
      else begin
        let jit =
          if config.jitter_s = 0. then 0.
          else Stdlib.min (config.jitter_s -. 1e-9)
                 (poller_jitter.(poller).(k) +. (extra /. 10.))
        in
        let t = (float_of_int k *. interval) +. jit in
        let reading = Float.rem (bytes_at ~pair t) wrap_mod in
        (match !last_ok with
        | None -> ()
        | Some (k0, t0, c0) ->
            let bytes =
              Counter.delta ~width:config.width ~previous:c0 ~current:reading
            in
            let rate = bytes *. 8. /. (t -. t0) in
            for j = k0 to k - 1 do
              Mat.set rates j pair rate;
              present.(j).(pair) <- k = k0 + 1
            done);
        last_ok := Some (k, t, reading)
      end
    done
  done;
  { rates; present; polls_sent = !polls_sent; polls_lost = !polls_lost }

let mean_absolute_rate_error result ~true_rates =
  let samples = Mat.rows result.rates and pairs = Mat.cols result.rates in
  let total = ref 0. and count = ref 0 in
  for k = 0 to samples - 1 do
    let truth = true_rates k in
    for p = 0 to pairs - 1 do
      if result.present.(k).(p) then begin
        let err =
          abs_float (Mat.get result.rates k p -. truth.(p))
          /. Stdlib.max truth.(p) 1.
        in
        total := !total +. err;
        incr count
      end
    done
  done;
  if !count = 0 then 0. else !total /. float_of_int !count
