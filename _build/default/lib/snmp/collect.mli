(** The distributed SNMP collection pipeline of Section 5.1.2.

    Per-LSP byte counters sit on head-end routers; a set of pollers
    queries them every 5 minutes at fixed timestamps, with per-poll
    response-time jitter and UDP loss.  The collector corrects each rate
    for the length of the *real* measurement interval (recorded response
    times), which is what makes the recovered rates a uniform time
    series despite the jitter.

    The simulation integrates the ground-truth piecewise-constant rates
    into counters and replays the polling, returning the recovered
    traffic-matrix time series and a missing-sample mask. *)

type config = {
  interval_s : float;  (** nominal polling period (300 s) *)
  jitter_s : float;  (** max absolute response-time jitter per poll *)
  loss_prob : float;  (** probability a poll is lost (SNMP over UDP) *)
  width : Counter.width;  (** counter width on the routers *)
  pollers : int;  (** LSPs are spread round-robin over this many pollers *)
  seed : int;
}

val default_config : config

type result = {
  rates : Tmest_linalg.Mat.t;
      (** [samples x pairs] recovered rates (bits/s); entry [k] covers
          nominal interval [k] *)
  present : bool array array;
      (** [present.(k).(p)] is false when the poll ending interval [k]
          was lost — the rate there is the average over the longer gap,
          assigned to every missed interval *)
  polls_sent : int;
  polls_lost : int;
}

(** [run config ~true_rates ~samples ~pairs] replays the collection.
    [true_rates k] must give the ground-truth rate vector (bits/s)
    holding during nominal interval [k] (0 <= k < samples). *)
val run :
  config ->
  true_rates:(int -> Tmest_linalg.Vec.t) ->
  samples:int ->
  pairs:int ->
  result

(** [mean_absolute_rate_error result ~true_rates] is the mean over all
    present samples of |recovered - true| / max(true, 1) — a pipeline
    health metric used by tests and the quickstart example. *)
val mean_absolute_rate_error :
  result -> true_rates:(int -> Tmest_linalg.Vec.t) -> float
