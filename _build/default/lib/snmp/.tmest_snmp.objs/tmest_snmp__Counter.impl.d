lib/snmp/counter.ml: Float
