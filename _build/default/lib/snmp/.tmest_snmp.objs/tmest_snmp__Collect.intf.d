lib/snmp/collect.mli: Counter Tmest_linalg
