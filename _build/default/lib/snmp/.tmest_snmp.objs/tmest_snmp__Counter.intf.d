lib/snmp/counter.mli:
