lib/snmp/collect.ml: Array Counter Float Stdlib Tmest_linalg Tmest_stats
