type width = Bits32 | Bits64

type t = { width : width; mutable value : float }

let modulus = function Bits32 -> 4294967296. | Bits64 -> 1.8446744073709552e19

let create width = { width; value = 0. }

let advance t ~bytes =
  if bytes < 0. then invalid_arg "Counter.advance: negative byte count";
  let m = modulus t.width in
  t.value <- Float.rem (t.value +. bytes) m

let read t = t.value

let delta ~width ~previous ~current =
  if current >= previous then current -. previous
  else current -. previous +. modulus width
