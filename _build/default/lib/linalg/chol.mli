(** Cholesky factorization of symmetric positive-definite matrices. *)

type t
(** A factorization [A = L*Lᵀ] with [L] lower triangular. *)

exception Not_positive_definite of int
(** Raised when a diagonal pivot is non-positive; payload is its index. *)

(** [factor a] factors the symmetric positive-definite matrix [a].  Only the
    lower triangle of [a] is read.
    @raise Not_positive_definite if a pivot fails.
    @raise Invalid_argument if [a] is not square. *)
val factor : Mat.t -> t

(** [factor_regularized ?ridge a] adds [ridge] (default [1e-12] times the
    largest diagonal entry) to the diagonal before factoring, for
    nearly-singular normal equations. *)
val factor_regularized : ?ridge:float -> Mat.t -> t

(** [solve f b] solves [A x = b]. *)
val solve : t -> Vec.t -> Vec.t

(** [lower f] is the lower-triangular factor [L]. *)
val lower : t -> Mat.t

(** [log_det f] is [log det A], computed stably from the factor. *)
val log_det : t -> float

(** [solve_system a b] is [solve (factor a) b]. *)
val solve_system : Mat.t -> Vec.t -> Vec.t
