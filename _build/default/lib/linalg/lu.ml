type t = { lu : Mat.t; perm : int array; sign : float }

exception Singular of int

let factor a =
  if Mat.rows a <> Mat.cols a then invalid_arg "Lu.factor: matrix not square";
  let n = Mat.rows a in
  let lu = Mat.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* Partial pivoting: bring the largest |entry| of column k to the
       diagonal to bound the growth factor. *)
    let pivot_row = ref k in
    let pivot_mag = ref (abs_float (Mat.unsafe_get lu k k)) in
    for i = k + 1 to n - 1 do
      let m = abs_float (Mat.unsafe_get lu i k) in
      if m > !pivot_mag then begin
        pivot_mag := m;
        pivot_row := i
      end
    done;
    if !pivot_mag < 1e-300 then raise (Singular k);
    if !pivot_row <> k then begin
      sign := -. !sign;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- tmp;
      for j = 0 to n - 1 do
        let t = Mat.unsafe_get lu k j in
        Mat.unsafe_set lu k j (Mat.unsafe_get lu !pivot_row j);
        Mat.unsafe_set lu !pivot_row j t
      done
    end;
    let pivot = Mat.unsafe_get lu k k in
    for i = k + 1 to n - 1 do
      let factor = Mat.unsafe_get lu i k /. pivot in
      Mat.unsafe_set lu i k factor;
      if factor <> 0. then
        for j = k + 1 to n - 1 do
          Mat.unsafe_set lu i j
            (Mat.unsafe_get lu i j -. (factor *. Mat.unsafe_get lu k j))
        done
    done
  done;
  { lu; perm; sign = !sign }

let solve f b =
  let n = Mat.rows f.lu in
  if Array.length b <> n then invalid_arg "Lu.solve: dimension mismatch";
  let x = Array.init n (fun i -> b.(f.perm.(i))) in
  (* Forward substitution with unit lower-triangular L. *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.unsafe_get f.lu i j *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* Back substitution with U. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.unsafe_get f.lu i j *. x.(j))
    done;
    x.(i) <- !acc /. Mat.unsafe_get f.lu i i
  done;
  x

let solve_mat f b =
  let n = Mat.rows f.lu in
  if Mat.rows b <> n then invalid_arg "Lu.solve_mat: dimension mismatch";
  let x = Mat.zeros n (Mat.cols b) in
  for j = 0 to Mat.cols b - 1 do
    let xj = solve f (Mat.col b j) in
    for i = 0 to n - 1 do
      Mat.unsafe_set x i j xj.(i)
    done
  done;
  x

let det f =
  let n = Mat.rows f.lu in
  let d = ref f.sign in
  for i = 0 to n - 1 do
    d := !d *. Mat.unsafe_get f.lu i i
  done;
  !d

let inverse a = solve_mat (factor a) (Mat.identity (Mat.rows a))
let solve_system a b = solve (factor a) b
