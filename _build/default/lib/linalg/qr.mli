(** Householder QR factorization and least-squares solves. *)

type t
(** A factorization [A = Q*R] of an [m]x[n] matrix with [m >= n]. *)

exception Rank_deficient of int
(** Raised by [lstsq] when a diagonal entry of [R] is numerically zero;
    payload is the column index. *)

(** [factor a] factors [a] ([m >= n] required). *)
val factor : Mat.t -> t

(** [lstsq f b] is the least-squares solution of [A x ≈ b].
    @raise Rank_deficient if [A] does not have full column rank. *)
val lstsq : t -> Vec.t -> Vec.t

(** [r f] is the upper-triangular [n]x[n] factor. *)
val r : t -> Mat.t

(** [apply_qt f b] is [Qᵀ b] (length [m]). *)
val apply_qt : t -> Vec.t -> Vec.t

(** [solve_lstsq a b] is [lstsq (factor a) b]. *)
val solve_lstsq : Mat.t -> Vec.t -> Vec.t
