type t = {
  values : Vec.t;
  vectors : Mat.t;
}

(* Cyclic Jacobi: sweep all (p, q) pairs, rotating away the off-diagonal
   entry with the classic stable rotation; accumulate the rotations into
   the eigenvector matrix. *)
let symmetric ?(max_sweeps = 60) ?(tol = 1e-12) a =
  if Mat.rows a <> Mat.cols a then
    invalid_arg "Eigen.symmetric: matrix not square";
  let n = Mat.rows a in
  (* Work on a symmetrized copy. *)
  let m = Mat.init n n (fun i j -> if j <= i then Mat.get a i j else Mat.get a j i) in
  let v = Mat.identity n in
  let off_norm () =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let x = Mat.unsafe_get m i j in
        acc := !acc +. (x *. x)
      done
    done;
    sqrt !acc
  in
  let frob = Mat.frobenius m +. 1e-300 in
  let sweeps = ref 0 in
  while off_norm () > tol *. frob && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = Mat.unsafe_get m p q in
        if abs_float apq > 1e-300 then begin
          let app = Mat.unsafe_get m p p and aqq = Mat.unsafe_get m q q in
          let theta = (aqq -. app) /. (2. *. apq) in
          let t =
            let s = if theta >= 0. then 1. else -1. in
            s /. (abs_float theta +. sqrt ((theta *. theta) +. 1.))
          in
          let c = 1. /. sqrt ((t *. t) +. 1.) in
          let s = t *. c in
          (* Update rows/columns p and q of m. *)
          for k = 0 to n - 1 do
            let akp = Mat.unsafe_get m k p and akq = Mat.unsafe_get m k q in
            Mat.unsafe_set m k p ((c *. akp) -. (s *. akq));
            Mat.unsafe_set m k q ((s *. akp) +. (c *. akq))
          done;
          for k = 0 to n - 1 do
            let apk = Mat.unsafe_get m p k and aqk = Mat.unsafe_get m q k in
            Mat.unsafe_set m p k ((c *. apk) -. (s *. aqk));
            Mat.unsafe_set m q k ((s *. apk) +. (c *. aqk))
          done;
          (* Accumulate the rotation. *)
          for k = 0 to n - 1 do
            let vkp = Mat.unsafe_get v k p and vkq = Mat.unsafe_get v k q in
            Mat.unsafe_set v k p ((c *. vkp) -. (s *. vkq));
            Mat.unsafe_set v k q ((s *. vkp) +. (c *. vkq))
          done
        end
      done
    done
  done;
  let values = Array.init n (fun i -> Mat.get m i i) in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare values.(b) values.(a)) order;
  {
    values = Array.map (fun i -> values.(i)) order;
    vectors = Mat.select_cols v order;
  }

let spectral_norm a =
  let d = symmetric a in
  Array.fold_left (fun acc x -> Stdlib.max acc (abs_float x)) 0. d.values

let reconstruct d =
  let n = Array.length d.values in
  Mat.matmul
    (Mat.scale_cols d.vectors d.values)
    (Mat.transpose d.vectors)
  |> fun m -> Mat.init n n (fun i j -> Mat.get m i j)
