(** Symmetric eigendecomposition by the cyclic Jacobi method.

    Small dense symmetric matrices only (covariance spectra, exact
    Lipschitz constants); Jacobi is simple, unconditionally stable and
    accurate to machine precision for these sizes. *)

type t = {
  values : Vec.t;  (** eigenvalues, descending *)
  vectors : Mat.t;  (** column [j] is the eigenvector of [values.(j)] *)
}

(** [symmetric ?max_sweeps ?tol a] decomposes the symmetric matrix [a].
    Only the lower triangle is read.
    @raise Invalid_argument if [a] is not square. *)
val symmetric : ?max_sweeps:int -> ?tol:float -> Mat.t -> t

(** [spectral_norm a] is the largest absolute eigenvalue of the
    symmetric matrix [a]. *)
val spectral_norm : Mat.t -> float

(** [reconstruct d] is [V diag(values) Vᵀ] (for testing). *)
val reconstruct : t -> Mat.t
