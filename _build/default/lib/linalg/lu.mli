(** LU factorization with partial pivoting and linear solves. *)

type t
(** A factorization [P*A = L*U] of a square matrix [A]. *)

exception Singular of int
(** Raised when a pivot column is numerically zero; the payload is the
    elimination step at which the factorization broke down. *)

(** [factor a] factors the square matrix [a].
    @raise Singular if [a] is (numerically) singular.
    @raise Invalid_argument if [a] is not square. *)
val factor : Mat.t -> t

(** [solve f b] solves [A x = b] using the factorization [f]. *)
val solve : t -> Vec.t -> Vec.t

(** [solve_mat f b] solves [A X = B] column by column. *)
val solve_mat : t -> Mat.t -> Mat.t

(** [det f] is the determinant of the factored matrix. *)
val det : t -> float

(** [inverse a] is [a]⁻¹. Prefer [solve] when a solve suffices. *)
val inverse : Mat.t -> Mat.t

(** [solve_system a b] is [solve (factor a) b]. *)
val solve_system : Mat.t -> Vec.t -> Vec.t
