(* Householder QR in LAPACK-style compact storage: the k-th reflector
   v_k (with v_k(k) = 1 implicit) is stored below the diagonal of [qr],
   R on and above the diagonal, and the scalar beta_k in [beta]. *)

type t = { qr : Mat.t; beta : float array }

exception Rank_deficient of int

let factor a =
  let m = Mat.rows a and n = Mat.cols a in
  if m < n then invalid_arg "Qr.factor: need rows >= cols";
  let qr = Mat.copy a in
  let beta = Array.make n 0. in
  for k = 0 to n - 1 do
    (* Norm of the k-th column below (and including) the diagonal. *)
    let norm = ref 0. in
    for i = k to m - 1 do
      let x = Mat.unsafe_get qr i k in
      norm := !norm +. (x *. x)
    done;
    let norm = sqrt !norm in
    if norm > 0. then begin
      let akk = Mat.unsafe_get qr k k in
      let alpha = if akk >= 0. then -.norm else norm in
      let v0 = akk -. alpha in
      (* v = x - alpha*e1, normalized so v(k) = 1. *)
      if v0 <> 0. then begin
        for i = k + 1 to m - 1 do
          Mat.unsafe_set qr i k (Mat.unsafe_get qr i k /. v0)
        done;
        beta.(k) <- -.v0 /. alpha;
        Mat.unsafe_set qr k k alpha;
        (* Apply the reflector to the remaining columns. *)
        for j = k + 1 to n - 1 do
          let s = ref (Mat.unsafe_get qr k j) in
          for i = k + 1 to m - 1 do
            s := !s +. (Mat.unsafe_get qr i k *. Mat.unsafe_get qr i j)
          done;
          let s = beta.(k) *. !s in
          Mat.unsafe_set qr k j (Mat.unsafe_get qr k j -. s);
          for i = k + 1 to m - 1 do
            Mat.unsafe_set qr i j
              (Mat.unsafe_get qr i j -. (s *. Mat.unsafe_get qr i k))
          done
        done
      end
    end
  done;
  { qr; beta }

let apply_qt f b =
  let m = Mat.rows f.qr and n = Mat.cols f.qr in
  if Array.length b <> m then invalid_arg "Qr.apply_qt: dimension mismatch";
  let y = Array.copy b in
  for k = 0 to n - 1 do
    if f.beta.(k) <> 0. then begin
      let s = ref y.(k) in
      for i = k + 1 to m - 1 do
        s := !s +. (Mat.unsafe_get f.qr i k *. y.(i))
      done;
      let s = f.beta.(k) *. !s in
      y.(k) <- y.(k) -. s;
      for i = k + 1 to m - 1 do
        y.(i) <- y.(i) -. (s *. Mat.unsafe_get f.qr i k)
      done
    end
  done;
  y

let r f =
  let n = Mat.cols f.qr in
  Mat.init n n (fun i j -> if j >= i then Mat.unsafe_get f.qr i j else 0.)

let lstsq f b =
  let n = Mat.cols f.qr in
  let y = apply_qt f b in
  let x = Array.sub y 0 n in
  for i = n - 1 downto 0 do
    let rii = Mat.unsafe_get f.qr i i in
    if abs_float rii < 1e-300 then raise (Rank_deficient i);
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.unsafe_get f.qr i j *. x.(j))
    done;
    x.(i) <- !acc /. rii
  done;
  x

let solve_lstsq a b = lstsq (factor a) b
