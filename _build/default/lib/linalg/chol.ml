type t = { l : Mat.t }

exception Not_positive_definite of int

let factor a =
  if Mat.rows a <> Mat.cols a then
    invalid_arg "Chol.factor: matrix not square";
  let n = Mat.rows a in
  let l = Mat.zeros n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (Mat.unsafe_get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (Mat.unsafe_get l i k *. Mat.unsafe_get l j k)
      done;
      if i = j then begin
        if !acc <= 0. then raise (Not_positive_definite i);
        Mat.unsafe_set l i i (sqrt !acc)
      end
      else Mat.unsafe_set l i j (!acc /. Mat.unsafe_get l j j)
    done
  done;
  { l }

let factor_regularized ?ridge a =
  let n = Mat.rows a in
  let max_diag = ref 0. in
  for i = 0 to n - 1 do
    max_diag := Stdlib.max !max_diag (abs_float (Mat.get a i i))
  done;
  let ridge =
    match ridge with Some r -> r | None -> 1e-12 *. Stdlib.max !max_diag 1.
  in
  let b = Mat.copy a in
  for i = 0 to n - 1 do
    Mat.set b i i (Mat.get b i i +. ridge)
  done;
  factor b

let solve f b =
  let n = Mat.rows f.l in
  if Array.length b <> n then invalid_arg "Chol.solve: dimension mismatch";
  let y = Array.copy b in
  for i = 0 to n - 1 do
    let acc = ref y.(i) in
    for k = 0 to i - 1 do
      acc := !acc -. (Mat.unsafe_get f.l i k *. y.(k))
    done;
    y.(i) <- !acc /. Mat.unsafe_get f.l i i
  done;
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for k = i + 1 to n - 1 do
      acc := !acc -. (Mat.unsafe_get f.l k i *. y.(k))
    done;
    y.(i) <- !acc /. Mat.unsafe_get f.l i i
  done;
  y

let lower f = Mat.copy f.l

let log_det f =
  let n = Mat.rows f.l in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. log (Mat.unsafe_get f.l i i)
  done;
  2. *. !acc

let solve_system a b = solve (factor a) b
