lib/linalg/qr.mli: Mat Vec
