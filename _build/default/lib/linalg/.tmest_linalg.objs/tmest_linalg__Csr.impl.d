lib/linalg/csr.ml: Array Hashtbl List Mat Printf
