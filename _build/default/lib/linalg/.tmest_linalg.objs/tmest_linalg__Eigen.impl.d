lib/linalg/eigen.ml: Array Mat Stdlib Vec
