lib/linalg/lu.ml: Array Mat
