lib/linalg/eigen.mli: Mat Vec
