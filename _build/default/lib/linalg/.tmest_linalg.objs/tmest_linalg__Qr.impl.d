lib/linalg/qr.ml: Array Mat
