lib/linalg/mat.ml: Array Format Printf
