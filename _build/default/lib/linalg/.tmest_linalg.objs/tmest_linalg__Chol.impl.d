lib/linalg/chol.ml: Array Mat Stdlib
