lib/linalg/csr.mli: Mat Vec
