lib/stats/desc.ml: Array Stdlib Tmest_linalg
