lib/stats/desc.mli: Tmest_linalg
