lib/stats/rng.ml: Array Int64
