lib/stats/lambert.mli:
