lib/stats/dist.ml: Array Rng
