lib/stats/regress.mli:
