lib/stats/regress.ml: Array Desc
