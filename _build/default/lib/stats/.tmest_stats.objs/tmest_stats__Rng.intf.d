lib/stats/rng.mli:
