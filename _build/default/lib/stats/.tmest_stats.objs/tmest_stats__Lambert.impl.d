lib/stats/lambert.ml: Stdlib
