module Mat = Tmest_linalg.Mat

let mean xs =
  if Array.length xs = 0 then invalid_arg "Desc.mean: empty sample";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let sum_sq_dev xs =
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0. else sum_sq_dev xs /. float_of_int (n - 1)

let variance_biased xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Desc.variance_biased: empty sample";
  sum_sq_dev xs /. float_of_int n

let std xs = sqrt (variance xs)

let quantile q xs =
  if Array.length xs = 0 then invalid_arg "Desc.quantile: empty sample";
  if q < 0. || q > 1. then invalid_arg "Desc.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))
  end

let median xs = quantile 0.5 xs

let sample_mean_cov samples =
  let k = Array.length samples in
  if k = 0 then invalid_arg "Desc.sample_mean_cov: no samples";
  let l = Array.length samples.(0) in
  Array.iter
    (fun s ->
      if Array.length s <> l then
        invalid_arg "Desc.sample_mean_cov: ragged samples")
    samples;
  let mu = Array.make l 0. in
  Array.iter (fun s -> Array.iteri (fun j x -> mu.(j) <- mu.(j) +. x) s)
    samples;
  let kf = float_of_int k in
  Array.iteri (fun j x -> mu.(j) <- x /. kf) mu;
  let cov = Mat.zeros l l in
  Array.iter
    (fun s ->
      let d = Array.mapi (fun j x -> x -. mu.(j)) s in
      for i = 0 to l - 1 do
        if d.(i) <> 0. then
          for j = 0 to l - 1 do
            Mat.unsafe_set cov i j
              (Mat.unsafe_get cov i j +. (d.(i) *. d.(j) /. kf))
          done
      done)
    samples;
  (mu, cov)

let correlation xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Desc.correlation: length mismatch";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
  Array.iteri
    (fun i x ->
      let dx = x -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy))
    xs;
  if !sxx = 0. || !syy = 0. then 0. else !sxy /. sqrt (!sxx *. !syy)

let cumulative_share xs =
  if Array.length xs = 0 then invalid_arg "Desc.cumulative_share: empty";
  let sorted = Array.copy xs in
  Array.sort (fun a b -> compare b a) sorted;
  let total = Array.fold_left ( +. ) 0. sorted in
  if total <= 0. then Array.make (Array.length xs) 0.
  else begin
    let acc = ref 0. in
    Array.map
      (fun x ->
        acc := !acc +. x;
        !acc /. total)
      sorted
  end

let top_share ~fraction xs =
  if fraction < 0. || fraction > 1. then
    invalid_arg "Desc.top_share: fraction out of [0,1]";
  let shares = cumulative_share xs in
  let n = Array.length shares in
  let k = int_of_float (ceil (fraction *. float_of_int n)) in
  if k = 0 then 0. else shares.(Stdlib.min (k - 1) (n - 1))
