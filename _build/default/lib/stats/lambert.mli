(** The principal branch W₀ of the Lambert W function.

    W₀(x) is the solution of [w * exp w = x] for [x >= -1/e].  The entropy
    estimator's proximal step reduces to a Lambert-W evaluation, and the
    log-scaled variant keeps it stable when the argument overflows. *)

(** [w0 x] is W₀(x).
    @raise Invalid_argument if [x < -1/e]. *)
val w0 : float -> float

(** [w0_exp log_x] is W₀(exp log_x), computed without forming [exp log_x],
    so it is usable for [log_x] far beyond 709 where [exp] overflows. *)
val w0_exp : float -> float
