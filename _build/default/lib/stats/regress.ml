type line = { slope : float; intercept : float; r2 : float }

let ols xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Regress.ols: length mismatch";
  if n < 2 then invalid_arg "Regress.ols: need at least two points";
  let mx = Desc.mean xs and my = Desc.mean ys in
  let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
  Array.iteri
    (fun i x ->
      let dx = x -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy))
    xs;
  if !sxx = 0. then invalid_arg "Regress.ols: degenerate x sample";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if !syy = 0. then 1. else !sxy *. !sxy /. (!sxx *. !syy) in
  { slope; intercept; r2 }

type power_law = { phi : float; c : float; r2 : float }

let power_law means variances =
  if Array.length means <> Array.length variances then
    invalid_arg "Regress.power_law: length mismatch";
  let pairs = ref [] in
  Array.iteri
    (fun i m ->
      let v = variances.(i) in
      if m > 0. && v > 0. then pairs := (log m, log v) :: !pairs)
    means;
  let pairs = Array.of_list !pairs in
  if Array.length pairs < 2 then
    invalid_arg "Regress.power_law: fewer than two positive pairs";
  let xs = Array.map fst pairs and ys = Array.map snd pairs in
  let l = ols xs ys in
  { phi = exp l.intercept; c = l.slope; r2 = l.r2 }

let predict_line l x = (l.slope *. x) +. l.intercept
let predict_power_law p mean = p.phi *. (mean ** p.c)
