(** Descriptive statistics over float arrays and sample matrices. *)

val mean : float array -> float

(** [variance xs] is the unbiased (n-1) sample variance; 0 for n < 2. *)
val variance : float array -> float

val std : float array -> float

(** [variance_biased xs] divides by n (used when matching the paper's
    population moments). *)
val variance_biased : float array -> float

(** [quantile q xs] is the [q]-quantile (0 <= q <= 1) by linear
    interpolation of the sorted sample.  Does not modify [xs]. *)
val quantile : float -> float array -> float

val median : float array -> float

(** [sample_mean_cov samples] takes K observations of an L-vector (an array
    of K arrays of length L) and returns the sample mean (length L) and the
    biased sample covariance matrix (L x L), exactly the [t-hat] and
    [Sigma-hat] of the paper's Section 4.2.2. *)
val sample_mean_cov :
  float array array -> float array * Tmest_linalg.Mat.t

(** [correlation xs ys] is the Pearson correlation coefficient. *)
val correlation : float array -> float array -> float

(** [cumulative_share xs] sorts demands in decreasing order and returns the
    running share of the total, i.e. the curve of the paper's Figure 2:
    element [i] is the fraction of total volume carried by the [i+1]
    largest values. *)
val cumulative_share : float array -> float array

(** [top_share ~fraction xs] is the share of the total carried by the
    largest [fraction] of values (e.g. [~fraction:0.2] for the 80/20
    check). *)
val top_share : fraction:float -> float array -> float
