let two_pi = 8. *. atan 1.

let standard_gaussian rng =
  (* Box–Muller; one value per call keeps the stream reproducible without
     hidden cache state. *)
  let u1 = 1. -. Rng.float rng in
  let u2 = Rng.float rng in
  sqrt (-2. *. log u1) *. cos (two_pi *. u2)

let gaussian rng ~mu ~sigma = mu +. (sigma *. standard_gaussian rng)

let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate must be positive";
  -.log (1. -. Rng.float rng) /. rate

let poisson rng ~lambda =
  if lambda < 0. then invalid_arg "Dist.poisson: negative mean";
  if lambda = 0. then 0
  else if lambda < 30. then begin
    (* Knuth: multiply uniforms until the product drops below e^-lambda. *)
    let limit = exp (-.lambda) in
    let rec loop k prod =
      let prod = prod *. Rng.float rng in
      if prod <= limit then k else loop (k + 1) prod
    in
    loop 0 1.
  end
  else begin
    let x = gaussian rng ~mu:lambda ~sigma:(sqrt lambda) in
    let k = int_of_float (floor (x +. 0.5)) in
    if k < 0 then 0 else k
  end

let lognormal rng ~mu ~sigma = exp (gaussian rng ~mu ~sigma)

let zipf_weights ~n ~alpha =
  if n <= 0 then invalid_arg "Dist.zipf_weights: n must be positive";
  let w = Array.init n (fun i -> (float_of_int (i + 1)) ** -.alpha) in
  let total = Array.fold_left ( +. ) 0. w in
  Array.map (fun x -> x /. total) w

let pareto rng ~shape ~scale =
  if shape <= 0. || scale <= 0. then
    invalid_arg "Dist.pareto: parameters must be positive";
  scale /. ((1. -. Rng.float rng) ** (1. /. shape))

let truncated_gaussian rng ~mu ~sigma =
  let x = gaussian rng ~mu ~sigma in
  if x < 0. then 0. else x

let rec gamma rng ~shape ~scale =
  if shape <= 0. || scale <= 0. then
    invalid_arg "Dist.gamma: parameters must be positive";
  if shape < 1. then begin
    (* Boost to shape+1 and correct by a uniform power (Marsaglia–Tsang). *)
    let u = Rng.float rng in
    gamma rng ~shape:(shape +. 1.) ~scale *. (u ** (1. /. shape))
  end
  else begin
    let d = shape -. (1. /. 3.) in
    let c = 1. /. sqrt (9. *. d) in
    let rec draw () =
      let x = standard_gaussian rng in
      let v = 1. +. (c *. x) in
      if v <= 0. then draw ()
      else begin
        let v3 = v *. v *. v in
        let u = Rng.float rng in
        if u < 1. -. (0.0331 *. x *. x *. x *. x) then d *. v3 *. scale
        else if log u < (0.5 *. x *. x) +. (d *. (1. -. v3 +. log v3)) then
          d *. v3 *. scale
        else draw ()
      end
    in
    draw ()
  end

let dirichlet rng alphas =
  if Array.length alphas = 0 then invalid_arg "Dist.dirichlet: empty alphas";
  let g = Array.map (fun a -> gamma rng ~shape:a ~scale:1.) alphas in
  let total = Array.fold_left ( +. ) 0. g in
  if total = 0. then
    Array.make (Array.length alphas) (1. /. float_of_int (Array.length alphas))
  else Array.map (fun x -> x /. total) g
