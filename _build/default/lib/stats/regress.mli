(** Simple regression fits. *)

type line = { slope : float; intercept : float; r2 : float }

(** [ols xs ys] fits [y = slope*x + intercept] by ordinary least squares. *)
val ols : float array -> float array -> line

type power_law = { phi : float; c : float; r2 : float }

(** [power_law means variances] fits the generalized scaling law
    [Var = phi * mean^c] of Cao et al. by OLS in log-log space, as the paper
    does in Section 5.2.3.  Pairs with non-positive mean or variance are
    skipped. *)
val power_law : float array -> float array -> power_law

(** [predict_line l x] evaluates the fitted line. *)
val predict_line : line -> float -> float

(** [predict_power_law p mean] is [phi *. mean ** c]. *)
val predict_power_law : power_law -> float -> float
