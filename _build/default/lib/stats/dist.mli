(** Random samplers for the distributions used by the traffic model. *)

(** [gaussian rng ~mu ~sigma] samples N(mu, sigma²) by Box–Muller. *)
val gaussian : Rng.t -> mu:float -> sigma:float -> float

(** [standard_gaussian rng] samples N(0, 1). *)
val standard_gaussian : Rng.t -> float

(** [exponential rng ~rate] samples Exp(rate). *)
val exponential : Rng.t -> rate:float -> float

(** [poisson rng ~lambda] samples Poisson(lambda).  Uses Knuth's product
    method for small means and a Gaussian approximation with continuity
    correction (clamped at 0) for large means, which is accurate for the
    lambda >> 1 regimes the Vardi experiments exercise. *)
val poisson : Rng.t -> lambda:float -> int

(** [lognormal rng ~mu ~sigma] samples exp(N(mu, sigma²)). *)
val lognormal : Rng.t -> mu:float -> sigma:float -> float

(** [zipf_weights ~n ~alpha] is the normalized Zipf weight vector
    [w_i ∝ (i+1)^(-alpha)], used for heavy-tailed PoP popularities. *)
val zipf_weights : n:int -> alpha:float -> float array

(** [pareto rng ~shape ~scale] samples a Pareto(shape) with minimum
    [scale]. *)
val pareto : Rng.t -> shape:float -> scale:float -> float

(** [truncated_gaussian rng ~mu ~sigma] is [max 0 (gaussian ...)]: the
    demand-noise model (traffic rates cannot be negative). *)
val truncated_gaussian : Rng.t -> mu:float -> sigma:float -> float

(** [dirichlet rng alphas] samples a Dirichlet vector (sums to 1), via
    normalized Gamma draws (Marsaglia–Tsang). *)
val dirichlet : Rng.t -> float array -> float array

(** [gamma rng ~shape ~scale] samples Gamma(shape, scale), shape > 0. *)
val gamma : Rng.t -> shape:float -> scale:float -> float
