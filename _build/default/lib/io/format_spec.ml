let parse_error ~file ~line msg =
  failwith (Printf.sprintf "%s:%d: %s" file line msg)
