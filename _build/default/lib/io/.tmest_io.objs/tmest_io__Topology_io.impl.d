lib/io/topology_io.ml: Array Buffer Format_spec Fun Hashtbl List Printf Stdlib String Tmest_net
