lib/io/tm_io.ml: Array Buffer Format_spec Fun List Printf String Tmest_linalg Tmest_net
