lib/io/format_spec.mli:
