lib/io/tm_io.mli: Tmest_linalg
