lib/io/topology_io.mli: Tmest_net
