lib/io/format_spec.ml: Printf
