(** Reading and writing traffic-matrix series and link-load vectors
    (see {!Format_spec}). *)

(** [write_series path ~nodes series] saves a [K x P] demand matrix
    (OD-pair columns in {!Tmest_net.Odpairs} order); zero entries are
    omitted. *)
val write_series : string -> nodes:int -> Tmest_linalg.Mat.t -> unit

(** [read_series path ~nodes] loads a series.
    @raise Failure with a located message on malformed input, ids out
    of range, negative rates, or non-dense sample indices. *)
val read_series : string -> nodes:int -> Tmest_linalg.Mat.t

(** [write_loads path loads] / [read_loads path ~links]: one load value
    per link id. *)
val write_loads : string -> Tmest_linalg.Vec.t -> unit

val read_loads : string -> links:int -> Tmest_linalg.Vec.t

(** String versions for tests/embedding. *)
val series_to_string : nodes:int -> Tmest_linalg.Mat.t -> string

val series_of_string : name:string -> nodes:int -> string -> Tmest_linalg.Mat.t
