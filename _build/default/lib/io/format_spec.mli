(** The on-disk text formats.

    Three line-oriented, comment-friendly ([#] prefix) formats let
    users bring their own networks and traffic data:

    {2 Topology files (.topo)}
    {v
    # node <id> <name> <kind:access|peering> <lat> <lon>
    node 0 London access 51.51 -0.13
    node 1 Paris  access 48.86 2.35
    # edge <a> <b> <capacity_bps> <metric>   (bidirectional core edge)
    edge 0 1 10e9 7
    v}

    {2 Traffic-matrix series files (.tm)}
    {v
    # tm <sample_index>
    # <src_id> <dst_id> <rate_bps>
    tm 0
    0 1 1.5e9
    1 0 0.8e9
    tm 1
    ...
    v}
    Unlisted pairs are zero.  Sample indices must be dense from 0.

    {2 Link-load files (.loads)}
    {v
    # one line per link id, in topology link order
    load <link_id> <rate_bps>
    v} *)

(** [parse_error ~file ~line msg] raises [Failure] with a located
    message (shared by the parsers). *)
val parse_error : file:string -> line:int -> string -> 'a
