module Topology = Tmest_net.Topology

let to_string topo =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "# topology %s: %d nodes\n" topo.Topology.net_name
       (Topology.num_nodes topo));
  Array.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "node %d %s %s %.6f %.6f\n" n.Topology.node_id
           n.Topology.name
           (match n.Topology.kind with
           | Topology.Access -> "access"
           | Topology.Peering -> "peering")
           n.Topology.lat n.Topology.lon))
    topo.Topology.nodes;
  (* Each bidirectional pair appears twice as directed links; emit the
     first occurrence in its original orientation so a reload rebuilds
     the exact same link-id layout (Dijkstra tie-breaking depends on
     it). *)
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun l ->
      if l.Topology.lkind = Topology.Interior then begin
        let key =
          (Stdlib.min l.Topology.src l.Topology.dst,
           Stdlib.max l.Topology.src l.Topology.dst)
        in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          Buffer.add_string buf
            (Printf.sprintf "edge %d %d %.6g %.6g\n" l.Topology.src
               l.Topology.dst l.Topology.capacity l.Topology.metric)
        end
      end)
    topo.Topology.links;
  Buffer.contents buf

let write path topo =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string topo))

let relevant_lines s =
  String.split_on_char '\n' s
  |> List.mapi (fun i line -> (i + 1, String.trim line))
  |> List.filter (fun (_, line) ->
         line <> "" && not (String.length line > 0 && line.[0] = '#'))

let of_string ~name s =
  let file = name in
  let nodes = ref [] and edges = ref [] in
  List.iter
    (fun (line_no, line) ->
      match String.split_on_char ' ' line |> List.filter (fun x -> x <> "") with
      | "node" :: id :: nname :: kind :: lat :: lon :: [] -> (
          try
            let kind =
              match kind with
              | "access" -> Topology.Access
              | "peering" -> Topology.Peering
              | k ->
                  Format_spec.parse_error ~file ~line:line_no
                    (Printf.sprintf "unknown node kind %S" k)
            in
            nodes :=
              {
                Topology.node_id = int_of_string id;
                name = nname;
                kind;
                lat = float_of_string lat;
                lon = float_of_string lon;
              }
              :: !nodes
          with Failure _ as e -> raise e)
      | "edge" :: a :: b :: cap :: metric :: [] -> (
          match
            ( int_of_string_opt a,
              int_of_string_opt b,
              float_of_string_opt cap,
              float_of_string_opt metric )
          with
          | Some a, Some b, Some cap, Some metric ->
              edges := (a, b, cap, metric) :: !edges
          | _ ->
              Format_spec.parse_error ~file ~line:line_no
                "malformed edge line")
      | kw :: _ ->
          Format_spec.parse_error ~file ~line:line_no
            (Printf.sprintf "unknown keyword %S" kw)
      | [] -> ())
    (relevant_lines s);
  let nodes = List.rev !nodes in
  let n = List.length nodes in
  if n = 0 then failwith (file ^ ": no nodes");
  let arr = Array.make n (List.hd nodes) in
  List.iter
    (fun node ->
      let id = node.Topology.node_id in
      if id < 0 || id >= n then
        failwith
          (Printf.sprintf "%s: node id %d out of range (ids must be dense)"
             file id);
      arr.(id) <- node)
    nodes;
  (* Detect duplicate / missing ids. *)
  let seen = Array.make n false in
  List.iter
    (fun node ->
      let id = node.Topology.node_id in
      if seen.(id) then
        failwith (Printf.sprintf "%s: duplicate node id %d" file id);
      seen.(id) <- true)
    nodes;
  Topology.build ~name arr (List.rev !edges)

let read path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string ~name:path content
