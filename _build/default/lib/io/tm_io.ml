module Mat = Tmest_linalg.Mat
module Vec = Tmest_linalg.Vec
module Odpairs = Tmest_net.Odpairs

let series_to_string ~nodes series =
  let p = Odpairs.count nodes in
  if Mat.cols series <> p then
    invalid_arg "Tm_io.series_to_string: column count is not n*(n-1)";
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "# traffic matrix series: %d samples, %d nodes\n"
       (Mat.rows series) nodes);
  for k = 0 to Mat.rows series - 1 do
    Buffer.add_string buf (Printf.sprintf "tm %d\n" k);
    Odpairs.iter ~nodes (fun pair src dst ->
        let v = Mat.get series k pair in
        if v <> 0. then
          Buffer.add_string buf (Printf.sprintf "%d %d %.8g\n" src dst v))
  done;
  Buffer.contents buf

let relevant_lines s =
  String.split_on_char '\n' s
  |> List.mapi (fun i line -> (i + 1, String.trim line))
  |> List.filter (fun (_, line) ->
         line <> "" && not (String.length line > 0 && line.[0] = '#'))

let series_of_string ~name ~nodes s =
  let file = name in
  let p = Odpairs.count nodes in
  (* First pass: collect samples as association lists. *)
  let samples = ref [] (* (index, entries ref) in reverse order *) in
  let current = ref None in
  List.iter
    (fun (line_no, line) ->
      match String.split_on_char ' ' line |> List.filter (fun x -> x <> "") with
      | [ "tm"; idx ] -> (
          match int_of_string_opt idx with
          | Some k ->
              let entries = ref [] in
              samples := (k, entries) :: !samples;
              current := Some entries
          | None ->
              Format_spec.parse_error ~file ~line:line_no
                "malformed tm header")
      | [ src; dst; rate ] -> (
          match !current with
          | None ->
              Format_spec.parse_error ~file ~line:line_no
                "demand line before any tm header"
          | Some entries -> (
              match
                ( int_of_string_opt src,
                  int_of_string_opt dst,
                  float_of_string_opt rate )
              with
              | Some s', Some d, Some r ->
                  if s' < 0 || s' >= nodes || d < 0 || d >= nodes || s' = d
                  then
                    Format_spec.parse_error ~file ~line:line_no
                      "node id out of range (or src = dst)";
                  if r < 0. then
                    Format_spec.parse_error ~file ~line:line_no
                      "negative rate";
                  entries := (Odpairs.index ~nodes ~src:s' ~dst:d, r) :: !entries
              | _ ->
                  Format_spec.parse_error ~file ~line:line_no
                    "malformed demand line"))
      | _ ->
          Format_spec.parse_error ~file ~line:line_no "unrecognized line")
    (relevant_lines s);
  let samples = List.rev !samples in
  let count = List.length samples in
  if count = 0 then failwith (file ^ ": no samples");
  List.iteri
    (fun expected (k, _) ->
      if k <> expected then
        failwith
          (Printf.sprintf "%s: sample indices must be dense (got %d, want %d)"
             file k expected))
    samples;
  let m = Mat.zeros count p in
  List.iteri
    (fun k (_, entries) ->
      List.iter (fun (pair, r) -> Mat.set m k pair r) !entries)
    samples;
  m

let write_series path ~nodes series =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (series_to_string ~nodes series))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_series path ~nodes = series_of_string ~name:path ~nodes (read_file path)

let write_loads path loads =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "# link loads, bits per second\n";
      Array.iteri
        (fun i v -> output_string oc (Printf.sprintf "load %d %.8g\n" i v))
        loads)

let read_loads path ~links =
  let loads = Vec.zeros links in
  let seen = Array.make links false in
  List.iter
    (fun (line_no, line) ->
      match String.split_on_char ' ' line |> List.filter (fun x -> x <> "") with
      | [ "load"; id; v ] -> (
          match (int_of_string_opt id, float_of_string_opt v) with
          | Some id, Some v when id >= 0 && id < links ->
              if seen.(id) then
                Format_spec.parse_error ~file:path ~line:line_no
                  "duplicate link id";
              seen.(id) <- true;
              loads.(id) <- v
          | _ ->
              Format_spec.parse_error ~file:path ~line:line_no
                "malformed load line")
      | _ -> Format_spec.parse_error ~file:path ~line:line_no "unrecognized line")
    (relevant_lines (read_file path));
  Array.iteri
    (fun i ok ->
      if not ok then
        failwith (Printf.sprintf "%s: missing load for link %d" path i))
    seen;
  loads
