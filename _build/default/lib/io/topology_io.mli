(** Reading and writing topology files (see {!Format_spec}). *)

(** [write path topo] saves the topology (nodes and bidirectional core
    edges; access links are regenerated on load). *)
val write : string -> Tmest_net.Topology.t -> unit

(** [read path] loads a topology.
    @raise Failure with a located message on malformed input. *)
val read : string -> Tmest_net.Topology.t

(** [to_string topo] / [of_string ~name s] are the in-memory versions
    (used by the tests and for embedding). *)
val to_string : Tmest_net.Topology.t -> string

val of_string : name:string -> string -> Tmest_net.Topology.t
