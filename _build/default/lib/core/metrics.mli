(** Estimation-quality metrics (paper Section 5.3.1).

    The headline metric is the mean relative error over the demands that
    matter for traffic engineering: those above a threshold chosen so the
    retained demands carry a given share (90 % in the paper) of the total
    traffic. *)

(** [threshold_for_coverage ~coverage truth] is [(threshold, count)]:
    the smallest demand value such that demands [>= threshold] carry at
    least [coverage] of the total volume, and how many demands qualify. *)
val threshold_for_coverage : coverage:float -> Tmest_linalg.Vec.t -> float * int

(** [mre ?coverage ~truth ~estimate ()] is eq. (8): the mean of
    [|est - true| / true] over demands above the coverage threshold
    (default [coverage = 0.9]).  Demands that are exactly zero are never
    included (relative error undefined). *)
val mre :
  ?coverage:float ->
  truth:Tmest_linalg.Vec.t ->
  estimate:Tmest_linalg.Vec.t ->
  unit ->
  float

(** [mre_with_threshold ~threshold ~truth ~estimate] uses an explicit
    absolute threshold instead. *)
val mre_with_threshold :
  threshold:float ->
  truth:Tmest_linalg.Vec.t ->
  estimate:Tmest_linalg.Vec.t ->
  float

(** [rmse ~truth ~estimate] is the root-mean-square error over all
    demands. *)
val rmse : truth:Tmest_linalg.Vec.t -> estimate:Tmest_linalg.Vec.t -> float

(** [relative_l1 ~truth ~estimate] is [Σ|est-true| / Σ true]. *)
val relative_l1 :
  truth:Tmest_linalg.Vec.t -> estimate:Tmest_linalg.Vec.t -> float

(** [rank_correlation xs ys] is Spearman's rho — the paper notes that
    most methods rank the demand sizes accurately even when the values
    are off. *)
val rank_correlation : float array -> float array -> float
