module Vec = Tmest_linalg.Vec
module Routing = Tmest_net.Routing
module Topology = Tmest_net.Topology
module Odpairs = Tmest_net.Odpairs

let node_totals routing ~loads =
  if Array.length loads <> Routing.num_links routing then
    invalid_arg "Gravity.node_totals: load vector dimension mismatch";
  let n = Topology.num_nodes routing.Routing.topo in
  let te = Vec.init n (fun i -> loads.(Routing.ingress_row routing i)) in
  let tx = Vec.init n (fun i -> loads.(Routing.egress_row routing i)) in
  (te, tx)

let simple routing ~loads =
  let te, tx = node_totals routing ~loads in
  let n = Array.length te in
  let s = Vec.zeros (Odpairs.count n) in
  Odpairs.iter ~nodes:n (fun p src dst -> s.(p) <- te.(src) *. tx.(dst));
  (* C is chosen so the estimated total equals the measured total
     network traffic (the OD enumeration has no diagonal, so the naive
     1/Σtx normalization would undershoot). *)
  let measured_total = Vec.sum te in
  let estimated_total = Vec.sum s in
  if estimated_total > 0. then Vec.scale (measured_total /. estimated_total) s
  else s

let generalized routing ~loads =
  let te, tx = node_totals routing ~loads in
  let n = Array.length te in
  let nodes = routing.Routing.topo.Topology.nodes in
  let is_peer i = nodes.(i).Topology.kind = Topology.Peering in
  let s = Vec.zeros (Odpairs.count n) in
  Odpairs.iter ~nodes:n (fun p src dst ->
      if not (is_peer src && is_peer dst) then
        s.(p) <- te.(src) *. tx.(dst));
  (* Normalize so the estimated total matches the measured total. *)
  let measured_total = Vec.sum te in
  let estimated_total = Vec.sum s in
  if estimated_total > 0. then
    Vec.scale (measured_total /. estimated_total) s
  else s

let fanouts routing ~loads =
  let _, tx = node_totals routing ~loads in
  let n = Array.length tx in
  let tx_total = Vec.sum tx in
  let alpha = Vec.zeros (Odpairs.count n) in
  Odpairs.iter ~nodes:n (fun p src dst ->
      (* Per-source normalization: destinations exclude the source. *)
      let denom = tx_total -. tx.(src) in
      if denom > 0. then alpha.(p) <- tx.(dst) /. denom);
  alpha
