lib/core/mcmc.mli: Tmest_linalg Tmest_net
