lib/core/routechange.ml: Array List Problem Stdlib Tmest_linalg Tmest_net Tmest_opt
