lib/core/iterative.ml: Array Bayes List Metrics Tmest_linalg Tmest_net
