lib/core/entropy.ml: Array List Logs Problem Stdlib Tmest_linalg Tmest_net Tmest_opt
