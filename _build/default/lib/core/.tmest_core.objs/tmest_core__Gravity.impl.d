lib/core/gravity.ml: Array Tmest_linalg Tmest_net
