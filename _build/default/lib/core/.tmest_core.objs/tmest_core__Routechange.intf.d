lib/core/routechange.mli: Tmest_linalg Tmest_net
