lib/core/mcmc.ml: Array Float List Problem Stdlib Tmest_linalg Tmest_net Tmest_opt Tmest_stats
