lib/core/metrics.mli: Tmest_linalg
