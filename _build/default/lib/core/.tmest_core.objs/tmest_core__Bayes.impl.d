lib/core/bayes.ml: Array Logs Problem Tmest_linalg Tmest_net Tmest_opt
