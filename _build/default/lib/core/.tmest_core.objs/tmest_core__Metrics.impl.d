lib/core/metrics.ml: Array Stdlib Tmest_linalg Tmest_stats
