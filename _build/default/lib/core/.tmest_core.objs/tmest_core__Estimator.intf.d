lib/core/estimator.mli: Tmest_linalg Tmest_net
