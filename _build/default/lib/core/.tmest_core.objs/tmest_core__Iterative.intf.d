lib/core/iterative.mli: Tmest_linalg Tmest_net
