lib/core/combined.mli: Tmest_linalg Tmest_net
