lib/core/fanout.mli: Tmest_linalg Tmest_net
