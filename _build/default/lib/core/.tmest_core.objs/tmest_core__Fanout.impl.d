lib/core/fanout.ml: Array Gravity Problem Stdlib Tmest_linalg Tmest_net Tmest_opt
