lib/core/problem.ml: Array Logs Tmest_linalg Tmest_net
