lib/core/cao.mli: Tmest_linalg Tmest_net
