lib/core/estimator.ml: Bayes Cao Entropy Fanout Gravity Kruithof Printf Problem Stdlib Tmest_linalg Tmest_net Vardi Wcb
