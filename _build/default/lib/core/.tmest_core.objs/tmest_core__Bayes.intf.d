lib/core/bayes.mli: Tmest_linalg Tmest_net
