lib/core/kruithof.ml: Array Gravity Problem Tmest_linalg Tmest_net Tmest_opt
