lib/core/combined.ml: Array Entropy List Metrics Option Stdlib Tmest_linalg Tmest_net
