lib/core/vardi.mli: Tmest_linalg Tmest_net
