lib/core/kruithof.mli: Tmest_linalg Tmest_net
