lib/core/entropy.mli: Tmest_linalg Tmest_net
