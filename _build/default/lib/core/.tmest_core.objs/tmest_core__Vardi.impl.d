lib/core/vardi.ml: Array List Logs Problem Tmest_linalg Tmest_net Tmest_opt Tmest_stats
