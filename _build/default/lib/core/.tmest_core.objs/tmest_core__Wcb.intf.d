lib/core/wcb.mli: Tmest_linalg Tmest_net
