lib/core/gravity.mli: Tmest_linalg Tmest_net
