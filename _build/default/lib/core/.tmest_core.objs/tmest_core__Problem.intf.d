lib/core/problem.mli: Logs Tmest_linalg Tmest_net
