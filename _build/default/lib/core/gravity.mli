(** Gravity models (paper Section 4.1).

    The simple gravity model predicts
    [s(n,m) = te(n) * tx(m) / Σ tx], i.e. every PoP spreads its traffic
    over destinations in proportion to the fraction of total traffic
    each destination sinks.  The generalized variant zeroes peer-to-peer
    entries before normalizing. *)

(** [node_totals routing ~loads] extracts [(te, tx)] — total traffic
    entering / exiting each node — from the access-link rows of the load
    vector. *)
val node_totals :
  Tmest_net.Routing.t ->
  loads:Tmest_linalg.Vec.t ->
  Tmest_linalg.Vec.t * Tmest_linalg.Vec.t

(** [simple routing ~loads] is the simple gravity estimate (a demand
    vector over OD pairs).  Its total equals the measured total ingress
    traffic. *)
val simple : Tmest_net.Routing.t -> loads:Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t

(** [generalized routing ~loads] forces demands between peering PoPs
    (nodes with kind [Peering]) to zero and renormalizes so the total is
    preserved. *)
val generalized :
  Tmest_net.Routing.t -> loads:Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t

(** [fanouts routing ~loads] is the gravity fanout vector
    [alpha(n,m) = tx(m) / Σ tx] arranged per OD pair. *)
val fanouts :
  Tmest_net.Routing.t -> loads:Tmest_linalg.Vec.t -> Tmest_linalg.Vec.t
