module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Csr = Tmest_linalg.Csr
module Eigen = Tmest_linalg.Eigen
module Fista = Tmest_opt.Fista
module Routing = Tmest_net.Routing

type result = {
  estimate : Vec.t;
  iterations : int;
  converged : bool;
  stacked_rank_gain : int;
}

let numerical_rank g =
  let d = Eigen.symmetric g in
  let top = Stdlib.max d.Eigen.values.(0) 0. in
  let threshold = 1e-9 *. Stdlib.max top 1e-30 in
  Array.fold_left (fun acc v -> if v > threshold then acc + 1 else acc) 0
    d.Eigen.values

let estimate ?(max_iter = 6000) ?(tol = 1e-10) configs =
  (match configs with [] -> invalid_arg "Routechange.estimate: no configs" | _ -> ());
  let p = Routing.num_pairs (fst (List.hd configs)) in
  List.iter
    (fun (routing, loads) ->
      if Routing.num_pairs routing <> p then
        invalid_arg "Routechange.estimate: OD dimension mismatch";
      Problem.check_dims routing ~loads)
    configs;
  (* Normalize every snapshot by its own total so the stacking weights
     configurations equally. *)
  let scaled =
    List.map
      (fun (routing, loads) ->
        let s = Problem.total_traffic routing ~loads in
        let s = if s > 0. then s else 1. in
        (routing.Routing.matrix, Vec.scale (1. /. s) loads, s))
      configs
  in
  let mean_scale =
    List.fold_left (fun acc (_, _, s) -> acc +. s) 0. scaled
    /. float_of_int (List.length scaled)
  in
  let gradient x =
    let g = Vec.zeros p in
    List.iter
      (fun (r, t, _) ->
        Vec.axpy_inplace 2. (Csr.tmatvec r (Vec.sub (Csr.matvec r x) t)) g)
      scaled;
    g
  in
  let lipschitz =
    2.
    *. Fista.lipschitz_of_op ~dim:p (fun v ->
           let acc = Vec.zeros p in
           List.iter
             (fun (r, _, _) -> Vec.axpy_inplace 1. (Csr.tmatvec r (Csr.matvec r v)) acc)
             scaled;
           acc)
  in
  let res = Fista.solve ~max_iter ~tol ~dim:p ~gradient ~lipschitz () in
  let stacked_rank_gain =
    if p > 300 then 0
    else begin
      let gram_of r = Csr.gram r in
      let first = numerical_rank (gram_of (match scaled with (r, _, _) :: _ -> r | [] -> assert false)) in
      let stacked = Mat.zeros p p in
      List.iter
        (fun (r, _, _) ->
          let g = gram_of r in
          for i = 0 to p - 1 do
            for j = 0 to p - 1 do
              Mat.unsafe_set stacked i j
                (Mat.unsafe_get stacked i j +. Mat.unsafe_get g i j)
            done
          done)
        scaled;
      numerical_rank stacked - first
    end
  in
  {
    estimate = Vec.scale mean_scale res.Fista.x;
    iterations = res.Fista.iterations;
    converged = res.Fista.converged;
    stacked_rank_gain;
  }
