module Vec = Tmest_linalg.Vec

let threshold_for_coverage ~coverage truth =
  if coverage < 0. || coverage > 1. then
    invalid_arg "Metrics.threshold_for_coverage: coverage out of [0,1]";
  let sorted = Array.copy truth in
  Array.sort (fun a b -> compare b a) sorted;
  let total = Vec.sum sorted in
  if total <= 0. then (0., 0)
  else begin
    let acc = ref 0. and i = ref 0 in
    while !acc < coverage *. total && !i < Array.length sorted do
      acc := !acc +. sorted.(!i);
      incr i
    done;
    let count = Stdlib.max 1 !i in
    (sorted.(count - 1), count)
  end

let mre_with_threshold ~threshold ~truth ~estimate =
  if Array.length truth <> Array.length estimate then
    invalid_arg "Metrics.mre: dimension mismatch";
  let total = ref 0. and count = ref 0 in
  Array.iteri
    (fun i t ->
      if t >= threshold && t > 0. then begin
        total := !total +. (abs_float (estimate.(i) -. t) /. t);
        incr count
      end)
    truth;
  if !count = 0 then 0. else !total /. float_of_int !count

let mre ?(coverage = 0.9) ~truth ~estimate () =
  let threshold, _ = threshold_for_coverage ~coverage truth in
  mre_with_threshold ~threshold ~truth ~estimate

let rmse ~truth ~estimate =
  if Array.length truth <> Array.length estimate then
    invalid_arg "Metrics.rmse: dimension mismatch";
  let n = Array.length truth in
  if n = 0 then 0.
  else begin
    let acc = ref 0. in
    Array.iteri
      (fun i t ->
        let d = estimate.(i) -. t in
        acc := !acc +. (d *. d))
      truth;
    sqrt (!acc /. float_of_int n)
  end

let relative_l1 ~truth ~estimate =
  if Array.length truth <> Array.length estimate then
    invalid_arg "Metrics.relative_l1: dimension mismatch";
  let total = Vec.sum truth in
  if total <= 0. then 0.
  else begin
    let acc = ref 0. in
    Array.iteri (fun i t -> acc := !acc +. abs_float (estimate.(i) -. t)) truth;
    !acc /. total
  end

(* Average ranks with midpoint tie handling, then Pearson on the ranks. *)
let ranks xs =
  let n = Array.length xs in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) order;
  let r = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(order.(!j + 1)) = xs.(order.(!i)) do
      incr j
    done;
    let avg = float_of_int (!i + !j) /. 2. in
    for k = !i to !j do
      r.(order.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let rank_correlation xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Metrics.rank_correlation: dimension mismatch";
  Tmest_stats.Desc.correlation (ranks xs) (ranks ys)
