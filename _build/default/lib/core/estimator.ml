module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Routing = Tmest_net.Routing

type prior_kind = Prior_gravity | Prior_wcb | Prior_uniform

type t =
  | Gravity
  | Kruithof of { prior : prior_kind }
  | Entropy of { sigma2 : float; prior : prior_kind }
  | Bayes of { sigma2 : float; prior : prior_kind }
  | Wcb_midpoint
  | Fanout of { window : int }
  | Vardi of { sigma_inv2 : float; window : int }
  | Cao of { phi : float; c : float; sigma_inv2 : float; window : int }

let name = function
  | Gravity -> "gravity"
  | Kruithof _ -> "kruithof"
  | Entropy _ -> "entropy"
  | Bayes _ -> "bayes"
  | Wcb_midpoint -> "wcb"
  | Fanout _ -> "fanout"
  | Vardi _ -> "vardi"
  | Cao _ -> "cao"

let of_name = function
  | "gravity" -> Gravity
  | "kruithof" -> Kruithof { prior = Prior_gravity }
  | "entropy" -> Entropy { sigma2 = 1000.; prior = Prior_gravity }
  | "bayes" -> Bayes { sigma2 = 1000.; prior = Prior_gravity }
  | "wcb" -> Wcb_midpoint
  | "fanout" -> Fanout { window = 10 }
  | "vardi" -> Vardi { sigma_inv2 = 0.01; window = 50 }
  | "cao" -> Cao { phi = 1.; c = 1.5; sigma_inv2 = 0.01; window = 50 }
  | s -> invalid_arg (Printf.sprintf "Estimator.of_name: unknown method %S" s)

let all_names () =
  [ "gravity"; "kruithof"; "entropy"; "bayes"; "wcb"; "fanout"; "vardi"; "cao" ]

let uses_time_series = function
  | Gravity | Kruithof _ | Entropy _ | Bayes _ | Wcb_midpoint -> false
  | Fanout _ | Vardi _ | Cao _ -> true

let build_prior kind routing ~loads =
  match kind with
  | Prior_gravity -> Gravity.simple routing ~loads
  | Prior_wcb -> Wcb.midpoint (Wcb.bounds routing ~loads)
  | Prior_uniform ->
      let p = Routing.num_pairs routing in
      let total = Problem.total_traffic routing ~loads in
      Vec.create p (total /. float_of_int p)

let last_window samples window =
  let k = Mat.rows samples in
  let window = Stdlib.max 2 (Stdlib.min window k) in
  Mat.submatrix samples ~row:(k - window) ~col:0 ~rows:window
    ~cols:(Mat.cols samples)

let run t routing ~loads ~load_samples =
  match t with
  | Gravity -> Gravity.simple routing ~loads
  | Kruithof { prior } ->
      let prior = build_prior prior routing ~loads in
      Kruithof.adjust routing ~loads ~prior
  | Entropy { sigma2; prior } ->
      let prior = build_prior prior routing ~loads in
      (Entropy.estimate routing ~loads ~prior ~sigma2).Entropy.estimate
  | Bayes { sigma2; prior } ->
      let prior = build_prior prior routing ~loads in
      (Bayes.estimate routing ~loads ~prior ~sigma2).Bayes.estimate
  | Wcb_midpoint -> Wcb.midpoint (Wcb.bounds routing ~loads)
  | Fanout { window } ->
      let samples = last_window load_samples window in
      (Fanout.estimate routing ~load_samples:samples).Fanout.estimate
  | Vardi { sigma_inv2; window } ->
      let samples = last_window load_samples window in
      (Vardi.estimate routing ~load_samples:samples ~sigma_inv2).Vardi.estimate
  | Cao { phi; c; sigma_inv2; window } ->
      let samples = last_window load_samples window in
      (Cao.estimate routing ~load_samples:samples ~phi ~c ~sigma_inv2)
        .Cao.estimate
