test/test_opt.ml: Alcotest Array Cg Chol Eqqp Fista List Mat Nnls Printf Projections Proxgrad QCheck QCheck_alcotest Qr Scaling Simplex Tmest_linalg Tmest_opt Vec
