test/test_snmp.mli:
