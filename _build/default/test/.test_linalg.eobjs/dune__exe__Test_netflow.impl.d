test/test_netflow.ml: Alcotest Array Collector Float Flow Generator List Mat Printf QCheck QCheck_alcotest Rng Tmest_linalg Tmest_netflow Tmest_stats
