test/test_stats.ml: Alcotest Array Desc Dist Lambert List Printf QCheck QCheck_alcotest Regress Rng Tmest_linalg Tmest_stats
