test/test_snmp.ml: Alcotest Array Collect Counter Mat Printf Tmest_linalg Tmest_snmp Tmest_traffic Vec
