test/test_te.ml: Alcotest Array Dijkstra Failure_analysis Lazy List Odpairs Printf Routing Tmest_linalg Tmest_net Tmest_te Tmest_traffic Topology Utilization Vec Weight_opt
