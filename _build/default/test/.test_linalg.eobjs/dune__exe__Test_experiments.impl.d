test/test_experiments.ml: Alcotest Array Buffer Ctx Format Lazy List Printf Registry Report Stdlib String Tmest_experiments
