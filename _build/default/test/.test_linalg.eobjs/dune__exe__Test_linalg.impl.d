test/test_linalg.ml: Alcotest Array Chol Csr Eigen List Lu Mat QCheck QCheck_alcotest Qr Tmest_linalg Vec
