test/test_net.ml: Alcotest Array Cspf Dijkstra List Lsp Mat Odpairs Printf QCheck QCheck_alcotest Routing Tmest_linalg Tmest_net Topology Vec
