test/test_io.ml: Alcotest Array Filename Float Fun List Mat Odpairs Printf Routing Sys Tm_io Tmest_core Tmest_io Tmest_linalg Tmest_net Tmest_traffic Topology Topology_io Vec
