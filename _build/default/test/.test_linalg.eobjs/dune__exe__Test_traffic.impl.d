test/test_traffic.ml: Alcotest Array Dataset Demand_gen Desc Diurnal Lazy List Mat Odpairs Printf Regress Routing Spec Stdlib Tmest_linalg Tmest_net Tmest_stats Tmest_traffic Vec
