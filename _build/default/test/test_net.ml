open Tmest_linalg
open Tmest_net

let check_float eps = Alcotest.(check (float eps))

let triangle () =
  (* 0 - 1 - 2 ring with one expensive direct edge 0-2. *)
  let nodes =
    Array.init 3 (fun i ->
        {
          Topology.node_id = i;
          name = Printf.sprintf "n%d" i;
          kind = Topology.Access;
          lat = 0.;
          lon = float_of_int i;
        })
  in
  Topology.build ~name:"triangle" nodes
    [ (0, 1, 10e9, 1.); (1, 2, 10e9, 1.); (0, 2, 10e9, 5.) ]

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)
(* ------------------------------------------------------------------ *)

let test_build_counts () =
  let t = triangle () in
  Alcotest.(check int) "nodes" 3 (Topology.num_nodes t);
  (* 3 bidirectional core edges = 6 directed + 6 access links. *)
  Alcotest.(check int) "links" 12 (Topology.num_links t);
  Alcotest.(check int) "interior" 6 (Topology.num_interior_links t)

let test_build_rejects_self_loop () =
  let nodes =
    Array.init 2 (fun i ->
        {
          Topology.node_id = i;
          name = "x";
          kind = Topology.Access;
          lat = 0.;
          lon = 0.;
        })
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Topology.build ~name:"bad" nodes [ (0, 0, 1e9, 1.) ]);
       false
     with Invalid_argument _ -> true)

let test_access_links_unique () =
  let t = triangle () in
  for n = 0 to 2 do
    let i = Topology.ingress_link t n and e = Topology.egress_link t n in
    Alcotest.(check bool) "distinct" true (i <> e);
    let li = t.Topology.links.(i) in
    Alcotest.(check bool) "ingress kind" true
      (li.Topology.lkind = Topology.Ingress n)
  done

let test_generate_europe_budget () =
  let t =
    Topology.generate ~name:"eu" ~seed:1 ~nodes:12 ~directed_links:72
      Topology.european_cities
  in
  Alcotest.(check int) "nodes" 12 (Topology.num_nodes t);
  Alcotest.(check int) "links" 72 (Topology.num_links t);
  Alcotest.(check int) "interior" 48 (Topology.num_interior_links t);
  Alcotest.(check bool) "connected" true (Topology.is_connected t)

let test_generate_america_budget () =
  let t =
    Topology.generate ~name:"us" ~seed:2 ~nodes:25 ~directed_links:284
      Topology.american_cities
  in
  Alcotest.(check int) "links" 284 (Topology.num_links t);
  Alcotest.(check int) "interior" 234 (Topology.num_interior_links t);
  Alcotest.(check bool) "connected" true (Topology.is_connected t)

let test_generate_deterministic () =
  let t1 =
    Topology.generate ~name:"eu" ~seed:7 ~nodes:12 ~directed_links:72
      Topology.european_cities
  in
  let t2 =
    Topology.generate ~name:"eu" ~seed:7 ~nodes:12 ~directed_links:72
      Topology.european_cities
  in
  Array.iteri
    (fun i l1 ->
      let l2 = t2.Topology.links.(i) in
      Alcotest.(check bool) "same link" true
        (l1.Topology.src = l2.Topology.src
        && l1.Topology.dst = l2.Topology.dst
        && l1.Topology.capacity = l2.Topology.capacity))
    t1.Topology.links

let test_generate_rejects_bad_budget () =
  Alcotest.(check bool) "odd core" true
    (try
       ignore
         (Topology.generate ~name:"x" ~seed:1 ~nodes:12 ~directed_links:73
            Topology.european_cities);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Odpairs                                                             *)
(* ------------------------------------------------------------------ *)

let test_odpairs_bijection () =
  let nodes = 7 in
  for p = 0 to Odpairs.count nodes - 1 do
    let src, dst = Odpairs.pair ~nodes p in
    Alcotest.(check bool) "distinct" true (src <> dst);
    Alcotest.(check int) "roundtrip" p (Odpairs.index ~nodes ~src ~dst)
  done

let test_odpairs_matrix_roundtrip () =
  let nodes = 5 in
  let s = Vec.init (Odpairs.count nodes) (fun p -> float_of_int p +. 1.) in
  let m = Odpairs.matrix_of_vector ~nodes s in
  for i = 0 to nodes - 1 do
    Alcotest.(check (float 0.)) "diag zero" 0. (Mat.get m i i)
  done;
  Alcotest.(check bool) "roundtrip" true
    (Vec.equal (Odpairs.vector_of_matrix ~nodes m) s)

(* ------------------------------------------------------------------ *)
(* Dijkstra                                                            *)
(* ------------------------------------------------------------------ *)

let test_dijkstra_prefers_cheap_path () =
  let t = triangle () in
  (* 0 -> 2: direct metric 5 vs 0->1->2 metric 2. *)
  match Dijkstra.shortest_path t ~src:0 ~dst:2 with
  | None -> Alcotest.fail "no path"
  | Some path ->
      Alcotest.(check int) "two hops" 2 (List.length path);
      check_float 1e-9 "metric" 2. (Dijkstra.path_metric t path)

let test_dijkstra_filtered () =
  let t = triangle () in
  (* Forbid everything except the direct 0->2 link. *)
  let usable l = l.Topology.src = 0 && l.Topology.dst = 2 in
  (match Dijkstra.shortest_path ~usable t ~src:0 ~dst:2 with
  | Some [ _ ] -> ()
  | _ -> Alcotest.fail "expected the direct link");
  match Dijkstra.shortest_path ~usable t ~src:1 ~dst:2 with
  | None -> ()
  | Some _ -> Alcotest.fail "expected unreachable"

let test_dijkstra_tree_consistent () =
  let t =
    Topology.generate ~name:"eu" ~seed:3 ~nodes:12 ~directed_links:72
      Topology.european_cities
  in
  let dist, parent = Dijkstra.tree t ~src:0 in
  for dst = 1 to 11 do
    match Dijkstra.path_of_tree t parent ~src:0 ~dst with
    | None -> Alcotest.fail "unreachable in connected graph"
    | Some path ->
        check_float 1e-9 "tree distance = path metric" dist.(dst)
          (Dijkstra.path_metric t path)
  done

let test_dijkstra_optimality_bruteforce () =
  (* Compare against Bellman-Ford on a generated topology. *)
  let t =
    Topology.generate ~name:"eu" ~seed:5 ~nodes:12 ~directed_links:72
      Topology.european_cities
  in
  let n = Topology.num_nodes t in
  let dist = Array.make n infinity in
  dist.(0) <- 0.;
  for _ = 1 to n do
    Array.iter
      (fun l ->
        if l.Topology.lkind = Topology.Interior then begin
          let u = l.Topology.src and v = l.Topology.dst in
          if dist.(u) +. l.Topology.metric < dist.(v) then
            dist.(v) <- dist.(u) +. l.Topology.metric
        end)
      t.Topology.links
  done;
  let d2, _ = Dijkstra.tree t ~src:0 in
  for v = 0 to n - 1 do
    check_float 1e-9 "matches bellman-ford" dist.(v) d2.(v)
  done

(* ------------------------------------------------------------------ *)
(* CSPF                                                                *)
(* ------------------------------------------------------------------ *)

let test_cspf_respects_bandwidth () =
  let t = triangle () in
  let cspf = Cspf.create t in
  (* Saturate the cheap path 0->1. *)
  (match Cspf.reserve cspf ~src:0 ~dst:1 ~bandwidth:10e9 with
  | Some _ -> ()
  | None -> Alcotest.fail "first reservation failed");
  (* Next LSP 0->2 cannot use 0->1 anymore; must take the direct link. *)
  match Cspf.route cspf ~src:0 ~dst:2 ~bandwidth:1e9 with
  | Some [ link ] ->
      let l = t.Topology.links.(link) in
      Alcotest.(check int) "direct" 2 l.Topology.dst
  | _ -> Alcotest.fail "expected direct route"

let test_cspf_reserve_release () =
  let t = triangle () in
  let cspf = Cspf.create t in
  match Cspf.reserve cspf ~src:0 ~dst:1 ~bandwidth:4e9 with
  | None -> Alcotest.fail "reserve failed"
  | Some path ->
      let link = List.hd path in
      check_float 1e-3 "reserved" 4e9 (Cspf.reserved cspf link);
      check_float 1e-3 "available" 6e9 (Cspf.available cspf link);
      Cspf.release cspf ~path ~bandwidth:4e9;
      check_float 1e-3 "released" 0. (Cspf.reserved cspf link)

let test_cspf_link_failure () =
  let t = triangle () in
  let cspf = Cspf.create t in
  (* Fail the 0->1 link; path 0->2 via 1 must avoid it. *)
  let l01 =
    List.find
      (fun l -> l.Topology.src = 0 && l.Topology.dst = 1)
      (Topology.interior_links t)
  in
  Cspf.fail_link cspf l01.Topology.link_id;
  (match Cspf.route cspf ~src:0 ~dst:1 ~bandwidth:0. with
  | Some path -> Alcotest.(check int) "detour" 2 (List.length path)
  | None -> Alcotest.fail "no detour found");
  Cspf.restore_link cspf l01.Topology.link_id;
  match Cspf.route cspf ~src:0 ~dst:1 ~bandwidth:0. with
  | Some [ _ ] -> ()
  | _ -> Alcotest.fail "restore failed"

(* ------------------------------------------------------------------ *)
(* LSP mesh + Routing                                                  *)
(* ------------------------------------------------------------------ *)

let test_lsp_mesh_complete () =
  let t = triangle () in
  let cspf = Cspf.create t in
  let p = Odpairs.count 3 in
  let lsps = Lsp.mesh cspf ~bandwidths:(Vec.create p 1e8) in
  Alcotest.(check int) "one lsp per pair" p (Array.length lsps);
  Array.iter
    (fun l ->
      Alcotest.(check bool) "nonempty path" true (l.Lsp.path <> []))
    lsps

let test_routing_consistency () =
  (* R applied to a unit demand vector must put load 1 exactly on the
     demand's path plus its access links. *)
  let t = triangle () in
  let routing = Routing.shortest_path t in
  let p = Odpairs.count 3 in
  let pair = Odpairs.index ~nodes:3 ~src:0 ~dst:2 in
  let s = Vec.zeros p in
  s.(pair) <- 1.;
  let loads = Routing.link_loads routing s in
  let expected_links =
    Topology.ingress_link t 0 :: Topology.egress_link t 2
    :: routing.Routing.paths.(pair)
  in
  Array.iteri
    (fun l load ->
      if List.mem l expected_links then check_float 1e-12 "on path" 1. load
      else check_float 1e-12 "off path" 0. load)
    loads

let test_routing_node_totals () =
  let t = triangle () in
  let routing = Routing.shortest_path t in
  let p = Odpairs.count 3 in
  let s = Vec.init p (fun i -> float_of_int (i + 1)) in
  let loads = Routing.link_loads routing s in
  (* Ingress row of node n = sum of demands sourced at n. *)
  for n = 0 to 2 do
    let expect = ref 0. in
    Odpairs.iter ~nodes:3 (fun pair src _ ->
        if src = n then expect := !expect +. s.(pair));
    check_float 1e-9 "te(n)" !expect loads.(Routing.ingress_row routing n)
  done

let test_routing_rejects_broken_path () =
  let t = triangle () in
  let p = Odpairs.count 3 in
  let paths = Array.make p [] in
  (* Empty paths are walks only for src = dst, which never happens, so
     validation must reject (path 0 connects pair 0's src to dst only if
     it is a real walk). *)
  Alcotest.(check bool) "raises" true
    (try
       ignore (Routing.of_paths t paths);
       false
     with Invalid_argument _ -> true)

let test_cspf_mesh_routing_dimensions () =
  let t =
    Topology.generate ~name:"eu" ~seed:11 ~nodes:12 ~directed_links:72
      Topology.european_cities
  in
  let p = Odpairs.count 12 in
  let bw = Vec.create p 1e8 in
  let routing = Routing.cspf_mesh t ~bandwidths:bw in
  Alcotest.(check int) "rows = links" 72 (Routing.num_links routing);
  Alcotest.(check int) "cols = pairs" 132 (Routing.num_pairs routing)


(* ------------------------------------------------------------------ *)
(* ECMP                                                                *)
(* ------------------------------------------------------------------ *)

(* Unit-metric square: two equal-cost two-hop paths 0 -> 3. *)
let square () =
  let nodes =
    Array.init 4 (fun i ->
        {
          Topology.node_id = i;
          name = Printf.sprintf "n%d" i;
          kind = Topology.Access;
          lat = 0.;
          lon = float_of_int i;
        })
  in
  Topology.build ~name:"square" nodes
    [ (0, 1, 10e9, 1.); (1, 3, 10e9, 1.); (0, 2, 10e9, 1.); (2, 3, 10e9, 1.) ]

let test_ecmp_splits_equally () =
  let t = square () in
  let routing = Routing.ecmp t in
  let pair = Odpairs.index ~nodes:4 ~src:0 ~dst:3 in
  let s = Vec.zeros (Odpairs.count 4) in
  s.(pair) <- 1.;
  let loads = Routing.link_loads routing s in
  (* Each of the two forward paths carries exactly half; reverse
     directions carry nothing. *)
  List.iter
    (fun l ->
      let load = loads.(l.Topology.link_id) in
      if l.Topology.src < l.Topology.dst then
        Alcotest.(check (float 1e-9)) "half" 0.5 load
      else Alcotest.(check (float 1e-9)) "reverse empty" 0. load)
    (Topology.interior_links t);
  (* Access links carry the whole demand. *)
  Alcotest.(check (float 1e-9)) "ingress" 1.
    loads.(Routing.ingress_row routing 0);
  Alcotest.(check (float 1e-9)) "egress" 1.
    loads.(Routing.egress_row routing 3)

let test_ecmp_flow_conservation () =
  (* On a generated network with hop-count metrics, a unit demand must
     deliver exactly 1 at the destination for every pair. *)
  let t =
    Topology.generate ~name:"eu" ~seed:3 ~nodes:12 ~directed_links:72
      Topology.european_cities
  in
  let t =
    {
      t with
      Topology.links =
        Array.map
          (fun l ->
            if l.Topology.lkind = Topology.Interior then
              { l with Topology.metric = 1. }
            else l)
          t.Topology.links;
    }
  in
  let routing = Routing.ecmp t in
  let p = Odpairs.count 12 in
  for pair = 0 to p - 1 do
    let s = Vec.zeros p in
    s.(pair) <- 1.;
    let loads = Routing.link_loads routing s in
    let _, dst = Odpairs.pair ~nodes:12 pair in
    Alcotest.(check (float 1e-9)) "delivered" 1.
      loads.(Routing.egress_row routing dst);
    (* Flow conservation at transit nodes: in = out. *)
    for node = 0 to 11 do
      let inflow = ref 0. and outflow = ref 0. in
      Array.iter
        (fun l ->
          if l.Topology.lkind = Topology.Interior then begin
            if l.Topology.dst = node then
              inflow := !inflow +. loads.(l.Topology.link_id);
            if l.Topology.src = node then
              outflow := !outflow +. loads.(l.Topology.link_id)
          end)
        t.Topology.links;
      let src, dst = Odpairs.pair ~nodes:12 pair in
      let expected_delta =
        if node = src then 1. else if node = dst then -1. else 0.
      in
      Alcotest.(check (float 1e-9)) "conservation" expected_delta
        (!outflow -. !inflow)
    done
  done

let test_ecmp_matches_shortest_path_without_ties () =
  let t = triangle () in
  let sp = Routing.shortest_path t in
  let ec = Routing.ecmp t in
  Alcotest.(check bool) "same matrix" true
    (Mat.equal ~eps:1e-12 (Routing.dense sp) (Routing.dense ec))

let prop_routing_linear =
  QCheck.Test.make ~name:"R(s1 + s2) = R s1 + R s2" ~count:20
    (QCheck.pair
       (QCheck.array_of_size (QCheck.Gen.return 6)
          (QCheck.float_bound_inclusive 10.))
       (QCheck.array_of_size (QCheck.Gen.return 6)
          (QCheck.float_bound_inclusive 10.)))
    (fun (s1, s2) ->
      let t = triangle () in
      let routing = Routing.shortest_path t in
      Vec.equal ~eps:1e-9
        (Routing.link_loads routing (Vec.add s1 s2))
        (Vec.add (Routing.link_loads routing s1)
           (Routing.link_loads routing s2)))

let () =
  Alcotest.run "net"
    [
      ( "topology",
        [
          Alcotest.test_case "build counts" `Quick test_build_counts;
          Alcotest.test_case "self loop" `Quick test_build_rejects_self_loop;
          Alcotest.test_case "access links" `Quick test_access_links_unique;
          Alcotest.test_case "europe budget" `Quick test_generate_europe_budget;
          Alcotest.test_case "america budget" `Quick
            test_generate_america_budget;
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "bad budget" `Quick
            test_generate_rejects_bad_budget;
        ] );
      ( "odpairs",
        [
          Alcotest.test_case "bijection" `Quick test_odpairs_bijection;
          Alcotest.test_case "matrix roundtrip" `Quick
            test_odpairs_matrix_roundtrip;
        ] );
      ( "dijkstra",
        [
          Alcotest.test_case "cheap path" `Quick
            test_dijkstra_prefers_cheap_path;
          Alcotest.test_case "filtered" `Quick test_dijkstra_filtered;
          Alcotest.test_case "tree consistent" `Quick
            test_dijkstra_tree_consistent;
          Alcotest.test_case "optimal vs bellman-ford" `Quick
            test_dijkstra_optimality_bruteforce;
        ] );
      ( "cspf",
        [
          Alcotest.test_case "bandwidth constraint" `Quick
            test_cspf_respects_bandwidth;
          Alcotest.test_case "reserve/release" `Quick test_cspf_reserve_release;
          Alcotest.test_case "failure" `Quick test_cspf_link_failure;
        ] );
      ( "routing",
        [
          Alcotest.test_case "lsp mesh" `Quick test_lsp_mesh_complete;
          Alcotest.test_case "consistency" `Quick test_routing_consistency;
          Alcotest.test_case "node totals" `Quick test_routing_node_totals;
          Alcotest.test_case "broken path" `Quick
            test_routing_rejects_broken_path;
          Alcotest.test_case "cspf mesh dims" `Quick
            test_cspf_mesh_routing_dimensions;
          Alcotest.test_case "ecmp equal split" `Quick
            test_ecmp_splits_equally;
          Alcotest.test_case "ecmp conservation" `Quick
            test_ecmp_flow_conservation;
          Alcotest.test_case "ecmp no ties" `Quick
            test_ecmp_matches_shortest_path_without_ties;
          QCheck_alcotest.to_alcotest prop_routing_linear;
        ] );
    ]
