open Tmest_linalg
open Tmest_stats
open Tmest_netflow

let check_float eps = Alcotest.(check (float eps))

let flow ?(od = 0) ?(start_s = 0.) segments =
  { Flow.od; start_s; segments = Array.of_list segments }

(* ------------------------------------------------------------------ *)
(* Flow                                                                *)
(* ------------------------------------------------------------------ *)

let test_flow_accounting () =
  let f = flow [ (10., 1e6); (20., 4e6) ] in
  check_float 1e-6 "duration" 30. (Flow.duration f);
  check_float 1e-6 "end" 30. (Flow.end_s f);
  check_float 1e-3 "bits" ((10. *. 1e6) +. (20. *. 4e6)) (Flow.total_bits f);
  check_float 1e-3 "mean rate" 3e6 (Flow.mean_rate f)

let test_flow_bits_between () =
  let f = flow ~start_s:100. [ (10., 1e6); (10., 2e6) ] in
  check_float 1e-6 "before" 0. (Flow.bits_between f ~t0:0. ~t1:100.);
  check_float 1e-3 "first seg" 1e7 (Flow.bits_between f ~t0:100. ~t1:110.);
  check_float 1e-3 "straddle" (5e6 +. 1e7)
    (Flow.bits_between f ~t0:105. ~t1:115.);
  check_float 1e-3 "whole" 3e7 (Flow.bits_between f ~t0:0. ~t1:1000.);
  check_float 1e-6 "after" 0. (Flow.bits_between f ~t0:120. ~t1:200.)

let test_flow_validate () =
  Alcotest.(check bool) "bad duration" true
    (try
       Flow.validate (flow [ (0., 1.) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad rate" true
    (try
       Flow.validate (flow [ (1., -1.) ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let test_generator_matches_target_rate () =
  let rng = Rng.create 5 in
  let horizon = 3600. in
  let flows =
    Generator.generate rng Generator.default_params ~od:3 ~mean_rate:5e6
      ~horizon_s:horizon
  in
  Alcotest.(check bool) "has flows" true (List.length flows > 10);
  let carried =
    List.fold_left
      (fun acc f -> acc +. Flow.bits_between f ~t0:0. ~t1:horizon)
      0. flows
  in
  check_float 1e-3 "aggregate matches" 5e6 (carried /. horizon);
  List.iter
    (fun f ->
      Flow.validate f;
      Alcotest.(check int) "od tag" 3 f.Flow.od)
    flows

let test_generator_zero_rate () =
  let rng = Rng.create 5 in
  Alcotest.(check int) "no flows" 0
    (List.length
       (Generator.generate rng Generator.default_params ~od:0 ~mean_rate:0.
          ~horizon_s:100.))

let test_generator_smooth_flows () =
  let rng = Rng.create 6 in
  let params = { Generator.default_params with Generator.burstiness = 0. } in
  let flows =
    Generator.generate rng params ~od:0 ~mean_rate:1e6 ~horizon_s:600.
  in
  List.iter
    (fun f ->
      let rates =
        Array.to_list (Array.map snd f.Flow.segments)
        |> List.sort_uniq compare
      in
      Alcotest.(check int) "constant rate" 1 (List.length rates))
    flows

(* ------------------------------------------------------------------ *)
(* Collector                                                           *)
(* ------------------------------------------------------------------ *)

let test_exact_bins_integrate () =
  (* One flow, rate 1 Mbps for 300 s then 3 Mbps for 300 s. *)
  let f = flow [ (300., 1e6); (300., 3e6) ] in
  let m = Collector.exact_bins [ f ] ~interval_s:300. ~bins:3 ~pairs:1 in
  check_float 1e-3 "bin 0" 1e6 (Mat.get m 0 0);
  check_float 1e-3 "bin 1" 3e6 (Mat.get m 1 0);
  check_float 1e-3 "bin 2 empty" 0. (Mat.get m 2 0)

let test_netflow_bins_flatten () =
  (* Same flow: NetFlow spreads the lifetime average (2 Mbps) over both
     bins — intra-flow variability gone. *)
  let f = flow [ (300., 1e6); (300., 3e6) ] in
  let m = Collector.netflow_bins [ f ] ~interval_s:300. ~bins:3 ~pairs:1 in
  check_float 1e-3 "bin 0 flattened" 2e6 (Mat.get m 0 0);
  check_float 1e-3 "bin 1 flattened" 2e6 (Mat.get m 1 0)

let test_both_conserve_volume () =
  (* Total bytes must agree between the two binnings when the flow lies
     inside the binned horizon. *)
  let rng = Rng.create 11 in
  let flows =
    Generator.generate rng Generator.default_params ~od:0 ~mean_rate:2e6
      ~horizon_s:1500.
  in
  (* Keep only flows fully inside the horizon for exact comparison. *)
  let flows = List.filter (fun f -> f.Flow.start_s >= 0. && Flow.end_s f <= 3000.) flows in
  let vol m =
    let acc = ref 0. in
    for b = 0 to Mat.rows m - 1 do
      acc := !acc +. (Mat.get m b 0 *. 300.)
    done;
    !acc
  in
  let exact = Collector.exact_bins flows ~interval_s:300. ~bins:10 ~pairs:1 in
  let nf = Collector.netflow_bins flows ~interval_s:300. ~bins:10 ~pairs:1 in
  let ve = vol exact and vn = vol nf in
  Alcotest.(check bool) "volumes agree" true
    (abs_float (ve -. vn) < 1e-6 *. (1. +. ve))

let test_variance_distortion_below_one () =
  (* Bursty flows: NetFlow must underestimate 5-minute variance. *)
  let rng = Rng.create 21 in
  let params =
    { Generator.default_params with Generator.burstiness = 1.2;
      mean_flow_duration_s = 600. }
  in
  let flows =
    Generator.generate rng params ~od:0 ~mean_rate:5e6 ~horizon_s:7200.
  in
  let bins = 24 in
  let exact = Collector.exact_bins flows ~interval_s:300. ~bins ~pairs:1 in
  let netflow = Collector.netflow_bins flows ~interval_s:300. ~bins ~pairs:1 in
  let ratios = Collector.variance_distortion ~exact ~netflow in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f < 1" ratios.(0))
    true
    (Float.is_finite ratios.(0) && ratios.(0) < 1.)

let prop_netflow_never_negative =
  QCheck.Test.make ~name:"binned rates are non-negative" ~count:30
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let flows =
        Generator.generate rng Generator.default_params ~od:0 ~mean_rate:1e6
          ~horizon_s:900.
      in
      let ok m =
        let good = ref true in
        for b = 0 to Mat.rows m - 1 do
          if Mat.get m b 0 < 0. then good := false
        done;
        !good
      in
      ok (Collector.exact_bins flows ~interval_s:300. ~bins:3 ~pairs:1)
      && ok (Collector.netflow_bins flows ~interval_s:300. ~bins:3 ~pairs:1))

let () =
  Alcotest.run "netflow"
    [
      ( "flow",
        [
          Alcotest.test_case "accounting" `Quick test_flow_accounting;
          Alcotest.test_case "bits between" `Quick test_flow_bits_between;
          Alcotest.test_case "validate" `Quick test_flow_validate;
        ] );
      ( "generator",
        [
          Alcotest.test_case "target rate" `Quick
            test_generator_matches_target_rate;
          Alcotest.test_case "zero rate" `Quick test_generator_zero_rate;
          Alcotest.test_case "smooth flows" `Quick test_generator_smooth_flows;
        ] );
      ( "collector",
        [
          Alcotest.test_case "exact integrates" `Quick test_exact_bins_integrate;
          Alcotest.test_case "netflow flattens" `Quick
            test_netflow_bins_flatten;
          Alcotest.test_case "volume conserved" `Quick
            test_both_conserve_volume;
          Alcotest.test_case "variance distortion" `Quick
            test_variance_distortion_below_one;
          QCheck_alcotest.to_alcotest prop_netflow_never_negative;
        ] );
    ]
