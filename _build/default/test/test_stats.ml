open Tmest_stats

let check_float eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different" true (Rng.int64 a <> Rng.int64 b)

let test_rng_float_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_rng_int_range () =
  let rng = Rng.create 7 in
  let counts = Array.make 5 0 in
  for _ = 1 to 5000 do
    let k = Rng.int rng 5 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 800 && c < 1200))
    counts

let test_rng_split_independent () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  Alcotest.(check bool) "streams differ" true (Rng.int64 a <> Rng.int64 b)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 3 in
  let a = Array.init 20 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 20 (fun i -> i))
    sorted

(* ------------------------------------------------------------------ *)
(* Dist                                                                *)
(* ------------------------------------------------------------------ *)

let sample n f =
  let rng = Rng.create 1234 in
  Array.init n (fun _ -> f rng)

let test_gaussian_moments () =
  let xs = sample 20000 (fun rng -> Dist.gaussian rng ~mu:3. ~sigma:2.) in
  check_float 0.1 "mean" 3. (Desc.mean xs);
  check_float 0.2 "std" 2. (Desc.std xs)

let test_exponential_mean () =
  let xs = sample 20000 (fun rng -> Dist.exponential rng ~rate:2.) in
  check_float 0.02 "mean" 0.5 (Desc.mean xs)

let test_poisson_small_mean () =
  let xs =
    sample 20000 (fun rng -> float_of_int (Dist.poisson rng ~lambda:4.))
  in
  check_float 0.1 "mean" 4. (Desc.mean xs);
  check_float 0.3 "variance" 4. (Desc.variance xs)

let test_poisson_large_mean () =
  let xs =
    sample 20000 (fun rng -> float_of_int (Dist.poisson rng ~lambda:500.))
  in
  check_float 2.0 "mean" 500. (Desc.mean xs);
  check_float 25. "variance" 500. (Desc.variance xs)

let test_poisson_zero () =
  Alcotest.(check int) "lambda 0" 0 (Dist.poisson (Rng.create 1) ~lambda:0.)

let test_zipf_weights () =
  let w = Dist.zipf_weights ~n:10 ~alpha:1. in
  check_float 1e-9 "normalized" 1. (Array.fold_left ( +. ) 0. w);
  Alcotest.(check bool) "decreasing" true (w.(0) > w.(9));
  check_float 1e-9 "ratio" 2. (w.(0) /. w.(1))

let test_gamma_moments () =
  let xs = sample 20000 (fun rng -> Dist.gamma rng ~shape:3. ~scale:2.) in
  check_float 0.15 "mean" 6. (Desc.mean xs);
  check_float 0.8 "variance" 12. (Desc.variance xs)

let test_dirichlet_simplex () =
  let rng = Rng.create 5 in
  for _ = 1 to 100 do
    let v = Dist.dirichlet rng [| 1.; 2.; 3. |] in
    check_float 1e-9 "sums to 1" 1. (Array.fold_left ( +. ) 0. v);
    Array.iter (fun x -> Alcotest.(check bool) "nonneg" true (x >= 0.)) v
  done

let test_truncated_gaussian_nonneg () =
  let xs =
    sample 5000 (fun rng -> Dist.truncated_gaussian rng ~mu:0.1 ~sigma:1.)
  in
  Array.iter (fun x -> Alcotest.(check bool) "nonneg" true (x >= 0.)) xs

(* ------------------------------------------------------------------ *)
(* Desc                                                                *)
(* ------------------------------------------------------------------ *)

let test_desc_basics () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float 1e-9 "mean" 5. (Desc.mean xs);
  check_float 1e-9 "biased var" 4. (Desc.variance_biased xs);
  check_float 1e-9 "median" 4.5 (Desc.median xs)

let test_desc_quantile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float 1e-9 "q0" 1. (Desc.quantile 0. xs);
  check_float 1e-9 "q1" 5. (Desc.quantile 1. xs);
  check_float 1e-9 "q0.5" 3. (Desc.quantile 0.5 xs);
  check_float 1e-9 "q0.25" 2. (Desc.quantile 0.25 xs)

let test_desc_correlation () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let ys = Array.map (fun x -> (2. *. x) +. 1.) xs in
  check_float 1e-9 "perfect" 1. (Desc.correlation xs ys);
  let zs = Array.map (fun x -> -.x) xs in
  check_float 1e-9 "anti" (-1.) (Desc.correlation xs zs)

let test_desc_mean_cov () =
  let samples = [| [| 1.; 2. |]; [| 3.; 6. |] |] in
  let mu, cov = Desc.sample_mean_cov samples in
  check_float 1e-9 "mu0" 2. mu.(0);
  check_float 1e-9 "mu1" 4. mu.(1);
  check_float 1e-9 "var0" 1. (Tmest_linalg.Mat.get cov 0 0);
  check_float 1e-9 "var1" 4. (Tmest_linalg.Mat.get cov 1 1);
  check_float 1e-9 "cov01" 2. (Tmest_linalg.Mat.get cov 0 1)

let test_cumulative_share () =
  let xs = [| 1.; 3.; 4.; 2. |] in
  let cs = Desc.cumulative_share xs in
  check_float 1e-9 "first" 0.4 cs.(0);
  check_float 1e-9 "last" 1. cs.(3);
  check_float 1e-9 "top half" 0.7 (Desc.top_share ~fraction:0.5 xs)

(* ------------------------------------------------------------------ *)
(* Regress                                                             *)
(* ------------------------------------------------------------------ *)

let test_ols_exact () =
  let xs = [| 0.; 1.; 2.; 3. |] in
  let ys = Array.map (fun x -> (3. *. x) -. 1. ) xs in
  let l = Regress.ols xs ys in
  check_float 1e-9 "slope" 3. l.Regress.slope;
  check_float 1e-9 "intercept" (-1.) l.Regress.intercept;
  check_float 1e-9 "r2" 1. l.Regress.r2

let test_power_law_recovery () =
  (* Var = 2.5 * mean^1.6 exactly. *)
  let means = Array.init 50 (fun i -> 0.001 *. (1.3 ** float_of_int i)) in
  let vars = Array.map (fun m -> 2.5 *. (m ** 1.6)) means in
  let p = Regress.power_law means vars in
  check_float 1e-6 "phi" 2.5 p.Regress.phi;
  check_float 1e-6 "c" 1.6 p.Regress.c;
  check_float 1e-9 "r2" 1. p.Regress.r2

let test_power_law_skips_nonpositive () =
  let means = [| 0.; 1.; 2.; 4. |] in
  let vars = [| 5.; 1.; 2.; 4. |] in
  let p = Regress.power_law means vars in
  check_float 1e-6 "c" 1. p.Regress.c

(* ------------------------------------------------------------------ *)
(* Lambert                                                             *)
(* ------------------------------------------------------------------ *)

let test_lambert_identities () =
  List.iter
    (fun x ->
      let w = Lambert.w0 x in
      check_float 1e-8 (Printf.sprintf "w e^w = %g" x) x (w *. exp w))
    [ -0.35; -0.1; 0.; 0.5; 1.; 10.; 100.; 1e6 ]

let test_lambert_known_values () =
  check_float 1e-10 "W(0)" 0. (Lambert.w0 0.);
  check_float 1e-8 "W(e)" 1. (Lambert.w0 (exp 1.));
  check_float 1e-8 "W(-1/e)" (-1.) (Lambert.w0 (-.exp (-1.)) )

let test_lambert_log_domain () =
  (* w0_exp must agree with w0 where both are computable... *)
  List.iter
    (fun lx ->
      check_float 1e-7
        (Printf.sprintf "w0_exp %g" lx)
        (Lambert.w0 (exp lx))
        (Lambert.w0_exp lx))
    [ -5.; 0.; 1.; 5.; 50. ];
  (* ... and satisfy w + log w = log_x far beyond exp overflow. *)
  let lx = 5000. in
  let w = Lambert.w0_exp lx in
  check_float 1e-6 "identity at 5000" lx (w +. log w)

let prop_lambert =
  QCheck.Test.make ~name:"w0 inverts w e^w" ~count:200
    QCheck.(float_bound_inclusive 50.)
    (fun x ->
      let w = Lambert.w0 x in
      abs_float ((w *. exp w) -. x) <= 1e-6 *. (1. +. x))

let () =
  Alcotest.run "stats"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick
            test_rng_seed_sensitivity;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
        ] );
      ( "dist",
        [
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "poisson small" `Quick test_poisson_small_mean;
          Alcotest.test_case "poisson large" `Quick test_poisson_large_mean;
          Alcotest.test_case "poisson zero" `Quick test_poisson_zero;
          Alcotest.test_case "zipf" `Quick test_zipf_weights;
          Alcotest.test_case "gamma moments" `Quick test_gamma_moments;
          Alcotest.test_case "dirichlet" `Quick test_dirichlet_simplex;
          Alcotest.test_case "truncated gaussian" `Quick
            test_truncated_gaussian_nonneg;
        ] );
      ( "desc",
        [
          Alcotest.test_case "basics" `Quick test_desc_basics;
          Alcotest.test_case "quantiles" `Quick test_desc_quantile;
          Alcotest.test_case "correlation" `Quick test_desc_correlation;
          Alcotest.test_case "mean/cov" `Quick test_desc_mean_cov;
          Alcotest.test_case "cumulative share" `Quick test_cumulative_share;
        ] );
      ( "regress",
        [
          Alcotest.test_case "ols exact" `Quick test_ols_exact;
          Alcotest.test_case "power law" `Quick test_power_law_recovery;
          Alcotest.test_case "power law skips" `Quick
            test_power_law_skips_nonpositive;
        ] );
      ( "lambert",
        [
          Alcotest.test_case "identities" `Quick test_lambert_identities;
          Alcotest.test_case "known values" `Quick test_lambert_known_values;
          Alcotest.test_case "log domain" `Quick test_lambert_log_domain;
          QCheck_alcotest.to_alcotest prop_lambert;
        ] );
    ]
