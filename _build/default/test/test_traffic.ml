open Tmest_linalg
open Tmest_stats
open Tmest_net
open Tmest_traffic

let check_float eps = Alcotest.(check (float eps))

(* A small, fast dataset shared by most cases. *)
let small_spec =
  { (Spec.scaled ~nodes:6 ~directed_links:28 Spec.europe) with Spec.seed = 99 }

let small = lazy (Dataset.generate small_spec)
let europe = lazy (Dataset.generate Spec.europe)
let america = lazy (Dataset.generate Spec.america)

(* ------------------------------------------------------------------ *)
(* Diurnal                                                             *)
(* ------------------------------------------------------------------ *)

let test_diurnal_peaks_near_peak_hour () =
  List.iter
    (fun (profile : Diurnal.t) ->
      let samples = Diurnal.samples profile ~count:288 in
      let peak_idx = ref 0 in
      Array.iteri
        (fun i v -> if v > samples.(!peak_idx) then peak_idx := i)
        samples;
      let peak_hour = 24. *. float_of_int !peak_idx /. 288. in
      let diff = abs_float (peak_hour -. profile.Diurnal.peak_hour) in
      let diff = Stdlib.min diff (24. -. diff) in
      Alcotest.(check bool) "peak near spec" true (diff < 1.5))
    [ Diurnal.europe; Diurnal.america ]

let test_diurnal_range () =
  let samples = Diurnal.samples Diurnal.europe ~count:288 in
  Array.iter
    (fun v -> Alcotest.(check bool) "in (0, 1.05]" true (v > 0. && v <= 1.05))
    samples

let test_diurnal_busy_overlap () =
  (* Around 18:00 GMT both profiles are within 25% of their own peak. *)
  let near_peak p =
    let v = Diurnal.value p ~hour:18. in
    let peak = Diurnal.value p ~hour:p.Diurnal.peak_hour in
    v /. peak
  in
  Alcotest.(check bool) "europe busy at 18" true (near_peak Diurnal.europe > 0.75);
  Alcotest.(check bool) "america busy at 18" true
    (near_peak Diurnal.america > 0.75)

(* ------------------------------------------------------------------ *)
(* Generator invariants                                                *)
(* ------------------------------------------------------------------ *)

let test_dimensions () =
  let d = Lazy.force small in
  Alcotest.(check int) "nodes" 6 (Dataset.num_nodes d);
  Alcotest.(check int) "pairs" 30 (Dataset.num_pairs d);
  Alcotest.(check int) "links" 28 (Dataset.num_links d);
  Alcotest.(check int) "samples" 288 (Dataset.num_samples d)

let test_demands_nonnegative () =
  let d = Lazy.force small in
  for k = 0 to Dataset.num_samples d - 1 do
    Array.iter
      (fun s -> Alcotest.(check bool) "nonneg" true (s >= 0.))
      (Dataset.demand_at d k)
  done

let test_deterministic () =
  let d1 = Dataset.generate small_spec and d2 = Dataset.generate small_spec in
  Alcotest.(check bool) "same demands" true
    (Mat.equal d1.Dataset.truth.Demand_gen.demands
       d2.Dataset.truth.Demand_gen.demands)

let test_base_fanouts_rows_sum_to_one () =
  let d = Lazy.force small in
  let f = d.Dataset.truth.Demand_gen.base_fanouts in
  for src = 0 to Mat.rows f - 1 do
    check_float 1e-9 "row sum" 1. (Vec.sum (Mat.row f src));
    check_float 1e-12 "diag" 0. (Mat.get f src src)
  done

let test_link_loads_consistent () =
  (* t = R s by construction: recompute via dense R and compare. *)
  let d = Lazy.force small in
  let r = Routing.dense d.Dataset.routing in
  let k = 100 in
  let s = Dataset.demand_at d k in
  Alcotest.(check bool) "consistent" true
    (Vec.equal ~eps:1e-6 (Dataset.link_loads_at d k) (Mat.matvec r s))

let test_node_totals_match_demands () =
  let d = Lazy.force small in
  let k = 150 in
  let te = Dataset.node_ingress_totals d k in
  let tx = Dataset.node_egress_totals d k in
  let s = Dataset.demand_at d k in
  check_float 1e-3 "sum te = total" (Vec.sum s) (Vec.sum te);
  check_float 1e-3 "sum tx = total" (Vec.sum s) (Vec.sum tx);
  (* And they equal the access-link loads. *)
  let loads = Dataset.link_loads_at d k in
  for n = 0 to Dataset.num_nodes d - 1 do
    check_float 1e-3 "te = ingress load" te.(n)
      loads.(Routing.ingress_row d.Dataset.routing n);
    check_float 1e-3 "tx = egress load" tx.(n)
      loads.(Routing.egress_row d.Dataset.routing n)
  done

let test_fanouts_sum_to_one () =
  let d = Lazy.force small in
  let alpha = Dataset.fanouts_at d 200 in
  let n = Dataset.num_nodes d in
  for src = 0 to n - 1 do
    let total = ref 0. in
    Odpairs.iter ~nodes:n (fun p s _ -> if s = src then total := !total +. alpha.(p));
    check_float 1e-9 "fanout row" 1. !total
  done

let test_busy_period_is_busy () =
  let d = Lazy.force small in
  let series = Dataset.total_series d in
  let busy = Dataset.busy_samples d in
  let busy_mean =
    List.fold_left (fun acc k -> acc +. series.(k)) 0. busy
    /. float_of_int (List.length busy)
  in
  let overall = Desc.mean series in
  Alcotest.(check bool) "busy above average" true (busy_mean > overall)

(* ------------------------------------------------------------------ *)
(* Statistical fingerprint (paper Section 5.2)                          *)
(* ------------------------------------------------------------------ *)

let busy_mean_variance d =
  let busy = Dataset.busy_samples d in
  let p = Dataset.num_pairs d in
  let means = Array.make p 0. and vars = Array.make p 0. in
  for pair = 0 to p - 1 do
    let xs =
      Array.of_list
        (List.map (fun k -> (Dataset.demand_at d k).(pair)) busy)
    in
    means.(pair) <- Desc.mean xs;
    vars.(pair) <- Desc.variance xs
  done;
  (means, vars)

let test_top_heavy_demand_distribution () =
  List.iter
    (fun d ->
      let d = Lazy.force d in
      let mean = Dataset.busy_mean_demand d in
      let share = Desc.top_share ~fraction:0.2 mean in
      (* Paper Fig. 2: top 20% of demands ~ 80% of traffic. *)
      Alcotest.(check bool)
        (Printf.sprintf "top-20%% share %.2f in [0.6, 0.95]" share)
        true
        (share > 0.6 && share < 0.95))
    [ europe; america ]

let test_mean_variance_scaling_law () =
  (* Fit Var = phi * mean^c on normalized busy-hour demands; c should be
     near the spec's target (the paper finds 1.5-1.6). *)
  List.iter
    (fun (dl, target_c) ->
      let d = Lazy.force dl in
      let means, vars = busy_mean_variance d in
      let scale = d.Dataset.spec.Spec.peak_total_bps in
      let means_n = Array.map (fun m -> m /. scale) means in
      let vars_n = Array.map (fun v -> v /. (scale *. scale)) vars in
      let fit = Regress.power_law means_n vars_n in
      Alcotest.(check bool)
        (Printf.sprintf "c fit %.2f near %.2f" fit.Regress.c target_c)
        true
        (abs_float (fit.Regress.c -. target_c) < 0.25);
      Alcotest.(check bool)
        (Printf.sprintf "r2 %.2f strong" fit.Regress.r2)
        true (fit.Regress.r2 > 0.9))
    [ (europe, Spec.europe.Spec.c); (america, Spec.america.Spec.c) ]

let relative_std xs =
  let m = Desc.mean xs in
  if m <= 0. then 0. else Desc.std xs /. m

let test_fanouts_more_stable_than_demands () =
  (* Section 5.2.2: for large demands, fanouts fluctuate relatively less
     than the demands themselves over 24 h. *)
  let d = Lazy.force europe in
  let mean = Dataset.busy_mean_demand d in
  let order = Array.init (Dataset.num_pairs d) (fun i -> i) in
  Array.sort (fun a b -> compare mean.(b) mean.(a)) order;
  let k = Dataset.num_samples d in
  let wins = ref 0 and top = 10 in
  for rank = 0 to top - 1 do
    let pair = order.(rank) in
    let demand_ts = Array.init k (fun t -> (Dataset.demand_at d t).(pair)) in
    let fanout_ts = Array.init k (fun t -> (Dataset.fanouts_at d t).(pair)) in
    if relative_std fanout_ts < relative_std demand_ts then incr wins
  done;
  Alcotest.(check bool)
    (Printf.sprintf "fanouts steadier for %d/%d top demands" !wins top)
    true
    (!wins >= 8)

let test_gravity_violation_stronger_in_america () =
  (* The locality knob must make American fanout rows deviate more from
     the rank-one (gravity) structure than European ones. *)
  let deviation dl =
    let d = Lazy.force dl in
    let n = Dataset.num_nodes d in
    let mean = Dataset.busy_mean_demand d in
    let tx = Array.make n 0. in
    Odpairs.iter ~nodes:n (fun p _ dst -> tx.(dst) <- tx.(dst) +. mean.(p));
    let total = Array.fold_left ( +. ) 0. tx in
    let te = Array.make n 0. in
    Odpairs.iter ~nodes:n (fun p src _ -> te.(src) <- te.(src) +. mean.(p));
    (* Average relative L1 distance between actual fanouts and the
       gravity fanout prediction tx(m)/total. *)
    let err = ref 0. in
    Odpairs.iter ~nodes:n (fun p src dst ->
        let actual = if te.(src) > 0. then mean.(p) /. te.(src) else 0. in
        let gravity = tx.(dst) /. total in
        err := !err +. abs_float (actual -. gravity));
    !err /. float_of_int n
  in
  let eu = deviation europe and us = deviation america in
  Alcotest.(check bool)
    (Printf.sprintf "gravity misfit: eu %.3f < us %.3f" eu us)
    true (eu < us)

let test_poisson_series_moments () =
  let d = Lazy.force small in
  let unit_bps = 1e6 in
  let m = Dataset.poisson_series d ~unit_bps ~samples:400 ~seed:4 in
  let mean = Dataset.busy_mean_demand d in
  (* For the largest pair, sample mean ~ busy mean and var ~ unit * mean. *)
  let pair = Vec.argmax mean in
  let xs = Array.init 400 (fun k -> Mat.get m k pair) in
  let mu = Desc.mean xs in
  Alcotest.(check bool) "mean close" true
    (abs_float (mu -. mean.(pair)) /. mean.(pair) < 0.05);
  let v = Desc.variance xs in
  let expected = unit_bps *. mean.(pair) in
  Alcotest.(check bool) "poisson variance" true
    (v > 0.5 *. expected && v < 1.7 *. expected)

let () =
  Alcotest.run "traffic"
    [
      ( "diurnal",
        [
          Alcotest.test_case "peak location" `Quick
            test_diurnal_peaks_near_peak_hour;
          Alcotest.test_case "range" `Quick test_diurnal_range;
          Alcotest.test_case "busy overlap" `Quick test_diurnal_busy_overlap;
        ] );
      ( "generator",
        [
          Alcotest.test_case "dimensions" `Quick test_dimensions;
          Alcotest.test_case "nonnegative" `Quick test_demands_nonnegative;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "fanout rows" `Quick
            test_base_fanouts_rows_sum_to_one;
          Alcotest.test_case "loads consistent" `Quick
            test_link_loads_consistent;
          Alcotest.test_case "node totals" `Quick test_node_totals_match_demands;
          Alcotest.test_case "fanouts normalized" `Quick
            test_fanouts_sum_to_one;
          Alcotest.test_case "busy period" `Quick test_busy_period_is_busy;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "top-heavy demands" `Slow
            test_top_heavy_demand_distribution;
          Alcotest.test_case "mean-variance law" `Slow
            test_mean_variance_scaling_law;
          Alcotest.test_case "fanout stability" `Slow
            test_fanouts_more_stable_than_demands;
          Alcotest.test_case "gravity misfit ordering" `Slow
            test_gravity_violation_stronger_in_america;
          Alcotest.test_case "poisson series" `Quick test_poisson_series_moments;
        ] );
    ]
