open Tmest_linalg
open Tmest_net
open Tmest_te

let check_float eps = Alcotest.(check (float eps))

let triangle () =
  let nodes =
    Array.init 3 (fun i ->
        {
          Topology.node_id = i;
          name = Printf.sprintf "n%d" i;
          kind = Topology.Access;
          lat = 0.;
          lon = float_of_int i;
        })
  in
  Topology.build ~name:"triangle" nodes
    [ (0, 1, 10e9, 1.); (1, 2, 10e9, 1.); (0, 2, 10e9, 5.) ]

let small_dataset =
  lazy
    (Tmest_traffic.Dataset.generate
       { (Tmest_traffic.Spec.scaled ~nodes:6 ~directed_links:28
            Tmest_traffic.Spec.europe)
         with Tmest_traffic.Spec.seed = 31 })

(* ------------------------------------------------------------------ *)
(* Utilization                                                         *)
(* ------------------------------------------------------------------ *)

let test_congestion_cost_shape () =
  let c = 1e9 in
  (* Linear (slope 1) in the low-load regime. *)
  check_float 1. "low load" 1e8 (Utilization.congestion_cost ~load:1e8 ~capacity:c);
  (* Convex and increasing. *)
  let costs =
    List.map
      (fun u -> Utilization.congestion_cost ~load:(u *. c) ~capacity:c)
      [ 0.2; 0.5; 0.8; 0.95; 1.05; 1.2 ]
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "increasing" true (increasing costs);
  (* Continuity at a breakpoint (u = 2/3). *)
  let below =
    Utilization.congestion_cost ~load:((2. /. 3. -. 1e-9) *. c) ~capacity:c
  in
  let above =
    Utilization.congestion_cost ~load:((2. /. 3. +. 1e-9) *. c) ~capacity:c
  in
  Alcotest.(check bool) "continuous" true (abs_float (above -. below) < 100.)

let test_utilization_report () =
  let t = triangle () in
  let routing = Routing.shortest_path t in
  let p = Odpairs.count 3 in
  let demands = Vec.zeros p in
  demands.(Odpairs.index ~nodes:3 ~src:0 ~dst:1) <- 5e9;
  let r = Utilization.of_demands routing ~demands in
  check_float 1e-9 "max util" 0.5 r.Utilization.max_utilization;
  let l = t.Topology.links.(r.Utilization.max_link) in
  Alcotest.(check bool) "right link" true
    (l.Topology.src = 0 && l.Topology.dst = 1)

let test_headroom () =
  let t = triangle () in
  let routing = Routing.shortest_path t in
  let p = Odpairs.count 3 in
  let demands = Vec.zeros p in
  demands.(Odpairs.index ~nodes:3 ~src:0 ~dst:1) <- 9e9;
  demands.(Odpairs.index ~nodes:3 ~src:1 ~dst:2) <- 5e9;
  let loads = Routing.link_loads routing demands in
  let over = Utilization.headroom t ~loads ~threshold:0.8 in
  Alcotest.(check int) "one overloaded" 1 (List.length over);
  let _, u = List.hd over in
  check_float 1e-9 "busiest first" 0.9 u

(* ------------------------------------------------------------------ *)
(* Failure analysis                                                    *)
(* ------------------------------------------------------------------ *)

let test_failure_sweep_covers_all_links () =
  let t = triangle () in
  let p = Odpairs.count 3 in
  let demands = Vec.create p 1e8 in
  let events = Failure_analysis.sweep t ~demands in
  Alcotest.(check int) "one event per interior link" 6 (List.length events);
  List.iter
    (fun e ->
      Alcotest.(check bool) "no partition in a ring" false
        e.Failure_analysis.partitioned;
      check_float 1e-6 "failed link empty" 0.
        e.Failure_analysis.report.Utilization.utilization.(e.Failure_analysis.failed_link))
    events

let test_failure_worst_is_max () =
  let d = Lazy.force small_dataset in
  let demands = Tmest_traffic.Dataset.busy_mean_demand d in
  let topo = d.Tmest_traffic.Dataset.topo in
  let events = Failure_analysis.sweep topo ~demands in
  let w = Failure_analysis.worst topo ~demands in
  List.iter
    (fun e ->
      Alcotest.(check bool) "worst dominates" true
        (e.Failure_analysis.report.Utilization.max_utilization
        <= w.Failure_analysis.report.Utilization.max_utilization +. 1e-9))
    events

let test_overload_agreement_self () =
  let d = Lazy.force small_dataset in
  let demands = Tmest_traffic.Dataset.busy_mean_demand d in
  let topo = d.Tmest_traffic.Dataset.topo in
  let events = Failure_analysis.sweep topo ~demands in
  let both, only_a, only_b =
    Failure_analysis.overload_agreement ~threshold:0.5 events events
  in
  Alcotest.(check int) "no disagreement with self" 0 (only_a + only_b);
  Alcotest.(check bool) "some overloads found" true (both >= 0)

(* ------------------------------------------------------------------ *)
(* Weight optimization                                                 *)
(* ------------------------------------------------------------------ *)

let test_with_weight_changes_routing () =
  let t = triangle () in
  (* Make the 0->1 link unattractive: traffic 0->1 detours via 2. *)
  let link01 =
    (List.find
       (fun l -> l.Topology.src = 0 && l.Topology.dst = 1)
       (Topology.interior_links t))
      .Topology.link_id
  in
  let t' = Weight_opt.with_weight t ~link:link01 ~metric:100. in
  match Dijkstra.shortest_path t' ~src:0 ~dst:1 with
  | Some path -> Alcotest.(check int) "detour" 2 (List.length path)
  | None -> Alcotest.fail "no path"

let test_with_weight_rejects_access_links () =
  let t = triangle () in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Weight_opt.with_weight t ~link:(Topology.ingress_link t 0)
            ~metric:2.);
       false
     with Invalid_argument _ -> true)

let test_optimize_reduces_congestion () =
  (* Overload one link: two big demands forced onto 0->1 by metrics.
     The optimizer must split them apart. *)
  let t = triangle () in
  let p = Odpairs.count 3 in
  let demands = Vec.zeros p in
  demands.(Odpairs.index ~nodes:3 ~src:0 ~dst:1) <- 7e9;
  demands.(Odpairs.index ~nodes:3 ~src:0 ~dst:2) <- 7e9;
  (* Both go over 0->1 (0->2 routes via 1 at metric 2 < 5): 14 Gbps on a
     10 Gbps link. *)
  let before = Weight_opt.evaluate t ~demands in
  Alcotest.(check bool) "initially overloaded" true
    (before.Utilization.max_utilization > 1.);
  let r = Weight_opt.optimize t ~demands in
  Alcotest.(check bool) "cost reduced" true
    (r.Weight_opt.cost < r.Weight_opt.initial_cost);
  Alcotest.(check bool)
    (Printf.sprintf "max util %.2f below 1" r.Weight_opt.max_utilization)
    true
    (r.Weight_opt.max_utilization <= 1.0 +. 1e-9);
  Alcotest.(check bool) "made moves" true (r.Weight_opt.moves > 0)

let test_optimize_never_hurts_when_uncongested () =
  (* Uncongested network: the cost is pure path length, which the
     optimizer may still shorten (the direct 0-2 edge is unattractive at
     metric 5) but must never worsen. *)
  let t = triangle () in
  let p = Odpairs.count 3 in
  let demands = Vec.create p 1e6 in
  let r = Weight_opt.optimize t ~demands in
  Alcotest.(check bool) "cost not increased" true
    (r.Weight_opt.cost <= r.Weight_opt.initial_cost +. 1e-9);
  Alcotest.(check bool) "still uncongested" true
    (r.Weight_opt.max_utilization < 0.01)

let test_optimize_on_dataset () =
  let d = Lazy.force small_dataset in
  let demands = Tmest_traffic.Dataset.busy_mean_demand d in
  let topo = d.Tmest_traffic.Dataset.topo in
  let r = Weight_opt.optimize ~max_passes:3 topo ~demands in
  Alcotest.(check bool) "never worse" true
    (r.Weight_opt.cost <= r.Weight_opt.initial_cost +. 1e-6)

let () =
  Alcotest.run "te"
    [
      ( "utilization",
        [
          Alcotest.test_case "cost shape" `Quick test_congestion_cost_shape;
          Alcotest.test_case "report" `Quick test_utilization_report;
          Alcotest.test_case "headroom" `Quick test_headroom;
        ] );
      ( "failure",
        [
          Alcotest.test_case "sweep" `Quick test_failure_sweep_covers_all_links;
          Alcotest.test_case "worst" `Quick test_failure_worst_is_max;
          Alcotest.test_case "agreement" `Quick test_overload_agreement_self;
        ] );
      ( "weights",
        [
          Alcotest.test_case "with_weight" `Quick
            test_with_weight_changes_routing;
          Alcotest.test_case "access rejected" `Quick
            test_with_weight_rejects_access_links;
          Alcotest.test_case "reduces congestion" `Quick
            test_optimize_reduces_congestion;
          Alcotest.test_case "uncongested" `Quick
            test_optimize_never_hurts_when_uncongested;
          Alcotest.test_case "dataset" `Quick test_optimize_on_dataset;
        ] );
    ]
