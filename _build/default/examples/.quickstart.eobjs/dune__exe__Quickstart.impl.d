examples/quickstart.ml: Array Printf Tmest_core Tmest_net Tmest_traffic
