examples/quickstart.mli:
