examples/capacity_planning.ml: Array List Option Printf Tmest_core Tmest_linalg Tmest_net Tmest_traffic
