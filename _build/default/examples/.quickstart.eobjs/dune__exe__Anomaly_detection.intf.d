examples/anomaly_detection.mli:
