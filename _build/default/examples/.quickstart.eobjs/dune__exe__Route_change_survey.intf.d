examples/route_change_survey.mli:
