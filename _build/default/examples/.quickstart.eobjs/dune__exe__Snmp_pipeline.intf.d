examples/snmp_pipeline.mli:
