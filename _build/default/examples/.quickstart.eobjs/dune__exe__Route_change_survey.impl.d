examples/route_change_survey.ml: Array List Printf Tmest_core Tmest_linalg Tmest_net Tmest_traffic
