examples/snmp_pipeline.ml: Printf Stdlib Tmest_core Tmest_linalg Tmest_snmp Tmest_traffic
