examples/anomaly_detection.ml: Array List Printf Tmest_core Tmest_linalg Tmest_net Tmest_traffic
