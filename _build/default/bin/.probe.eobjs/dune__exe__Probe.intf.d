bin/probe.mli:
