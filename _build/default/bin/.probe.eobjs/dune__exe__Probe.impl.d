bin/probe.ml: List Printf Tmest_experiments Unix
