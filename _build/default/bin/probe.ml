(* Scratch timing probe used during development; kept as a fast sanity
   runner: executes the reduced-context experiment suite end to end. *)
let () =
  let ctx = Tmest_experiments.Ctx.create ~fast:true () in
  List.iter
    (fun e ->
      let t0 = Unix.gettimeofday () in
      ignore (e.Tmest_experiments.Registry.run ctx);
      Printf.printf "%-6s ok (%.2fs)\n%!" e.Tmest_experiments.Registry.id
        (Unix.gettimeofday () -. t0))
    Tmest_experiments.Registry.all
