bin/tme_cli.mli:
