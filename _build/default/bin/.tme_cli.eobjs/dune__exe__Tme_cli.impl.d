bin/tme_cli.ml: Arg Array Cmd Cmdliner Filename List Logs Printf Stdlib String Term Tmest_core Tmest_experiments Tmest_io Tmest_linalg Tmest_net Tmest_snmp Tmest_stats Tmest_traffic
