open Tmest_linalg
open Tmest_opt

let check_float eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Simplex                                                             *)
(* ------------------------------------------------------------------ *)

(* min -x1 - 2x2 s.t. x1 + x2 + s1 = 4, x1 + 3x2 + s2 = 6, x >= 0.
   Optimum of max x1 + 2x2 over the polytope: vertex (3, 1), value 5. *)
let std_a =
  Mat.of_rows [| [| 1.; 1.; 1.; 0. |]; [| 1.; 3.; 0.; 1. |] |]

let std_b = Vec.of_list [ 4.; 6. ]

let test_simplex_basic_max () =
  match Simplex.lp_max std_a std_b (Vec.of_list [ 1.; 2.; 0.; 0. ]) with
  | Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"
  | Simplex.Optimal { x; objective } ->
      check_float 1e-8 "objective" 5. objective;
      check_float 1e-8 "x1" 3. x.(0);
      check_float 1e-8 "x2" 1. x.(1)

let test_simplex_basic_min () =
  (* Minimum of x1 + 2x2 over the same region is 0 at the origin. *)
  match Simplex.lp_min std_a std_b (Vec.of_list [ 1.; 2.; 0.; 0. ]) with
  | Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"
  | Simplex.Optimal { objective; _ } -> check_float 1e-8 "objective" 0. objective

let test_simplex_infeasible () =
  (* x1 = -1 with x1 >= 0 is infeasible. *)
  let a = Mat.of_rows [| [| 1. |] |] in
  Alcotest.(check bool) "raises Infeasible" true
    (try
       ignore (Simplex.make a (Vec.of_list [ -1. ]));
       false
     with Simplex.Infeasible -> true)

let test_simplex_unbounded () =
  (* max x1 s.t. x1 - x2 = 0: ray (t, t). *)
  let a = Mat.of_rows [| [| 1.; -1. |] |] in
  match Simplex.lp_max a (Vec.of_list [ 0. ]) (Vec.of_list [ 1.; 0. ]) with
  | Simplex.Unbounded -> ()
  | Simplex.Optimal _ -> Alcotest.fail "expected unbounded"

let test_simplex_warm_restart () =
  (* Solving several objectives on one state must agree with one-shot. *)
  let t = Simplex.make std_a std_b in
  let objs =
    [
      Vec.of_list [ 1.; 2.; 0.; 0. ];
      Vec.of_list [ 2.; 1.; 0.; 0. ];
      Vec.of_list [ 1.; 0.; 0.; 0. ];
      Vec.of_list [ 0.; 1.; 0.; 0. ];
    ]
  in
  List.iter
    (fun c ->
      match (Simplex.maximize t c, Simplex.lp_max std_a std_b c) with
      | Simplex.Optimal a, Simplex.Optimal b ->
          check_float 1e-8 "warm = cold" b.objective a.objective
      | _ -> Alcotest.fail "expected optimal")
    objs

let test_simplex_degenerate () =
  (* Classic degenerate LP; must terminate and find max = 1. *)
  let a =
    Mat.of_rows
      [| [| 1.; 1.; 1.; 0. |]; [| 1.; 0.; 0.; 1. |] |]
  in
  let b = Vec.of_list [ 1.; 1. ] in
  match Simplex.lp_max a b (Vec.of_list [ 1.; 1.; 0.; 0. ]) with
  | Simplex.Optimal { objective; _ } -> check_float 1e-8 "obj" 1. objective
  | Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"

let test_simplex_redundant_rows () =
  (* Duplicate constraint row: phase 1 leaves an artificial pinned at 0. *)
  let a =
    Mat.of_rows [| [| 1.; 1. |]; [| 1.; 1. |]; [| 1.; 0. |] |]
  in
  let b = Vec.of_list [ 2.; 2.; 1. ] in
  match Simplex.lp_max a b (Vec.of_list [ 0.; 1. ]) with
  | Simplex.Optimal { x; objective } ->
      check_float 1e-8 "obj" 1. objective;
      check_float 1e-8 "x1" 1. x.(0)
  | Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"

let test_simplex_equality_route () =
  (* Tiny traffic-like system: two demands sharing a link.
     s1 + s2 = 5, s1 = 2 -> bounds on s2 are [3, 3]. *)
  let a = Mat.of_rows [| [| 1.; 1. |]; [| 1.; 0. |] |] in
  let b = Vec.of_list [ 5.; 2. ] in
  let t = Simplex.make a b in
  (match Simplex.maximize t (Vec.of_list [ 0.; 1. ]) with
  | Simplex.Optimal { objective; _ } -> check_float 1e-8 "ub" 3. objective
  | Simplex.Unbounded -> Alcotest.fail "unbounded");
  match Simplex.minimize t (Vec.of_list [ 0.; 1. ]) with
  | Simplex.Optimal { objective; _ } -> check_float 1e-8 "lb" 3. objective
  | Simplex.Unbounded -> Alcotest.fail "unbounded"

let prop_simplex_weak_duality =
  (* For max cx with feasible x found, any feasible point y has cy <= opt. *)
  QCheck.Test.make ~name:"simplex optimal dominates random feasible" ~count:30
    (QCheck.pair
       (QCheck.array_of_size (QCheck.Gen.return 4)
          (QCheck.float_bound_inclusive 5.))
       (QCheck.array_of_size (QCheck.Gen.return 4)
          (QCheck.float_bound_inclusive 3.)))
    (fun (c, x0) ->
      (* Region: x1+x2+x3+x4 = sum(x0) with x >= 0 contains x0. *)
      let a = Mat.of_rows [| [| 1.; 1.; 1.; 1. |] |] in
      let total = Array.fold_left ( +. ) 0. x0 in
      let b = Vec.of_list [ total ] in
      match Simplex.lp_max a b c with
      | Simplex.Unbounded -> false
      | Simplex.Optimal { objective; _ } ->
          objective >= Vec.dot c x0 -. 1e-7)

(* ------------------------------------------------------------------ *)
(* NNLS                                                                *)
(* ------------------------------------------------------------------ *)

let test_nnls_unconstrained_interior () =
  (* True solution is positive, so NNLS = least squares. *)
  let a = Mat.of_rows [| [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 1. |] |] in
  let b = Vec.of_list [ 1.; 2.; 3. ] in
  let r = Nnls.solve a b in
  let ls = Qr.solve_lstsq a b in
  Alcotest.(check bool) "matches LS" true (Vec.equal ~eps:1e-8 r.Nnls.x ls)

let test_nnls_active_bound () =
  (* Pulls x2 negative in LS; NNLS must clamp it to exactly 0. *)
  let a = Mat.of_rows [| [| 1.; 1. |]; [| 1.; 1.2 |] |] in
  let b = Vec.of_list [ 1.; 0.5 ] in
  let r = Nnls.solve a b in
  Alcotest.(check bool) "x >= 0" true (Array.for_all (fun x -> x >= 0.) r.Nnls.x);
  check_float 1e-9 "x2 pinned" 0. r.Nnls.x.(1)

let test_nnls_kkt () =
  let a =
    Mat.of_rows
      [|
        [| 1.; 2.; 0.5 |]; [| 0.; 1.; -1. |]; [| 2.; 0.; 1. |]; [| 1.; 1.; 1. |];
      |]
  in
  let b = Vec.of_list [ 1.; -2.; 3.; 0. ] in
  let r = Nnls.solve a b in
  let grad = Mat.tmatvec a (Vec.sub (Mat.matvec a r.Nnls.x) b) in
  Array.iteri
    (fun j g ->
      if r.Nnls.x.(j) > 1e-10 then check_float 1e-6 "stationarity" 0. g
      else Alcotest.(check bool) "dual feasibility" true (g >= -1e-6))
    grad

let prop_nnls_beats_clipped_ls =
  QCheck.Test.make ~name:"nnls residual <= clipped-LS residual" ~count:40
    (QCheck.array_of_size (QCheck.Gen.return 12)
       (QCheck.float_range (-5.) 5.))
    (fun data ->
      let a = Mat.init 4 3 (fun i j -> data.((i * 3) + j)) in
      let b = Vec.of_list [ 1.; -1.; 2.; 0.5 ] in
      match Qr.solve_lstsq a b with
      | exception Qr.Rank_deficient _ -> true
      | ls ->
          let r = Nnls.solve a b in
          let clipped = Vec.clamp_nonneg ls in
          let res v = Vec.norm2 (Vec.sub (Mat.matvec a v) b) in
          res r.Nnls.x <= res clipped +. 1e-7)

(* ------------------------------------------------------------------ *)
(* FISTA                                                               *)
(* ------------------------------------------------------------------ *)

let quad_gradient h q x = Vec.sub (Mat.matvec h x) q

let test_fista_matches_nnls () =
  let a =
    Mat.of_rows
      [| [| 1.; 2.; 0. |]; [| 0.; 1.; 3. |]; [| 1.; 0.; 1. |]; [| 2.; 1.; 1. |] |]
  in
  let b = Vec.of_list [ 1.; 2.; -1.; 0. ] in
  let h = Mat.gram a in
  let q = Mat.tmatvec a b in
  let lip = Fista.lipschitz_of_gram h in
  let r =
    Fista.solve ~stop:(Stop.make ~max_iter:5000 ~tol:1e-12 ()) ~dim:3
      ~gradient:(quad_gradient h q) ~lipschitz:lip ()
  in
  let nn = Nnls.solve a b in
  Alcotest.(check bool) "agrees with NNLS" true
    (Vec.equal ~eps:1e-5 r.Fista.x nn.Nnls.x)

let test_fista_simple_projection () =
  (* min (x-(-2))^2/2: solution clamps to 0. *)
  let h = Mat.identity 1 in
  let q = Vec.of_list [ -2. ] in
  let r =
    Fista.solve ~dim:1 ~gradient:(quad_gradient h q) ~lipschitz:1. ()
  in
  check_float 1e-9 "clamped" 0. r.Fista.x.(0)

let test_lipschitz_estimate () =
  let h = Mat.diag (Vec.of_list [ 1.; 5.; 3. ]) in
  let l = Fista.lipschitz_of_gram h in
  Alcotest.(check bool) "upper bound, close" true (l >= 5. && l < 5.5)

(* ------------------------------------------------------------------ *)
(* Proxgrad (entropy)                                                  *)
(* ------------------------------------------------------------------ *)

let test_kl_prox_identity_at_prior () =
  (* prox at v = p with any weight returns s <= p but must keep s = p when
     v = p + weight*step*0... check stationarity: prox(p + c*log(p/p)) = p. *)
  let prior = Vec.of_list [ 0.5; 2.; 1e-6 ] in
  let out = Proxgrad.kl_prox ~weight:3. ~prior 0.1 (Vec.copy prior) in
  Array.iteri
    (fun i s ->
      check_float 1e-7 (Printf.sprintf "fixed point %d" i) prior.(i) s)
    out

let test_kl_prox_closed_form () =
  (* Verify the prox optimality condition c*ln(s/p) + s - v = 0. *)
  let prior = Vec.of_list [ 1.; 0.3; 10. ] in
  let v = Vec.of_list [ 2.; -1.; 500. ] in
  let weight = 0.7 and step = 0.25 in
  let s = Proxgrad.kl_prox ~weight ~prior step v in
  let c = weight *. step in
  Array.iteri
    (fun i si ->
      Alcotest.(check bool) "positive" true (si > 0.);
      check_float 1e-6
        (Printf.sprintf "stationarity %d" i)
        0.
        ((c *. log (si /. prior.(i))) +. si -. v.(i)))
    s

let test_kl_divergence () =
  let s = Vec.of_list [ 1.; 0. ] and p = Vec.of_list [ 1.; 2. ] in
  check_float 1e-9 "D" 2. (Proxgrad.kl_divergence s p);
  let q = Vec.of_list [ 2.; 1. ] in
  Alcotest.(check bool) "nonneg" true (Proxgrad.kl_divergence q p >= 0.);
  Alcotest.(check bool) "infinite" true
    (Proxgrad.kl_divergence (Vec.of_list [ 1. ]) (Vec.of_list [ 0. ]) = infinity)

let test_proxgrad_entropy_solution () =
  (* min |x - 3|^2 + 2*KL(x || 1): optimality 2(x-3) + 2 ln x = 0. *)
  let gradient x = Vec.of_list [ 2. *. (x.(0) -. 3.) ] in
  let prior = Vec.of_list [ 1. ] in
  let r =
    Proxgrad.solve ~stop:(Stop.make ~max_iter:500 ~tol:1e-12 ()) ~dim:1 ~gradient
      ~prox:(Proxgrad.kl_prox ~weight:2. ~prior)
      ~lipschitz:2. ()
  in
  let x = r.Proxgrad.x.(0) in
  check_float 1e-6 "stationarity" 0. ((2. *. (x -. 3.)) +. (2. *. log x))

(* ------------------------------------------------------------------ *)
(* Eqqp                                                                *)
(* ------------------------------------------------------------------ *)

let test_eqqp_projection () =
  (* min ||x - a||^2 s.t. sum x = 1 is a + (1 - sum a)/n. *)
  let n = 3 in
  let a = Vec.of_list [ 0.1; 0.5; 0.9 ] in
  let h = Mat.scale 2. (Mat.identity n) in
  let q = Vec.scale 2. a in
  let c = Mat.of_rows [| [| 1.; 1.; 1. |] |] in
  let d = Vec.of_list [ 1. ] in
  let sol = Eqqp.solve h q c d in
  let shift = (1. -. Vec.sum a) /. 3. in
  Array.iteri
    (fun i x -> check_float 1e-7 "projected" (a.(i) +. shift) x)
    sol.Eqqp.x

let test_eqqp_constraint_satisfied () =
  let h = Mat.of_rows [| [| 2.; 0.5 |]; [| 0.5; 1. |] |] in
  let q = Vec.of_list [ 1.; -1. ] in
  let c = Mat.of_rows [| [| 1.; 2. |] |] in
  let d = Vec.of_list [ 3. ] in
  let sol = Eqqp.solve h q c d in
  check_float 1e-7 "Cx = d" 3. (Vec.dot (Mat.row c 0) sol.Eqqp.x)

let test_eqqp_nonneg () =
  (* Unconstrained eq-solution has a negative coordinate; the nonneg
     variant must pin it at zero and stay on the constraint. *)
  let h = Mat.scale 2. (Mat.identity 2) in
  let q = Vec.of_list [ 4.; -6. ] in
  (* min (x-2)^2 + (y+3)^2 s.t. x + y = 1 -> unconstr (3,-2), pinned y=0. *)
  let c = Mat.of_rows [| [| 1.; 1. |] |] in
  let d = Vec.of_list [ 1. ] in
  let sol = Eqqp.solve_nonneg h q c d in
  check_float 1e-7 "x" 1. sol.Eqqp.x.(0);
  check_float 1e-7 "y" 0. sol.Eqqp.x.(1)

let test_eqqp_nonneg_matches_plain_when_interior () =
  let h = Mat.scale 2. (Mat.identity 2) in
  let q = Vec.of_list [ 2.; 2. ] in
  let c = Mat.of_rows [| [| 1.; 1. |] |] in
  let d = Vec.of_list [ 2. ] in
  let a = Eqqp.solve h q c d and b = Eqqp.solve_nonneg h q c d in
  Alcotest.(check bool) "same" true (Vec.equal ~eps:1e-7 a.Eqqp.x b.Eqqp.x)

(* ------------------------------------------------------------------ *)
(* Scaling (IPF / GIS)                                                 *)
(* ------------------------------------------------------------------ *)

let test_ipf_matches_marginals () =
  let prior = Mat.of_rows [| [| 1.; 1. |]; [| 1.; 1. |] |] in
  let row_sums = Vec.of_list [ 3.; 1. ] in
  let col_sums = Vec.of_list [ 2.; 2. ] in
  let s, rep = Scaling.ipf prior ~row_sums ~col_sums in
  Alcotest.(check bool) "converged" true rep.Scaling.converged;
  check_float 1e-7 "row0" 3. (Vec.sum (Mat.row s 0));
  check_float 1e-7 "col0" 2. (Vec.sum (Mat.col s 0))

let test_ipf_keeps_structural_zeros () =
  let prior = Mat.of_rows [| [| 0.; 1. |]; [| 1.; 1. |] |] in
  let s, _ =
    Scaling.ipf prior ~row_sums:(Vec.of_list [ 1.; 2. ])
      ~col_sums:(Vec.of_list [ 1.5; 1.5 ])
  in
  check_float 1e-12 "zero stays" 0. (Mat.get s 0 0)

let test_gis_solves_constraints () =
  (* R s = t with R the row/col indicator of a 2x2 matrix (vectorized
     [s11; s12; s21; s22]): row sums (2 constraints) + col sums (2). *)
  let r =
    Mat.of_rows
      [|
        [| 1.; 1.; 0.; 0. |];
        [| 0.; 0.; 1.; 1. |];
        [| 1.; 0.; 1.; 0. |];
        [| 0.; 1.; 0.; 1. |];
      |]
  in
  let t = Vec.of_list [ 3.; 1.; 2.; 2. ] in
  let prior = Vec.ones 4 in
  let s, rep = Scaling.gis r t ~prior in
  Alcotest.(check bool) "converged" true rep.Scaling.converged;
  Alcotest.(check bool) "Rs = t" true
    (Vec.equal ~eps:1e-5 (Mat.matvec r s) t)

let test_gis_agrees_with_ipf () =
  let r =
    Mat.of_rows
      [|
        [| 1.; 1.; 0.; 0. |];
        [| 0.; 0.; 1.; 1. |];
        [| 1.; 0.; 1.; 0. |];
        [| 0.; 1.; 0.; 1. |];
      |]
  in
  let t = Vec.of_list [ 3.; 1.; 2.; 2. ] in
  let prior_v = Vec.of_list [ 1.; 2.; 2.; 1. ] in
  let s, _ = Scaling.gis r t ~prior:prior_v in
  let prior_m = Mat.of_rows [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  let m, _ =
    Scaling.ipf prior_m ~row_sums:(Vec.of_list [ 3.; 1. ])
      ~col_sums:(Vec.of_list [ 2.; 2. ])
  in
  check_float 1e-4 "s11" (Mat.get m 0 0) s.(0);
  check_float 1e-4 "s22" (Mat.get m 1 1) s.(3)


(* ------------------------------------------------------------------ *)
(* Projections                                                         *)
(* ------------------------------------------------------------------ *)

let test_simplex_projection_known () =
  let v = Vec.of_list [ 0.8; 0.6 ] in
  let p = Projections.simplex v in
  check_float 1e-9 "sums to 1" 1. (Vec.sum p);
  check_float 1e-9 "x0" 0.6 p.(0);
  check_float 1e-9 "x1" 0.4 p.(1)

let test_simplex_projection_clips () =
  let v = Vec.of_list [ 2.; -5.; 0.1 ] in
  let p = Projections.simplex v in
  check_float 1e-9 "sums to 1" 1. (Vec.sum p);
  check_float 1e-9 "negative clipped" 0. p.(1)

let test_simplex_projection_total () =
  let v = Vec.of_list [ 1.; 2.; 3. ] in
  let p = Projections.simplex ~total:12. v in
  check_float 1e-9 "sum" 12. (Vec.sum p);
  (* Interior case: projection just shifts by a constant. *)
  check_float 1e-9 "shift" (p.(1) -. p.(0)) 1.

let test_block_simplex () =
  let block = [| 0; 1; 0; 1 |] in
  let v = Vec.of_list [ 0.9; 5.; 0.5; -1. ] in
  let p = Projections.block_simplex ~block v in
  check_float 1e-9 "block 0 sum" 1. (p.(0) +. p.(2));
  check_float 1e-9 "block 1 sum" 1. (p.(1) +. p.(3));
  check_float 1e-9 "block 1 clip" 0. p.(3)

let prop_simplex_projection_optimal =
  (* The projection must be at least as close to v as any random simplex
     point. *)
  QCheck.Test.make ~name:"simplex projection is closest point" ~count:100
    (QCheck.pair
       (QCheck.array_of_size (QCheck.Gen.return 5) (QCheck.float_range (-3.) 3.))
       (QCheck.array_of_size (QCheck.Gen.return 5)
          (QCheck.float_range 0.01 1.)))
    (fun (v, w) ->
      let p = Projections.simplex v in
      let total = Array.fold_left ( +. ) 0. w in
      let q = Array.map (fun x -> x /. total) w in
      abs_float (Vec.sum p -. 1.) < 1e-9
      && Array.for_all (fun x -> x >= 0.) p
      && Vec.dist2 p v <= Vec.dist2 q v +. 1e-9)


(* ------------------------------------------------------------------ *)
(* Conjugate gradients                                                 *)
(* ------------------------------------------------------------------ *)

let test_cg_matches_cholesky () =
  let a = Mat.add (Mat.gram (Mat.of_rows [| [| 1.; 2.; 0. |]; [| 0.; 1.; 3. |] |])) (Mat.identity 3) in
  let b = Vec.of_list [ 1.; -2.; 0.5 ] in
  let r = Cg.solve_mat a b in
  let x_chol = Chol.solve_system a b in
  Alcotest.(check bool) "converged" true r.Cg.converged;
  Alcotest.(check bool) "matches cholesky" true
    (Vec.equal ~eps:1e-7 r.Cg.x x_chol)

let test_cg_exact_in_n_steps () =
  (* CG on an n-dimensional SPD system converges in at most n steps. *)
  let a = Mat.diag (Vec.of_list [ 1.; 10.; 100.; 1000. ]) in
  let b = Vec.ones 4 in
  let r = Cg.solve_mat ~stop:(Stop.make ~tol:1e-12 ()) a b in
  Alcotest.(check bool) "few iterations" true (r.Cg.iterations <= 5);
  check_float 1e-9 "x3" 1e-3 r.Cg.x.(3)

let test_cg_operator_form () =
  let apply v = Vec.mapi (fun i x -> (float_of_int (i + 1)) *. x) v in
  let b = Vec.of_list [ 2.; 6.; 12. ] in
  let r = Cg.solve ~apply ~b () in
  Alcotest.(check bool) "solution" true
    (Vec.equal ~eps:1e-8 r.Cg.x (Vec.of_list [ 2.; 3.; 4. ]))

let test_cg_lsqr_normal () =
  let m = Mat.of_rows [| [| 1.; 0. |]; [| 1.; 1. |]; [| 1.; 2. |] |] in
  let b = Vec.of_list [ 1.; 3.; 5. ] in
  let r =
    Cg.lsqr_normal ~matvec:(Mat.matvec m) ~tmatvec:(Mat.tmatvec m) ~b ()
  in
  let x_qr = Qr.solve_lstsq m b in
  Alcotest.(check bool) "matches QR least squares" true
    (Vec.equal ~eps:1e-7 r.Cg.x x_qr)

let prop_cg_residual_decreases =
  QCheck.Test.make ~name:"cg solves SPD systems" ~count:40
    (QCheck.array_of_size (QCheck.Gen.return 9) (QCheck.float_range (-2.) 2.))
    (fun data ->
      let m = Mat.init 3 3 (fun i j -> data.((i * 3) + j)) in
      let a = Mat.add (Mat.gram m) (Mat.identity 3) in
      let b = Vec.of_list [ 1.; 2.; 3. ] in
      let r = Cg.solve_mat a b in
      r.Cg.residual_norm <= 1e-6 *. Vec.norm2 b)


(* ------------------------------------------------------------------ *)
(* Error-path contracts                                                *)
(* ------------------------------------------------------------------ *)

let expect_invalid f =
  Alcotest.(check bool) "rejected" true
    (try
       ignore (f ());
       false
     with Invalid_argument _ -> true)

let test_error_contracts () =
  expect_invalid (fun () -> Fista.solve ~dim:2 ~gradient:(fun v -> v) ~lipschitz:0. ());
  expect_invalid (fun () ->
      Proxgrad.kl_prox ~weight:(-1.) ~prior:(Vec.ones 1) 0.1 (Vec.ones 1));
  expect_invalid (fun () -> Projections.simplex ~total:0. (Vec.ones 2));
  expect_invalid (fun () -> Projections.simplex (Vec.zeros 0));
  expect_invalid (fun () ->
      Projections.block_simplex ~block:[| 0 |] (Vec.ones 2));
  expect_invalid (fun () ->
      Scaling.ipf (Mat.identity 2) ~row_sums:(Vec.ones 3)
        ~col_sums:(Vec.ones 2));
  expect_invalid (fun () ->
      Scaling.gis (Mat.of_rows [| [| -1. |] |]) (Vec.ones 1)
        ~prior:(Vec.ones 1));
  expect_invalid (fun () -> Cg.solve_mat (Mat.zeros 2 3) (Vec.ones 2));
  expect_invalid (fun () ->
      Simplex.minimize (Simplex.make (Mat.identity 2) (Vec.ones 2))
        (Vec.ones 3))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_simplex_weak_duality; prop_nnls_beats_clipped_ls;
      prop_simplex_projection_optimal; prop_cg_residual_decreases ]

let () =
  Alcotest.run "opt"
    [
      ( "simplex",
        [
          Alcotest.test_case "basic max" `Quick test_simplex_basic_max;
          Alcotest.test_case "basic min" `Quick test_simplex_basic_min;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "warm restart" `Quick test_simplex_warm_restart;
          Alcotest.test_case "degenerate" `Quick test_simplex_degenerate;
          Alcotest.test_case "redundant rows" `Quick
            test_simplex_redundant_rows;
          Alcotest.test_case "bounds via equalities" `Quick
            test_simplex_equality_route;
        ] );
      ( "nnls",
        [
          Alcotest.test_case "interior" `Quick test_nnls_unconstrained_interior;
          Alcotest.test_case "active bound" `Quick test_nnls_active_bound;
          Alcotest.test_case "kkt" `Quick test_nnls_kkt;
        ] );
      ( "fista",
        [
          Alcotest.test_case "matches nnls" `Quick test_fista_matches_nnls;
          Alcotest.test_case "projection" `Quick test_fista_simple_projection;
          Alcotest.test_case "lipschitz estimate" `Quick
            test_lipschitz_estimate;
        ] );
      ( "proxgrad",
        [
          Alcotest.test_case "kl prox fixed point" `Quick
            test_kl_prox_identity_at_prior;
          Alcotest.test_case "kl prox closed form" `Quick
            test_kl_prox_closed_form;
          Alcotest.test_case "kl divergence" `Quick test_kl_divergence;
          Alcotest.test_case "entropy solution" `Quick
            test_proxgrad_entropy_solution;
        ] );
      ( "eqqp",
        [
          Alcotest.test_case "projection" `Quick test_eqqp_projection;
          Alcotest.test_case "constraint satisfied" `Quick
            test_eqqp_constraint_satisfied;
          Alcotest.test_case "nonneg active set" `Quick test_eqqp_nonneg;
          Alcotest.test_case "nonneg interior" `Quick
            test_eqqp_nonneg_matches_plain_when_interior;
        ] );
      ( "cg",
        [
          Alcotest.test_case "matches cholesky" `Quick test_cg_matches_cholesky;
          Alcotest.test_case "n-step exact" `Quick test_cg_exact_in_n_steps;
          Alcotest.test_case "operator form" `Quick test_cg_operator_form;
          Alcotest.test_case "normal equations" `Quick test_cg_lsqr_normal;
        ] );
      ( "projections",
        [
          Alcotest.test_case "known values" `Quick
            test_simplex_projection_known;
          Alcotest.test_case "clips negatives" `Quick
            test_simplex_projection_clips;
          Alcotest.test_case "custom total" `Quick
            test_simplex_projection_total;
          Alcotest.test_case "blocks" `Quick test_block_simplex;
        ] );
      ( "scaling",
        [
          Alcotest.test_case "ipf marginals" `Quick test_ipf_matches_marginals;
          Alcotest.test_case "ipf zeros" `Quick test_ipf_keeps_structural_zeros;
          Alcotest.test_case "gis constraints" `Quick test_gis_solves_constraints;
          Alcotest.test_case "gis = ipf" `Quick test_gis_agrees_with_ipf;
        ] );
      ( "error-contracts",
        [ Alcotest.test_case "invalid inputs rejected" `Quick
            test_error_contracts ] );
      ("properties", qcheck_cases);
    ]
