open Tmest_linalg

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_basic () =
  let v = Vec.of_list [ 1.; 2.; 3. ] in
  check_float "sum" 6. (Vec.sum v);
  check_float "mean" 2. (Vec.mean v);
  check_float "norm1" 6. (Vec.norm1 v);
  check_float "norm2" (sqrt 14.) (Vec.norm2 v);
  check_float "norm_inf" 3. (Vec.norm_inf v);
  Alcotest.(check int) "argmax" 2 (Vec.argmax v);
  Alcotest.(check int) "argmin" 0 (Vec.argmin v)

let test_vec_ops () =
  let u = Vec.of_list [ 1.; -2.; 3. ] and v = Vec.of_list [ 4.; 5.; -6. ] in
  check_float "dot" (1. *. 4. -. 2. *. 5. -. 3. *. 6.) (Vec.dot u v);
  Alcotest.(check bool) "add" true
    (Vec.equal (Vec.add u v) (Vec.of_list [ 5.; 3.; -3. ]));
  Alcotest.(check bool) "sub" true
    (Vec.equal (Vec.sub u v) (Vec.of_list [ -3.; -7.; 9. ]));
  Alcotest.(check bool) "scale" true
    (Vec.equal (Vec.scale 2. u) (Vec.of_list [ 2.; -4.; 6. ]));
  Alcotest.(check bool) "axpy" true
    (Vec.equal (Vec.axpy 2. u v) (Vec.of_list [ 6.; 1.; 0. ]));
  Alcotest.(check bool) "clamp" true
    (Vec.equal (Vec.clamp_nonneg u) (Vec.of_list [ 1.; 0.; 3. ]))

let test_vec_axpy_inplace () =
  let x = Vec.of_list [ 1.; 2. ] and y = Vec.of_list [ 10.; 20. ] in
  Vec.axpy_into 3. x y ~dst:y;
  Alcotest.(check bool) "inplace" true
    (Vec.equal y (Vec.of_list [ 13.; 26. ]))

let test_vec_dim_mismatch () =
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Vec.add: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.add (Vec.zeros 2) (Vec.zeros 3)))

let test_vec_basis () =
  let e = Vec.basis 4 2 in
  check_float "basis sum" 1. (Vec.sum e);
  check_float "basis entry" 1. e.(2)

(* ------------------------------------------------------------------ *)
(* Mat                                                                 *)
(* ------------------------------------------------------------------ *)

let m23 = Mat.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |]

let test_mat_basic () =
  Alcotest.(check int) "rows" 2 (Mat.rows m23);
  Alcotest.(check int) "cols" 3 (Mat.cols m23);
  check_float "get" 6. (Mat.get m23 1 2);
  Alcotest.(check bool) "row" true
    (Vec.equal (Mat.row m23 1) (Vec.of_list [ 4.; 5.; 6. ]));
  Alcotest.(check bool) "col" true
    (Vec.equal (Mat.col m23 1) (Vec.of_list [ 2.; 5. ]))

let test_mat_transpose () =
  let t = Mat.transpose m23 in
  Alcotest.(check int) "t rows" 3 (Mat.rows t);
  check_float "t entry" 6. (Mat.get t 2 1);
  Alcotest.(check bool) "double transpose" true
    (Mat.equal (Mat.transpose t) m23)

let test_mat_matmul () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_rows [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Mat.matmul a b in
  Alcotest.(check bool) "product" true
    (Mat.equal c (Mat.of_rows [| [| 19.; 22. |]; [| 43.; 50. |] |]));
  let i = Mat.identity 2 in
  Alcotest.(check bool) "identity" true (Mat.equal (Mat.matmul a i) a)

let test_mat_matvec () =
  let y = Mat.matvec m23 (Vec.of_list [ 1.; 1.; 1. ]) in
  Alcotest.(check bool) "matvec" true (Vec.equal y (Vec.of_list [ 6.; 15. ]));
  let z = Mat.tmatvec m23 (Vec.of_list [ 1.; 1. ]) in
  Alcotest.(check bool) "tmatvec" true
    (Vec.equal z (Vec.of_list [ 5.; 7.; 9. ]))

let test_mat_gram () =
  let g = Mat.gram m23 in
  Alcotest.(check bool) "gram = AtA" true
    (Mat.equal g (Mat.matmul (Mat.transpose m23) m23));
  Alcotest.(check bool) "gram symmetric" true (Mat.is_symmetric g)

let test_mat_stack () =
  let v = Mat.vstack m23 m23 in
  Alcotest.(check int) "vstack rows" 4 (Mat.rows v);
  check_float "vstack entry" 4. (Mat.get v 3 0);
  let h = Mat.hstack m23 m23 in
  Alcotest.(check int) "hstack cols" 6 (Mat.cols h);
  check_float "hstack entry" 1. (Mat.get h 0 3)

let test_mat_select_cols () =
  let s = Mat.select_cols m23 [| 2; 0 |] in
  Alcotest.(check bool) "select" true
    (Mat.equal s (Mat.of_rows [| [| 3.; 1. |]; [| 6.; 4. |] |]))

let test_mat_scale_cols () =
  let s = Mat.scale_cols m23 (Vec.of_list [ 1.; 10.; 100. ]) in
  Alcotest.(check bool) "scale_cols" true
    (Mat.equal s (Mat.of_rows [| [| 1.; 20.; 300. |]; [| 4.; 50.; 600. |] |]))

(* ------------------------------------------------------------------ *)
(* LU / Cholesky / QR                                                  *)
(* ------------------------------------------------------------------ *)

let test_lu_solve () =
  let a = Mat.of_rows [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let b = Vec.of_list [ 3.; 5. ] in
  let x = Lu.solve_system a b in
  let r = Vec.sub (Mat.matvec a x) b in
  check_float "residual" 0. (Vec.norm_inf r)

let test_lu_pivoting () =
  (* Requires row exchange: zero top-left pivot. *)
  let a = Mat.of_rows [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Lu.solve_system a (Vec.of_list [ 2.; 3. ]) in
  Alcotest.(check bool) "swap solve" true
    (Vec.equal x (Vec.of_list [ 3.; 2. ]))

let test_lu_det () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_float "det" (-2.) (Lu.det (Lu.factor a))

let test_lu_singular () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.(check bool) "raises Singular" true
    (try
       ignore (Lu.factor a);
       false
     with Lu.Singular _ -> true)

let test_lu_inverse () =
  let a = Mat.of_rows [| [| 4.; 7. |]; [| 2.; 6. |] |] in
  let ai = Lu.inverse a in
  Alcotest.(check bool) "A * A^-1 = I" true
    (Mat.equal ~eps:1e-12 (Mat.matmul a ai) (Mat.identity 2))

let test_chol () =
  let a = Mat.of_rows [| [| 4.; 2. |]; [| 2.; 3. |] |] in
  let f = Chol.factor a in
  let l = Chol.lower f in
  Alcotest.(check bool) "L*Lt = A" true
    (Mat.equal ~eps:1e-12 (Mat.matmul l (Mat.transpose l)) a);
  let x = Chol.solve f (Vec.of_list [ 1.; 2. ]) in
  let r = Vec.sub (Mat.matvec a x) (Vec.of_list [ 1.; 2. ]) in
  check_float "chol residual" 0. (Vec.norm_inf r);
  check_float_loose "log det" (log (4. *. 3. -. 4.)) (Chol.log_det f)

let test_chol_not_pd () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Chol.factor a);
       false
     with Chol.Not_positive_definite _ -> true)

let test_qr_lstsq () =
  (* Overdetermined fit y = 2x + 1 exactly. *)
  let a = Mat.of_rows [| [| 0.; 1. |]; [| 1.; 1. |]; [| 2.; 1. |] |] in
  let b = Vec.of_list [ 1.; 3.; 5. ] in
  let x = Qr.solve_lstsq a b in
  check_float_loose "slope" 2. x.(0);
  check_float_loose "intercept" 1. x.(1)

let test_qr_residual_orthogonal () =
  let a =
    Mat.of_rows
      [| [| 1.; 0. |]; [| 1.; 1. |]; [| 1.; 2. |]; [| 1.; 3. |] |]
  in
  let b = Vec.of_list [ 1.; 0.; 2.; 1. ] in
  let x = Qr.solve_lstsq a b in
  let r = Vec.sub b (Mat.matvec a x) in
  (* Least-squares residual is orthogonal to the column space. *)
  check_float_loose "At r = 0" 0. (Vec.norm_inf (Mat.tmatvec a r))

(* ------------------------------------------------------------------ *)
(* CSR                                                                 *)
(* ------------------------------------------------------------------ *)

let test_csr_roundtrip () =
  let d = Mat.of_rows [| [| 0.; 1.; 0. |]; [| 2.; 0.; 3. |] |] in
  let s = Csr.of_dense d in
  Alcotest.(check int) "nnz" 3 (Csr.nnz s);
  Alcotest.(check bool) "roundtrip" true (Mat.equal (Csr.to_dense s) d);
  check_float "get stored" 3. (Csr.get s 1 2);
  check_float "get zero" 0. (Csr.get s 0 0)

let test_csr_matvec () =
  let d = Mat.of_rows [| [| 0.; 1.; 0. |]; [| 2.; 0.; 3. |] |] in
  let s = Csr.of_dense d in
  let x = Vec.of_list [ 1.; 2.; 3. ] in
  Alcotest.(check bool) "matvec" true
    (Vec.equal (Csr.matvec s x) (Mat.matvec d x));
  let y = Vec.of_list [ 5.; 7. ] in
  Alcotest.(check bool) "tmatvec" true
    (Vec.equal (Csr.tmatvec s y) (Mat.tmatvec d y))

let test_csr_duplicates () =
  let s = Csr.of_triplets ~rows:1 ~cols:2 [ (0, 0, 1.); (0, 0, 2.) ] in
  check_float "summed" 3. (Csr.get s 0 0);
  Alcotest.(check int) "nnz after merge" 1 (Csr.nnz s)

let test_csr_transpose_gram () =
  let d = Mat.of_rows [| [| 1.; 0.; 2. |]; [| 0.; 3.; 0. |] |] in
  let s = Csr.of_dense d in
  Alcotest.(check bool) "transpose" true
    (Mat.equal (Csr.to_dense (Csr.transpose s)) (Mat.transpose d));
  Alcotest.(check bool) "gram" true
    (Mat.equal (Csr.gram s) (Mat.gram d))

(* ------------------------------------------------------------------ *)
(* Property-based                                                      *)
(* ------------------------------------------------------------------ *)

let mat_gen rows cols =
  QCheck.Gen.(
    array_size (return (rows * cols)) (float_bound_inclusive 10.)
    |> map (fun data -> Mat.init rows cols (fun i j -> data.((i * cols) + j))))

let arb_mat rows cols = QCheck.make (mat_gen rows cols)

let prop_transpose_product =
  QCheck.Test.make ~name:"(AB)t = Bt At" ~count:50
    (QCheck.pair (arb_mat 3 4) (arb_mat 4 2))
    (fun (a, b) ->
      Mat.equal ~eps:1e-9
        (Mat.transpose (Mat.matmul a b))
        (Mat.matmul (Mat.transpose b) (Mat.transpose a)))

let prop_matvec_linear =
  QCheck.Test.make ~name:"A(x+y) = Ax + Ay" ~count:50
    (QCheck.triple (arb_mat 4 3)
       (QCheck.array_of_size (QCheck.Gen.return 3) (QCheck.float_bound_inclusive 5.))
       (QCheck.array_of_size (QCheck.Gen.return 3) (QCheck.float_bound_inclusive 5.)))
    (fun (a, x, y) ->
      Vec.equal ~eps:1e-9
        (Mat.matvec a (Vec.add x y))
        (Vec.add (Mat.matvec a x) (Mat.matvec a y)))

let prop_lu_solve =
  QCheck.Test.make ~name:"LU solve residual small" ~count:50
    (QCheck.pair (arb_mat 4 4)
       (QCheck.array_of_size (QCheck.Gen.return 4) (QCheck.float_bound_inclusive 5.)))
    (fun (a, b) ->
      (* Make the matrix diagonally dominant so it is well conditioned. *)
      let a = Mat.add a (Mat.scale 50. (Mat.identity 4)) in
      let x = Lu.solve_system a b in
      Vec.norm_inf (Vec.sub (Mat.matvec a x) b) < 1e-8)

let prop_chol_gram =
  QCheck.Test.make ~name:"Cholesky of Gram + I solves" ~count:50
    (QCheck.pair (arb_mat 5 3)
       (QCheck.array_of_size (QCheck.Gen.return 3) (QCheck.float_bound_inclusive 5.)))
    (fun (a, b) ->
      let h = Mat.add (Mat.gram a) (Mat.identity 3) in
      let x = Chol.solve_system h b in
      Vec.norm_inf (Vec.sub (Mat.matvec h x) b) < 1e-8)

let prop_csr_matches_dense =
  QCheck.Test.make ~name:"CSR matvec = dense matvec" ~count:50
    (QCheck.pair (arb_mat 4 6)
       (QCheck.array_of_size (QCheck.Gen.return 6) (QCheck.float_bound_inclusive 5.)))
    (fun (a, x) ->
      (* Sparsify: zero entries below 5 to exercise the sparse paths. *)
      let a = Mat.init 4 6 (fun i j ->
          let v = Mat.get a i j in
          if v < 5. then 0. else v)
      in
      Vec.equal ~eps:1e-9 (Csr.matvec (Csr.of_dense a) x) (Mat.matvec a x))


(* ------------------------------------------------------------------ *)
(* Eigen (Jacobi)                                                      *)
(* ------------------------------------------------------------------ *)

let test_eigen_diagonal () =
  let d = Eigen.symmetric (Mat.diag (Vec.of_list [ 3.; 1.; 2. ])) in
  Alcotest.(check bool) "sorted values" true
    (Vec.equal ~eps:1e-12 d.Eigen.values (Vec.of_list [ 3.; 2.; 1. ]))

let test_eigen_known_2x2 () =
  (* [[2,1],[1,2]] has eigenvalues 3 and 1. *)
  let d = Eigen.symmetric (Mat.of_rows [| [| 2.; 1. |]; [| 1.; 2. |] |]) in
  check_float "l1" 3. d.Eigen.values.(0);
  check_float "l2" 1. d.Eigen.values.(1)

let test_eigen_reconstruct () =
  let a = Mat.gram (Mat.of_rows [| [| 1.; 2.; 0. |]; [| 0.; 1.; 3. |] |]) in
  let d = Eigen.symmetric a in
  Alcotest.(check bool) "V D Vt = A" true
    (Mat.equal ~eps:1e-8 (Eigen.reconstruct d) a)

let test_eigen_orthonormal_vectors () =
  let a =
    Mat.add
      (Mat.gram (Mat.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |]))
      (Mat.identity 3)
  in
  let d = Eigen.symmetric a in
  let vtv = Mat.matmul (Mat.transpose d.Eigen.vectors) d.Eigen.vectors in
  Alcotest.(check bool) "Vt V = I" true
    (Mat.equal ~eps:1e-9 vtv (Mat.identity 3))

let test_eigen_psd_rank () =
  (* Gram of a 2x4 matrix: rank <= 2, so two zero eigenvalues. *)
  let a = Mat.gram (Mat.of_rows [| [| 1.; 2.; 3.; 4. |]; [| 0.; 1.; 0.; 1. |] |]) in
  let d = Eigen.symmetric a in
  check_float_loose "null eigenvalue" 0. d.Eigen.values.(2);
  check_float_loose "null eigenvalue" 0. d.Eigen.values.(3)

let prop_eigen_spectral_norm_bounds_matvec =
  QCheck.Test.make ~name:"||Ax|| <= lmax ||x|| for PSD A" ~count:40
    (QCheck.pair (arb_mat 3 3)
       (QCheck.array_of_size (QCheck.Gen.return 3)
          (QCheck.float_range (-2.) 2.)))
    (fun (b, x) ->
      let a = Mat.gram b in
      let lmax = Eigen.spectral_norm a in
      Vec.norm2 (Mat.matvec a x) <= (lmax +. 1e-6) *. (Vec.norm2 x +. 1e-9))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_transpose_product;
      prop_matvec_linear;
      prop_lu_solve;
      prop_chol_gram;
      prop_csr_matches_dense;
      prop_eigen_spectral_norm_bounds_matvec;
    ]

let () =
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basic;
          Alcotest.test_case "ops" `Quick test_vec_ops;
          Alcotest.test_case "axpy inplace" `Quick test_vec_axpy_inplace;
          Alcotest.test_case "dim mismatch" `Quick test_vec_dim_mismatch;
          Alcotest.test_case "basis" `Quick test_vec_basis;
        ] );
      ( "mat",
        [
          Alcotest.test_case "basics" `Quick test_mat_basic;
          Alcotest.test_case "transpose" `Quick test_mat_transpose;
          Alcotest.test_case "matmul" `Quick test_mat_matmul;
          Alcotest.test_case "matvec" `Quick test_mat_matvec;
          Alcotest.test_case "gram" `Quick test_mat_gram;
          Alcotest.test_case "stack" `Quick test_mat_stack;
          Alcotest.test_case "select cols" `Quick test_mat_select_cols;
          Alcotest.test_case "scale cols" `Quick test_mat_scale_cols;
        ] );
      ( "factorizations",
        [
          Alcotest.test_case "lu solve" `Quick test_lu_solve;
          Alcotest.test_case "lu pivoting" `Quick test_lu_pivoting;
          Alcotest.test_case "lu det" `Quick test_lu_det;
          Alcotest.test_case "lu singular" `Quick test_lu_singular;
          Alcotest.test_case "lu inverse" `Quick test_lu_inverse;
          Alcotest.test_case "cholesky" `Quick test_chol;
          Alcotest.test_case "cholesky not pd" `Quick test_chol_not_pd;
          Alcotest.test_case "qr lstsq" `Quick test_qr_lstsq;
          Alcotest.test_case "qr residual orthogonal" `Quick
            test_qr_residual_orthogonal;
        ] );
      ( "eigen",
        [
          Alcotest.test_case "diagonal" `Quick test_eigen_diagonal;
          Alcotest.test_case "2x2" `Quick test_eigen_known_2x2;
          Alcotest.test_case "reconstruct" `Quick test_eigen_reconstruct;
          Alcotest.test_case "orthonormal" `Quick
            test_eigen_orthonormal_vectors;
          Alcotest.test_case "psd rank" `Quick test_eigen_psd_rank;
        ] );
      ( "csr",
        [
          Alcotest.test_case "roundtrip" `Quick test_csr_roundtrip;
          Alcotest.test_case "matvec" `Quick test_csr_matvec;
          Alcotest.test_case "duplicates" `Quick test_csr_duplicates;
          Alcotest.test_case "transpose gram" `Quick test_csr_transpose_gram;
        ] );
      ("properties", qcheck_cases);
    ]
