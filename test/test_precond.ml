(* Preconditioner stack: exact operator diagonals, SPD-ness of the CG
   preconditioners, preconditioned-vs-classic CG agreement, and the
   Jacobi-preconditioned golden MREs at jobs = 1 and 2.

   Regenerate the Jacobi goldens after an intentional numerical change
   with:  PRECOND_PRINT=1 dune exec test/test_precond.exe *)

module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Csr = Tmest_linalg.Csr
module Op = Tmest_linalg.Op
module Cg = Tmest_opt.Cg
module Stop = Tmest_opt.Stop
module Rng = Tmest_stats.Rng
module Core = Tmest_core
module Workspace = Tmest_core.Workspace
module Pool = Tmest_parallel.Pool
module Dataset = Tmest_traffic.Dataset
module Spec = Tmest_traffic.Spec

let check_float = Alcotest.(check (float 1e-9))

(* ----------------------------------------------------- op diagonals *)

let random_csr rng ~rows ~cols =
  let entries = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if Rng.float rng < 0.3 then
        entries := (i, j, Rng.uniform rng ~lo:(-2.) ~hi:2.) :: !entries
    done
  done;
  (* Keep every column populated so no diagonal entry is trivially 0. *)
  for j = 0 to cols - 1 do
    entries := (Rng.int rng rows, j, 1.) :: !entries
  done;
  Csr.of_triplets ~rows ~cols !entries

let brute_normal_diag m =
  let d = Mat.gram (Csr.to_dense m) in
  Vec.init (Csr.cols m) (fun i -> Mat.get d i i)

let op_diagonals () =
  let rng = Rng.create 42 in
  let m = random_csr rng ~rows:23 ~cols:17 in
  let op = Op.of_csr m in
  (* Exact normal diagonal from one CSR pass vs the dense reference. *)
  (match Op.normal_diagonal op with
  | None -> Alcotest.fail "of_csr must expose a normal diagonal"
  | Some d ->
      let want = brute_normal_diag m in
      Array.iteri (fun i di -> check_float "csr normal diag" want.(i) di) d);
  (* The composed normal operator inherits it as its plain diagonal. *)
  (match Op.diagonal (Op.normal op) with
  | None -> Alcotest.fail "normal op must expose its diagonal"
  | Some d ->
      let want = brute_normal_diag m in
      Array.iteri (fun i di -> check_float "normal op diag" want.(i) di) d);
  (* shift/scale keep the diagonal exact. *)
  let g = Op.shift (Op.scale 2. (Op.normal op)) 0.75 in
  (match Op.diagonal g with
  | None -> Alcotest.fail "shifted op must keep its diagonal"
  | Some d ->
      let want = brute_normal_diag m in
      Array.iteri
        (fun i di -> check_float "shifted diag" ((2. *. want.(i)) +. 0.75) di)
        d);
  (* precondition: D^{-1/2} A D^{-1/2} has unit diagonal when D = diag A. *)
  let d = Option.get (Op.diagonal g) in
  let pg = Op.precondition g d in
  match Op.diagonal pg with
  | None -> Alcotest.fail "preconditioned op must keep its diagonal"
  | Some pd -> Array.iter (fun di -> check_float "unit diagonal" 1. di) pd

(* ------------------------------------------------ SPD preconditioners *)

(* A sparse-mode workspace large enough to have non-trivial per-source
   blocks. *)
let sparse_ws () =
  let d = Dataset.synthetic ~pops:60 () in
  let ws = Workspace.create d.Dataset.routing in
  Alcotest.(check bool) "sparse mode" true (Workspace.is_sparse ws);
  (d, ws)

let minv_spd () =
  let d, ws = sparse_ws () in
  let p = Dataset.num_pairs d in
  let rng = Rng.create 7 in
  let rand () = Vec.init p (fun _ -> Rng.uniform rng ~lo:(-1.) ~hi:1.) in
  let appliers =
    ("jacobi", fun r ~dst -> Workspace.jacobi_cg_minv ws ~shift:0.5 r ~dst)
    ::
    (match Workspace.block_jacobi_cg_minv ws ~shift:0.5 with
    | Some f -> [ ("block", f) ]
    | None -> Alcotest.fail "block preconditioner within budget at 60 PoPs")
  in
  List.iter
    (fun (name, minv) ->
      let u = rand () and v = rand () in
      let mu = Vec.zeros p and mv = Vec.zeros p in
      minv u ~dst:mu;
      minv v ~dst:mv;
      (* Symmetry: <u, M⁻¹v> = <M⁻¹u, v>. *)
      let uv = Vec.dot u mv and vu = Vec.dot mu v in
      let scale = 1. +. abs_float uv in
      Alcotest.(check bool)
        (name ^ " symmetric") true
        (abs_float (uv -. vu) /. scale < 1e-10);
      (* Positive definiteness on random nonzero vectors. *)
      Alcotest.(check bool) (name ^ " positive") true (Vec.dot u mu > 0.);
      (* Linearity (the appliers must not mutate hidden state): applying
         to u + v matches the sum of the images. *)
      let s = Vec.add u v in
      let ms = Vec.zeros p in
      minv s ~dst:ms;
      Array.iteri
        (fun i si ->
          Alcotest.(check (float 1e-10)) (name ^ " linear") (mu.(i) +. mv.(i))
            si)
        ms)
    appliers

(* ------------------------------------------------------- pcg vs cg *)

let pcg_matches_cg () =
  let rng = Rng.create 19 in
  let dim = 40 in
  let b0 = Mat.init dim dim (fun _ _ -> Rng.uniform rng ~lo:(-1.) ~hi:1.) in
  (* SPD with a deliberately skewed diagonal so Jacobi has something to
     normalize. *)
  let a = Mat.gram b0 in
  for i = 0 to dim - 1 do
    Mat.set a i i (Mat.get a i i +. (1. +. (10. *. float_of_int i)))
  done;
  let b = Vec.init dim (fun _ -> Rng.uniform rng ~lo:(-1.) ~hi:1.) in
  let apply_into x ~dst = Mat.matvec_into a x ~dst in
  let stop = Stop.make ~tol:1e-13 ~max_iter:(4 * dim) () in
  let plain = Cg.solve_into ~stop ~apply_into ~b () in
  let dinv = Vec.init dim (fun i -> 1. /. Mat.get a i i) in
  let m_inv_into r ~dst = Vec.mul_into dinv r ~dst in
  let pcg = Cg.solve_into ~stop ~m_inv_into ~apply_into ~b () in
  Alcotest.(check bool) "cg converged" true plain.Cg.converged;
  Alcotest.(check bool) "pcg converged" true pcg.Cg.converged;
  Array.iteri (fun i xi -> check_float "solution" plain.Cg.x.(i) xi) pcg.Cg.x;
  (* On a diagonally skewed system Jacobi must pay for itself. *)
  Alcotest.(check bool)
    "pcg iterations no worse" true
    (pcg.Cg.iterations <= plain.Cg.iterations);
  (* The workspace preconditioners drive the same agreement on the real
     shifted normal equations G + shift·I. *)
  let d, ws = sparse_ws () in
  let p = Dataset.num_pairs d in
  let shift = 0.3 in
  let normal = Workspace.normal_op ws in
  let g_shift = Op.shift normal shift in
  let apply_into x ~dst = Op.apply_into g_shift x ~dst in
  let rng = Rng.create 23 in
  let b = Vec.init p (fun _ -> Rng.uniform rng ~lo:0. ~hi:1.) in
  let stop = Stop.make ~tol:1e-12 ~max_iter:(2 * p) () in
  let plain = Cg.solve_into ~stop ~apply_into ~b () in
  let jacobi =
    Cg.solve_into ~stop
      ~m_inv_into:(fun r ~dst -> Workspace.jacobi_cg_minv ws ~shift r ~dst)
      ~apply_into ~b ()
  in
  let block_minv =
    match Workspace.block_jacobi_cg_minv ws ~shift with
    | Some f -> f
    | None -> Alcotest.fail "block preconditioner within budget at 60 PoPs"
  in
  let block = Cg.solve_into ~stop ~m_inv_into:block_minv ~apply_into ~b () in
  Alcotest.(check bool) "normal cg converged" true plain.Cg.converged;
  List.iter
    (fun (name, (r : Cg.result)) ->
      Alcotest.(check bool) (name ^ " converged") true r.Cg.converged;
      Array.iteri
        (fun i xi ->
          Alcotest.(check (float 1e-7)) (name ^ " solution") plain.Cg.x.(i) xi)
        r.Cg.x)
    [ ("jacobi", jacobi); ("block", block) ]

(* --------------------------------------- jacobi goldens, jobs = 1/2 *)

(* MRE per iterative method on the forced-sparse Europe problem with
   [Precond_jacobi] pinned — the preconditioned twin of the
   sparse-vs-dense golden in test_golden.ml.  Gravity/kruithof/wcb take
   no preconditioner and stay covered there. *)
let jacobi_goldens =
  [
    ("entropy", 0.078707155686765257);
    ("bayes", 0.16582693126765483);
    ("fanout", 0.41683301808442674);
    ("vardi", 0.95035966982391817);
    ("cao", 0.65832665616676667);
  ]

let jacobi_mres ~jobs =
  let d = Dataset.europe () in
  let pool = Pool.create ~jobs in
  let ws =
    Workspace.create ~pool ~mode:Workspace.Sparse d.Dataset.routing
  in
  let spec = d.Dataset.spec in
  let k = spec.Spec.busy_start + (spec.Spec.busy_len / 2) in
  let truth = Dataset.demand_at d k in
  let busy_truth = Dataset.busy_mean_demand d in
  let loads = Dataset.link_loads_at d k in
  let ks = Array.of_list (Dataset.busy_samples d) in
  let window = 10 in
  let ks = Array.sub ks (Array.length ks - window) window in
  let samples =
    Mat.init window (Dataset.num_links d) (fun i j ->
        (Dataset.link_loads_at d ks.(i)).(j))
  in
  let opts =
    Core.Estimator.Options.make ~precond:Workspace.Precond_jacobi ()
  in
  List.map
    (fun (name, _) ->
      let m = Core.Estimator.of_name name in
      let estimate = Core.Estimator.solve ~opts m ws ~loads ~load_samples:samples in
      let reference =
        if Core.Estimator.uses_time_series m then busy_truth else truth
      in
      (name, Core.Metrics.mre ~truth:reference ~estimate ()))
    jacobi_goldens

let jacobi_golden ~jobs () =
  List.iter2
    (fun (name, expected) (name', got) ->
      Alcotest.(check string) "method order" name name';
      check_float name expected got)
    jacobi_goldens (jacobi_mres ~jobs)

let jacobi_bit_identical () =
  List.iter2
    (fun (name, one) (_, two) ->
      Alcotest.(check bool)
        (name ^ " jobs=1 = jobs=2") true
        (Int64.equal (Int64.bits_of_float one) (Int64.bits_of_float two)))
    (jacobi_mres ~jobs:1) (jacobi_mres ~jobs:2)

let () =
  if Sys.getenv_opt "PRECOND_PRINT" <> None then begin
    List.iter
      (fun (name, v) -> Printf.printf "    (%S, %.17g);\n" name v)
      (jacobi_mres ~jobs:1);
    exit 0
  end;
  Alcotest.run "precond"
    [
      ( "operators",
        [ Alcotest.test_case "exact diagonals" `Quick op_diagonals ] );
      ( "minv",
        [ Alcotest.test_case "spd" `Quick minv_spd ] );
      ( "cg",
        [ Alcotest.test_case "pcg matches cg" `Quick pcg_matches_cg ] );
      ( "golden",
        [
          Alcotest.test_case "jacobi jobs=1" `Quick (jacobi_golden ~jobs:1);
          Alcotest.test_case "jacobi jobs=2" `Quick (jacobi_golden ~jobs:2);
          Alcotest.test_case "jacobi bit-identical" `Quick
            jacobi_bit_identical;
        ] );
    ]
