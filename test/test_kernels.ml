(* Equivalence of the destination-passing kernels with their allocating
   counterparts.  Every [*_into] must be BIT-identical to the function it
   shadows — the solver rewrite relies on swapping one for the other
   without moving any floating-point result — including on the edge
   cases: length 0, length 1, and an aliased destination. *)

open Tmest_linalg
open Tmest_opt

let rng = Tmest_stats.Rng.create 97

let rand_vec ?(offset = 0.) n =
  Vec.init n (fun _ -> offset +. Tmest_stats.Rng.float rng)

(* Bit-level equality: distinguishes 0. from -0. and catches any
   reordering of float operations. *)
let check_bits msg expected got =
  if Vec.dim expected <> Vec.dim got then
    Alcotest.failf "%s: dimension %d vs %d" msg (Vec.dim expected)
      (Vec.dim got);
  Array.iteri
    (fun i e ->
      if Int64.bits_of_float e <> Int64.bits_of_float got.(i) then
        Alcotest.failf "%s: index %d: %h vs %h" msg i e got.(i))
    expected

let dims = [ 0; 1; 17 ]

(* Each elementwise case: (name, allocating reference, into-kernel).
   [div] gets strictly positive inputs via [offset]. *)
let elementwise_cases =
  [
    ( "add",
      (fun u v -> Vec.add u v),
      fun u v ~dst -> Vec.add_into u v ~dst );
    ( "sub",
      (fun u v -> Vec.sub u v),
      fun u v ~dst -> Vec.sub_into u v ~dst );
    ( "mul",
      (fun u v -> Vec.mul u v),
      fun u v ~dst -> Vec.mul_into u v ~dst );
    ( "div",
      (fun u v -> Vec.div u v),
      fun u v ~dst -> Vec.div_into u v ~dst );
    ( "axpy",
      (fun u v -> Vec.axpy 1.7 u v),
      fun u v ~dst -> Vec.axpy_into 1.7 u v ~dst );
  ]

let test_elementwise_fresh_dst () =
  List.iter
    (fun (name, reference, into) ->
      List.iter
        (fun n ->
          let u = rand_vec ~offset:0.5 n and v = rand_vec ~offset:0.5 n in
          let expected = reference u v in
          let dst = rand_vec n in
          into u v ~dst;
          check_bits (Printf.sprintf "%s dim %d" name n) expected dst)
        dims)
    elementwise_cases

let test_elementwise_aliased_dst () =
  List.iter
    (fun (name, reference, into) ->
      List.iter
        (fun n ->
          let u = rand_vec ~offset:0.5 n and v = rand_vec ~offset:0.5 n in
          let expected = reference u v in
          (* dst aliases the first operand ... *)
          let u' = Vec.copy u in
          into u' v ~dst:u';
          check_bits (Printf.sprintf "%s dst==u dim %d" name n) expected u';
          (* ... and the second. *)
          let v' = Vec.copy v in
          into u v' ~dst:v';
          check_bits (Printf.sprintf "%s dst==v dim %d" name n) expected v')
        dims)
    elementwise_cases

let test_unary_kernels () =
  List.iter
    (fun n ->
      let v = Vec.init n (fun i -> Tmest_stats.Rng.float rng -. float_of_int (i mod 3)) in
      let expected = Vec.scale (-2.5) v in
      let dst = rand_vec n in
      Vec.scale_into (-2.5) v ~dst;
      check_bits (Printf.sprintf "scale dim %d" n) expected dst;
      let v' = Vec.copy v in
      Vec.scale_into (-2.5) v' ~dst:v';
      check_bits (Printf.sprintf "scale aliased dim %d" n) expected v';
      let expected = Vec.clamp_nonneg v in
      let v' = Vec.copy v in
      Vec.clamp_nonneg_into v' ~dst:v';
      check_bits (Printf.sprintf "clamp_nonneg aliased dim %d" n) expected v';
      let dst = rand_vec n in
      Vec.blit_into v ~dst;
      check_bits (Printf.sprintf "blit dim %d" n) v dst)
    dims

(* The fused residual update must be exactly [axpy_into] followed by
   [dot dst dst]: the store precedes the accumulate per element, so
   both the vector and the returned squared norm are bit-identical to
   the two-pass form — including the aliased shape CG actually uses
   (dst == y). *)
let test_axpy_sq_into () =
  List.iter
    (fun n ->
      let x = rand_vec n and y = rand_vec n in
      let a = -0.7 in
      let expected = Vec.axpy a x y in
      let expected_sq = Vec.dot expected expected in
      let dst = rand_vec n in
      let sq = Vec.axpy_sq_into a x y ~dst in
      check_bits (Printf.sprintf "axpy_sq dim %d" n) expected dst;
      if Int64.bits_of_float sq <> Int64.bits_of_float expected_sq then
        Alcotest.failf "axpy_sq dim %d: norm %h vs %h" n sq expected_sq;
      let y' = Vec.copy y in
      let sq' = Vec.axpy_sq_into a x y' ~dst:y' in
      check_bits (Printf.sprintf "axpy_sq dst==y dim %d" n) expected y';
      if Int64.bits_of_float sq' <> Int64.bits_of_float expected_sq then
        Alcotest.failf "axpy_sq aliased dim %d: norm %h vs %h" n sq'
          expected_sq)
    dims

let test_matvec_into () =
  List.iter
    (fun (r, c) ->
      let a = Mat.init r c (fun _ _ -> Tmest_stats.Rng.float rng) in
      let x = rand_vec c and y = rand_vec r in
      let dst_r = rand_vec r and dst_c = rand_vec c in
      Mat.matvec_into a x ~dst:dst_r;
      check_bits
        (Printf.sprintf "matvec %dx%d" r c)
        (Mat.matvec a x) dst_r;
      Mat.tmatvec_into a y ~dst:dst_c;
      check_bits
        (Printf.sprintf "tmatvec %dx%d" r c)
        (Mat.tmatvec a y) dst_c)
    [ (1, 1); (7, 5); (5, 7) ]

let test_matvec_into_alias_guard () =
  let a = Mat.init 3 3 (fun _ _ -> 1.) in
  let x = rand_vec 3 in
  Alcotest.(check bool)
    "matvec_into rejects dst == x" true
    (try
       Mat.matvec_into a x ~dst:x;
       false
     with Invalid_argument _ -> true)

let test_csr_matvec_into () =
  let dense =
    Mat.init 9 6 (fun i j -> if (i + (2 * j)) mod 3 = 0 then float_of_int (i + j) else 0.)
  in
  let m = Csr.of_dense dense in
  let x = rand_vec 6 and y = rand_vec 9 in
  let dst_r = rand_vec 9 and dst_c = rand_vec 6 in
  Csr.matvec_into m x ~dst:dst_r;
  check_bits "csr matvec" (Csr.matvec m x) dst_r;
  Csr.tmatvec_into m y ~dst:dst_c;
  check_bits "csr tmatvec" (Csr.tmatvec m y) dst_c

(* The KL prox inlines the Lambert-W evaluation (to keep the solver loop
   allocation-free); pin it to the reference [Lambert.w0_exp] across all
   three branches of the log-domain argument. *)
let test_kl_prox_matches_lambert () =
  let weight = 2. and step = 0.5 in
  let c = weight *. step in
  let prior = Vec.of_list [ 1.; 0.3; 2.; 0.; 1e-3; 4.; 1.; 1. ] in
  (* v chosen so log p - log c + v/c spans l < -700, l <= 1, l > 1. *)
  let v = Vec.of_list [ -800.; 0.2; 5.; 3.; -0.4; 40.; 0.9; 1.2 ] in
  let dst = Vec.zeros 8 in
  Proxgrad.kl_prox_into ~weight ~prior step v ~dst;
  Array.iteri
    (fun i p ->
      let expected =
        if p <= 0. then 0.
        else c *. Tmest_stats.Lambert.w0_exp (log p -. log c +. (v.(i) /. c))
      in
      if Int64.bits_of_float expected <> Int64.bits_of_float dst.(i) then
        Alcotest.failf "kl_prox vs lambert at %d: %h vs %h" i expected
          dst.(i))
    prior;
  (* And the aliased form used by the solver loop (dst == v). *)
  let v' = Vec.copy v in
  Proxgrad.kl_prox_into ~weight ~prior step v' ~dst:v';
  check_bits "kl_prox aliased" dst v'

let test_block_simplex_into () =
  let block = [| 0; 0; 1; 2; 1; 0; 2; 2 |] in
  let v = rand_vec 8 in
  let expected = Projections.block_simplex ~block v in
  let part = Projections.block_partition ~block in
  let dst = rand_vec 8 in
  Projections.block_simplex_into part v ~dst;
  check_bits "block_simplex fresh dst" expected dst;
  let v' = Vec.copy v in
  Projections.block_simplex_into part v' ~dst:v';
  check_bits "block_simplex aliased" expected v';
  (* The partition is reusable: a second projection through the same
     partition must not be perturbed by the first one's sort scratch. *)
  let w = rand_vec 8 in
  let dst2 = rand_vec 8 in
  Projections.block_simplex_into part w ~dst:dst2;
  check_bits "block_simplex reused partition"
    (Projections.block_simplex ~block w)
    dst2

(* Solver wrappers: the allocating entry points are thin shims over the
   [_into] cores, and a caller-provided scratch pool (with arbitrary
   stale contents) must not change any result. *)

let quadratic_problem dim =
  let a =
    Mat.add
      (Mat.gram (Mat.init dim dim (fun _ _ -> Tmest_stats.Rng.float rng)))
      (Mat.identity dim)
  in
  let b = rand_vec dim in
  (a, b)

let test_fista_scratch_invariance () =
  let dim = 12 in
  let a, b = quadratic_problem dim in
  let lipschitz = Fista.lipschitz_of_gram a in
  let gradient x = Vec.sub (Mat.matvec a x) b in
  let gradient_into x ~dst =
    Mat.matvec_into a x ~dst;
    Vec.sub_into dst b ~dst
  in
  let stop200 = Stop.make ~max_iter:200 () in
  let reference = Fista.solve ~stop:stop200 ~dim ~gradient ~lipschitz () in
  let scratch =
    Array.init Fista.scratch_size (fun _ -> rand_vec ~offset:3. dim)
  in
  let with_scratch =
    Fista.solve_into ~stop:stop200 ~scratch ~dim ~gradient_into ~lipschitz ()
  in
  check_bits "fista scratch invariance" reference.Fista.x
    with_scratch.Fista.x;
  Alcotest.(check int)
    "fista iteration count" reference.Fista.iterations
    with_scratch.Fista.iterations

let test_fista_scratch_validation () =
  let dim = 5 in
  let gradient_into _ ~dst = Vec.blit_into (Vec.zeros dim) ~dst in
  Alcotest.(check bool)
    "undersized scratch rejected" true
    (try
       ignore
         (Fista.solve_into
            ~scratch:(Array.init Fista.scratch_size (fun _ -> Vec.zeros 4))
            ~dim ~gradient_into ~lipschitz:1. ());
       false
     with Invalid_argument _ -> true)

let test_cg_scratch_invariance () =
  let dim = 12 in
  let a, b = quadratic_problem dim in
  let reference = Cg.solve ~apply:(fun v -> Mat.matvec a v) ~b () in
  let scratch = Array.init Cg.scratch_size (fun _ -> rand_vec ~offset:2. dim) in
  let with_scratch =
    Cg.solve_into ~scratch
      ~apply_into:(fun v ~dst -> Mat.matvec_into a v ~dst)
      ~b ()
  in
  check_bits "cg scratch invariance" reference.Cg.x with_scratch.Cg.x;
  Alcotest.(check int)
    "cg iteration count" reference.Cg.iterations with_scratch.Cg.iterations

let test_proxgrad_scratch_invariance () =
  let dim = 12 in
  let a, b = quadratic_problem dim in
  let lipschitz = Fista.lipschitz_of_gram a in
  let prior = Vec.create dim 0.8 in
  let gradient x = Vec.sub (Mat.matvec a x) b in
  let gradient_into x ~dst =
    Mat.matvec_into a x ~dst;
    Vec.sub_into dst b ~dst
  in
  let reference =
    Proxgrad.solve
      ~stop:(Stop.make ~max_iter:150 ())
      ~dim ~gradient
      ~prox:(Proxgrad.kl_prox ~weight:0.3 ~prior)
      ~lipschitz ()
  in
  let scratch =
    Array.init Proxgrad.scratch_size (fun _ -> rand_vec ~offset:1. dim)
  in
  let with_scratch =
    Proxgrad.solve_into
      ~stop:(Stop.make ~max_iter:150 ())
      ~scratch ~dim ~gradient_into
      ~prox_into:(Proxgrad.kl_prox_into ~weight:0.3 ~prior)
      ~lipschitz ()
  in
  check_bits "proxgrad scratch invariance" reference.Proxgrad.x
    with_scratch.Proxgrad.x

let () =
  Alcotest.run "kernels"
    [
      ( "into-equivalence",
        [
          Alcotest.test_case "elementwise, fresh dst" `Quick
            test_elementwise_fresh_dst;
          Alcotest.test_case "elementwise, aliased dst" `Quick
            test_elementwise_aliased_dst;
          Alcotest.test_case "scale/clamp/blit" `Quick test_unary_kernels;
          Alcotest.test_case "fused axpy + squared norm" `Quick
            test_axpy_sq_into;
          Alcotest.test_case "dense matvec/tmatvec" `Quick test_matvec_into;
          Alcotest.test_case "matvec alias guard" `Quick
            test_matvec_into_alias_guard;
          Alcotest.test_case "csr matvec/tmatvec" `Quick test_csr_matvec_into;
        ] );
      ( "solver-cores",
        [
          Alcotest.test_case "kl_prox matches Lambert" `Quick
            test_kl_prox_matches_lambert;
          Alcotest.test_case "block simplex partition" `Quick
            test_block_simplex_into;
          Alcotest.test_case "fista scratch invariance" `Quick
            test_fista_scratch_invariance;
          Alcotest.test_case "fista scratch validation" `Quick
            test_fista_scratch_validation;
          Alcotest.test_case "cg scratch invariance" `Quick
            test_cg_scratch_invariance;
          Alcotest.test_case "proxgrad scratch invariance" `Quick
            test_proxgrad_scratch_invariance;
        ] );
    ]
