(* Tiny zero-dependency property-testing helper.

   Each case [i] of a run draws from the indexed stream
   [Tmest_stats.Rng.of_pair seed i], so any failing case is replayable
   in isolation from its printed [(seed, case)] pair — no shrinking, no
   global state, nothing beyond the library's own RNG.  Properties are
   plain [case -> bool] predicates; a [pp] hook makes the failure
   message show the falsifying case. *)

module Rng = Tmest_stats.Rng

type 'a gen = Rng.t -> 'a

let float_in ~lo ~hi rng = Rng.uniform rng ~lo ~hi

(* Inclusive on both ends. *)
let int_in ~lo ~hi rng = lo + Rng.int rng (hi - lo + 1)

let vec ?(lo = 0.) ?(hi = 1.) n rng =
  Array.init n (fun _ -> Rng.uniform rng ~lo ~hi)

let pair ga gb rng =
  let a = ga rng in
  let b = gb rng in
  (a, b)

let choose options rng = options.(Rng.int rng (Array.length options))

let close ?(tol = 1e-9) a b =
  let scale = Stdlib.max (Stdlib.max (abs_float a) (abs_float b)) 1. in
  abs_float (a -. b) <= tol *. scale

let vec_close ?tol u v =
  Array.length u = Array.length v
  && (let ok = ref true in
      Array.iteri (fun i x -> if not (close ?tol x v.(i)) then ok := false) u;
      !ok)

(* Exact bit equality, the invariant the pooled kernels promise. *)
let vec_bits_equal u v =
  Array.length u = Array.length v
  && (let ok = ref true in
      Array.iteri
        (fun i x ->
          if Int64.bits_of_float x <> Int64.bits_of_float v.(i) then ok := false)
        u;
      !ok)

let run ?(count = 100) ?pp ~seed ~name gen property =
  for i = 0 to count - 1 do
    let case = gen (Rng.of_pair seed i) in
    let describe () =
      match pp with Some pp -> " on " ^ pp case | None -> ""
    in
    match property case with
    | true -> ()
    | false ->
        Alcotest.failf "%s: falsified at case %d (seed %d)%s" name i seed
          (describe ())
    | exception e ->
        Alcotest.failf "%s: raised %s at case %d (seed %d)%s" name
          (Printexc.to_string e) i seed (describe ())
  done
