(* The observability layer: the null sink must be invisible (estimates
   bit-identical with tracing compiled in but disabled), recorded traces
   must satisfy their own schema in both encodings (monotone timestamps,
   properly nested spans), and a single-job run must emit a
   deterministic event sequence. *)

module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Obs = Tmest_obs.Obs
module Recorder = Tmest_obs.Recorder
module Validate = Tmest_obs.Validate
module Stop = Tmest_opt.Stop
module Dataset = Tmest_traffic.Dataset
module Spec = Tmest_traffic.Spec
module Workspace = Tmest_core.Workspace
module Estimator = Tmest_core.Estimator
module Ctx = Tmest_experiments.Ctx

let small_spec =
  { (Spec.scaled ~nodes:6 ~directed_links:28 Spec.europe) with Spec.seed = 7 }

let small = lazy (Dataset.generate small_spec)

let busy_inputs d =
  let k = d.Dataset.spec.Spec.busy_start + (d.Dataset.spec.Spec.busy_len / 2) in
  let loads = Dataset.link_loads_at d k in
  let window = 10 in
  let ks = Array.of_list (Dataset.busy_samples d) in
  let ks = Array.sub ks (Array.length ks - window) window in
  let samples =
    Mat.init window (Dataset.num_links d) (fun i j ->
        (Dataset.link_loads_at d ks.(i)).(j))
  in
  (loads, samples)

(* Every method, solved once against a workspace wired to [sink]. *)
let solve_all ~sink =
  let d = Lazy.force small in
  let loads, load_samples = busy_inputs d in
  let ws = Workspace.create ~sink d.Dataset.routing in
  List.map
    (fun name ->
      (name, Estimator.solve (Estimator.of_name name) ws ~loads ~load_samples))
    (Estimator.all_names ())

(* ------------------------------------------------------------------ *)
(* Null sink: bit-identity                                             *)
(* ------------------------------------------------------------------ *)

let test_null_sink_bit_identical () =
  (* Tracing may never perturb the numerics: solving through an enabled
     recorder sink and through the null sink must agree bit-for-bit. *)
  let plain = solve_all ~sink:Obs.null in
  let r = Recorder.create () in
  let traced = solve_all ~sink:(Recorder.sink r) in
  List.iter2
    (fun (name, a) (name', b) ->
      Alcotest.(check string) "method order" name name';
      Alcotest.(check bool)
        (name ^ " traced = untraced bit-for-bit")
        true
        (Array.length a = Array.length b
        && Array.for_all2
             (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
             a b))
    plain traced;
  Alcotest.(check bool) "the traced run recorded something" true
    (Recorder.length r > 0)

let test_null_sink_is_silent () =
  Alcotest.(check bool) "null sink disabled" false Obs.null.Obs.enabled;
  Alcotest.(check bool) "is_null" true (Obs.is_null Obs.null);
  (* Emissions through the front-door API are dropped without calling
     the sink at all — exercised here simply by not crashing and by the
     recorder staying empty when wrapped in a disabled sink. *)
  Obs.counter Obs.null "nothing" 1.;
  Obs.span Obs.null "nothing" (fun () -> ())

(* ------------------------------------------------------------------ *)
(* Recorded traces satisfy their own schema                            *)
(* ------------------------------------------------------------------ *)

let record_one_run () =
  let r = Recorder.create ~meta:[ ("command", "test_obs") ] () in
  ignore (solve_all ~sink:(Recorder.sink r));
  r

let test_jsonl_validates () =
  let r = record_one_run () in
  match Validate.jsonl (Recorder.to_jsonl r) with
  | Error msg -> Alcotest.failf "jsonl trace invalid: %s" msg
  | Ok s ->
      Alcotest.(check bool) "events recorded" true (s.Validate.events > 0);
      Alcotest.(check bool) "spans closed" true (s.Validate.spans > 0);
      Alcotest.(check bool) "solver iterations present" true
        (s.Validate.iters > 0);
      (* solve/<method> wraps the method's solver span, so nesting must
         reach at least two levels. *)
      Alcotest.(check bool) "spans nest" true (s.Validate.max_depth >= 2);
      (* Entropy runs through proxgrad, bayes through fista; their
         labels name the method, not just the algorithm. *)
      List.iter
        (fun label ->
          Alcotest.(check bool) ("solver label " ^ label) true
            (List.mem label s.Validate.solvers))
        [ "entropy/proxgrad"; "bayes/fista"; "vardi/fista" ]

let test_chrome_validates () =
  let r = record_one_run () in
  match Validate.chrome (Recorder.to_chrome r) with
  | Error msg -> Alcotest.failf "chrome trace invalid: %s" msg
  | Ok s ->
      Alcotest.(check bool) "events recorded" true (s.Validate.events > 0);
      Alcotest.(check bool) "spans closed" true (s.Validate.spans > 0)

let test_validate_rejects_garbage () =
  (match Validate.jsonl "not json\n" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  (* A begin without its end: span nesting must be rejected. *)
  let r = Recorder.create () in
  let sink = Recorder.sink r in
  Obs.span_begin sink "left-open";
  (match Validate.jsonl (Recorder.to_jsonl r) with
  | Ok _ -> Alcotest.fail "accepted an unclosed span"
  | Error _ -> ());
  (* An end with no begin. *)
  let r = Recorder.create () in
  Obs.span_end (Recorder.sink r) "never-opened";
  match Validate.jsonl (Recorder.to_jsonl r) with
  | Ok _ -> Alcotest.fail "accepted an unmatched span end"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Determinism at one job                                              *)
(* ------------------------------------------------------------------ *)

(* Structural view of an event, timestamps erased: at jobs = 1 two
   identical runs must produce identical event sequences (floats are
   compared bitwise through their string rendering). *)
let shape (_, tid, (e : Obs.event)) =
  let v = function
    | Obs.Int i -> string_of_int i
    | Obs.Float f -> Printf.sprintf "%h" f
    | Obs.String s -> s
    | Obs.Bool b -> string_of_bool b
  in
  match e with
  | Obs.Span_begin { name; args } ->
      Printf.sprintf "B:%d:%s:%s" tid name
        (String.concat "," (List.map (fun (k, x) -> k ^ "=" ^ v x) args))
  | Obs.Span_end { name } -> Printf.sprintf "E:%d:%s" tid name
  | Obs.Counter { name; value } -> Printf.sprintf "C:%d:%s=%h" tid name value
  | Obs.Iter { solver; iter; objective; residual; step; restart } ->
      Printf.sprintf "I:%d:%s:%d:%h:%h:%h:%b" tid solver iter objective
        residual step restart

let traced_scan () =
  let r = Recorder.create () in
  let ctx = Ctx.create ~fast:true ~jobs:1 ~sink:(Recorder.sink r) () in
  ignore
    (Ctx.Scan.run ctx.Ctx.europe
       (Estimator.of_name "entropy")
       (Ctx.Scan.make (Ctx.Scan.Busy { window = 5; steps = 3 })));
  Array.to_list (Array.map shape (Recorder.events r))

let test_deterministic_at_one_job () =
  let a = traced_scan () in
  let b = traced_scan () in
  Alcotest.(check (list string)) "identical event sequences" a b;
  Alcotest.(check bool) "nonempty" true (a <> [])

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_monotone_under_stepping_source () =
  (* A time source stepping backwards must still yield a non-decreasing
     stamp sequence (the recorder's validator depends on this). *)
  let steps = ref [ 5.; 3.; 4.; 1.; 2. ] in
  Obs.Clock.set_source (fun () ->
      match !steps with
      | [] -> 10.
      | t :: rest ->
          steps := rest;
          t);
  let stamps = Array.init 6 (fun _ -> Obs.Clock.now_ns ()) in
  Obs.Clock.set_source Sys.time;
  Array.iteri
    (fun i t ->
      if i > 0 && Int64.compare t stamps.(i - 1) < 0 then
        Alcotest.failf "clock went backwards at %d" i)
    stamps

(* ------------------------------------------------------------------ *)
(* File round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let test_write_file_dispatches_on_suffix () =
  let r = record_one_run () in
  let check_file suffix =
    let path = Filename.temp_file "tmest_trace" suffix in
    Recorder.write_file r path;
    let res = Validate.file path in
    Sys.remove path;
    match res with
    | Ok s -> s
    | Error msg -> Alcotest.failf "%s trace invalid: %s" suffix msg
  in
  let jl = check_file ".jsonl" in
  let ch = check_file ".json" in
  (* Both encodings describe the same recording. *)
  Alcotest.(check int) "same span count" jl.Validate.spans ch.Validate.spans;
  Alcotest.(check int) "same iteration count" jl.Validate.iters
    ch.Validate.iters

let () =
  Alcotest.run "obs"
    [
      ( "null-sink",
        [
          Alcotest.test_case "bit-identical estimates" `Quick
            test_null_sink_bit_identical;
          Alcotest.test_case "silent" `Quick test_null_sink_is_silent;
        ] );
      ( "schema",
        [
          Alcotest.test_case "jsonl validates" `Quick test_jsonl_validates;
          Alcotest.test_case "chrome validates" `Quick test_chrome_validates;
          Alcotest.test_case "garbage rejected" `Quick
            test_validate_rejects_garbage;
          Alcotest.test_case "write_file round-trip" `Quick
            test_write_file_dispatches_on_suffix;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "one-job trace deterministic" `Quick
            test_deterministic_at_one_job;
          Alcotest.test_case "clock monotone" `Quick
            test_clock_monotone_under_stepping_source;
        ] );
    ]
