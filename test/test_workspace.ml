(* The shared solver workspace: results must be bit-identical to the
   historical per-call path, memoized artifacts must equal freshly
   computed ones, and the stats counters must actually observe the
   caching. *)

open Tmest_linalg
open Tmest_traffic
open Tmest_core

let small_spec =
  { (Spec.scaled ~nodes:6 ~directed_links:28 Spec.europe) with Spec.seed = 7 }

let small = lazy (Dataset.generate small_spec)

let busy_snapshot d =
  let k = d.Dataset.spec.Spec.busy_start + (d.Dataset.spec.Spec.busy_len / 2) in
  (Dataset.demand_at d k, Dataset.link_loads_at d k)

let busy_load_matrix d window =
  let ks = Array.of_list (Dataset.busy_samples d) in
  let ks = Array.sub ks (Array.length ks - window) window in
  Mat.init window (Dataset.num_links d) (fun i j ->
      (Dataset.link_loads_at d ks.(i)).(j))

(* ------------------------------------------------------------------ *)
(* Shared vs fresh workspace: bit-identical                            *)
(* ------------------------------------------------------------------ *)

let test_solve_ws_bit_identical () =
  (* A solve through a shared workspace must equal a solve on a freshly
     created one bit-for-bit: the caches may only change *when* things
     are computed, never the values. *)
  let d = Lazy.force small in
  let _, loads = busy_snapshot d in
  let samples = busy_load_matrix d 20 in
  let ws = Workspace.create d.Dataset.routing in
  List.iter
    (fun name ->
      let m = Estimator.of_name name in
      let fresh =
        Estimator.solve m
          (Workspace.create d.Dataset.routing)
          ~loads ~load_samples:samples
      in
      let shared = Estimator.solve m ws ~loads ~load_samples:samples in
      Alcotest.(check bool)
        (name ^ " fresh = shared workspace bit-for-bit")
        true
        (Array.length fresh = Array.length shared
        && Array.for_all2 (fun a b -> Float.equal a b) fresh shared))
    (Estimator.all_names ())

let test_solve_ws_bit_identical_warm () =
  (* A warm workspace (every artifact already cached from a previous
     solve) must still reproduce the fresh-workspace result exactly. *)
  let d = Lazy.force small in
  let _, loads = busy_snapshot d in
  let samples = busy_load_matrix d 20 in
  let ws = Workspace.create d.Dataset.routing in
  let names = Estimator.all_names () in
  List.iter
    (fun name ->
      ignore
        (Estimator.solve (Estimator.of_name name) ws ~loads
           ~load_samples:samples))
    names;
  List.iter
    (fun name ->
      let m = Estimator.of_name name in
      let cold =
        Estimator.solve m
          (Workspace.create d.Dataset.routing)
          ~loads ~load_samples:samples
      in
      let warm = Estimator.solve m ws ~loads ~load_samples:samples in
      Alcotest.(check bool)
        (name ^ " warm workspace bit-for-bit")
        true
        (Array.for_all2 (fun a b -> Float.equal a b) cold warm))
    names

(* ------------------------------------------------------------------ *)
(* Memoized artifacts = freshly computed                               *)
(* ------------------------------------------------------------------ *)

let test_memoized_gram_equals_fresh () =
  let d = Lazy.force small in
  let ws = Workspace.create d.Dataset.routing in
  let cached = Workspace.gram ws in
  let fresh = Csr.gram d.Dataset.routing.Tmest_net.Routing.matrix in
  Alcotest.(check bool) "gram equals fresh" true (Mat.equal ~eps:0. cached fresh);
  Alcotest.(check bool) "gram memoized (same object)" true
    (cached == Workspace.gram ws)

let test_memoized_chol_equals_fresh () =
  let d = Lazy.force small in
  let ws = Workspace.create d.Dataset.routing in
  let cached = Workspace.gram_chol ws in
  let fresh = Chol.factor_regularized (Workspace.gram ws) in
  let rhs =
    Array.init (Dataset.num_pairs d) (fun i -> float_of_int (i mod 7) +. 1.)
  in
  Alcotest.(check bool) "chol solves match" true
    (Vec.equal ~eps:0. (Chol.solve cached rhs) (Chol.solve fresh rhs))

let test_memoized_prior_equals_fresh () =
  let d = Lazy.force small in
  let _, loads = busy_snapshot d in
  let ws = Workspace.create d.Dataset.routing in
  let cached = Estimator.prior Estimator.Prior_gravity ws ~loads in
  let fresh = Gravity.simple d.Dataset.routing ~loads in
  Alcotest.(check bool) "gravity prior equals fresh" true
    (Vec.equal ~eps:0. cached fresh);
  Alcotest.(check bool) "prior memoized (same object)" true
    (cached == Estimator.prior Estimator.Prior_gravity ws ~loads)

let test_total_traffic_matches_problem () =
  let d = Lazy.force small in
  let _, loads = busy_snapshot d in
  let ws = Workspace.create d.Dataset.routing in
  Alcotest.(check (float 0.))
    "total_traffic matches Problem"
    (Problem.total_traffic d.Dataset.routing ~loads)
    (Workspace.total_traffic ws ~loads)

(* ------------------------------------------------------------------ *)
(* Stats observe the caching                                           *)
(* ------------------------------------------------------------------ *)

let test_stats_hits_on_second_access () =
  let d = Lazy.force small in
  let _, loads = busy_snapshot d in
  let ws = Workspace.create d.Dataset.routing in
  ignore (Workspace.gram ws);
  ignore (Workspace.gram_chol ws);
  ignore (Workspace.transpose ws);
  ignore (Workspace.op_norm ws);
  ignore (Workspace.total_traffic ws ~loads);
  let s1 = Workspace.stats ws in
  Alcotest.(check int) "gram miss once" 1 s1.Workspace.gram.Workspace.misses;
  ignore (Workspace.gram ws);
  ignore (Workspace.gram_chol ws);
  ignore (Workspace.transpose ws);
  ignore (Workspace.op_norm ws);
  ignore (Workspace.total_traffic ws ~loads);
  let s2 = Workspace.stats ws in
  Alcotest.(check bool) "gram hit" true
    (s2.Workspace.gram.Workspace.hits > s1.Workspace.gram.Workspace.hits);
  Alcotest.(check int) "gram still one miss" 1 s2.Workspace.gram.Workspace.misses;
  Alcotest.(check int) "chol hit" 1 s2.Workspace.chol.Workspace.hits;
  Alcotest.(check int) "transpose hit" 1 s2.Workspace.transpose.Workspace.hits;
  Alcotest.(check int) "lipschitz hit" 1 s2.Workspace.lipschitz.Workspace.hits;
  Alcotest.(check int) "total hit" 1 s2.Workspace.total.Workspace.hits;
  Workspace.reset_stats ws;
  let s3 = Workspace.stats ws in
  Alcotest.(check int) "reset clears hits" 0 s3.Workspace.gram.Workspace.hits;
  (* Cached artifact survives the reset: next access is a hit again. *)
  ignore (Workspace.gram ws);
  let s4 = Workspace.stats ws in
  Alcotest.(check int) "artifact survives reset" 1
    s4.Workspace.gram.Workspace.hits

let test_solve_counter_increments () =
  let d = Lazy.force small in
  let _, loads = busy_snapshot d in
  let samples = busy_load_matrix d 20 in
  let ws = Workspace.create d.Dataset.routing in
  ignore
    (Estimator.solve (Estimator.of_name "entropy") ws ~loads
       ~load_samples:samples);
  ignore
    (Estimator.solve (Estimator.of_name "gravity") ws ~loads
       ~load_samples:samples);
  let s = Workspace.stats ws in
  Alcotest.(check int) "two solves recorded" 2 s.Workspace.solve.Workspace.misses

let test_prior_cache_hits_across_methods () =
  (* Two methods sharing the default gravity prior on the same loads:
     the second must hit the prior cache, the second op_norm request
     must hit the lipschitz cache. *)
  let d = Lazy.force small in
  let _, loads = busy_snapshot d in
  let samples = busy_load_matrix d 20 in
  let ws = Workspace.create d.Dataset.routing in
  ignore
    (Estimator.solve (Estimator.of_name "entropy") ws ~loads
       ~load_samples:samples);
  ignore
    (Estimator.solve (Estimator.of_name "bayes") ws ~loads
       ~load_samples:samples);
  let s = Workspace.stats ws in
  Alcotest.(check int) "prior computed once" 1 s.Workspace.prior.Workspace.misses;
  Alcotest.(check bool) "prior hit by second method" true
    (s.Workspace.prior.Workspace.hits >= 1);
  Alcotest.(check int) "op norm computed once" 1
    s.Workspace.lipschitz.Workspace.misses;
  Alcotest.(check bool) "op norm hit by second method" true
    (s.Workspace.lipschitz.Workspace.hits >= 1)

let test_keyed_caches_bounded () =
  (* Thousands of distinct load vectors must not grow the workspace. *)
  let d = Lazy.force small in
  let ws = Workspace.create d.Dataset.routing in
  let l = Dataset.num_links d in
  for i = 0 to 99 do
    ignore
      (Workspace.total_traffic ws
         ~loads:(Vec.init l (fun j -> float_of_int ((i * l) + j))))
  done;
  let s = Workspace.stats ws in
  Alcotest.(check int) "all distinct loads miss" 100
    s.Workspace.total.Workspace.misses

let () =
  Alcotest.run "workspace"
    [
      ( "identity",
        [
          Alcotest.test_case "fresh vs shared workspace bit-identical" `Quick
            test_solve_ws_bit_identical;
          Alcotest.test_case "warm workspace bit-identical" `Quick
            test_solve_ws_bit_identical_warm;
        ] );
      ( "memoization",
        [
          Alcotest.test_case "gram equals fresh" `Quick
            test_memoized_gram_equals_fresh;
          Alcotest.test_case "cholesky equals fresh" `Quick
            test_memoized_chol_equals_fresh;
          Alcotest.test_case "prior equals fresh" `Quick
            test_memoized_prior_equals_fresh;
          Alcotest.test_case "total traffic matches Problem" `Quick
            test_total_traffic_matches_problem;
        ] );
      ( "stats",
        [
          Alcotest.test_case "hits on second access" `Quick
            test_stats_hits_on_second_access;
          Alcotest.test_case "solve counter" `Quick
            test_solve_counter_increments;
          Alcotest.test_case "prior/lipschitz shared across methods" `Quick
            test_prior_cache_hits_across_methods;
          Alcotest.test_case "keyed caches bounded" `Quick
            test_keyed_caches_bounded;
        ] );
    ]
