(* Streaming daemon determinism: the long-lived loop is the batch
   pipeline re-entered once per interval, so on a clean stream (no
   jitter, no loss) its full-window estimates must be bit-identical to
   the one-shot [Ctx.Scan] batch scan over the same recovered rows, at
   every pool size.  Faults must degrade ticks, never abort them. *)

module Vec = Tmest_linalg.Vec
module Pool = Tmest_parallel.Pool
module Spec = Tmest_traffic.Spec
module Dataset = Tmest_traffic.Dataset
module Estimator = Tmest_core.Estimator
module Degrade = Tmest_core.Degrade
module Collect = Tmest_snmp.Collect
module Ctx = Tmest_experiments.Ctx
module Daemon = Tmest_daemon.Daemon

let dataset =
  lazy
    (Dataset.generate
       {
         (Spec.scaled ~nodes:6 ~directed_links:28 Spec.europe) with
         Spec.name = "europe-fast";
       })

(* No jitter and no loss: every poll lands exactly on the interval
   boundary, so the recovered loads equal the true loads and the
   Degrade pass is a physical no-op — the preconditions for exact
   equality with the undegraded batch path. *)
let clean_stream =
  { Collect.default_config with Collect.jitter_s = 0.; loss_prob = 0. }

let window = 4
let ticks = 12

let run_daemon ?(est = "kruithof") ?(warm = false) ?scenario ~jobs () =
  let pool = Pool.create ~jobs in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let cfg =
        Daemon.config ~window ~ticks ~warm ~stream:clean_stream ?scenario
          ~est:(Estimator.of_name est) ()
      in
      Daemon.run ~pool cfg (Lazy.force dataset))

let bits = Int64.bits_of_float

let check_bit_identical label a b =
  Alcotest.(check int) (label ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if bits x <> bits b.(i) then
        Alcotest.failf "%s: component %d differs (%.17g vs %.17g)" label i x
          b.(i))
    a

(* Kruithof is a pure function of (routing, loads) — no warm chain, no
   solver state — so the cold daemon and the batch scan must agree bit
   for bit on every full-window tick, whatever the pool size. *)
let test_clean_matches_batch jobs () =
  let r = run_daemon ~jobs () in
  Alcotest.(check int) "no aborted ticks" 0 r.Daemon.aborted;
  Alcotest.(check int) "single epoch" 1 r.Daemon.epochs;
  let records = Array.of_list r.Daemon.records in
  Array.iter
    (fun t ->
      Alcotest.(check int) "clean stream: nothing missing" 0 t.Daemon.missing)
    records;
  let rows = Array.map (fun t -> t.Daemon.loads) records in
  let ctx = Ctx.create ~fast:true ~jobs () in
  let batch =
    Ctx.Scan.run ctx.Ctx.europe
      (Estimator.of_name "kruithof")
      (Ctx.Scan.make (Ctx.Scan.Windows { window; loads = rows }))
  in
  Alcotest.(check int) "batch covers the full-window ticks"
    (ticks - window + 1) (List.length batch);
  List.iter
    (fun (k, batch_est) ->
      check_bit_identical
        (Printf.sprintf "tick %d (jobs=%d)" k jobs)
        batch_est records.(k).Daemon.estimate)
    batch

(* The daemon loop is tick-sequential; inside one tick the pool only
   runs order-independent kernels.  A warm iterative method must
   therefore give the same bits at every pool size. *)
let test_jobs_independent () =
  let r1 = run_daemon ~est:"entropy" ~warm:true ~jobs:1 () in
  let r2 = run_daemon ~est:"entropy" ~warm:true ~jobs:2 () in
  Alcotest.(check int) "jobs=1 aborts" 0 r1.Daemon.aborted;
  Alcotest.(check int) "jobs=2 aborts" 0 r2.Daemon.aborted;
  List.iter2
    (fun (a : Daemon.tick_record) (b : Daemon.tick_record) ->
      check_bit_identical
        (Printf.sprintf "tick %d jobs=1 vs jobs=2" a.Daemon.tick)
        a.Daemon.estimate b.Daemon.estimate)
    r1.Daemon.records r2.Daemon.records

(* A mid-stream counter reset is not a measurement: the tick must go
   through Degrade repair and say so in its health record, while the
   estimate stays finite and the loop never aborts. *)
let test_reset_repairs () =
  let scenario = { Daemon.no_scenario with Daemon.resets = [ (0, 5) ] } in
  let r = run_daemon ~scenario ~jobs:1 () in
  Alcotest.(check int) "no aborted ticks" 0 r.Daemon.aborted;
  Alcotest.(check int) "stream saw the reset" 1 r.Daemon.counter_resets;
  let records = Array.of_list r.Daemon.records in
  let t = records.(5) in
  Alcotest.(check int) "reset classified at tick 5" 1 t.Daemon.resets;
  Alcotest.(check bool) "reset load is missing" true (t.Daemon.missing >= 1);
  (match t.Daemon.health with
  | None -> Alcotest.fail "reset tick carries no health record"
  | Some h ->
      Alcotest.(check bool) "health record says non-clean" false
        h.Degrade.clean;
      Alcotest.(check bool) "at least one load imputed" true
        (h.Degrade.imputed >= 1));
  Alcotest.(check bool) "repaired estimate is finite" true
    (Array.for_all Float.is_finite t.Daemon.estimate);
  (* Every other tick is untouched: same bits as the fault-free run. *)
  let clean = Array.of_list (run_daemon ~jobs:1 ()).Daemon.records in
  Array.iteri
    (fun k (c : Daemon.tick_record) ->
      if k < 5 || k >= 5 + window then
        check_bit_identical
          (Printf.sprintf "tick %d outside the reset window" k)
          c.Daemon.estimate records.(k).Daemon.estimate)
    clean

(* A flap-and-restore cycle walks the loop through three routing
   epochs; the restored epoch re-enters the original memoized
   workspace.  No tick may abort and every record must carry its
   epoch. *)
let test_flap_epochs () =
  let scenario = { Daemon.no_scenario with Daemon.flaps = [ (0, 4, 7) ] } in
  let r = run_daemon ~scenario ~jobs:1 () in
  Alcotest.(check int) "no aborted ticks" 0 r.Daemon.aborted;
  Alcotest.(check int) "three routing epochs" 3 r.Daemon.epochs;
  List.iter
    (fun (t : Daemon.tick_record) ->
      let expected = if t.Daemon.tick < 4 then 0 else if t.Daemon.tick <= 7 then 1 else 2 in
      Alcotest.(check int)
        (Printf.sprintf "tick %d epoch" t.Daemon.tick)
        expected t.Daemon.epoch;
      Alcotest.(check bool)
        (Printf.sprintf "tick %d estimate finite" t.Daemon.tick)
        true
        (Array.for_all Float.is_finite t.Daemon.estimate))
    r.Daemon.records

let () =
  Alcotest.run "daemon"
    [
      ( "determinism",
        [
          Alcotest.test_case "clean stream matches batch scan (jobs=1)" `Quick
            (test_clean_matches_batch 1);
          Alcotest.test_case "clean stream matches batch scan (jobs=2)" `Quick
            (test_clean_matches_batch 2);
          Alcotest.test_case "warm entropy bit-identical across pool sizes"
            `Quick test_jobs_independent;
        ] );
      ( "faults",
        [
          Alcotest.test_case "mid-stream reset repaired with health record"
            `Quick test_reset_repairs;
          Alcotest.test_case "flap-and-restore walks three epochs" `Quick
            test_flap_epochs;
        ] );
    ]
