(* Fault injection (Tmest_faults.Inject) and degraded-mode repair
   (Tmest_core.Degrade): determinism, the clean-path physical-identity
   guarantee, and repair actually beating the naive zero-fill
   baseline. *)

module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Core = Tmest_core
module Inject = Tmest_faults.Inject
module Dataset = Tmest_traffic.Dataset
module Spec = Tmest_traffic.Spec

let small_spec =
  { (Spec.scaled ~nodes:6 ~directed_links:28 Spec.europe) with Spec.seed = 7 }

let dataset = lazy (Dataset.generate small_spec)

let snapshot d = d.Dataset.spec.Spec.busy_start + (d.Dataset.spec.Spec.busy_len / 2)

let busy_window d w =
  let ks = Array.of_list (Dataset.busy_samples d) in
  let ks = Array.sub ks (Array.length ks - w) w in
  Mat.init w (Dataset.num_links d) (fun i j ->
      (Dataset.link_loads_at d ks.(i)).(j))

let bits_equal u v =
  Array.length u = Array.length v
  && Array.for_all2
       (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
       u v

(* ------------------------------------------------- injection -------- *)

let test_inject_deterministic () =
  let d = Lazy.force dataset in
  let loads = Dataset.link_loads_at d (snapshot d) in
  let spec =
    Inject.make ~seed:42 ~noise:(Inject.Gaussian 0.05) ~drop_prob:0.1
      ~wrap_prob:0.02 ~reset_prob:0.01 ()
  in
  let a = Inject.loads spec ~loads in
  let b = Inject.loads spec ~loads in
  Alcotest.(check bool) "same corruption twice" true
    (Array.for_all2
       (fun x y ->
         Int64.bits_of_float x = Int64.bits_of_float y)
       a b);
  (* Corrupting a window first must not change the snapshot streams. *)
  let samples = busy_window d 6 in
  ignore (Inject.samples spec samples);
  let c = Inject.loads spec ~loads in
  Alcotest.(check bool) "snapshot independent of window corruption" true
    (Array.for_all2
       (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a c);
  Alcotest.(check bool) "input not mutated" true
    (bits_equal loads (Dataset.link_loads_at d (snapshot d)))

let test_inject_none_physical () =
  let d = Lazy.force dataset in
  let loads = Dataset.link_loads_at d (snapshot d) in
  let samples = busy_window d 4 in
  Alcotest.(check bool) "loads physical" true
    (Inject.loads Inject.none ~loads == loads);
  Alcotest.(check bool) "samples physical" true
    (Inject.samples Inject.none samples == samples)

let test_wrap_folds_high_rates () =
  (* 1 Gbps over 300 s is ~37.5 GB — far past a 32-bit octet counter,
     so the uncorrected reading must come out lower than the truth. *)
  let spec = Inject.make ~seed:3 ~wrap_prob:1. () in
  let loads = [| 1e9; 2e9; 5e8 |] in
  let dirty = Inject.loads spec ~loads in
  Array.iteri
    (fun i x ->
      Alcotest.(check bool)
        (Printf.sprintf "wrapped %d below truth" i)
        true
        (x < loads.(i) && x >= 0.))
    dirty

let test_drop_rate () =
  let spec = Inject.make ~seed:11 ~drop_prob:0.3 () in
  let n = 10_000 in
  let loads = Array.make n 1e7 in
  let dirty = Inject.loads spec ~loads in
  let dropped =
    Array.fold_left
      (fun acc x -> if Float.is_nan x then acc + 1 else acc)
      0 dirty
  in
  let rate = float_of_int dropped /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "drop rate %.3f near 0.3" rate)
    true
    (abs_float (rate -. 0.3) < 0.02)

let test_stale_routing () =
  let d = Lazy.force dataset in
  let topo = d.Dataset.topo in
  (* No failures: the reroute must reproduce plain shortest-path loads
     (the dataset's own primary routing is a CSPF mesh, so it is not
     the reference here). *)
  (match Inject.stale_routing topo ~fail:[] with
  | None -> Alcotest.fail "reroute with no failures disconnected"
  | Some r ->
      let truth = Dataset.demand_at d (snapshot d) in
      Alcotest.(check bool) "same loads as shortest-path routing" true
        (bits_equal
           (Tmest_net.Routing.link_loads r truth)
           (Tmest_net.Routing.link_loads
              (Tmest_net.Routing.shortest_path topo)
              truth)));
  (* Failing one interior link must still leave the mesh connected and
     shift load onto other links. *)
  let interior = List.hd (Tmest_net.Topology.interior_links topo) in
  match Inject.stale_routing topo ~fail:[ interior.Tmest_net.Topology.link_id ] with
  | None -> Alcotest.fail "single-link failure disconnected the mesh"
  | Some r ->
      let truth = Dataset.demand_at d (snapshot d) in
      let loads = Tmest_net.Routing.link_loads r truth in
      Alcotest.(check (float 1.)) "failed link carries nothing" 0.
        loads.(interior.Tmest_net.Topology.link_id);
      Alcotest.(check bool) "loads differ from primary" true
        (not
           (bits_equal loads
              (Tmest_net.Routing.link_loads d.Dataset.routing truth)))

(* --------------------------------------------------- degrade -------- *)

let test_clean_repair_physical () =
  let d = Lazy.force dataset in
  let ws = Core.Workspace.create d.Dataset.routing in
  let loads = Dataset.link_loads_at d (snapshot d) in
  let samples = busy_window d 6 in
  let r = Core.Degrade.repair Core.Degrade.default ws ~loads ~samples () in
  Alcotest.(check bool) "clean flag" true r.Core.Degrade.health.Core.Degrade.clean;
  Alcotest.(check bool) "loads physical" true (r.Core.Degrade.loads == loads);
  Alcotest.(check bool) "samples physical" true
    (match r.Core.Degrade.samples with Some m -> m == samples | None -> false)

let test_degraded_solve_bit_identical () =
  let d = Lazy.force dataset in
  let ws = Core.Workspace.create d.Dataset.routing in
  let loads = Dataset.link_loads_at d (snapshot d) in
  let samples = busy_window d 8 in
  let opts = Core.Estimator.Options.make ~degrade:Core.Degrade.default () in
  List.iter
    (fun name ->
      let m = Core.Estimator.of_name name in
      let plain = Core.Estimator.solve m ws ~loads ~load_samples:samples in
      let degraded =
        Core.Estimator.solve ~opts m ws ~loads ~load_samples:samples
      in
      Alcotest.(check bool)
        (name ^ " bit-identical with clean inputs")
        true
        (bits_equal plain degraded))
    (Core.Estimator.all_names ())

let test_drop_imputation_beats_zero_fill () =
  let d = Lazy.force dataset in
  let ws = Core.Workspace.create d.Dataset.routing in
  let truth = Dataset.demand_at d (snapshot d) in
  let loads = Dataset.link_loads_at d (snapshot d) in
  let samples = busy_window d 8 in
  let spec = Inject.make ~seed:17 ~drop_prob:0.15 () in
  let dirty = Inject.loads spec ~loads in
  Alcotest.(check bool) "something was dropped" true
    (Array.exists Float.is_nan dirty);
  let m = Core.Estimator.of_name "entropy" in
  let mre estimate = Core.Metrics.mre ~truth ~estimate () in
  let repaired =
    mre
      (Core.Estimator.solve
         ~opts:(Core.Estimator.Options.make ~degrade:Core.Degrade.default ())
         m ws ~loads:dirty ~load_samples:samples)
  in
  let zero =
    mre
      (Core.Estimator.solve m ws
         ~loads:(Inject.zero_fill dirty)
         ~load_samples:samples)
  in
  Alcotest.(check bool)
    (Printf.sprintf "repaired %.4f < zero-filled %.4f" repaired zero)
    true (repaired < zero)

let test_single_corruption_detected () =
  let d = Lazy.force dataset in
  let ws = Core.Workspace.create d.Dataset.routing in
  let loads = Array.copy (Dataset.link_loads_at d (snapshot d)) in
  (* Triple one busy interior link: row leaves range(R). *)
  let i =
    let best = ref 0 in
    Array.iteri (fun j x -> if x > loads.(!best) then best := j) loads;
    !best
  in
  loads.(i) <- loads.(i) *. 3.;
  let r = Core.Degrade.repair Core.Degrade.default ws ~loads () in
  let h = r.Core.Degrade.health in
  Alcotest.(check bool) "not clean" false h.Core.Degrade.clean;
  Alcotest.(check bool) "at least the bad row projected" true
    (h.Core.Degrade.projected >= 1);
  Alcotest.(check bool) "repair reduced the misfit" true
    (h.Core.Degrade.residual_after < h.Core.Degrade.residual_before);
  Alcotest.(check bool) "bad row pulled toward consensus" true
    (abs_float (r.Core.Degrade.loads.(i) -. loads.(i)) > 0.)

let test_window_fill () =
  let d = Lazy.force dataset in
  let ws = Core.Workspace.create d.Dataset.routing in
  let loads = Dataset.link_loads_at d (snapshot d) in
  let samples = busy_window d 6 in
  let holed = Mat.copy samples in
  Mat.set holed 0 3 Float.nan;
  Mat.set holed 3 5 Float.nan;
  Mat.set holed 5 5 Float.nan;
  let r = Core.Degrade.repair Core.Degrade.default ws ~loads ~samples:holed () in
  let h = r.Core.Degrade.health in
  Alcotest.(check int) "three cells filled" 3 h.Core.Degrade.sample_missing;
  match r.Core.Degrade.samples with
  | None -> Alcotest.fail "samples missing from repair"
  | Some m ->
      Alcotest.(check bool) "all finite" true
        (let ok = ref true in
         for row = 0 to Mat.rows m - 1 do
           for col = 0 to Mat.cols m - 1 do
             if not (Float.is_finite (Mat.get m row col)) then ok := false
           done
         done;
         !ok);
      (* Leading gap takes the next value, interior gap the previous. *)
      Alcotest.(check (float 0.)) "leading gap backward-filled"
        (Mat.get samples 1 3) (Mat.get m 0 3);
      Alcotest.(check (float 0.)) "interior gap forward-filled"
        (Mat.get samples 2 5) (Mat.get m 3 5)

let test_window_fill_through_solve () =
  (* The same temporal fill end to end: a holed window handed to
     [Estimator.solve ?degrade] must be repaired in-flight, report the
     fills through [on_health], and produce exactly the estimate the
     explicitly repaired matrix produces. *)
  let d = Lazy.force dataset in
  let ws = Core.Workspace.create d.Dataset.routing in
  let loads = Dataset.link_loads_at d (snapshot d) in
  let samples = busy_window d 8 in
  let holed = Mat.copy samples in
  Mat.set holed 0 2 Float.nan;
  Mat.set holed 4 2 Float.nan;
  Mat.set holed 7 9 Float.nan;
  let stash = ref None in
  let policy =
    Core.Degrade.with_on_health (fun h -> stash := Some h) Core.Degrade.default
  in
  let m = Core.Estimator.of_name "fanout" in
  let est =
    Core.Estimator.solve
      ~opts:(Core.Estimator.Options.make ~degrade:policy ())
      m ws ~loads ~load_samples:holed
  in
  (match !stash with
  | None -> Alcotest.fail "health not reported"
  | Some h ->
      Alcotest.(check int) "holes counted" 3 h.Core.Degrade.sample_missing;
      Alcotest.(check bool) "window repair drops the clean flag" false
        h.Core.Degrade.clean);
  Array.iter
    (fun x ->
      Alcotest.(check bool) "estimate finite" true (Float.is_finite x))
    est;
  let r = Core.Degrade.repair Core.Degrade.default ws ~loads ~samples:holed () in
  match r.Core.Degrade.samples with
  | None -> Alcotest.fail "samples missing from repair"
  | Some repaired ->
      let direct =
        Core.Estimator.solve m ws ~loads ~load_samples:repaired
      in
      Alcotest.(check bool) "same estimate as explicit repair" true
        (bits_equal est direct)

let () =
  Alcotest.run "faults"
    [
      ( "inject",
        [
          Alcotest.test_case "deterministic" `Quick test_inject_deterministic;
          Alcotest.test_case "none is physical identity" `Quick
            test_inject_none_physical;
          Alcotest.test_case "wrap folds high rates" `Quick
            test_wrap_folds_high_rates;
          Alcotest.test_case "drop rate" `Quick test_drop_rate;
          Alcotest.test_case "stale routing" `Quick test_stale_routing;
        ] );
      ( "degrade",
        [
          Alcotest.test_case "clean repair is physical identity" `Quick
            test_clean_repair_physical;
          Alcotest.test_case "degraded solve bit-identical on clean data"
            `Quick test_degraded_solve_bit_identical;
          Alcotest.test_case "imputation beats zero-fill" `Quick
            test_drop_imputation_beats_zero_fill;
          Alcotest.test_case "single corrupted row detected" `Quick
            test_single_corruption_detected;
          Alcotest.test_case "window temporal fill" `Quick test_window_fill;
          Alcotest.test_case "window fill through solve" `Quick
            test_window_fill_through_solve;
        ] );
    ]
