(* Warm-started window scans: sliding a measurement window and starting
   each solve from the previous window's solution must land on the same
   optimum as solving cold, up to solver tolerance — warm starts change
   the iteration path, never the answer.  Runs on both reduced networks
   so the unit conversions of every method's [?x0] plumbing are covered
   on two different routing contexts. *)

module Vec = Tmest_linalg.Vec
module Ctx = Tmest_experiments.Ctx
module Workspace = Tmest_core.Workspace
module Estimator = Tmest_core.Estimator

let ctx = lazy (Ctx.create ~fast:true ())
let window = 5
let steps = 3
let warm_opts = Estimator.Options.make ~warm:true ()

(* All scans here go through the unified Scan API on the busy-period
   source; the file-level window/steps keep every call comparable. *)
let scan_busy ?opts net est ~window ~steps =
  Ctx.Scan.run net est (Ctx.Scan.make ?opts (Ctx.Scan.Busy { window; steps }))

(* Relative L2 deviation allowed between a cold and a warm solve.
   Entropy/bayes/vardi optimize strictly convex objectives, so both
   paths converge to one minimizer; fanout's block-simplex problem is
   convex but flatter; Cao's second-moment objective is non-convex and
   its backtracking line search is path-dependent, so two starts can
   stop at modestly different stationary points (the bound still
   catches any unit-conversion slip in the x0 plumbing, which is off by
   factors of ~1e6). *)
let tolerances =
  [
    ("entropy", 1e-4);
    ("bayes", 1e-3);
    ("vardi", 1e-8);
    ("fanout", 1e-1);
    ("cao", 5e-1);
  ]

let rel_dist a b = Vec.dist2 a b /. (1. +. Vec.norm2 a)

let test_scan_matches_cold net () =
  let net = net (Lazy.force ctx) in
  List.iter
    (fun (name, tol) ->
      let est = Estimator.of_name name in
      let cold = scan_busy net est ~window ~steps in
      let warm = scan_busy ~opts:warm_opts net est ~window ~steps in
      Alcotest.(check int)
        (name ^ " scan length") (List.length cold) (List.length warm);
      List.iter2
        (fun (k_cold, est_cold) (k_warm, est_warm) ->
          Alcotest.(check int) (name ^ " snapshot order") k_cold k_warm;
          let d = rel_dist est_cold est_warm in
          if not (d <= tol) then
            Alcotest.failf "%s at snapshot %d: warm deviates by %.3e (> %.0e)"
              name k_cold d tol)
        cold warm)
    tolerances

(* The cache is keyed per method: a scan of [steps] positions misses on
   the first and hits on the rest, and a cold scan never touches it.
   Pinned to one job: a multi-domain scan runs one warm chain per chunk
   (its own exact accounting, covered in test_parallel). *)
let test_warm_counters () =
  let ctx = Ctx.create ~fast:true ~jobs:1 () in
  let net = ctx.Ctx.europe in
  let est = Estimator.of_name "entropy" in
  ignore (scan_busy net est ~window ~steps);
  let st = Workspace.stats net.Ctx.workspace in
  Alcotest.(check int) "cold scan: no warm hits" 0 st.Workspace.warm.hits;
  Alcotest.(check int) "cold scan: no warm misses" 0 st.Workspace.warm.misses;
  ignore (scan_busy ~opts:warm_opts net est ~window ~steps);
  let st = Workspace.stats net.Ctx.workspace in
  Alcotest.(check int) "first warm scan misses once" 1
    st.Workspace.warm.misses;
  Alcotest.(check int) "then hits every position" (steps - 1)
    st.Workspace.warm.hits;
  (* A second warm scan is fully served by the cache. *)
  ignore (scan_busy ~opts:warm_opts net est ~window ~steps);
  let st = Workspace.stats net.Ctx.workspace in
  Alcotest.(check int) "second warm scan never misses" 1
    st.Workspace.warm.misses;
  Alcotest.(check int) "second warm scan always hits"
    ((2 * steps) - 1)
    st.Workspace.warm.hits

(* Methods without an iterative solve have no warm key; [warm:true] must
   be a no-op for them, bit-identical to the cold path. *)
let test_warm_noop_for_direct_methods () =
  let ctx = Lazy.force ctx in
  let net = ctx.Ctx.europe in
  let samples = Ctx.Scan.samples net ~window in
  List.iter
    (fun name ->
      let est = Estimator.of_name name in
      let cold =
        Estimator.solve est net.Ctx.workspace ~loads:net.Ctx.loads
          ~load_samples:samples
      in
      let warm =
        Estimator.solve ~opts:warm_opts est net.Ctx.workspace
          ~loads:net.Ctx.loads ~load_samples:samples
      in
      Array.iteri
        (fun i c ->
          if Int64.bits_of_float c <> Int64.bits_of_float warm.(i) then
            Alcotest.failf "%s: warm flag changed a direct method at %d" name
              i)
        cold)
    [ "gravity"; "kruithof"; "wcb" ]

(* Repeating the identical problem warm must reproduce the cold answer
   to solver tolerance: the stored solution is already the optimum, so
   the warm solve re-converges immediately onto it. *)
let test_warm_repeat_converges () =
  let ctx = Ctx.create ~fast:true () in
  let net = ctx.Ctx.america in
  let samples = Ctx.Scan.samples net ~window in
  List.iter
    (fun (name, tol) ->
      let est = Estimator.of_name name in
      let run warm =
        Estimator.solve
          ~opts:(Estimator.Options.make ~warm ())
          est net.Ctx.workspace ~loads:net.Ctx.loads ~load_samples:samples
      in
      let cold = run false in
      ignore (run true);
      let again = run true in
      let d = rel_dist cold again in
      if not (d <= tol) then
        Alcotest.failf "%s: warm repeat deviates by %.3e (> %.0e)" name d tol)
    tolerances

let () =
  Alcotest.run "warmstart"
    [
      ( "scan-equivalence",
        [
          Alcotest.test_case "Europe scan matches cold" `Quick
            (test_scan_matches_cold (fun c -> c.Ctx.europe));
          Alcotest.test_case "America scan matches cold" `Quick
            (test_scan_matches_cold (fun c -> c.Ctx.america));
        ] );
      ( "cache-behaviour",
        [
          Alcotest.test_case "hit/miss accounting" `Quick test_warm_counters;
          Alcotest.test_case "no-op for direct methods" `Quick
            test_warm_noop_for_direct_methods;
          Alcotest.test_case "warm repeat re-converges" `Quick
            test_warm_repeat_converges;
        ] );
    ]
